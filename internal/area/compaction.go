package area

import (
	"fmt"
	"math"
	"sort"
)

// Floorplanning model for §4.3: "fixing the size of a tile can potentially
// waste die area if client modules only occupy a fraction of their tile's
// area. ... For a high-volume part, die area can be reduced by compacting
// the tiles. An optimal compaction may require moving client modules so
// that all of the big (small) clients are in the same row or column."
//
// Clients are square-ish modules with given areas. Three floorplans are
// compared:
//
//   - FixedTiles: every tile is sized for the largest client (the paper's
//     uniform-grid baseline — simple, reusable, wasteful);
//   - CompactedRows: clients are sorted by height and packed into rows of
//     k, so each row is only as tall as its tallest member (the paper's
//     compaction);
//   - SumArea: the lower bound, Σ client areas (no packing loss).

// Client is one module to place.
type Client struct {
	Name   string
	AreaMM float64 // module area in mm²
}

// side reports the module's edge length assuming a square aspect.
func (c Client) side() float64 { return math.Sqrt(c.AreaMM) }

// Floorplan is one placement's outcome.
type Floorplan struct {
	Name      string
	DieMM2    float64
	ClientMM2 float64
	// Utilization is client area over die area.
	Utilization float64
}

// FixedTiles computes the uniform-grid floorplan for a k×k network: every
// tile's side equals the largest client's side (plus the per-tile network
// strip, §2.4).
func FixedTiles(clients []Client, k int, networkStripMM float64) (Floorplan, error) {
	if err := validateClients(clients, k); err != nil {
		return Floorplan{}, err
	}
	maxSide := 0.0
	total := 0.0
	for _, c := range clients {
		if s := c.side(); s > maxSide {
			maxSide = s
		}
		total += c.AreaMM
	}
	tile := maxSide + networkStripMM
	die := float64(k) * tile * float64(k) * tile
	return Floorplan{
		Name: "fixed tiles", DieMM2: die, ClientMM2: total,
		Utilization: total / die,
	}, nil
}

// CompactedRows computes the §4.3 compaction: clients sorted by height and
// packed k per row, each row as tall as its tallest client; the die width
// is the widest row.
func CompactedRows(clients []Client, k int, networkStripMM float64) (Floorplan, error) {
	if err := validateClients(clients, k); err != nil {
		return Floorplan{}, err
	}
	sorted := append([]Client(nil), clients...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].side() > sorted[j].side() })
	var height, width, total float64
	for row := 0; row < k; row++ {
		rowClients := sorted[row*k : (row+1)*k]
		rowH := 0.0
		rowW := 0.0
		for _, c := range rowClients {
			if s := c.side(); s > rowH {
				rowH = s
			}
			rowW += c.side() + networkStripMM
			total += c.AreaMM
		}
		height += rowH + networkStripMM
		if rowW > width {
			width = rowW
		}
	}
	die := height * width
	return Floorplan{
		Name: "compacted rows", DieMM2: die, ClientMM2: total,
		Utilization: total / die,
	}, nil
}

// SumArea reports the packing lower bound.
func SumArea(clients []Client) Floorplan {
	total := 0.0
	for _, c := range clients {
		total += c.AreaMM
	}
	return Floorplan{Name: "sum of clients", DieMM2: total, ClientMM2: total, Utilization: 1}
}

func validateClients(clients []Client, k int) error {
	if k < 1 {
		return fmt.Errorf("area: radix %d", k)
	}
	if len(clients) != k*k {
		return fmt.Errorf("area: %d clients for a %dx%d grid", len(clients), k, k)
	}
	for _, c := range clients {
		if c.AreaMM <= 0 {
			return fmt.Errorf("area: client %q has area %v", c.Name, c.AreaMM)
		}
	}
	return nil
}
