package area

import (
	"math"
	"strings"
	"testing"
)

func TestPaperHeadlineNumbers(t *testing.T) {
	r, err := Evaluate(Paper())
	if err != nil {
		t.Fatal(err)
	}
	// §2.4: "the total buffer requirement is about 10⁴ bits along each
	// edge of the tile" (8 VCs × 4 flits × ~300b = 9600).
	if r.BufferBitsPerEdge != 9600 {
		t.Errorf("buffer bits/edge = %d, want 9600", r.BufferBitsPerEdge)
	}
	// "an area less than 50µm wide by 3mm long along each edge".
	if r.EdgeStripWidthUM <= 0 || r.EdgeStripWidthUM >= 50 {
		t.Errorf("edge strip width = %.1fµm, want (0, 50)", r.EdgeStripWidthUM)
	}
	// "a total overhead of 0.59mm²".
	if math.Abs(r.RouterAreaMM2-0.59) > 0.02 {
		t.Errorf("router area = %.3fmm², want ≈0.59", r.RouterAreaMM2)
	}
	// "or 6.6% of the tile area".
	if math.Abs(r.OverheadFraction-0.066) > 0.002 {
		t.Errorf("overhead = %.4f, want ≈0.066", r.OverheadFraction)
	}
	// "about 3000 of the 6000 available wiring tracks".
	if r.TracksAvailable != 6000 {
		t.Errorf("tracks available = %d, want 6000", r.TracksAvailable)
	}
	if r.TracksUsed < 2800 || r.TracksUsed > 3200 {
		t.Errorf("tracks used = %d, want ≈3000", r.TracksUsed)
	}
}

func TestAreaScalesWithBuffers(t *testing.T) {
	// §3.2: "Buffer space in an on-chip router directly impacts the area
	// overhead of the network."
	base := Paper()
	small := base.WithBuffers(8, 1)
	big := base.WithBuffers(8, 8)
	if !(small.OverheadFraction() < base.OverheadFraction() &&
		base.OverheadFraction() < big.OverheadFraction()) {
		t.Fatalf("overhead not monotone in buffering: %v %v %v",
			small.OverheadFraction(), base.OverheadFraction(), big.OverheadFraction())
	}
	// The area is buffer-dominated: deleting 3/4 of the buffers must cut
	// the router area by more than a third.
	if small.RouterAreaMM2() > 0.67*base.RouterAreaMM2() {
		t.Errorf("area not buffer-dominated: 1-flit %v vs 4-flit %v",
			small.RouterAreaMM2(), base.RouterAreaMM2())
	}
}

func TestValidate(t *testing.T) {
	bad := Paper()
	bad.TileMM = 0
	if _, err := Evaluate(bad); err == nil {
		t.Error("zero tile accepted")
	}
	bad = Paper()
	bad.VCs = 0
	if _, err := Evaluate(bad); err == nil {
		t.Error("zero VCs accepted")
	}
	bad = Paper()
	bad.EdgesPerTile = 0
	if _, err := Evaluate(bad); err == nil {
		t.Error("zero edges accepted")
	}
}

func TestWiringFraction(t *testing.T) {
	p := Paper()
	f := p.WiringFraction()
	if f < 0.45 || f > 0.55 {
		t.Fatalf("wiring fraction = %v, want ≈0.5", f)
	}
	p.AvailableFrac = 0
	p.TracksPerLayer = 0
	if p.WiringFraction() != 0 {
		t.Fatal("zero-availability fraction not 0")
	}
}

func TestReportString(t *testing.T) {
	r, _ := Evaluate(Paper())
	s := r.String()
	for _, want := range []string{"overhead", "tracks", "9600"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}
