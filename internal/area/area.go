// Package area implements the router area model of Section 2.4 of the
// paper: the network logic along each tile edge is dominated by buffer
// storage, plus a few thousand gates of control logic and the driver and
// receiver circuits for the link wires. At the paper's parameters (eight
// virtual channels, four flits of buffering each, ~300 bits per flit) the
// router occupies a strip under 50 µm wide along each 3 mm tile edge, for a
// total overhead of 0.59 mm², 6.6% of a 3 mm × 3 mm tile.
//
// The model also accounts for the top-level wiring budget: of the tracks
// crossing each tile edge on the top two metal layers, the network consumes
// about 3000 for differential signals and shields (§2.4).
package area

import (
	"fmt"
	"math"
)

// Params are the inputs of the area model. All areas are in µm² and
// lengths in mm unless noted.
type Params struct {
	TileMM float64 // tile edge length (3.0)

	VCs        int // virtual channels per input controller (8)
	FlitsPerVC int // flits of buffering per VC (4)
	FlitBits   int // bits per flit including overhead (~300)

	// Per-edge link width in signal bits (data + control in one direction;
	// both directions cross each edge).
	LinkBits int

	BitCellUM2    float64 // buffer storage area per bit
	LogicGates    int     // control logic per edge ("a few thousand gates")
	GateUM2       float64 // area per gate
	XcvrUM2PerBit float64 // driver+receiver area per link bit (both directions)

	EdgesPerTile int // 4: the router is distributed along all four edges

	// Wiring budget (per tile edge).
	TracksPerLayer  int     // minimum-pitch tracks per metal layer (6000)
	NetworkLayers   int     // metal layers the network may use (2)
	AvailableFrac   float64 // fraction of those tracks available to the network
	WiresPerSignal  float64 // physical wires per signal: 2 (differential) + shields
	LinksCrossing   int     // unidirectional links crossing one tile edge (4 in the folded torus: two rings' worth)
	SpareBitsPerLnk int     // spare wires per link for fault steering (§2.5)
}

// Paper returns the model inputs for the paper's example network. The
// storage, gate, and transceiver densities are calibrated so the paper's
// configuration reproduces its own headline numbers (≈0.59 mm², 6.6%,
// ≈10⁴ buffer bits per edge, ≈3000 tracks); the model then extrapolates to
// other configurations (buffer sweeps, VC sweeps) with those densities
// fixed.
func Paper() Params {
	return Params{
		TileMM:          3.0,
		VCs:             8,
		FlitsPerVC:      4,
		FlitBits:        300,
		LinkBits:        300,
		BitCellUM2:      12.5,
		LogicGates:      4000,
		GateUM2:         4.0,
		XcvrUM2PerBit:   22.0,
		EdgesPerTile:    4,
		TracksPerLayer:  6000,
		NetworkLayers:   2,
		AvailableFrac:   0.5,
		WiresPerSignal:  2.5, // differential pair + one shield per two pairs
		LinksCrossing:   4,
		SpareBitsPerLnk: 1,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.TileMM <= 0:
		return fmt.Errorf("area: tile %v mm", p.TileMM)
	case p.VCs < 1 || p.FlitsPerVC < 1 || p.FlitBits < 1:
		return fmt.Errorf("area: buffer shape %dvc x %dflit x %db", p.VCs, p.FlitsPerVC, p.FlitBits)
	case p.EdgesPerTile < 1:
		return fmt.Errorf("area: %d edges per tile", p.EdgesPerTile)
	}
	return nil
}

// BufferBitsPerEdge reports the input-controller buffer storage along one
// tile edge. §2.4: "the total buffer requirement is about 10⁴ bits along
// each edge of the tile."
func (p Params) BufferBitsPerEdge() int {
	return p.VCs * p.FlitsPerVC * p.FlitBits
}

// EdgeAreaUM2 reports the area of the router strip along one edge, µm².
func (p Params) EdgeAreaUM2() float64 {
	buffer := float64(p.BufferBitsPerEdge()) * p.BitCellUM2
	logic := float64(p.LogicGates) * p.GateUM2
	// Each edge hosts the transceivers for one input and one output link.
	xcvr := float64(2*(p.LinkBits+p.SpareBitsPerLnk)) * p.XcvrUM2PerBit
	return buffer + logic + xcvr
}

// EdgeStripWidthUM reports the width of the per-edge router strip in µm.
// §2.4 estimates "less than 50 µm wide by 3 mm long".
func (p Params) EdgeStripWidthUM() float64 {
	return p.EdgeAreaUM2() / (p.TileMM * 1000)
}

// RouterAreaMM2 reports the total router area per tile in mm². §2.4: "a
// total overhead of 0.59 mm²".
func (p Params) RouterAreaMM2() float64 {
	return float64(p.EdgesPerTile) * p.EdgeAreaUM2() / 1e6
}

// TileAreaMM2 reports the tile area in mm².
func (p Params) TileAreaMM2() float64 { return p.TileMM * p.TileMM }

// OverheadFraction reports router area as a fraction of tile area. The
// paper's headline: 6.6%.
func (p Params) OverheadFraction() float64 {
	return p.RouterAreaMM2() / p.TileAreaMM2()
}

// WiringTracksUsed reports the top-metal tracks the network consumes per
// tile edge: every link crossing the edge needs WiresPerSignal physical
// wires per signal bit (differential plus shields), plus spares.
// §2.4: "about 3000 of the 6000 available wiring tracks".
func (p Params) WiringTracksUsed() int {
	signals := p.LinksCrossing * (p.LinkBits + p.SpareBitsPerLnk)
	return int(math.Ceil(float64(signals) * p.WiresPerSignal))
}

// WiringTracksAvailable reports the tracks available to the network per
// tile edge across its metal layers.
func (p Params) WiringTracksAvailable() int {
	return int(float64(p.TracksPerLayer*p.NetworkLayers) * p.AvailableFrac)
}

// WiringFraction reports the used fraction of the available tracks.
func (p Params) WiringFraction() float64 {
	avail := p.WiringTracksAvailable()
	if avail == 0 {
		return 0
	}
	return float64(p.WiringTracksUsed()) / float64(avail)
}

// WithBuffers returns a copy of the parameters with a different buffer
// shape, for the §3.2 buffer/area trade-off sweeps.
func (p Params) WithBuffers(vcs, flitsPerVC int) Params {
	p.VCs, p.FlitsPerVC = vcs, flitsPerVC
	return p
}

// Report is a one-stop summary of the model outputs.
type Report struct {
	BufferBitsPerEdge int
	EdgeStripWidthUM  float64
	RouterAreaMM2     float64
	OverheadFraction  float64
	TracksUsed        int
	TracksAvailable   int
}

// Evaluate runs the model.
func Evaluate(p Params) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	return Report{
		BufferBitsPerEdge: p.BufferBitsPerEdge(),
		EdgeStripWidthUM:  p.EdgeStripWidthUM(),
		RouterAreaMM2:     p.RouterAreaMM2(),
		OverheadFraction:  p.OverheadFraction(),
		TracksUsed:        p.WiringTracksUsed(),
		TracksAvailable:   p.WiringTracksAvailable(),
	}, nil
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf(
		"buffer=%db/edge strip=%.1fµm router=%.3fmm² overhead=%.2f%% tracks=%d/%d",
		r.BufferBitsPerEdge, r.EdgeStripWidthUM, r.RouterAreaMM2,
		100*r.OverheadFraction, r.TracksUsed, r.TracksAvailable)
}
