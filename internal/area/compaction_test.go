package area

import (
	"math"
	"math/rand"
	"testing"
)

func mixedClients(k int, seed int64) []Client {
	rng := rand.New(rand.NewSource(seed))
	clients := make([]Client, k*k)
	for i := range clients {
		// A realistic SoC mix: a few big cores, many small peripherals.
		switch {
		case i%8 == 0:
			clients[i] = Client{Name: "cpu", AreaMM: 7 + rng.Float64()*2}
		case i%3 == 0:
			clients[i] = Client{Name: "dsp", AreaMM: 3 + rng.Float64()}
		default:
			clients[i] = Client{Name: "periph", AreaMM: 0.5 + rng.Float64()}
		}
	}
	return clients
}

func TestFixedTilesWastesArea(t *testing.T) {
	// §4.3: "fixing the size of a tile can potentially waste die area if
	// client modules only occupy a fraction of their tile's area."
	clients := mixedClients(4, 1)
	fixed, err := FixedTiles(clients, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Utilization > 0.5 {
		t.Fatalf("mixed clients on fixed tiles: utilization %v unexpectedly high", fixed.Utilization)
	}
	if fixed.DieMM2 <= fixed.ClientMM2 {
		t.Fatal("die not larger than client area")
	}
}

func TestCompactionRecoversArea(t *testing.T) {
	// §4.3: "die area can be reduced by compacting the tiles."
	clients := mixedClients(4, 2)
	fixed, err := FixedTiles(clients, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := CompactedRows(clients, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if compact.DieMM2 >= fixed.DieMM2 {
		t.Fatalf("compaction did not shrink the die: %v vs %v", compact.DieMM2, fixed.DieMM2)
	}
	lower := SumArea(clients)
	if compact.DieMM2 < lower.DieMM2 {
		t.Fatalf("compacted die %v below the packing lower bound %v", compact.DieMM2, lower.DieMM2)
	}
	if compact.Utilization <= fixed.Utilization {
		t.Fatal("utilization did not improve")
	}
}

func TestUniformClientsNothingToCompact(t *testing.T) {
	clients := make([]Client, 16)
	for i := range clients {
		clients[i] = Client{Name: "same", AreaMM: 4}
	}
	fixed, _ := FixedTiles(clients, 4, 0)
	compact, _ := CompactedRows(clients, 4, 0)
	if math.Abs(fixed.DieMM2-compact.DieMM2) > 1e-9 {
		t.Fatalf("identical clients should tie: %v vs %v", fixed.DieMM2, compact.DieMM2)
	}
	if math.Abs(fixed.Utilization-1) > 1e-9 {
		t.Fatalf("identical clients should fill the die: %v", fixed.Utilization)
	}
}

func TestCompactionValidation(t *testing.T) {
	if _, err := FixedTiles(make([]Client, 5), 4, 0); err == nil {
		t.Error("wrong client count accepted")
	}
	if _, err := CompactedRows([]Client{{AreaMM: -1}}, 1, 0); err == nil {
		t.Error("negative area accepted")
	}
	if _, err := FixedTiles(nil, 0, 0); err == nil {
		t.Error("zero radix accepted")
	}
}
