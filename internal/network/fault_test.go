package network

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/router"
	"repro/internal/topology"
)

// buildFaulty builds a 4x4 torus network with watchdogs armed and a
// fault injector attached for the given campaign spec.
func buildFaulty(t *testing.T, seed int64, watchdog int, spec string) (*Network, *fault.Injector) {
	t.Helper()
	rc := router.DefaultConfig(0)
	n, err := New(Config{Topo: torus4(t), Router: rc, Watchdog: watchdog, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	events, err := fault.ParseEvents(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(n, events, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach()
	return n, inj
}

// bernoulliClients attaches a deterministic uniform-random Bernoulli
// source to every tile (traffic.Generator lives above network, so the
// tests use inline clients) and returns a counter of delivered packets
// per destination.
func bernoulliClients(n *Network, rate float64, seed int64) *int64 {
	delivered := new(int64)
	tiles := n.Topology().NumTiles()
	for tile := 0; tile < tiles; tile++ {
		tile := tile
		rng := rand.New(rand.NewSource(seed + int64(tile)))
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			*delivered += int64(len(p.Deliveries()))
			if rng.Float64() < rate {
				dst := rng.Intn(tiles - 1)
				if dst >= tile {
					dst++
				}
				// Ignore unroutable errors: a cut network refuses sends.
				_, _ = p.Send(dst, []byte{byte(now)}, flit.VCMask(0xFF), 0)
			}
		}))
	}
	return delivered
}

func TestWatchdogDetectsKilledLink(t *testing.T) {
	const killAt = 200
	n, _ := buildFaulty(t, 3, 64, "kill,link=0,at=200")
	bernoulliClients(n, 0.10, 11)
	n.Run(2000)

	det := n.FaultMap().Detections()
	if len(det) != 1 {
		t.Fatalf("detections = %v, want exactly the killed link", det)
	}
	from, dir, _ := n.LinkEndpoints(0)
	if det[0].From != from || det[0].Dir != dir {
		t.Fatalf("detected (%d,%v), killed (%d,%v)", det[0].From, det[0].Dir, from, dir)
	}
	latency := det[0].DetectedAt - killAt
	if latency < 64 {
		t.Fatalf("detection latency %d below the watchdog threshold 64", latency)
	}
	if latency > 1000 {
		t.Fatalf("detection latency %d implausibly high at 10%% load", latency)
	}
	if n.ReroutedCount() == 0 {
		t.Fatal("no traffic was rerouted after detection")
	}
}

// TestWatchdogNoFalsePositives is the heavy-but-healthy satellite test:
// sustained load near the torus saturation point must never trip a
// watchdog, because credits keep circulating on every loaded link.
func TestWatchdogNoFalsePositives(t *testing.T) {
	n, _ := buildFaulty(t, 5, 64, "")
	delivered := bernoulliClients(n, 0.35, 13)
	n.Run(6000)
	if !n.FaultMap().Empty() {
		t.Fatalf("healthy network declared faults: %v", n.FaultMap().Detections())
	}
	if *delivered == 0 {
		t.Fatal("no traffic delivered; load generator broken")
	}
	if n.ReroutedCount() != 0 {
		t.Fatalf("rerouted %d packets with an empty fault map", n.ReroutedCount())
	}
}

// TestRerouteZeroLossAfterEngage kills every one of the 64 torus links in
// turn and checks the acceptance criterion: packets injected after
// detection + reroute engage are all delivered — no permanent loss — for
// any single-link fault (no single link cuts a 4x4 torus).
func TestRerouteZeroLossAfterEngage(t *testing.T) {
	topo := torus4(t)
	numLinks := len(topology.Links(topo))
	if numLinks != 64 {
		t.Fatalf("4x4 torus has %d links, want 64", numLinks)
	}
	for link := 0; link < numLinks; link++ {
		n, _ := buildFaulty(t, 9, 64, fault.FormatEvents([]fault.Event{
			{Kind: fault.LinkKill, At: 100, Link: link, From: -1, Tile: -1, VC: -1},
		}))
		// Background load so the watchdog sees demand on the dead link.
		bernoulliClients(n, 0.08, 17)
		n.Run(1500)
		det := n.FaultMap().Detections()
		if len(det) != 1 {
			t.Fatalf("link %d: detections = %v", link, det)
		}
		engaged := det[0].DetectedAt

		// Probe: after engagement, every pair must still deliver.
		type probe struct {
			id  uint64
			dst int
		}
		var sent []probe
		got := map[uint64]bool{}
		for tile := 0; tile < topo.NumTiles(); tile++ {
			tile := tile
			n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
				for _, d := range p.Deliveries() {
					got[d.PacketID] = true
				}
			}))
		}
		if engaged >= n.Kernel().Now() {
			t.Fatalf("link %d: engaged at %d, now %d", link, engaged, n.Kernel().Now())
		}
		for src := 0; src < topo.NumTiles(); src++ {
			for dst := 0; dst < topo.NumTiles(); dst++ {
				if src == dst {
					continue
				}
				id, err := n.Port(src).Send(dst, []byte{1, 2, 3}, flit.VCMask(0xFF), 0)
				if err != nil {
					t.Fatalf("link %d: %d->%d unroutable after single fault: %v", link, src, dst, err)
				}
				sent = append(sent, probe{id, dst})
			}
		}
		if !n.Drain(20000) {
			t.Fatalf("link %d: network failed to drain after reroute", link)
		}
		lost := 0
		for _, pr := range sent {
			if !got[pr.id] {
				lost++
			}
		}
		if lost != 0 {
			t.Fatalf("link %d: %d of %d post-engage packets permanently lost", link, lost, len(sent))
		}
	}
}

// TestCampaignDeterminism runs the same seeded campaign twice and demands
// bit-identical outcomes.
func TestCampaignDeterminism(t *testing.T) {
	run := func() (int64, int64, int64, int64, []fault.Detection) {
		n, _ := buildFaulty(t, 7, 64, "kill,link=9,at=300;stall,tile=6,port=W,at=1200,until=1500")
		delivered := bernoulliClients(n, 0.12, 23)
		n.Run(4000)
		tot := n.FaultTotals()
		return *delivered, tot.Rerouted, tot.DroppedFlits, tot.LostFlits, tot.Detections
	}
	d1, r1, df1, lf1, det1 := run()
	d2, r2, df2, lf2, det2 := run()
	if d1 != d2 || r1 != r2 || df1 != df2 || lf1 != lf2 {
		t.Fatalf("campaign not deterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			d1, r1, df1, lf1, d2, r2, df2, lf2)
	}
	if len(det1) != len(det2) {
		t.Fatalf("detections differ: %v vs %v", det1, det2)
	}
	for i := range det1 {
		if det1[i] != det2[i] {
			t.Fatalf("detection %d differs: %v vs %v", i, det1[i], det2[i])
		}
	}
}

// TestPortStallDetection stalls an input controller and checks the
// watchdog fires on the link feeding it; after the stall is revoked the
// (fail-stop) dead link stays routed-around and traffic still flows.
func TestPortStallDetection(t *testing.T) {
	n, inj := buildFaulty(t, 21, 64, "stall,tile=5,port=W,at=500,until=5000")
	delivered := bernoulliClients(n, 0.10, 29)
	n.Run(3000)
	det := n.FaultMap().Detections()
	if len(det) != 1 {
		t.Fatalf("detections = %v, want 1", det)
	}
	if len(inj.Log) == 0 {
		t.Fatal("injector applied nothing")
	}
	want := inj.Log[0].Watched
	if det[0].From != want.From || det[0].Dir != want.Dir {
		t.Fatalf("detected (%d,%v), watched (%d,%v)", det[0].From, det[0].Dir, want.From, want.Dir)
	}
	before := *delivered
	n.Run(3000)
	if *delivered <= before {
		t.Fatal("no deliveries after stall; network wedged")
	}
}

func TestWatchdogConfigValidation(t *testing.T) {
	rc := router.DefaultConfig(0)
	if _, err := New(Config{Topo: torus4(t), Router: rc, Watchdog: -1}); err == nil {
		t.Fatal("negative watchdog accepted")
	}
	if _, err := New(Config{Topo: torus4(t), Router: rc, Watchdog: 8, Deflect: true}); err == nil {
		t.Fatal("watchdog with deflection accepted")
	}
	rc.Mode = router.ModeDrop
	if _, err := New(Config{Topo: torus4(t), Router: rc, Watchdog: 8}); err == nil {
		t.Fatal("watchdog with drop mode accepted")
	}
}
