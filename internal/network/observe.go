package network

import (
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/telemetry/health"
)

// AppendWaitingVCs appends, in deterministic tile/port/VC order, every
// input virtual channel in the network whose head-of-line flit has waited
// at least minAge cycles (plus fault-wedged VCs regardless of age), in
// the health monitor's Sample shape. Routers holding no flits are skipped
// via the O(1) occupancy count, so a quiescent network costs one integer
// compare per tile. Deflection networks have no VC buffers and report
// nothing.
func (n *Network) AppendWaitingVCs(now, minAge int64, out []health.VCWait) []health.VCWait {
	var scratch []router.WaitingVC
	for _, r := range n.routers {
		if r.Occupancy() == 0 {
			continue
		}
		scratch = r.AppendWaiting(now, minAge, scratch[:0])
		for _, w := range scratch {
			hw := health.VCWait{
				Tile:     r.ID(),
				Port:     w.Port,
				VC:       w.VC,
				Age:      w.Age,
				Routed:   w.Routed,
				OutPort:  w.OutPort,
				OutVC:    w.OutVC,
				DownTile: -1,
				Stuck:    w.Stuck,
				Stalled:  w.Stalled,
			}
			if w.Routed && w.OutPort != route.Local {
				if next, ok := n.topo.Neighbor(r.ID(), w.OutPort); ok {
					hw.DownTile = next
				}
			}
			out = append(out, hw)
		}
	}
	return out
}
