package network

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Config assembles a network.
type Config struct {
	Topo   topology.Topology
	Router router.Config // template; ID is overridden per tile

	LinkLatency  int // wire traversal cycles (default 1)
	SerdesCycles int // link cycles per flit (default 1; >1 models narrow links, §3.3)

	// Physical-layer options (§2.5). PhysWires enables bit-level wire
	// modelling with the given spare count; TransientProb and ECC apply
	// per link.
	PhysWires     bool
	SpareWires    int
	TransientProb float64
	ECC           bool

	// Deflect replaces the VC routers with the §3.2 misrouting routers.
	Deflect bool

	// ElasticLinks replaces credit flow control with the §3.3/ref-[4]
	// elastic channels (buffering in the repeaters, locally closed flow
	// control). Mesh only: an elastic channel serializes its VCs, which
	// would reintroduce deadlock on torus rings.
	ElasticLinks bool

	// Adaptive replaces dimension-ordered source routing with west-first
	// turn-model adaptive routing: each hop picks the least-congested
	// productive output. Mesh only (the turn model's deadlock-freedom
	// argument does not cover wraparound channels).
	Adaptive bool

	// Watchdog, when positive, arms per-link credit-starvation watchdogs:
	// a link whose sending router has had flits wanting the link for
	// Watchdog consecutive cycles without a single credit returning is
	// declared dead (fail-stop) and published in the live fault map, and
	// traffic is rerouted around it. Requires the credit-based VC router
	// (no deflection, elastic links, or adaptive routing).
	Watchdog int

	Meter  *power.Meter
	Warmup int64
	Seed   int64

	// TraceWriter, when non-nil, receives one line per packet event
	// (generation, head injection, delivery) for debugging. Tracing does
	// not alter simulation behaviour.
	TraceWriter io.Writer

	// Probe, when non-nil, attaches the telemetry layer: per-component
	// counters, optional cycle-sampled series, and optional per-packet
	// lifecycle tracing. Nil keeps every hook on its zero-cost path and
	// registers no extra phase.
	Probe *telemetry.Probe

	// RouteTable, when non-nil, is a precomputed all-pairs source-route
	// table for this topology (route.BuildTable), shared read-only across
	// every network built over the same geometry — sweep points, parallel
	// ForEach workers, pooled arenas. The fault-free routeFor path serves
	// from it without touching the per-network route cache (which is then
	// not allocated). The table must have been built for exactly Topo's
	// geometry; a mismatched table mis-routes silently.
	RouteTable *route.Table

	// Adjacency, when non-nil, is topology.Links(Topo) precomputed and
	// shared read-only across networks, so repeated construction over one
	// topology walks the neighbor relation once. It must be exactly that
	// call's result for Topo; construction trusts it.
	Adjacency []topology.Link

	// Shards is the intra-cycle parallelism: tiles and links are
	// partitioned into this many contiguous shards and each kernel phase
	// runs concurrently across them, with byte-identical results to the
	// sequential loop (see shard.go). 0 selects GOMAXPROCS; 1 (the
	// default) is the classic sequential loop. Configurations with
	// globally ordered side effects — PhysWires, a Meter, a TraceWriter,
	// or telemetry lifecycle tracing — force 1.
	Shards int

	// BatchEpochs bounds quiescence-aware epoch batching on sharded runs
	// (Shards > 1): when the network-wide active work drops below a
	// threshold, up to this many cycles are folded into one barrier epoch
	// and run inline on worker 0, eliminating up to 2×phases barrier
	// crossings per folded cycle. Results are byte-identical either way
	// (sim.Kernel.SetBatching). 0 selects DefaultBatchEpochs; negative
	// disables batching; ignored on the sequential path and on
	// configurations that force full scans (deflection, watchdogs,
	// tracing, physical wires, power meters).
	BatchEpochs int
}

// DefaultBatchEpochs is the epoch cap used when Config.BatchEpochs is 0.
// It bounds how long worker 0 runs the quiescent network serially before
// the eligibility probe is consulted against fresh worklists at a real
// barrier — long enough to amortize the barrier away on idle stretches,
// short enough that a traffic burst returns to lockstep execution within
// a rounding error of wall-clock time.
const DefaultBatchEpochs = 64

// routeCacheMaxTiles bounds the route cache: above this tile count the
// tiles² cache rows would cost more memory than recomputation is worth.
const routeCacheMaxTiles = 1024

// linkEntry couples a link to its position in the topology. tickedTo is
// the utilization-window high-water mark for the link-gating fast path
// (shard.go): while a link is off its shard's worklist its Util counter
// stops ticking, and tickedTo records the utilTicks value its window was
// frozen at so activation or a Util read can catch it up exactly.
type linkEntry struct {
	l        *link.Link
	from     int
	to       int
	dir      route.Dir
	tickedTo int64
}

// Network is a complete on-chip interconnection network plus the client
// logic attached to its tiles.
type Network struct {
	cfg     Config
	topo    topology.Topology
	kernel  *sim.Kernel
	routers []*router.Router
	defls   []*router.DeflectRouter
	links   []linkEntry
	ports   []*Port
	clients []Client

	recorder *Recorder
	nextID   uint64

	// shards partitions the tiles and links for intra-cycle parallelism
	// (shard.go); one entry (the whole network) on the sequential path.
	// Each shard owns the flit pool its components recycle through.
	// shardOf maps tile -> owning shard; onList backs the per-shard
	// active-router worklists.
	shards  []*shardState
	shardOf []int
	onList  []bool

	// Quiescence gating (shard.go). linkGated enables the per-shard link
	// worklists (linkOn dedupes membership; outLinkIdx / inLinkIdx map
	// tile×port to the link a send or credit wakes; utilTicks counts
	// completed delivery phases, the reference clock for frozen Util
	// windows). portGated enables the pump/loopback port worklists and
	// the active-list eject walk. Both are off for configurations whose
	// observable side effects depend on full-scan order: deflection
	// (separate router type), watchdogs (per-link starvation bookkeeping),
	// packet or lifecycle tracing (event order), physical wires (RNG draw
	// order), and power meters (float accumulation order).
	linkGated  bool
	portGated  bool
	linkOn     []bool
	outLinkIdx []int32
	inLinkIdx  []int32
	utilTicks  int64

	// clientTiles lists tiles with attached clients, ascending, so the
	// serial client phase walks attached clients in tile order without
	// scanning every tile.
	clientTiles []int

	// batchThresh is the active-work ceiling under which sharded runs may
	// fold cycles into batched epochs (batchEligible).
	batchThresh int

	// tracing caches cfg.TraceWriter != nil so hot paths skip the variadic
	// trace call (whose argument boxing allocates) when tracing is off.
	tracing bool

	// probe is the telemetry root (nil when disabled); traceLinks caches
	// whether lifecycle tracing is live so the deliver loop pays one
	// boolean test, not a probe-and-tracer chase, per flit.
	probe      *telemetry.Probe
	traceLinks bool

	// routeCache memoizes source routes per (src,dst) while the fault map
	// is empty (routes are then a pure function of the topology). Rows
	// allocate lazily; nil outer slices disable caching on huge networks.
	// routeTable, when non-nil (Config.RouteTable), replaces the cache
	// with a shared precomputed table. routeHits / routeMisses count
	// lookups served without route.Compute versus recomputations. They are
	// operational metrics, not simulation state: the caches they observe
	// are semantically invisible and refill cold across a restore, so the
	// counters are excluded from checkpoints and never feed deterministic
	// outputs.
	routeCache  [][]route.Word
	routeOK     [][]bool
	routeTable  *route.Table
	routeHits   int64
	routeMisses int64

	// Online fault detection and fault-aware rerouting state (faults.go).
	faultMap   *fault.Map
	wdStarve   []int64 // consecutive starved cycles per link
	wdCredit   []bool  // credit arrived on link i this cycle
	rerouted   int64   // route computations diverted around the fault map
	unroutable int64   // sends refused because the fault map cut the network
	aborted    int64   // partial packets discarded on an abort tail

	// Checkpoint state (checkpoint.go): registered extra state, the
	// cycle of the most recent snapshot (-1 = none), and the configured
	// snapshot interval (0 = checkpointing off), for observability.
	extras        []checkpointExtra
	lastCkptCycle int64
	ckptEvery     int64

	// pktObs, when non-nil, receives every delivered non-loopback packet
	// at the eject barrier, in tile (= sequential-schedule) order. It is a
	// per-run attachment like the checkpoint extras; Reset detaches it.
	// obsScratch is the reused observation record so the hook stays
	// allocation-free.
	pktObs     PacketObserver
	obsScratch PacketObservation
}

// PacketObservation describes one delivered packet for an attached
// PacketObserver: identity, endpoints, the source route's hop count
// (stamped at send time — H in the §3 latency model), and the lifecycle
// timestamps measurement needs. Loopback (src == dst) packets never reach
// the network and are not observed, matching the recorder's latency
// histograms.
type PacketObservation struct {
	ID          uint64
	Src, Dst    int
	Class, Flow int
	Hops        int
	Flits       int
	Birth       int64 // cycle the client created the packet
	Inject      int64 // cycle the head entered the network
	Arrived     int64 // cycle the tail was ejected
}

// PacketObserver receives delivered packets behind the eject barrier, on
// the serial merge goroutine, in deterministic order for any shard count.
type PacketObserver interface {
	PacketDelivered(ob *PacketObservation)
}

// SetPacketObserver installs (or, with nil, removes) the delivered-packet
// observer. The observation record passed to the observer is reused
// across calls; observers must copy what they keep.
func (n *Network) SetPacketObserver(o PacketObserver) { n.pktObs = o }

// New builds the network described by cfg.
func New(cfg Config) (*Network, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("network: nil topology")
	}
	if cfg.LinkLatency < 1 {
		cfg.LinkLatency = 1
	}
	if cfg.SerdesCycles < 1 {
		cfg.SerdesCycles = 1
	}
	if cfg.Deflect && cfg.SerdesCycles != 1 {
		return nil, fmt.Errorf("network: deflection routing requires full-width links (serdes=1)")
	}
	if cfg.ElasticLinks {
		if cfg.Topo.Wrap() {
			return nil, fmt.Errorf("network: elastic links serialize VCs and would deadlock torus rings; use a mesh")
		}
		if cfg.Deflect {
			return nil, fmt.Errorf("network: elastic links apply to the VC router only")
		}
		cfg.Router.ElasticLinks = true
	}
	if cfg.Adaptive {
		if cfg.Topo.Wrap() {
			return nil, fmt.Errorf("network: west-first adaptive routing is deadlock-free on meshes only")
		}
		if cfg.Deflect {
			return nil, fmt.Errorf("network: adaptive routing applies to the VC router only")
		}
		cfg.Router.Adaptive = true
	}
	if cfg.Watchdog < 0 {
		return nil, fmt.Errorf("network: negative watchdog threshold %d", cfg.Watchdog)
	}
	if cfg.Watchdog > 0 {
		if cfg.Deflect || cfg.ElasticLinks || cfg.Adaptive || cfg.Router.Mode != router.ModeVC {
			return nil, fmt.Errorf("network: credit watchdogs require the credit-based VC router (no deflect/elastic/adaptive/drop)")
		}
	}
	n := &Network{
		cfg:           cfg,
		topo:          cfg.Topo,
		kernel:        sim.NewKernel(cfg.Seed),
		recorder:      NewRecorder(cfg.Warmup),
		faultMap:      fault.NewMap(),
		tracing:       cfg.TraceWriter != nil,
		probe:         cfg.Probe,
		lastCkptCycle: -1,
	}
	if cfg.Probe != nil {
		n.traceLinks = cfg.Probe.Tracer() != nil
		kx, ky := cfg.Topo.Radix()
		cfg.Probe.SetGrid(kx, ky)
	}
	tiles := cfg.Topo.NumTiles()
	n.clients = make([]Client, tiles)
	n.routeTable = cfg.RouteTable
	if tiles <= routeCacheMaxTiles && n.routeTable == nil {
		n.routeCache = make([][]route.Word, tiles)
		n.routeOK = make([][]bool, tiles)
	}
	// Tori deadlock under dimension-ordered routing without dateline VC
	// classes; enable them whenever wraparound channels exist. (Dropping
	// and deflection flow control never block, so they need no classes.)
	if cfg.Topo.Wrap() && !cfg.Deflect && cfg.Router.Mode == router.ModeVC {
		n.cfg.Router.DatelineVCs = true
	}
	for tile := 0; tile < tiles; tile++ {
		if cfg.Deflect {
			d := router.NewDeflect(tile, n.preferredDir, cfg.Meter)
			n.defls = append(n.defls, d)
		} else {
			rc := n.cfg.Router
			rc.ID = tile
			rc.Meter = cfg.Meter
			r, err := router.New(rc)
			if err != nil {
				return nil, err
			}
			if rc.Adaptive {
				r.SetAdaptiveRoute(n.westFirstCandidates)
			}
			n.routers = append(n.routers, r)
		}
	}
	adjacency := cfg.Adjacency
	if adjacency == nil {
		adjacency = topology.Links(cfg.Topo)
	}
	for _, tl := range adjacency {
		var phys *link.Phys
		if cfg.PhysWires {
			phys = link.NewPhys(flit.DataBits, cfg.SpareWires, n.kernel.RNG())
			phys.TransientProb = cfg.TransientProb
			phys.ECC = cfg.ECC
		}
		l := link.New(link.Config{
			Name:          fmt.Sprintf("%d-%v", tl.From, tl.Dir),
			LatencyCycles: cfg.LinkLatency,
			SerdesCycles:  cfg.SerdesCycles,
			LengthPitches: tl.Length,
			Phys:          phys,
			Meter:         cfg.Meter,
			Elastic:       cfg.ElasticLinks,
		})
		n.links = append(n.links, linkEntry{l: l, from: tl.From, to: tl.To, dir: tl.Dir})
		if cfg.Deflect {
			n.defls[tl.From].SetOutLink(tl.Dir, l)
		} else {
			n.routers[tl.From].SetOutLink(tl.Dir, l, n.cfg.Router.BufFlits)
			n.routers[tl.To].SetInLink(tl.Dir.Opposite(), l)
			if n.cfg.Router.DatelineVCs && isDateline(cfg.Topo, tl) {
				n.routers[tl.From].SetDateline(tl.Dir, true)
			}
		}
	}
	n.initShards(effectiveShards(cfg, tiles))
	// Quiescence gating: worklist-driven delivery, eject, and pump scans.
	// See the field comments for why each configuration falls back to the
	// full scan.
	ordered := cfg.Deflect || n.tracing || n.traceLinks || cfg.Meter != nil
	n.linkGated = !ordered && cfg.Watchdog == 0 && !cfg.PhysWires
	n.portGated = !ordered
	if n.linkGated {
		n.linkOn = make([]bool, len(n.links))
		n.outLinkIdx = make([]int32, tiles*router.NumPorts)
		n.inLinkIdx = make([]int32, tiles*router.NumPorts)
		for i := range n.outLinkIdx {
			n.outLinkIdx[i] = -1
			n.inLinkIdx[i] = -1
		}
		for i := range n.links {
			le := &n.links[i]
			n.outLinkIdx[le.from*router.NumPorts+int(le.dir)] = int32(i)
			n.inLinkIdx[le.to*router.NumPorts+int(le.dir.Opposite())] = int32(i)
		}
	}
	n.batchThresh = tiles / 64
	if n.batchThresh < 8 {
		n.batchThresh = 8
	}
	for _, r := range n.routers {
		r.SetPool(&n.shards[n.shardOf[r.ID()]].pool)
	}
	for _, le := range n.links {
		// A link recycles flits during Deliver (drop on a dead link), so it
		// draws from the pool of the shard that owns it: the receiver's.
		le.l.SetPool(&n.shards[n.shardOf[le.to]].pool)
	}
	if n.probe != nil {
		// Every tile gets a probe (the port-level counters apply in all
		// modes); the router-phase hooks exist on the VC router only.
		for tile := 0; tile < tiles; tile++ {
			rp := n.probe.RegisterRouter(tile, n.cfg.Router.NumVCs)
			if !cfg.Deflect {
				n.routers[tile].SetProbe(rp)
			}
		}
		for i, le := range n.links {
			px, py := cfg.Topo.PhysPos(le.from)
			le.l.SetProbe(n.probe.RegisterLink(i, le.from, le.to, le.dir, cfg.SerdesCycles, px, py))
		}
	}
	for tile := 0; tile < tiles; tile++ {
		sh := n.shards[n.shardOf[tile]]
		p := &Port{tile: tile, net: n, shard: sh, pool: &sh.pool}
		if n.probe != nil {
			p.probe = n.probe.Routers[tile]
		}
		tile := tile
		if cfg.Deflect {
			p.canInject = func(int) bool { return n.defls[tile].CanInject() }
			p.accept = func(f *flit.Flit) { n.defls[tile].AcceptFlit(f, route.Local) }
		} else {
			p.canInject = func(vc int) bool { return n.routers[tile].CanInject(vc) }
			p.accept = func(f *flit.Flit) { n.acceptAt(tile, f, route.Local) }
		}
		n.ports = append(n.ports, p)
	}
	n.registerPhases()
	return n, nil
}

// isDateline reports whether a channel is its ring's wraparound dateline:
// the logical edge between coordinate k-1 and 0 in its dimension.
func isDateline(topo topology.Topology, tl topology.Link) bool {
	kx, ky := topo.Radix()
	fx, fy := topology.Coord(topo, tl.From)
	switch tl.Dir {
	case route.East:
		return fx == kx-1
	case route.West:
		return fx == 0
	case route.North:
		return fy == ky-1
	case route.South:
		return fy == 0
	}
	return false
}

// westFirstCandidates reports the productive outputs from tile toward dst
// under the west-first turn model: all westward hops happen first (no turn
// may enter the west direction later), after which the router may choose
// adaptively among the remaining productive directions. The turn model
// breaks every cycle in the mesh channel-dependency graph, so adaptive
// routing stays deadlock-free (Glass & Ni's turn model, applying the
// paper's §3 call to explore routing alternatives).
func (n *Network) westFirstCandidates(tile, dst int) []route.Dir {
	kx, _ := n.topo.Radix()
	x, y := tile%kx, tile/kx
	dx, dy := dst%kx-x, dst/kx-y
	if dx == 0 && dy == 0 {
		return nil
	}
	if dx < 0 {
		return []route.Dir{route.West}
	}
	var out []route.Dir
	if dx > 0 {
		out = append(out, route.East)
	}
	if dy > 0 {
		out = append(out, route.North)
	}
	if dy < 0 {
		out = append(out, route.South)
	}
	return out
}

// preferredDir is the per-cycle dimension-order preference used by
// deflection routers.
func (n *Network) preferredDir(tile, dst int) route.Dir {
	if tile == dst {
		return route.Local
	}
	kx, _ := n.topo.Radix()
	path := route.DimensionOrder(n.topo, tile%kx, tile/kx, dst%kx, dst/kx)
	if len(path) == 0 {
		return route.Local
	}
	return path[0]
}

// registerPhases wires the cycle schedule described in DESIGN.md —
// deliver, route, link arbitration, switch arbitration, then the client
// half-cycle split into eject / clients / pump. Every phase except the
// serial client Tick is registered sharded (shard.go); with one shard the
// kernel runs the shard bodies inline, which *is* the classic sequential
// loop, so both modes execute the same code and cannot diverge.
func (n *Network) registerPhases() {
	k := n.kernel
	k.SetShards(len(n.shards))
	k.AddShardedPhase("deliver", n.deliverShard, n.deliverMerge)
	// The router phases walk the per-shard active worklists: a router
	// holding no flits has nothing buffered, staged, or bypassed, so route
	// computation and both arbitrations are state no-ops (the round-robin
	// arbiters only advance on a grant) and quiescent regions cost nothing.
	k.AddShardedPhase("route", n.routeShard, nil)
	// Under link gating linkarb needs a merge to apply cross-shard link
	// activations (a send whose receiving tile lives in another shard);
	// without gating the merge (and its extra barrier) is omitted.
	var lam sim.PhaseFunc
	if n.linkGated {
		lam = n.linkarbMerge
	}
	k.AddShardedPhase("linkarb", n.linkarbShard, lam)
	k.AddShardedPhase("switcharb", n.switcharbShard, nil)
	k.AddShardedPhase("eject", n.ejectShard, n.ejectMerge)
	k.AddPhase("clients", n.clientsTick)
	k.AddShardedPhase("pump", n.pumpShard, n.pumpMerge)
	if n.cfg.Watchdog > 0 {
		n.wdStarve = make([]int64, len(n.links))
		n.wdCredit = make([]bool, len(n.links))
		n.kernel.AddPhase("watchdog", n.watchdogTick)
	}
	// Quiescence-aware epoch batching: on sharded runs, fold cycles into
	// single-barrier epochs while the worklists show too little active
	// work to be worth fanning out. The kernel's Step path executes the
	// same phase schedule inline, so results — including serial-phase
	// timing (telemetry samples, serve snapshots, checkpoints) — are
	// byte-identical; only the barrier count changes. Requires the gated
	// worklists: they are the quiescence signal.
	if len(n.shards) > 1 && n.linkGated && n.portGated && n.cfg.BatchEpochs >= 0 {
		epochs := n.cfg.BatchEpochs
		if epochs == 0 {
			epochs = DefaultBatchEpochs
		}
		k.SetBatching(epochs, n.batchEligible)
	}
	// The sampling phase exists only when a probe asked for a series, so a
	// probe-less (or counters-only) network's cycle loop is untouched.
	if n.probe != nil && n.probe.SampleEvery() > 0 {
		every := n.probe.SampleEvery()
		n.kernel.AddPhase("telemetry", func(now sim.Cycle) {
			if int64(now)%every != 0 {
				return
			}
			var bufOcc int64
			for _, r := range n.routers {
				r.SampleTelemetry()
				bufOcc += int64(r.Occupancy())
			}
			var inFlight int64
			for _, le := range n.links {
				inFlight += int64(le.l.InFlight())
			}
			n.probe.AddSample(int64(now), bufOcc, inFlight)
		})
	}
	// The schedule above is the network's own; phases other layers append
	// afterwards (checkpointing, serve collectors, flight recorders, fault
	// injectors) are per-run attachments that Reset truncates away.
	k.MarkPhases()
}

// batchEligible is the quiescence probe for epoch batching: it approves
// folding cycles onto one worker while the total active work (routers
// plus links on the per-shard worklists) is below the threshold where
// fan-out overhead dominates the work itself. Consulted by worker 0 at
// cycle boundaries, where the worklists are quiescent state.
func (n *Network) batchEligible() bool {
	total := 0
	for _, s := range n.shards {
		total += len(s.active) + len(s.activeLinks)
		if total > n.batchThresh {
			return false
		}
	}
	return true
}

// AttachClient installs (or, with a nil client, removes) the client logic
// for a tile, keeping the dense ascending client list the serial client
// phase walks.
func (n *Network) AttachClient(tile int, c Client) {
	had := n.clients[tile] != nil
	n.clients[tile] = c
	switch {
	case c != nil && !had:
		i := sort.SearchInts(n.clientTiles, tile)
		n.clientTiles = append(n.clientTiles, 0)
		copy(n.clientTiles[i+1:], n.clientTiles[i:])
		n.clientTiles[i] = tile
	case c == nil && had:
		i := sort.SearchInts(n.clientTiles, tile)
		n.clientTiles = append(n.clientTiles[:i], n.clientTiles[i+1:]...)
	}
}

// Port returns the tile's network port.
func (n *Network) Port(tile int) *Port { return n.ports[tile] }

// Router returns the tile's VC router (nil in deflection mode).
func (n *Network) Router(tile int) *router.Router {
	if n.cfg.Deflect {
		return nil
	}
	return n.routers[tile]
}

// Kernel exposes the simulation kernel.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// FlitPool exposes shard 0's flit free-list for leak accounting: on the
// sequential path (Shards()==1, the default) it is the network's only
// pool, and after a Drain its Outstanding() must equal zero. Sharded
// networks recycle flits through one pool per shard — use
// FlitsOutstanding for the aggregate there.
func (n *Network) FlitPool() *flit.Pool { return &n.shards[0].pool }

// Recorder exposes the measurement recorder.
func (n *Network) Recorder() *Recorder { return n.recorder }

// Probe exposes the telemetry probe (nil when telemetry is disabled).
func (n *Network) Probe() *telemetry.Probe { return n.probe }

// Topology reports the network's topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// LinkLatency reports the configured wire traversal time in cycles.
func (n *Network) LinkLatency() int { return n.cfg.LinkLatency }

// SerdesCycles reports the configured link cycles per flit.
func (n *Network) SerdesCycles() int { return n.cfg.SerdesCycles }

// Run advances the simulation by the given number of cycles.
func (n *Network) Run(cycles int64) {
	n.kernel.Run(cycles)
	n.observeProbe()
}

// observeProbe extends the probe's horizon and mirrors the network's
// deterministic route-table counters into it.
func (n *Network) observeProbe() {
	if n.probe == nil {
		return
	}
	n.probe.Observe(int64(n.kernel.Now()))
	n.probe.RouteTableHits = n.routeHits
	n.probe.RouteTableMisses = n.routeMisses
}

// Occupancy reports flits buffered anywhere in the network (routers and
// links). Under gating this is O(active components): every router holding
// a flit is on its shard's worklist (acceptance activates, the route
// sweep only drops empty routers), and every link with a flit in flight
// is on its link worklist (sends activate, the delivery sweep only drops
// idle links).
func (n *Network) Occupancy() int {
	total := 0
	if n.linkGated {
		for _, s := range n.shards {
			for _, t := range s.active {
				total += n.routers[t].Occupancy()
			}
		}
		return total + n.LinksInFlight()
	}
	for _, r := range n.routers {
		total += r.Occupancy()
	}
	for _, d := range n.defls {
		total += d.Occupancy()
	}
	return total + n.LinksInFlight()
}

// LinksInFlight reports flits in flight on the wires, O(active links)
// under gating.
func (n *Network) LinksInFlight() int {
	total := 0
	if n.linkGated {
		for _, s := range n.shards {
			for _, li := range s.activeLinks {
				total += n.links[li].l.InFlight()
			}
		}
		return total
	}
	for i := range n.links {
		total += n.links[i].l.InFlight()
	}
	return total
}

// Drain runs the network until no flits remain in flight (sources must
// have stopped injecting) or the budget is exhausted, and reports whether
// it drained.
func (n *Network) Drain(budget int64) bool {
	drained := n.kernel.RunUntil(func() bool {
		if n.Occupancy() != 0 {
			return false
		}
		if n.portGated {
			// Every port with pending or in-progress injections is on
			// its shard's pump worklist (Send/SendReserved enlist it and
			// only the pump sweep delists drained ports).
			for _, s := range n.shards {
				for _, t := range s.pumpList {
					if n.ports[t].PendingInjections() != 0 {
						return false
					}
				}
			}
			return true
		}
		for _, p := range n.ports {
			if p.PendingInjections() != 0 {
				return false
			}
		}
		return true
	}, budget)
	n.observeProbe()
	return drained
}

// ReservationSlot reports the link slot hop i of a flow with the given
// injection phase must reserve: injection reaches the first output link
// two cycles after the client drives the flit, and each hop adds the
// one-cycle switch plus one-cycle wire pipeline.
func ReservationSlot(phase, hop int) int { return phase + 2 + 2*hop }

// ReserveFlow books the reservation registers along the dimension-ordered
// route from src to dst for a flow that injects one flit on every cycle
// congruent to phase modulo the routers' reservation period (§2.6). The
// slot at hop i is phase+2+2i: injection reaches the first output link two
// cycles after the client drives the flit, and each hop adds the one-cycle
// switch plus one-cycle wire pipeline.
func (n *Network) ReserveFlow(src, dst, flow, phase int) (hops int, err error) {
	if n.cfg.Deflect {
		return 0, fmt.Errorf("network: reservations require the VC router")
	}
	if n.cfg.Router.Adaptive {
		// The slots below assume the dimension-ordered path; an adaptive
		// router may take another, leaving reserved flits waiting on links
		// they never reach.
		return 0, fmt.Errorf("network: pre-scheduled flows require deterministic (dimension-ordered) routing")
	}
	if n.cfg.Router.ReservedVC < 0 {
		return 0, fmt.Errorf("network: configure Router.ReservedVC for pre-scheduled flows")
	}
	w, err := route.Compute(n.topo, src, dst)
	if err != nil {
		return 0, err
	}
	dirs, err := route.Walk(w)
	if err != nil {
		return 0, err
	}
	tile := src
	for i, d := range dirs {
		if err := n.routers[tile].Reservations(d).Reserve(ReservationSlot(phase, i), flow); err != nil {
			return 0, fmt.Errorf("network: hop %d at tile %d: %w", i, tile, err)
		}
		next, ok := n.topo.Neighbor(tile, d)
		if !ok {
			return 0, fmt.Errorf("network: route leaves topology at tile %d", tile)
		}
		tile = next
	}
	return len(dirs), nil
}

// finalizeUtil catches every off-worklist link's frozen utilization
// window up to the present before the Util counters are read. On-list
// links tick every delivery phase and need nothing; off-list links have
// been idle since tickedTo, so the missing window is pure idle cycles.
func (n *Network) finalizeUtil() {
	if !n.linkGated {
		return
	}
	for i := range n.links {
		le := &n.links[i]
		if n.linkOn[i] {
			continue
		}
		if gap := n.utilTicks - le.tickedTo; gap > 0 {
			le.l.Util.AddCycles(gap)
			le.tickedTo = n.utilTicks
		}
	}
}

// LinkUtilization summarizes the duty factor of every inter-tile channel:
// the fraction of cycles each link's wires were busy (§4.4).
func (n *Network) LinkUtilization() stats.Summary {
	n.finalizeUtil()
	var s stats.Summary
	for _, le := range n.links {
		s.Add(le.l.Util.Rate())
	}
	return s
}

// MaxLinkUtilization reports the busiest channel's duty factor.
func (n *Network) MaxLinkUtilization() float64 {
	n.finalizeUtil()
	best := 0.0
	for _, le := range n.links {
		if r := le.l.Util.Rate(); r > best {
			best = r
		}
	}
	return best
}

// Heatmap renders the die as ASCII with one cell per physical tile
// position, showing the mean duty factor of the tile's outgoing channels
// as a percentage — a quick view of where the §4.4 wire sharing happens.
func (n *Network) Heatmap() string {
	n.finalizeUtil()
	kx, ky := n.topo.Radix()
	util := make(map[int]*stats.Summary)
	for _, le := range n.links {
		s, ok := util[le.from]
		if !ok {
			s = &stats.Summary{}
			util[le.from] = s
		}
		s.Add(le.l.Util.Rate())
	}
	grid := make([][]string, ky)
	for y := range grid {
		grid[y] = make([]string, kx)
	}
	for tile := 0; tile < n.topo.NumTiles(); tile++ {
		px, py := n.topo.PhysPos(tile)
		v := 0.0
		if s, ok := util[tile]; ok {
			v = s.Mean()
		}
		grid[py][px] = fmt.Sprintf("%2d:%3.0f%%", tile, 100*v)
	}
	var sb strings.Builder
	sb.WriteString("outgoing-channel duty factor by die position (tile:util):\n")
	for y := ky - 1; y >= 0; y-- {
		for x := 0; x < kx; x++ {
			sb.WriteString("  ")
			sb.WriteString(grid[y][x])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Links exposes the link entries for fault-injection experiments: the
// physical layer of link i is Links()[i].Phys (nil unless PhysWires).
func (n *Network) Links() []*link.Link {
	out := make([]*link.Link, len(n.links))
	for i, le := range n.links {
		out[i] = le.l
	}
	return out
}

func (n *Network) nextPacketID() uint64 {
	n.nextID++
	return n.nextID
}

// trace emits one packet-event line when tracing is enabled.
func (n *Network) trace(format string, args ...any) {
	if n.cfg.TraceWriter == nil {
		return
	}
	fmt.Fprintf(n.cfg.TraceWriter, format+"\n", args...)
}
