package network

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file implements the network side of the runtime fault-injection
// subsystem: the credit-starvation watchdogs (online detection), the
// fail-stop declare-dead protocol, fault-aware source rerouting, and the
// fault.Target interface the injector drives.

// watchdogTick is the per-cycle watchdog phase. For every healthy link it
// counts consecutive cycles in which the sending router had demand for the
// link but no credit returned; at the threshold the link is declared dead.
// A credit arrival or an idle (demand-free) cycle resets the counter, so a
// heavily loaded but healthy link never trips the watchdog as long as its
// credits keep circulating.
func (n *Network) watchdogTick(now sim.Cycle) {
	for i := range n.links {
		le := &n.links[i]
		if n.faultMap.IsDown(le.from, le.dir) {
			continue
		}
		if n.wdCredit[i] || !n.routers[le.from].HasDemand(le.dir) {
			n.wdStarve[i] = 0
			continue
		}
		n.wdStarve[i]++
		if n.wdStarve[i] >= int64(n.cfg.Watchdog) {
			n.declareDead(i, now)
		}
	}
	for _, r := range n.routers {
		if r.HasDeadOutput() {
			r.FaultSweep(now)
		}
	}
}

// declareDead executes the fail-stop protocol for link i at cycle now:
//
//  1. publish the link in the live fault map;
//  2. fence the wires (SetDown), so nothing arrives after step 4;
//  3. kill the sending router's output: staged flits drop, VCs routed
//     toward it drain via FaultSweep with credits returned upstream;
//  4. abandon the receiving router's input: packets cut mid-flight get
//     synthetic abort tails that release downstream VC state;
//  5. recompute the source routes of every not-yet-injected packet around
//     the updated fault map.
func (n *Network) declareDead(i int, now int64) {
	le := &n.links[i]
	if !n.faultMap.MarkDown(le.from, le.dir, now) {
		return
	}
	le.l.SetDown(true)
	n.routers[le.from].KillOutput(le.dir)
	n.routers[le.to].AbandonInput(le.dir.Opposite(), now)
	// AbandonInput synthesizes abort tails into the receiver's input
	// buffers; put it on its shard's worklist so they route and eject.
	n.activate(le.to)
	n.reroutePending()
	if n.probe != nil {
		n.probe.OnLinkDead(i, now)
	}
	n.trace("cycle=%d event=link-dead link=%d from=%d dir=%v starved=%d", now, i, le.from, le.dir, n.cfg.Watchdog)
}

// routeFor computes the source route from src to dst honouring the live
// fault map: dimension order when its path is fault-free (preserving the
// dateline deadlock-avoidance argument for unaffected pairs), otherwise the
// minimal path avoiding dead channels. rerouted reports that the fault map
// diverted the route; the error is topology.ErrNetworkCut when no
// fault-free path exists.
func (n *Network) routeFor(src, dst int) (w route.Word, rerouted bool, err error) {
	if n.faultMap.Empty() {
		// Fault-free routes are a pure function of the topology, so they
		// are served from the shared precomputed table (Config.RouteTable)
		// or memoized per (src,dst). Both are bypassed once the (grow-only)
		// fault map is nonempty. routeHits counts lookups that avoided
		// route.Compute; routeMisses counts recomputations.
		if n.routeTable != nil {
			if w, ok := n.routeTable.Lookup(src, dst); ok {
				n.routeHits++
				return w, false, nil
			}
		}
		if n.routeOK != nil {
			if row := n.routeOK[src]; row != nil && row[dst] {
				n.routeHits++
				return n.routeCache[src][dst], false, nil
			}
		}
		n.routeMisses++
		w, err = route.Compute(n.topo, src, dst)
		if err == nil && n.routeOK != nil {
			if n.routeOK[src] == nil {
				tiles := n.topo.NumTiles()
				n.routeOK[src] = make([]bool, tiles)
				n.routeCache[src] = make([]route.Word, tiles)
			}
			n.routeOK[src][dst] = true
			n.routeCache[src][dst] = w
		}
		return w, false, err
	}
	n.routeMisses++
	w, err = route.Compute(n.topo, src, dst)
	if err == nil && n.pathClear(src, w) {
		return w, false, nil
	}
	path, perr := topology.ShortestAvoiding(n.topo, src, dst, n.faultMap.IsDown)
	if perr != nil {
		return route.Word{}, false, perr
	}
	w, err = route.Encode(path)
	if err != nil {
		return route.Word{}, false, err
	}
	return w, true, nil
}

// pathClear reports whether the route crosses no dead channel.
func (n *Network) pathClear(src int, w route.Word) bool {
	dirs, err := route.Walk(w)
	if err != nil {
		return false
	}
	tile := src
	for _, d := range dirs {
		if n.faultMap.IsDown(tile, d) {
			return false
		}
		next, ok := n.topo.Neighbor(tile, d)
		if !ok {
			return false
		}
		tile = next
	}
	return true
}

// reroutePending recomputes the route of every queued (not yet injected)
// packet after a fault map change, so traffic accepted before the fault
// degrades gracefully instead of marching into the dead link. Packets the
// fault cut off entirely are discarded and counted unroutable.
func (n *Network) reroutePending() {
	for _, p := range n.ports {
		keep := p.pending[:0]
		for _, in := range p.pending {
			head := in.flits[0]
			w, rr, err := n.routeFor(p.tile, head.Dst)
			if err != nil {
				n.unroutable++
				// The injection never started, so every flit is still
				// ours: recycle them and the injection itself.
				for _, f := range in.flits {
					p.pool.Put(f)
				}
				p.putInjection(in)
				continue
			}
			if rr {
				n.rerouted++
				head.Route = w
			}
			keep = append(keep, in)
		}
		// Zero the dropped tail so discarded injections are collectable.
		for i := len(keep); i < len(p.pending); i++ {
			p.pending[i] = nil
		}
		p.pending = keep
	}
}

// RouteTableStats reports route lookups served without running
// route.Compute (from the shared table or the per-network memo cache)
// versus recomputations. Operational metrics only: the caches refill
// cold across a checkpoint restore, so these counters are excluded from
// snapshots and must never feed deterministic outputs.
func (n *Network) RouteTableStats() (hits, misses int64) {
	return n.routeHits, n.routeMisses
}

// FaultMap exposes the live fault map published by the watchdogs.
func (n *Network) FaultMap() *fault.Map { return n.faultMap }

// ReroutedCount reports how many route computations were diverted around
// the fault map (at injection or while queued).
func (n *Network) ReroutedCount() int64 { return n.rerouted }

// UnroutableCount reports packets refused or discarded because the fault
// map cut the network between their endpoints.
func (n *Network) UnroutableCount() int64 { return n.unroutable }

// AbortedCount reports partial packets the destination ports discarded on
// a synthetic abort tail (mid-flight packets cut by a dead link).
func (n *Network) AbortedCount() int64 { return n.aborted }

// FaultTotals aggregates the fault accounting across routers and links.
type FaultTotals struct {
	DeadLinks      int   // channels declared dead by the watchdogs
	LostFlits      int64 // flits lost on dead wires
	LostCredits    int64 // credits lost on dead wires
	DroppedFlits   int64 // flits drained at dead outputs
	DroppedPackets int64 // tails among those (≈ packets cut at routers)
	AbortedIn      int64 // packets terminated with synthetic abort tails
	AbortedRx      int64 // partial packets discarded at destinations
	Rerouted       int64 // route computations diverted by the fault map
	Unroutable     int64 // sends refused because the network was cut
	Detections     []fault.Detection
}

// FaultTotals collects the network-wide fault accounting.
func (n *Network) FaultTotals() FaultTotals {
	t := FaultTotals{
		DeadLinks:  n.faultMap.Len(),
		AbortedRx:  n.aborted,
		Rerouted:   n.rerouted,
		Unroutable: n.unroutable,
		Detections: n.faultMap.Detections(),
	}
	for _, le := range n.links {
		t.LostFlits += le.l.FaultLostFlits
		t.LostCredits += le.l.FaultLostCredits
	}
	for _, r := range n.routers {
		t.DroppedFlits += r.Stats.FaultDroppedFlits
		t.DroppedPackets += r.Stats.FaultDroppedPackets
		t.AbortedIn += r.Stats.AbortedPackets
	}
	return t
}

// --- fault.Target implementation -------------------------------------------

// NumTiles implements fault.Target.
func (n *Network) NumTiles() int { return n.topo.NumTiles() }

// NumLinks implements fault.Target.
func (n *Network) NumLinks() int { return len(n.links) }

// LinkEndpoints implements fault.Target.
func (n *Network) LinkEndpoints(i int) (from int, dir route.Dir, to int) {
	le := &n.links[i]
	return le.from, le.dir, le.to
}

// SetLinkDown implements fault.Target: it breaks the hardware only. The
// watchdogs, not the injector, are responsible for detecting the fault and
// updating the fault map.
func (n *Network) SetLinkDown(i int, down bool) { n.links[i].l.SetDown(down) }

// SetLinkFlip implements fault.Target.
func (n *Network) SetLinkFlip(i int, prob float64) error {
	le := &n.links[i]
	if le.l.Phys == nil {
		return fmt.Errorf("network: link %d has no physical wire layer (enable PhysWires)", i)
	}
	le.l.Phys.TransientProb = prob
	return nil
}

// SetPortStall implements fault.Target.
func (n *Network) SetPortStall(tile int, port route.Dir, on bool) {
	n.routers[tile].SetPortStall(port, on)
}

// SetVCStuck implements fault.Target.
func (n *Network) SetVCStuck(tile int, port route.Dir, vc int, on bool) {
	n.routers[tile].SetVCStuck(port, vc, on)
}
