package network

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/flit"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/topology"
)

func torus4(t *testing.T) topology.Topology {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func mesh4(t *testing.T) topology.Topology {
	t.Helper()
	topo, err := topology.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func build(t *testing.T, cfg Config) *Network {
	t.Helper()
	if cfg.Router.NumVCs == 0 {
		cfg.Router = router.DefaultConfig(0)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSinglePacketLatency(t *testing.T) {
	// Zero-load latency of the 2-cycle/hop pipeline: inject at t0, head
	// reaches the client at t0 + 2H + 2.
	n := build(t, Config{Topo: torus4(t), Seed: 1})
	payload := []byte("route packets, not wires")
	var got *Delivery
	n.AttachClient(5, ClientFunc(func(now int64, p *Port) {
		for _, d := range p.Deliveries() {
			cp := *d
			cp.Payload = append([]byte(nil), d.Payload...)
			got = &cp
		}
	}))
	if _, err := n.Port(0).Send(5, payload, flit.MaskFor(0), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(40)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload corrupted: %q", got.Payload)
	}
	// 0 -> 5 on the 4x4 torus is 2 hops (E then N).
	hops, _ := topology.PathMetrics(n.Topology(), 0, 5)
	want := int64(2*hops + 2)
	if lat := got.Arrived - got.Birth; lat != want {
		t.Fatalf("latency = %d, want %d (H=%d)", lat, want, hops)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	for _, topo := range []topology.Topology{torus4(t), mesh4(t)} {
		n := build(t, Config{Topo: topo, Seed: 2})
		type key struct{ src, dst int }
		want := make(map[key][]byte)
		received := make(map[key][]byte)
		for tile := 0; tile < topo.NumTiles(); tile++ {
			tile := tile
			n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
				for _, d := range p.Deliveries() {
					received[key{d.Src, tile}] = append([]byte(nil), d.Payload...)
				}
			}))
		}
		for src := 0; src < topo.NumTiles(); src++ {
			for dst := 0; dst < topo.NumTiles(); dst++ {
				payload := []byte(fmt.Sprintf("%s:%d->%d payload", topo.Name(), src, dst))
				want[key{src, dst}] = payload
				if _, err := n.Port(src).Send(dst, payload, flit.VCMask(0xFF), 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !n.Drain(20000) {
			t.Fatalf("%s: network did not drain (occupancy %d)", topo.Name(), n.Occupancy())
		}
		for k, w := range want {
			got, ok := received[k]
			if !ok {
				t.Fatalf("%s: %d->%d never delivered", topo.Name(), k.src, k.dst)
			}
			if !bytes.Equal(got, w) {
				t.Fatalf("%s: %d->%d corrupted", topo.Name(), k.src, k.dst)
			}
		}
		rec := n.Recorder()
		if rec.DeliveredPackets != int64(len(want)) {
			t.Fatalf("%s: delivered %d, want %d", topo.Name(), rec.DeliveredPackets, len(want))
		}
	}
}

func TestMultiFlitPacketsUnderLoad(t *testing.T) {
	n := build(t, Config{Topo: torus4(t), Seed: 3})
	topo := n.Topology()
	delivered := 0
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			for _, d := range p.Deliveries() {
				if len(d.Payload) != 200 {
					t.Errorf("payload len %d", len(d.Payload))
				}
				delivered++
			}
		}))
	}
	// Everyone sends 7-flit packets to a rotating destination.
	sent := 0
	for round := 0; round < 5; round++ {
		for src := 0; src < topo.NumTiles(); src++ {
			dst := (src + round + 1) % topo.NumTiles()
			if dst == src {
				continue
			}
			payload := make([]byte, 200)
			for i := range payload {
				payload[i] = byte(src ^ i)
			}
			if _, err := n.Port(src).Send(dst, payload, flit.VCMask(0x0F), 0); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if !n.Drain(50000) {
		t.Fatalf("did not drain: occupancy %d", n.Occupancy())
	}
	if delivered != sent {
		t.Fatalf("delivered %d of %d", delivered, sent)
	}
}

func TestCreditsRestoredAfterDrain(t *testing.T) {
	n := build(t, Config{Topo: torus4(t), Seed: 4})
	for src := 0; src < 16; src++ {
		dst := (src + 7) % 16
		if dst == src {
			continue
		}
		if _, err := n.Port(src).Send(dst, make([]byte, 128), flit.VCMask(0xFF), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !n.Drain(20000) {
		t.Fatal("did not drain")
	}
	// Credit conservation: with the network empty, every output controller
	// must hold exactly BufFlits credits per VC again.
	buf := n.routers[0].Config().BufFlits
	// Let in-flight credits on reverse channels land.
	n.Run(5)
	for tile := 0; tile < 16; tile++ {
		r := n.Router(tile)
		for _, d := range dirsOf() {
			if _, ok := n.Topology().Neighbor(tile, d); !ok {
				continue
			}
			for vc := 0; vc < r.Config().NumVCs; vc++ {
				if got := r.CreditCount(d, vc); got != buf {
					t.Fatalf("tile %d dir %v vc %d: credits %d, want %d", tile, d, vc, got, buf)
				}
			}
		}
	}
}

func TestLoopback(t *testing.T) {
	n := build(t, Config{Topo: torus4(t), Seed: 5})
	var got *Delivery
	n.AttachClient(3, ClientFunc(func(now int64, p *Port) {
		for _, d := range p.Deliveries() {
			cp := *d
			cp.Payload = append([]byte(nil), d.Payload...)
			got = &cp
		}
	}))
	if _, err := n.Port(3).Send(3, []byte("self"), flit.MaskFor(0), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(5)
	if got == nil || string(got.Payload) != "self" {
		t.Fatalf("loopback failed: %+v", got)
	}
	if got.Arrived-got.Birth != 1 {
		t.Fatalf("loopback latency = %d, want 1", got.Arrived-got.Birth)
	}
}

func TestSendValidation(t *testing.T) {
	n := build(t, Config{Topo: torus4(t), Seed: 6})
	if _, err := n.Port(0).Send(99, nil, flit.MaskFor(0), 0); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := n.Port(0).Send(1, nil, 0, 0); err == nil {
		t.Error("empty VC mask accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		n := build(t, Config{Topo: torus4(t), Seed: 42})
		topo := n.Topology()
		for tile := 0; tile < topo.NumTiles(); tile++ {
			tile := tile
			n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
				p.Deliveries()
				if now < 500 && now%3 == int64(tile%3) {
					dst := int(now+int64(tile)*7) % topo.NumTiles()
					if dst != tile {
						_, _ = p.Send(dst, make([]byte, 64), flit.VCMask(0xFF), 0)
					}
				}
			}))
		}
		n.Run(800)
		rec := n.Recorder()
		return rec.DeliveredPackets, rec.PacketLatency.Count()
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", d1, l1, d2, l2)
	}
	if d1 == 0 {
		t.Fatal("no packets delivered in determinism check")
	}
}

func TestPriorityInterruptsLongPacket(t *testing.T) {
	// §2.1: "the injection of a long, low priority packet may be
	// interrupted to inject a short, high-priority packet and then
	// resumed." With per-cycle injection arbitration, a high-class
	// single-flit packet queued mid-injection must be delivered before the
	// long packet finishes.
	n := build(t, Config{Topo: torus4(t), Seed: 7})
	var longDone, shortDone int64
	n.AttachClient(2, ClientFunc(func(now int64, p *Port) {
		for _, d := range p.Deliveries() {
			if d.Class == 0 {
				longDone = now
			} else {
				shortDone = now
			}
		}
	}))
	long := make([]byte, 10*flit.DataBytes) // 10 flits
	if _, err := n.Port(0).Send(2, long, flit.MaskFor(0), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(3) // let the long packet start injecting
	if _, err := n.Port(0).Send(2, []byte("urgent"), flit.MaskFor(1), 9); err != nil {
		t.Fatal(err)
	}
	n.Run(200)
	if longDone == 0 || shortDone == 0 {
		t.Fatalf("deliveries missing: long=%d short=%d", longDone, shortDone)
	}
	if shortDone >= longDone {
		t.Fatalf("high-priority packet (t=%d) did not overtake long packet (t=%d)", shortDone, longDone)
	}
}

func TestDropModeDropsUnderOverload(t *testing.T) {
	rc := router.DefaultConfig(0)
	rc.Mode = router.ModeDrop
	rc.BufFlits = 1
	rc.NumVCs = 1
	n := build(t, Config{Topo: torus4(t), Router: rc, Seed: 8})
	topo := n.Topology()
	// Hammer a single hotspot from every tile.
	for tile := 0; tile < topo.NumTiles(); tile++ {
		tile := tile
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			p.Deliveries()
			if tile != 0 && now < 400 {
				_, _ = p.Send(0, []byte{byte(tile)}, flit.MaskFor(0), 0)
			}
		}))
	}
	n.Run(600)
	if !n.Drain(50000) {
		t.Fatalf("drop-mode network did not drain (occupancy %d)", n.Occupancy())
	}
	var drops int64
	for tile := 0; tile < topo.NumTiles(); tile++ {
		drops += n.Router(tile).Stats.DroppedPackets
	}
	rec := n.Recorder()
	if drops == 0 {
		t.Fatal("hotspot overload produced no drops in drop mode")
	}
	if rec.DeliveredPackets == 0 {
		t.Fatal("drop mode delivered nothing")
	}
	// Every injected packet was either delivered or dropped.
	if rec.DeliveredPackets+drops != rec.InjectedPackets {
		t.Fatalf("conservation violated: delivered %d + dropped %d != injected %d",
			rec.DeliveredPackets, drops, rec.InjectedPackets)
	}
}

func TestDeflectModeDeliversEverything(t *testing.T) {
	n := build(t, Config{Topo: mesh4(t), Deflect: true, Seed: 9})
	topo := n.Topology()
	delivered := 0
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			delivered += len(p.Deliveries())
		}))
	}
	sent := 0
	for round := 0; round < 20; round++ {
		for src := 0; src < topo.NumTiles(); src++ {
			dst := (src*7 + round) % topo.NumTiles()
			if dst == src {
				continue
			}
			if _, err := n.Port(src).Send(dst, []byte{1, 2, 3}, flit.MaskFor(0), 0); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if !n.Drain(30000) {
		t.Fatalf("deflection network did not drain (occupancy %d)", n.Occupancy())
	}
	if delivered != sent {
		t.Fatalf("delivered %d of %d", delivered, sent)
	}
}

func TestDeflectRejectsMultiFlit(t *testing.T) {
	n := build(t, Config{Topo: mesh4(t), Deflect: true, Seed: 10})
	if _, err := n.Port(0).Send(1, make([]byte, 100), flit.MaskFor(0), 0); err == nil {
		t.Fatal("multi-flit packet accepted in deflection mode")
	}
}

func TestReservedFlowZeroJitter(t *testing.T) {
	// §2.6: a pre-scheduled flow crosses the network "without arbitration
	// or delay" even under heavy dynamic background traffic.
	rc := router.DefaultConfig(0)
	rc.ReservedVC = 7
	rc.ResPeriod = 8
	n := build(t, Config{Topo: torus4(t), Router: rc, Seed: 11, Warmup: 0})
	topo := n.Topology()
	const flow, src, dst, period = 1, 0, 10, 8
	if _, err := n.ReserveFlow(src, dst, flow, 0); err != nil {
		t.Fatal(err)
	}
	// Background: every other tile floods random traffic.
	for tile := 0; tile < topo.NumTiles(); tile++ {
		tile := tile
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			p.Deliveries()
			if tile == src {
				if now%period == 0 && now < 800 {
					if _, err := p.SendReserved(dst, []byte{byte(now)}, flow); err != nil {
						t.Errorf("reserved send: %v", err)
					}
				}
				return
			}
			if now < 800 {
				d := int(now*31+int64(tile)*17) % topo.NumTiles()
				if d != tile {
					_, _ = p.Send(d, make([]byte, 96), flit.VCMask(0x7F), 0)
				}
			}
		}))
	}
	n.Run(1200)
	rec := n.Recorder()
	lat := rec.FlowLatency(flow)
	if lat == nil || lat.Count() < 50 {
		t.Fatalf("reserved flow delivered too little: %v", lat)
	}
	if j := rec.FlowJitter(flow); j != 0 {
		t.Fatalf("reserved flow jitter = %d cycles, want 0 (latency %v)", j, lat)
	}
	for _, p := range n.ports {
		if p.BlockedReserved != 0 {
			t.Fatalf("reserved injection blocked %d times", p.BlockedReserved)
		}
	}
	// The reserved latency equals the pipeline bound 2H+2.
	hops, _ := topology.PathMetrics(topo, src, dst)
	if got := lat.Max(); got != int64(2*hops+2) {
		t.Fatalf("reserved latency = %d, want %d", got, 2*hops+2)
	}
}

func TestUnreservedStreamHasJitterUnderLoad(t *testing.T) {
	// The §2.6 contrast: the same periodic stream without reservations
	// sees variable latency once dynamic traffic loads the network.
	rc := router.DefaultConfig(0)
	n := build(t, Config{Topo: torus4(t), Router: rc, Seed: 12})
	topo := n.Topology()
	const src, dst, period = 0, 10, 4
	arrivals := map[uint64]int64{}
	births := map[uint64]int64{}
	n.AttachClient(dst, ClientFunc(func(now int64, p *Port) {
		for _, d := range p.Deliveries() {
			if d.Src == src && d.Class == 1 {
				arrivals[d.PacketID] = now
				births[d.PacketID] = d.Birth
			}
		}
	}))
	for tile := 0; tile < topo.NumTiles(); tile++ {
		if tile == dst {
			continue
		}
		tile := tile
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			p.Deliveries()
			if now >= 3000 {
				return
			}
			if tile == src && now%period == 0 {
				_, _ = p.Send(dst, []byte{byte(now)}, flit.MaskFor(0), 1)
			}
			// Heavy background from everyone (multi-flit).
			if now%3 == int64(tile)%3 {
				d := int(now*13+int64(tile)*29) % topo.NumTiles()
				if d != tile {
					_, _ = p.Send(d, make([]byte, 64), flit.VCMask(0xFE), 0)
				}
			}
		}))
	}
	n.Run(4000)
	if len(arrivals) < 50 {
		t.Fatalf("stream delivered %d packets", len(arrivals))
	}
	var minLat, maxLat int64 = 1 << 60, 0
	for id, at := range arrivals {
		lat := at - births[id]
		if lat < minLat {
			minLat = lat
		}
		if lat > maxLat {
			maxLat = lat
		}
	}
	if maxLat == minLat {
		t.Fatalf("unreserved stream under load shows zero jitter (lat=%d); contrast experiment is broken", minLat)
	}
}

func dirsOf() []route.Dir {
	return []route.Dir{route.North, route.East, route.South, route.West}
}

func TestElasticLinksDeliverEverything(t *testing.T) {
	rc := router.DefaultConfig(0)
	rc.BufFlits = 1 // elastic channels make single-flit buffers workable
	n := build(t, Config{Topo: mesh4(t), Router: rc, ElasticLinks: true, Seed: 21})
	topo := n.Topology()
	delivered := 0
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			delivered += len(p.Deliveries())
		}))
	}
	sent := 0
	for round := 0; round < 10; round++ {
		for src := 0; src < topo.NumTiles(); src++ {
			dst := (src*3 + round + 1) % topo.NumTiles()
			if dst == src {
				continue
			}
			if _, err := n.Port(src).Send(dst, make([]byte, 96), flit.VCMask(0xFF), 0); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if !n.Drain(60000) {
		t.Fatalf("elastic network did not drain (occupancy %d)", n.Occupancy())
	}
	if delivered != sent {
		t.Fatalf("delivered %d of %d", delivered, sent)
	}
}

func TestElasticRejectedOnTorus(t *testing.T) {
	if _, err := New(Config{Topo: torus4(t), Router: router.DefaultConfig(0), ElasticLinks: true}); err == nil {
		t.Fatal("elastic links on a torus accepted (would deadlock)")
	}
}

func TestElasticRecyclesCreditsLocally(t *testing.T) {
	// The ref-[4] claim behind §3.3: with single-flit input buffers, a
	// single-VC stream is throttled by the credit round trip under credit
	// flow control, but runs at full rate over elastic channels because
	// the flow-control loop closes at the wire.
	measure := func(elastic bool) float64 {
		rc := router.DefaultConfig(0)
		rc.BufFlits = 1
		n := build(t, Config{Topo: mesh4(t), Router: rc, ElasticLinks: elastic, Seed: 22, Warmup: 100})
		n.Recorder().MeasureUntil = 2100
		const src, dst = 0, 3 // one row, 3 hops, single VC
		n.AttachClient(dst, ClientFunc(func(now int64, p *Port) { p.Deliveries() }))
		n.AttachClient(src, ClientFunc(func(now int64, p *Port) {
			if now < 2100 {
				_, _ = p.Send(dst, []byte{1}, flit.MaskFor(0), 0)
			}
		}))
		n.Run(2100)
		return float64(n.Recorder().WindowFlits) / 2000.0
	}
	credited := measure(false)
	elastic := measure(true)
	if credited > 0.5 {
		t.Fatalf("credited single-flit-buffer throughput %v; expected credit-loop throttling", credited)
	}
	if elastic < 0.9 {
		t.Fatalf("elastic throughput %v, want near 1 flit/cycle", elastic)
	}
	if elastic < 2*credited {
		t.Fatalf("elastic (%v) not clearly above credited (%v)", elastic, credited)
	}
}

func TestRingNetworkDelivery(t *testing.T) {
	// A 5x1 folded torus is a ring; dateline classes must keep it
	// deadlock-free under sustained load.
	topo, err := topology.NewFoldedTorus(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := build(t, Config{Topo: topo, Seed: 31})
	delivered := 0
	for tile := 0; tile < 5; tile++ {
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			delivered += len(p.Deliveries())
		}))
	}
	sent := 0
	for round := 0; round < 40; round++ {
		for src := 0; src < 5; src++ {
			dst := (src + 1 + round%4) % 5
			if dst == src {
				continue
			}
			if _, err := n.Port(src).Send(dst, make([]byte, 64), flit.VCMask(0xFF), 0); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if !n.Drain(30000) {
		t.Fatalf("ring did not drain (occupancy %d)", n.Occupancy())
	}
	if delivered != sent {
		t.Fatalf("delivered %d of %d", delivered, sent)
	}
}

func TestAdaptiveMeshDelivery(t *testing.T) {
	n := build(t, Config{Topo: mesh4(t), Adaptive: true, Seed: 51})
	topo := n.Topology()
	delivered := 0
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			delivered += len(p.Deliveries())
		}))
	}
	sent := 0
	for round := 0; round < 15; round++ {
		for src := 0; src < topo.NumTiles(); src++ {
			dst := (src*5 + round + 1) % topo.NumTiles()
			if dst == src {
				continue
			}
			if _, err := n.Port(src).Send(dst, make([]byte, 96), flit.VCMask(0xFF), 0); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if !n.Drain(60000) {
		t.Fatalf("adaptive mesh did not drain (occupancy %d)", n.Occupancy())
	}
	if delivered != sent {
		t.Fatalf("delivered %d of %d", delivered, sent)
	}
}

func TestAdaptiveRejectedOnTorus(t *testing.T) {
	if _, err := New(Config{Topo: torus4(t), Router: router.DefaultConfig(0), Adaptive: true}); err == nil {
		t.Fatal("adaptive routing on a torus accepted (turn model does not cover wraps)")
	}
}

func TestAdaptiveNeverRoutesUnproductively(t *testing.T) {
	// With west-first candidates, every delivered packet's latency must
	// still be bounded by the minimal path (adaptivity only picks among
	// productive directions, so hop count equals the Manhattan distance).
	n := build(t, Config{Topo: mesh4(t), Adaptive: true, Seed: 52})
	topo := n.Topology()
	var bad int
	for tile := 0; tile < topo.NumTiles(); tile++ {
		tile := tile
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			for _, d := range p.Deliveries() {
				hops, _ := topology.PathMetrics(topo, d.Src, d.Dst)
				// Unloaded: exactly the minimal pipeline latency.
				if d.Arrived-d.Birth != int64(2*hops+2) {
					bad++
				}
			}
		}))
	}
	// One packet at a time, so the network is unloaded.
	for src := 0; src < topo.NumTiles(); src++ {
		for dst := 0; dst < topo.NumTiles(); dst++ {
			if src == dst {
				continue
			}
			if _, err := n.Port(src).Send(dst, []byte{1}, flit.MaskFor(0), 0); err != nil {
				t.Fatal(err)
			}
			n.Run(40)
		}
	}
	if bad != 0 {
		t.Fatalf("%d packets took non-minimal paths while unloaded", bad)
	}
}

func TestCutThroughDelivery(t *testing.T) {
	rc := router.DefaultConfig(0)
	rc.CutThrough = true
	rc.BufFlits = 4
	n := build(t, Config{Topo: torus4(t), Router: rc, Seed: 53})
	topo := n.Topology()
	delivered := 0
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			delivered += len(p.Deliveries())
		}))
	}
	sent := 0
	for round := 0; round < 10; round++ {
		for src := 0; src < topo.NumTiles(); src++ {
			dst := (src + round + 1) % topo.NumTiles()
			if dst == src {
				continue
			}
			// 4-flit packets: exactly the buffer depth.
			if _, err := n.Port(src).Send(dst, make([]byte, 4*flit.DataBytes), flit.VCMask(0xFF), 0); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if !n.Drain(60000) {
		t.Fatalf("cut-through network did not drain (occupancy %d)", n.Occupancy())
	}
	if delivered != sent {
		t.Fatalf("delivered %d of %d", delivered, sent)
	}
}

func TestCutThroughRejectsLongPackets(t *testing.T) {
	rc := router.DefaultConfig(0)
	rc.CutThrough = true
	rc.BufFlits = 2
	n := build(t, Config{Topo: torus4(t), Router: rc, Seed: 54})
	if _, err := n.Port(0).Send(1, make([]byte, 3*flit.DataBytes), flit.MaskFor(0), 0); err == nil {
		t.Fatal("3-flit packet accepted with 2-flit cut-through buffers")
	}
	if _, err := n.Port(0).Send(1, make([]byte, 2*flit.DataBytes), flit.MaskFor(0), 0); err != nil {
		t.Fatalf("2-flit packet rejected: %v", err)
	}
}

func TestReserveFlowRejectsAdaptiveRouting(t *testing.T) {
	rc := router.DefaultConfig(0)
	rc.ReservedVC = 7
	rc.ResPeriod = 8
	n := build(t, Config{Topo: mesh4(t), Router: rc, Adaptive: true, Seed: 61})
	if _, err := n.ReserveFlow(0, 10, 1, 0); err == nil {
		t.Fatal("reservations accepted under adaptive routing")
	}
}
