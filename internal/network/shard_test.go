package network

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/flit"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// The sharded cycle loop must be byte-identical to the sequential one for
// any shard count. These tests drive identical deterministic workloads
// through networks built at several shard counts and require every
// observable — recorder counters, latency histograms, per-router stats,
// link utilization, pool accounting — to match the 1-shard run exactly.

// shardTestConfig names one network flavour exercised by the determinism
// matrix.
type shardTestConfig struct {
	name    string
	build   func(t *testing.T, shards int) *Network
	maxFlit int // max payload flits a client may send
}

func buildShardNet(t *testing.T, shards int, wrap bool, mod func(*Config)) *Network {
	t.Helper()
	var topo topology.Topology
	var err error
	if wrap {
		topo, err = topology.NewFoldedTorus(4, 4)
	} else {
		topo, err = topology.NewMesh(4, 4)
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 3, Shards: shards}
	if mod != nil {
		mod(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// attachShardClients wires a deterministic, loopback-including workload:
// tile-staggered sends with varying size, destination, and class.
func attachShardClients(n *Network, maxFlits int, stop int64) {
	tiles := n.Topology().NumTiles()
	for tile := 0; tile < tiles; tile++ {
		tile := tile
		n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
			_ = p.Deliveries()
			if now >= stop || (now+int64(tile))%3 != 0 {
				return
			}
			dst := (tile*7 + int(now)*5) % tiles // includes dst == tile (loopback)
			size := 1 + (tile+int(now))%(maxFlits*flit.DataBytes)
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(tile + i)
			}
			_, _ = p.Send(dst, payload, flit.VCMask(0xFF), tile%3)
		}))
	}
}

// shardFingerprint renders everything the simulation can observably
// produce into one comparable string.
func shardFingerprint(n *Network) string {
	var sb strings.Builder
	rec := n.Recorder()
	fmt.Fprintf(&sb, "rec=%s window=%d dflits=%d\n", rec.String(), rec.WindowFlits, rec.DeliveredFlits)
	fmt.Fprintf(&sb, "plat=%v\nnlat=%v\n", rec.PacketLatency, rec.NetworkLatency)
	fmt.Fprintf(&sb, "occ=%d outstanding=%d aborted=%d\n", n.Occupancy(), n.FlitsOutstanding(), n.aborted)
	for tile, r := range n.routers {
		fmt.Fprintf(&sb, "r%d %+v\n", tile, r.Stats)
	}
	fmt.Fprintf(&sb, "util=%v max=%.6f\n", n.LinkUtilization(), n.MaxLinkUtilization())
	return sb.String()
}

// runShardWorkload builds, drives, and drains one network and returns its
// fingerprint.
func runShardWorkload(t *testing.T, c shardTestConfig, shards int) (string, int) {
	t.Helper()
	n := c.build(t, shards)
	attachShardClients(n, c.maxFlit, 400)
	n.Run(400)
	if !n.Drain(20000) {
		t.Fatalf("%s shards=%d: did not drain", c.name, shards)
	}
	if out := n.FlitsOutstanding(); out != 0 {
		t.Fatalf("%s shards=%d: %d flits leaked", c.name, shards, out)
	}
	return shardFingerprint(n), n.Shards()
}

// TestShardedNetworkMatchesSequential runs the determinism matrix: every
// router flavour × shard counts {2, 3, tiles}. Each must reproduce the
// sequential fingerprint byte-for-byte.
func TestShardedNetworkMatchesSequential(t *testing.T) {
	configs := []shardTestConfig{
		{
			name: "vc-torus-multiflit",
			build: func(t *testing.T, s int) *Network {
				return buildShardNet(t, s, true, nil)
			},
			maxFlit: 3,
		},
		{
			name: "vc-mesh-adaptive",
			build: func(t *testing.T, s int) *Network {
				return buildShardNet(t, s, false, func(c *Config) { c.Adaptive = true })
			},
			maxFlit: 2,
		},
		{
			name: "vc-cutthrough",
			build: func(t *testing.T, s int) *Network {
				return buildShardNet(t, s, true, func(c *Config) { c.Router.CutThrough = true })
			},
			maxFlit: 2,
		},
		{
			name: "drop-mode",
			build: func(t *testing.T, s int) *Network {
				return buildShardNet(t, s, true, func(c *Config) { c.Router.Mode = router.ModeDrop })
			},
			maxFlit: 1,
		},
		{
			name: "deflect",
			build: func(t *testing.T, s int) *Network {
				return buildShardNet(t, s, true, func(c *Config) { c.Deflect = true })
			},
			maxFlit: 1,
		},
		{
			name: "elastic-mesh",
			build: func(t *testing.T, s int) *Network {
				return buildShardNet(t, s, false, func(c *Config) { c.ElasticLinks = true })
			},
			maxFlit: 2,
		},
	}
	for _, c := range configs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want, seqShards := runShardWorkload(t, c, 1)
			if seqShards != 1 {
				t.Fatalf("sequential build reports %d shards", seqShards)
			}
			for _, shards := range []int{2, 3, 16} {
				got, eff := runShardWorkload(t, c, shards)
				if eff != shards {
					t.Fatalf("shards=%d: network reports %d effective shards", shards, eff)
				}
				if got != want {
					t.Errorf("shards=%d diverged from sequential:\n--- sequential ---\n%s--- shards=%d ---\n%s",
						shards, want, shards, got)
				}
			}
		})
	}
}

// TestShardedWatchdogFaultsMatchSequential covers the fault path: a credit
// watchdog network whose clients keep injecting while a link is forced
// down, so declare-dead, abort tails, rerouting, and the abort accounting
// all execute under sharding.
func TestShardedWatchdogFaultsMatchSequential(t *testing.T) {
	build := func(shards int) *Network {
		n := buildShardNet(t, shards, true, func(c *Config) { c.Watchdog = 40 })
		attachShardClients(n, 2, 600)
		n.Run(100)
		n.SetLinkDown(3, true) // injector-style hardware fault; watchdog must detect
		n.Run(500)
		if !n.Drain(30000) {
			t.Fatalf("shards=%d: did not drain", shards)
		}
		return n
	}
	seq := build(1)
	want := shardFingerprint(seq) + fmt.Sprintf("faults=%+v", seq.FaultTotals())
	if seq.FaultMap().Len() == 0 {
		t.Fatal("watchdog never declared the dead link; workload too light")
	}
	for _, shards := range []int{2, 3, 16} {
		n := build(shards)
		got := shardFingerprint(n) + fmt.Sprintf("faults=%+v", n.FaultTotals())
		if got != want {
			t.Errorf("shards=%d diverged:\n--- sequential ---\n%s\n--- sharded ---\n%s", shards, want, got)
		}
	}
}

// TestEffectiveShardsGating pins the sequential-fallback rules: features
// with globally ordered side effects force one shard; everything else
// honours (and clamps) the request.
func TestEffectiveShardsGating(t *testing.T) {
	if got := buildShardNet(t, 64, true, nil).Shards(); got != 16 {
		t.Errorf("Shards=64 on 16 tiles -> %d, want clamp to 16", got)
	}
	if got := buildShardNet(t, 4, true, func(c *Config) { c.PhysWires = true }).Shards(); got != 1 {
		t.Errorf("PhysWires forced %d shards, want 1", got)
	}
	if got := buildShardNet(t, 4, true, func(c *Config) {
		c.Meter = power.NewMeter(power.DefaultModel(0))
	}).Shards(); got != 1 {
		t.Errorf("Meter forced %d shards, want 1", got)
	}
	if got := buildShardNet(t, 4, true, func(c *Config) { c.TraceWriter = &strings.Builder{} }).Shards(); got != 1 {
		t.Errorf("TraceWriter forced %d shards, want 1", got)
	}
	if got := buildShardNet(t, 4, true, func(c *Config) {
		c.Probe = telemetry.New(telemetry.Config{Trace: true})
	}).Shards(); got != 1 {
		t.Errorf("lifecycle tracing forced %d shards, want 1", got)
	}
	if got := buildShardNet(t, 4, true, func(c *Config) {
		c.Probe = telemetry.New(telemetry.Config{SampleEvery: 10})
	}).Shards(); got != 4 {
		t.Errorf("counters+sampling probe -> %d shards, want 4", got)
	}
	if got := buildShardNet(t, 0, true, nil).Shards(); got < 1 || got > 16 {
		t.Errorf("Shards=0 (auto) -> %d, want within [1,16]", got)
	}
}
