package network

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/flit"
	"repro/internal/router"
	"repro/internal/topology"
)

// TestConservationProperty drives randomized scenarios (topology, VC
// shapes, payload sizes, loads) and checks the global invariants on each:
// every generated packet is delivered exactly once with an intact payload,
// the network drains completely, and latency is at least the pipeline
// bound.
func TestConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		var topo topology.Topology
		var err error
		if rng.Intn(2) == 0 {
			topo, err = topology.NewMesh(3+rng.Intn(3), 3+rng.Intn(3))
		} else {
			topo, err = topology.NewFoldedTorus(3+rng.Intn(3), 3+rng.Intn(3))
		}
		if err != nil {
			t.Fatal(err)
		}
		rc := router.DefaultConfig(0)
		rc.NumVCs = []int{2, 4, 8}[rng.Intn(3)]
		rc.BufFlits = 1 + rng.Intn(4)
		n, err := New(Config{Topo: topo, Router: rc, Seed: int64(trial), LinkLatency: 1 + rng.Intn(2)})
		if err != nil {
			t.Fatal(err)
		}
		mask := flit.VCMask((1 << rc.NumVCs) - 1)

		type sent struct {
			payload []byte
			dst     int
		}
		expect := map[uint64]sent{}
		got := map[uint64]int{}
		tiles := topo.NumTiles()
		for tile := 0; tile < tiles; tile++ {
			tile := tile
			n.AttachClient(tile, ClientFunc(func(now int64, p *Port) {
				for _, d := range p.Deliveries() {
					got[d.PacketID]++
					want, ok := expect[d.PacketID]
					if !ok {
						t.Errorf("trial %d: unknown packet %d delivered", trial, d.PacketID)
						continue
					}
					if want.dst != tile {
						t.Errorf("trial %d: packet %d delivered to %d, want %d", trial, d.PacketID, tile, want.dst)
					}
					if !bytes.Equal(d.Payload, want.payload) {
						t.Errorf("trial %d: packet %d payload corrupted", trial, d.PacketID)
					}
					hops, _ := topology.PathMetrics(topo, d.Src, d.Dst)
					if d.Src != d.Dst && d.Arrived-d.Birth < int64(2*hops+2) {
						t.Errorf("trial %d: packet %d latency %d below pipeline bound %d",
							trial, d.PacketID, d.Arrived-d.Birth, 2*hops+2)
					}
				}
			}))
		}
		// Offer a random burst of packets during the first 300 cycles.
		burst := 50 + rng.Intn(150)
		for i := 0; i < burst; i++ {
			src := rng.Intn(tiles)
			dst := rng.Intn(tiles)
			if dst == src {
				continue
			}
			payload := make([]byte, 1+rng.Intn(4*flit.DataBytes))
			rng.Read(payload)
			id, err := n.Port(src).Send(dst, payload, mask, rng.Intn(3))
			if err != nil {
				t.Fatal(err)
			}
			expect[id] = sent{payload: append([]byte(nil), payload...), dst: dst}
			if rng.Intn(4) == 0 {
				n.Run(int64(rng.Intn(5)))
			}
		}
		if !n.Drain(200000) {
			t.Fatalf("trial %d (%s vcs=%d buf=%d): did not drain, occupancy %d",
				trial, topo.Name(), rc.NumVCs, rc.BufFlits, n.Occupancy())
		}
		for id := range expect {
			if got[id] != 1 {
				t.Fatalf("trial %d: packet %d delivered %d times", trial, id, got[id])
			}
		}
		if n.Recorder().DeliveredPackets != int64(len(expect)) {
			t.Fatalf("trial %d: recorder says %d, expect %d", trial, n.Recorder().DeliveredPackets, len(expect))
		}
	}
}

// TestNoCrossTalkBetweenPackets checks that concurrent packets between the
// same pair on different VCs never interleave payload bytes.
func TestNoCrossTalkBetweenPackets(t *testing.T) {
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	deliveries := 0
	n.AttachClient(9, ClientFunc(func(now int64, p *Port) {
		for _, d := range p.Deliveries() {
			deliveries++
			for _, b := range d.Payload {
				if b != d.Payload[0] {
					t.Fatalf("packet %d mixed bytes %d and %d", d.PacketID, d.Payload[0], b)
				}
			}
		}
	}))
	// Eight concurrent multi-flit packets from the same source, each a
	// solid run of one byte value, one per VC.
	for v := 0; v < 8; v++ {
		payload := bytes.Repeat([]byte{byte(0x10 + v)}, 5*flit.DataBytes)
		if _, err := n.Port(0).Send(9, payload, flit.MaskFor(v%8), v); err != nil {
			t.Fatal(err)
		}
	}
	if !n.Drain(5000) {
		t.Fatal("did not drain")
	}
	if deliveries != 8 {
		t.Fatalf("delivered %d of 8", deliveries)
	}
}

// TestHeatmapRenders pins the heatmap output shape.
func TestHeatmapRenders(t *testing.T) {
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Port(0).Send(5, []byte("x"), flit.MaskFor(0), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(50)
	out := n.Heatmap()
	for tile := 0; tile < 16; tile++ {
		if !bytes.Contains([]byte(out), []byte(fmt.Sprintf("%2d:", tile))) {
			t.Fatalf("heatmap missing tile %d:\n%s", tile, out)
		}
	}
}

func TestPacketTrace(t *testing.T) {
	var buf bytes.Buffer
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 10, TraceWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	n.AttachClient(5, ClientFunc(func(now int64, p *Port) { p.Deliveries() }))
	if _, err := n.Port(0).Send(5, []byte("traced"), flit.MaskFor(0), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(30)
	out := buf.String()
	for _, want := range []string{"event=generated", "event=injected", "event=delivered", "pkt=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("trace lines = %d, want 3:\n%s", strings.Count(out, "\n"), out)
	}
}

func TestRecorderThroughputWindow(t *testing.T) {
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	n.AttachClient(3, ClientFunc(func(now int64, p *Port) { p.Deliveries() }))
	for i := 0; i < 10; i++ {
		if _, err := n.Port(0).Send(3, []byte{byte(i)}, flit.VCMask(0xFF), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(100)
	rec := n.Recorder()
	tp := rec.ThroughputFlitsPerCycle(n.Kernel().Now())
	if tp <= 0 {
		t.Fatalf("throughput = %v, want positive", tp)
	}
	if rec.ThroughputFlitsPerCycle(0) != 0 {
		t.Fatal("throughput over empty span not zero")
	}
}
