package network

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// Client is the logic in a tile that uses the network. Tick runs once per
// cycle after deliveries are available on the port.
type Client interface {
	Tick(now int64, p *Port)
}

// ClientFunc adapts a function to the Client interface.
type ClientFunc func(now int64, p *Port)

// Tick implements Client.
func (f ClientFunc) Tick(now int64, p *Port) { f(now, p) }

// Delivery is a packet handed to the client by the network, reassembled
// from its flits.
type Delivery struct {
	PacketID    uint64
	Src, Dst    int
	Payload     []byte
	Class, Flow int
	Birth       int64
	Arrived     int64
	Flits       int
}

// injection is one packet being (or waiting to be) driven into the tile
// input port, one flit per cycle.
type injection struct {
	flits  []*flit.Flit
	next   int
	vc     int // -1 until chosen at head injection
	class  int
	seq    uint64 // creation order, for deterministic tie-breaks
	inject int64  // cycle the head entered the network
}

func (in *injection) done() bool { return in.next >= len(in.flits) }

// partialSlot accumulates the flits of one in-flight packet at the
// delivery side. id 0 marks a free slot (packet ids start at 1); the flits
// slice keeps its capacity across packets. A small linear-searched slice
// replaces the map the port used to key by packet id: only a handful of
// packets interleave at one port (at most one per input VC), so the scan
// is shorter than a map lookup and never allocates.
type partialSlot struct {
	id    uint64
	flits []*flit.Flit
}

// Port is the paper's §2.1 tile interface: a 256-bit injection port with
// per-VC ready signals and a delivery port. One flit moves in each
// direction per cycle.
type Port struct {
	tile int
	net  *Network

	// shard is the tile's owning shard; recorder-bound counts and pool
	// traffic go through it so the eject and pump phases stay shard-local
	// (shard.go). pool aliases shard.pool.
	shard *shardState
	pool  *flit.Pool

	canInject func(vc int) bool
	accept    func(f *flit.Flit)

	// probe is the tile's telemetry probe (shared with the tile's router);
	// nil is the disabled fast path.
	probe *telemetry.RouterProbe

	pending  []*injection
	reserved []*injection
	active   [flit.NumVCs]*injection // in-progress packet per VC; nil = idle

	// activeCount tracks non-nil active entries, and onPump / onLoop mark
	// membership on the shard's pump and loopback worklists, so the gated
	// pump and eject phases visit only ports with work (shard.go).
	activeCount int
	onPump      bool
	onLoop      bool

	partials []partialSlot

	// rx accumulates this cycle's deliveries; lent is the slice handed out
	// by the previous Deliveries call. The two swap every call, and lent's
	// Delivery objects are recycled through freeDel — which is why a
	// Deliveries result is only valid until the next call.
	rx, lent []*Delivery
	freeDel  []*Delivery

	freeInj []*injection

	// pkt is the segmentation scratch packet, reused so Send never
	// heap-allocates a Packet.
	pkt flit.Packet

	loopback []*Delivery // src == dst deliveries, available next cycle
	loopAt   []int64

	// BlockedReserved counts cycles a pre-scheduled flit missed its
	// injection slot because the port was not ready — a schedule
	// violation if nonzero.
	BlockedReserved int64
}

// Tile reports the port's tile id.
func (p *Port) Tile() int { return p.tile }

// injWork reports packets queued or in progress at the injection side —
// the condition for staying on the shard's pump worklist.
func (p *Port) injWork() int {
	return len(p.pending) + len(p.reserved) + p.activeCount
}

// notePump enlists the port on its shard's pump worklist. Called with
// work just queued, from the serial client phase or between cycles.
func (p *Port) notePump() {
	if p.onPump {
		return
	}
	p.onPump = true
	p.shard.pumpList = append(p.shard.pumpList, int32(p.tile))
}

// noteLoopback enlists the port on its shard's loopback worklist.
func (p *Port) noteLoopback() {
	if p.onLoop {
		return
	}
	p.onLoop = true
	p.shard.loopList = append(p.shard.loopList, int32(p.tile))
}

func (p *Port) getDelivery() *Delivery {
	n := len(p.freeDel)
	if n == 0 {
		return &Delivery{}
	}
	d := p.freeDel[n-1]
	p.freeDel[n-1] = nil
	p.freeDel = p.freeDel[:n-1]
	return d
}

func (p *Port) putDelivery(d *Delivery) {
	payload := d.Payload[:0]
	*d = Delivery{Payload: payload}
	p.freeDel = append(p.freeDel, d)
}

func (p *Port) getInjection() *injection {
	n := len(p.freeInj)
	if n == 0 {
		return &injection{vc: -1}
	}
	in := p.freeInj[n-1]
	p.freeInj[n-1] = nil
	p.freeInj = p.freeInj[:n-1]
	return in
}

func (p *Port) putInjection(in *injection) {
	for i := range in.flits {
		in.flits[i] = nil
	}
	flits := in.flits[:0]
	*in = injection{flits: flits, vc: -1}
	p.freeInj = append(p.freeInj, in)
}

// reset returns the port to its just-built state in place. Flits the
// port still owns — the un-injected tails of queued and in-progress
// packets, and reassembly partials — recycle into the pool (flits already
// injected live in routers and links, which recycle their own); delivery
// objects drain back into the free list, loopbacks are dropped, and
// worklist membership clears. The tile, network, shard, probe, and
// injection callbacks are configuration and are kept.
func (p *Port) reset() {
	drop := func(in *injection) {
		for _, f := range in.flits[in.next:] {
			p.pool.Put(f)
		}
		p.putInjection(in)
	}
	for i, in := range p.pending {
		drop(in)
		p.pending[i] = nil
	}
	p.pending = p.pending[:0]
	for i, in := range p.reserved {
		drop(in)
		p.reserved[i] = nil
	}
	p.reserved = p.reserved[:0]
	for v, in := range p.active {
		if in != nil {
			drop(in)
			p.active[v] = nil
		}
	}
	p.activeCount = 0
	p.onPump = false
	p.onLoop = false
	for i := range p.partials {
		if p.partials[i].id != 0 {
			p.releasePartial(&p.partials[i])
		}
	}
	for i, d := range p.rx {
		p.putDelivery(d)
		p.rx[i] = nil
	}
	p.rx = p.rx[:0]
	for i, d := range p.lent {
		p.putDelivery(d)
		p.lent[i] = nil
	}
	p.lent = p.lent[:0]
	for i, d := range p.loopback {
		p.putDelivery(d)
		p.loopback[i] = nil
	}
	p.loopback = p.loopback[:0]
	p.loopAt = p.loopAt[:0]
	p.BlockedReserved = 0
}

// Send queues a packet for injection and returns its id. The virtual
// channel is chosen from mask at injection time; class sets the
// arbitration priority among this tile's own packets (higher wins, and the
// paper's "long, low priority packet may be interrupted" behaviour follows
// from per-flit re-arbitration). The payload is copied; the caller may
// reuse its buffer.
func (p *Port) Send(dst int, payload []byte, mask flit.VCMask, class int) (uint64, error) {
	if dst < 0 || dst >= p.net.topo.NumTiles() {
		return 0, fmt.Errorf("network: destination %d out of range", dst)
	}
	if mask == 0 {
		return 0, fmt.Errorf("network: empty VC mask")
	}
	now := p.net.kernel.Now()
	id := p.net.nextPacketID()
	p.net.recorder.Generated++
	if dst == p.tile {
		// Loopback: the network never sees the packet; it is delivered
		// through the port pair directly on the next cycle.
		p.pkt = flit.Packet{Payload: payload}
		d := p.getDelivery()
		d.PacketID, d.Src, d.Dst = id, p.tile, dst
		d.Payload = append(d.Payload[:0], payload...)
		d.Class, d.Birth, d.Flits = class, now, p.pkt.NumFlits()
		p.loopback = append(p.loopback, d)
		p.loopAt = append(p.loopAt, now+1)
		p.noteLoopback()
		return id, nil
	}
	w, rerouted, err := p.net.routeFor(p.tile, dst)
	if err != nil {
		p.net.recorder.Generated--
		p.net.unroutable++
		return 0, err
	}
	if rerouted {
		p.net.rerouted++
	}
	p.pkt = flit.Packet{
		ID: id, Src: p.tile, Dst: dst,
		Mask: mask, Route: w, Payload: payload, Birth: now, Class: class,
		// The hop count is stamped at send time because head flits consume
		// Route step by step in flight; the final Extract step is not a
		// link traversal.
		Hops: w.Len() - 1,
	}
	nf := p.pkt.NumFlits()
	if p.net.cfg.Deflect || p.net.cfg.Router.Mode != 0 {
		if nf > 1 {
			return 0, fmt.Errorf("network: multi-flit packet in single-flit flow-control mode")
		}
	}
	if rc := p.net.cfg.Router; rc.CutThrough && nf > rc.BufFlits {
		return 0, fmt.Errorf("network: %d-flit packet exceeds the %d-flit buffers cut-through requires", nf, rc.BufFlits)
	}
	in := p.getInjection()
	in.flits = p.pkt.AppendFlits(in.flits[:0], p.pool)
	in.class, in.seq = class, id
	p.pending = append(p.pending, in)
	p.notePump()
	if p.net.tracing {
		p.net.trace("cycle=%d pkt=%d event=generated src=%d dst=%d bytes=%d class=%d flits=%d route=%v",
			now, id, p.tile, dst, len(payload), class, nf, w)
	}
	return id, nil
}

// SendReserved queues a single-flit packet of a pre-scheduled flow for
// immediate injection on the reserved virtual channel. The caller (a
// stream source) must call it on the cycle matching the flow's reserved
// phase; the routes and link slots were booked by Network.ReserveFlow.
func (p *Port) SendReserved(dst int, payload []byte, flow int) (uint64, error) {
	rvc := p.net.cfg.Router.ReservedVC
	if rvc < 0 {
		return 0, fmt.Errorf("network: no reserved VC configured")
	}
	if len(payload) > flit.DataBytes {
		return 0, fmt.Errorf("network: reserved packets are single-flit (%d bytes max)", flit.DataBytes)
	}
	now := p.net.kernel.Now()
	id := p.net.nextPacketID()
	w, err := route.Compute(p.net.topo, p.tile, dst)
	if err != nil {
		return 0, err
	}
	p.pkt = flit.Packet{
		ID: id, Src: p.tile, Dst: dst,
		Mask: flit.MaskFor(rvc), Route: w, Payload: payload, Birth: now, Class: 0,
		Hops: w.Len() - 1,
	}
	p.net.recorder.Generated++
	in := p.getInjection()
	in.flits = p.pkt.AppendFlits(in.flits[:0], p.pool)
	for _, f := range in.flits {
		f.VC = rvc
		f.Flow = flow
	}
	in.vc, in.class, in.seq = rvc, 1<<30, id
	p.reserved = append(p.reserved, in)
	p.notePump()
	return id, nil
}

// Deliveries returns and clears the packets delivered since the last call.
// The returned slice and the Delivery values in it (including their
// Payload bytes) are only valid until the next Deliveries call on this
// port: the port recycles them. Callers that keep a delivery or its
// payload across cycles must copy what they keep.
func (p *Port) Deliveries() []*Delivery {
	for i, d := range p.lent {
		p.putDelivery(d)
		p.lent[i] = nil
	}
	out := p.rx
	p.rx = p.lent[:0]
	p.lent = out
	return out
}

// PendingInjections reports queued plus in-progress packets, for
// source-queue depth measurements. A non-nil active entry is never done
// (pump clears it the cycle its last flit injects), so this is exactly
// the pump worklist condition.
func (p *Port) PendingInjections() int { return p.injWork() }

// findPartial returns the reassembly slot for packet id, or nil.
func (p *Port) findPartial(id uint64) *partialSlot {
	for i := range p.partials {
		if p.partials[i].id == id {
			return &p.partials[i]
		}
	}
	return nil
}

// findOrAddPartial returns the reassembly slot for packet id, claiming a
// free slot (or growing the slot list) if the packet is new.
func (p *Port) findOrAddPartial(id uint64) *partialSlot {
	var free *partialSlot
	for i := range p.partials {
		s := &p.partials[i]
		if s.id == id {
			return s
		}
		if s.id == 0 && free == nil {
			free = s
		}
	}
	if free != nil {
		free.id = id
		return free
	}
	p.partials = append(p.partials, partialSlot{id: id})
	return &p.partials[len(p.partials)-1]
}

// releasePartial recycles a slot's flits into the pool and frees the slot.
func (p *Port) releasePartial(s *partialSlot) {
	for i, f := range s.flits {
		p.pool.Put(f)
		s.flits[i] = nil
	}
	s.flits = s.flits[:0]
	s.id = 0
}

// receive accepts ejected flits from the router and reassembles packets.
// Every flit handed in is consumed: reassembled into a Delivery payload
// and recycled, or (abort tails, aborted partials) recycled directly.
func (p *Port) receive(flits []*flit.Flit, now int64) {
	for _, f := range flits {
		if f.Seq == router.AbortSeq {
			// Synthetic abort tail: the packet was cut mid-flight by a
			// dead link and will never complete. Discard the partial.
			if s := p.findPartial(f.PacketID); s != nil {
				p.releasePartial(s)
			}
			p.shard.aborted++
			if p.probe != nil {
				p.probe.AbortedPackets++
				p.probe.Trace(telemetry.EvAbort, now, f.PacketID, int32(p.tile), 0)
			}
			if p.net.tracing {
				p.net.trace("cycle=%d pkt=%d event=aborted dst=%d", now, f.PacketID, p.tile)
			}
			p.pool.Put(f)
			continue
		}
		s := p.findOrAddPartial(f.PacketID)
		s.flits = append(s.flits, f)
		if !f.Type.IsTail() {
			continue
		}
		parts := s.flits
		if len(parts) != f.Seq+1 {
			continue // flits still in flight (cannot happen per-VC, but be safe)
		}
		d := p.getDelivery()
		if err := reassembleInto(d, parts); err != nil {
			panic(fmt.Sprintf("network: tile %d packet %d reassembly: %v", p.tile, f.PacketID, err))
		}
		d.PacketID, d.Src, d.Dst = f.PacketID, f.Src, f.Dst
		d.Class, d.Flow = f.Class, f.Flow
		d.Birth, d.Arrived, d.Flits = f.Birth, now, len(parts)
		p.rx = append(p.rx, d)
		if p.probe != nil {
			p.probe.DeliveredFlits += int64(len(parts))
			p.probe.DeliveredPackets++
			p.probe.Trace(telemetry.EvEject, now, f.PacketID, int32(p.tile), int32(len(parts)))
		}
		// Deferred recorder update: the flit is recycled below, so capture
		// the fields packetDone needs; ejectMerge applies them in tile
		// order behind the phase barrier.
		p.shard.dones = append(p.shard.dones, doneRec{
			id: f.PacketID, birth: f.Birth, inject: f.Inject,
			src: f.Src, dst: f.Dst, hops: f.Hops,
			class: f.Class, flow: f.Flow, flits: len(parts),
		})
		if p.net.tracing {
			p.net.trace("cycle=%d pkt=%d event=delivered src=%d dst=%d latency=%d netlatency=%d",
				now, f.PacketID, f.Src, f.Dst, now-f.Birth, now-f.Inject)
		}
		p.releasePartial(s)
	}
}

// reassembleInto concatenates the packet's payload into the delivery's
// reused buffer. Wormhole routing delivers a packet's flits in sequence
// order on one VC, so the in-order fast path almost always applies; the
// allocation-heavy flit.Reassemble handles (and diagnoses) anything else.
func reassembleInto(d *Delivery, parts []*flit.Flit) error {
	n := len(parts)
	ok := n > 0 && parts[0].Type.IsHead() && parts[n-1].Type.IsTail()
	if ok {
		for i, f := range parts {
			if f.Seq != i {
				ok = false
				break
			}
		}
	}
	if ok {
		buf := d.Payload[:0]
		for _, f := range parts {
			buf = append(buf, f.Data...)
		}
		d.Payload = buf
		return nil
	}
	payload, err := flit.Reassemble(parts)
	if err != nil {
		return err
	}
	d.Payload = append(d.Payload[:0], payload...)
	return nil
}

// deliverLoopbacks releases matured loopback packets.
func (p *Port) deliverLoopbacks(now int64) {
	if len(p.loopback) == 0 {
		return
	}
	keep := p.loopback[:0]
	keepAt := p.loopAt[:0]
	for i, d := range p.loopback {
		if p.loopAt[i] <= now {
			d.Arrived = now
			p.rx = append(p.rx, d)
			p.shard.delivered++
			p.shard.deliveredFlits += int64(d.Flits)
		} else {
			keep = append(keep, d)
			keepAt = append(keepAt, p.loopAt[i])
		}
	}
	p.loopback, p.loopAt = keep, keepAt
}

// pump drives at most one flit into the network this cycle, preferring
// pre-scheduled flits, then the highest class among in-progress and
// pending packets. This is the client-side injection arbitration whose
// observable behaviour §2.1 describes: "the injection of a long, low
// priority packet may be interrupted to inject a short, high-priority
// packet and then resumed."
func (p *Port) pump(now int64) {
	if len(p.reserved) > 0 {
		in := p.reserved[0]
		f := in.flits[in.next]
		if !p.canInject(f.VC) {
			p.BlockedReserved++
			return
		}
		p.injectFlit(in, now)
		if in.done() {
			p.reserved = p.reserved[1:]
			p.putInjection(in)
		}
		return
	}

	// Pick the winner directly: highest class, then lowest seq. Packet
	// ids are unique, so this total order selects exactly the candidate
	// the old stable sort put first — without building or sorting a
	// candidate slice.
	var best *injection
	bestFresh := false
	better := func(in *injection) bool {
		if best == nil {
			return true
		}
		if in.class != best.class {
			return in.class > best.class
		}
		return in.seq < best.seq
	}
	for v := 0; v < flit.NumVCs; v++ {
		in := p.active[v]
		if in == nil || in.done() {
			continue
		}
		if p.canInject(v) && better(in) {
			best, bestFresh = in, false
		}
	}
	for _, in := range p.pending {
		if vc := p.freeVCFor(in); vc >= 0 {
			if better(in) {
				best, bestFresh = in, true
			}
			break // only the oldest startable pending packet competes
		}
	}
	if best == nil {
		return
	}
	if bestFresh {
		vc := p.freeVCFor(best)
		best.vc = vc
		for _, f := range best.flits {
			f.VC = vc
		}
		p.active[vc] = best
		p.activeCount++
		p.removePending(best)
	}
	p.injectFlit(best, now)
	if best.done() {
		p.active[best.vc] = nil
		p.activeCount--
		p.putInjection(best)
	}
}

// freeVCFor finds a ready virtual channel from the packet's mask that has
// no packet of this port in progress. VCs of the reserved pre-scheduled
// pair are never used for dynamic traffic (under dateline classes the
// reservation covers both class partners).
func (p *Port) freeVCFor(in *injection) int {
	mask := in.flits[0].Mask
	rc := p.net.cfg.Router
	numVCs := rc.NumVCs
	if numVCs <= 0 || numVCs > flit.NumVCs {
		numVCs = flit.NumVCs
	}
	reserved := func(v int) bool {
		if rc.ReservedVC < 0 {
			return false
		}
		if v == rc.ReservedVC {
			return true
		}
		if rc.DatelineVCs {
			pairs := numVCs / 2
			return v%pairs == rc.ReservedVC%pairs
		}
		return false
	}
	for v := 0; v < numVCs; v++ {
		if !mask.Has(v) || reserved(v) {
			continue
		}
		if p.active[v] != nil {
			continue
		}
		if p.canInject(v) {
			return v
		}
	}
	return -1
}

func (p *Port) removePending(in *injection) {
	for i, q := range p.pending {
		if q == in {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			return
		}
	}
}

func (p *Port) injectFlit(in *injection, now int64) {
	f := in.flits[in.next]
	if in.next == 0 {
		in.inject = now
		p.shard.injected++
		if p.probe != nil {
			p.probe.Trace(telemetry.EvInject, now, f.PacketID, int32(f.Src), int32(f.Dst))
		}
		if p.net.tracing {
			p.net.trace("cycle=%d pkt=%d event=injected src=%d dst=%d vc=%d queued=%d",
				now, f.PacketID, f.Src, f.Dst, f.VC, now-f.Birth)
		}
	}
	if p.probe != nil {
		p.probe.InjectedFlits++
	}
	f.Inject = in.inject
	in.next++
	p.accept(f)
}
