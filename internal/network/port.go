package network

import (
	"fmt"
	"sort"

	"repro/internal/flit"
	"repro/internal/route"
	"repro/internal/router"
)

// Client is the logic in a tile that uses the network. Tick runs once per
// cycle after deliveries are available on the port.
type Client interface {
	Tick(now int64, p *Port)
}

// ClientFunc adapts a function to the Client interface.
type ClientFunc func(now int64, p *Port)

// Tick implements Client.
func (f ClientFunc) Tick(now int64, p *Port) { f(now, p) }

// Delivery is a packet handed to the client by the network, reassembled
// from its flits.
type Delivery struct {
	PacketID    uint64
	Src, Dst    int
	Payload     []byte
	Class, Flow int
	Birth       int64
	Arrived     int64
	Flits       int
}

// injection is one packet being (or waiting to be) driven into the tile
// input port, one flit per cycle.
type injection struct {
	flits  []*flit.Flit
	next   int
	vc     int // -1 until chosen at head injection
	class  int
	seq    uint64 // creation order, for deterministic tie-breaks
	inject int64  // cycle the head entered the network
}

func (in *injection) done() bool { return in.next >= len(in.flits) }

// Port is the paper's §2.1 tile interface: a 256-bit injection port with
// per-VC ready signals and a delivery port. One flit moves in each
// direction per cycle.
type Port struct {
	tile int
	net  *Network

	canInject func(vc int) bool
	accept    func(f *flit.Flit)

	pending  []*injection
	reserved []*injection
	active   map[int]*injection // by VC

	partial map[uint64][]*flit.Flit
	rx      []*Delivery

	loopback []*Delivery // src == dst deliveries, available next cycle
	loopAt   []int64

	// BlockedReserved counts cycles a pre-scheduled flit missed its
	// injection slot because the port was not ready — a schedule
	// violation if nonzero.
	BlockedReserved int64
}

// Tile reports the port's tile id.
func (p *Port) Tile() int { return p.tile }

// Send queues a packet for injection and returns its id. The virtual
// channel is chosen from mask at injection time; class sets the
// arbitration priority among this tile's own packets (higher wins, and the
// paper's "long, low priority packet may be interrupted" behaviour follows
// from per-flit re-arbitration).
func (p *Port) Send(dst int, payload []byte, mask flit.VCMask, class int) (uint64, error) {
	if dst < 0 || dst >= p.net.topo.NumTiles() {
		return 0, fmt.Errorf("network: destination %d out of range", dst)
	}
	if mask == 0 {
		return 0, fmt.Errorf("network: empty VC mask")
	}
	now := p.net.kernel.Now()
	pkt := &flit.Packet{
		ID: p.net.nextPacketID(), Src: p.tile, Dst: dst,
		Mask: mask, Payload: payload, Birth: now, Class: class,
	}
	p.net.recorder.Generated++
	if dst == p.tile {
		// Loopback: the network never sees the packet; it is delivered
		// through the port pair directly on the next cycle.
		fl := pkt.Flits()
		p.loopback = append(p.loopback, &Delivery{
			PacketID: pkt.ID, Src: p.tile, Dst: dst,
			Payload: append([]byte(nil), payload...),
			Class:   class, Birth: now, Flits: len(fl),
		})
		p.loopAt = append(p.loopAt, now+1)
		return pkt.ID, nil
	}
	w, rerouted, err := p.net.routeFor(p.tile, dst)
	if err != nil {
		p.net.recorder.Generated--
		p.net.unroutable++
		return 0, err
	}
	if rerouted {
		p.net.rerouted++
	}
	pkt.Route = w
	fl := pkt.Flits()
	if p.net.cfg.Deflect || p.net.cfg.Router.Mode != 0 {
		if len(fl) > 1 {
			return 0, fmt.Errorf("network: multi-flit packet in single-flit flow-control mode")
		}
	}
	if rc := p.net.cfg.Router; rc.CutThrough && len(fl) > rc.BufFlits {
		return 0, fmt.Errorf("network: %d-flit packet exceeds the %d-flit buffers cut-through requires", len(fl), rc.BufFlits)
	}
	p.pending = append(p.pending, &injection{flits: fl, vc: -1, class: class, seq: pkt.ID})
	p.net.trace("cycle=%d pkt=%d event=generated src=%d dst=%d bytes=%d class=%d flits=%d route=%v",
		now, pkt.ID, p.tile, dst, len(payload), class, len(fl), w)
	return pkt.ID, nil
}

// SendReserved queues a single-flit packet of a pre-scheduled flow for
// immediate injection on the reserved virtual channel. The caller (a
// stream source) must call it on the cycle matching the flow's reserved
// phase; the routes and link slots were booked by Network.ReserveFlow.
func (p *Port) SendReserved(dst int, payload []byte, flow int) (uint64, error) {
	rvc := p.net.cfg.Router.ReservedVC
	if rvc < 0 {
		return 0, fmt.Errorf("network: no reserved VC configured")
	}
	if len(payload) > flit.DataBytes {
		return 0, fmt.Errorf("network: reserved packets are single-flit (%d bytes max)", flit.DataBytes)
	}
	now := p.net.kernel.Now()
	pkt := &flit.Packet{
		ID: p.net.nextPacketID(), Src: p.tile, Dst: dst,
		Mask: flit.MaskFor(rvc), Payload: payload, Birth: now, Class: 0,
	}
	w, err := route.Compute(p.net.topo, p.tile, dst)
	if err != nil {
		return 0, err
	}
	pkt.Route = w
	p.net.recorder.Generated++
	fl := pkt.Flits()
	for _, f := range fl {
		f.VC = rvc
		f.Flow = flow
	}
	p.reserved = append(p.reserved, &injection{flits: fl, vc: rvc, class: 1 << 30, seq: pkt.ID})
	return pkt.ID, nil
}

// Deliveries returns and clears the packets delivered since the last call.
func (p *Port) Deliveries() []*Delivery {
	out := p.rx
	p.rx = nil
	return out
}

// PendingInjections reports queued plus in-progress packets, for
// source-queue depth measurements.
func (p *Port) PendingInjections() int {
	n := len(p.pending) + len(p.reserved)
	for v := 0; v < flit.NumVCs; v++ {
		if in, ok := p.active[v]; ok && !in.done() {
			n++
		}
	}
	return n
}

// receive accepts ejected flits from the router and reassembles packets.
func (p *Port) receive(flits []*flit.Flit, now int64) {
	for _, f := range flits {
		if f.Seq == router.AbortSeq {
			// Synthetic abort tail: the packet was cut mid-flight by a
			// dead link and will never complete. Discard the partial.
			delete(p.partial, f.PacketID)
			p.net.aborted++
			p.net.trace("cycle=%d pkt=%d event=aborted dst=%d", now, f.PacketID, p.tile)
			continue
		}
		p.partial[f.PacketID] = append(p.partial[f.PacketID], f)
		if !f.Type.IsTail() {
			continue
		}
		parts := p.partial[f.PacketID]
		if len(parts) != f.Seq+1 {
			continue // flits still in flight (cannot happen per-VC, but be safe)
		}
		delete(p.partial, f.PacketID)
		payload, err := flit.Reassemble(parts)
		if err != nil {
			panic(fmt.Sprintf("network: tile %d packet %d reassembly: %v", p.tile, f.PacketID, err))
		}
		p.rx = append(p.rx, &Delivery{
			PacketID: f.PacketID, Src: f.Src, Dst: f.Dst,
			Payload: payload, Class: f.Class, Flow: f.Flow,
			Birth: f.Birth, Arrived: now, Flits: len(parts),
		})
		p.net.recorder.packetDone(f, len(parts), now)
		p.net.trace("cycle=%d pkt=%d event=delivered src=%d dst=%d latency=%d netlatency=%d",
			now, f.PacketID, f.Src, f.Dst, now-f.Birth, now-f.Inject)
	}
}

// deliverLoopbacks releases matured loopback packets.
func (p *Port) deliverLoopbacks(now int64) {
	keep := p.loopback[:0]
	keepAt := p.loopAt[:0]
	for i, d := range p.loopback {
		if p.loopAt[i] <= now {
			d.Arrived = now
			p.rx = append(p.rx, d)
			p.net.recorder.DeliveredPackets++
			p.net.recorder.DeliveredFlits += int64(d.Flits)
		} else {
			keep = append(keep, d)
			keepAt = append(keepAt, p.loopAt[i])
		}
	}
	p.loopback, p.loopAt = keep, keepAt
}

// pump drives at most one flit into the network this cycle, preferring
// pre-scheduled flits, then the highest class among in-progress and
// pending packets. This is the client-side injection arbitration whose
// observable behaviour §2.1 describes: "the injection of a long, low
// priority packet may be interrupted to inject a short, high-priority
// packet and then resumed."
func (p *Port) pump(now int64) {
	if len(p.reserved) > 0 {
		in := p.reserved[0]
		f := in.flits[in.next]
		if !p.canInject(f.VC) {
			p.BlockedReserved++
			return
		}
		p.injectFlit(in, now)
		if in.done() {
			p.reserved = p.reserved[1:]
		}
		return
	}

	type cand struct {
		in    *injection
		fresh bool
	}
	var cands []cand
	for v := 0; v < flit.NumVCs; v++ {
		in, ok := p.active[v]
		if !ok || in.done() {
			continue
		}
		if p.canInject(v) {
			cands = append(cands, cand{in, false})
		}
	}
	for _, in := range p.pending {
		if vc := p.freeVCFor(in); vc >= 0 {
			cands = append(cands, cand{in, true})
			break // only the oldest startable pending packet competes
		}
	}
	if len(cands) == 0 {
		return
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].in.class != cands[j].in.class {
			return cands[i].in.class > cands[j].in.class
		}
		return cands[i].in.seq < cands[j].in.seq
	})
	win := cands[0]
	if win.fresh {
		vc := p.freeVCFor(win.in)
		win.in.vc = vc
		for _, f := range win.in.flits {
			f.VC = vc
		}
		p.active[vc] = win.in
		p.removePending(win.in)
	}
	p.injectFlit(win.in, now)
	if win.in.done() {
		delete(p.active, win.in.vc)
	}
}

// freeVCFor finds a ready virtual channel from the packet's mask that has
// no packet of this port in progress. VCs of the reserved pre-scheduled
// pair are never used for dynamic traffic (under dateline classes the
// reservation covers both class partners).
func (p *Port) freeVCFor(in *injection) int {
	mask := in.flits[0].Mask
	rc := p.net.cfg.Router
	numVCs := rc.NumVCs
	if numVCs <= 0 || numVCs > flit.NumVCs {
		numVCs = flit.NumVCs
	}
	reserved := func(v int) bool {
		if rc.ReservedVC < 0 {
			return false
		}
		if v == rc.ReservedVC {
			return true
		}
		if rc.DatelineVCs {
			pairs := numVCs / 2
			return v%pairs == rc.ReservedVC%pairs
		}
		return false
	}
	for v := 0; v < numVCs; v++ {
		if !mask.Has(v) || reserved(v) {
			continue
		}
		if _, busy := p.active[v]; busy {
			continue
		}
		if p.canInject(v) {
			return v
		}
	}
	return -1
}

func (p *Port) removePending(in *injection) {
	for i, q := range p.pending {
		if q == in {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			return
		}
	}
}

func (p *Port) injectFlit(in *injection, now int64) {
	f := in.flits[in.next]
	if in.next == 0 {
		in.inject = now
		p.net.recorder.InjectedPackets++
		p.net.trace("cycle=%d pkt=%d event=injected src=%d dst=%d vc=%d queued=%d",
			now, f.PacketID, f.Src, f.Dst, f.VC, now-f.Birth)
	}
	f.Inject = in.inject
	in.next++
	p.accept(f)
}
