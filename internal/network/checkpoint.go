package network

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/flit"
	"repro/internal/stats"
)

// This file is the checkpoint orchestration layer: Network.SaveCheckpoint
// walks every stateful component — simulation clock and RNG position,
// routers, links, ports, recorder, fault map, telemetry, clients, and any
// registered extras (e.g. a fault injector) — into one section-tagged
// snapshot, and RestoreCheckpoint rebuilds that state into a freshly
// constructed network with the same configuration.
//
// A checkpoint is taken between cycles (the core layer registers a serial
// end-of-cycle phase), where every per-shard deferral buffer is empty and
// the per-component state is byte-identical for any shard count. Shard
// partitioning, flit free-lists, worklists, and the route cache are all
// derived or semantically invisible state, so they are never serialised:
// restore recomputes occupancy and worklists, and caches refill cold.

// StatefulClient is a Client whose dynamic state rides along in network
// checkpoints. SaveCheckpoint refuses networks with attached clients that
// do not implement it.
type StatefulClient interface {
	Client
	SaveState(e *checkpoint.Encoder)
	RestoreState(d *checkpoint.Decoder)
}

// CheckpointExtra is additional per-run state (e.g. a fault injector's
// schedule cursor) registered onto the network's checkpoint with
// AddCheckpointExtra.
type CheckpointExtra interface {
	SaveState(e *checkpoint.Encoder)
	RestoreState(d *checkpoint.Decoder)
}

type checkpointExtra struct {
	name string
	x    CheckpointExtra
}

// AddCheckpointExtra registers extra state under the given name; it is
// saved in every subsequent checkpoint and must be registered again (same
// name, same order) before restore.
func (n *Network) AddCheckpointExtra(name string, x CheckpointExtra) {
	n.extras = append(n.extras, checkpointExtra{name: name, x: x})
}

// NoteCheckpoint records that a checkpoint covering state up to cycle was
// written, for the observability layer's staleness reporting.
func (n *Network) NoteCheckpoint(cycle int64) { n.lastCkptCycle = cycle }

// LastCheckpoint reports the cycle of the most recent checkpoint and
// whether any checkpoint has been taken this run.
func (n *Network) LastCheckpoint() (cycle int64, ok bool) {
	return n.lastCkptCycle, n.lastCkptCycle >= 0
}

// NoteCheckpointInterval records the configured snapshot interval, so the
// observability layer can judge checkpoint staleness.
func (n *Network) NoteCheckpointInterval(every int64) { n.ckptEvery = every }

// CheckpointInterval reports the configured snapshot interval in cycles
// (0 = checkpointing off).
func (n *Network) CheckpointInterval() int64 { return n.ckptEvery }

// checkpointable reports why this network cannot be checkpointed, or nil.
func (n *Network) checkpointable() error {
	switch {
	case n.cfg.Deflect:
		return fmt.Errorf("network: checkpointing does not cover deflection routers")
	case n.cfg.PhysWires:
		return fmt.Errorf("network: checkpointing does not cover the physical wire layer")
	case n.cfg.Meter != nil:
		return fmt.Errorf("network: checkpointing does not cover power meters")
	}
	for tile, c := range n.clients {
		if c == nil {
			continue
		}
		if _, ok := c.(StatefulClient); !ok {
			return fmt.Errorf("network: client at tile %d (%T) is not checkpointable", tile, c)
		}
	}
	return nil
}

// SaveCheckpoint serialises the complete simulation state into a snapshot
// whose resumed execution continues at the given cycle (the number of
// completed cycles at the snapshot instant). configHash guards against
// resuming under a different configuration.
func (n *Network) SaveCheckpoint(configHash uint64, cycle int64) ([]byte, error) {
	if err := n.checkpointable(); err != nil {
		return nil, err
	}
	// Gated links freeze their utilization windows while off the
	// worklists; catch every counter up so the serialised Util state is
	// byte-identical to an ungated (or differently sharded) run's. The
	// probe mirror keeps the serialised route-table counters current.
	n.finalizeUtil()
	n.observeProbe()
	b := checkpoint.NewBuilder(configHash, cycle)

	e := b.Section("clock")
	e.U64(n.kernel.RNGDraws())

	e = b.Section("net")
	e.U64(n.nextID)
	e.I64(n.rerouted)
	e.I64(n.unroutable)
	e.I64(n.aborted)
	e.Bool(n.wdStarve != nil)
	if n.wdStarve != nil {
		e.I64s(n.wdStarve)
	}

	e = b.Section("routers")
	e.U32(uint32(len(n.routers)))
	for _, r := range n.routers {
		r.SaveState(e)
	}

	e = b.Section("links")
	e.U32(uint32(len(n.links)))
	for _, le := range n.links {
		le.l.SaveState(e)
	}

	e = b.Section("ports")
	e.U32(uint32(len(n.ports)))
	for _, p := range n.ports {
		p.saveState(e)
	}

	e = b.Section("recorder")
	n.recorder.saveState(e)

	e = b.Section("faultmap")
	n.faultMap.SaveState(e)

	e = b.Section("probe")
	n.probe.SaveState(e)

	e = b.Section("clients")
	e.U32(uint32(len(n.clients)))
	for _, c := range n.clients {
		e.Bool(c != nil)
		if c != nil {
			c.(StatefulClient).SaveState(e)
		}
	}

	for _, ex := range n.extras {
		ex.x.SaveState(b.Section("x:" + ex.name))
	}
	return b.Bytes(), nil
}

// Snapshot serialises the complete simulation state at the current cycle
// into an in-memory image: the checkpoint container (section CRCs ride
// along in the format) without the file write, fsync, or manifest.
// Campaigns sharing a deterministic warmup prefix take one Snapshot at
// the branch point and Fork it per branch.
func (n *Network) Snapshot(configHash uint64) ([]byte, error) {
	return n.SaveCheckpoint(configHash, int64(n.kernel.Now()))
}

// Fork restores a Snapshot image into this network, which must be
// freshly built — or Reset — from the same configuration with the same
// clients attached and the same extras registered. Execution continues
// from the image's cycle with the identical RNG stream position, so a
// forked run is byte-identical to one that never snapshotted until the
// caller diverges it (e.g. by reseeding its traffic generators).
func (n *Network) Fork(img []byte, configHash uint64) error {
	f, err := checkpoint.Parse(img)
	if err != nil {
		return err
	}
	if f.ConfigHash != configHash {
		return fmt.Errorf("network: fork config hash mismatch: image %016x, network %016x", f.ConfigHash, configHash)
	}
	return n.RestoreCheckpoint(f)
}

// section fetches and fully consumes one named section through fn.
func restoreSection(f *checkpoint.File, name string, fn func(d *checkpoint.Decoder)) error {
	d, err := f.Section(name)
	if err != nil {
		return err
	}
	fn(d)
	if err := d.Err(); err != nil {
		return fmt.Errorf("checkpoint: section %q: %w", name, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("checkpoint: section %q: %w", name, err)
	}
	return nil
}

// RestoreCheckpoint restores a snapshot produced by SaveCheckpoint into
// this network, which must be freshly built from the same configuration
// with the same clients attached and the same extras registered. On error
// the network is left in an undefined state and must be discarded.
func (n *Network) RestoreCheckpoint(f *checkpoint.File) error {
	if err := n.checkpointable(); err != nil {
		return err
	}
	if err := restoreSection(f, "net", func(d *checkpoint.Decoder) {
		n.nextID = d.U64()
		n.rerouted = d.I64()
		n.unroutable = d.I64()
		n.aborted = d.I64()
		hasWD := d.Bool()
		if hasWD != (n.wdStarve != nil) {
			d.Fail("watchdog presence mismatch: checkpoint %v, network %v", hasWD, n.wdStarve != nil)
			return
		}
		if n.wdStarve != nil {
			starve := d.I64s()
			if len(starve) != len(n.wdStarve) {
				if d.Err() == nil {
					d.Fail("watchdog counter count mismatch: checkpoint %d, network %d", len(starve), len(n.wdStarve))
				}
				return
			}
			copy(n.wdStarve, starve)
		}
	}); err != nil {
		return err
	}
	if err := restoreSection(f, "routers", func(d *checkpoint.Decoder) {
		if nr := d.Count(1); nr != len(n.routers) {
			if d.Err() == nil {
				d.Fail("router count mismatch: checkpoint %d, network %d", nr, len(n.routers))
			}
			return
		}
		for _, r := range n.routers {
			r.RestoreState(d, r.Pool())
			if d.Err() != nil {
				return
			}
		}
	}); err != nil {
		return err
	}
	if err := restoreSection(f, "links", func(d *checkpoint.Decoder) {
		if nl := d.Count(1); nl != len(n.links) {
			if d.Err() == nil {
				d.Fail("link count mismatch: checkpoint %d, network %d", nl, len(n.links))
			}
			return
		}
		for _, le := range n.links {
			le.l.RestoreState(d, &n.shards[n.shardOf[le.to]].pool)
			if d.Err() != nil {
				return
			}
		}
	}); err != nil {
		return err
	}
	if err := restoreSection(f, "ports", func(d *checkpoint.Decoder) {
		if np := d.Count(1); np != len(n.ports) {
			if d.Err() == nil {
				d.Fail("port count mismatch: checkpoint %d, network %d", np, len(n.ports))
			}
			return
		}
		for _, p := range n.ports {
			p.restoreState(d)
			if d.Err() != nil {
				return
			}
		}
	}); err != nil {
		return err
	}
	if err := restoreSection(f, "recorder", n.recorder.restoreState); err != nil {
		return err
	}
	if err := restoreSection(f, "faultmap", n.faultMap.RestoreState); err != nil {
		return err
	}
	if err := restoreSection(f, "probe", n.probe.RestoreState); err != nil {
		return err
	}
	if err := restoreSection(f, "clients", func(d *checkpoint.Decoder) {
		if nc := d.Count(1); nc != len(n.clients) {
			if d.Err() == nil {
				d.Fail("client count mismatch: checkpoint %d, network %d", nc, len(n.clients))
			}
			return
		}
		for tile, c := range n.clients {
			present := d.Bool()
			if present != (c != nil) {
				d.Fail("client presence mismatch at tile %d: checkpoint %v, network %v", tile, present, c != nil)
				return
			}
			if c != nil {
				c.(StatefulClient).RestoreState(d)
				if d.Err() != nil {
					return
				}
			}
		}
	}); err != nil {
		return err
	}
	for _, ex := range n.extras {
		if err := restoreSection(f, "x:"+ex.name, ex.x.RestoreState); err != nil {
			return err
		}
	}
	var draws uint64
	if err := restoreSection(f, "clock", func(d *checkpoint.Decoder) {
		draws = d.U64()
	}); err != nil {
		return err
	}
	// Reposition the clock last: every construction-time RNG draw (links,
	// injector expansion) has already happened on this network, and
	// Restore replays the stream forward from the seed to the recorded
	// position, which subsumes them.
	n.kernel.RestoreClock(f.Cycle, draws)
	// Rebuild the derived per-shard worklists from restored occupancy.
	for _, r := range n.routers {
		if r.Occupancy() > 0 {
			n.activate(r.ID())
		}
	}
	if n.linkGated {
		// Re-anchor the gated utilization clock at the checkpoint cycle and
		// enlist every link restored with flits or credits still in flight.
		n.utilTicks = f.Cycle
		for i := range n.links {
			n.links[i].tickedTo = f.Cycle
			if !n.links[i].l.Idle() {
				n.activateLink(int32(i), f.Cycle)
			}
		}
	}
	n.NoteCheckpoint(f.Cycle)
	return nil
}

// --- port state -------------------------------------------------------------

func (p *Port) saveInjection(e *checkpoint.Encoder, in *injection) {
	flit.SaveFlits(e, in.flits)
	e.Int(in.next)
	e.Int(in.vc)
	e.Int(in.class)
	e.U64(in.seq)
	e.I64(in.inject)
}

func (p *Port) restoreInjection(d *checkpoint.Decoder) *injection {
	in := p.getInjection()
	in.flits = flit.RestoreFlits(d, in.flits[:0], p.pool)
	in.next = d.Int()
	in.vc = d.Int()
	in.class = d.Int()
	in.seq = d.U64()
	in.inject = d.I64()
	if in.next < 0 || in.next > len(in.flits) {
		d.Fail("injection cursor %d out of range [0, %d]", in.next, len(in.flits))
	}
	if d.Err() != nil {
		p.putInjection(in)
		return nil
	}
	return in
}

func saveDelivery(e *checkpoint.Encoder, del *Delivery) {
	e.U64(del.PacketID)
	e.Int(del.Src)
	e.Int(del.Dst)
	e.Bytes(del.Payload)
	e.Int(del.Class)
	e.Int(del.Flow)
	e.I64(del.Birth)
	e.I64(del.Arrived)
	e.Int(del.Flits)
}

func (p *Port) restoreDelivery(d *checkpoint.Decoder) *Delivery {
	del := p.getDelivery()
	del.PacketID = d.U64()
	del.Src = d.Int()
	del.Dst = d.Int()
	del.Payload = append(del.Payload[:0], d.Bytes()...)
	del.Class = d.Int()
	del.Flow = d.Int()
	del.Birth = d.I64()
	del.Arrived = d.I64()
	del.Flits = d.Int()
	if d.Err() != nil {
		p.putDelivery(del)
		return nil
	}
	return del
}

// saveState serialises the port's dynamic state: queued and in-progress
// injections, reassembly partials, undelivered receptions, pending
// loopbacks, and the schedule-violation counter. The delivery and
// injection free lists are allocation caches, not state.
func (p *Port) saveState(e *checkpoint.Encoder) {
	e.U32(uint32(len(p.pending)))
	for _, in := range p.pending {
		p.saveInjection(e, in)
	}
	e.U32(uint32(len(p.reserved)))
	for _, in := range p.reserved {
		p.saveInjection(e, in)
	}
	for _, in := range p.active {
		e.Bool(in != nil)
		if in != nil {
			p.saveInjection(e, in)
		}
	}
	live := 0
	for i := range p.partials {
		if p.partials[i].id != 0 {
			live++
		}
	}
	e.U32(uint32(live))
	for i := range p.partials {
		if s := &p.partials[i]; s.id != 0 {
			e.U64(s.id)
			flit.SaveFlits(e, s.flits)
		}
	}
	e.U32(uint32(len(p.rx)))
	for _, del := range p.rx {
		saveDelivery(e, del)
	}
	e.U32(uint32(len(p.loopback)))
	for i, del := range p.loopback {
		saveDelivery(e, del)
		e.I64(p.loopAt[i])
	}
	e.I64(p.BlockedReserved)
}

// restoreState restores a port saved with saveState. The port must belong
// to a freshly built network (all queues empty).
func (p *Port) restoreState(d *checkpoint.Decoder) {
	np := d.Count(8)
	p.pending = p.pending[:0]
	for i := 0; i < np; i++ {
		if in := p.restoreInjection(d); in != nil {
			p.pending = append(p.pending, in)
		}
	}
	nr := d.Count(8)
	p.reserved = p.reserved[:0]
	for i := 0; i < nr; i++ {
		if in := p.restoreInjection(d); in != nil {
			p.reserved = append(p.reserved, in)
		}
	}
	for v := range p.active {
		p.active[v] = nil
		if d.Bool() {
			p.active[v] = p.restoreInjection(d)
		}
	}
	nPart := d.Count(8)
	p.partials = p.partials[:0]
	for i := 0; i < nPart; i++ {
		id := d.U64()
		flits := flit.RestoreFlits(d, nil, p.pool)
		if d.Err() != nil {
			for _, f := range flits {
				p.pool.Put(f)
			}
			return
		}
		p.partials = append(p.partials, partialSlot{id: id, flits: flits})
	}
	nRx := d.Count(8)
	p.rx = p.rx[:0]
	for i := 0; i < nRx; i++ {
		if del := p.restoreDelivery(d); del != nil {
			p.rx = append(p.rx, del)
		}
	}
	nLoop := d.Count(8)
	p.loopback = p.loopback[:0]
	p.loopAt = p.loopAt[:0]
	for i := 0; i < nLoop; i++ {
		del := p.restoreDelivery(d)
		at := d.I64()
		if del != nil {
			p.loopback = append(p.loopback, del)
			p.loopAt = append(p.loopAt, at)
		}
	}
	p.BlockedReserved = d.I64()
	// Rebuild the derived injection-side worklist state (port.go): the
	// restored port stands in for a freshly built one whose lists were empty.
	p.activeCount = 0
	for _, in := range p.active {
		if in != nil {
			p.activeCount++
		}
	}
	if p.injWork() > 0 {
		p.notePump()
	}
	if len(p.loopback) > 0 {
		p.noteLoopback()
	}
}

// --- recorder state ---------------------------------------------------------

func (r *Recorder) saveState(e *checkpoint.Encoder) {
	e.I64(r.WarmupCycles)
	e.I64(r.MeasureUntil)
	e.I64(r.WindowFlits)
	r.PacketLatency.SaveState(e)
	r.NetworkLatency.SaveState(e)
	e.I64(r.Generated)
	e.I64(r.InjectedPackets)
	e.I64(r.DeliveredPackets)
	e.I64(r.DeliveredFlits)
	e.I64(r.measuredFlits)
	e.I64(r.measureFrom)
	classes := r.Classes()
	e.U32(uint32(len(classes)))
	for _, c := range classes {
		e.Int(c)
		r.perClass[c].SaveState(e)
	}
	flows := make([]int, 0, len(r.perFlow))
	for fl := range r.perFlow {
		flows = append(flows, fl)
	}
	sort.Ints(flows)
	e.U32(uint32(len(flows)))
	for _, fl := range flows {
		ft := r.perFlow[fl]
		e.Int(fl)
		ft.latency.SaveState(e)
		ft.interArr.SaveState(e)
		e.I64(ft.lastCycle)
		e.I64(ft.count)
	}
}

func (r *Recorder) restoreState(d *checkpoint.Decoder) {
	r.WarmupCycles = d.I64()
	r.MeasureUntil = d.I64()
	r.WindowFlits = d.I64()
	r.PacketLatency.RestoreState(d)
	r.NetworkLatency.RestoreState(d)
	r.Generated = d.I64()
	r.InjectedPackets = d.I64()
	r.DeliveredPackets = d.I64()
	r.DeliveredFlits = d.I64()
	r.measuredFlits = d.I64()
	r.measureFrom = d.I64()
	nc := d.Count(8)
	r.perClass = make(map[int]*stats.Hist, nc)
	for i := 0; i < nc; i++ {
		c := d.Int()
		h := stats.NewHist(4096)
		h.RestoreState(d)
		if d.Err() != nil {
			return
		}
		r.perClass[c] = h
	}
	nf := d.Count(8)
	r.perFlow = make(map[int]*flowTrace, nf)
	for i := 0; i < nf; i++ {
		fl := d.Int()
		ft := &flowTrace{latency: stats.NewHist(1024), interArr: stats.NewHist(1024)}
		ft.latency.RestoreState(d)
		ft.interArr.RestoreState(d)
		ft.lastCycle = d.I64()
		ft.count = d.I64()
		if d.Err() != nil {
			return
		}
		r.perFlow[fl] = ft
	}
}
