package network

import (
	"testing"

	"repro/internal/flit"
)

// tailFlit builds the tail stamp packetDone reads: birth/inject cycles and
// the class/flow labels.
func tailFlit(birth, inject int64, class, flow int) *flit.Flit {
	return &flit.Flit{Birth: birth, Inject: inject, Class: class, Flow: flow}
}

func TestRecorderPerClassHistograms(t *testing.T) {
	r := NewRecorder(0)
	r.packetDone(tailFlit(0, 1, 0, 0), 1, 10) // class 0, latency 10
	r.packetDone(tailFlit(0, 1, 0, 0), 1, 20) // class 0, latency 20
	r.packetDone(tailFlit(5, 6, 2, 0), 1, 15) // class 2, latency 10

	h0 := r.ClassLatency(0)
	if h0 == nil || h0.Count() != 2 {
		t.Fatalf("class 0 histogram count = %v, want 2", h0)
	}
	if h0.Mean() != 15 {
		t.Errorf("class 0 mean latency = %v, want 15", h0.Mean())
	}
	h2 := r.ClassLatency(2)
	if h2 == nil || h2.Count() != 1 || h2.Max() != 10 {
		t.Fatalf("class 2 histogram = %v, want one 10-cycle sample", h2)
	}
	if r.ClassLatency(7) != nil {
		t.Error("unused class should have a nil histogram")
	}
}

func TestRecorderWarmupExcludesClassSamples(t *testing.T) {
	r := NewRecorder(100)
	r.packetDone(tailFlit(50, 51, 1, 0), 2, 90) // born before warmup
	if r.DeliveredPackets != 1 || r.DeliveredFlits != 2 {
		t.Fatalf("delivery counters must include warmup packets: %d pkts %d flits",
			r.DeliveredPackets, r.DeliveredFlits)
	}
	if r.ClassLatency(1) != nil {
		t.Error("warmup-born packet must not contribute latency samples")
	}
	r.packetDone(tailFlit(120, 121, 1, 0), 2, 140)
	if h := r.ClassLatency(1); h == nil || h.Count() != 1 {
		t.Fatalf("post-warmup packet missing from class histogram: %v", h)
	}
}

func TestRecorderPerFlowJitterAndInterArrival(t *testing.T) {
	r := NewRecorder(0)
	// Flow 3 delivers at cycles 10, 20, 31 with latencies 8, 8, 11.
	r.packetDone(tailFlit(2, 3, 0, 3), 1, 10)
	r.packetDone(tailFlit(12, 13, 0, 3), 1, 20)
	r.packetDone(tailFlit(20, 21, 0, 3), 1, 31)

	if h := r.FlowLatency(3); h == nil || h.Count() != 3 {
		t.Fatalf("flow latency histogram = %v, want 3 samples", h)
	}
	if got := r.FlowJitter(3); got != 3 {
		t.Errorf("FlowJitter = %d, want 3 (11-8 peak-to-peak)", got)
	}
	ia := r.FlowInterArrival(3)
	if ia == nil || ia.Count() != 2 {
		t.Fatalf("inter-arrival histogram = %v, want 2 gaps", ia)
	}
	if ia.Quantile(0) != 10 || ia.Max() != 11 {
		t.Errorf("inter-arrival gaps min=%d max=%d, want 10 and 11", ia.Quantile(0), ia.Max())
	}
}

func TestRecorderFlowZeroIsUntracked(t *testing.T) {
	r := NewRecorder(0)
	r.packetDone(tailFlit(0, 1, 0, 0), 1, 5)
	if r.FlowLatency(0) != nil || r.FlowInterArrival(0) != nil {
		t.Error("flow 0 (dynamic traffic) must not be tracked per-flow")
	}
	if r.FlowJitter(0) != 0 {
		t.Error("flow 0 jitter should be 0")
	}
	if r.FlowJitter(42) != 0 {
		t.Error("unknown flow jitter should be 0")
	}
}

func TestRecorderJitterSingleSample(t *testing.T) {
	r := NewRecorder(0)
	r.packetDone(tailFlit(0, 1, 0, 9), 1, 7)
	if got := r.FlowJitter(9); got != 0 {
		t.Errorf("single-delivery flow jitter = %d, want 0", got)
	}
	if ia := r.FlowInterArrival(9); ia == nil || ia.Count() != 0 {
		t.Errorf("single delivery has no inter-arrival gap: %v", ia)
	}
}

func TestRecorderMeasurementWindow(t *testing.T) {
	r := NewRecorder(100)
	r.MeasureUntil = 200
	r.packetDone(tailFlit(10, 11, 0, 0), 3, 50)  // before window
	r.packetDone(tailFlit(90, 91, 0, 0), 3, 150) // inside (delivery cycle governs)
	r.packetDone(tailFlit(150, 151, 0, 0), 3, 250) // after window
	if r.WindowFlits != 3 {
		t.Errorf("WindowFlits = %d, want 3 (only the in-window delivery)", r.WindowFlits)
	}
}
