// Package network assembles topologies, routers, and links into the
// complete on-chip network of Section 2 of the paper, and exposes the
// reliable-datagram client interface of §2.1: each tile gets a Port with an
// injection side (gated by per-VC ready signals) and a delivery side
// (reassembled packets), plus helpers to lay out pre-scheduled flows over
// the reservation registers (§2.6).
package network

import (
	"fmt"
	"sort"

	"repro/internal/flit"
	"repro/internal/stats"
)

// Recorder accumulates the measurements every experiment reports: packet
// latency (from creation, so source queueing is included), network latency
// (from injection of the head flit), throughput, hop counts, and per-flow
// delivery traces for jitter analysis.
type Recorder struct {
	// WarmupCycles excludes the transient: only packets born at or after
	// this cycle contribute to latency statistics.
	WarmupCycles int64

	// MeasureUntil, when nonzero, closes the throughput window: flits
	// delivered in [WarmupCycles, MeasureUntil] count toward
	// WindowFlits regardless of when their packet was born.
	MeasureUntil int64
	WindowFlits  int64

	PacketLatency  *stats.Hist // birth -> tail delivery
	NetworkLatency *stats.Hist // head injection -> tail delivery

	Generated        int64
	InjectedPackets  int64
	DeliveredPackets int64
	DeliveredFlits   int64
	measuredFlits    int64
	measureFrom      int64 // first delivery cycle counted for throughput

	perClass map[int]*stats.Hist
	perFlow  map[int]*flowTrace
}

type flowTrace struct {
	latency   *stats.Hist
	interArr  *stats.Hist
	lastCycle int64
	count     int64
}

// NewRecorder returns a recorder with the given warmup horizon.
func NewRecorder(warmup int64) *Recorder {
	return &Recorder{
		WarmupCycles:   warmup,
		PacketLatency:  stats.NewHist(4096),
		NetworkLatency: stats.NewHist(4096),
		perClass:       make(map[int]*stats.Hist),
		perFlow:        make(map[int]*flowTrace),
	}
}

// Reset rewinds the recorder to measurement-empty with a new warmup
// horizon, reusing the histogram allocations. Per-class and per-flow maps
// are cleared rather than kept: a stale class from a previous run would
// otherwise leak into this run's Classes enumeration.
func (r *Recorder) Reset(warmup int64) {
	r.WarmupCycles = warmup
	r.MeasureUntil = 0
	r.WindowFlits = 0
	r.PacketLatency.Reset()
	r.NetworkLatency.Reset()
	r.Generated = 0
	r.InjectedPackets = 0
	r.DeliveredPackets = 0
	r.DeliveredFlits = 0
	r.measuredFlits = 0
	r.measureFrom = 0
	clear(r.perClass)
	clear(r.perFlow)
}

// packetDone records a fully delivered packet whose tail arrived at cycle
// now. tail is the tail flit (carrying birth/inject stamps and class/flow).
func (r *Recorder) packetDone(tail *flit.Flit, flits int, now int64) {
	r.packetDoneRec(tail.Birth, tail.Inject, tail.Class, tail.Flow, flits, now)
}

// packetDoneRec is packetDone on the tail-flit fields alone, so sharded
// eject phases can defer the recorder update past the flit's recycling
// (shard.go) and apply it behind the phase barrier.
func (r *Recorder) packetDoneRec(birth, inject int64, class, flow, flits int, now int64) {
	r.DeliveredPackets++
	r.DeliveredFlits += int64(flits)
	if now >= r.WarmupCycles && (r.MeasureUntil == 0 || now <= r.MeasureUntil) {
		r.WindowFlits += int64(flits)
	}
	if birth < r.WarmupCycles {
		return
	}
	if r.measureFrom == 0 {
		r.measureFrom = now
	}
	r.measuredFlits += int64(flits)
	r.PacketLatency.Add(now - birth)
	r.NetworkLatency.Add(now - inject)
	h, ok := r.perClass[class]
	if !ok {
		h = stats.NewHist(4096)
		r.perClass[class] = h
	}
	h.Add(now - birth)
	if flow != 0 {
		ft, ok := r.perFlow[flow]
		if !ok {
			ft = &flowTrace{latency: stats.NewHist(1024), interArr: stats.NewHist(1024), lastCycle: -1}
			r.perFlow[flow] = ft
		}
		ft.latency.Add(now - birth)
		if ft.lastCycle >= 0 {
			ft.interArr.Add(now - ft.lastCycle)
		}
		ft.lastCycle = now
		ft.count++
	}
}

// ClassLatency reports the latency histogram of a service class (nil if
// the class delivered nothing in the measurement window).
func (r *Recorder) ClassLatency(class int) *stats.Hist { return r.perClass[class] }

// Classes reports the service classes that delivered measured packets, in
// ascending order, so exporters can enumerate ClassLatency histograms
// deterministically.
func (r *Recorder) Classes() []int { return r.AppendClasses(nil) }

// AppendClasses is Classes into a reused buffer, for per-sample callers.
func (r *Recorder) AppendClasses(dst []int) []int {
	dst = dst[:0]
	for c := range r.perClass {
		dst = append(dst, c)
	}
	sort.Ints(dst)
	return dst
}

// FlowLatency reports the latency histogram of a pre-scheduled flow.
func (r *Recorder) FlowLatency(flow int) *stats.Hist {
	if ft := r.perFlow[flow]; ft != nil {
		return ft.latency
	}
	return nil
}

// FlowJitter reports the peak-to-peak delivery jitter of a flow: the
// spread (max - min) of its packet latencies. A perfectly pre-scheduled
// flow has zero jitter (§2.6).
func (r *Recorder) FlowJitter(flow int) int64 {
	ft := r.perFlow[flow]
	if ft == nil || ft.latency.Count() == 0 {
		return 0
	}
	return ft.latency.Max() - ft.latency.Quantile(0)
}

// FlowInterArrival reports the inter-arrival histogram of a flow.
func (r *Recorder) FlowInterArrival(flow int) *stats.Hist {
	if ft := r.perFlow[flow]; ft != nil {
		return ft.interArr
	}
	return nil
}

// ThroughputFlitsPerCycle reports delivered measured flits per cycle over
// the measurement span ending at cycle now.
func (r *Recorder) ThroughputFlitsPerCycle(now int64) float64 {
	span := now - r.measureFrom
	if r.measureFrom == 0 || span <= 0 {
		return 0
	}
	return float64(r.measuredFlits) / float64(span)
}

// String summarizes the recorder.
func (r *Recorder) String() string {
	return fmt.Sprintf("generated=%d injected=%d delivered=%d lat{%v}",
		r.Generated, r.InjectedPackets, r.DeliveredPackets, r.PacketLatency)
}
