package network

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/flit"
	"repro/internal/router"
	"repro/internal/topology"
)

// ckptClient is a deterministic random-traffic client with checkpointable
// state, standing in for the traffic package (which would be an import
// cycle here).
type ckptClient struct {
	tile    int
	rng     *rand.Rand
	seed    int64
	draw    uint64
	sent    int64
	stopped bool
}

func newCkptClient(tile int, seed int64) *ckptClient {
	c := &ckptClient{tile: tile, seed: seed}
	c.rng = rand.New(rand.NewSource(seed))
	return c
}

func (c *ckptClient) Tick(now int64, p *Port) {
	p.Deliveries()
	if c.stopped {
		return
	}
	c.draw++
	if c.rng.Float64() < 0.08 {
		dst := (c.tile + 1 + int(c.draw)%15) % 16
		if dst != c.tile {
			if _, err := p.Send(dst, []byte{byte(now), byte(c.tile)}, flit.VCMask(0xFF), 0); err == nil {
				c.sent++
			}
		}
	}
}

func (c *ckptClient) SaveState(e *checkpoint.Encoder) {
	e.U64(c.draw)
	e.I64(c.sent)
}

func (c *ckptClient) RestoreState(d *checkpoint.Decoder) {
	c.draw = d.U64()
	c.sent = d.I64()
	c.rng = rand.New(rand.NewSource(c.seed))
	for i := uint64(0); i < c.draw; i++ {
		c.rng.Float64()
	}
}

func buildCkptNet(t *testing.T, shards, watchdog int) *Network {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := router.DefaultConfig(0)
	n, err := New(Config{
		Topo: topo, Router: rc, Seed: 42, Warmup: 50,
		Shards: shards, Watchdog: watchdog,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < 16; tile++ {
		n.AttachClient(tile, newCkptClient(tile, 7*int64(tile)+1))
	}
	return n
}

// TestCheckpointRoundTrip saves mid-run, restores into a fresh network,
// and requires the resumed run's state — as witnessed by a second
// checkpoint — to be byte-identical to the uninterrupted run's.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ref := buildCkptNet(t, shards, 0)
			ref.Run(300)
			snap, err := ref.SaveCheckpoint(99, 300)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(300)
			want, err := ref.SaveCheckpoint(99, 600)
			if err != nil {
				t.Fatal(err)
			}

			f, err := checkpoint.Parse(snap)
			if err != nil {
				t.Fatal(err)
			}
			if f.Cycle != 300 || f.ConfigHash != 99 {
				t.Fatalf("header = (cycle %d, hash %d), want (300, 99)", f.Cycle, f.ConfigHash)
			}
			res := buildCkptNet(t, shards, 0)
			if err := res.RestoreCheckpoint(f); err != nil {
				t.Fatal(err)
			}
			if got := res.Kernel().Now(); got != 300 {
				t.Fatalf("restored clock = %d, want 300", got)
			}
			res.Run(300)
			got, err := res.SaveCheckpoint(99, 600)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("resumed state diverges from the uninterrupted run (snapshot %d vs %d bytes)", len(got), len(want))
			}
			if s := res.Recorder().String(); s != ref.Recorder().String() {
				t.Fatalf("recorder diverged:\nresumed  %s\nstraight %s", s, ref.Recorder().String())
			}
		})
	}
}

// TestCheckpointShardInvariant requires the snapshot bytes to be
// identical for any shard count.
func TestCheckpointShardInvariant(t *testing.T) {
	var want []byte
	for _, shards := range []int{1, 2, 4} {
		n := buildCkptNet(t, shards, 0)
		n.Run(250)
		snap, err := n.SaveCheckpoint(1, 250)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = snap
			continue
		}
		if string(snap) != string(want) {
			t.Fatalf("shards=%d snapshot differs from shards=1 (%d vs %d bytes)", shards, len(snap), len(want))
		}
	}
}

// TestCheckpointCrossShardRestore saves under one shard count and resumes
// under others: the continued runs must all converge on identical state.
func TestCheckpointCrossShardRestore(t *testing.T) {
	src := buildCkptNet(t, 1, 0)
	src.Run(300)
	snap, err := src.SaveCheckpoint(5, 300)
	if err != nil {
		t.Fatal(err)
	}
	src.Run(200)
	want, err := src.SaveCheckpoint(5, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		f, err := checkpoint.Parse(snap)
		if err != nil {
			t.Fatal(err)
		}
		res := buildCkptNet(t, shards, 0)
		if err := res.RestoreCheckpoint(f); err != nil {
			t.Fatal(err)
		}
		res.Run(200)
		got, err := res.SaveCheckpoint(5, 500)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("resume at shards=%d diverges from straight-through shards=1", shards)
		}
	}
}

// TestCheckpointRejectsMismatchedNetwork requires structural mismatches to
// surface as errors, not corruption.
func TestCheckpointRejectsMismatchedNetwork(t *testing.T) {
	n := buildCkptNet(t, 1, 0)
	n.Run(100)
	snap, err := n.SaveCheckpoint(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	f, err := checkpoint.Parse(snap)
	if err != nil {
		t.Fatal(err)
	}
	// A watchdog-armed network has extra state the snapshot lacks.
	other := buildCkptNet(t, 1, 64)
	if err := other.RestoreCheckpoint(f); err == nil {
		t.Fatal("restore into a watchdog-armed network succeeded; want presence-mismatch error")
	}
}

// TestCheckpointRefusesStatelessClient requires Save to reject clients it
// cannot serialise rather than silently dropping their state.
func TestCheckpointRefusesStatelessClient(t *testing.T) {
	n := buildCkptNet(t, 1, 0)
	n.AttachClient(3, ClientFunc(func(now int64, p *Port) { p.Deliveries() }))
	if _, err := n.SaveCheckpoint(1, 0); err == nil {
		t.Fatal("SaveCheckpoint accepted a non-checkpointable client")
	}
}

// TestCheckpointOutstandingFlits checks the pool accounting balances
// after a restore: every live flit was drawn through a pool Get.
func TestCheckpointOutstandingFlits(t *testing.T) {
	n := buildCkptNet(t, 2, 0)
	n.Run(300)
	snap, err := n.SaveCheckpoint(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	f, err := checkpoint.Parse(snap)
	if err != nil {
		t.Fatal(err)
	}
	res := buildCkptNet(t, 2, 0)
	if err := res.RestoreCheckpoint(f); err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < 16; tile++ {
		c := res.clients[tile].(*ckptClient)
		c.StopSending()
	}
	if !res.Drain(20000) {
		t.Fatal("restored network failed to drain")
	}
	if out := res.FlitsOutstanding(); out != 0 {
		t.Fatalf("FlitsOutstanding = %d after drain, want 0", out)
	}
}

// StopSending halts packet generation so the network can drain.
func (c *ckptClient) StopSending() { c.stopped = true }
