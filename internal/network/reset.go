package network

import "fmt"

// This file implements network arena pooling: Reset re-initializes a
// built network in place so a sweep campaign constructs its routers,
// links, ports, shard partitions, and phase schedule once and reuses them
// for every point. The invariant is Reset ≡ New: after Reset(seed,
// warmup) the network is state-for-state what New would have produced
// with those parameters (plus warm allocation caches — flit free lists,
// worklist capacity — which are semantically invisible). The golden tests
// hold a Reset network to byte-identical results against a fresh build.
//
// In-memory warm forks ride on the same machinery: Snapshot serialises
// the complete simulation state into a byte image (the checkpoint
// container without the file, fsync, or manifest), and Fork restores an
// image into a Reset-fresh network, so campaigns sharing a deterministic
// warmup prefix run it once and fork per branch.

// Resettable reports why this network cannot be pooled and reset in
// place, or nil. The excluded configurations hold state outside the
// network's reach: deflection routers (separate state machines),
// physical wire layers (construction-time RNG draws), power meters and
// trace writers (external accumulators), and telemetry probes
// (per-component registries with their own counters).
func (n *Network) Resettable() error {
	switch {
	case n.cfg.Deflect:
		return fmt.Errorf("network: reset does not cover deflection routers")
	case n.cfg.PhysWires:
		return fmt.Errorf("network: reset does not cover the physical wire layer")
	case n.cfg.Meter != nil:
		return fmt.Errorf("network: reset does not cover power meters")
	case n.cfg.TraceWriter != nil:
		return fmt.Errorf("network: reset does not cover trace writers")
	case n.probe != nil:
		return fmt.Errorf("network: reset does not cover telemetry probes")
	}
	return nil
}

// Reset re-initializes the network in place for a fresh run with the
// given seed and warmup horizon, recycling every in-flight flit and
// allocating nothing in steady state. Clients are detached (the next run
// attaches its own); phases appended after construction — checkpoint
// hooks, collectors, injectors — are truncated from the schedule; the
// configuration, wiring, shard partition, and route table/cache survive.
func (n *Network) Reset(seed, warmup int64) error {
	if err := n.Resettable(); err != nil {
		return err
	}
	n.cfg.Seed, n.cfg.Warmup = seed, warmup
	n.kernel.Reset(seed)
	for _, r := range n.routers {
		r.Reset()
	}
	for i := range n.links {
		le := &n.links[i]
		le.l.Reset()
		le.tickedTo = 0
	}
	// Re-run the construction wiring pass: SetOutLink re-initializes the
	// sending router's credit counters (and credit mask) for each channel,
	// exactly as a fresh build does. Attachment and datelines are already
	// in place; only the credit state was zeroed by Router.Reset.
	for i := range n.links {
		le := &n.links[i]
		n.routers[le.from].SetOutLink(le.dir, le.l, n.cfg.Router.BufFlits)
	}
	for _, p := range n.ports {
		p.reset()
	}
	for i := range n.clients {
		n.clients[i] = nil
	}
	n.clientTiles = n.clientTiles[:0]
	n.recorder.Reset(warmup)
	n.faultMap.Reset()
	for i := range n.wdStarve {
		n.wdStarve[i] = 0
	}
	for i := range n.wdCredit {
		n.wdCredit[i] = false
	}
	n.nextID = 0
	n.rerouted, n.unroutable, n.aborted = 0, 0, 0
	n.routeHits, n.routeMisses = 0, 0
	for i := range n.onList {
		n.onList[i] = false
	}
	for i := range n.linkOn {
		n.linkOn[i] = false
	}
	n.utilTicks = 0
	for _, s := range n.shards {
		s.active = s.active[:0]
		s.activeLinks = s.activeLinks[:0]
		s.pendingLinks = s.pendingLinks[:0]
		s.pumpList = s.pumpList[:0]
		s.loopList = s.loopList[:0]
		s.credits = s.credits[:0]
		s.dones = s.dones[:0]
		s.delivered, s.deliveredFlits, s.injected, s.aborted = 0, 0, 0, 0
	}
	n.extras = n.extras[:0]
	n.pktObs = nil
	n.lastCkptCycle = -1
	n.ckptEvery = 0
	return nil
}
