package network

import (
	"math/bits"
	"runtime"

	"repro/internal/flit"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/sim"
)

// This file implements intra-cycle spatial parallelism: the network's
// tiles (router, port, client) and links are partitioned into contiguous
// shards, and every kernel phase runs its per-component work concurrently
// across shards with a barrier between phases (sim.AddShardedPhase).
//
// Correctness rests on what the five-phase staging discipline already
// guarantees for the sequential loop: within a phase, a router only reads
// neighbor state written in a *previous* phase (link pipes are filled in
// linkarb and drained in deliver; credits are queued in switcharb and
// delivered in deliver), so per-router work inside one phase is
// commutative. The only same-phase cross-shard effects are (a) credit
// returns surfacing at a link whose sending router lives in another shard
// and (b) global recorder counters; both are deferred into per-shard
// buffers and folded in at the phase barrier, in shard order — which is
// tile order — so the post-barrier state is byte-identical to the
// sequential schedule for any shard count. Client Tick stays a serial
// phase: it assigns globally ordered packet ids (they appear in traces and
// goldens), and it is cheap — the expensive halves of the old clients
// phase, packet reassembly (eject) and injection arbitration (pump), do
// shard.
//
// Every flit-recycling component (router, link, port) draws from its
// shard's own flit.Pool; Put fully zeroes a flit, so which pool a flit
// lives in is unobservable and flits may freely migrate between pools
// (injected from one shard's pool, delivered into another's).

// shardLink is one link owned by a shard. Ownership follows the receiving
// tile (le.to), which makes flit acceptance and credit emission
// (SendCredit, called by the receiver) shard-local; local marks links
// whose *sender* is also in-shard, so their credit returns are applied
// inline instead of deferred.
type shardLink struct {
	idx   int
	local bool
}

// creditRet is one deferred cross-shard credit return, applied at the
// deliver barrier.
type creditRet struct {
	r   *router.Router
	dir route.Dir
	vc  int
}

// doneRec is one deferred packet delivery, applied to the recorder at the
// eject barrier. It captures the tail-flit fields packetDone (and the
// attached packet observer) reads, since the flit itself is recycled
// before the merge runs.
type doneRec struct {
	id            uint64
	birth, inject int64
	src, dst      int
	hops          int
	class, flow   int
	flits         int
}

// shardState is one shard's slice of the network plus its deferral
// buffers. All fields except the merge-drained buffers are touched only
// by the owning shard's worker (or single-threaded between barriers).
type shardState struct {
	id     int
	lo, hi int         // owned tile range [lo, hi)
	links  []shardLink // owned links (by receiving tile)

	// active is the shard's router worklist: tiles whose router holds at
	// least one flit. Routers join on flit acceptance and leave at the
	// route-phase sweep, so fully quiescent regions cost nothing in the
	// three router phases.
	active []int

	// activeLinks is the shard's link worklist (indexes into n.links),
	// maintained only when n.linkGated: links join when their sender puts
	// a flit on the wires or their receiver hands them a credit, and leave
	// at the delivery sweep once Idle. Off-list links skip even the
	// idle utilization tick; linkEntry.tickedTo records how far their
	// window has been accounted so activation (and any Util read) can
	// catch the counter up in one AddCycles call.
	activeLinks []int32

	// pendingLinks defers link activations whose receiver lives in
	// another shard (a send crosses the shard boundary); linkarbMerge
	// applies them behind the phase barrier.
	pendingLinks []int32

	// pumpList is the shard's port worklist for the pump phase: ports
	// with queued or in-progress injections (Port.injWork() > 0).
	// loopList is the matching worklist for pending loopback deliveries.
	// Both are maintained through Port.notePump/noteLoopback and swept by
	// their phase; used only when n.portGated.
	pumpList []int32
	loopList []int32

	// pool recycles the flits created and destroyed by this shard's
	// components. flit.Pool is not concurrency-safe; per-shard ownership
	// is what keeps it that way.
	pool flit.Pool

	// Deferred cross-shard / global effects, drained by the merges.
	credits        []creditRet
	dones          []doneRec
	delivered      int64 // loopback packets (recorder.DeliveredPackets)
	deliveredFlits int64 // loopback flits (recorder.DeliveredFlits)
	injected       int64 // recorder.InjectedPackets
	aborted        int64 // Network.aborted
}

// effectiveShards resolves the configured shard count: 0 selects
// GOMAXPROCS, the count is clamped to [1, tiles], and configurations with
// globally ordered side effects — the physical wire layer (shared kernel
// RNG), a power meter (shared accumulator), packet tracing, telemetry
// lifecycle tracing — force the sequential path.
func effectiveShards(cfg Config, tiles int) int {
	s := cfg.Shards
	if s == 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s < 1 {
		s = 1
	}
	if s > tiles {
		s = tiles
	}
	if cfg.PhysWires || cfg.Meter != nil || cfg.TraceWriter != nil {
		s = 1
	}
	if cfg.Probe != nil && cfg.Probe.Tracer() != nil {
		s = 1
	}
	return s
}

// initShards partitions the tiles into contiguous ranges and assigns each
// link to the shard of its receiving tile.
func (n *Network) initShards(count int) {
	tiles := n.topo.NumTiles()
	n.shardOf = make([]int, tiles)
	n.onList = make([]bool, tiles)
	n.shards = make([]*shardState, count)
	for s := 0; s < count; s++ {
		sh := &shardState{id: s, lo: tiles * s / count, hi: tiles * (s + 1) / count}
		for t := sh.lo; t < sh.hi; t++ {
			n.shardOf[t] = s
		}
		n.shards[s] = sh
	}
	for i := range n.links {
		le := &n.links[i]
		owner := n.shardOf[le.to]
		n.shards[owner].links = append(n.shards[owner].links,
			shardLink{idx: i, local: n.shardOf[le.from] == owner})
	}
}

// Shards reports the effective intra-cycle shard count the network runs
// with (1 = sequential). It can be lower than Config.Shards when the
// configuration forces the sequential path.
func (n *Network) Shards() int { return len(n.shards) }

// FlitsOutstanding reports pool-allocated flits currently alive anywhere
// in the network, summed across all shard pools (flits migrate between
// pools, so only the aggregate is meaningful). A drained network must
// report zero.
func (n *Network) FlitsOutstanding() int64 {
	var total int64
	for _, s := range n.shards {
		total += s.pool.Outstanding()
	}
	return total
}

// activate puts a tile's router on its shard's worklist. Safe to call
// repeatedly; the onList bit dedupes. Called by the owning shard's worker
// (flit acceptance is always shard-local) or from serial phases.
func (n *Network) activate(tile int) {
	if n.onList[tile] {
		return
	}
	n.onList[tile] = true
	s := n.shards[n.shardOf[tile]]
	s.active = append(s.active, tile)
}

// acceptAt hands a flit to a tile's VC router and keeps the worklist
// current.
func (n *Network) acceptAt(tile int, f *flit.Flit, from route.Dir) {
	n.routers[tile].AcceptFlit(f, from)
	n.activate(tile)
}

// activateLink puts a link on its owning (receiving) shard's worklist and
// catches its utilization window up over the skipped idle cycles. Safe to
// call repeatedly; the linkOn bit dedupes. Must only be called by the
// owning shard's worker or from serial/merge phases.
func (n *Network) activateLink(i int32, _ int64) {
	if n.linkOn[i] {
		return
	}
	n.linkOn[i] = true
	le := &n.links[i]
	if gap := n.utilTicks - le.tickedTo; gap > 0 {
		le.l.Util.AddCycles(gap)
	}
	le.tickedTo = n.utilTicks
	s := n.shards[n.shardOf[le.to]]
	s.activeLinks = append(s.activeLinks, i)
}

// deliverGatedShard is deliverShard over the link worklist: only links
// with traffic (or credits) in flight are visited, and a link that has
// gone idle leaves the list — its utilization window is frozen at
// tickedTo and caught up on reactivation. Quiescent regions therefore
// cost nothing in the delivery phase, not even the idle tick.
func (n *Network) deliverGatedShard(now sim.Cycle, si int) {
	s := n.shards[si]
	keep := s.activeLinks[:0]
	for _, i := range s.activeLinks {
		le := &n.links[i]
		if le.l.Idle() {
			// This cycle's idle tick is skipped along with the link;
			// utilTicks has not yet counted this cycle (deliverMerge
			// increments it), so the frozen window ends exactly here.
			n.linkOn[i] = false
			le.tickedTo = n.utilTicks
			continue
		}
		keep = append(keep, i)
		if n.cfg.ElasticLinks {
			to, in := n.routers[le.to], le.dir.Opposite()
			f := le.l.DeliverElastic(func(f *flit.Flit) bool {
				return to.CanAccept(in, f.VC)
			})
			if f != nil {
				n.acceptAt(le.to, f, in)
			}
			continue
		}
		f, credits := le.l.Deliver()
		if len(credits) > 0 {
			if n.shardOf[le.from] == si {
				n.routers[le.from].HandleCredits(le.dir, credits)
			} else {
				for _, vc := range credits {
					s.credits = append(s.credits, creditRet{n.routers[le.from], le.dir, vc})
				}
			}
		}
		if f != nil {
			n.acceptAt(le.to, f, le.dir.Opposite())
		}
	}
	s.activeLinks = keep
}

// deliverShard advances this shard's links by one cycle: flits complete
// their traversal into in-shard routers, credits complete their reverse
// traversal toward the sending router — applied inline when the sender is
// in-shard, deferred to the barrier otherwise.
func (n *Network) deliverShard(now sim.Cycle, si int) {
	if n.linkGated {
		n.deliverGatedShard(now, si)
		return
	}
	s := n.shards[si]
	for _, sl := range s.links {
		i := sl.idx
		le := &n.links[i]
		if le.l.Idle() {
			// Active-set skip: nothing in flight in either direction.
			// Only the utilization counter needs its idle tick.
			le.l.Util.Tick(0)
			if n.wdCredit != nil {
				n.wdCredit[i] = false
			}
			continue
		}
		if n.cfg.ElasticLinks {
			to, in := n.routers[le.to], le.dir.Opposite()
			f := le.l.DeliverElastic(func(f *flit.Flit) bool {
				return to.CanAccept(in, f.VC)
			})
			if f != nil {
				n.acceptAt(le.to, f, in)
			}
			continue
		}
		f, credits := le.l.Deliver()
		if n.wdCredit != nil {
			n.wdCredit[i] = len(credits) > 0
		}
		if !n.cfg.Deflect && len(credits) > 0 {
			if sl.local {
				n.routers[le.from].HandleCredits(le.dir, credits)
			} else {
				// The credits slice is only valid until the link's next
				// Deliver, so copy the VC indices into the deferral buffer.
				for _, vc := range credits {
					s.credits = append(s.credits, creditRet{n.routers[le.from], le.dir, vc})
				}
			}
		}
		if f != nil {
			if n.traceLinks && f.Type.IsHead() {
				n.probe.Links[i].TraceHead(int64(now), f.PacketID)
			}
			if n.cfg.Deflect {
				n.defls[le.to].AcceptFlit(f, le.dir.Opposite())
			} else {
				n.acceptAt(le.to, f, le.dir.Opposite())
			}
		}
	}
}

// deliverMerge applies the deferred cross-shard credit returns. Credit
// restoration is a commutative counter increment, so application order
// cannot affect state; shard order is used for reproducibility. It also
// advances utilTicks, the network-wide count of completed delivery
// phases, which is the reference clock for gated links' frozen
// utilization windows.
func (n *Network) deliverMerge(sim.Cycle) {
	n.utilTicks++
	for _, s := range n.shards {
		for _, cr := range s.credits {
			cr.r.HandleCredit(cr.dir, cr.vc)
		}
		s.credits = s.credits[:0]
	}
}

// routeShard runs route computation over the shard's worklist, sweeping
// out routers that have gone empty. Between this sweep and the next cycle
// only flit acceptance grows a router's occupancy, and acceptance
// re-activates, so the list always covers every non-empty router.
func (n *Network) routeShard(now sim.Cycle, si int) {
	s := n.shards[si]
	keep := s.active[:0]
	for _, tile := range s.active {
		r := n.routers[tile]
		if r.Occupancy() == 0 {
			n.onList[tile] = false
			continue
		}
		keep = append(keep, tile)
		r.RouteCompute(now)
	}
	s.active = keep
}

// linkarbShard runs link arbitration over the shard's worklist. A link's
// sender is the only component touching it during this phase, so sending
// on a link owned by another shard (the receiver's) is race-free. Under
// link gating the routers' packed sent masks are consumed here to wake
// the links that just received a flit: in-shard receivers activate
// directly, cross-shard activations are deferred to linkarbMerge (the
// receiver's worklist belongs to another worker).
func (n *Network) linkarbShard(now sim.Cycle, si int) {
	s := n.shards[si]
	for _, tile := range s.active {
		r := n.routers[tile]
		if r.Occupancy() == 0 {
			continue
		}
		r.LinkArbitrate(now)
		if !n.linkGated {
			continue
		}
		for m := r.SentOutputs(); m != 0; m &= m - 1 {
			li := n.outLinkIdx[tile*router.NumPorts+bits.TrailingZeros32(m)]
			if li < 0 || n.linkOn[li] {
				continue
			}
			if n.shardOf[n.links[li].to] == si {
				n.activateLink(li, int64(now))
			} else {
				s.pendingLinks = append(s.pendingLinks, li)
			}
		}
	}
}

// linkarbMerge applies the deferred cross-shard link activations. Each
// link has exactly one sender, so no activation is pended twice; the
// linkOn re-check in activateLink makes the fold idempotent anyway.
func (n *Network) linkarbMerge(now sim.Cycle) {
	for _, s := range n.shards {
		for _, li := range s.pendingLinks {
			n.activateLink(li, int64(now))
		}
		s.pendingLinks = s.pendingLinks[:0]
	}
}

// switcharbShard runs switch arbitration (plus the deflection routers'
// combined arbitration) over the shard. Under link gating the routers'
// packed credited masks are consumed here to wake the links carrying the
// freed-slot credits upstream; a credit always travels on a link whose
// receiving tile is this router, so the activation is always in-shard.
func (n *Network) switcharbShard(now sim.Cycle, si int) {
	s := n.shards[si]
	for _, tile := range s.active {
		r := n.routers[tile]
		if r.Occupancy() == 0 {
			continue
		}
		r.SwitchArbitrate(now)
		if !n.linkGated {
			continue
		}
		for m := r.CreditedInputs(); m != 0; m &= m - 1 {
			if li := n.inLinkIdx[tile*router.NumPorts+bits.TrailingZeros32(m)]; li >= 0 {
				n.activateLink(li, int64(now))
			}
		}
	}
	if n.cfg.Deflect {
		for tile := s.lo; tile < s.hi; tile++ {
			n.defls[tile].Arbitrate(now)
		}
	}
}

// ejectShard delivers ejected flits to the shard's ports: reassembly,
// abort handling, and matured loopbacks. Recorder updates are deferred
// per shard (see Port.receive / deliverLoopbacks) and folded in by
// ejectMerge. Under port gating only routers on the worklist can hold
// eject-queue flits (the queue counts toward occupancy), and loopbacks
// are tracked on their own worklist, so quiescent tiles are never
// visited. A tile with both still sees its ejected flits before its
// loopbacks, exactly as the full scan orders them.
func (n *Network) ejectShard(now sim.Cycle, si int) {
	s := n.shards[si]
	if n.portGated {
		for _, tile := range s.active {
			if ejected := n.routers[tile].Eject(); len(ejected) > 0 {
				n.ports[tile].receive(ejected, now)
			}
		}
		keep := s.loopList[:0]
		for _, t := range s.loopList {
			p := n.ports[t]
			p.deliverLoopbacks(now)
			if len(p.loopback) == 0 {
				p.onLoop = false
				continue
			}
			keep = append(keep, t)
		}
		s.loopList = keep
		return
	}
	for tile := s.lo; tile < s.hi; tile++ {
		p := n.ports[tile]
		var ejected []*flit.Flit
		if n.cfg.Deflect {
			ejected = n.defls[tile].Eject()
		} else {
			ejected = n.routers[tile].Eject()
		}
		if len(ejected) > 0 {
			p.receive(ejected, now)
		}
		p.deliverLoopbacks(now)
	}
}

// ejectMerge folds the shards' deferred deliveries into the recorder in
// shard order — which is tile order, the sequential schedule. (All the
// recorder updates of one cycle are order-commutative anyway: every
// record carries the same `now`, and the histograms and counters are
// multiset-valued.)
func (n *Network) ejectMerge(now sim.Cycle) {
	for _, s := range n.shards {
		for i := range s.dones {
			d := &s.dones[i]
			n.recorder.packetDoneRec(d.birth, d.inject, d.class, d.flow, d.flits, now)
			if n.pktObs != nil {
				n.obsScratch = PacketObservation{
					ID: d.id, Src: d.src, Dst: d.dst,
					Class: d.class, Flow: d.flow, Hops: d.hops, Flits: d.flits,
					Birth: d.birth, Inject: d.inject, Arrived: int64(now),
				}
				n.pktObs.PacketDelivered(&n.obsScratch)
			}
		}
		s.dones = s.dones[:0]
		n.recorder.DeliveredPackets += s.delivered
		n.recorder.DeliveredFlits += s.deliveredFlits
		n.aborted += s.aborted
		s.delivered, s.deliveredFlits, s.aborted = 0, 0, 0
	}
}

// clientsTick is the serial client phase: packet generation draws globally
// ordered packet ids (which appear in traces and goldens), so Tick runs on
// one goroutine in tile order, exactly as the sequential loop always has.
// The dense clientTiles list (ascending, maintained by AttachClient) keeps
// the walk proportional to attached clients, not tiles.
func (n *Network) clientsTick(now sim.Cycle) {
	for _, tile := range n.clientTiles {
		n.clients[tile].Tick(now, n.ports[tile])
	}
}

// pumpShard drives injection arbitration for the shard's ports. Under
// port gating only ports with queued or in-progress injections are on the
// worklist; a port whose work has drained leaves it and rejoins on the
// next Send. Injection effects are port-local (plus shard counters and
// the tile's own router), so worklist order is as good as tile order.
func (n *Network) pumpShard(now sim.Cycle, si int) {
	s := n.shards[si]
	if n.portGated {
		keep := s.pumpList[:0]
		for _, t := range s.pumpList {
			p := n.ports[t]
			if p.injWork() == 0 {
				p.onPump = false
				continue
			}
			keep = append(keep, t)
			p.pump(now)
		}
		s.pumpList = keep
		return
	}
	for tile := s.lo; tile < s.hi; tile++ {
		n.ports[tile].pump(now)
	}
}

// pumpMerge folds the shards' injected-packet counts into the recorder.
func (n *Network) pumpMerge(sim.Cycle) {
	for _, s := range n.shards {
		n.recorder.InjectedPackets += s.injected
		s.injected = 0
	}
}
