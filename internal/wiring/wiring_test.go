package wiring

import (
	"math/rand"
	"testing"

	"repro/internal/circuits"
)

func someFlows() []Flow {
	// A typical SoC top level: a few wide, bursty buses that idle most of
	// the time — the §4.4 "used less than 10% of the time" picture.
	return []Flow{
		{Name: "cpu-mem", LengthMM: 6, WidthBits: 64, PeakBitsPerCycle: 64, AvgBitsPerCycle: 5},
		{Name: "dsp-mem", LengthMM: 9, WidthBits: 64, PeakBitsPerCycle: 64, AvgBitsPerCycle: 4},
		{Name: "video-in", LengthMM: 12, WidthBits: 32, PeakBitsPerCycle: 32, AvgBitsPerCycle: 3},
		{Name: "periph", LengthMM: 9, WidthBits: 32, PeakBitsPerCycle: 32, AvgBitsPerCycle: 2},
	}
}

func TestFlowValidation(t *testing.T) {
	bad := Flow{Name: "x", LengthMM: 0, WidthBits: 8, PeakBitsPerCycle: 8}
	if bad.Validate() == nil {
		t.Error("zero length accepted")
	}
	bad = Flow{Name: "x", LengthMM: 1, WidthBits: 8, PeakBitsPerCycle: 1, AvgBitsPerCycle: 2}
	if bad.Validate() == nil {
		t.Error("avg > peak accepted")
	}
	if _, err := PlanDedicated([]Flow{bad}, circuits.FullSwing(circuits.Process100nm())); err == nil {
		t.Error("PlanDedicated accepted invalid flow")
	}
	if _, err := PlanShared([]Flow{bad}, 256, 4, 3, 2); err == nil {
		t.Error("PlanShared accepted invalid flow")
	}
	if _, err := PlanShared(nil, 0, 4, 3, 2); err == nil {
		t.Error("PlanShared accepted zero-width channel")
	}
}

func TestDedicatedDutyFactorBelowTenPercent(t *testing.T) {
	// §4.4: "the average wire on a typical chip is used (toggles) less
	// than 10% of the time."
	p, err := PlanDedicated(someFlows(), circuits.FullSwing(circuits.Process100nm()))
	if err != nil {
		t.Fatal(err)
	}
	if p.DutyFactor <= 0 || p.DutyFactor >= 0.10 {
		t.Fatalf("dedicated duty factor = %v, want < 0.10", p.DutyFactor)
	}
	if p.Wires != 192 {
		t.Fatalf("wires = %d, want 192", p.Wires)
	}
}

func TestSharedDutyFactorMuchHigher(t *testing.T) {
	// §4.4: "A network solves this problem by sharing the wires across
	// many signals ... a much higher duty factor."
	flows := someFlows()
	ded, err := PlanDedicated(flows, circuits.FullSwing(circuits.Process100nm()))
	if err != nil {
		t.Fatal(err)
	}
	// Carry the same flows over a single shared 64-bit, 2-channel spine
	// with 2 average hops.
	sh, err := PlanShared(flows, 64, 2, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sh.DutyFactor <= 2*ded.DutyFactor {
		t.Fatalf("shared duty %v not much higher than dedicated %v", sh.DutyFactor, ded.DutyFactor)
	}
	if sh.Wires >= ded.Wires {
		t.Fatalf("shared wires %d not fewer than dedicated %d", sh.Wires, ded.Wires)
	}
}

func TestSharedOverloadRejected(t *testing.T) {
	flows := []Flow{{Name: "x", LengthMM: 3, WidthBits: 8, PeakBitsPerCycle: 64, AvgBitsPerCycle: 60}}
	if _, err := PlanShared(flows, 8, 1, 3, 2); err == nil {
		t.Fatal("overloaded shared plan accepted")
	}
}

func TestCompareLatencyPreScheduledWins(t *testing.T) {
	// §4.1: "with efficient pre-scheduled flow control, the latency of a
	// signal transported over an on-chip network could be lower than a
	// signal transported over a dedicated full-swing wire with optimum
	// repeatering." Low-swing wires are 3x faster, so as long as the
	// bypass adds only gate delays, the network path wins on long spans.
	p := circuits.Process100nm()
	c := CompareLatency(p, 12, 3, 0.5, 0.05)
	if c.Hops != 4 {
		t.Fatalf("hops = %d", c.Hops)
	}
	if !c.NetworkWinsPre {
		t.Fatalf("pre-scheduled network (%.3fns) does not beat dedicated wire (%.3fns)",
			c.NetworkPreNS, c.DedicatedNS)
	}
	// With a full router cycle per hop, the dynamic path is slower than
	// the dedicated wire on this span — the overhead the paper admits.
	if c.NetworkNS < c.DedicatedNS {
		t.Logf("note: dynamic network also wins (%.3f vs %.3f)", c.NetworkNS, c.DedicatedNS)
	}
	short := CompareLatency(p, 2, 3, 0.5, 0.05)
	if short.Hops != 1 {
		t.Fatalf("short span hops = %d", short.Hops)
	}
}

func TestSizingStudyConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := RunSizingStudy(2000, 2.0, 2.0, 100, rng)
	if s.InitialViolators == 0 {
		t.Fatal("no initial violators; distribution too tight to be interesting")
	}
	if s.FinalViolators != 0 {
		t.Fatalf("closure never reached: %d violators after %d iterations",
			s.FinalViolators, s.Iterations)
	}
	if s.Iterations < 2 {
		t.Fatalf("closure took %d iterations; the ECO churn model is not biting", s.Iterations)
	}
	if s.Iterations <= StructuredClosurePasses() {
		t.Fatalf("unstructured closure (%d) not worse than structured (%d)",
			s.Iterations, StructuredClosurePasses())
	}
}

func TestSizingStudyTighterMarginIsWorse(t *testing.T) {
	loose := RunSizingStudy(2000, 2.5, 2.0, 500, rand.New(rand.NewSource(4)))
	tight := RunSizingStudy(2000, 1.2, 2.0, 500, rand.New(rand.NewSource(4)))
	if tight.InitialViolators <= loose.InitialViolators {
		t.Fatalf("tighter margin should violate more: %d vs %d",
			tight.InitialViolators, loose.InitialViolators)
	}
}
