// Package wiring models the baseline the paper replaces: dedicated,
// per-design top-level wires. It provides
//
//   - point-to-point wire delay and energy under a signaling discipline
//     (via internal/circuits), for the §4.1 latency comparison;
//   - the duty-factor accounting of §4.4: "the average wire on a typical
//     chip is used (toggles) less than 10% of the time", because each
//     dedicated wire must be provisioned for its flow's peak rate while
//     carrying only the average;
//   - a Monte-Carlo model of the §4.1 timing-closure problem: drivers sized
//     from a statistical wire-load model leave a fraction of nets
//     undersized, and each repair iteration perturbs other nets.
package wiring

import (
	"fmt"
	"math/rand"

	"repro/internal/circuits"
	"repro/internal/stats"
)

// Flow is one top-level communication: a point-to-point signal bundle.
type Flow struct {
	Name     string
	LengthMM float64
	// WidthBits is the logical signal width.
	WidthBits int
	// PeakBitsPerCycle is the bandwidth the wires must be provisioned for.
	PeakBitsPerCycle float64
	// AvgBitsPerCycle is the long-run average usage.
	AvgBitsPerCycle float64
}

// Validate checks the flow.
func (f Flow) Validate() error {
	if f.LengthMM <= 0 || f.WidthBits < 1 {
		return fmt.Errorf("wiring: flow %q geometry invalid", f.Name)
	}
	if f.AvgBitsPerCycle > f.PeakBitsPerCycle {
		return fmt.Errorf("wiring: flow %q average exceeds peak", f.Name)
	}
	return nil
}

// DedicatedPlan is the result of provisioning dedicated wires for a flow
// set.
type DedicatedPlan struct {
	Wires          int     // total wires (each provisioned for peak rate)
	WireMM         float64 // total wire length
	DutyFactor     float64 // average toggling fraction across all wires
	PeakBitsCycle  float64 // aggregate provisioned bandwidth
	AvgBitsCycle   float64 // aggregate average usage
	EnergyPerCycle float64 // J/cycle at average activity
}

// PlanDedicated provisions one wire per signal bit per flow, each driven
// with the given signaling discipline and carrying one bit per cycle at
// peak.
func PlanDedicated(flows []Flow, sig circuits.Signaling) (DedicatedPlan, error) {
	var p DedicatedPlan
	for _, f := range flows {
		if err := f.Validate(); err != nil {
			return p, err
		}
		// Peak provisioning: enough wires to carry the peak each cycle.
		wires := f.WidthBits
		if need := int(f.PeakBitsPerCycle + 0.999); need > wires {
			wires = need
		}
		p.Wires += wires
		p.WireMM += float64(wires) * f.LengthMM
		p.PeakBitsCycle += float64(wires)
		p.AvgBitsCycle += f.AvgBitsPerCycle
		p.EnergyPerCycle += sig.EnergyPerBitMM * f.AvgBitsPerCycle * f.LengthMM
	}
	if p.PeakBitsCycle > 0 {
		p.DutyFactor = p.AvgBitsCycle / p.PeakBitsCycle
	}
	return p, nil
}

// SharedPlan summarizes carrying the same flows over shared network
// channels.
type SharedPlan struct {
	Wires        int
	WireMM       float64
	DutyFactor   float64
	AvgBitsCycle float64
}

// PlanShared provisions a shared channel of channelBits wires and length
// channelMM per hop, with hopsPerFlow average hops, carrying the aggregate
// average traffic. Duty factor is aggregate average bits over channel
// capacity. It errors if the offered average exceeds capacity.
func PlanShared(flows []Flow, channelBits int, channels int, channelMM float64, avgHops float64) (SharedPlan, error) {
	var p SharedPlan
	if channelBits < 1 || channels < 1 {
		return p, fmt.Errorf("wiring: invalid shared channel shape")
	}
	var avg float64
	for _, f := range flows {
		if err := f.Validate(); err != nil {
			return p, err
		}
		avg += f.AvgBitsPerCycle * avgHops // each bit crosses avgHops channels
	}
	p.Wires = channelBits * channels
	p.WireMM = float64(p.Wires) * channelMM
	p.AvgBitsCycle = avg
	capacity := float64(p.Wires)
	p.DutyFactor = avg / capacity
	if p.DutyFactor > 1 {
		return p, fmt.Errorf("wiring: offered load %.2f exceeds shared capacity", p.DutyFactor)
	}
	return p, nil
}

// LatencyComparison is the §4.1 head-to-head: a dedicated full-swing wire
// with optimal repeaters vs. the same signal through the network on
// low-swing wires.
type LatencyComparison struct {
	SpanMM         float64
	DedicatedNS    float64 // optimally repeated full-swing wire
	NetworkNS      float64 // low-swing hops + router traversals
	Hops           int
	RouterNSPre    float64 // per-hop delay with pre-scheduled bypass
	NetworkPreNS   float64 // network latency with pre-scheduled flow control
	NetworkWinsPre bool
}

// CompareLatency evaluates a signal crossing spanMM of die. The network
// path hops every tileMM with the given per-hop router delay (dynamic) and
// bypass delay (pre-scheduled, a few gate delays).
func CompareLatency(p circuits.Process, spanMM, tileMM float64, routerNS, bypassNS float64) LatencyComparison {
	fs, ls := circuits.FullSwing(p), circuits.LowSwing(p)
	hops := int(spanMM/tileMM + 0.5)
	if hops < 1 {
		hops = 1
	}
	wireNS := ls.Delay(spanMM) * 1e9
	c := LatencyComparison{
		SpanMM:       spanMM,
		DedicatedNS:  fs.Delay(spanMM) * 1e9,
		Hops:         hops,
		NetworkNS:    wireNS + float64(hops)*routerNS,
		RouterNSPre:  bypassNS,
		NetworkPreNS: wireNS + float64(hops)*bypassNS,
	}
	c.NetworkWinsPre = c.NetworkPreNS < c.DedicatedNS
	return c
}

// SizingStudy is the §4.1 statistical-wire-model Monte Carlo: synthesis
// sizes each driver for the wire length the statistical model predicts;
// nets whose actual routed length is longer miss timing, and each ECO
// iteration re-routes the violators, perturbing a fraction of neighbours.
type SizingStudy struct {
	Nets             int
	InitialViolators int
	Iterations       int
	FinalViolators   int
	LengthStats      stats.Summary
}

// RunSizingStudy simulates timing closure over nets wires whose actual
// lengths are spread (shifted-exponentially) around the statistical
// model's estimate. margin is the timing slack factor built into the
// drivers (1.0 = sized exactly for the predicted length); perturb is the
// number of neighbouring nets each repaired net disturbs during the ECO
// (re-routing a violator moves the nets around it). Closure converges when
// perturb times the violation probability is below one.
func RunSizingStudy(nets int, margin, perturb float64, maxIter int, rng *rand.Rand) SizingStudy {
	s := SizingStudy{Nets: nets}
	lengths := make([]float64, nets)
	for i := range lengths {
		// Lognormal-ish spread around 1.0 (predicted length).
		lengths[i] = 0.3 + rng.ExpFloat64()*0.7
		s.LengthStats.Add(lengths[i])
	}
	violates := func(l float64) bool { return l > margin }
	count := func() int {
		n := 0
		for _, l := range lengths {
			if violates(l) {
				n++
			}
		}
		return n
	}
	s.InitialViolators = count()
	v := s.InitialViolators
	for iter := 0; iter < maxIter && v > 0; iter++ {
		s.Iterations++
		// Fix the violators (upsize drivers / re-route shorter)...
		fixed := 0
		for i, l := range lengths {
			if violates(l) {
				lengths[i] = 0.3 + rng.Float64()*(margin-0.3)
				fixed++
			}
		}
		// ...but each repair disturbs neighbouring nets.
		disturbed := int(float64(fixed) * perturb)
		for j := 0; j < disturbed; j++ {
			lengths[rng.Intn(nets)] = 0.3 + rng.ExpFloat64()*0.7
		}
		v = count()
	}
	s.FinalViolators = v
	return s
}

// StructuredClosurePasses reports the iterations a structured network
// layout needs: the wires are pre-planned and identical, so the answer is
// one analysis pass and zero ECO loops — the §4.1 contrast.
func StructuredClosurePasses() int { return 1 }
