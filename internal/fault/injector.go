package fault

import (
	"fmt"
	"sort"

	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Target is the slice of a network the injector manipulates. It is an
// interface so this package does not depend on internal/network (which
// imports this package for the fault Map).
type Target interface {
	// Kernel exposes the simulation kernel: the injector registers its
	// phase there and draws all stochastic decisions from the kernel's
	// seeded RNG.
	Kernel() *sim.Kernel
	// NumTiles reports the number of router tiles.
	NumTiles() int
	// NumLinks reports the number of unidirectional channels.
	NumLinks() int
	// LinkEndpoints reports channel i's source tile, direction, and
	// destination tile, in the deterministic order of topology.Links.
	LinkEndpoints(i int) (from int, dir route.Dir, to int)
	// SetLinkDown makes channel i drop every flit and credit (or restores
	// it).
	SetLinkDown(i int, down bool)
	// SetLinkFlip sets channel i's transient bit-flip probability. It
	// errors when the network was built without the physical wire layer.
	SetLinkFlip(i int, prob float64) error
	// SetPortStall freezes (or thaws) the input controller of tile's port.
	SetPortStall(tile int, port route.Dir, on bool)
	// SetVCStuck wedges (or frees) one VC of tile's input controller.
	SetVCStuck(tile int, port route.Dir, vc int, on bool)
}

// Applied is one fault application, logged for campaign reports: which
// event fired, when, and — for faults a credit watchdog can detect — the
// channel a detection would name.
type Applied struct {
	Event Event
	At    int64
	// Watched is the channel whose credit starvation reveals this fault:
	// the faulted link itself for LinkKill, and the link feeding the
	// stalled input for PortStall. Watched.From is -1 when no single
	// channel is implicated (BitFlip, VCStuck).
	Watched LinkID
}

// Injector drives a fault campaign: it expands the stochastic model into
// concrete events at construction time (deterministically, from the
// kernel's seeded RNG), then applies and revokes events cycle by cycle as
// a simulation phase.
type Injector struct {
	target Target
	events []Event // sorted by At, stable
	next   int
	revoke []Event // applied events awaiting their Until cycle

	// Log records every applied event in application order.
	Log []Applied
	// Skipped counts events that could not be applied (e.g. a BitFlip on
	// a network without physical wires).
	Skipped int

	// probe, when non-nil, receives an OnFault notification for every
	// event that takes effect.
	probe *telemetry.Probe
}

// SetProbe attaches the telemetry probe (nil disables notifications).
func (inj *Injector) SetProbe(p *telemetry.Probe) { inj.probe = p }

// NewInjector builds an injector over target from scheduled events plus an
// optional stochastic model: when mtbf > 0, fault arrivals are drawn as a
// Poisson process with the given mean cycles between faults over [0,
// horizon), choosing uniformly among kinds (default: LinkKill, PortStall,
// VCStuck). All randomness comes from the kernel's seeded RNG, so the same
// seed always yields the same campaign.
func NewInjector(t Target, events []Event, mtbf float64, horizon int64, kinds []Kind) (*Injector, error) {
	inj := &Injector{target: t}
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		resolved, err := inj.resolve(e)
		if err != nil {
			return nil, err
		}
		inj.events = append(inj.events, resolved)
	}
	if mtbf > 0 {
		if horizon <= 0 {
			return nil, fmt.Errorf("fault: stochastic model needs a positive horizon")
		}
		inj.events = append(inj.events, inj.expand(mtbf, horizon, kinds)...)
	}
	sort.SliceStable(inj.events, func(i, j int) bool { return inj.events[i].At < inj.events[j].At })
	return inj, nil
}

// resolve canonicalizes an event's target to concrete indices and checks
// ranges against the network.
func (inj *Injector) resolve(e Event) (Event, error) {
	t := inj.target
	switch e.Kind {
	case LinkKill, BitFlip:
		if e.Link >= 0 {
			if e.Link >= t.NumLinks() {
				return e, fmt.Errorf("fault: link %d outside [0,%d)", e.Link, t.NumLinks())
			}
			return e, nil
		}
		for i := 0; i < t.NumLinks(); i++ {
			from, dir, _ := t.LinkEndpoints(i)
			if from == e.From && dir == e.Dir {
				e.Link = i
				return e, nil
			}
		}
		return e, fmt.Errorf("fault: no channel leaves tile %d in direction %v", e.From, e.Dir)
	case PortStall, VCStuck:
		if e.Tile < 0 || e.Tile >= t.NumTiles() {
			return e, fmt.Errorf("fault: tile %d outside [0,%d)", e.Tile, t.NumTiles())
		}
	}
	return e, nil
}

// expand draws the stochastic campaign. Link kills are permanent; stalls,
// stuck VCs, and flips are transient with a drawn duration, modelling
// glitches the network must ride through.
func (inj *Injector) expand(mtbf float64, horizon int64, kinds []Kind) []Event {
	if len(kinds) == 0 {
		kinds = []Kind{LinkKill, PortStall, VCStuck}
	}
	rng := inj.target.Kernel().RNG()
	var out []Event
	at := 0.0
	for {
		at += rng.ExpFloat64() * mtbf
		if int64(at) >= horizon {
			return out
		}
		link := rng.Intn(inj.target.NumLinks())
		from, dir, to := inj.target.LinkEndpoints(link)
		_ = from
		duration := int64(200 + rng.Intn(1800))
		e := Event{Kind: kinds[rng.Intn(len(kinds))], At: int64(at), Link: -1, From: -1, Tile: -1, VC: -1}
		switch e.Kind {
		case LinkKill:
			e.Link = link
		case BitFlip:
			e.Link = link
			e.Prob = 0.01
			e.Until = e.At + duration
		case PortStall:
			e.Tile, e.Port = to, dir.Opposite()
			e.Until = e.At + duration
		case VCStuck:
			e.Tile, e.Port, e.VC = to, dir.Opposite(), rng.Intn(8)
			e.Until = e.At + duration
		}
		out = append(out, e)
	}
}

// Attach registers the injector's phase on the kernel. Call once, after
// the network's own phases are registered.
func (inj *Injector) Attach() {
	inj.target.Kernel().AddPhase("faults", inj.step)
}

// step applies and revokes the cycle's events.
func (inj *Injector) step(now sim.Cycle) {
	keep := inj.revoke[:0]
	for _, e := range inj.revoke {
		if e.Until <= now {
			inj.apply(e, false, now)
		} else {
			keep = append(keep, e)
		}
	}
	inj.revoke = keep
	for inj.next < len(inj.events) && inj.events[inj.next].At <= now {
		e := inj.events[inj.next]
		inj.next++
		if !inj.apply(e, true, now) {
			continue
		}
		if e.Until > 0 {
			inj.revoke = append(inj.revoke, e)
		}
	}
}

// apply performs (on=true) or undoes (on=false) one event. It reports
// whether the event took effect.
func (inj *Injector) apply(e Event, on bool, now int64) bool {
	t := inj.target
	watched := LinkID{From: -1}
	switch e.Kind {
	case LinkKill:
		t.SetLinkDown(e.Link, on)
		from, dir, _ := t.LinkEndpoints(e.Link)
		watched = LinkID{From: from, Dir: dir}
	case BitFlip:
		prob := e.Prob
		if !on {
			prob = 0
		}
		if err := t.SetLinkFlip(e.Link, prob); err != nil {
			if on {
				inj.Skipped++
			}
			return false
		}
	case PortStall:
		t.SetPortStall(e.Tile, e.Port, on)
		if w, ok := inj.feedingLink(e.Tile, e.Port); ok {
			watched = w
		}
	case VCStuck:
		t.SetVCStuck(e.Tile, e.Port, e.VC, on)
	}
	if on {
		inj.Log = append(inj.Log, Applied{Event: e, At: now, Watched: watched})
		if inj.probe != nil {
			where := e.Link
			if e.Kind == PortStall || e.Kind == VCStuck {
				where = e.Tile
			}
			inj.probe.OnFault(now, int(e.Kind), where)
		}
	}
	return true
}

// feedingLink reports the channel that delivers into tile's input port: the
// link whose starvation a watchdog sees when that port stalls.
func (inj *Injector) feedingLink(tile int, port route.Dir) (LinkID, bool) {
	for i := 0; i < inj.target.NumLinks(); i++ {
		from, dir, to := inj.target.LinkEndpoints(i)
		if to == tile && dir.Opposite() == port {
			return LinkID{From: from, Dir: dir}, true
		}
	}
	return LinkID{From: -1}, false
}

// Pending reports how many scheduled events have not yet fired.
func (inj *Injector) Pending() int { return len(inj.events) - inj.next }

// Events returns the full expanded schedule, sorted by injection cycle.
func (inj *Injector) Events() []Event { return inj.events }
