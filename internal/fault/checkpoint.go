package fault

import (
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/route"
)

func saveEvent(e *checkpoint.Encoder, ev Event) {
	e.U8(uint8(ev.Kind))
	e.I64(ev.At)
	e.I64(ev.Until)
	e.Int(ev.Link)
	e.Int(ev.From)
	e.U8(uint8(ev.Dir))
	e.Int(ev.Tile)
	e.U8(uint8(ev.Port))
	e.Int(ev.VC)
	e.F64(ev.Prob)
}

func restoreEvent(d *checkpoint.Decoder) Event {
	var ev Event
	ev.Kind = Kind(d.U8())
	ev.At = d.I64()
	ev.Until = d.I64()
	ev.Link = d.Int()
	ev.From = d.Int()
	ev.Dir = dirFromU8(d)
	ev.Tile = d.Int()
	ev.Port = dirFromU8(d)
	ev.VC = d.Int()
	ev.Prob = d.F64()
	return ev
}

// SaveState serialises the injector's campaign progress: the schedule
// cursor, the transient events awaiting revocation, the application log,
// and the skip count. The expanded schedule itself is not saved — it is a
// deterministic function of the configuration and seed, so the rebuilt
// injector recreates it identically at construction.
func (inj *Injector) SaveState(e *checkpoint.Encoder) {
	e.Int(inj.next)
	e.U32(uint32(len(inj.revoke)))
	for _, ev := range inj.revoke {
		saveEvent(e, ev)
	}
	e.U32(uint32(len(inj.Log)))
	for _, a := range inj.Log {
		saveEvent(e, a.Event)
		e.I64(a.At)
		e.Int(a.Watched.From)
		e.U8(uint8(a.Watched.Dir))
	}
	e.Int(inj.Skipped)
}

// RestoreState restores an injector saved with SaveState into an injector
// built from the same configuration and seed. The fault side effects
// (downed links, stalled ports) live in the network and router state and
// are restored there, not replayed here.
func (inj *Injector) RestoreState(d *checkpoint.Decoder) {
	inj.next = d.Int()
	if inj.next < 0 || inj.next > len(inj.events) {
		d.Fail("fault schedule cursor %d out of range [0, %d]", inj.next, len(inj.events))
		inj.next = 0
	}
	nr := d.Count(16)
	inj.revoke = inj.revoke[:0]
	for i := 0; i < nr; i++ {
		inj.revoke = append(inj.revoke, restoreEvent(d))
	}
	nl := d.Count(16)
	inj.Log = inj.Log[:0]
	for i := 0; i < nl; i++ {
		var a Applied
		a.Event = restoreEvent(d)
		a.At = d.I64()
		a.Watched.From = d.Int()
		a.Watched.Dir = dirFromU8(d)
		inj.Log = append(inj.Log, a)
	}
	inj.Skipped = d.Int()
}

// SaveState serialises the detection map: every downed channel with its
// detection cycle (in sorted order, so the bytes are deterministic) plus
// the change version.
func (m *Map) SaveState(e *checkpoint.Encoder) {
	ids := make([]LinkID, 0, len(m.down))
	for id := range m.down {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].From != ids[j].From {
			return ids[i].From < ids[j].From
		}
		return ids[i].Dir < ids[j].Dir
	})
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.Int(id.From)
		e.U8(uint8(id.Dir))
		e.I64(m.down[id])
	}
	e.I64(m.version)
}

// RestoreState restores a map saved with SaveState, replacing the
// receiver's contents.
func (m *Map) RestoreState(d *checkpoint.Decoder) {
	n := d.Count(16)
	m.down = make(map[LinkID]int64, n)
	for i := 0; i < n; i++ {
		id := LinkID{From: d.Int(), Dir: dirFromU8(d)}
		at := d.I64()
		if d.Err() != nil {
			return
		}
		m.down[id] = at
	}
	m.version = d.I64()
}

func dirFromU8(d *checkpoint.Decoder) route.Dir { return route.Dir(d.U8()) }
