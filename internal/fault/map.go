package fault

import (
	"sort"

	"repro/internal/route"
)

// LinkID addresses one unidirectional channel by its source tile and the
// direction of travel, matching topology.Link.
type LinkID struct {
	From int
	Dir  route.Dir
}

// Map is the live fault map published by online detection: the set of
// channels the watchdogs have declared dead, with the cycle each was
// declared. Detection is fail-stop — a channel, once declared dead, stays
// in the map (the hardware analogue fences the lane off permanently), so
// the route oracle can rely on the map only ever growing.
type Map struct {
	down    map[LinkID]int64
	version int64
}

// NewMap returns an empty fault map.
func NewMap() *Map {
	return &Map{down: make(map[LinkID]int64)}
}

// MarkDown declares the channel dead at cycle now. It reports whether the
// channel was newly declared (false if already in the map).
func (m *Map) MarkDown(from int, d route.Dir, now int64) bool {
	id := LinkID{From: from, Dir: d}
	if _, ok := m.down[id]; ok {
		return false
	}
	m.down[id] = now
	m.version++
	return true
}

// Reset forgets every declaration, in place and without allocating, so a
// pooled network reuses the map across runs. The fail-stop "grow only"
// contract holds within a run; Reset marks the boundary between runs.
func (m *Map) Reset() {
	clear(m.down)
	m.version = 0
}

// IsDown reports whether the channel leaving tile from in direction d has
// been declared dead. Its signature matches the blocked predicate of
// topology.ShortestAvoiding.
func (m *Map) IsDown(from int, d route.Dir) bool {
	_, ok := m.down[LinkID{From: from, Dir: d}]
	return ok
}

// Empty reports whether no channel has been declared dead.
func (m *Map) Empty() bool { return len(m.down) == 0 }

// Len reports the number of dead channels.
func (m *Map) Len() int { return len(m.down) }

// Version increments on every new declaration, so clients can cheaply
// detect map changes.
func (m *Map) Version() int64 { return m.version }

// Detection is one watchdog declaration.
type Detection struct {
	LinkID
	DetectedAt int64
}

// Detections lists every declaration, sorted by source tile then direction
// for deterministic reporting.
func (m *Map) Detections() []Detection {
	out := make([]Detection, 0, len(m.down))
	for id, at := range m.down {
		out = append(out, Detection{LinkID: id, DetectedAt: at})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}
