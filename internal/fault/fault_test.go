package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/route"
	"repro/internal/sim"
)

// stubTarget is a minimal fault.Target over a 4x4 torus-shaped link list,
// recording every manipulation.
type stubTarget struct {
	kernel   *sim.Kernel
	links    [][3]int // from, dir, to
	downs    map[int]bool
	flips    map[int]float64
	stalls   map[[2]int]bool
	stucks   map[[3]int]bool
	noPhys   bool
	numTiles int
}

func newStubTarget(seed int64) *stubTarget {
	st := &stubTarget{
		kernel:   sim.NewKernel(seed),
		downs:    map[int]bool{},
		flips:    map[int]float64{},
		stalls:   map[[2]int]bool{},
		stucks:   map[[3]int]bool{},
		numTiles: 16,
	}
	// 4x4 torus: every tile has all four outgoing channels.
	for tile := 0; tile < 16; tile++ {
		x, y := tile%4, tile/4
		for _, d := range []route.Dir{route.North, route.East, route.South, route.West} {
			dx, dy := d.Delta()
			to := ((y+dy+4)%4)*4 + (x+dx+4)%4
			st.links = append(st.links, [3]int{tile, int(d), to})
		}
	}
	return st
}

func (s *stubTarget) Kernel() *sim.Kernel { return s.kernel }
func (s *stubTarget) NumTiles() int       { return s.numTiles }
func (s *stubTarget) NumLinks() int       { return len(s.links) }
func (s *stubTarget) LinkEndpoints(i int) (int, route.Dir, int) {
	return s.links[i][0], route.Dir(s.links[i][1]), s.links[i][2]
}
func (s *stubTarget) SetLinkDown(i int, down bool) { s.downs[i] = down }
func (s *stubTarget) SetLinkFlip(i int, prob float64) error {
	if s.noPhys {
		return errNoPhys
	}
	s.flips[i] = prob
	return nil
}
func (s *stubTarget) SetPortStall(tile int, port route.Dir, on bool) {
	s.stalls[[2]int{tile, int(port)}] = on
}
func (s *stubTarget) SetVCStuck(tile int, port route.Dir, vc int, on bool) {
	s.stucks[[3]int{tile, int(port), vc}] = on
}

var errNoPhys = &noPhysError{}

type noPhysError struct{}

func (*noPhysError) Error() string { return "no phys layer" }

func TestParseFormatRoundTrip(t *testing.T) {
	spec := "kill,link=12,at=500;" +
		"kill,from=3,dir=E,at=500,until=900;" +
		"flip,link=4,p=0.02,at=100,until=600;" +
		"stall,tile=5,port=W,at=2000,until=2600;" +
		"stuck,tile=1,port=N,vc=3,at=100"
	events, err := ParseEvents(spec)
	if err != nil {
		t.Fatalf("ParseEvents: %v", err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	formatted := FormatEvents(events)
	again, err := ParseEvents(formatted)
	if err != nil {
		t.Fatalf("reparse of %q: %v", formatted, err)
	}
	if !reflect.DeepEqual(events, again) {
		t.Fatalf("round trip mismatch:\n  first:  %#v\n  second: %#v", events, again)
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", ";;"} {
		events, err := ParseEvents(spec)
		if err != nil || len(events) != 0 {
			t.Fatalf("ParseEvents(%q) = %v, %v; want empty", spec, events, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"explode,link=1,at=0",        // unknown kind
		"kill,at=5",                  // no target
		"flip,link=1,p=0,at=5",       // probability out of range
		"flip,link=1,p=1.5,at=5",     // probability out of range
		"flip,link=1,p=NaN,at=5",     // NaN probability
		"kill,link=1,at=10,until=10", // revoked not after injection
		"kill,link=1,at=-3",          // negative cycle
		"stall,port=W,at=0",          // no tile
		"stuck,tile=1,port=N,at=0",   // no vc (stays -1)
		"kill,link=1,frobnicate=2",   // unknown field
		"kill,link",                  // not key=value
		"stall,tile=2,port=Q,at=0",   // bad direction
		"kill,link=two,at=0",         // non-numeric
	}
	for _, spec := range bad {
		if _, err := ParseEvents(spec); err == nil {
			t.Errorf("ParseEvents(%q) succeeded, want error", spec)
		}
	}
}

func TestInjectorScheduledApplyRevoke(t *testing.T) {
	target := newStubTarget(1)
	events, err := ParseEvents("stall,tile=5,port=W,at=3,until=7;kill,from=3,dir=E,at=4")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(target, events, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach()
	k := target.Kernel()
	k.Run(3)
	if target.stalls[[2]int{5, int(route.West)}] {
		t.Fatal("stall applied before cycle 3")
	}
	k.Run(1) // cycle 3 runs
	if !target.stalls[[2]int{5, int(route.West)}] {
		t.Fatal("stall not applied at cycle 3")
	}
	k.Run(1) // cycle 4
	killIdx := -1
	for i := 0; i < target.NumLinks(); i++ {
		from, dir, _ := target.LinkEndpoints(i)
		if from == 3 && dir == route.East {
			killIdx = i
		}
	}
	if !target.downs[killIdx] {
		t.Fatal("kill not applied at cycle 4")
	}
	k.Run(4) // through cycle 7: stall revoked
	if target.stalls[[2]int{5, int(route.West)}] {
		t.Fatal("stall not revoked at cycle 7")
	}
	if target.downs[killIdx] != true {
		t.Fatal("permanent kill was revoked")
	}
	if len(inj.Log) != 2 {
		t.Fatalf("Log has %d entries, want 2", len(inj.Log))
	}
	if inj.Log[1].Watched.From != 3 || inj.Log[1].Watched.Dir != route.East {
		t.Fatalf("kill watched link = %+v, want {3 E}", inj.Log[1].Watched)
	}
	// The stall at tile 5 port W starves the link arriving from the west
	// neighbor (tile 4) heading east.
	if inj.Log[0].Watched.From != 4 || inj.Log[0].Watched.Dir != route.East {
		t.Fatalf("stall watched link = %+v, want {4 E}", inj.Log[0].Watched)
	}
}

func TestInjectorFlipWithoutPhysSkipped(t *testing.T) {
	target := newStubTarget(1)
	target.noPhys = true
	events, _ := ParseEvents("flip,link=2,p=0.5,at=0")
	inj, err := NewInjector(target, events, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach()
	target.Kernel().Run(2)
	if inj.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", inj.Skipped)
	}
	if len(inj.Log) != 0 {
		t.Fatalf("skipped event was logged: %+v", inj.Log)
	}
}

func TestInjectorStochasticDeterminism(t *testing.T) {
	expand := func(seed int64) []Event {
		target := newStubTarget(seed)
		inj, err := NewInjector(target, nil, 300, 10000, nil)
		if err != nil {
			t.Fatal(err)
		}
		return inj.Events()
	}
	a, b := expand(7), expand(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different campaigns:\n%v\n%v", FormatEvents(a), FormatEvents(b))
	}
	if len(a) == 0 {
		t.Fatal("mtbf=300 over 10000 cycles produced no faults")
	}
	c := expand(8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical campaigns")
	}
	for _, e := range a {
		if err := e.Validate(); err != nil {
			t.Fatalf("expanded event %v invalid: %v", e, err)
		}
		if e.At >= 10000 {
			t.Fatalf("event %v beyond horizon", e)
		}
	}
}

func TestInjectorRejectsBadTargets(t *testing.T) {
	target := newStubTarget(1)
	for _, spec := range []string{
		"kill,link=999,at=0",
		"kill,from=3,dir=E,at=0", // valid; control
		"stall,tile=99,port=W,at=0",
	} {
		events, err := ParseEvents(spec)
		if err != nil {
			t.Fatal(err)
		}
		_, err = NewInjector(target, events, 0, 0, nil)
		wantErr := strings.Contains(spec, "999") || strings.Contains(spec, "99,")
		if (err != nil) != wantErr {
			t.Errorf("NewInjector(%q) err = %v, wantErr = %v", spec, err, wantErr)
		}
	}
}

func TestMapDetectionsSortedAndFailStop(t *testing.T) {
	m := NewMap()
	if !m.Empty() || m.Len() != 0 {
		t.Fatal("new map not empty")
	}
	if !m.MarkDown(5, route.West, 100) {
		t.Fatal("first MarkDown returned false")
	}
	if m.MarkDown(5, route.West, 200) {
		t.Fatal("second MarkDown of same link returned true")
	}
	m.MarkDown(2, route.North, 150)
	m.MarkDown(5, route.East, 120)
	if m.Len() != 3 || m.Version() != 3 {
		t.Fatalf("Len=%d Version=%d, want 3,3", m.Len(), m.Version())
	}
	if !m.IsDown(5, route.West) || m.IsDown(5, route.South) {
		t.Fatal("IsDown wrong")
	}
	det := m.Detections()
	want := []Detection{
		{LinkID{2, route.North}, 150},
		{LinkID{5, route.East}, 120},
		{LinkID{5, route.West}, 100},
	}
	if !reflect.DeepEqual(det, want) {
		t.Fatalf("Detections = %v, want %v", det, want)
	}
}
