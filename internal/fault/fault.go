// Package fault implements the runtime fault-injection subsystem of the
// reproduction: deterministic fault campaigns over a live network.
//
// Section 2.5 of the paper argues that a packet network masks faults in
// layers — spare-bit steering around hard wire faults, link-level ECC
// against transients, end-to-end retry above the interface. The offline E11
// experiment configures those faults before the simulation starts; this
// package instead injects (and revokes) faults *while the network runs*, so
// the online detection and fault-aware rerouting layers can be exercised:
//
//   - LinkKill: a channel dies; flits and credits on its wires are lost.
//   - BitFlip: a channel's wires flip payload bits with a given probability
//     for an interval, feeding the existing ECC and end-to-end retry layers.
//   - PortStall: a router input controller freezes; buffered flits stop
//     advancing, so upstream credits starve.
//   - VCStuck: one virtual channel of an input controller wedges.
//
// Every fault is an Event, injectable at a cycle and optionally revocable
// at a later cycle. A campaign is a list of scheduled events plus an
// optional stochastic model (mean cycles between faults) that the Injector
// expands using the simulation kernel's seeded RNG, so a campaign is
// bit-for-bit reproducible from its seed.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/route"
)

// Kind is a fault model.
type Kind int

// Fault kinds.
const (
	// LinkKill makes a channel drop every flit and credit on its wires.
	LinkKill Kind = iota
	// BitFlip raises a channel's transient bit-flip probability.
	BitFlip
	// PortStall freezes a router input controller.
	PortStall
	// VCStuck wedges one virtual channel of an input controller.
	VCStuck
)

// String names the kind with its spec keyword.
func (k Kind) String() string {
	switch k {
	case LinkKill:
		return "kill"
	case BitFlip:
		return "flip"
	case PortStall:
		return "stall"
	case VCStuck:
		return "stuck"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindByName parses a spec keyword.
func KindByName(s string) (Kind, error) {
	switch s {
	case "kill":
		return LinkKill, nil
	case "flip":
		return BitFlip, nil
	case "stall":
		return PortStall, nil
	case "stuck":
		return VCStuck, nil
	}
	return 0, fmt.Errorf("fault: unknown kind %q (want kill, flip, stall, or stuck)", s)
}

// Event is one injectable fault. Link faults (LinkKill, BitFlip) address a
// channel either by its index in the network's link list (Link >= 0) or by
// its source tile and direction (Link < 0). Router faults (PortStall,
// VCStuck) address a tile's input controller.
type Event struct {
	Kind  Kind
	At    int64 // injection cycle
	Until int64 // revocation cycle; 0 means permanent

	Link int // link index, or -1 for (From, Dir) addressing
	From int
	Dir  route.Dir

	Tile int
	Port route.Dir
	VC   int

	Prob float64 // BitFlip per-traversal flip probability
}

// Validate checks the event's internal consistency (target ranges against a
// concrete network are checked by the Injector).
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("fault: %v at negative cycle %d", e.Kind, e.At)
	}
	if e.Until != 0 && e.Until <= e.At {
		return fmt.Errorf("fault: %v revoked at %d, not after injection at %d", e.Kind, e.Until, e.At)
	}
	switch e.Kind {
	case LinkKill, BitFlip:
		if e.Link < 0 && e.From < 0 {
			return fmt.Errorf("fault: %v needs link=<index> or from=<tile>,dir=<NESW>", e.Kind)
		}
		if e.Kind == BitFlip && !(e.Prob > 0 && e.Prob <= 1) {
			return fmt.Errorf("fault: flip probability %g outside (0,1]", e.Prob)
		}
	case PortStall, VCStuck:
		if e.Tile < 0 {
			return fmt.Errorf("fault: %v needs tile=<id>", e.Kind)
		}
		if e.Port == route.Local {
			return fmt.Errorf("fault: %v targets a compass port, not the tile port", e.Kind)
		}
		if e.Kind == VCStuck && e.VC < 0 {
			return fmt.Errorf("fault: stuck needs vc=<index>")
		}
	default:
		return fmt.Errorf("fault: invalid kind %d", int(e.Kind))
	}
	return nil
}

// String renders the event in the spec syntax accepted by ParseEvents.
func (e Event) String() string {
	var sb strings.Builder
	sb.WriteString(e.Kind.String())
	switch e.Kind {
	case LinkKill, BitFlip:
		if e.Link >= 0 {
			fmt.Fprintf(&sb, ",link=%d", e.Link)
		} else {
			fmt.Fprintf(&sb, ",from=%d,dir=%v", e.From, e.Dir)
		}
		if e.Kind == BitFlip {
			fmt.Fprintf(&sb, ",p=%g", e.Prob)
		}
	case PortStall:
		fmt.Fprintf(&sb, ",tile=%d,port=%v", e.Tile, e.Port)
	case VCStuck:
		fmt.Fprintf(&sb, ",tile=%d,port=%v,vc=%d", e.Tile, e.Port, e.VC)
	}
	fmt.Fprintf(&sb, ",at=%d", e.At)
	if e.Until != 0 {
		fmt.Fprintf(&sb, ",until=%d", e.Until)
	}
	return sb.String()
}

// FormatEvents renders a list of events as one spec string.
func FormatEvents(events []Event) string {
	parts := make([]string, len(events))
	for i, e := range events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// parseDir parses a compass direction letter.
func parseDir(s string) (route.Dir, error) {
	switch strings.ToUpper(s) {
	case "N":
		return route.North, nil
	case "E":
		return route.East, nil
	case "S":
		return route.South, nil
	case "W":
		return route.West, nil
	}
	return 0, fmt.Errorf("fault: direction %q (want N, E, S, or W)", s)
}

// ParseEvents parses a fault campaign spec: semicolon-separated events, each
// a kind keyword followed by comma-separated key=value fields.
//
//	kill,link=12,at=500
//	kill,from=3,dir=E,at=500,until=900
//	flip,link=4,p=0.02,at=100,until=600
//	stall,tile=5,port=W,at=2000,until=2600
//	stuck,tile=1,port=N,vc=3,at=100
//
// The empty string parses to no events.
func ParseEvents(spec string) ([]Event, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var events []Event
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ",")
		kind, err := KindByName(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, err
		}
		e := Event{Kind: kind, Link: -1, From: -1, Tile: -1, VC: -1}
		for _, kv := range fields[1:] {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: field %q in %q is not key=value", kv, part)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch key {
			case "dir", "port":
				d, err := parseDir(val)
				if err != nil {
					return nil, err
				}
				if key == "dir" {
					e.Dir = d
				} else {
					e.Port = d
				}
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: probability %q: %v", val, err)
				}
				e.Prob = p
			default:
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: field %s=%q: %v", key, val, err)
				}
				switch key {
				case "link":
					e.Link = int(v)
				case "from":
					e.From = int(v)
				case "tile":
					e.Tile = int(v)
				case "vc":
					e.VC = int(v)
				case "at":
					e.At = v
				case "until":
					e.Until = v
				default:
					return nil, fmt.Errorf("fault: unknown field %q in %q", key, part)
				}
			}
		}
		// Router faults default to a compass port; the zero Dir value
		// (North) is a legal port, so only VCStuck's VC needs a marker.
		if err := e.Validate(); err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return events, nil
}
