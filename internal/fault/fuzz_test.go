package fault

import "testing"

// FuzzFaultPlan checks that any accepted campaign spec survives a
// format/reparse round trip: ParseEvents(FormatEvents(ParseEvents(s)))
// yields the same canonical rendering, and every accepted event validates.
// Non-canonical inputs (e.g. both link= and from= given) are allowed to
// normalize, which is why the comparison is on the canonical strings.
func FuzzFaultPlan(f *testing.F) {
	f.Add("kill,link=12,at=500")
	f.Add("kill,from=3,dir=E,at=500,until=900")
	f.Add("flip,link=4,p=0.02,at=100,until=600")
	f.Add("stall,tile=5,port=W,at=2000,until=2600")
	f.Add("stuck,tile=1,port=N,vc=3,at=100")
	f.Add("kill,link=0,at=0;flip,link=1,p=1,at=1;stall,tile=0,port=S,at=2,until=3")
	f.Add(";;  ;")
	f.Fuzz(func(t *testing.T, spec string) {
		events, err := ParseEvents(spec)
		if err != nil {
			return // rejected inputs are fine; we only check accepted ones
		}
		for _, e := range events {
			if verr := e.Validate(); verr != nil {
				t.Fatalf("accepted event %v fails Validate: %v (spec %q)", e, verr, spec)
			}
		}
		canonical := FormatEvents(events)
		again, err := ParseEvents(canonical)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v (spec %q)", canonical, err, spec)
		}
		if got := FormatEvents(again); got != canonical {
			t.Fatalf("round trip diverged:\n  canonical: %q\n  reparsed:  %q\n  input: %q", canonical, got, spec)
		}
	})
}
