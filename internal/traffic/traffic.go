// Package traffic provides the workload generators of the evaluation:
// classic synthetic patterns (uniform random, transpose, bit-complement,
// shuffle, tornado, nearest-neighbour, hotspot), open-loop Bernoulli
// injectors, constant-bit-rate stream sources for the pre-scheduled flows
// of §2.6, and trace replay.
//
// The paper's motivating workloads are synthesized: the "flow of video
// data from a camera input to an MPEG encoder" becomes a CBR StreamSource,
// and the "processor memory references, that cannot be predicted before
// run-time" become Bernoulli dynamic traffic (plus the request/reply
// memory client in internal/protocol).
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/sim"
)

// Pattern maps a source tile to a destination tile, possibly randomly.
type Pattern interface {
	Name() string
	Pick(src int, rng *rand.Rand) int
}

// Uniform sends to a destination chosen uniformly among the other tiles.
type Uniform struct{ Tiles int }

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// Pick implements Pattern.
func (u Uniform) Pick(src int, rng *rand.Rand) int {
	d := rng.Intn(u.Tiles - 1)
	if d >= src {
		d++
	}
	return d
}

// Transpose sends (x, y) -> (y, x); it loads one mesh diagonal heavily and
// is a classic adversary for dimension-ordered routing.
type Transpose struct{ K int }

// Name implements Pattern.
func (p Transpose) Name() string { return "transpose" }

// Pick implements Pattern.
func (p Transpose) Pick(src int, _ *rand.Rand) int {
	x, y := src%p.K, src/p.K
	return x*p.K + y
}

// BitComplement sends tile i to tile N-1-i.
type BitComplement struct{ Tiles int }

// Name implements Pattern.
func (p BitComplement) Name() string { return "bitcomp" }

// Pick implements Pattern.
func (p BitComplement) Pick(src int, _ *rand.Rand) int { return p.Tiles - 1 - src }

// Shuffle sends i to (2i mod N-1)-style perfect-shuffle partner (rotate the
// tile index left by one bit within log2(N) bits).
type Shuffle struct{ Tiles int }

// Name implements Pattern.
func (p Shuffle) Name() string { return "shuffle" }

// Pick implements Pattern.
func (p Shuffle) Pick(src int, _ *rand.Rand) int {
	bits := 0
	for (1 << bits) < p.Tiles {
		bits++
	}
	hi := (src >> (bits - 1)) & 1
	return ((src << 1) | hi) & (p.Tiles - 1)
}

// Tornado sends each tile nearly halfway around its row ring: the
// worst case for a torus's wraparound bandwidth.
type Tornado struct{ K int }

// Name implements Pattern.
func (p Tornado) Name() string { return "tornado" }

// Pick implements Pattern.
func (p Tornado) Pick(src int, _ *rand.Rand) int {
	x, y := src%p.K, src/p.K
	return y*p.K + (x+(p.K+1)/2-1)%p.K
}

// Neighbor sends to the next tile in the row (nearest-neighbour traffic,
// the friendliest locality case).
type Neighbor struct{ K int }

// Name implements Pattern.
func (p Neighbor) Name() string { return "neighbor" }

// Pick implements Pattern.
func (p Neighbor) Pick(src int, _ *rand.Rand) int {
	x, y := src%p.K, src/p.K
	return y*p.K + (x+1)%p.K
}

// Hotspot sends to a fixed hot tile with probability Frac, else defers to
// Base.
type Hotspot struct {
	Hot  int
	Frac float64
	Base Pattern
}

// Name implements Pattern.
func (p Hotspot) Name() string { return fmt.Sprintf("hotspot-%d", p.Hot) }

// Pick implements Pattern.
func (p Hotspot) Pick(src int, rng *rand.Rand) int {
	if rng.Float64() < p.Frac && p.Hot != src {
		return p.Hot
	}
	return p.Base.Pick(src, rng)
}

// ByName constructs a pattern for a kx×ky network from its name.
func ByName(name string, kx, ky int) (Pattern, error) {
	n := kx * ky
	switch name {
	case "uniform":
		return Uniform{Tiles: n}, nil
	case "transpose":
		if kx != ky {
			return nil, fmt.Errorf("traffic: transpose needs a square network")
		}
		return Transpose{K: kx}, nil
	case "bitcomp":
		return BitComplement{Tiles: n}, nil
	case "shuffle":
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("traffic: shuffle needs a power-of-two tile count")
		}
		return Shuffle{Tiles: n}, nil
	case "tornado":
		return Tornado{K: kx}, nil
	case "neighbor":
		return Neighbor{K: kx}, nil
	case "hotspot":
		// Half the traffic hammers the central tile, the rest is uniform:
		// the canonical way to drive one destination into saturation while
		// the other flows stay near zero-load.
		return Hotspot{Hot: (ky/2)*kx + kx/2, Frac: 0.5, Base: Uniform{Tiles: n}}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// Generator is an open-loop Bernoulli packet source: each cycle it starts a
// new packet with probability Rate/FlitsPerPacket, so the offered load is
// Rate flits per cycle per node. Packets queue at the port if the network
// is congested (the queue is part of measured latency).
type Generator struct {
	Tile           int
	Pattern        Pattern
	Rate           float64 // offered flits/cycle/node
	FlitsPerPacket int
	Mask           flit.VCMask
	Class          int
	StopAt         int64 // stop generating at this cycle (0 = never)
	rng            *rand.Rand
	src            *sim.CountedSource // rng's source, for checkpointing

	// payloadBuf is the reusable injection payload: Port.Send copies the
	// bytes into the packet's flits, so one scratch buffer serves every
	// packet this generator offers.
	payloadBuf []byte

	GeneratedPackets int64
}

// NewGenerator returns a generator with its own deterministic random
// stream.
func NewGenerator(tile int, p Pattern, rate float64, flitsPerPacket int, mask flit.VCMask, seed int64) *Generator {
	if flitsPerPacket < 1 {
		flitsPerPacket = 1
	}
	src := sim.NewCountedSource(seed ^ int64(tile)*0x9E3779B9)
	return &Generator{
		Tile: tile, Pattern: p, Rate: rate, FlitsPerPacket: flitsPerPacket,
		Mask: mask, rng: rand.New(src), src: src,
	}
}

// Reseed rewinds the generator onto a fresh deterministic stream derived
// from seed and the tile — the same derivation NewGenerator uses — and
// zeroes the packet count. Warm-forked replicas call it after restoring
// a shared warmup snapshot, so each replica's measurement traffic is an
// independent drawing while the network state at the fork is identical.
func (g *Generator) Reseed(seed int64) {
	g.src.Seed(seed ^ int64(g.Tile)*0x9E3779B9)
	g.GeneratedPackets = 0
}

// Tick implements network.Client.
func (g *Generator) Tick(now int64, p *network.Port) {
	p.Deliveries()
	if g.StopAt > 0 && now >= g.StopAt {
		return
	}
	prob := g.Rate / float64(g.FlitsPerPacket)
	if g.rng.Float64() >= prob {
		return
	}
	dst := g.Pattern.Pick(g.Tile, g.rng)
	if dst == g.Tile {
		return
	}
	if n := g.payloadBytes(); cap(g.payloadBuf) < n {
		g.payloadBuf = make([]byte, n)
	}
	payload := g.payloadBuf[:g.payloadBytes()]
	if _, err := p.Send(dst, payload, g.Mask, g.Class); err == nil {
		g.GeneratedPackets++
	}
}

func (g *Generator) payloadBytes() int {
	// L flits carry (L-1)*32 + 1..32 bytes; use the full width.
	return g.FlitsPerPacket * flit.DataBytes
}

// StreamSource injects one small packet every Period cycles from Tile to
// Dst — the §2.6 static flow (e.g. camera to MPEG encoder). When Reserved
// is set the packets ride the reserved VC over the slots booked with
// Network.ReserveFlow (the caller must have reserved flow Flow with phase
// Phase); otherwise they travel as ordinary dynamic traffic of class
// Class.
type StreamSource struct {
	Tile, Dst int
	Period    int64
	Phase     int64
	Flow      int
	Reserved  bool
	Mask      flit.VCMask
	Class     int
	StopAt    int64
	Payload   int // bytes per packet (default 8)

	payloadBuf []byte

	Sent int64
}

// Tick implements network.Client.
func (s *StreamSource) Tick(now int64, p *network.Port) {
	p.Deliveries()
	if s.StopAt > 0 && now >= s.StopAt {
		return
	}
	if (now-s.Phase)%s.Period != 0 || now < s.Phase {
		return
	}
	nbytes := s.Payload
	if nbytes <= 0 {
		nbytes = 8
	}
	if cap(s.payloadBuf) < nbytes {
		s.payloadBuf = make([]byte, nbytes)
	}
	payload := s.payloadBuf[:nbytes]
	payload[0] = byte(now)
	var err error
	if s.Reserved {
		_, err = p.SendReserved(s.Dst, payload, s.Flow)
	} else {
		_, err = p.Send(s.Dst, payload, s.Mask, s.Class)
	}
	if err == nil {
		s.Sent++
	}
}

// Event is one packet of a replayed trace.
type Event struct {
	Cycle    int64
	Src, Dst int
	Bytes    int
	Class    int
}

// TraceSource replays the events whose Src matches its tile, in cycle
// order. Events must be sorted by cycle.
type TraceSource struct {
	Tile   int
	Events []Event
	Mask   flit.VCMask
	next   int

	Sent int64
}

// Tick implements network.Client.
func (t *TraceSource) Tick(now int64, p *network.Port) {
	p.Deliveries()
	for t.next < len(t.Events) && t.Events[t.next].Cycle <= now {
		e := t.Events[t.next]
		t.next++
		if e.Src != t.Tile || e.Dst == t.Tile {
			continue
		}
		if _, err := p.Send(e.Dst, make([]byte, e.Bytes), t.Mask, e.Class); err == nil {
			t.Sent++
		}
	}
}
