package traffic

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/topology"
)

func TestPatternsStayInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	patterns := []Pattern{
		Uniform{Tiles: 16},
		Transpose{K: 4},
		BitComplement{Tiles: 16},
		Shuffle{Tiles: 16},
		Tornado{K: 4},
		Neighbor{K: 4},
		Hotspot{Hot: 5, Frac: 0.3, Base: Uniform{Tiles: 16}},
	}
	for _, p := range patterns {
		for src := 0; src < 16; src++ {
			for trial := 0; trial < 50; trial++ {
				d := p.Pick(src, rng)
				if d < 0 || d >= 16 {
					t.Fatalf("%s: src %d -> %d out of range", p.Name(), src, d)
				}
			}
		}
	}
}

func TestUniformNeverSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := Uniform{Tiles: 16}
	for src := 0; src < 16; src++ {
		for trial := 0; trial < 200; trial++ {
			if u.Pick(src, rng) == src {
				t.Fatalf("uniform picked self for %d", src)
			}
		}
	}
}

// Property: uniform destinations are roughly uniform over the other tiles.
func TestUniformDistributionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := Uniform{Tiles: 8}
	counts := make([]int, 8)
	const n = 70000
	for i := 0; i < n; i++ {
		counts[u.Pick(3, rng)]++
	}
	if counts[3] != 0 {
		t.Fatal("self-traffic generated")
	}
	want := n / 7
	for d, c := range counts {
		if d == 3 {
			continue
		}
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("destination %d count %d far from %d", d, c, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	p := Transpose{K: 4}
	for src := 0; src < 16; src++ {
		if p.Pick(p.Pick(src, nil), nil) != src {
			t.Fatalf("transpose not an involution at %d", src)
		}
	}
}

func TestBitComplementInvolution(t *testing.T) {
	f := func(raw uint8) bool {
		p := BitComplement{Tiles: 64}
		src := int(raw) % 64
		return p.Pick(p.Pick(src, nil), nil) == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePermutation(t *testing.T) {
	p := Shuffle{Tiles: 16}
	seen := map[int]bool{}
	for src := 0; src < 16; src++ {
		d := p.Pick(src, nil)
		if seen[d] {
			t.Fatalf("shuffle not a permutation: %d hit twice", d)
		}
		seen[d] = true
	}
}

func TestTornadoDistance(t *testing.T) {
	p := Tornado{K: 4}
	// Tornado on k=4 sends x -> x+1 mod 4 within the row (ceil(k/2)-1=1).
	if got := p.Pick(0, nil); got != 1 {
		t.Fatalf("tornado(0) = %d", got)
	}
	if got := p.Pick(3, nil); got != 0 {
		t.Fatalf("tornado(3) = %d", got)
	}
	// Row preserved.
	if got := p.Pick(7, nil); got/4 != 1 {
		t.Fatalf("tornado left the row: %d", got)
	}
}

func TestHotspotFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Hotspot{Hot: 2, Frac: 0.5, Base: Uniform{Tiles: 16}}
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Pick(9, rng) == 2 {
			hot++
		}
	}
	frac := float64(hot) / n
	// 0.5 direct plus 1/15 of the uniform remainder.
	want := 0.5 + 0.5/15.0
	if frac < want-0.03 || frac > want+0.03 {
		t.Fatalf("hotspot fraction = %v, want ≈%v", frac, want)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "bitcomp", "shuffle", "tornado", "neighbor"} {
		if _, err := ByName(name, 4, 4); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope", 4, 4); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := ByName("transpose", 4, 2); err == nil {
		t.Error("non-square transpose accepted")
	}
	if _, err := ByName("shuffle", 3, 3); err == nil {
		t.Error("non-power-of-two shuffle accepted")
	}
}

func buildNet(t *testing.T, seed int64) *network.Network {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: seed, Warmup: 200})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGeneratorOfferedRate(t *testing.T) {
	n := buildNet(t, 5)
	const rate = 0.2
	gens := make([]*Generator, 16)
	for tile := 0; tile < 16; tile++ {
		g := NewGenerator(tile, Uniform{Tiles: 16}, rate, 2, flit.VCMask(0xFF), 5)
		g.StopAt = 2000
		gens[tile] = g
		n.AttachClient(tile, g)
	}
	n.Run(2000)
	var packets int64
	for _, g := range gens {
		packets += g.GeneratedPackets
	}
	// Offered flits/cycle/node = packets * 2 flits / (2000 cycles * 16).
	offered := float64(packets*2) / (2000 * 16)
	if offered < rate*0.9 || offered > rate*1.1 {
		t.Fatalf("offered = %v, want ≈%v", offered, rate)
	}
	if !n.Drain(50000) {
		t.Fatal("did not drain")
	}
	rec := n.Recorder()
	if rec.DeliveredPackets != packets {
		t.Fatalf("delivered %d of %d", rec.DeliveredPackets, packets)
	}
}

func TestStreamSourcePeriodicity(t *testing.T) {
	n := buildNet(t, 6)
	src := &StreamSource{Tile: 0, Dst: 5, Period: 10, Phase: 3, Mask: flit.MaskFor(0), Class: 1, StopAt: 503}
	n.AttachClient(0, src)
	arrivals := []int64{}
	n.AttachClient(5, network.ClientFunc(func(now int64, p *network.Port) {
		for range p.Deliveries() {
			arrivals = append(arrivals, now)
		}
	}))
	n.Run(600)
	if src.Sent != 50 {
		t.Fatalf("sent %d, want 50", src.Sent)
	}
	if int64(len(arrivals)) != src.Sent {
		t.Fatalf("arrived %d of %d", len(arrivals), src.Sent)
	}
	// Unloaded network: arrivals exactly periodic.
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i]-arrivals[i-1] != 10 {
			t.Fatalf("inter-arrival %d at %d", arrivals[i]-arrivals[i-1], i)
		}
	}
}

func TestTraceSourceReplays(t *testing.T) {
	n := buildNet(t, 7)
	tr := &TraceSource{
		Tile: 2,
		Mask: flit.MaskFor(0),
		Events: []Event{
			{Cycle: 5, Src: 2, Dst: 7, Bytes: 16},
			{Cycle: 5, Src: 1, Dst: 7, Bytes: 16}, // other tile: skipped
			{Cycle: 9, Src: 2, Dst: 2, Bytes: 16}, // self: skipped
			{Cycle: 12, Src: 2, Dst: 8, Bytes: 40},
		},
	}
	n.AttachClient(2, tr)
	got := 0
	for _, dst := range []int{7, 8} {
		n.AttachClient(dst, network.ClientFunc(func(now int64, p *network.Port) {
			got += len(p.Deliveries())
		}))
	}
	n.Run(100)
	if tr.Sent != 2 || got != 2 {
		t.Fatalf("sent %d delivered %d, want 2/2", tr.Sent, got)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 5, Src: 2, Dst: 7, Bytes: 16, Class: 1},
		{Cycle: 0, Src: 0, Dst: 5, Bytes: 64},
		{Cycle: 10, Src: 15, Dst: 0, Bytes: 128, Class: 3},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("events = %d", len(got))
	}
	// Parsed traces come back sorted by cycle.
	if got[0].Cycle != 0 || got[1].Cycle != 5 || got[2].Cycle != 10 {
		t.Fatalf("not sorted: %+v", got)
	}
	if got[1] != events[0] {
		t.Fatalf("event mangled: %+v vs %+v", got[1], events[0])
	}
}

func TestParseTraceCommentsAndErrors(t *testing.T) {
	good := "# header\n\n3 1 2 64\n"
	events, err := ParseTrace(strings.NewReader(good))
	if err != nil || len(events) != 1 {
		t.Fatalf("comment parse: %v %v", events, err)
	}
	for _, bad := range []string{
		"x 1 2 64\n",
		"3 1 2\n",
		"3 1 2 64 0 9\n",
		"-1 1 2 64\n",
		"3 1 2 sixty\n",
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("bad trace %q accepted", bad)
		}
	}
}

func TestSplitByTile(t *testing.T) {
	events := []Event{
		{Cycle: 1, Src: 0, Dst: 1, Bytes: 8},
		{Cycle: 2, Src: 0, Dst: 2, Bytes: 8},
		{Cycle: 3, Src: 5, Dst: 0, Bytes: 8},
	}
	srcs, err := SplitByTile(events, 16, flit.MaskFor(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs[0].Events) != 2 || len(srcs[5].Events) != 1 || len(srcs[3].Events) != 0 {
		t.Fatal("events misassigned")
	}
	if _, err := SplitByTile([]Event{{Src: 99, Dst: 0}}, 16, flit.MaskFor(0)); err == nil {
		t.Fatal("out-of-range trace accepted")
	}
}
