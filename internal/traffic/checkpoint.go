package traffic

import "repro/internal/checkpoint"

// SaveState serialises the generator's dynamic state: the random stream
// position and the packet count. Configuration (pattern, rate, mask) is
// not saved — the restored generator must be built with the same
// parameters and seed, so replaying the recorded number of draws lands
// the stream on the identical next value.
func (g *Generator) SaveState(e *checkpoint.Encoder) {
	e.U64(g.src.Draws())
	e.I64(g.GeneratedPackets)
}

// RestoreState restores a generator saved with SaveState.
func (g *Generator) RestoreState(d *checkpoint.Decoder) {
	g.src.Restore(d.U64())
	g.GeneratedPackets = d.I64()
}

// SaveState serialises the stream source's dynamic state. The emission
// schedule is a pure function of the cycle number, so only the count is
// dynamic.
func (s *StreamSource) SaveState(e *checkpoint.Encoder) {
	e.I64(s.Sent)
}

// RestoreState restores a stream source saved with SaveState.
func (s *StreamSource) RestoreState(d *checkpoint.Decoder) {
	s.Sent = d.I64()
}

// SaveState serialises the trace replay cursor and packet count. The
// event list itself is configuration.
func (t *TraceSource) SaveState(e *checkpoint.Encoder) {
	e.Int(t.next)
	e.I64(t.Sent)
}

// RestoreState restores a trace source saved with SaveState.
func (t *TraceSource) RestoreState(d *checkpoint.Decoder) {
	t.next = d.Int()
	if t.next < 0 || t.next > len(t.Events) {
		d.Fail("trace cursor %d out of range [0, %d]", t.next, len(t.Events))
		t.next = 0
	}
	t.Sent = d.I64()
}
