package traffic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/flit"
)

// Trace file format: one event per line,
//
//	cycle src dst bytes [class]
//
// with '#' comments and blank lines ignored. Events need not be sorted;
// ParseTrace sorts them by cycle (stable, preserving same-cycle order).

// ParseTrace reads a trace.
func ParseTrace(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields) > 5 {
			return nil, fmt.Errorf("traffic: trace line %d: want 'cycle src dst bytes [class]', got %q", lineNo, line)
		}
		var e Event
		if _, err := fmt.Sscanf(fields[0], "%d", &e.Cycle); err != nil || e.Cycle < 0 {
			return nil, fmt.Errorf("traffic: trace line %d: bad cycle %q", lineNo, fields[0])
		}
		if _, err := fmt.Sscanf(fields[1], "%d", &e.Src); err != nil || e.Src < 0 {
			return nil, fmt.Errorf("traffic: trace line %d: bad src %q", lineNo, fields[1])
		}
		if _, err := fmt.Sscanf(fields[2], "%d", &e.Dst); err != nil || e.Dst < 0 {
			return nil, fmt.Errorf("traffic: trace line %d: bad dst %q", lineNo, fields[2])
		}
		if _, err := fmt.Sscanf(fields[3], "%d", &e.Bytes); err != nil || e.Bytes < 0 {
			return nil, fmt.Errorf("traffic: trace line %d: bad bytes %q", lineNo, fields[3])
		}
		if len(fields) == 5 {
			if _, err := fmt.Sscanf(fields[4], "%d", &e.Class); err != nil {
				return nil, fmt.Errorf("traffic: trace line %d: bad class %q", lineNo, fields[4])
			}
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic: trace read: %w", err)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })
	return events, nil
}

// WriteTrace writes events in the trace file format.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# cycle src dst bytes class"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d\n", e.Cycle, e.Src, e.Dst, e.Bytes, e.Class); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SplitByTile partitions a trace into per-tile TraceSources for the given
// tile count, validating that every event's endpoints are in range.
func SplitByTile(events []Event, tiles int, mask flit.VCMask) ([]*TraceSource, error) {
	srcs := make([]*TraceSource, tiles)
	for tile := 0; tile < tiles; tile++ {
		srcs[tile] = &TraceSource{Tile: tile, Mask: mask}
	}
	for _, e := range events {
		if e.Src >= tiles || e.Dst >= tiles {
			return nil, fmt.Errorf("traffic: trace event %+v outside %d tiles", e, tiles)
		}
		srcs[e.Src].Events = append(srcs[e.Src].Events, e)
	}
	return srcs, nil
}
