package checkpoint

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNoCheckpoints reports that a directory holds no checkpoint files at
// all — as opposed to holding only torn or corrupt ones, which is an
// ordinary error. Resume paths treat it as "start from scratch".
var ErrNoCheckpoints = errors.New("no checkpoint files")

// Checkpoint files are named ckpt-<cycle>.noc with a zero-padded cycle so
// lexical order is cycle order. A sidecar MANIFEST lists the files the
// writer believes are complete, newest first; it is advisory — LoadLatest
// re-validates every candidate by parsing it — but it records write order
// even if two checkpoints share an mtime granule.
const manifestName = "MANIFEST"

// FileName returns the checkpoint file name for a cycle.
func FileName(cycle int64) string {
	return fmt.Sprintf("ckpt-%016d.noc", cycle)
}

// cycleOf parses the cycle out of a checkpoint file name, or -1.
func cycleOf(name string) int64 {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".noc") {
		return -1
	}
	c, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".noc"), 10, 64)
	if err != nil || c < 0 {
		return -1
	}
	return c
}

// writeAtomic writes data to path via a temp file in the same directory,
// fsyncs the file, renames it into place, and fsyncs the directory, so a
// crash at any instant leaves either the old file or the new one — never
// a torn mix.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory: directory entry durability
		d.Close()
	}
	return nil
}

// WriteFile durably writes an assembled checkpoint into dir and updates
// the manifest. It returns the checkpoint's path.
func WriteFile(dir string, cycle int64, data []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(dir, FileName(cycle))
	if err := writeAtomic(path, data); err != nil {
		return "", err
	}
	names := readManifest(dir)
	names = append([]string{FileName(cycle)}, withoutString(names, FileName(cycle))...)
	if err := writeAtomic(filepath.Join(dir, manifestName), []byte(strings.Join(names, "\n")+"\n")); err != nil {
		return "", err
	}
	return path, nil
}

func withoutString(names []string, drop string) []string {
	out := names[:0]
	for _, n := range names {
		if n != drop {
			out = append(out, n)
		}
	}
	return out
}

// readManifest returns the manifest's file names, newest first; a missing
// or unreadable manifest yields nil (callers fall back to a directory
// scan).
func readManifest(dir string) []string {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil
	}
	var names []string
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && cycleOf(line) >= 0 {
			names = append(names, line)
		}
	}
	return names
}

// candidates lists checkpoint files to try, newest first: the manifest
// order when present, plus any ckpt-*.noc files the manifest missed
// (sorted by cycle, descending).
func candidates(dir string) []string {
	names := readManifest(dir)
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return names
	}
	var extra []string
	for _, ent := range entries {
		if n := ent.Name(); !seen[n] && cycleOf(n) >= 0 {
			extra = append(extra, n)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return cycleOf(extra[i]) > cycleOf(extra[j]) })
	return append(names, extra...)
}

// Skipped records one checkpoint candidate the loader rejected — torn by
// a crash mid-write, corrupted on disk (a failed section CRC), or simply
// unreadable — before it found a valid one.
type Skipped struct {
	Name string
	Err  error
}

// LoadLatestReport finds the newest fully-valid checkpoint in dir,
// skipping any torn or corrupt files (each candidate is completely
// parsed, so every section CRC must hold). Unlike a silent fallback, the
// rejected candidates are returned to the caller and recorded as
// `# skipped` comment lines in the MANIFEST sidecar (the manifest reader
// ignores comments), so an operator inspecting a resumed run's directory
// can see that — and why — the newest snapshot was not the one restored.
func LoadLatestReport(dir string) (*File, string, []Skipped, error) {
	cands := candidates(dir)
	if len(cands) == 0 {
		return nil, "", nil, fmt.Errorf("checkpoint: %w in %s", ErrNoCheckpoints, dir)
	}
	var skipped []Skipped
	for _, name := range cands {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err == nil {
			var f *File
			if f, err = Parse(data); err == nil {
				noteSkipped(dir, skipped)
				return f, path, skipped, nil
			}
		}
		skipped = append(skipped, Skipped{Name: name, Err: err})
	}
	noteSkipped(dir, skipped)
	return nil, "", skipped, fmt.Errorf("checkpoint: no valid checkpoint in %s (newest: %s: %v)", dir, skipped[0].Name, skipped[0].Err)
}

// noteSkipped rewrites the manifest with the valid file list followed by
// one `# skipped` comment per rejected candidate. Comments from earlier
// loads are replaced, so the sidecar reflects the most recent load and
// never grows without bound. Best-effort: a read-only directory leaves
// the manifest as it was.
func noteSkipped(dir string, skipped []Skipped) {
	if len(skipped) == 0 {
		return
	}
	var sb strings.Builder
	for _, n := range readManifest(dir) {
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	for _, s := range skipped {
		fmt.Fprintf(&sb, "# skipped %s: %v\n", s.Name, s.Err)
	}
	writeAtomic(filepath.Join(dir, manifestName), []byte(sb.String())) //nolint:errcheck // advisory sidecar
}

// LoadLatest is LoadLatestReport with the skips logged instead of
// returned, for callers without their own reporting channel.
func LoadLatest(dir string) (*File, string, error) {
	f, path, skipped, err := LoadLatestReport(dir)
	for _, s := range skipped {
		log.Printf("checkpoint: skipped %s in %s: %v", s.Name, dir, s.Err)
	}
	return f, path, err
}

// Prune removes all but the newest keep valid-looking checkpoint files
// (by cycle). The manifest is left alone; stale entries are skipped at
// load time.
func Prune(dir string, keep int) {
	if keep < 1 {
		keep = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var files []string
	for _, ent := range entries {
		if cycleOf(ent.Name()) >= 0 {
			files = append(files, ent.Name())
		}
	}
	sort.Slice(files, func(i, j int) bool { return cycleOf(files[i]) > cycleOf(files[j]) })
	for _, name := range files[minInt(keep, len(files)):] {
		os.Remove(filepath.Join(dir, name)) //nolint:errcheck // best-effort cleanup
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
