package checkpoint

import "testing"

// FuzzParse throws arbitrary bytes at the checkpoint loader. The contract
// under fuzzing is absolute: any input — truncated, bit-flipped, or pure
// garbage — must produce (*File, nil) or (nil, error), never a panic, and
// never an allocation sized by an unvalidated length field. When a mutant
// happens to parse, every section decoder is drained with each primitive
// to push the sticky-error paths too.
func FuzzParse(f *testing.F) {
	// Seed with a well-formed checkpoint plus structured near-misses.
	b := NewBuilder(7, 99)
	e := b.Section("router0")
	e.U64(123)
	e.I64s([]int64{4, 5, 6})
	e.Bytes([]byte("flit data"))
	b.Section("rng").U64(888)
	good := b.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("NOCCKPT\x01"))
	f.Add([]byte{})
	mut := append([]byte(nil), good...)
	mut[len(mut)-3] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(data)
		if err != nil {
			if file != nil {
				t.Fatal("Parse returned both a file and an error")
			}
			return
		}
		for _, name := range file.Sections() {
			d, err := file.Section(name)
			if err != nil {
				t.Fatalf("listed section %q missing: %v", name, err)
			}
			// Drain with a mix of primitives; sticky errors must hold.
			for d.Err() == nil && d.Remaining() > 0 {
				d.U8()
				d.Bytes()
				d.I64s()
				d.U64()
			}
		}
	})
}
