// Package checkpoint implements the crash-safe snapshot format behind the
// simulator's checkpoint/restore feature: a versioned, section-tagged
// binary container in which every stateful component of a simulation
// serialises itself explicitly.
//
// A checkpoint file is:
//
//	magic "NOCCKPT\x01"                      (8 bytes)
//	version     u32
//	header-len  u32
//	header      { config-hash u64, cycle i64, section-count u32 }
//	header CRC  u32 (IEEE, over the header payload)
//	sections    × section-count:
//	    name-len   u16, name bytes
//	    payload-len u32
//	    payload
//	    payload CRC u32 (IEEE, over the payload)
//	file CRC    u32 (IEEE, over everything before it)
//
// All integers are little-endian and fixed-width. Each section is guarded
// by its own CRC32 so a torn write or a flipped bit is detected at the
// granularity of one component, and the loader can name the damaged
// section; a trailing whole-file CRC closes the gaps the per-section CRCs
// leave (section names, length fields). The decoder is hardened against hostile input: every length
// field is validated against the bytes actually present before any slice
// is taken, so truncated or fuzzed input returns an error without
// panicking or over-allocating.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Version is the current container format version. Readers reject files
// with a different version outright; state layouts inside sections are
// versioned with the container. Version 2 added the per-flit hop count
// (flow observatory) to the flit wire layout.
const Version = 2

// magic identifies a checkpoint file. The trailing byte doubles as a
// format epoch so even the magic check catches a layout change.
var magic = []byte("NOCCKPT\x01")

// maxSectionName bounds section names; real names are short identifiers.
const maxSectionName = 256

// maxSections bounds the section count a file may claim.
const maxSections = 1 << 16

// Encoder accumulates one section's payload. All methods append
// fixed-width little-endian primitives.
type Encoder struct {
	buf []byte
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 (two's complement, little-endian).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice (u32 length).
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// I64s appends a length-prefixed []int64.
func (e *Encoder) I64s(vs []int64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// Len reports the payload size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Decoder consumes one section's payload with a sticky error: after the
// first failure every read returns the zero value and Err reports the
// cause, so restore code can decode a whole structure and check once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a raw payload, mainly for tests; Restore code normally
// receives decoders from File.Section.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// Err reports the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Fail records a structural restore error (a mismatch between the
// checkpoint and the rebuilt component) through the same sticky-error
// channel as wire-format failures. Subsequent reads return zero values.
func (d *Decoder) Fail(format string, args ...any) { d.fail(format, args...) }

// Remaining reports the unread bytes left in the payload.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Close verifies the payload was fully and cleanly consumed, catching
// layout skew between writer and reader.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if r := d.Remaining(); r != 0 {
		return fmt.Errorf("checkpoint: %d trailing bytes in section payload", r)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.fail("truncated payload: need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a length-prefixed byte slice. The returned slice aliases
// the payload (no copy, so a hostile length cannot trigger a large
// allocation); callers that retain it must copy.
func (d *Decoder) Bytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if int(n) > d.Remaining() {
		d.fail("byte slice length %d exceeds remaining %d", n, d.Remaining())
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// I64s reads a length-prefixed []int64. The length is validated against
// the bytes present before allocating.
func (d *Decoder) I64s() []int64 {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if int(n) > d.Remaining()/8 {
		d.fail("int64 slice length %d exceeds remaining %d bytes", n, d.Remaining())
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.I64()
	}
	return vs
}

// Count reads a u32 element count and validates it against the minimum
// per-element size in bytes, so restore loops can pre-size slices without
// trusting the wire. minBytes must be >= 1.
func (d *Decoder) Count(minBytes int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if int(n) > d.Remaining()/minBytes {
		d.fail("element count %d exceeds remaining %d bytes (min %d bytes each)",
			n, d.Remaining(), minBytes)
		return 0
	}
	return int(n)
}

// Builder assembles a checkpoint: a header plus named sections, each
// CRC-guarded. Sections are emitted in the order they were opened.
type Builder struct {
	configHash uint64
	cycle      int64
	names      []string
	encs       []*Encoder
}

// NewBuilder starts a checkpoint for the given configuration hash and
// resume cycle (the cycle the restored simulation will execute next).
func NewBuilder(configHash uint64, cycle int64) *Builder {
	return &Builder{configHash: configHash, cycle: cycle}
}

// Section opens a named section and returns its payload encoder. Opening
// the same name twice is a programming error and panics.
func (b *Builder) Section(name string) *Encoder {
	if len(name) == 0 || len(name) > maxSectionName {
		panic(fmt.Sprintf("checkpoint: bad section name %q", name))
	}
	for _, n := range b.names {
		if n == name {
			panic(fmt.Sprintf("checkpoint: duplicate section %q", name))
		}
	}
	e := &Encoder{}
	b.names = append(b.names, name)
	b.encs = append(b.encs, e)
	return e
}

// Bytes assembles the container.
func (b *Builder) Bytes() []byte {
	var hdr Encoder
	hdr.U64(b.configHash)
	hdr.I64(b.cycle)
	hdr.U32(uint32(len(b.names)))

	out := append([]byte(nil), magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(hdr.buf)))
	out = append(out, hdr.buf...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(hdr.buf))
	for i, name := range b.names {
		payload := b.encs[i].buf
		out = binary.LittleEndian.AppendUint16(out, uint16(len(name)))
		out = append(out, name...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		out = append(out, payload...)
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out
}

// File is a parsed, CRC-verified checkpoint.
type File struct {
	Version    uint32
	ConfigHash uint64
	Cycle      int64

	names    []string
	payloads map[string][]byte
}

// Parse validates and indexes a checkpoint image. All CRCs are checked
// here, so a successful Parse means every section is intact.
func Parse(data []byte) (*File, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("checkpoint: too short to be a checkpoint file")
	}
	body, trailer := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != trailer {
		return nil, fmt.Errorf("checkpoint: file CRC mismatch (torn or corrupt file)")
	}
	d := &Decoder{buf: body}
	if got := d.take(len(magic)); got == nil || string(got) != string(magic) {
		return nil, fmt.Errorf("checkpoint: bad magic (not a checkpoint file, or truncated)")
	}
	version := d.U32()
	if d.err == nil && version != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (want %d)", version, Version)
	}
	hdrLen := d.U32()
	if d.err != nil {
		return nil, d.err
	}
	if int(hdrLen) > d.Remaining() {
		return nil, fmt.Errorf("checkpoint: header length %d exceeds file size", hdrLen)
	}
	hdrBytes := d.take(int(hdrLen))
	hdrCRC := d.U32()
	if d.err != nil {
		return nil, d.err
	}
	if crc32.ChecksumIEEE(hdrBytes) != hdrCRC {
		return nil, fmt.Errorf("checkpoint: header CRC mismatch (torn or corrupt file)")
	}
	hd := &Decoder{buf: hdrBytes}
	f := &File{Version: version, ConfigHash: hd.U64(), Cycle: hd.I64(), payloads: map[string][]byte{}}
	nSections := hd.U32()
	if err := hd.Close(); err != nil {
		return nil, fmt.Errorf("checkpoint: malformed header: %w", err)
	}
	if nSections > maxSections {
		return nil, fmt.Errorf("checkpoint: implausible section count %d", nSections)
	}
	for i := uint32(0); i < nSections; i++ {
		nameLen := d.U16()
		if d.err == nil && (nameLen == 0 || int(nameLen) > maxSectionName) {
			return nil, fmt.Errorf("checkpoint: section %d: bad name length %d", i, nameLen)
		}
		nameBytes := d.take(int(nameLen))
		payloadLen := d.U32()
		if d.err != nil {
			return nil, d.err
		}
		if int(payloadLen) > d.Remaining() {
			return nil, fmt.Errorf("checkpoint: section %q: payload length %d exceeds remaining %d bytes (truncated)",
				nameBytes, payloadLen, d.Remaining())
		}
		payload := d.take(int(payloadLen))
		crc := d.U32()
		if d.err != nil {
			return nil, d.err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("checkpoint: section %q: CRC mismatch (corrupt)", nameBytes)
		}
		name := string(nameBytes)
		if _, dup := f.payloads[name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate section %q", name)
		}
		f.names = append(f.names, name)
		f.payloads[name] = payload
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after last section", d.Remaining())
	}
	return f, nil
}

// Sections lists the section names in file order.
func (f *File) Sections() []string { return append([]string(nil), f.names...) }

// Section returns a decoder over the named section's payload, or an error
// if the section is absent (a component the writer did not know about).
func (f *File) Section(name string) (*Decoder, error) {
	p, ok := f.payloads[name]
	if !ok {
		return nil, fmt.Errorf("checkpoint: missing section %q", name)
	}
	return &Decoder{buf: p}, nil
}
