package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func buildSample(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder(0xDEADBEEF, 1234)
	e := b.Section("alpha")
	e.U8(7)
	e.Bool(true)
	e.U16(512)
	e.U32(1 << 20)
	e.U64(1 << 40)
	e.I64(-42)
	e.Int(99)
	e.F64(3.25)
	e.Bytes([]byte("payload"))
	e.String("name")
	e.I64s([]int64{1, -2, 3})
	b.Section("beta").U64(777)
	return b.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := buildSample(t)
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.ConfigHash != 0xDEADBEEF || f.Cycle != 1234 || f.Version != Version {
		t.Fatalf("header mismatch: %+v", f)
	}
	if got := f.Sections(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("sections = %v", got)
	}
	d, err := f.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if !d.Bool() {
		t.Fatal("Bool = false")
	}
	if v := d.U16(); v != 512 {
		t.Fatalf("U16 = %d", v)
	}
	if v := d.U32(); v != 1<<20 {
		t.Fatalf("U32 = %d", v)
	}
	if v := d.U64(); v != 1<<40 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.Int(); v != 99 {
		t.Fatalf("Int = %d", v)
	}
	if v := d.F64(); v != 3.25 {
		t.Fatalf("F64 = %v", v)
	}
	if v := d.Bytes(); !bytes.Equal(v, []byte("payload")) {
		t.Fatalf("Bytes = %q", v)
	}
	if v := d.String(); v != "name" {
		t.Fatalf("String = %q", v)
	}
	if v := d.I64s(); len(v) != 3 || v[0] != 1 || v[1] != -2 || v[2] != 3 {
		t.Fatalf("I64s = %v", v)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Section("gamma"); err == nil {
		t.Fatal("missing section did not error")
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.U64() // truncated
	if d.Err() == nil {
		t.Fatal("truncated read did not set error")
	}
	if v := d.U32(); v != 0 {
		t.Fatalf("post-error read = %d, want 0", v)
	}
	if err := d.Close(); err == nil {
		t.Fatal("Close after error returned nil")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	d.U8()
	if err := d.Close(); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}

func TestCorruptionDetected(t *testing.T) {
	data := buildSample(t)
	// Every single-bit flip must fail parsing or leave the header intact
	// with matching CRCs (impossible for CRC32 on a single flip), so just
	// assert a sweep of flips all error.
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			if _, err := Parse(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected", i, bit)
			}
		}
	}
	// Truncations at every length must fail too.
	for n := 0; n < len(data); n++ {
		if _, err := Parse(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestWriteLoadLatest(t *testing.T) {
	dir := t.TempDir()
	for _, cycle := range []int64{100, 200, 300} {
		b := NewBuilder(1, cycle)
		b.Section("s").I64(cycle)
		if _, err := WriteFile(dir, cycle, b.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	f, path, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cycle != 300 || filepath.Base(path) != FileName(300) {
		t.Fatalf("latest = cycle %d from %s", f.Cycle, path)
	}
}

func TestLoadLatestFallsBackPastCorrupt(t *testing.T) {
	dir := t.TempDir()
	for _, cycle := range []int64{100, 200} {
		b := NewBuilder(1, cycle)
		b.Section("s").I64(cycle)
		if _, err := WriteFile(dir, cycle, b.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest checkpoint mid-file.
	newest := filepath.Join(dir, FileName(200))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	f, path, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("no fallback: %v", err)
	}
	if f.Cycle != 100 {
		t.Fatalf("fell back to cycle %d from %s, want 100", f.Cycle, path)
	}
	// With every checkpoint corrupt, LoadLatest must error (not panic).
	older := filepath.Join(dir, FileName(100))
	if err := os.WriteFile(older, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(dir); err == nil {
		t.Fatal("all-corrupt directory did not error")
	}
}

func TestLoadLatestReportRecordsSkips(t *testing.T) {
	dir := t.TempDir()
	for _, cycle := range []int64{100, 200, 300} {
		b := NewBuilder(1, cycle)
		b.Section("s").I64(cycle)
		if _, err := WriteFile(dir, cycle, b.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest checkpoint and corrupt the middle one outright.
	newest := filepath.Join(dir, FileName(300))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, FileName(200)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _, skipped, err := LoadLatestReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cycle != 100 {
		t.Fatalf("restored cycle %d, want 100", f.Cycle)
	}
	if len(skipped) != 2 || skipped[0].Name != FileName(300) || skipped[1].Name != FileName(200) {
		t.Fatalf("skipped = %+v, want the torn 300 then the corrupt 200", skipped)
	}
	for _, s := range skipped {
		if s.Err == nil {
			t.Fatalf("skip %s carries no error", s.Name)
		}
	}
	// The skips are recorded as comments in the manifest sidecar...
	man, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{FileName(300), FileName(200)} {
		if !bytes.Contains(man, []byte("# skipped "+name)) {
			t.Errorf("manifest lacks skip note for %s:\n%s", name, man)
		}
	}
	// ...which the manifest reader ignores, so a second load still finds
	// the valid checkpoint and the notes are rewritten, not accumulated.
	if _, _, _, err := LoadLatestReport(dir); err != nil {
		t.Fatalf("manifest with skip notes broke loading: %v", err)
	}
	man2, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bytes.Count(man2, []byte("# skipped")), 2; got != want {
		t.Errorf("after reload, %d skip notes, want %d (rewritten, not appended):\n%s", got, want, man2)
	}
}

func TestLoadLatestWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	b := NewBuilder(1, 42)
	b.Section("s").I64(42)
	if _, err := WriteFile(dir, 42, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	f, _, err := LoadLatest(dir)
	if err != nil || f.Cycle != 42 {
		t.Fatalf("directory-scan fallback failed: %v, %+v", err, f)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	for _, cycle := range []int64{1, 2, 3, 4, 5} {
		b := NewBuilder(1, cycle)
		b.Section("s").I64(cycle)
		if _, err := WriteFile(dir, cycle, b.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	Prune(dir, 2)
	f, _, err := LoadLatest(dir)
	if err != nil || f.Cycle != 5 {
		t.Fatalf("latest after prune: %v, %+v", err, f)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, ent := range entries {
		if cycleOf(ent.Name()) >= 0 {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("prune kept %d checkpoints, want 2", kept)
	}
}
