package topology

import (
	"reflect"
	"testing"

	"repro/internal/route"
)

// walkPath replays a path from src and returns the final tile, failing on
// any blocked or missing channel.
func walkPath(t *testing.T, topo Topology, src int, path []route.Dir, blocked func(int, route.Dir) bool) int {
	t.Helper()
	tile := src
	for i, d := range path {
		if blocked != nil && blocked(tile, d) {
			t.Fatalf("path step %d crosses blocked channel (%d,%v)", i, tile, d)
		}
		next, ok := topo.Neighbor(tile, d)
		if !ok {
			t.Fatalf("path step %d leaves topology at (%d,%v)", i, tile, d)
		}
		tile = next
	}
	return tile
}

func TestShortestAvoidingNoFaultsMatchesHopCount(t *testing.T) {
	topo := mustTorus(t, 4, 4)
	for src := 0; src < topo.NumTiles(); src++ {
		for dst := 0; dst < topo.NumTiles(); dst++ {
			path, err := ShortestAvoiding(topo, src, dst, nil)
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			if src == dst {
				if len(path) != 0 {
					t.Fatalf("%d->%d: nonempty path for loopback", src, dst)
				}
				continue
			}
			kx, _ := topo.Radix()
			want := len(route.DimensionOrder(topo, src%kx, src/kx, dst%kx, dst/kx))
			if len(path) != want {
				t.Fatalf("%d->%d: %d hops, dimension order needs %d", src, dst, len(path), want)
			}
			if end := walkPath(t, topo, src, path, nil); end != dst {
				t.Fatalf("%d->%d: path ends at %d", src, dst, end)
			}
		}
	}
}

func TestShortestAvoidingRoutesAroundEveryLink(t *testing.T) {
	topo := mustTorus(t, 4, 4)
	for _, dead := range Links(topo) {
		blocked := func(from int, d route.Dir) bool {
			return from == dead.From && d == dead.Dir
		}
		for src := 0; src < topo.NumTiles(); src++ {
			for dst := 0; dst < topo.NumTiles(); dst++ {
				if src == dst {
					continue
				}
				path, err := ShortestAvoiding(topo, src, dst, blocked)
				if err != nil {
					t.Fatalf("dead (%d,%v): %d->%d: %v", dead.From, dead.Dir, src, dst, err)
				}
				if end := walkPath(t, topo, src, path, blocked); end != dst {
					t.Fatalf("dead (%d,%v): %d->%d ends at %d", dead.From, dead.Dir, src, dst, end)
				}
				// A single dead link on a torus adds at most 2 hops to
				// any minimal path.
				clear, _ := ShortestAvoiding(topo, src, dst, nil)
				if len(path) > len(clear)+2 {
					t.Fatalf("dead (%d,%v): %d->%d detour %d hops vs %d clear", dead.From, dead.Dir, src, dst, len(path), len(clear))
				}
				// Paths must encode into a route word (no U-turns).
				if _, err := route.Encode(path); err != nil {
					t.Fatalf("dead (%d,%v): %d->%d: encode: %v", dead.From, dead.Dir, src, dst, err)
				}
			}
		}
	}
}

func TestShortestAvoidingDeterministic(t *testing.T) {
	topo := mustTorus(t, 4, 4)
	blocked := func(from int, d route.Dir) bool { return from == 5 && d == route.East }
	a, err := ShortestAvoiding(topo, 4, 7, blocked)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := ShortestAvoiding(topo, 4, 7, blocked)
		if err != nil || !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d: %v (%v) != %v", i, b, err, a)
		}
	}
}

func TestShortestAvoidingCut(t *testing.T) {
	// Mesh tile 0 has only two outgoing channels (N, E); blocking both
	// from reaching it cuts the network.
	mesh, err := NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	blocked := func(from int, d route.Dir) bool {
		next, ok := mesh.Neighbor(from, d)
		return ok && next == 0
	}
	if _, err := ShortestAvoiding(mesh, 8, 0, blocked); err != ErrNetworkCut {
		t.Fatalf("err = %v, want ErrNetworkCut", err)
	}
	// Unblocked destinations stay reachable.
	if _, err := ShortestAvoiding(mesh, 8, 1, blocked); err != nil {
		t.Fatalf("8->1: %v", err)
	}
}

func TestShortestAvoidingRange(t *testing.T) {
	topo := mustTorus(t, 4, 4)
	if _, err := ShortestAvoiding(topo, -1, 3, nil); err == nil {
		t.Fatal("negative src accepted")
	}
	if _, err := ShortestAvoiding(topo, 0, 16, nil); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
}
