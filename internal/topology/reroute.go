package topology

import (
	"fmt"

	"repro/internal/route"
)

// ErrNetworkCut reports that every path between two tiles crosses a blocked
// channel: the fault set has partitioned the network.
var ErrNetworkCut = fmt.Errorf("topology: no fault-free path (network is cut)")

// ShortestAvoiding computes a minimal path of absolute hop directions from
// src to dst that avoids every channel for which blocked(from, d) is true.
// It is the fault-aware route oracle: clients pass the live fault map's
// IsDown as the predicate and re-encode the result with route.Encode.
//
// The search is a breadth-first search expanding neighbors in the fixed
// N, E, S, W order, so the chosen path is deterministic for a given
// topology and fault set. When src == dst the path is empty. When the
// blocked channels cut src from dst it returns ErrNetworkCut.
//
// BFS paths are simple (no tile repeats), so the result never contains a
// U-turn and always encodes into a route word — provided it fits the word's
// step budget, which the caller's route.Encode call checks.
func ShortestAvoiding(t Topology, src, dst int, blocked func(from int, d route.Dir) bool) ([]route.Dir, error) {
	n := t.NumTiles()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("topology: tile out of range (src=%d dst=%d n=%d)", src, dst, n)
	}
	if src == dst {
		return nil, nil
	}
	seen := make([]bool, n)
	from := make([]hop, n)
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		tile := queue[0]
		queue = queue[1:]
		for _, d := range []route.Dir{route.North, route.East, route.South, route.West} {
			next, ok := t.Neighbor(tile, d)
			if !ok || seen[next] {
				continue
			}
			if blocked != nil && blocked(tile, d) {
				continue
			}
			seen[next] = true
			from[next] = hop{prev: tile, dir: d}
			if next == dst {
				return unwind(from, src, dst), nil
			}
			queue = append(queue, next)
		}
	}
	return nil, ErrNetworkCut
}

// unwind reconstructs the BFS path from the predecessor table.
func unwind(from []hop, src, dst int) []route.Dir {
	var rev []route.Dir
	for at := dst; at != src; at = from[at].prev {
		rev = append(rev, from[at].dir)
	}
	path := make([]route.Dir, len(rev))
	for i, d := range rev {
		path[len(rev)-1-i] = d
	}
	return path
}

// hop is the BFS predecessor record.
type hop struct {
	prev int
	dir  route.Dir
}
