// Package topology defines the logical and physical structure of the
// on-chip network: which tiles are connected, in which compass direction,
// and how long the connecting wires are in tile pitches.
//
// Two topologies from the paper are implemented:
//
//   - Mesh: the conventional k-ary 2-mesh the paper uses as the
//     power-efficient alternative in Section 3.1. Every link spans one tile
//     pitch.
//   - FoldedTorus: the paper's baseline (Section 2): a 2-D torus whose rows
//     and columns are folded so that no wraparound wire crosses the die.
//     For radix 4 the fold visits physical positions 0, 2, 3, 1, exactly as
//     the paper specifies; most links span two tile pitches, which is the
//     torus's "longer average flit transmission distance".
//
// The package also provides the static analysis the paper's Section 3.1
// argument rests on: average hop count, average wire distance, bisection
// channel count, and total wire demand.
package topology

import (
	"fmt"
	"strings"

	"repro/internal/route"
)

// Topology describes a tile network. Tile ids are y*Width + x with x
// increasing east and y increasing north.
type Topology interface {
	route.Geometry

	// Name identifies the topology in reports.
	Name() string
	// NumTiles reports the number of client tiles.
	NumTiles() int
	// Neighbor reports the tile reached by leaving tile in direction d,
	// and whether such a channel exists.
	Neighbor(tile int, d route.Dir) (int, bool)
	// LinkLength reports the physical length, in tile pitches, of the
	// channel leaving tile in direction d. It is zero when no channel
	// exists.
	LinkLength(tile int, d route.Dir) float64
	// PhysPos reports the physical placement of a tile on the die in
	// tile-pitch units. For the mesh this equals the logical coordinate;
	// for the folded torus it applies the fold permutation.
	PhysPos(tile int) (px, py int)
}

// Coord converts a tile id to logical coordinates.
func Coord(t Topology, tile int) (x, y int) {
	kx, _ := t.Radix()
	return tile % kx, tile / kx
}

// TileID converts logical coordinates to a tile id.
func TileID(t Topology, x, y int) int {
	kx, _ := t.Radix()
	return y*kx + x
}

// Mesh is a kx×ky 2-D mesh.
type Mesh struct {
	kx, ky int
}

// NewMesh returns a kx×ky mesh. Radices must be at least 1, and the network
// must contain at least 2 tiles.
func NewMesh(kx, ky int) (*Mesh, error) {
	if kx < 1 || ky < 1 || kx*ky < 2 {
		return nil, fmt.Errorf("topology: invalid mesh radix %dx%d", kx, ky)
	}
	return &Mesh{kx, ky}, nil
}

// Name implements Topology.
func (m *Mesh) Name() string { return fmt.Sprintf("mesh-%dx%d", m.kx, m.ky) }

// NumTiles implements Topology.
func (m *Mesh) NumTiles() int { return m.kx * m.ky }

// Radix implements route.Geometry.
func (m *Mesh) Radix() (int, int) { return m.kx, m.ky }

// Wrap implements route.Geometry; a mesh has no wraparound channels.
func (m *Mesh) Wrap() bool { return false }

// Neighbor implements Topology.
func (m *Mesh) Neighbor(tile int, d route.Dir) (int, bool) {
	x, y := tile%m.kx, tile/m.kx
	dx, dy := d.Delta()
	nx, ny := x+dx, y+dy
	if nx < 0 || nx >= m.kx || ny < 0 || ny >= m.ky {
		return 0, false
	}
	return ny*m.kx + nx, true
}

// LinkLength implements Topology; every mesh link spans one tile pitch.
func (m *Mesh) LinkLength(tile int, d route.Dir) float64 {
	if _, ok := m.Neighbor(tile, d); !ok {
		return 0
	}
	return 1
}

// PhysPos implements Topology; mesh placement is the logical coordinate.
func (m *Mesh) PhysPos(tile int) (int, int) { return tile % m.kx, tile / m.kx }

// FoldedTorus is a kx×ky 2-D torus folded onto the die so that every
// channel is short. FoldOrder gives the physical interleaving.
type FoldedTorus struct {
	kx, ky int
	posX   []int // posX[logical x] = physical x
	posY   []int
}

// NewFoldedTorus returns a kx×ky folded torus. Radices must be at least 2 in
// any dimension with more than one tile (a 1-wide dimension has no ring).
func NewFoldedTorus(kx, ky int) (*FoldedTorus, error) {
	if kx < 1 || ky < 1 || kx*ky < 2 {
		return nil, fmt.Errorf("topology: invalid torus radix %dx%d", kx, ky)
	}
	if kx == 2 || ky == 2 {
		// A radix-2 ring would need two parallel channels between the same
		// pair of tiles; the paper's example uses radix 4 and the model
		// keeps one channel per direction.
		return nil, fmt.Errorf("topology: radix-2 torus dimension not supported (%dx%d)", kx, ky)
	}
	return &FoldedTorus{kx: kx, ky: ky, posX: foldPositions(FoldOrder(kx)), posY: foldPositions(FoldOrder(ky))}, nil
}

// FoldOrder returns the physical positions visited by the folded ring of
// radix k, in logical ring order. For k=4 it is [0 2 3 1]: the paper's
// "nodes 0-3 in each row cyclically connected in the order 0,2,3,1". Even
// positions are laid out ascending, then odd positions descending, so all
// but two links in each ring span exactly two tile pitches and no link
// crosses the die.
func FoldOrder(k int) []int {
	order := make([]int, 0, k)
	for p := 0; p < k; p += 2 {
		order = append(order, p)
	}
	start := k - 1
	if k%2 != 0 {
		start = k - 2
	}
	for p := start; p > 0; p -= 2 {
		order = append(order, p)
	}
	return order
}

// foldPositions returns posX[logical ring index] = physical position, which
// is exactly the fold order list.
func foldPositions(order []int) []int {
	pos := make([]int, len(order))
	copy(pos, order)
	return pos
}

// Name implements Topology.
func (t *FoldedTorus) Name() string { return fmt.Sprintf("folded-torus-%dx%d", t.kx, t.ky) }

// NumTiles implements Topology.
func (t *FoldedTorus) NumTiles() int { return t.kx * t.ky }

// Radix implements route.Geometry.
func (t *FoldedTorus) Radix() (int, int) { return t.kx, t.ky }

// Wrap implements route.Geometry.
func (t *FoldedTorus) Wrap() bool { return true }

// Neighbor implements Topology; every direction has a neighbor on a torus
// (modulo a 1-wide dimension, which has no ring).
func (t *FoldedTorus) Neighbor(tile int, d route.Dir) (int, bool) {
	x, y := tile%t.kx, tile/t.kx
	dx, dy := d.Delta()
	if dx == 0 && dy == 0 {
		return 0, false
	}
	if (dx != 0 && t.kx == 1) || (dy != 0 && t.ky == 1) {
		return 0, false
	}
	nx := ((x+dx)%t.kx + t.kx) % t.kx
	ny := ((y+dy)%t.ky + t.ky) % t.ky
	return ny*t.kx + nx, true
}

// LinkLength implements Topology: the physical distance between the folded
// positions of the two endpoints.
func (t *FoldedTorus) LinkLength(tile int, d route.Dir) float64 {
	n, ok := t.Neighbor(tile, d)
	if !ok {
		return 0
	}
	x, y := tile%t.kx, tile/t.kx
	nx, ny := n%t.kx, n/t.kx
	dx := abs(t.posX[x] - t.posX[nx])
	dy := abs(t.posY[y] - t.posY[ny])
	return float64(dx + dy)
}

// PhysPos implements Topology.
func (t *FoldedTorus) PhysPos(tile int) (int, int) {
	x, y := tile%t.kx, tile/t.kx
	return t.posX[x], t.posY[y]
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Link is one unidirectional channel of a topology.
type Link struct {
	From, To int
	Dir      route.Dir // direction of travel From -> To
	Length   float64   // tile pitches
}

// Links enumerates every unidirectional channel of the topology in a
// deterministic order (by source tile, then direction).
func Links(t Topology) []Link {
	var links []Link
	for tile := 0; tile < t.NumTiles(); tile++ {
		for _, d := range []route.Dir{route.North, route.East, route.South, route.West} {
			if n, ok := t.Neighbor(tile, d); ok {
				links = append(links, Link{From: tile, To: n, Dir: d, Length: t.LinkLength(tile, d)})
			}
		}
	}
	return links
}

// Layout renders the physical placement of tiles on the die as ASCII art in
// the manner of the paper's Figure 1, annotating each physical position
// with the logical tile id it holds. For the folded torus this makes the
// 0,2,3,1 interleaving visible.
func Layout(t Topology) string {
	kx, ky := t.Radix()
	grid := make([][]int, ky)
	for i := range grid {
		grid[i] = make([]int, kx)
	}
	for tile := 0; tile < t.NumTiles(); tile++ {
		px, py := t.PhysPos(tile)
		grid[py][px] = tile
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s physical placement (logical tile id at each die position):\n", t.Name())
	for y := ky - 1; y >= 0; y-- {
		for x := 0; x < kx; x++ {
			fmt.Fprintf(&sb, " %3d", grid[y][x])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
