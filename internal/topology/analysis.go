package topology

import (
	"fmt"

	"repro/internal/route"
)

// Analysis summarizes the static network properties that drive the paper's
// Section 3.1 comparison of mesh and folded torus.
type Analysis struct {
	Topology string
	Tiles    int
	Channels int // unidirectional inter-tile channels

	// AvgHops is the mean number of channel traversals of a
	// dimension-ordered route, averaged over all ordered pairs of distinct
	// tiles under uniform traffic.
	AvgHops float64
	// MaxHops is the network diameter under dimension-ordered routing.
	MaxHops int
	// AvgDistance is the mean physical wire distance of a route in tile
	// pitches, using the actual (folded) link lengths.
	AvgDistance float64
	// AvgLinkLength is the mean channel length in tile pitches.
	AvgLinkLength float64
	// WireDemand is the total channel length in tile pitches; the folded
	// torus has twice the wire demand of the mesh (§3.1).
	WireDemand float64
	// BisectionChannels counts unidirectional channels crossing the
	// vertical mid-line of the die; the torus has twice the mesh's
	// bisection (§3.1).
	BisectionChannels int
}

// Analyze computes the static properties of a topology.
func Analyze(t Topology) Analysis {
	a := Analysis{Topology: t.Name(), Tiles: t.NumTiles()}
	links := Links(t)
	a.Channels = len(links)
	for _, l := range links {
		a.WireDemand += l.Length
	}
	if a.Channels > 0 {
		a.AvgLinkLength = a.WireDemand / float64(a.Channels)
	}

	var hopSum, distSum float64
	var pairs int
	for src := 0; src < t.NumTiles(); src++ {
		for dst := 0; dst < t.NumTiles(); dst++ {
			if src == dst {
				continue
			}
			hops, dist := PathMetrics(t, src, dst)
			hopSum += float64(hops)
			distSum += dist
			if hops > a.MaxHops {
				a.MaxHops = hops
			}
			pairs++
		}
	}
	if pairs > 0 {
		a.AvgHops = hopSum / float64(pairs)
		a.AvgDistance = distSum / float64(pairs)
	}
	a.BisectionChannels = Bisection(t)
	return a
}

// PathMetrics reports the hop count and physical wire distance (in tile
// pitches) of the dimension-ordered route from src to dst.
func PathMetrics(t Topology, src, dst int) (hops int, distance float64) {
	kx, _ := t.Radix()
	path := route.DimensionOrder(t, src%kx, src/kx, dst%kx, dst/kx)
	cur := src
	for _, d := range path {
		distance += t.LinkLength(cur, d)
		next, ok := t.Neighbor(cur, d)
		if !ok {
			panic(fmt.Sprintf("topology: dimension-order path leaves %s at tile %d dir %v", t.Name(), cur, d))
		}
		cur = next
		hops++
	}
	if cur != dst {
		panic(fmt.Sprintf("topology: dimension-order path on %s from %d ends at %d, want %d", t.Name(), src, cur, dst))
	}
	return hops, distance
}

// Bisection counts the unidirectional channels whose endpoints lie on
// opposite sides of the vertical cut through the middle of the logical
// coordinate space. For a k×k mesh this is 2k; for a k×k torus, 4k.
func Bisection(t Topology) int {
	kx, _ := t.Radix()
	half := kx / 2
	n := 0
	for _, l := range Links(t) {
		fx, _ := Coord(t, l.From)
		tx, _ := Coord(t, l.To)
		if (fx < half) != (tx < half) {
			n++
		}
	}
	return n
}

// String renders the analysis as a report block.
func (a Analysis) String() string {
	return fmt.Sprintf(
		"%s: tiles=%d channels=%d avgHops=%.3f maxHops=%d avgDist=%.3f pitches "+
			"avgLink=%.3f wireDemand=%.1f bisection=%d",
		a.Topology, a.Tiles, a.Channels, a.AvgHops, a.MaxHops, a.AvgDistance,
		a.AvgLinkLength, a.WireDemand, a.BisectionChannels)
}
