package topology

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/route"
)

var dirs = []route.Dir{route.North, route.East, route.South, route.West}

func mustMesh(t *testing.T, kx, ky int) *Mesh {
	t.Helper()
	m, err := NewMesh(kx, ky)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustTorus(t *testing.T, kx, ky int) *FoldedTorus {
	t.Helper()
	tor, err := NewFoldedTorus(kx, ky)
	if err != nil {
		t.Fatal(err)
	}
	return tor
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewMesh(0, 4); err == nil {
		t.Error("0-radix mesh accepted")
	}
	if _, err := NewMesh(1, 1); err == nil {
		t.Error("single-tile mesh accepted")
	}
	if _, err := NewFoldedTorus(2, 4); err == nil {
		t.Error("radix-2 torus accepted")
	}
	if _, err := NewFoldedTorus(0, 0); err == nil {
		t.Error("0-radix torus accepted")
	}
}

func TestFoldOrderPaper(t *testing.T) {
	// §2: "nodes 0-3 in each row cyclically connected in the order 0,2,3,1".
	got := FoldOrder(4)
	want := []int{0, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FoldOrder(4) = %v, want %v", got, want)
		}
	}
}

func TestFoldOrderIsPermutation(t *testing.T) {
	for k := 1; k <= 12; k++ {
		order := FoldOrder(k)
		if len(order) != k {
			t.Fatalf("FoldOrder(%d) has %d entries", k, len(order))
		}
		seen := make([]bool, k)
		for _, p := range order {
			if p < 0 || p >= k || seen[p] {
				t.Fatalf("FoldOrder(%d) = %v is not a permutation", k, order)
			}
			seen[p] = true
		}
	}
}

func TestFoldLinksShort(t *testing.T) {
	// The whole point of folding: no ring link longer than 2 tile pitches.
	for k := 3; k <= 10; k++ {
		order := FoldOrder(k)
		for i := range order {
			j := (i + 1) % k
			d := order[i] - order[j]
			if d < 0 {
				d = -d
			}
			if d > 2 {
				t.Fatalf("FoldOrder(%d) link %d-%d spans %d pitches", k, i, j, d)
			}
		}
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := mustMesh(t, 4, 4)
	// Corner tile 0 has exactly two neighbors.
	count := 0
	for _, d := range dirs {
		if _, ok := m.Neighbor(0, d); ok {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("corner degree = %d, want 2", count)
	}
	// Interior tile 5 = (1,1) has four.
	count = 0
	for _, d := range dirs {
		if _, ok := m.Neighbor(5, d); ok {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("interior degree = %d, want 4", count)
	}
	if n, ok := m.Neighbor(0, route.East); !ok || n != 1 {
		t.Fatalf("east of 0 = %d,%v", n, ok)
	}
	if n, ok := m.Neighbor(0, route.North); !ok || n != 4 {
		t.Fatalf("north of 0 = %d,%v", n, ok)
	}
}

func TestTorusNeighborsComplete(t *testing.T) {
	tor := mustTorus(t, 4, 4)
	for tile := 0; tile < tor.NumTiles(); tile++ {
		for _, d := range dirs {
			if _, ok := tor.Neighbor(tile, d); !ok {
				t.Fatalf("torus tile %d missing %v neighbor", tile, d)
			}
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	for _, topo := range []Topology{mustMesh(t, 4, 4), mustTorus(t, 4, 4), mustMesh(t, 5, 3), mustTorus(t, 5, 3)} {
		for tile := 0; tile < topo.NumTiles(); tile++ {
			for _, d := range dirs {
				n, ok := topo.Neighbor(tile, d)
				if !ok {
					continue
				}
				back, ok := topo.Neighbor(n, d.Opposite())
				if !ok || back != tile {
					t.Fatalf("%s: %d -%v-> %d but reverse gives %d,%v",
						topo.Name(), tile, d, n, back, ok)
				}
				// Link length must agree in both directions.
				if topo.LinkLength(tile, d) != topo.LinkLength(n, d.Opposite()) {
					t.Fatalf("%s: asymmetric link length %d<->%d", topo.Name(), tile, n)
				}
			}
		}
	}
}

func TestMeshLinkLengthsOne(t *testing.T) {
	m := mustMesh(t, 4, 4)
	for _, l := range Links(m) {
		if l.Length != 1 {
			t.Fatalf("mesh link %d->%d length %v", l.From, l.To, l.Length)
		}
	}
	if m.LinkLength(0, route.West) != 0 {
		t.Fatal("nonexistent link has nonzero length")
	}
}

func TestTorusLinkLengths(t *testing.T) {
	tor := mustTorus(t, 4, 4)
	// With the 0,2,3,1 fold, ring links alternate 2,1,2,1 pitches; none
	// exceed 2 and the average is 1.5.
	var total float64
	links := Links(tor)
	for _, l := range links {
		if l.Length < 1 || l.Length > 2 {
			t.Fatalf("torus link %d->%d length %v out of [1,2]", l.From, l.To, l.Length)
		}
		total += l.Length
	}
	avg := total / float64(len(links))
	if avg != 1.5 {
		t.Fatalf("average torus link length = %v, want 1.5", avg)
	}
}

func TestChannelCounts(t *testing.T) {
	// 4x4 mesh: 2*(3*4)*2 = 48 unidirectional channels.
	if got := len(Links(mustMesh(t, 4, 4))); got != 48 {
		t.Fatalf("mesh channels = %d, want 48", got)
	}
	// 4x4 torus: every tile has 4 out-channels: 64.
	if got := len(Links(mustTorus(t, 4, 4))); got != 64 {
		t.Fatalf("torus channels = %d, want 64", got)
	}
}

func TestBisectionDoubles(t *testing.T) {
	mesh := Bisection(mustMesh(t, 4, 4))
	torus := Bisection(mustTorus(t, 4, 4))
	if mesh != 8 { // 4 rows x 2 directions
		t.Fatalf("mesh bisection = %d, want 8", mesh)
	}
	if torus != 2*mesh {
		t.Fatalf("torus bisection = %d, want 2x mesh (%d)", torus, 2*mesh)
	}
}

func TestWireDemandDoubles(t *testing.T) {
	// §3.1: "This topology has twice the wire demand ... of a mesh network."
	mesh := Analyze(mustMesh(t, 4, 4))
	torus := Analyze(mustTorus(t, 4, 4))
	ratio := torus.WireDemand / mesh.WireDemand
	if ratio != 2.0 {
		t.Fatalf("wire demand ratio = %v, want 2.0 (mesh %v, torus %v)",
			ratio, mesh.WireDemand, torus.WireDemand)
	}
}

func TestAvgHopsAnalytic(t *testing.T) {
	// Uniform traffic on a k-ary ring dimension: mesh (k^2-1)/(3k) per
	// dimension, torus k/4 (k even). For k=4: mesh 2*1.25=2.5, torus 2.0.
	mesh := Analyze(mustMesh(t, 4, 4))
	if !close(mesh.AvgHops, 2.0*15.0/12.0*16.0/15.0, 1e-9) {
		// Over ordered pairs excluding self: per-dim mean distance is
		// (k^2-1)/(3k) over all pairs including self; excluding self pairs
		// rescales by n/(n-1) on the 2-D sum.
		t.Logf("mesh avg hops = %v", mesh.AvgHops)
	}
	torus := Analyze(mustTorus(t, 4, 4))
	if mesh.AvgHops <= torus.AvgHops {
		t.Fatalf("mesh hops (%v) should exceed torus hops (%v)", mesh.AvgHops, torus.AvgHops)
	}
	// Exact values over ordered pairs (n=16, excluding self):
	// mesh: sum per dim = 2*(k^3-k)/3 ... verified numerically = 2.6667
	if !close(mesh.AvgHops, 8.0/3.0, 1e-9) {
		t.Fatalf("mesh avg hops = %v, want 8/3", mesh.AvgHops)
	}
	if !close(torus.AvgHops, 32.0/15.0, 1e-9) {
		t.Fatalf("torus avg hops = %v, want 32/15", torus.AvgHops)
	}
}

func TestAvgDistanceTorusLonger(t *testing.T) {
	// §3.1: the folded torus trades a longer average transmission distance
	// for fewer hops.
	mesh := Analyze(mustMesh(t, 4, 4))
	torus := Analyze(mustTorus(t, 4, 4))
	if torus.AvgDistance <= mesh.AvgDistance {
		t.Fatalf("torus distance (%v) should exceed mesh (%v)",
			torus.AvgDistance, mesh.AvgDistance)
	}
	if torus.AvgHops >= mesh.AvgHops {
		t.Fatalf("torus hops (%v) should be below mesh (%v)", torus.AvgHops, mesh.AvgHops)
	}
}

func TestPathMetricsRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, topo := range []Topology{mustMesh(t, 4, 4), mustTorus(t, 4, 4), mustTorus(t, 5, 5), mustMesh(t, 6, 3)} {
		for i := 0; i < 200; i++ {
			src := rng.Intn(topo.NumTiles())
			dst := rng.Intn(topo.NumTiles())
			if src == dst {
				continue
			}
			hops, dist := PathMetrics(topo, src, dst)
			if hops < 1 {
				t.Fatalf("%s %d->%d: %d hops", topo.Name(), src, dst, hops)
			}
			if dist < float64(hops)*0.999 {
				t.Fatalf("%s %d->%d: distance %v below hop count %d", topo.Name(), src, dst, dist, hops)
			}
		}
	}
}

func TestRouteComputeOnRealTopologies(t *testing.T) {
	for _, topo := range []Topology{mustMesh(t, 4, 4), mustTorus(t, 4, 4)} {
		for src := 0; src < topo.NumTiles(); src++ {
			for dst := 0; dst < topo.NumTiles(); dst++ {
				if src == dst {
					continue
				}
				w, err := route.Compute(topo, src, dst)
				if err != nil {
					t.Fatalf("%s %d->%d: %v", topo.Name(), src, dst, err)
				}
				if !w.FitsPaperField() {
					t.Fatalf("%s %d->%d: route %v exceeds 16-bit field", topo.Name(), src, dst, w)
				}
				// Replay the route against the real topology.
				dirsTaken, err := route.Walk(w)
				if err != nil {
					t.Fatal(err)
				}
				cur := src
				for _, d := range dirsTaken {
					next, ok := topo.Neighbor(cur, d)
					if !ok {
						t.Fatalf("%s: route leaves topology at %d dir %v", topo.Name(), cur, d)
					}
					cur = next
				}
				if cur != dst {
					t.Fatalf("%s: route %d->%d arrives at %d", topo.Name(), src, dst, cur)
				}
			}
		}
	}
}

func TestPhysPosDistinct(t *testing.T) {
	for _, topo := range []Topology{mustMesh(t, 4, 4), mustTorus(t, 4, 4), mustTorus(t, 7, 3)} {
		seen := map[[2]int]bool{}
		for tile := 0; tile < topo.NumTiles(); tile++ {
			px, py := topo.PhysPos(tile)
			kx, ky := topo.Radix()
			if px < 0 || px >= kx || py < 0 || py >= ky {
				t.Fatalf("%s tile %d placed off-die at (%d,%d)", topo.Name(), tile, px, py)
			}
			key := [2]int{px, py}
			if seen[key] {
				t.Fatalf("%s: two tiles share position %v", topo.Name(), key)
			}
			seen[key] = true
		}
	}
}

func TestLayoutShowsFold(t *testing.T) {
	out := Layout(mustTorus(t, 4, 4))
	if !strings.Contains(out, "folded-torus-4x4") {
		t.Fatalf("layout missing name: %s", out)
	}
	// The ring visits physical positions 0,2,3,1 (pinned by
	// TestFoldOrderPaper), so reading the die left to right the logical
	// ring indices are 0,3,1,2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := strings.Fields(lines[len(lines)-1])
	want := []string{"0", "3", "1", "2"}
	for i := range want {
		if last[i] != want[i] {
			t.Fatalf("bottom row = %v, want %v", last, want)
		}
	}
}

func TestCoordTileIDRoundTrip(t *testing.T) {
	topo := mustMesh(t, 5, 3)
	for tile := 0; tile < topo.NumTiles(); tile++ {
		x, y := Coord(topo, tile)
		if TileID(topo, x, y) != tile {
			t.Fatalf("round trip failed for %d", tile)
		}
	}
}

func TestAnalysisString(t *testing.T) {
	s := Analyze(mustMesh(t, 4, 4)).String()
	if !strings.Contains(s, "mesh-4x4") || !strings.Contains(s, "bisection") {
		t.Fatalf("analysis string: %s", s)
	}
}

func close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestRingAndLineTopologies(t *testing.T) {
	// 1-wide dimensions degenerate cleanly: a kx x 1 torus is a ring, a
	// kx x 1 mesh is a line.
	ring := mustTorus(t, 5, 1)
	for tile := 0; tile < 5; tile++ {
		if _, ok := ring.Neighbor(tile, route.North); ok {
			t.Fatalf("ring tile %d has a north neighbor", tile)
		}
		if n, ok := ring.Neighbor(tile, route.East); !ok || n != (tile+1)%5 {
			t.Fatalf("ring east neighbor of %d = %d,%v", tile, n, ok)
		}
	}
	a := Analyze(ring)
	if a.Channels != 10 { // 5 tiles x 2 directions
		t.Fatalf("ring channels = %d", a.Channels)
	}
	if a.MaxHops != 2 {
		t.Fatalf("ring diameter = %d, want 2", a.MaxHops)
	}

	line := mustMesh(t, 6, 1)
	la := Analyze(line)
	if la.Channels != 10 { // 5 bidirectional links
		t.Fatalf("line channels = %d", la.Channels)
	}
	if la.MaxHops != 5 {
		t.Fatalf("line diameter = %d", la.MaxHops)
	}
	// Routes work end to end on both.
	for _, topo := range []Topology{ring, line} {
		for src := 0; src < topo.NumTiles(); src++ {
			for dst := 0; dst < topo.NumTiles(); dst++ {
				if src == dst {
					continue
				}
				if _, err := route.Compute(topo, src, dst); err != nil {
					t.Fatalf("%s %d->%d: %v", topo.Name(), src, dst, err)
				}
			}
		}
	}
}
