// Package artifact is a content-keyed cache for immutable build products
// of a simulation configuration: route tables, topology adjacency lists,
// and model outputs that are pure functions of (topology, size, routing).
// Computing them once per key and sharing the result read-only across
// sweep points, parallel sim.ForEach workers, and long-lived service
// sessions removes the dominant repeated-setup cost of campaign runs.
//
// Values stored in the cache must be immutable after Build returns:
// every consumer sees the same object concurrently, with no copies and
// no locks on the read path beyond the lookup itself.
package artifact

import (
	"sync"
	"sync/atomic"
)

// entry is one cache slot. The once latch dedupes concurrent builds of
// the same key: every caller blocks on the first builder and then shares
// its result.
type entry struct {
	once sync.Once
	val  any
	err  error
}

// Cache is a concurrency-safe content-keyed store of immutable artifacts.
// The zero value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry

	hits   atomic.Int64
	misses atomic.Int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// Get returns the artifact stored under key, building it with build on
// first use. Concurrent Gets of the same key run build exactly once and
// share the result. A failed build is cached too (the configuration is
// the key, so retrying cannot succeed); callers always see the same
// (value, error) pair for a key.
func (c *Cache) Get(key string, build func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &entry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// Stats reports the cumulative hit and miss counts. A miss is a Get that
// created the entry (and ran the build); a hit found an existing entry,
// whether already built or still being built by another goroutine. The
// counts are process-global and monotone — they are operational metrics,
// not simulation state, and must never feed deterministic outputs.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops every entry and zeroes the counters, for tests. In-flight
// Gets keep their entry references and complete normally.
func (c *Cache) Clear() {
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// Default is the process-wide cache the core layer shares artifacts
// through.
var Default = New()

// Get fetches from the Default cache.
func Get(key string, build func() (any, error)) (any, error) {
	return Default.Get(key, build)
}

// Stats reports the Default cache's hit/miss counters.
func Stats() (hits, misses int64) { return Default.Stats() }
