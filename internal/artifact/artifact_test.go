package artifact

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestGetBuildsOncePerKey(t *testing.T) {
	c := New()
	builds := 0
	build := func() (any, error) { builds++; return 42, nil }
	for i := 0; i < 5; i++ {
		v, err := c.Get("k", build)
		if err != nil || v.(int) != 42 {
			t.Fatalf("Get = %v, %v", v, err)
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 4/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestGetCachesErrors(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	builds := 0
	for i := 0; i < 3; i++ {
		_, err := c.Get("bad", func() (any, error) { builds++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	}
	if builds != 1 {
		t.Fatalf("failed build ran %d times, want 1 (errors are cached)", builds)
	}
}

func TestConcurrentGetSharesOneBuild(t *testing.T) {
	c := New()
	var builds int // guarded by the once latch itself
	val := &struct{ n int }{n: 7}
	var wg sync.WaitGroup
	results := make([]any, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Get("shared", func() (any, error) {
				builds++
				return val, nil
			})
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	for i, v := range results {
		if v != any(val) {
			t.Fatalf("goroutine %d got a different object: %p vs %p", i, v, val)
		}
	}
	hits, misses := c.Stats()
	if hits+misses != 32 || misses < 1 {
		t.Fatalf("stats = %d hits / %d misses, want 32 total with >=1 miss", hits, misses)
	}
}

func TestDistinctKeysDistinctValues(t *testing.T) {
	c := New()
	for i := 0; i < 4; i++ {
		i := i
		v, err := c.Get(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil })
		if err != nil || v.(int) != i {
			t.Fatalf("key k%d: got %v, %v", i, v, err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

func TestClear(t *testing.T) {
	c := New()
	c.Get("k", func() (any, error) { return 1, nil })
	c.Get("k", func() (any, error) { return 1, nil })
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("stats after Clear = %d/%d", h, m)
	}
	builds := 0
	c.Get("k", func() (any, error) { builds++; return 2, nil })
	if builds != 1 {
		t.Fatalf("build after Clear ran %d times, want 1", builds)
	}
}
