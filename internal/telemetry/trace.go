package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/route"
)

// EventKind labels one step of a packet's lifecycle (or a network-level
// incident) in the execution trace.
type EventKind uint8

// Lifecycle event kinds. Per-packet kinds are recorded on head flits
// (EvEject on the tail, once the packet reassembles), so trace volume
// scales with packets, not flits.
const (
	// EvInject: the head flit entered the network. A = source tile,
	// B = destination tile.
	EvInject EventKind = iota
	// EvRoute: a router popped the head's next route step. A = tile,
	// B = chosen output direction.
	EvRoute
	// EvXbar: the head won switch arbitration and crossed the crossbar.
	// A = tile, B = downstream VC.
	EvXbar
	// EvLink: the head entered a channel's wires. A = link index,
	// B = receiving tile.
	EvLink
	// EvEject: the packet fully reassembled at its destination port.
	// A = tile, B = flit count.
	EvEject
	// EvAbort: a destination port discarded a partial packet on a
	// synthetic abort tail. A = tile.
	EvAbort
	// EvLinkDead: a watchdog declared a channel dead. A = link index.
	EvLinkDead
	// EvFault: the fault injector applied an event. A = fault kind,
	// B = link index or tile.
	EvFault
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvRoute:
		return "route"
	case EvXbar:
		return "xbar"
	case EvLink:
		return "link"
	case EvEject:
		return "eject"
	case EvAbort:
		return "abort"
	case EvLinkDead:
		return "link-dead"
	case EvFault:
		return "fault"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one recorded lifecycle step. The struct is small and flat so the
// tracer's append path stays cheap and allocation-amortized.
type Event struct {
	Cycle int64
	Pkt   uint64 // 0 for network-level events
	Kind  EventKind
	A, B  int32 // kind-specific operands (see the kind constants)
}

// Tracer is the bounded in-memory event log shared by every probe of one
// network. The cycle loop is single-goroutine, so no locking.
type Tracer struct {
	events  []Event
	max     int
	dropped int64
}

// Add records an event, or counts it dropped once the buffer is full.
func (t *Tracer) Add(e Event) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Events exposes the recorded events in record order.
func (t *Tracer) Events() []Event { return t.events }

// Dropped reports events lost to the MaxTraceEvents cap.
func (t *Tracer) Dropped() int64 { return t.dropped }

// chromeEvent is one Chrome trace-event object. Fixed struct fields (not
// maps) keep the JSON byte-deterministic for the golden tests.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Pid  int    `json:"pid"`
	Tid  uint64 `json:"tid"`
	S    string `json:"s,omitempty"`
	Args any    `json:"args,omitempty"`
}

// chromeMetaArgs names the process in the viewer's metadata event.
type chromeMetaArgs struct {
	Name string `json:"name"`
}

// chromeArgs carries the kind-specific operands into the trace viewer.
type chromeArgs struct {
	Tile int    `json:"tile,omitempty"`
	Dir  string `json:"dir,omitempty"`
	Link int    `json:"link,omitempty"`
	VC   int    `json:"vc,omitempty"`
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
}

// chromeTrace is the top-level trace-event JSON document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// packetEvents groups the tracer's log by packet id, in id order, keeping
// network-level (pkt 0) events separate.
func (t *Tracer) packetEvents() (pkts []uint64, byPkt map[uint64][]Event, global []Event) {
	byPkt = make(map[uint64][]Event)
	for _, e := range t.events {
		if e.Pkt == 0 {
			global = append(global, e)
			continue
		}
		if _, ok := byPkt[e.Pkt]; !ok {
			pkts = append(pkts, e.Pkt)
		}
		byPkt[e.Pkt] = append(byPkt[e.Pkt], e)
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i] < pkts[j] })
	return pkts, byPkt, global
}

// WriteChromeTrace renders the lifecycle trace as Chrome trace-event JSON,
// loadable in chrome://tracing or Perfetto. One simulated cycle maps to one
// microsecond of trace time. Each packet becomes a thread (tid = packet
// id): a complete ("X") slice spans injection to ejection, with instant
// events marking every per-hop step; network-level incidents (dead links,
// injected faults) land on tid 0.
func (p *Probe) WriteChromeTrace(w io.Writer) error {
	if p.tracer == nil {
		return fmt.Errorf("telemetry: tracing was not enabled (Config.Trace)")
	}
	pkts, byPkt, global := p.tracer.packetEvents()
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 0, Args: &chromeMetaArgs{Name: "noc"}},
	}}
	for _, pkt := range pkts {
		evs := byPkt[pkt]
		src, dst := -1, -1
		start, end := evs[0].Cycle, evs[len(evs)-1].Cycle
		done := false
		for _, e := range evs {
			switch e.Kind {
			case EvInject:
				src, dst = int(e.A), int(e.B)
				start = e.Cycle
			case EvEject, EvAbort:
				end = e.Cycle
				done = true
			}
		}
		if !done {
			end++ // still in flight at trace end; give the slice width
		}
		name := fmt.Sprintf("pkt %d %d->%d", pkt, src, dst)
		dur := end - start
		if dur < 1 {
			dur = 1
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Ph: "X", Ts: start, Dur: dur, Pid: 0, Tid: pkt,
			Args: &chromeArgs{Src: src, Dst: dst},
		})
		for _, e := range evs {
			ce := chromeEvent{Name: e.Kind.String(), Ph: "i", Ts: e.Cycle, Pid: 0, Tid: pkt, S: "t"}
			switch e.Kind {
			case EvRoute:
				ce.Args = &chromeArgs{Tile: int(e.A), Dir: route.Dir(e.B).String(), Src: src, Dst: dst}
			case EvXbar:
				ce.Args = &chromeArgs{Tile: int(e.A), VC: int(e.B), Src: src, Dst: dst}
			case EvLink:
				ce.Args = &chromeArgs{Link: int(e.A), Tile: int(e.B), Src: src, Dst: dst}
			case EvEject, EvAbort, EvInject:
				ce.Args = &chromeArgs{Tile: int(e.A), Src: src, Dst: dst}
			}
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}
	}
	for _, e := range global {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: e.Kind.String(), Ph: "i", Ts: e.Cycle, Pid: 0, Tid: 0, S: "g",
			Args: &chromeArgs{Link: int(e.A), Src: -1, Dst: -1},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// PacketTimeline renders one packet's hop-by-hop history as a single line,
// or "" if the packet left no trace.
func (p *Probe) PacketTimeline(pkt uint64) string {
	if p.tracer == nil {
		return ""
	}
	var evs []Event
	for _, e := range p.tracer.events {
		if e.Pkt == pkt {
			evs = append(evs, e)
		}
	}
	if len(evs) == 0 {
		return ""
	}
	return timelineLine(pkt, evs)
}

// timelineLine formats one packet's event list.
func timelineLine(pkt uint64, evs []Event) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pkt %d:", pkt)
	var inject int64 = -1
	for _, e := range evs {
		switch e.Kind {
		case EvInject:
			inject = e.Cycle
			fmt.Fprintf(&sb, " inject@%d[%d->%d]", e.Cycle, e.A, e.B)
		case EvRoute:
			fmt.Fprintf(&sb, " route@%d[t%d %v]", e.Cycle, e.A, route.Dir(e.B))
		case EvXbar:
			fmt.Fprintf(&sb, " xbar@%d[t%d vc%d]", e.Cycle, e.A, e.B)
		case EvLink:
			fmt.Fprintf(&sb, " wire@%d[L%d]", e.Cycle, e.A)
		case EvEject:
			if inject >= 0 {
				fmt.Fprintf(&sb, " eject@%d[t%d] net=%d", e.Cycle, e.A, e.Cycle-inject)
			} else {
				fmt.Fprintf(&sb, " eject@%d[t%d]", e.Cycle, e.A)
			}
		case EvAbort:
			fmt.Fprintf(&sb, " abort@%d[t%d]", e.Cycle, e.A)
		default:
			fmt.Fprintf(&sb, " %s@%d", e.Kind, e.Cycle)
		}
	}
	return sb.String()
}

// WriteTimelines writes per-packet hop timelines, one line per packet in
// packet-id order, up to maxPackets lines (0 = all).
func (p *Probe) WriteTimelines(w io.Writer, maxPackets int) error {
	if p.tracer == nil {
		return fmt.Errorf("telemetry: tracing was not enabled (Config.Trace)")
	}
	pkts, byPkt, _ := p.tracer.packetEvents()
	if maxPackets > 0 && len(pkts) > maxPackets {
		pkts = pkts[:maxPackets]
	}
	for _, pkt := range pkts {
		if _, err := fmt.Fprintln(w, timelineLine(pkt, byPkt[pkt])); err != nil {
			return err
		}
	}
	if d := p.tracer.dropped; d > 0 {
		fmt.Fprintf(w, "(%d events dropped at the %d-event cap)\n", d, p.tracer.max)
	}
	return nil
}
