package telemetry

import "repro/internal/checkpoint"

// SaveState serialises everything a probe has accumulated: every router
// and link counter, the sampled series, the shared tracer, and the
// roll-up figures. Probe topology (router/link registry, config) is not
// saved — the restored probe must come from a network built with the
// same configuration. A nil probe saves a single absence flag so the
// section layout is stable either way.
func (p *Probe) SaveState(e *checkpoint.Encoder) {
	e.Bool(p != nil)
	if p == nil {
		return
	}
	e.U32(uint32(len(p.Routers)))
	for _, rp := range p.Routers {
		e.I64(rp.Routed)
		e.I64(rp.SwitchMoves)
		e.I64(rp.BypassMoves)
		e.I64(rp.ArbLosses)
		e.I64(rp.CreditStalls)
		e.I64(rp.StageStalls)
		e.I64(rp.ResHits)
		e.I64(rp.ResMisses)
		e.I64(rp.InjectedFlits)
		e.I64(rp.EjectedFlits)
		e.I64(rp.DeliveredFlits)
		e.I64(rp.DeliveredPackets)
		e.I64(rp.AbortedPackets)
		e.I64s(rp.VCOccSum)
		e.I64(rp.Samples)
	}
	e.U32(uint32(len(p.Links)))
	for _, lp := range p.Links {
		e.I64(lp.Flits)
		e.I64(lp.HeadFlits)
		e.I64(lp.Credits)
		e.I64(lp.DeadAt)
	}
	e.U32(uint32(len(p.Series)))
	for _, row := range p.Series {
		e.I64(row.Cycle)
		e.I64(row.BufOcc)
		e.I64(row.LinkInFlight)
		e.I64(row.LinkFlits)
		e.I64(row.SwitchMoves)
		e.I64(row.ArbLosses)
		e.I64(row.CreditStalls)
		e.I64(row.ResHits)
		e.I64(row.Delivered)
	}
	e.I64(p.Elapsed)
	e.Int(p.DeadLinks)
	e.I64(p.FaultsApplied)
	e.I64(p.RetryRetransmits)
	e.I64(p.RetryTimeouts)
	e.I64(p.RetryCorrupt)
	e.Bool(p.tracer != nil)
	if p.tracer != nil {
		p.tracer.SaveState(e)
	}
}

// RestoreState restores a probe saved with SaveState into a probe
// populated by a network built from the same configuration.
func (p *Probe) RestoreState(d *checkpoint.Decoder) {
	present := d.Bool()
	if present != (p != nil) {
		d.Fail("probe presence mismatch: checkpoint %v, network %v", present, p != nil)
		return
	}
	if p == nil {
		return
	}
	nr := d.Count(16)
	if nr != len(p.Routers) {
		if d.Err() == nil {
			d.Fail("probe router count mismatch: checkpoint %d, network %d", nr, len(p.Routers))
		}
		return
	}
	for _, rp := range p.Routers {
		rp.Routed = d.I64()
		rp.SwitchMoves = d.I64()
		rp.BypassMoves = d.I64()
		rp.ArbLosses = d.I64()
		rp.CreditStalls = d.I64()
		rp.StageStalls = d.I64()
		rp.ResHits = d.I64()
		rp.ResMisses = d.I64()
		rp.InjectedFlits = d.I64()
		rp.EjectedFlits = d.I64()
		rp.DeliveredFlits = d.I64()
		rp.DeliveredPackets = d.I64()
		rp.AbortedPackets = d.I64()
		occ := d.I64s()
		if len(occ) == len(rp.VCOccSum) {
			copy(rp.VCOccSum, occ)
		} else if d.Err() == nil {
			d.Fail("probe VC occupancy width mismatch: checkpoint %d, network %d", len(occ), len(rp.VCOccSum))
			return
		}
		rp.Samples = d.I64()
	}
	nl := d.Count(16)
	if nl != len(p.Links) {
		if d.Err() == nil {
			d.Fail("probe link count mismatch: checkpoint %d, network %d", nl, len(p.Links))
		}
		return
	}
	for _, lp := range p.Links {
		lp.Flits = d.I64()
		lp.HeadFlits = d.I64()
		lp.Credits = d.I64()
		lp.DeadAt = d.I64()
	}
	ns := d.Count(16)
	p.Series = p.Series[:0]
	for i := 0; i < ns; i++ {
		var row SeriesRow
		row.Cycle = d.I64()
		row.BufOcc = d.I64()
		row.LinkInFlight = d.I64()
		row.LinkFlits = d.I64()
		row.SwitchMoves = d.I64()
		row.ArbLosses = d.I64()
		row.CreditStalls = d.I64()
		row.ResHits = d.I64()
		row.Delivered = d.I64()
		if d.Err() != nil {
			return
		}
		p.Series = append(p.Series, row)
	}
	p.Elapsed = d.I64()
	p.DeadLinks = d.Int()
	p.FaultsApplied = d.I64()
	p.RetryRetransmits = d.I64()
	p.RetryTimeouts = d.I64()
	p.RetryCorrupt = d.I64()
	hasTracer := d.Bool()
	if hasTracer != (p.tracer != nil) {
		d.Fail("tracer presence mismatch: checkpoint %v, network %v", hasTracer, p.tracer != nil)
		return
	}
	if p.tracer != nil {
		p.tracer.RestoreState(d)
	}
}

// SaveState serialises the tracer's event log and drop count. The buffer
// bound is configuration.
func (t *Tracer) SaveState(e *checkpoint.Encoder) {
	e.U32(uint32(len(t.events)))
	for _, ev := range t.events {
		e.I64(ev.Cycle)
		e.U64(ev.Pkt)
		e.U8(uint8(ev.Kind))
		e.U32(uint32(ev.A))
		e.U32(uint32(ev.B))
	}
	e.I64(t.dropped)
}

// RestoreState restores a tracer saved with SaveState.
func (t *Tracer) RestoreState(d *checkpoint.Decoder) {
	n := d.Count(22)
	t.events = t.events[:0]
	for i := 0; i < n; i++ {
		var ev Event
		ev.Cycle = d.I64()
		ev.Pkt = d.U64()
		ev.Kind = EventKind(d.U8())
		ev.A = int32(d.U32())
		ev.B = int32(d.U32())
		if d.Err() != nil {
			return
		}
		t.events = append(t.events, ev)
	}
	t.dropped = d.I64()
}
