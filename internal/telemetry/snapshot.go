package telemetry

// This file is the copy layer under the live observability service
// (internal/telemetry/serve): plain-data snapshot structs mirroring the
// probe's counters, built by value-copying inside the simulator's serial
// snapshot phase so HTTP readers never touch live state. Everything here
// is deterministic — slices ordered by component index, no maps — because
// the serve layer's determinism contract is that the published snapshot
// bytes are identical for any shard count.

// RouterSnap is the JSON-ready copy of one RouterProbe.
type RouterSnap struct {
	ID               int     `json:"id"`
	Routed           int64   `json:"routed"`
	SwitchMoves      int64   `json:"switch_moves"`
	BypassMoves      int64   `json:"bypass_moves"`
	ArbLosses        int64   `json:"arb_losses"`
	CreditStalls     int64   `json:"credit_stalls"`
	StageStalls      int64   `json:"stage_stalls"`
	ResHits          int64   `json:"res_hits"`
	ResMisses        int64   `json:"res_misses"`
	InjectedFlits    int64   `json:"injected_flits"`
	EjectedFlits     int64   `json:"ejected_flits"`
	DeliveredFlits   int64   `json:"delivered_flits"`
	DeliveredPackets int64   `json:"delivered_packets"`
	AbortedPackets   int64   `json:"aborted_packets"`
	MeanBufOcc       float64 `json:"mean_buf_occ"`
}

// LinkSnap is the JSON-ready copy of one LinkProbe, with the duty factor
// evaluated over an explicit horizon (the snapshot cycle, not the
// post-run Elapsed).
type LinkSnap struct {
	Index     int     `json:"index"`
	From      int     `json:"from"`
	To        int     `json:"to"`
	Dir       string  `json:"dir"`
	Flits     int64   `json:"flits"`
	HeadFlits int64   `json:"head_flits"`
	Credits   int64   `json:"credits"`
	Util      float64 `json:"util"`
	OverUnity bool    `json:"over_unity,omitempty"`
	DeadAt    int64   `json:"dead_at"`
}

// SnapshotRouters copies every registered router probe into dst (reused
// when capacity allows), ordered by router id.
func (p *Probe) SnapshotRouters(dst []RouterSnap) []RouterSnap {
	dst = dst[:0]
	for _, rp := range p.Routers {
		if rp == nil {
			continue
		}
		dst = append(dst, RouterSnap{
			ID:               rp.ID,
			Routed:           rp.Routed,
			SwitchMoves:      rp.SwitchMoves,
			BypassMoves:      rp.BypassMoves,
			ArbLosses:        rp.ArbLosses,
			CreditStalls:     rp.CreditStalls,
			StageStalls:      rp.StageStalls,
			ResHits:          rp.ResHits,
			ResMisses:        rp.ResMisses,
			InjectedFlits:    rp.InjectedFlits,
			EjectedFlits:     rp.EjectedFlits,
			DeliveredFlits:   rp.DeliveredFlits,
			DeliveredPackets: rp.DeliveredPackets,
			AbortedPackets:   rp.AbortedPackets,
			MeanBufOcc:       rp.meanBufOcc(),
		})
	}
	return dst
}

// SnapshotLinks copies every registered link probe into dst, ordered by
// channel index, with utilization over the given horizon.
func (p *Probe) SnapshotLinks(dst []LinkSnap, cycles int64) []LinkSnap {
	dst = dst[:0]
	for _, lp := range p.Links {
		if lp == nil {
			continue
		}
		dst = append(dst, LinkSnap{
			Index:     lp.Index,
			From:      lp.From,
			To:        lp.To,
			Dir:       lp.Dir.String(),
			Flits:     lp.Flits,
			HeadFlits: lp.HeadFlits,
			Credits:   lp.Credits,
			Util:      lp.Util(cycles),
			OverUnity: lp.OverUnity(cycles),
			DeadAt:    lp.DeadAt,
		})
	}
	return dst
}

// rawUtil is the unclamped duty factor: flit-cycles on the wires over the
// horizon. Values above 1 are physically impossible and indicate a
// double-count accounting bug upstream.
func (lp *LinkProbe) rawUtil(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(lp.Flits*int64(lp.Serdes)) / float64(cycles)
}

// OverUnity reports whether the channel's unclamped duty factor exceeds
// 1.0 over the horizon — the condition Util silently clamps away. The
// clamp keeps reports sane; this predicate keeps the bug visible.
func (lp *LinkProbe) OverUnity(cycles int64) bool {
	return lp.rawUtil(cycles) > 1+1e-9
}

// OverUnityLinks counts channels whose duty factor had to be clamped at
// 1.0 over the horizon. Surfaced by /healthz and the text-table exporter:
// a non-zero count means flit accounting double-counted somewhere.
func (p *Probe) OverUnityLinks(cycles int64) int {
	n := 0
	for _, lp := range p.Links {
		if lp != nil && lp.OverUnity(cycles) {
			n++
		}
	}
	return n
}

// HeatmapGrid reports the k×k per-tile mean outgoing duty factor over the
// given horizon, row y=ky-1 first (matching the ASCII and CSV renderings).
// Nil when no grid was registered.
func (p *Probe) HeatmapGrid(cycles int64) [][]float64 {
	return p.AppendHeatmapGrid(nil, cycles)
}

// AppendHeatmapGrid is HeatmapGrid into a reused grid: dst's rows are
// kept when their width matches, so a steady-state sampler allocates
// nothing after the first call. Returns nil when no grid was registered.
func (p *Probe) AppendHeatmapGrid(dst [][]float64, cycles int64) [][]float64 {
	if p.kx == 0 || p.ky == 0 {
		return nil
	}
	cells := p.kx * p.ky
	if cap(p.heatSums) < cells {
		p.heatSums = make([]float64, cells)
		p.heatCounts = make([]int, cells)
	}
	sums, counts := p.heatSums[:cells], p.heatCounts[:cells]
	for i := range sums {
		sums[i], counts[i] = 0, 0
	}
	for _, lp := range p.Links {
		if lp == nil {
			continue
		}
		idx := lp.PY*p.kx + lp.PX
		sums[idx] += lp.Util(cycles)
		counts[idx]++
	}
	grid := dst[:0]
	for y := p.ky - 1; y >= 0; y-- {
		var row []float64
		if n := len(grid); n < cap(grid) {
			row = grid[:n+1][n]
		}
		if len(row) != p.kx {
			row = make([]float64, p.kx)
		}
		for x := 0; x < p.kx; x++ {
			row[x] = 0
			if c := counts[y*p.kx+x]; c > 0 {
				row[x] = sums[y*p.kx+x] / float64(c)
			}
		}
		grid = append(grid, row)
	}
	return grid
}

// SnapshotSeriesTail copies the last max series rows into dst.
func (p *Probe) SnapshotSeriesTail(dst []SeriesRow, max int) []SeriesRow {
	dst = dst[:0]
	rows := p.Series
	if max > 0 && len(rows) > max {
		rows = rows[len(rows)-max:]
	}
	return append(dst, rows...)
}
