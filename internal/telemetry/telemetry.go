// Package telemetry is the observability layer of the simulator: a probe
// fabric threaded through the router phases, link transfer, port
// injection/ejection, and the fault watchdogs. It exposes the quantities
// the paper's claims live on — per-VC buffer occupancy and credit flow
// (§2.3, Fig. 3), link duty factors (§3.1/§4.4), and reservation-slot
// usage (§2.6) — as per-component counters, cycle-sampled time series, a
// flit lifecycle tracer (Chrome trace-event JSON), and CSV / text-table /
// heatmap exporters.
//
// The layer costs nothing when off: every hook site guards on a nil probe
// pointer, no phase is registered, and no allocation happens, so the
// engine's 0 allocs/op steady state (perf_test.go) is preserved.
package telemetry

import "repro/internal/route"

// Config parameterizes a Probe.
type Config struct {
	// SampleEvery is the time-series sampling interval in cycles; 0
	// disables the series (counters and tracing still work).
	SampleEvery int64

	// Trace records per-packet lifecycle events (inject, route,
	// arbitrate, traverse, eject) for the Chrome trace and hop-timeline
	// exporters.
	Trace bool

	// MaxTraceEvents caps the tracer's memory; once full, further events
	// are counted as dropped instead of recorded. 0 means the default.
	MaxTraceEvents int
}

// DefaultMaxTraceEvents bounds the tracer when Config.MaxTraceEvents is 0.
const DefaultMaxTraceEvents = 1 << 20

// RouterProbe accumulates one router's event counters. The owning router
// increments the fields directly on its hot paths (guarded by a nil check),
// so an enabled probe costs one predictable branch plus an integer add.
type RouterProbe struct {
	ID int

	// Crossbar and route-computation activity (§2.3).
	Routed      int64 // route-field pops (one per packet per hop)
	SwitchMoves int64 // flits across the switch
	BypassMoves int64 // reserved-VC flits through the §2.6 bypass

	// Stall taxonomy: why an eligible-looking flit did not move.
	ArbLosses    int64 // switch requests that lost the round-robin grant
	CreditStalls int64 // waiting flits blocked on downstream credits/VCs
	StageStalls  int64 // waiting flits blocked on an occupied staging buffer

	// Reservation-table activity (§2.6).
	ResHits   int64 // reserved slots that carried their flow's flit
	ResMisses int64 // reserved slots that went unclaimed

	// Tile-port traffic.
	InjectedFlits    int64 // flits accepted from the tile's injection port
	EjectedFlits     int64 // flits delivered through the tile's output port
	DeliveredFlits   int64 // flits of fully reassembled packets (port level)
	DeliveredPackets int64
	AbortedPackets   int64 // partials discarded on synthetic abort tails

	// VCOccSum accumulates per-VC input-buffer occupancy at each series
	// sample: VCOccSum[v]/Samples is VC v's mean buffered flits (Fig. 3's
	// buffers under load).
	VCOccSum []int64
	Samples  int64

	tr *Tracer
}

// Trace records a lifecycle event for this router's tile if tracing is on.
func (rp *RouterProbe) Trace(kind EventKind, now int64, pkt uint64, a, b int32) {
	if rp.tr != nil {
		rp.tr.Add(Event{Cycle: now, Pkt: pkt, Kind: kind, A: a, B: b})
	}
}

// Tracing reports whether lifecycle tracing is live, so callers can skip
// preparing event arguments entirely when it is off.
func (rp *RouterProbe) Tracing() bool { return rp.tr != nil }

// LinkProbe accumulates one unidirectional channel's counters.
type LinkProbe struct {
	Index    int
	From, To int
	Dir      route.Dir
	PX, PY   int // physical die position of the sending tile
	Serdes   int // link cycles per flit, for utilization

	Flits     int64 // flits that entered the wires
	HeadFlits int64
	Credits   int64 // credits delivered upstream
	DeadAt    int64 // cycle the watchdog declared the channel dead; -1 = alive

	tr *Tracer
}

// OnSend records a flit entering the wires. The sending link increments
// the counters; the head's lifecycle trace event is added by the network's
// delivery phase (TraceHead), which knows the cycle.
func (lp *LinkProbe) OnSend(head bool) {
	lp.Flits++
	if head {
		lp.HeadFlits++
	}
}

// TraceHead records a head flit completing its wire traversal.
func (lp *LinkProbe) TraceHead(now int64, pkt uint64) {
	if lp.tr != nil {
		lp.tr.Add(Event{Cycle: now, Pkt: pkt, Kind: EvLink, A: int32(lp.Index), B: int32(lp.To)})
	}
}

// OnCredit records one credit completing its reverse traversal.
func (lp *LinkProbe) OnCredit() { lp.Credits++ }

// Util reports the channel's duty factor over the observed horizon: the
// fraction of cycles its wires were busy (§4.4). A duty factor above 1 is
// physically impossible, so it is clamped — but OverUnity still reports
// the condition, because an over-unity raw value means the flit
// accounting double-counted somewhere and should not be masked.
func (lp *LinkProbe) Util(cycles int64) float64 {
	u := lp.rawUtil(cycles)
	if u > 1 {
		u = 1
	}
	return u
}

// SeriesRow is one cycle-sampled snapshot of the network. Counter fields
// are cumulative; consumers difference adjacent rows for rates.
type SeriesRow struct {
	Cycle        int64
	BufOcc       int64 // flits buffered in routers at the sample instant
	LinkInFlight int64 // flits on the wires at the sample instant
	LinkFlits    int64 // cumulative flits sent on all links
	SwitchMoves  int64 // cumulative switch traversals
	ArbLosses    int64 // cumulative lost switch arbitrations
	CreditStalls int64 // cumulative credit-blocked waits
	ResHits      int64 // cumulative claimed reservation slots
	Delivered    int64 // cumulative flits delivered to tiles
}

// Probe is the root of the telemetry fabric for one network: the registry
// of per-component probes, the shared tracer, and the sampled series.
// A nil *Probe is the disabled fast path everywhere.
type Probe struct {
	cfg Config

	Routers []*RouterProbe
	Links   []*LinkProbe

	// Series is the cycle-sampled time series (empty unless SampleEvery
	// was set).
	Series []SeriesRow

	// Elapsed is the simulated horizon in cycles, maintained by the
	// network after each Run so rate exporters have a denominator.
	Elapsed int64

	// DeadLinks counts channels the watchdogs declared dead.
	DeadLinks int

	// FaultsApplied counts fault-injector events that took effect.
	FaultsApplied int64

	// Route-table accounting, mirrored from the network after each Run:
	// lookups served without recomputation (shared precomputed table or
	// per-network memo cache) versus route.Compute invocations. These are
	// operational metrics — the caches they observe refill cold across a
	// checkpoint restore — so they are excluded from SaveState and must
	// never feed deterministic outputs.
	RouteTableHits   int64
	RouteTableMisses int64

	// Protocol-level robustness counters, published by the end-to-end
	// retry layer (internal/protocol) after a run: retransmissions,
	// retransmit-timeout expiries, and corrupted messages/acks discarded
	// by the end-to-end checksum.
	RetryRetransmits int64
	RetryTimeouts    int64
	RetryCorrupt     int64

	kx, ky int
	tracer *Tracer
	sink   EventSink

	// AppendHeatmapGrid scratch, reused across snapshots.
	heatSums   []float64
	heatCounts []int
}

// EventSink receives the probe's discrete fault transitions as they
// happen, in addition to the cumulative counters. Both forwarding points
// run from serial kernel phases (the fault injector and the watchdog), so
// implementations need no locking against simulation state. The flight
// recorder uses this to timestamp fault transitions in its event log.
type EventSink interface {
	// OnFault mirrors Probe.OnFault: an applied fault-injector event.
	OnFault(now int64, kind, where int)
	// OnLinkDead mirrors Probe.OnLinkDead: a watchdog fail-stop.
	OnLinkDead(index int, now int64)
}

// SetEventSink installs (or, with nil, removes) the fault-transition
// forwarding sink.
func (p *Probe) SetEventSink(s EventSink) { p.sink = s }

// New returns an empty probe; the network populates it at construction.
func New(cfg Config) *Probe {
	p := &Probe{cfg: cfg}
	if cfg.Trace {
		max := cfg.MaxTraceEvents
		if max <= 0 {
			max = DefaultMaxTraceEvents
		}
		p.tracer = &Tracer{max: max}
	}
	return p
}

// Config reports the probe's configuration.
func (p *Probe) Config() Config { return p.cfg }

// SetGrid records the die radix for heatmap rendering.
func (p *Probe) SetGrid(kx, ky int) { p.kx, p.ky = kx, ky }

// RegisterRouter creates (or returns) the probe for router id.
func (p *Probe) RegisterRouter(id, numVCs int) *RouterProbe {
	for len(p.Routers) <= id {
		p.Routers = append(p.Routers, nil)
	}
	if p.Routers[id] == nil {
		p.Routers[id] = &RouterProbe{ID: id, VCOccSum: make([]int64, numVCs), tr: p.tracer}
	}
	return p.Routers[id]
}

// RegisterLink creates the probe for channel index.
func (p *Probe) RegisterLink(index, from, to int, dir route.Dir, serdes, px, py int) *LinkProbe {
	for len(p.Links) <= index {
		p.Links = append(p.Links, nil)
	}
	if serdes < 1 {
		serdes = 1
	}
	if p.Links[index] == nil {
		p.Links[index] = &LinkProbe{
			Index: index, From: from, To: to, Dir: dir,
			PX: px, PY: py, Serdes: serdes, DeadAt: -1, tr: p.tracer,
		}
	}
	return p.Links[index]
}

// Tracer exposes the lifecycle tracer (nil when tracing is off).
func (p *Probe) Tracer() *Tracer { return p.tracer }

// SampleEvery reports the configured series interval.
func (p *Probe) SampleEvery() int64 { return p.cfg.SampleEvery }

// AddSample appends one series row with the cumulative counter fields
// filled from the registered probes; the caller supplies the instantaneous
// occupancy fields it alone can see.
func (p *Probe) AddSample(cycle, bufOcc, linkInFlight int64) {
	row := SeriesRow{Cycle: cycle, BufOcc: bufOcc, LinkInFlight: linkInFlight}
	for _, rp := range p.Routers {
		if rp == nil {
			continue
		}
		row.SwitchMoves += rp.SwitchMoves
		row.ArbLosses += rp.ArbLosses
		row.CreditStalls += rp.CreditStalls
		row.ResHits += rp.ResHits
		row.Delivered += rp.EjectedFlits
	}
	for _, lp := range p.Links {
		if lp != nil {
			row.LinkFlits += lp.Flits
		}
	}
	p.Series = append(p.Series, row)
}

// OnLinkDead records a watchdog fail-stop declaration for channel index.
func (p *Probe) OnLinkDead(index int, now int64) {
	p.DeadLinks++
	if index >= 0 && index < len(p.Links) && p.Links[index] != nil {
		p.Links[index].DeadAt = now
	}
	if p.tracer != nil {
		p.tracer.Add(Event{Cycle: now, Kind: EvLinkDead, A: int32(index)})
	}
	if p.sink != nil {
		p.sink.OnLinkDead(index, now)
	}
}

// OnFault records an applied fault-injector event (kind is the injector's
// own enumeration, recorded opaquely).
func (p *Probe) OnFault(now int64, kind int, where int) {
	p.FaultsApplied++
	if p.tracer != nil {
		p.tracer.Add(Event{Cycle: now, Kind: EvFault, A: int32(kind), B: int32(where)})
	}
	if p.sink != nil {
		p.sink.OnFault(now, kind, where)
	}
}

// Observe extends the observed horizon to cycle now.
func (p *Probe) Observe(now int64) {
	if now > p.Elapsed {
		p.Elapsed = now
	}
}

// TotalLinkFlits sums the flits sent over every channel.
func (p *Probe) TotalLinkFlits() int64 {
	var n int64
	for _, lp := range p.Links {
		if lp != nil {
			n += lp.Flits
		}
	}
	return n
}

// TotalDeliveredFlits sums the flits of fully reassembled packets across
// all tile ports. On a fault-free run it reconciles with the recorder's
// DeliveredFlits (minus loopback packets, which never enter the network).
func (p *Probe) TotalDeliveredFlits() int64 {
	var n int64
	for _, rp := range p.Routers {
		if rp != nil {
			n += rp.DeliveredFlits
		}
	}
	return n
}

// TotalEjectedFlits sums the flits delivered through tile output ports
// (including abort tails, which carry no payload).
func (p *Probe) TotalEjectedFlits() int64 {
	var n int64
	for _, rp := range p.Routers {
		if rp != nil {
			n += rp.EjectedFlits
		}
	}
	return n
}
