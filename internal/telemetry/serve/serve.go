// Package serve is the live observability service: it snapshots the
// telemetry probe of a running network at cycle boundaries and serves the
// copies over an embedded HTTP server — /metrics (Prometheus text
// exposition), /snapshot (full JSON including the k×k heatmap), /healthz
// (online detector verdicts from internal/telemetry/health), and /events
// (SSE stream of health transitions and sampled rows).
//
// Concurrency model: the collector registers one *serial* simulation
// phase (like the clients phase), so under -shards it runs on the
// barrier side of the worker pool — single-threaded with respect to all
// simulator state, and byte-identical for any shard count. Each sample it
// value-copies every counter it reads into a mutex-guarded set of reused
// buffers; the immutable Snapshot handed to readers is deep-copied from
// those buffers lazily — on the first Latest call after the sample, or
// in-phase when a mirror or SSE subscriber needs every sample — so HTTP
// handlers never touch simulator state and the steady-state sampling
// path allocates nothing. When serve is not attached, no phase is
// registered and the cycle loop keeps its 0 allocs/cycle fast path.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/telemetry/health"
	"repro/internal/telemetry/latency"
)

// Config parameterizes the collector.
type Config struct {
	// Every is the snapshot interval in cycles (default 256).
	Every int64

	// Health configures the online detectors (zero fields default).
	Health health.Config

	// SeriesTail bounds how many trailing series rows each snapshot
	// carries (default 64; requires the probe's series to be enabled).
	SeriesTail int

	// HotLinks is how many per-window busiest channels to attribute
	// (default 8).
	HotLinks int

	// Flows is the per-flow latency observatory to publish, when one is
	// attached to the same network: snapshots carry its top flows and
	// burning SLO rows, and an SLO burn degrades /healthz with the
	// observatory's attribution. Attach the observatory before the
	// collector so each sample sees the cycle's fresh verdicts.
	Flows *latency.Observatory
}

// DefaultEvery is the default snapshot interval in cycles.
const DefaultEvery = 256

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = DefaultEvery
	}
	if c.SeriesTail <= 0 {
		c.SeriesTail = 64
	}
	if c.HotLinks <= 0 {
		c.HotLinks = 8
	}
	return c
}

// ExportedQuantiles are the latency quantiles every snapshot (and the
// Prometheus summary rendering) carries.
var ExportedQuantiles = []float64{0.5, 0.9, 0.99, 1}

// Quantile is one exported quantile value.
type Quantile struct {
	Q float64 `json:"q"`
	V int64   `json:"v"`
}

// LatencySnap is the copied summary of one latency histogram.
type LatencySnap struct {
	// Name identifies the series: "packet", "network", or "class<k>".
	Name      string     `json:"name"`
	Class     int        `json:"class"` // service class; -1 for aggregates
	Count     int64      `json:"count"`
	Sum       int64      `json:"sum"`
	Mean      float64    `json:"mean"`
	Quantiles []Quantile `json:"quantiles"`
	// Overflowed reports that samples escaped the histogram's exact
	// bucket range (quantiles are still exact; see stats.Hist).
	Overflowed bool `json:"overflowed,omitempty"`
}

// LatencyFrom copies a histogram's headline figures and the exported
// quantiles. This is the single code path behind both /snapshot and the
// /metrics summary rendering, so the property test that compares exported
// quantiles against Hist.Quantile covers what the endpoints serve.
func LatencyFrom(name string, class int, h *stats.Hist) LatencySnap {
	ls := LatencySnap{Name: name, Class: class}
	if h == nil {
		return ls
	}
	ls.Count = h.Count()
	ls.Sum = h.Sum()
	ls.Mean = h.Mean()
	ls.Overflowed = h.Overflowed()
	for _, q := range ExportedQuantiles {
		ls.Quantiles = append(ls.Quantiles, Quantile{Q: q, V: h.Quantile(q)})
	}
	return ls
}

// Snapshot is one published copy of the network's observable state. All
// fields are plain data owned by the snapshot: nothing aliases simulator
// state, so readers need no locks.
type Snapshot struct {
	Cycle int64 `json:"cycle"`

	Healthy bool             `json:"healthy"`
	Health  []health.Verdict `json:"health"`

	Generated        int64   `json:"generated_packets"`
	InjectedPackets  int64   `json:"injected_packets"`
	DeliveredPackets int64   `json:"delivered_packets"`
	DeliveredFlits   int64   `json:"delivered_flits"`
	Throughput       float64 `json:"throughput_flits_per_cycle"`

	BufOcc       int64 `json:"buf_occ"`
	LinkInFlight int64 `json:"link_in_flight"`

	DeadLinks      int   `json:"dead_links"`
	FaultsApplied  int64 `json:"faults_applied"`
	OverUnityLinks int   `json:"over_unity_links"`

	// Route lookups served without recomputation (shared route table or
	// per-network memo cache) versus recomputed. Deterministic within an
	// uninterrupted run — the lookup totals are a pure function of the
	// traffic — but the caches refill cold across a checkpoint restore,
	// so these are operational figures, never checkpointed.
	RouteTableHits   int64 `json:"route_table_hits"`
	RouteTableMisses int64 `json:"route_table_misses"`

	// Checkpointing: the cycle of the newest durable snapshot (-1 when
	// none has been taken), cycles elapsed since it (measured from cycle
	// 0 when none), the configured interval (0 = checkpointing off), and
	// whether the age exceeds twice the interval — the staleness
	// condition that degrades /healthz.
	LastCheckpointCycle int64 `json:"last_checkpoint_cycle"`
	CheckpointAge       int64 `json:"checkpoint_age_cycles"`
	CheckpointEvery     int64 `json:"checkpoint_every,omitempty"`
	CheckpointStale     bool  `json:"checkpoint_stale,omitempty"`

	Latency []LatencySnap `json:"latency"`

	// Flows is the per-flow latency observatory's top flows by packet
	// count (bounded by its MaxFlows); SLO is one row per burning
	// flow-objective pair. Both empty when no observatory is attached.
	Flows []latency.FlowSnap `json:"flows,omitempty"`
	SLO   []latency.SLOSnap  `json:"slo,omitempty"`

	Routers  []telemetry.RouterSnap `json:"routers"`
	Links    []telemetry.LinkSnap   `json:"links"`
	HotLinks []health.LinkLoad      `json:"hot_links,omitempty"`

	// Heatmap is the k×k per-tile mean outgoing duty factor, row y=k-1
	// first (same orientation as the ASCII heatmap).
	Heatmap [][]float64 `json:"heatmap,omitempty"`

	Series []telemetry.SeriesRow `json:"series,omitempty"`
}

// Collector owns the serial snapshot phase and the published snapshot.
type Collector struct {
	n   *network.Network
	cfg Config
	mon *health.Monitor

	// Serial-phase scratch, reused across samples.
	waitBuf    []health.VCWait
	prevFlit   []int64
	loadBuf    []health.LinkLoad
	classBuf   []int
	classNames map[int]string

	// raw accumulates each sample into reused buffers; built is the
	// immutable Snapshot derived from it on demand (Latest), so the
	// steady-state sampling path allocates nothing while nobody is
	// watching. rawSeq counts samples; builtSeq marks the sample built
	// last, so repeat Latest calls between samples share one snapshot.
	mu        sync.Mutex
	raw       Snapshot
	rawSeq    uint64
	builtSeq  uint64
	built     *Snapshot
	subs      map[*Subscriber]struct{}
	mirror    io.Writer
	mirrorErr error
}

// AttachCollector registers the snapshot phase on the network's kernel
// and returns the collector. The network must have a telemetry probe (the
// counter fabric the snapshots copy) and must not have started running
// samples yet. The phase is serial, so it composes with any -shards
// setting without gating the simulation back to one shard.
func AttachCollector(n *network.Network, cfg Config) (*Collector, error) {
	if n.Probe() == nil {
		return nil, fmt.Errorf("serve: network has no telemetry probe; enable telemetry to serve it")
	}
	cfg = cfg.withDefaults()
	c := &Collector{
		n:          n,
		cfg:        cfg,
		mon:        health.New(cfg.Health),
		classNames: make(map[int]string),
		subs:       make(map[*Subscriber]struct{}),
	}
	n.Kernel().AddPhase("serve", c.phase)
	return c, nil
}

// Config reports the collector's effective (defaulted) configuration.
func (c *Collector) Config() Config { return c.cfg }

// Latest returns the most recently published snapshot (nil before the
// first sample). The snapshot is immutable; callers may hold it as long
// as they like.
func (c *Collector) Latest() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latestLocked()
}

// latestLocked returns the immutable snapshot of the newest sample,
// deep-copying the reused sample buffers on the first demand after each
// sample and serving the cached copy until the next one.
func (c *Collector) latestLocked() *Snapshot {
	if c.rawSeq == 0 {
		return nil
	}
	if c.builtSeq != c.rawSeq {
		c.built = c.raw.clone()
		c.builtSeq = c.rawSeq
	}
	return c.built
}

func cloneSlice[T any](s []T) []T {
	if s == nil {
		return nil
	}
	return append(make([]T, 0, len(s)), s...)
}

// clone deep-copies the snapshot so the result shares no memory with the
// collector's reused sample buffers.
func (s *Snapshot) clone() *Snapshot {
	out := *s
	out.Health = cloneSlice(s.Health)
	out.Latency = cloneSlice(s.Latency)
	for i := range out.Latency {
		out.Latency[i].Quantiles = cloneSlice(out.Latency[i].Quantiles)
	}
	out.Flows = cloneSlice(s.Flows)
	out.SLO = cloneSlice(s.SLO)
	for i := range out.SLO {
		out.SLO[i].Exemplars = cloneSlice(out.SLO[i].Exemplars)
	}
	out.Routers = cloneSlice(s.Routers)
	out.Links = cloneSlice(s.Links)
	out.HotLinks = cloneSlice(s.HotLinks)
	out.Heatmap = cloneSlice(s.Heatmap)
	for i := range out.Heatmap {
		out.Heatmap[i] = cloneSlice(out.Heatmap[i])
	}
	out.Series = cloneSlice(s.Series)
	return &out
}

// Monitor exposes the health monitor for tests that drive the collector
// synchronously. The monitor is only written by the serial phase; read it
// between Run calls.
func (c *Collector) Monitor() *health.Monitor { return c.mon }

// SetMirror directs a copy of every published snapshot, JSON-encoded one
// per line, to w. The determinism suite compares these byte streams
// across shard counts. Must be set before the simulation runs.
func (c *Collector) SetMirror(w io.Writer) { c.mirror = w }

// MirrorErr reports the first error writing to the mirror, if any.
func (c *Collector) MirrorErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mirrorErr
}

// subQueue is each subscriber's bounded frame queue depth. A client that
// cannot drain this many frames is stalled; further frames are dropped
// and counted rather than ever blocking the publisher (the simulation's
// serial phase).
const subQueue = 32

// Subscriber is one /events client's bounded queue of pre-rendered SSE
// frames. Slow or stalled clients miss frames — never stall the
// simulation — and the miss count is reported on the stream when the
// client catches back up.
type Subscriber struct {
	ch      chan []byte
	dropped atomic.Int64
}

// C is the frame channel the client drains.
func (s *Subscriber) C() <-chan []byte { return s.ch }

// Dropped reports how many frames have been dropped on this subscriber's
// queue so far.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Subscribe registers an SSE subscriber. Slow subscribers miss frames
// (counted per subscriber) rather than stalling the simulation.
func (c *Collector) Subscribe() *Subscriber {
	sub := &Subscriber{ch: make(chan []byte, subQueue)}
	c.mu.Lock()
	c.subs[sub] = struct{}{}
	c.mu.Unlock()
	return sub
}

// Unsubscribe removes a subscriber registered with Subscribe.
func (c *Collector) Unsubscribe(sub *Subscriber) {
	c.mu.Lock()
	delete(c.subs, sub)
	c.mu.Unlock()
}

// phase is the serial snapshot phase body.
func (c *Collector) phase(now sim.Cycle) {
	if int64(now)%c.cfg.Every != 0 {
		return
	}
	c.sample(int64(now))
}

// minWaitAge is the head-of-line age past which the collector reports a
// VC as waiting: old enough for both detectors' thresholds, scaled down
// so attribution has material before the detectors fire.
func (c *Collector) minWaitAge() int64 {
	hc := c.mon.Config()
	min := hc.StarveAge
	if hc.DeadlockWindow < min {
		min = hc.DeadlockWindow
	}
	if min > 4 {
		min /= 2
	}
	return min
}

// sample observes the network (serially, inside the phase), feeds the
// health monitor, and records the sample into the reused raw buffers.
// The published immutable Snapshot is only materialised when someone is
// actually watching (Latest, a mirror, or SSE subscribers), keeping the
// steady-state sampling path free of per-sample allocation.
func (c *Collector) sample(now int64) {
	p := c.n.Probe()
	rec := c.n.Recorder()

	inFlight := int64(c.n.LinksInFlight())
	bufOcc := int64(c.n.Occupancy()) - inFlight

	c.waitBuf = c.n.AppendWaitingVCs(now, c.minWaitAge(), c.waitBuf[:0])
	hot := c.hotLinks(p)

	s := health.Sample{
		Cycle:            now,
		GeneratedPackets: rec.Generated,
		EjectedFlits:     p.TotalEjectedFlits(),
		BufOcc:           bufOcc + inFlight,
		Waiting:          c.waitBuf,
		HotLinks:         hot,
		DeadLinks:        p.DeadLinks,
	}
	events := c.mon.Observe(s)

	lastCkpt, haveCkpt := c.n.LastCheckpoint()
	ckptEvery := c.n.CheckpointInterval()
	ckptAge := now
	if haveCkpt {
		ckptAge = now - lastCkpt
	} else {
		lastCkpt = -1
	}
	ckptStale := ckptEvery > 0 && ckptAge > 2*ckptEvery

	c.mu.Lock()
	snap := &c.raw
	snap.Cycle = now
	snap.Healthy = c.mon.Healthy() && !ckptStale
	snap.Health = c.mon.AppendVerdicts(snap.Health[:0])
	snap.Generated = rec.Generated
	snap.InjectedPackets = rec.InjectedPackets
	snap.DeliveredPackets = rec.DeliveredPackets
	snap.DeliveredFlits = rec.DeliveredFlits
	snap.Throughput = rec.ThroughputFlitsPerCycle(now)
	snap.BufOcc = bufOcc
	snap.LinkInFlight = inFlight
	snap.DeadLinks = p.DeadLinks
	snap.FaultsApplied = p.FaultsApplied
	snap.OverUnityLinks = p.OverUnityLinks(now)
	snap.RouteTableHits, snap.RouteTableMisses = c.n.RouteTableStats()
	snap.Routers = p.SnapshotRouters(snap.Routers)
	snap.Links = p.SnapshotLinks(snap.Links, now)
	snap.HotLinks = append(snap.HotLinks[:0], hot...)
	snap.Heatmap = p.AppendHeatmapGrid(snap.Heatmap, now)
	snap.Series = p.SnapshotSeriesTail(snap.Series, c.cfg.SeriesTail)
	snap.LastCheckpointCycle = lastCkpt
	snap.CheckpointAge = ckptAge
	snap.CheckpointEvery = ckptEvery
	snap.CheckpointStale = ckptStale
	if ckptStale {
		// Attribute the degradation alongside the detector verdicts so
		// /healthz readers see why the service reports unhealthy.
		detail := fmt.Sprintf("last checkpoint at cycle %d is %d cycles old (> 2x interval %d)",
			lastCkpt, ckptAge, ckptEvery)
		since := lastCkpt + 2*ckptEvery
		if !haveCkpt {
			detail = fmt.Sprintf("no checkpoint after %d cycles (> 2x interval %d)", ckptAge, ckptEvery)
			since = 2 * ckptEvery
		}
		snap.Health = append(snap.Health, health.Verdict{
			Detector: "checkpoint",
			Healthy:  false,
			Since:    since,
			Detail:   detail,
		})
	}
	snap.Latency = latencyInto(snap.Latency[:0], "packet", -1, rec.PacketLatency)
	snap.Latency = latencyInto(snap.Latency, "network", -1, rec.NetworkLatency)
	c.classBuf = rec.AppendClasses(c.classBuf)
	for _, class := range c.classBuf {
		snap.Latency = latencyInto(snap.Latency, c.className(class), class, rec.ClassLatency(class))
	}
	snap.Flows = snap.Flows[:0]
	snap.SLO = snap.SLO[:0]
	if fl := c.cfg.Flows; fl != nil {
		snap.Flows = fl.AppendFlowSnaps(snap.Flows)
		snap.SLO = fl.AppendSLOSnaps(snap.SLO)
		snap.Health = fl.AppendVerdicts(snap.Health)
		snap.Healthy = snap.Healthy && fl.Healthy()
	}
	c.rawSeq++
	// Materialise the immutable copy in-phase only for consumers that
	// need every sample; HTTP readers build it on demand via Latest.
	var out *Snapshot
	if c.mirror != nil || len(c.subs) > 0 {
		out = c.latestLocked()
	}
	mirror := c.mirror
	c.mu.Unlock()

	if mirror != nil {
		if err := json.NewEncoder(mirror).Encode(out); err != nil {
			c.mu.Lock()
			if c.mirrorErr == nil {
				c.mirrorErr = err
			}
			c.mu.Unlock()
		}
	}
	if out != nil {
		c.broadcast(out, events)
	}
}

// className caches the "class<k>" latency series names so steady-state
// samples skip the Sprintf.
func (c *Collector) className(class int) string {
	if name, ok := c.classNames[class]; ok {
		return name
	}
	name := fmt.Sprintf("class%d", class)
	c.classNames[class] = name
	return name
}

// latencyInto appends LatencyFrom(name, class, h) to dst, reusing the
// Quantiles buffer left in the slot by an earlier sample when dst's
// capacity holds one.
func latencyInto(dst []LatencySnap, name string, class int, h *stats.Hist) []LatencySnap {
	var q []Quantile
	if n := len(dst); n < cap(dst) {
		q = dst[:n+1][n].Quantiles[:0]
	}
	ls := LatencySnap{Name: name, Class: class, Quantiles: q}
	if h != nil {
		ls.Count = h.Count()
		ls.Sum = h.Sum()
		ls.Mean = h.Mean()
		ls.Overflowed = h.Overflowed()
		for _, qq := range ExportedQuantiles {
			ls.Quantiles = append(ls.Quantiles, Quantile{Q: qq, V: h.Quantile(qq)})
		}
	}
	return append(dst, ls)
}

// hotLinks computes the busiest channels of the window just ended from
// the per-link flit deltas, hottest first (ties by index). The result
// aliases a reused buffer, valid until the next call.
func (c *Collector) hotLinks(p *telemetry.Probe) []health.LinkLoad {
	if len(c.prevFlit) < len(p.Links) {
		c.prevFlit = append(c.prevFlit, make([]int64, len(p.Links)-len(c.prevFlit))...)
	}
	loads := c.loadBuf[:0]
	for i, lp := range p.Links {
		if lp == nil {
			continue
		}
		delta := lp.Flits - c.prevFlit[i]
		c.prevFlit[i] = lp.Flits
		if delta > 0 {
			loads = append(loads, health.LinkLoad{
				Index: lp.Index, From: lp.From, To: lp.To,
				Dir: lp.Dir.String(), Flits: delta,
			})
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Flits != loads[j].Flits {
			return loads[i].Flits > loads[j].Flits
		}
		return loads[i].Index < loads[j].Index
	})
	c.loadBuf = loads
	if len(loads) > c.cfg.HotLinks {
		loads = loads[:c.cfg.HotLinks]
	}
	return loads
}

// sampleRow is the compact per-sample SSE payload.
type sampleRow struct {
	Cycle          int64   `json:"cycle"`
	Healthy        bool    `json:"healthy"`
	Generated      int64   `json:"generated_packets"`
	DeliveredFlits int64   `json:"delivered_flits"`
	Throughput     float64 `json:"throughput_flits_per_cycle"`
	BufOcc         int64   `json:"buf_occ"`
	LinkInFlight   int64   `json:"link_in_flight"`
}

// broadcast renders SSE frames for the sample row and any health
// transitions and fans them out to subscribers without blocking.
func (c *Collector) broadcast(snap *Snapshot, events []health.Event) {
	c.mu.Lock()
	n := len(c.subs)
	c.mu.Unlock()
	if n == 0 {
		return
	}
	var frames [][]byte
	row, err := json.Marshal(sampleRow{
		Cycle:          snap.Cycle,
		Healthy:        snap.Healthy,
		Generated:      snap.Generated,
		DeliveredFlits: snap.DeliveredFlits,
		Throughput:     snap.Throughput,
		BufOcc:         snap.BufOcc,
		LinkInFlight:   snap.LinkInFlight,
	})
	if err == nil {
		frames = append(frames, []byte("event: sample\ndata: "+string(row)+"\n\n"))
	}
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		frames = append(frames, []byte("event: health\ndata: "+string(b)+"\n\n"))
	}
	c.mu.Lock()
	for sub := range c.subs {
		for _, f := range frames {
			select {
			case sub.ch <- f:
			default:
				// Stalled subscriber: drop the frame and count the miss;
				// the publisher (a serial simulation phase) never blocks.
				sub.dropped.Add(1)
			}
		}
	}
	c.mu.Unlock()
}
