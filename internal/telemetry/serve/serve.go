// Package serve is the live observability service: it snapshots the
// telemetry probe of a running network at cycle boundaries and serves the
// copies over an embedded HTTP server — /metrics (Prometheus text
// exposition), /snapshot (full JSON including the k×k heatmap), /healthz
// (online detector verdicts from internal/telemetry/health), and /events
// (SSE stream of health transitions and sampled rows).
//
// Concurrency model: the collector registers one *serial* simulation
// phase (like the clients phase), so under -shards it runs on the
// barrier side of the worker pool — single-threaded with respect to all
// simulator state, and byte-identical for any shard count. Each sample it
// builds an immutable Snapshot by value-copying every counter it reads,
// then publishes it through an atomic pointer; HTTP handlers only ever
// read published snapshots, never simulator state. When serve is not
// attached, no phase is registered and the cycle loop keeps its
// 0 allocs/cycle fast path.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/telemetry/health"
)

// Config parameterizes the collector.
type Config struct {
	// Every is the snapshot interval in cycles (default 256).
	Every int64

	// Health configures the online detectors (zero fields default).
	Health health.Config

	// SeriesTail bounds how many trailing series rows each snapshot
	// carries (default 64; requires the probe's series to be enabled).
	SeriesTail int

	// HotLinks is how many per-window busiest channels to attribute
	// (default 8).
	HotLinks int
}

// DefaultEvery is the default snapshot interval in cycles.
const DefaultEvery = 256

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = DefaultEvery
	}
	if c.SeriesTail <= 0 {
		c.SeriesTail = 64
	}
	if c.HotLinks <= 0 {
		c.HotLinks = 8
	}
	return c
}

// ExportedQuantiles are the latency quantiles every snapshot (and the
// Prometheus summary rendering) carries.
var ExportedQuantiles = []float64{0.5, 0.9, 0.99, 1}

// Quantile is one exported quantile value.
type Quantile struct {
	Q float64 `json:"q"`
	V int64   `json:"v"`
}

// LatencySnap is the copied summary of one latency histogram.
type LatencySnap struct {
	// Name identifies the series: "packet", "network", or "class<k>".
	Name  string     `json:"name"`
	Class int        `json:"class"` // service class; -1 for aggregates
	Count int64      `json:"count"`
	Sum   int64      `json:"sum"`
	Mean  float64    `json:"mean"`
	Quantiles []Quantile `json:"quantiles"`
}

// LatencyFrom copies a histogram's headline figures and the exported
// quantiles. This is the single code path behind both /snapshot and the
// /metrics summary rendering, so the property test that compares exported
// quantiles against Hist.Quantile covers what the endpoints serve.
func LatencyFrom(name string, class int, h *stats.Hist) LatencySnap {
	ls := LatencySnap{Name: name, Class: class}
	if h == nil {
		return ls
	}
	ls.Count = h.Count()
	ls.Sum = h.Sum()
	ls.Mean = h.Mean()
	for _, q := range ExportedQuantiles {
		ls.Quantiles = append(ls.Quantiles, Quantile{Q: q, V: h.Quantile(q)})
	}
	return ls
}

// Snapshot is one published copy of the network's observable state. All
// fields are plain data owned by the snapshot: nothing aliases simulator
// state, so readers need no locks.
type Snapshot struct {
	Cycle int64 `json:"cycle"`

	Healthy bool             `json:"healthy"`
	Health  []health.Verdict `json:"health"`

	Generated        int64   `json:"generated_packets"`
	InjectedPackets  int64   `json:"injected_packets"`
	DeliveredPackets int64   `json:"delivered_packets"`
	DeliveredFlits   int64   `json:"delivered_flits"`
	Throughput       float64 `json:"throughput_flits_per_cycle"`

	BufOcc       int64 `json:"buf_occ"`
	LinkInFlight int64 `json:"link_in_flight"`

	DeadLinks      int   `json:"dead_links"`
	FaultsApplied  int64 `json:"faults_applied"`
	OverUnityLinks int   `json:"over_unity_links"`

	// Checkpointing: the cycle of the newest durable snapshot (-1 when
	// none has been taken), cycles elapsed since it (measured from cycle
	// 0 when none), the configured interval (0 = checkpointing off), and
	// whether the age exceeds twice the interval — the staleness
	// condition that degrades /healthz.
	LastCheckpointCycle int64 `json:"last_checkpoint_cycle"`
	CheckpointAge       int64 `json:"checkpoint_age_cycles"`
	CheckpointEvery     int64 `json:"checkpoint_every,omitempty"`
	CheckpointStale     bool  `json:"checkpoint_stale,omitempty"`

	Latency []LatencySnap `json:"latency"`

	Routers  []telemetry.RouterSnap `json:"routers"`
	Links    []telemetry.LinkSnap   `json:"links"`
	HotLinks []health.LinkLoad      `json:"hot_links,omitempty"`

	// Heatmap is the k×k per-tile mean outgoing duty factor, row y=k-1
	// first (same orientation as the ASCII heatmap).
	Heatmap [][]float64 `json:"heatmap,omitempty"`

	Series []telemetry.SeriesRow `json:"series,omitempty"`
}

// Collector owns the serial snapshot phase and the published snapshot.
type Collector struct {
	n   *network.Network
	cfg Config
	mon *health.Monitor

	pub atomic.Pointer[Snapshot]

	// Serial-phase scratch, reused across samples.
	waitBuf  []health.VCWait
	prevFlit []int64

	mu        sync.Mutex
	subs      map[chan []byte]struct{}
	mirror    io.Writer
	mirrorErr error
}

// AttachCollector registers the snapshot phase on the network's kernel
// and returns the collector. The network must have a telemetry probe (the
// counter fabric the snapshots copy) and must not have started running
// samples yet. The phase is serial, so it composes with any -shards
// setting without gating the simulation back to one shard.
func AttachCollector(n *network.Network, cfg Config) (*Collector, error) {
	if n.Probe() == nil {
		return nil, fmt.Errorf("serve: network has no telemetry probe; enable telemetry to serve it")
	}
	cfg = cfg.withDefaults()
	c := &Collector{
		n:    n,
		cfg:  cfg,
		mon:  health.New(cfg.Health),
		subs: make(map[chan []byte]struct{}),
	}
	n.Kernel().AddPhase("serve", c.phase)
	return c, nil
}

// Config reports the collector's effective (defaulted) configuration.
func (c *Collector) Config() Config { return c.cfg }

// Latest returns the most recently published snapshot (nil before the
// first sample). The snapshot is immutable; callers may hold it as long
// as they like.
func (c *Collector) Latest() *Snapshot { return c.pub.Load() }

// Monitor exposes the health monitor for tests that drive the collector
// synchronously. The monitor is only written by the serial phase; read it
// between Run calls.
func (c *Collector) Monitor() *health.Monitor { return c.mon }

// SetMirror directs a copy of every published snapshot, JSON-encoded one
// per line, to w. The determinism suite compares these byte streams
// across shard counts. Must be set before the simulation runs.
func (c *Collector) SetMirror(w io.Writer) { c.mirror = w }

// MirrorErr reports the first error writing to the mirror, if any.
func (c *Collector) MirrorErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mirrorErr
}

// Subscribe registers an SSE subscriber: a channel that receives
// pre-rendered SSE frames. Slow subscribers miss frames rather than
// stalling the simulation.
func (c *Collector) Subscribe() chan []byte {
	ch := make(chan []byte, 32)
	c.mu.Lock()
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	return ch
}

// Unsubscribe removes a subscriber registered with Subscribe.
func (c *Collector) Unsubscribe(ch chan []byte) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

// phase is the serial snapshot phase body.
func (c *Collector) phase(now sim.Cycle) {
	if int64(now)%c.cfg.Every != 0 {
		return
	}
	c.sample(int64(now))
}

// minWaitAge is the head-of-line age past which the collector reports a
// VC as waiting: old enough for both detectors' thresholds, scaled down
// so attribution has material before the detectors fire.
func (c *Collector) minWaitAge() int64 {
	hc := c.mon.Config()
	min := hc.StarveAge
	if hc.DeadlockWindow < min {
		min = hc.DeadlockWindow
	}
	if min > 4 {
		min /= 2
	}
	return min
}

// sample observes the network (serially, inside the phase), feeds the
// health monitor, and publishes a fresh snapshot.
func (c *Collector) sample(now int64) {
	p := c.n.Probe()
	rec := c.n.Recorder()

	var bufOcc int64
	links := c.n.Links()
	var inFlight int64
	for _, l := range links {
		inFlight += int64(l.InFlight())
	}
	bufOcc = int64(c.n.Occupancy()) - inFlight

	c.waitBuf = c.n.AppendWaitingVCs(now, c.minWaitAge(), c.waitBuf[:0])
	hot := c.hotLinks(p)

	s := health.Sample{
		Cycle:            now,
		GeneratedPackets: rec.Generated,
		EjectedFlits:     p.TotalEjectedFlits(),
		BufOcc:           bufOcc + inFlight,
		Waiting:          c.waitBuf,
		HotLinks:         hot,
		DeadLinks:        p.DeadLinks,
	}
	events := c.mon.Observe(s)

	lastCkpt, haveCkpt := c.n.LastCheckpoint()
	ckptEvery := c.n.CheckpointInterval()
	ckptAge := now
	if haveCkpt {
		ckptAge = now - lastCkpt
	} else {
		lastCkpt = -1
	}
	ckptStale := ckptEvery > 0 && ckptAge > 2*ckptEvery

	snap := &Snapshot{
		Cycle:            now,
		Healthy:          c.mon.Healthy() && !ckptStale,
		Health:           c.mon.Verdicts(),
		Generated:        rec.Generated,
		InjectedPackets:  rec.InjectedPackets,
		DeliveredPackets: rec.DeliveredPackets,
		DeliveredFlits:   rec.DeliveredFlits,
		Throughput:       rec.ThroughputFlitsPerCycle(now),
		BufOcc:           bufOcc,
		LinkInFlight:     inFlight,
		DeadLinks:        p.DeadLinks,
		FaultsApplied:    p.FaultsApplied,
		OverUnityLinks:   p.OverUnityLinks(now),
		Routers:          p.SnapshotRouters(nil),
		Links:            p.SnapshotLinks(nil, now),
		HotLinks:         hot,
		Heatmap:          p.HeatmapGrid(now),
		Series:           p.SnapshotSeriesTail(nil, c.cfg.SeriesTail),

		LastCheckpointCycle: lastCkpt,
		CheckpointAge:       ckptAge,
		CheckpointEvery:     ckptEvery,
		CheckpointStale:     ckptStale,
	}
	if ckptStale {
		// Attribute the degradation alongside the detector verdicts so
		// /healthz readers see why the service reports unhealthy.
		detail := fmt.Sprintf("last checkpoint at cycle %d is %d cycles old (> 2x interval %d)",
			lastCkpt, ckptAge, ckptEvery)
		since := lastCkpt + 2*ckptEvery
		if !haveCkpt {
			detail = fmt.Sprintf("no checkpoint after %d cycles (> 2x interval %d)", ckptAge, ckptEvery)
			since = 2 * ckptEvery
		}
		snap.Health = append(append([]health.Verdict{}, snap.Health...), health.Verdict{
			Detector: "checkpoint",
			Healthy:  false,
			Since:    since,
			Detail:   detail,
		})
	}
	snap.Latency = append(snap.Latency,
		LatencyFrom("packet", -1, rec.PacketLatency),
		LatencyFrom("network", -1, rec.NetworkLatency))
	for _, class := range rec.Classes() {
		snap.Latency = append(snap.Latency,
			LatencyFrom(fmt.Sprintf("class%d", class), class, rec.ClassLatency(class)))
	}
	c.pub.Store(snap)

	if c.mirror != nil {
		if err := json.NewEncoder(c.mirror).Encode(snap); err != nil {
			c.mu.Lock()
			if c.mirrorErr == nil {
				c.mirrorErr = err
			}
			c.mu.Unlock()
		}
	}
	c.broadcast(snap, events)
}

// hotLinks computes the busiest channels of the window just ended from
// the per-link flit deltas, hottest first (ties by index).
func (c *Collector) hotLinks(p *telemetry.Probe) []health.LinkLoad {
	if len(c.prevFlit) < len(p.Links) {
		c.prevFlit = append(c.prevFlit, make([]int64, len(p.Links)-len(c.prevFlit))...)
	}
	var loads []health.LinkLoad
	for i, lp := range p.Links {
		if lp == nil {
			continue
		}
		delta := lp.Flits - c.prevFlit[i]
		c.prevFlit[i] = lp.Flits
		if delta > 0 {
			loads = append(loads, health.LinkLoad{
				Index: lp.Index, From: lp.From, To: lp.To,
				Dir: lp.Dir.String(), Flits: delta,
			})
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Flits != loads[j].Flits {
			return loads[i].Flits > loads[j].Flits
		}
		return loads[i].Index < loads[j].Index
	})
	if len(loads) > c.cfg.HotLinks {
		loads = loads[:c.cfg.HotLinks]
	}
	return loads
}

// sampleRow is the compact per-sample SSE payload.
type sampleRow struct {
	Cycle          int64   `json:"cycle"`
	Healthy        bool    `json:"healthy"`
	Generated      int64   `json:"generated_packets"`
	DeliveredFlits int64   `json:"delivered_flits"`
	Throughput     float64 `json:"throughput_flits_per_cycle"`
	BufOcc         int64   `json:"buf_occ"`
	LinkInFlight   int64   `json:"link_in_flight"`
}

// broadcast renders SSE frames for the sample row and any health
// transitions and fans them out to subscribers without blocking.
func (c *Collector) broadcast(snap *Snapshot, events []health.Event) {
	c.mu.Lock()
	n := len(c.subs)
	c.mu.Unlock()
	if n == 0 {
		return
	}
	var frames [][]byte
	row, err := json.Marshal(sampleRow{
		Cycle:          snap.Cycle,
		Healthy:        snap.Healthy,
		Generated:      snap.Generated,
		DeliveredFlits: snap.DeliveredFlits,
		Throughput:     snap.Throughput,
		BufOcc:         snap.BufOcc,
		LinkInFlight:   snap.LinkInFlight,
	})
	if err == nil {
		frames = append(frames, []byte("event: sample\ndata: "+string(row)+"\n\n"))
	}
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		frames = append(frames, []byte("event: health\ndata: "+string(b)+"\n\n"))
	}
	c.mu.Lock()
	for ch := range c.subs {
		for _, f := range frames {
			select {
			case ch <- f:
			default: // slow subscriber: drop the frame
			}
		}
	}
	c.mu.Unlock()
}
