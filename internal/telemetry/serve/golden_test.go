package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/route"
	"repro/internal/telemetry/health"
)

// These are the golden detector scenarios: deliberately broken networks
// where a detector must fire with correct attribution, and a healthy
// network where every detector must stay silent.

func deadlockedCollector(t *testing.T) (*Collector, func() *http.Response, func()) {
	t.Helper()
	// Finite traffic, then wedge every input controller of tile 5 before
	// the flits drain: whatever is buffered there (and whatever waits on
	// its credits upstream) can never move, and once the rest of the
	// network empties, ejections cease with occupancy pinned above zero.
	n := newServedNet(t, 0.3, 300, 5)
	col, err := AttachCollector(n, Config{
		Every:  64,
		Health: health.Config{DeadlockWindow: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := StartWith(col, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.Run(100)
	for _, d := range []route.Dir{route.North, route.East, route.South, route.West} {
		n.SetPortStall(5, d, true)
	}
	n.Run(3000)
	if n.Occupancy() == 0 {
		t.Fatal("network drained despite the stalled router; scenario is vacuous")
	}
	get := func() *http.Response {
		resp, err := http.Get("http://" + srv.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	return col, get, func() { srv.Close() }
}

func TestGoldenDeadlockFiresWithAttribution(t *testing.T) {
	col, _, stop := deadlockedCollector(t)
	defer stop()
	mon := col.Monitor()
	if mon.Healthy() {
		t.Fatal("monitor healthy despite a wedged router and frozen occupancy")
	}
	var dl health.Verdict
	for _, v := range mon.Verdicts() {
		if v.Detector == health.DetectorDeadlock {
			dl = v
		}
	}
	if dl.Healthy {
		t.Fatal("deadlock detector did not fire")
	}
	if !strings.Contains(dl.Detail, "t5:") {
		t.Fatalf("deadlock attribution does not name tile 5: %q", dl.Detail)
	}
	if !strings.Contains(dl.Detail, "stalled port") {
		t.Fatalf("deadlock attribution does not name the stalled port fault: %q", dl.Detail)
	}
	snap := col.Latest()
	if snap == nil || snap.Healthy {
		t.Fatal("published snapshot does not reflect the deadlock")
	}
}

func TestGoldenDeadlockHealthzReturns503(t *testing.T) {
	_, get, stop := deadlockedCollector(t)
	defer stop()
	resp := get()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz on a deadlocked network: %d, want 503", resp.StatusCode)
	}
	var body struct {
		Status   string `json:"status"`
		Verdicts []struct {
			Detector string `json:"detector"`
			Healthy  bool   `json:"healthy"`
			Detail   string `json:"detail"`
		} `json:"verdicts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "unhealthy" {
		t.Fatalf("/healthz status %q, want unhealthy", body.Status)
	}
	found := false
	for _, v := range body.Verdicts {
		if v.Detector == "deadlock" && !v.Healthy && strings.Contains(v.Detail, "t5:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("/healthz verdicts lack the attributed deadlock: %+v", body.Verdicts)
	}
}

func TestGoldenStarvationFiresWhileOthersProgress(t *testing.T) {
	// Traffic keeps flowing, but tile 5's input controllers stall: its
	// buffered flits age past the watermark while the rest of the network
	// keeps delivering, so starvation (not deadlock) is the right call.
	n := newServedNet(t, 0.25, 0, 6)
	col, err := AttachCollector(n, Config{
		Every: 64,
		// The deadlock window is kept far out so any misattribution of
		// this scenario as a deadlock would fail the test below.
		Health: health.Config{StarveAge: 256, DeadlockWindow: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(200)
	if n.Router(5).Occupancy() == 0 {
		t.Fatal("router 5 empty at stall time; scenario is vacuous")
	}
	for _, d := range []route.Dir{route.North, route.East, route.South, route.West} {
		n.SetPortStall(5, d, true)
	}
	n.Run(1500)

	mon := col.Monitor()
	var st, dl health.Verdict
	for _, v := range mon.Verdicts() {
		switch v.Detector {
		case health.DetectorStarvation:
			st = v
		case health.DetectorDeadlock:
			dl = v
		}
	}
	if st.Healthy {
		t.Fatal("starvation detector did not fire")
	}
	if !strings.Contains(st.Detail, "t5:") {
		t.Fatalf("starvation attribution does not name tile 5: %q", st.Detail)
	}
	if !dl.Healthy {
		t.Fatalf("deadlock fired on a progressing network: %q", dl.Detail)
	}
}

func TestGoldenCongestionCollapsePastSaturation(t *testing.T) {
	// Offered load never changes, but capacity is progressively removed
	// from the center of the die: delivered throughput falls window after
	// window while the generators keep offering — the post-saturation
	// collapse signature.
	n := newServedNet(t, 0.5, 0, 7)
	col, err := AttachCollector(n, Config{
		Every: 256,
		Health: health.Config{
			CollapseWindows:   2,
			CollapseTolerance: 0.05,
			// Keep the other detectors out of the way; this scenario
			// wedges routers, which they would (correctly) also flag.
			DeadlockWindow: 1 << 30,
			StarveAge:      1 << 30,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dirs := []route.Dir{route.North, route.East, route.South, route.West}
	stall := func(tile int) {
		for _, d := range dirs {
			n.SetPortStall(tile, d, true)
		}
	}
	n.Run(512) // healthy baseline windows
	stall(5)
	n.Run(256) // sample at 512 still covers the pre-stall window
	stall(6)
	n.Run(256) // sample at 768: first post-stall window, fall #1
	n.Run(256) // sample at 1024: both stalls biting, fall #2 -> fire

	var cg health.Verdict
	for _, v := range col.Monitor().Verdicts() {
		if v.Detector == health.DetectorCongestion {
			cg = v
		}
	}
	if cg.Healthy {
		t.Fatal("congestion-collapse detector did not fire")
	}
	if !strings.Contains(cg.Detail, "delivered rate fell") {
		t.Fatalf("collapse detail missing the rate evidence: %q", cg.Detail)
	}
	if !strings.Contains(cg.Detail, "hottest links") {
		t.Fatalf("collapse detail does not attribute hot links: %q", cg.Detail)
	}
}

func TestGoldenHealthyRunStaysSilent(t *testing.T) {
	// A comfortable load on a fault-free network: every detector must
	// hold healthy across the whole run.
	n := newServedNet(t, 0.2, 0, 8)
	col, err := AttachCollector(n, Config{Every: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.Run(512)
		if !col.Monitor().Healthy() {
			t.Fatalf("detector fired on a healthy run at cycle ~%d: %+v",
				(i+1)*512, col.Monitor().Verdicts())
		}
	}
	snap := col.Latest()
	if snap == nil || !snap.Healthy {
		t.Fatalf("healthy run published unhealthy snapshot: %+v", snap)
	}
	for _, v := range snap.Health {
		if !v.Healthy || v.Detail != "" {
			t.Fatalf("healthy run carries a verdict detail: %+v", v)
		}
	}
	if snap.OverUnityLinks != 0 {
		t.Fatalf("healthy run reports %d over-unity links", snap.OverUnityLinks)
	}
}
