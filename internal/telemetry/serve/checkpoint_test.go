package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestCheckpointStalenessDegradesHealthz drives a served network with
// checkpointing configured: while snapshots land on schedule /healthz is
// 200, once the age exceeds twice the interval it flips to 503 with a
// "checkpoint" verdict attributing the staleness, and a fresh snapshot
// restores 200.
func TestCheckpointStalenessDegradesHealthz(t *testing.T) {
	n := newServedNet(t, 0.1, 1<<30, 3)
	n.NoteCheckpointInterval(100)
	col, err := AttachCollector(n, Config{Every: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := StartWith(col, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	healthz := func() (int, healthzBody) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body healthzBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Fresh checkpoints: healthy.
	n.NoteCheckpoint(0)
	n.Run(129) // samples at 0, 64, 128; age 128 <= 200
	if code, body := healthz(); code != http.StatusOK {
		t.Fatalf("healthz = %d with checkpoint age %d, want 200", code, body.CheckpointAge)
	}

	// No further checkpoints: age crosses 2x interval and degrades.
	n.Run(200) // latest sample at cycle 320, age 320 > 200
	code, body := healthz()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d with checkpoint age %d, want 503", code, body.CheckpointAge)
	}
	if body.LastCheckpointCycle != 0 || body.CheckpointAge <= 200 {
		t.Fatalf("healthz reported last=%d age=%d, want last=0 age>200",
			body.LastCheckpointCycle, body.CheckpointAge)
	}
	found := false
	for _, v := range body.Verdicts {
		if v.Detector == "checkpoint" {
			found = true
			if v.Healthy {
				t.Fatal("checkpoint verdict reported healthy while stale")
			}
			if v.Detail == "" {
				t.Fatal("checkpoint verdict has no attribution detail")
			}
		}
	}
	if !found {
		t.Fatalf("no checkpoint verdict among %d verdicts", len(body.Verdicts))
	}

	// A fresh checkpoint clears the condition at the next sample.
	n.NoteCheckpoint(n.Kernel().Now())
	n.Run(64)
	if code, body := healthz(); code != http.StatusOK {
		t.Fatalf("healthz = %d after a fresh checkpoint (age %d), want 200", code, body.CheckpointAge)
	}
}

// TestSnapshotReportsCheckpointAge checks the /snapshot JSON carries the
// checkpoint fields and that an unconfigured network never reports stale.
func TestSnapshotReportsCheckpointAge(t *testing.T) {
	n := newServedNet(t, 0.1, 1<<30, 4)
	col, err := AttachCollector(n, Config{Every: 64})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(300)
	snap := col.Latest()
	if snap == nil {
		t.Fatal("no snapshot published")
	}
	if snap.LastCheckpointCycle != -1 {
		t.Fatalf("LastCheckpointCycle = %d without checkpointing, want -1", snap.LastCheckpointCycle)
	}
	if snap.CheckpointStale {
		t.Fatal("snapshot stale with checkpointing off")
	}
	n.NoteCheckpointInterval(128)
	n.NoteCheckpoint(256)
	n.Run(64)
	snap = col.Latest()
	if snap.LastCheckpointCycle != 256 {
		t.Fatalf("LastCheckpointCycle = %d, want 256", snap.LastCheckpointCycle)
	}
	if want := snap.Cycle - 256; snap.CheckpointAge != want {
		t.Fatalf("CheckpointAge = %d at cycle %d, want %d", snap.CheckpointAge, snap.Cycle, want)
	}
	if snap.CheckpointStale {
		t.Fatalf("stale with age %d <= 2x interval 128", snap.CheckpointAge)
	}
}
