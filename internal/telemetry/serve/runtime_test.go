package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/artifact"
)

// artifactGet exercises the process-global artifact cache with a
// throwaway key.
func artifactGet(key string) (any, error) {
	return artifact.Get(key, func() (any, error) { return struct{}{}, nil })
}

// TestWriteRuntimePromParsesStrict feeds the Go-runtime self-monitoring
// rows through the same strict scraper that gates the simulation rows: a
// formatting slip (Inf pause quantile, unquoted build label) must fail
// here, not in a dashboard.
func TestWriteRuntimePromParsesStrict(t *testing.T) {
	var sb strings.Builder
	if err := WriteRuntimeProm(&sb); err != nil {
		t.Fatal(err)
	}
	ms, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("runtime rows do not parse strictly: %v\n%s", err, sb.String())
	}
	byName := map[string][]Metric{}
	for _, m := range ms {
		byName[m.Name] = append(byName[m.Name], m)
	}
	for _, name := range []string{
		"noc_go_goroutines",
		"noc_go_heap_objects_bytes",
		"noc_go_memory_total_bytes",
		"noc_go_gc_cycles_total",
		"noc_go_gc_pause_seconds_count",
		"noc_build_info",
	} {
		if len(byName[name]) == 0 {
			t.Errorf("runtime exposition lacks %s", name)
		}
	}
	if got := byName["noc_go_goroutines"]; len(got) > 0 && got[0].Value < 1 {
		t.Errorf("noc_go_goroutines = %v; the test itself is a goroutine", got[0].Value)
	}
	if got := byName["noc_go_heap_objects_bytes"]; len(got) > 0 && got[0].Value <= 0 {
		t.Errorf("noc_go_heap_objects_bytes = %v", got[0].Value)
	}
	// The build-info gauge is the constant-1, labels-carry-the-data idiom.
	if got := byName["noc_build_info"]; len(got) > 0 {
		bi := got[0]
		if bi.Value != 1 {
			t.Errorf("noc_build_info = %v, want the constant 1", bi.Value)
		}
		if bi.Labels["go_version"] == "" || bi.Labels["module"] == "" {
			t.Errorf("noc_build_info labels incomplete: %v", bi.Labels)
		}
	}
	// Pause quantiles must be finite and ordered labels present.
	quantiles := 0
	for _, m := range byName["noc_go_gc_pause_seconds"] {
		if m.Labels["quantile"] == "" {
			t.Errorf("pause summary row lacks a quantile label: %+v", m)
		}
		if m.Value < 0 {
			t.Errorf("negative GC pause %v", m.Value)
		}
		quantiles++
	}
	if c := byName["noc_go_gc_pause_seconds_count"]; len(c) > 0 && c[0].Value > 0 && quantiles == 0 {
		t.Error("GC has run but no pause quantiles were rendered")
	}
}

// TestWriteArtifactPromParsesStrict renders the artifact-cache rows
// through the strict scraper and checks the counters track the cache:
// a Get that builds is a miss, a repeat is a hit, and the entry gauge
// counts residents.
func TestWriteArtifactPromParsesStrict(t *testing.T) {
	for i := 0; i < 2; i++ { // first Get misses, second hits
		if _, err := artifactGet("serve-test-key"); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := WriteArtifactProm(&sb); err != nil {
		t.Fatal(err)
	}
	ms, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("artifact rows do not parse strictly: %v\n%s", err, sb.String())
	}
	byName := map[string]float64{}
	for _, m := range ms {
		byName[m.Name] = m.Value
	}
	if byName["noc_artifact_cache_misses_total"] < 1 {
		t.Errorf("misses = %v after a building Get", byName["noc_artifact_cache_misses_total"])
	}
	if byName["noc_artifact_cache_hits_total"] < 1 {
		t.Errorf("hits = %v after a repeat Get", byName["noc_artifact_cache_hits_total"])
	}
	if byName["noc_artifact_cache_entries"] < 1 {
		t.Errorf("entries = %v with a resident artifact", byName["noc_artifact_cache_entries"])
	}
}

// TestMetricsEndpointIncludesRuntimeRows scrapes a live /metrics and
// checks the process rows ride along with the simulation rows on the same
// strict parse — the whole response is one valid exposition.
func TestMetricsEndpointIncludesRuntimeRows(t *testing.T) {
	n := newServedNet(t, 0.3, 0, 11)
	srv, err := Start(n, Config{Every: 64}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	n.Run(128)

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ms, err := ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics with runtime rows does not parse: %v", err)
	}
	sawSim, sawRuntime, sawBuild, sawArtifact := false, false, false, false
	for _, m := range ms {
		switch m.Name {
		case "noc_cycle":
			sawSim = true
		case "noc_go_goroutines":
			sawRuntime = true
		case "noc_build_info":
			sawBuild = true
		case "noc_artifact_cache_entries":
			sawArtifact = true
		}
	}
	if !sawSim || !sawRuntime || !sawBuild || !sawArtifact {
		t.Fatalf("scrape incomplete: sim=%v runtime=%v build=%v artifact=%v", sawSim, sawRuntime, sawBuild, sawArtifact)
	}
}
