package serve

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): network totals, per-detector health gauges, per-router
// and per-link counters, and the latency histograms as summaries whose
// quantile values come from the same LatencyFrom path /snapshot serves.
func WriteProm(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)

	gauge := func(name, help string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	gauge("noc_cycle", "Current simulation cycle.")
	fmt.Fprintf(bw, "noc_cycle %d\n", s.Cycle)

	gauge("noc_healthy", "1 when every online detector is healthy.")
	fmt.Fprintf(bw, "noc_healthy %d\n", b2i(s.Healthy))
	gauge("noc_health", "Per-detector health (1 healthy, 0 tripped).")
	for _, v := range s.Health {
		fmt.Fprintf(bw, "noc_health{detector=%q} %d\n", v.Detector, b2i(v.Healthy))
	}

	gauge("noc_last_checkpoint_cycle", "Cycle of the newest durable checkpoint (-1 when none).")
	fmt.Fprintf(bw, "noc_last_checkpoint_cycle %d\n", s.LastCheckpointCycle)
	gauge("noc_checkpoint_age_cycles", "Cycles since the newest durable checkpoint.")
	fmt.Fprintf(bw, "noc_checkpoint_age_cycles %d\n", s.CheckpointAge)

	counter("noc_generated_packets_total", "Packets created by clients (offered load).")
	fmt.Fprintf(bw, "noc_generated_packets_total %d\n", s.Generated)
	counter("noc_injected_packets_total", "Packets whose head flit entered the network.")
	fmt.Fprintf(bw, "noc_injected_packets_total %d\n", s.InjectedPackets)
	counter("noc_delivered_packets_total", "Packets fully delivered to tiles.")
	fmt.Fprintf(bw, "noc_delivered_packets_total %d\n", s.DeliveredPackets)
	counter("noc_delivered_flits_total", "Flits of delivered packets.")
	fmt.Fprintf(bw, "noc_delivered_flits_total %d\n", s.DeliveredFlits)
	gauge("noc_throughput_flits_per_cycle", "Measured delivered flits per cycle.")
	fmt.Fprintf(bw, "noc_throughput_flits_per_cycle %s\n", f64(s.Throughput))

	gauge("noc_buffered_flits", "Flits buffered in routers at the snapshot instant.")
	fmt.Fprintf(bw, "noc_buffered_flits %d\n", s.BufOcc)
	gauge("noc_link_in_flight_flits", "Flits on the wires at the snapshot instant.")
	fmt.Fprintf(bw, "noc_link_in_flight_flits %d\n", s.LinkInFlight)

	counter("noc_route_table_hits_total", "Route lookups served from the shared route table or memo cache.")
	fmt.Fprintf(bw, "noc_route_table_hits_total %d\n", s.RouteTableHits)
	counter("noc_route_table_misses_total", "Route lookups that ran the full route computation.")
	fmt.Fprintf(bw, "noc_route_table_misses_total %d\n", s.RouteTableMisses)

	gauge("noc_dead_links", "Channels declared dead by the watchdogs.")
	fmt.Fprintf(bw, "noc_dead_links %d\n", s.DeadLinks)
	counter("noc_faults_applied_total", "Fault-injector events that took effect.")
	fmt.Fprintf(bw, "noc_faults_applied_total %d\n", s.FaultsApplied)
	gauge("noc_over_unity_links", "Channels whose duty factor had to be clamped at 1.0 (accounting bug signal).")
	fmt.Fprintf(bw, "noc_over_unity_links %d\n", s.OverUnityLinks)

	type rc struct {
		name, help string
		get        func(r rsnapAlias) int64
	}
	routerCounters := []rc{
		{"noc_router_routed_total", "Route-field pops (one per packet per hop).", func(r rsnapAlias) int64 { return r.Routed }},
		{"noc_router_switch_moves_total", "Flits across the crossbar.", func(r rsnapAlias) int64 { return r.SwitchMoves }},
		{"noc_router_bypass_moves_total", "Reserved-VC flits through the bypass.", func(r rsnapAlias) int64 { return r.BypassMoves }},
		{"noc_router_arb_losses_total", "Switch requests that lost arbitration.", func(r rsnapAlias) int64 { return r.ArbLosses }},
		{"noc_router_credit_stalls_total", "Waits blocked on downstream credits/VCs.", func(r rsnapAlias) int64 { return r.CreditStalls }},
		{"noc_router_stage_stalls_total", "Waits blocked on an occupied staging buffer.", func(r rsnapAlias) int64 { return r.StageStalls }},
		{"noc_router_res_hits_total", "Reserved slots that carried their flow's flit.", func(r rsnapAlias) int64 { return r.ResHits }},
		{"noc_router_res_misses_total", "Reserved slots that went unclaimed.", func(r rsnapAlias) int64 { return r.ResMisses }},
		{"noc_router_injected_flits_total", "Flits accepted from the tile's injection port.", func(r rsnapAlias) int64 { return r.InjectedFlits }},
		{"noc_router_ejected_flits_total", "Flits delivered through the tile's output port.", func(r rsnapAlias) int64 { return r.EjectedFlits }},
		{"noc_router_delivered_flits_total", "Flits of fully reassembled packets.", func(r rsnapAlias) int64 { return r.DeliveredFlits }},
		{"noc_router_delivered_packets_total", "Fully reassembled packets.", func(r rsnapAlias) int64 { return r.DeliveredPackets }},
		{"noc_router_aborted_packets_total", "Partial packets discarded on abort tails.", func(r rsnapAlias) int64 { return r.AbortedPackets }},
	}
	for _, m := range routerCounters {
		counter(m.name, m.help)
		for _, r := range s.Routers {
			fmt.Fprintf(bw, "%s{router=\"%d\"} %d\n", m.name, r.ID, m.get(r))
		}
	}
	gauge("noc_router_mean_buf_occ", "Mean buffered flits across series samples.")
	for _, r := range s.Routers {
		fmt.Fprintf(bw, "noc_router_mean_buf_occ{router=\"%d\"} %s\n", r.ID, f64(r.MeanBufOcc))
	}

	counter("noc_link_flits_total", "Flits that entered the channel's wires.")
	for _, l := range s.Links {
		fmt.Fprintf(bw, "noc_link_flits_total%s %d\n", linkLabels(l.Index, l.From, l.To, l.Dir), l.Flits)
	}
	counter("noc_link_head_flits_total", "Head flits on the channel.")
	for _, l := range s.Links {
		fmt.Fprintf(bw, "noc_link_head_flits_total%s %d\n", linkLabels(l.Index, l.From, l.To, l.Dir), l.HeadFlits)
	}
	counter("noc_link_credits_total", "Credits returned upstream over the channel.")
	for _, l := range s.Links {
		fmt.Fprintf(bw, "noc_link_credits_total%s %d\n", linkLabels(l.Index, l.From, l.To, l.Dir), l.Credits)
	}
	gauge("noc_link_util", "Channel duty factor over the run so far (clamped at 1).")
	for _, l := range s.Links {
		fmt.Fprintf(bw, "noc_link_util%s %s\n", linkLabels(l.Index, l.From, l.To, l.Dir), f64(l.Util))
	}
	gauge("noc_link_dead", "1 when the watchdog declared the channel dead.")
	for _, l := range s.Links {
		fmt.Fprintf(bw, "noc_link_dead%s %d\n", linkLabels(l.Index, l.From, l.To, l.Dir), b2i(l.DeadAt >= 0))
	}

	fmt.Fprintf(bw, "# HELP noc_latency_cycles Latency in cycles, by series and quantile.\n# TYPE noc_latency_cycles summary\n")
	for _, ls := range s.Latency {
		for _, q := range ls.Quantiles {
			fmt.Fprintf(bw, "noc_latency_cycles{series=%q,quantile=%q} %d\n", ls.Name, f64(q.Q), q.V)
		}
		fmt.Fprintf(bw, "noc_latency_cycles_sum{series=%q} %d\n", ls.Name, ls.Sum)
		fmt.Fprintf(bw, "noc_latency_cycles_count{series=%q} %d\n", ls.Name, ls.Count)
	}
	gauge("noc_latency_overflowed", "1 when the series' samples escaped the histogram's exact bucket range.")
	for _, ls := range s.Latency {
		fmt.Fprintf(bw, "noc_latency_overflowed{series=%q} %d\n", ls.Name, b2i(ls.Overflowed))
	}

	// Per-flow observatory rows. Cardinality is bounded by the
	// observatory's MaxFlows top-by-count selection, and the flow set can
	// rotate between scrapes, so every row is a gauge.
	if len(s.Flows) > 0 {
		fmt.Fprintf(bw, "# HELP noc_flow_latency_cycles Per-flow end-to-end latency in cycles (log2-bucket quantiles).\n# TYPE noc_flow_latency_cycles summary\n")
		for _, fs := range s.Flows {
			sum := fs.QueueCycles + fs.PipelineCycles + fs.SerializationCycles + fs.ContentionCycles
			fmt.Fprintf(bw, "noc_flow_latency_cycles{flow=%q,quantile=\"0.5\"} %d\n", fs.Flow, fs.P50)
			fmt.Fprintf(bw, "noc_flow_latency_cycles{flow=%q,quantile=\"0.99\"} %d\n", fs.Flow, fs.P99)
			fmt.Fprintf(bw, "noc_flow_latency_cycles{flow=%q,quantile=\"1\"} %d\n", fs.Flow, fs.MaxCycles)
			fmt.Fprintf(bw, "noc_flow_latency_cycles_sum{flow=%q} %d\n", fs.Flow, sum)
			fmt.Fprintf(bw, "noc_flow_latency_cycles_count{flow=%q} %d\n", fs.Flow, fs.Count)
		}
		gauge("noc_flow_latency_overflowed", "1 when the flow saw latencies past the histogram's exact range.")
		for _, fs := range s.Flows {
			fmt.Fprintf(bw, "noc_flow_latency_overflowed{flow=%q} %d\n", fs.Flow, b2i(fs.Overflowed))
		}
		gauge("noc_flow_component_cycles", "Per-flow cumulative latency decomposition by cause; causes sum to the flow's total end-to-end cycles (contention is a signed residual).")
		for _, fs := range s.Flows {
			fmt.Fprintf(bw, "noc_flow_component_cycles{flow=%q,cause=\"queue\"} %d\n", fs.Flow, fs.QueueCycles)
			fmt.Fprintf(bw, "noc_flow_component_cycles{flow=%q,cause=\"pipeline\"} %d\n", fs.Flow, fs.PipelineCycles)
			fmt.Fprintf(bw, "noc_flow_component_cycles{flow=%q,cause=\"serialization\"} %d\n", fs.Flow, fs.SerializationCycles)
			fmt.Fprintf(bw, "noc_flow_component_cycles{flow=%q,cause=\"contention\"} %d\n", fs.Flow, fs.ContentionCycles)
		}
		gauge("noc_flow_zero_load_cycles", "Per-flow mean analytical zero-load latency T0 = H*t_r + L/b.")
		for _, fs := range s.Flows {
			fmt.Fprintf(bw, "noc_flow_zero_load_cycles{flow=%q} %s\n", fs.Flow, f64(fs.ZeroLoadCycles))
		}
		gauge("noc_flow_contention_factor", "Per-flow live contention factor T/T0 (mean network latency over zero-load).")
		for _, fs := range s.Flows {
			fmt.Fprintf(bw, "noc_flow_contention_factor{flow=%q} %s\n", fs.Flow, f64(fs.ContentionFactor))
		}
		gauge("noc_flow_saturated", "1 when the flow's contention factor crossed the saturation threshold.")
		for _, fs := range s.Flows {
			fmt.Fprintf(bw, "noc_flow_saturated{flow=%q} %d\n", fs.Flow, b2i(fs.Saturated))
		}
		gauge("noc_flow_mean_hops", "Per-flow mean hop count H.")
		for _, fs := range s.Flows {
			fmt.Fprintf(bw, "noc_flow_mean_hops{flow=%q} %s\n", fs.Flow, f64(fs.MeanHops))
		}
	}
	if len(s.SLO) > 0 {
		gauge("noc_slo_burning", "1 for each flow-objective pair currently burning its error budget.")
		for _, row := range s.SLO {
			fmt.Fprintf(bw, "noc_slo_burning{flow=%q,objective=%q} 1\n", row.Flow, row.Objective)
		}
		gauge("noc_slo_burn_rate", "Error-budget burn-rate multiple per burning flow-objective pair and window.")
		for _, row := range s.SLO {
			fmt.Fprintf(bw, "noc_slo_burn_rate{flow=%q,objective=%q,window=\"short\"} %s\n", row.Flow, row.Objective, f64(row.BurnShort))
			fmt.Fprintf(bw, "noc_slo_burn_rate{flow=%q,objective=%q,window=\"long\"} %s\n", row.Flow, row.Objective, f64(row.BurnLong))
		}
		gauge("noc_slo_bad_packets", "Cumulative packets over the objective's target per burning pair.")
		for _, row := range s.SLO {
			fmt.Fprintf(bw, "noc_slo_bad_packets{flow=%q,objective=%q} %d\n", row.Flow, row.Objective, row.Bad)
		}
	}
	return bw.Flush()
}

// rsnapAlias keeps the router-counter table's closure signatures short.
type rsnapAlias = telemetry.RouterSnap

func linkLabels(index, from, to int, dir string) string {
	return fmt.Sprintf("{link=\"%d\",from=\"%d\",to=\"%d\",dir=%q}", index, from, to, dir)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Metric is one parsed Prometheus sample line.
type Metric struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the metric's identity as name{k="v",...} with labels in
// sorted order, for test lookups.
func (m Metric) Key() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var sb strings.Builder
	sb.WriteString(m.Name)
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, m.Labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ParseText is a strict scraper for the Prometheus text exposition
// format, used by the serve tests and the CI smoke test. It validates
// comment directives and sample-line syntax, requires every sample's
// metric family to carry both a HELP and a TYPE directive (summary and
// histogram samples resolve their _sum/_count/_bucket suffixes to the
// family name first), and returns every sample. A malformed line is an
// error, not a skip — the point is to prove the endpoint's output
// parses.
func ParseText(r io.Reader) ([]Metric, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Metric
	types := map[string]string{}
	helps := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment directive %q", lineNo, line)
			}
			if fields[1] == "HELP" {
				if len(fields) != 4 || strings.TrimSpace(fields[3]) == "" {
					return nil, fmt.Errorf("line %d: HELP directive with no help text %q", lineNo, line)
				}
				helps[fields[2]] = true
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE directive %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		m, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := familyName(m.Name, types)
		if types[family] == "" {
			return nil, fmt.Errorf("line %d: metric %s has no TYPE directive", lineNo, m.Name)
		}
		if !helps[family] {
			return nil, fmt.Errorf("line %d: metric %s has no HELP directive", lineNo, m.Name)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no samples in exposition")
	}
	return out, nil
}

// familyName resolves a sample name to its metric family: summary
// samples may carry _sum/_count suffixes (and histogram samples
// _bucket too) on top of the family name the directives annotate.
func familyName(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		switch types[base] {
		case "summary":
			if suffix != "_bucket" {
				return base
			}
		case "histogram":
			return base
		}
	}
	return name
}

func parseSample(line string) (Metric, error) {
	m := Metric{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		m.Name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return m, fmt.Errorf("unterminated label set in %q", line)
		}
		labels := rest[brace+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
		for _, pair := range splitLabels(labels) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return m, fmt.Errorf("malformed label %q", pair)
			}
			key := pair[:eq]
			val := pair[eq+1:]
			unq, err := strconv.Unquote(val)
			if err != nil {
				return m, fmt.Errorf("label value %s not quoted: %v", val, err)
			}
			m.Labels[key] = unq
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return m, fmt.Errorf("no value in %q", line)
		}
		m.Name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if m.Name == "" || !validMetricName(m.Name) {
		return m, fmt.Errorf("invalid metric name in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return m, fmt.Errorf("invalid value %q: %v", rest, err)
	}
	m.Value = v
	return m, nil
}

// splitLabels splits k1="v1",k2="v2" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, strings.TrimSpace(s[start:]))
	}
	return out
}

func validMetricName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
