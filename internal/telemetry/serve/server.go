package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/network"
)

// Server is the embedded HTTP front of a Collector: it binds a listener,
// serves the endpoints, and never touches simulator state (handlers read
// only published snapshots, or hand off to the flight recorder's own
// cycle-boundary machinery).
type Server struct {
	col *Collector
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
	dumper DumpTrigger
}

// DumpTrigger is what /debug/flightrec drives: an attached flight
// recorder that can freeze its window into a dump file on demand. The
// interface lives here so the recorder package can depend on serve-free
// layers while the server stays recorder-agnostic.
type DumpTrigger interface {
	// TriggerDump writes a dump for the given reason and returns its path.
	TriggerDump(reason string) (string, error)
}

// SetDumper attaches (or, with nil, detaches) the flight recorder behind
// /debug/flightrec.
func (s *Server) SetDumper(d DumpTrigger) {
	s.mu.Lock()
	s.dumper = d
	s.mu.Unlock()
}

// sseHeartbeat is the /events keep-alive comment interval; a variable so
// the stalled-reader test can shrink it.
var sseHeartbeat = 15 * time.Second

// Start attaches a collector to the network and serves it on addr
// (":8080", "127.0.0.1:0", ...). The listener is bound before Start
// returns, so Addr() reports the resolved ephemeral port immediately.
func Start(n *network.Network, cfg Config, addr string) (*Server, error) {
	col, err := AttachCollector(n, cfg)
	if err != nil {
		return nil, err
	}
	return StartWith(col, addr)
}

// StartWith serves an existing collector (for tests that need the
// collector before the listener).
func StartWith(col *Collector, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{col: col, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/flightrec", s.handleFlightrec)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Collector exposes the server's collector.
func (s *Server) Collector() *Collector { return s.col }

// Addr reports the bound listen address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the HTTP server down. The collector's phase stays
// registered (it publishes to nobody); the simulation is unaffected.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "noc live observability service")
	fmt.Fprintln(w, "  /metrics   Prometheus text exposition")
	fmt.Fprintln(w, "  /snapshot  full JSON snapshot (heatmap, per-component counters)")
	fmt.Fprintln(w, "  /healthz   online detector verdicts (200 healthy / 503 tripped)")
	fmt.Fprintln(w, "  /events    SSE stream of health transitions and sampled rows")
	fmt.Fprintln(w, "  /debug/flightrec  POST/GET: dump the flight recorder's window now")
}

// snapshotOr503 fetches the latest snapshot or fails the request; before
// the first sample (cycle 0 publishes one, so this is a startup race of
// microseconds) there is nothing consistent to serve.
func (s *Server) snapshotOr503(w http.ResponseWriter) *Snapshot {
	snap := s.col.Latest()
	if snap == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
	}
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.snapshotOr503(w)
	if snap == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, snap) //nolint:errcheck // client went away
	// Process self-monitoring rows render at request time, never into the
	// snapshot: snapshots must stay deterministic (the shard-determinism
	// suite compares their byte streams), and goroutine counts or heap
	// sizes are anything but.
	WriteRuntimeProm(w) //nolint:errcheck // client went away
	// The shared artifact cache is process state too — scrape-time only.
	WriteArtifactProm(w) //nolint:errcheck // client went away
}

// handleFlightrec asks the attached flight recorder (SetDumper) to dump
// its window. Without a recorder the endpoint 404s, so it is always safe
// to register.
func (s *Server) handleFlightrec(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	d := s.dumper
	s.mu.Unlock()
	if d == nil {
		http.Error(w, "no flight recorder attached (run with -flightrec)", http.StatusNotFound)
		return
	}
	reason := r.URL.Query().Get("reason")
	if reason == "" {
		reason = "http"
	}
	path, err := d.TriggerDump(reason)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // client went away
		Path string `json:"path"`
	}{Path: path})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	snap := s.snapshotOr503(w)
	if snap == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(snap) //nolint:errcheck // client went away
}

// healthzBody is the /healthz response shape.
type healthzBody struct {
	Status         string          `json:"status"` // "ok" or "unhealthy"
	Cycle          int64           `json:"cycle"`
	Verdicts       []healthVerdict `json:"verdicts"`
	OverUnityLinks int             `json:"over_unity_links"`
	DeadLinks      int             `json:"dead_links"`

	// Checkpoint staleness (mirrors the Snapshot fields): -1 when no
	// durable snapshot has been taken.
	LastCheckpointCycle int64 `json:"last_checkpoint_cycle"`
	CheckpointAge       int64 `json:"checkpoint_age_cycles"`
}

type healthVerdict struct {
	Detector string `json:"detector"`
	Healthy  bool   `json:"healthy"`
	Since    int64  `json:"since,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.snapshotOr503(w)
	if snap == nil {
		return
	}
	body := healthzBody{
		Status:              "ok",
		Cycle:               snap.Cycle,
		OverUnityLinks:      snap.OverUnityLinks,
		DeadLinks:           snap.DeadLinks,
		LastCheckpointCycle: snap.LastCheckpointCycle,
		CheckpointAge:       snap.CheckpointAge,
	}
	for _, v := range snap.Health {
		body.Verdicts = append(body.Verdicts, healthVerdict(v))
	}
	code := http.StatusOK
	if !snap.Healthy {
		body.Status = "unhealthy"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(body) //nolint:errcheck // client went away
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": stream open\n\n")
	fl.Flush()
	sub := s.col.Subscribe()
	defer s.col.Unsubscribe(sub)
	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	var reported int64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb.C:
			// Keep-alive comment so idle streams (long Every, quiescent
			// network) survive proxies and clients detect half-open TCP.
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case frame, ok := <-sub.C():
			if !ok {
				return
			}
			if d := sub.Dropped(); d > reported {
				// The client stalled and missed frames; tell it how many
				// so it knows its view has gaps.
				if _, err := fmt.Fprintf(w, ": %d frame(s) dropped while stalled\n\n", d-reported); err != nil {
					return
				}
				reported = d
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
