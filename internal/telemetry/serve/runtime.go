package serve

import (
	"bufio"
	"fmt"
	"io"
	"runtime/debug"
	"runtime/metrics"
	"strconv"

	"repro/internal/artifact"
)

// Runtime self-monitoring: /metrics appends Go process rows after the
// simulation rows so the observability service watches itself too —
// goroutine leaks, heap growth, and GC pauses all show up on the same
// scrape. These values are read from runtime/metrics at request time and
// never enter a Snapshot: snapshots are deterministic (the shard
// determinism suite compares their byte streams across configurations)
// and process vitals are not.

// runtimeSamples are the runtime/metrics series /metrics exports. The
// slice is package-level documentation of the contract; WriteRuntimeProm
// copies it per call so concurrent scrapes don't share Sample slots.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// buildGoVersion/buildModule/buildRevision are resolved once from the
// binary's embedded build information.
var buildGoVersion, buildModule, buildRevision = readBuildInfo()

func readBuildInfo() (goVersion, module, revision string) {
	goVersion, module, revision = "unknown", "unknown", ""
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	if bi.Main.Path != "" {
		module = bi.Main.Path
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return
}

// WriteRuntimeProm renders the Go runtime and build-info rows in the
// Prometheus text exposition format: goroutine count, heap and total
// memory, GC cycle count, GC pause quantiles, and a constant
// noc_build_info gauge carrying the build identity as labels.
func WriteRuntimeProm(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	bw := bufio.NewWriter(w)
	gauge := func(name, help string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	u64 := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}

	gauge("noc_go_goroutines", "Live goroutines in the process.")
	fmt.Fprintf(bw, "noc_go_goroutines %d\n", u64(0))
	gauge("noc_go_heap_objects_bytes", "Bytes of live heap objects (runtime/metrics).")
	fmt.Fprintf(bw, "noc_go_heap_objects_bytes %d\n", u64(1))
	gauge("noc_go_memory_total_bytes", "Bytes mapped by the Go runtime.")
	fmt.Fprintf(bw, "noc_go_memory_total_bytes %d\n", u64(2))
	counter("noc_go_gc_cycles_total", "Completed GC cycles.")
	fmt.Fprintf(bw, "noc_go_gc_cycles_total %d\n", u64(3))

	fmt.Fprint(bw, "# HELP noc_go_gc_pause_seconds GC stop-the-world pause distribution.\n# TYPE noc_go_gc_pause_seconds summary\n")
	if h := samples[4].Value; h.Kind() == metrics.KindFloat64Histogram {
		dist := h.Float64Histogram()
		for _, q := range []float64{0.5, 0.99, 1} {
			fmt.Fprintf(bw, "noc_go_gc_pause_seconds{quantile=%q} %s\n",
				strconv.FormatFloat(q, 'g', -1, 64), formatSeconds(histQuantile(dist, q)))
		}
		fmt.Fprintf(bw, "noc_go_gc_pause_seconds_count %d\n", histCount(dist))
	} else {
		fmt.Fprint(bw, "noc_go_gc_pause_seconds_count 0\n")
	}

	gauge("noc_build_info", "Build identity of the serving binary (constant 1; labels carry the info).")
	fmt.Fprintf(bw, "noc_build_info{go_version=%q,module=%q,revision=%q} 1\n",
		buildGoVersion, buildModule, buildRevision)
	return bw.Flush()
}

// WriteArtifactProm renders the process-global artifact cache's hit,
// miss, and entry counts. Like the runtime rows these are read at
// request time and never enter a Snapshot: the cache is shared by every
// run in the process, so its counters are operational, not per-run
// simulation state.
func WriteArtifactProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hits, misses := artifact.Stats()
	fmt.Fprint(bw, "# HELP noc_artifact_cache_hits_total Artifact-cache lookups that found an existing entry.\n# TYPE noc_artifact_cache_hits_total counter\n")
	fmt.Fprintf(bw, "noc_artifact_cache_hits_total %d\n", hits)
	fmt.Fprint(bw, "# HELP noc_artifact_cache_misses_total Artifact-cache lookups that built a new entry.\n# TYPE noc_artifact_cache_misses_total counter\n")
	fmt.Fprintf(bw, "noc_artifact_cache_misses_total %d\n", misses)
	fmt.Fprint(bw, "# HELP noc_artifact_cache_entries Immutable artifacts resident in the cache.\n# TYPE noc_artifact_cache_entries gauge\n")
	fmt.Fprintf(bw, "noc_artifact_cache_entries %d\n", artifact.Default.Len())
	return bw.Flush()
}

func histCount(h *metrics.Float64Histogram) (total uint64) {
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// histQuantile reads quantile q off a runtime/metrics histogram, using
// each counted bucket's upper bound (conservative: the true value is at
// most the reported one). Returns 0 for an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	total := histCount(h)
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if c > 0 && seen > rank {
			// Buckets[i+1] is the bucket's upper bound; the last bucket's
			// can be +Inf, where its lower bound is the honest answer.
			ub := h.Buckets[i+1]
			if ub > 1e300 || ub != ub {
				ub = h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// formatSeconds renders a pause value without exponent surprises and
// never as Inf/NaN (which the strict scraper would still parse, but
// dashboards would not thank us for).
func formatSeconds(v float64) string {
	if v != v || v > 1e300 || v < 0 {
		v = 0
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
