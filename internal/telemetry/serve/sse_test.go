package serve

import (
	"bufio"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The SSE hardening contract: a stalled or slow /events client can never
// stall the simulation. The publisher runs inside a serial simulation
// phase, so its sends must never block — frames beyond the bounded
// per-client queue are dropped and counted, and the count is reported on
// the stream once the client catches up.

// TestStalledSubscriberNeverBlocksPublisher subscribes and never drains:
// the simulation must keep running at full speed, the queue must cap at
// its bound, and every frame beyond it must be counted as dropped.
func TestStalledSubscriberNeverBlocksPublisher(t *testing.T) {
	n := newServedNet(t, 0.3, 0, 9)
	col, err := AttachCollector(n, Config{Every: 64})
	if err != nil {
		t.Fatal(err)
	}
	sub := col.Subscribe()
	defer col.Unsubscribe(sub)

	// 37 samples land on a queue of 32; if any send blocked, this Run
	// would deadlock the test rather than return.
	const samples = subQueue + 5
	done := make(chan struct{})
	go func() {
		n.Run(64 * samples)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("simulation stalled behind a dead SSE subscriber")
	}

	if got := len(sub.ch); got != subQueue {
		t.Fatalf("queue holds %d frames, want the full bound %d", got, subQueue)
	}
	if got := sub.Dropped(); got != 5 {
		t.Fatalf("Dropped() = %d, want 5 (samples %d - queue %d)", got, samples, subQueue)
	}

	// A fresh subscriber still gets frames — one client's stall is not
	// another's problem.
	fresh := col.Subscribe()
	defer col.Unsubscribe(fresh)
	n.Run(64)
	select {
	case frame := <-fresh.C():
		if !strings.HasPrefix(string(frame), "event: sample\n") {
			t.Fatalf("unexpected frame %q", frame)
		}
	default:
		t.Fatal("fresh subscriber got no frame while another was stalled")
	}
	if fresh.Dropped() != 0 {
		t.Fatalf("fresh subscriber counted %d drops", fresh.Dropped())
	}
}

// TestEventsHeartbeat shrinks the keep-alive interval and checks an idle
// stream (no samples published at all) still carries periodic comments, so
// proxies keep the connection and clients detect half-open TCP.
func TestEventsHeartbeat(t *testing.T) {
	old := sseHeartbeat
	sseHeartbeat = 50 * time.Millisecond
	defer func() { sseHeartbeat = old }()

	n := newServedNet(t, 0.3, 0, 10)
	srv, err := Start(n, Config{Every: 64}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+srv.Addr()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The network never runs, so nothing but the prelude and heartbeats
	// can appear on the stream.
	sc := bufio.NewScanner(resp.Body)
	beats := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event:") || strings.HasPrefix(line, "data:") {
			t.Fatalf("idle stream carried a frame: %q", line)
		}
		if line == ": heartbeat" {
			beats++
			if beats >= 2 {
				return
			}
		}
	}
	t.Fatalf("stream ended after %d heartbeat(s): %v", beats, sc.Err())
}

// TestEventsReportsDroppedFrames drives the handler's catch-up path: a
// client that stalls long enough for the handler's own queue to overflow
// sees a comment reporting how many frames it missed.
func TestEventsReportsDroppedFrames(t *testing.T) {
	n := newServedNet(t, 0.3, 0, 12)
	col, err := AttachCollector(n, Config{Every: 64})
	if err != nil {
		t.Fatal(err)
	}
	sub := col.Subscribe()
	defer col.Unsubscribe(sub)

	// Overflow the queue while nobody reads, then drain like the handler
	// does: the Dropped() delta is what handleEvents renders as the
	// ": N frame(s) dropped while stalled" comment.
	n.Run(64 * (subQueue + 9))
	if d := sub.Dropped(); d != 9 {
		t.Fatalf("Dropped() = %d after overflow, want 9", d)
	}
	drained := 0
	for {
		select {
		case <-sub.C():
			drained++
			continue
		default:
		}
		break
	}
	if drained != subQueue {
		t.Fatalf("drained %d frames, want %d", drained, subQueue)
	}
	// Once caught up, new frames flow again and the count is stable.
	n.Run(64)
	if d := sub.Dropped(); d != 9 {
		t.Fatalf("Dropped() moved to %d after catching up", d)
	}
	select {
	case <-sub.C():
	default:
		t.Fatal("no frame after the subscriber caught up")
	}
}
