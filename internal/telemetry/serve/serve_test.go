package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// newServedNet builds the standard test network — 4x4 folded torus with a
// telemetry probe — under uniform Bernoulli load. stopAt 0 means the
// generators never stop.
func newServedNet(t testing.TB, rate float64, stopAt, seed int64) *network.Network {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(network.Config{
		Topo:   topo,
		Router: router.DefaultConfig(0),
		Seed:   seed,
		Probe:  telemetry.New(telemetry.Config{SampleEvery: 64}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, rate, 2, flit.VCMask(0xFF), seed)
		g.StopAt = stopAt
		n.AttachClient(tile, g)
	}
	return n
}

func TestAttachCollectorRequiresProbe(t *testing.T) {
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachCollector(n, Config{}); err == nil ||
		!strings.Contains(err.Error(), "no telemetry probe") {
		t.Fatalf("AttachCollector without probe: err = %v, want probe error", err)
	}
}

func TestCollectorPublishesImmutableSnapshots(t *testing.T) {
	n := newServedNet(t, 0.3, 0, 2)
	col, err := AttachCollector(n, Config{Every: 64})
	if err != nil {
		t.Fatal(err)
	}
	if col.Latest() != nil {
		t.Fatal("snapshot published before the first cycle")
	}
	n.Run(512)
	first := col.Latest()
	if first == nil {
		t.Fatal("no snapshot after 512 cycles with Every=64")
	}
	if first.Cycle%64 != 0 {
		t.Fatalf("snapshot cycle %d not on the sampling interval", first.Cycle)
	}
	if first.Generated == 0 || first.DeliveredFlits == 0 {
		t.Fatalf("snapshot missing traffic: %+v", first)
	}
	if len(first.Routers) != 16 {
		t.Fatalf("snapshot has %d routers, want 16", len(first.Routers))
	}
	if len(first.Links) != n.NumLinks() {
		t.Fatalf("snapshot has %d links, want %d", len(first.Links), n.NumLinks())
	}
	if len(first.Heatmap) != 4 || len(first.Heatmap[0]) != 4 {
		t.Fatalf("heatmap shape wrong: %v", first.Heatmap)
	}
	if len(first.Latency) < 2 || first.Latency[0].Name != "packet" || first.Latency[1].Name != "network" {
		t.Fatalf("latency series wrong: %+v", first.Latency)
	}
	if len(first.Series) == 0 {
		t.Fatal("snapshot carries no series rows despite SampleEvery")
	}
	if !first.Healthy || len(first.Health) != 3 {
		t.Fatalf("healthy run published unhealthy snapshot: %+v", first.Health)
	}

	// Published snapshots are immutable: running further publishes a new
	// pointer and leaves the old copy untouched.
	cyc, flits := first.Cycle, first.DeliveredFlits
	n.Run(512)
	second := col.Latest()
	if second == first {
		t.Fatal("collector republished the same snapshot pointer")
	}
	if first.Cycle != cyc || first.DeliveredFlits != flits {
		t.Fatal("published snapshot mutated by later samples")
	}
	if second.Cycle <= first.Cycle {
		t.Fatalf("snapshot cycle went backwards: %d -> %d", first.Cycle, second.Cycle)
	}
}

func TestEndpoints(t *testing.T) {
	n := newServedNet(t, 0.3, 0, 3)
	srv, err := Start(n, Config{Every: 64}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Before the first sample every snapshot-backed endpoint is 503.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/metrics before first sample: %d, want 503", resp.StatusCode)
	}

	n.Run(512)
	snap := srv.Collector().Latest()
	if snap == nil {
		t.Fatal("no snapshot after run")
	}

	t.Run("index", func(t *testing.T) {
		resp, err := http.Get(base + "/")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || !strings.Contains(sb.String(), "observability") {
			t.Fatalf("index: %d %q", resp.StatusCode, sb.String())
		}
	})

	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/metrics: %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("/metrics content type %q", ct)
		}
		ms, err := ParseText(resp.Body)
		if err != nil {
			t.Fatalf("/metrics does not parse: %v", err)
		}
		byKey := map[string]float64{}
		for _, m := range ms {
			byKey[m.Key()] = m.Value
		}
		if byKey["noc_cycle"] != float64(snap.Cycle) {
			t.Fatalf("noc_cycle = %v, want %d", byKey["noc_cycle"], snap.Cycle)
		}
		if byKey["noc_delivered_flits_total"] <= 0 {
			t.Fatal("noc_delivered_flits_total not positive")
		}
		if byKey["noc_healthy"] != 1 {
			t.Fatalf("noc_healthy = %v on a healthy run", byKey["noc_healthy"])
		}
		if _, ok := byKey[`noc_router_ejected_flits_total{router="0"}`]; !ok {
			t.Fatal("per-router counters missing")
		}
		// Route-table counters: this network has no shared table, so the
		// memo cache serves repeats — a 512-cycle run at rate 0.3 must
		// both miss (first lookups) and hit (repeats).
		if byKey["noc_route_table_misses_total"] <= 0 {
			t.Fatal("noc_route_table_misses_total not positive")
		}
		if byKey["noc_route_table_hits_total"] <= 0 {
			t.Fatal("noc_route_table_hits_total not positive")
		}
		hits, misses := n.RouteTableStats()
		if byKey["noc_route_table_hits_total"] > float64(hits) || byKey["noc_route_table_misses_total"] > float64(misses) {
			t.Fatalf("route-table rows (%v hits, %v misses) exceed the network's live counters (%d, %d)",
				byKey["noc_route_table_hits_total"], byKey["noc_route_table_misses_total"], hits, misses)
		}
		// Artifact-cache rows are scrape-time process metrics; they must
		// be present (and parse strictly) even when the cache is idle.
		for _, name := range []string{"noc_artifact_cache_hits_total", "noc_artifact_cache_misses_total", "noc_artifact_cache_entries"} {
			if _, ok := byKey[name]; !ok {
				t.Fatalf("%s missing from /metrics", name)
			}
		}
		utils := 0
		for _, m := range ms {
			if m.Name == "noc_link_util" {
				utils++
				if m.Value < 0 || m.Value > 1 {
					t.Fatalf("noc_link_util %v outside [0,1]: %+v", m.Value, m)
				}
			}
		}
		if utils != n.NumLinks() {
			t.Fatalf("%d noc_link_util samples, want %d", utils, n.NumLinks())
		}
	})

	t.Run("snapshot", func(t *testing.T) {
		resp, err := http.Get(base + "/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/snapshot: %d", resp.StatusCode)
		}
		var got Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatalf("/snapshot does not decode: %v", err)
		}
		if got.Cycle != snap.Cycle || got.DeliveredFlits != snap.DeliveredFlits {
			t.Fatalf("served snapshot differs: cycle %d vs %d", got.Cycle, snap.Cycle)
		}
		if len(got.Heatmap) != 4 {
			t.Fatalf("served heatmap shape wrong: %v", got.Heatmap)
		}
	})

	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/healthz on a healthy run: %d", resp.StatusCode)
		}
		var body struct {
			Status   string `json:"status"`
			Verdicts []struct {
				Detector string `json:"detector"`
				Healthy  bool   `json:"healthy"`
			} `json:"verdicts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Status != "ok" || len(body.Verdicts) != 3 {
			t.Fatalf("/healthz body: %+v", body)
		}
	})

	t.Run("not-found", func(t *testing.T) {
		resp, err := http.Get(base + "/bogus")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("/bogus: %d, want 404", resp.StatusCode)
		}
	})
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestEventsSSEStream(t *testing.T) {
	n := newServedNet(t, 0.3, 0, 4)
	srv, err := Start(n, Config{Every: 64}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+srv.Addr()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events content type %q", ct)
	}

	// Keep sampling in the background until the stream delivers a frame;
	// the subscriber registers shortly after the prelude, so a bounded
	// retry loop absorbs the race.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			select {
			case <-done:
				return
			default:
			}
			n.Run(64)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer wg.Wait()
	defer close(done)

	sc := bufio.NewScanner(resp.Body)
	sawEvent, sawData := false, false
	for sc.Scan() {
		line := sc.Text()
		if line == "event: sample" {
			sawEvent = true
		}
		if sawEvent && strings.HasPrefix(line, "data: ") {
			var row struct {
				Cycle int64 `json:"cycle"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &row); err != nil {
				t.Fatalf("SSE data frame does not decode: %v (%q)", err, line)
			}
			if row.Cycle < 0 {
				t.Fatalf("SSE sample row has no cycle: %q", line)
			}
			sawData = true
			break
		}
	}
	if !sawEvent || !sawData {
		t.Fatalf("no sample frame on /events (event=%v data=%v, scan err %v)", sawEvent, sawData, sc.Err())
	}
}

// TestPromQuantilesMatchHist is the satellite property test: the quantile
// values /metrics exports for every latency series are exactly the values
// stats.Hist.Quantile reports — rendered through LatencyFrom and WriteProm
// and recovered through the strict scraper, with no drift in between.
func TestPromQuantilesMatchHist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		h := stats.NewHist(64)
		samples := rng.Intn(200) // sometimes zero
		for i := 0; i < samples; i++ {
			// A spread of in-range and overflow values.
			h.Add(int64(rng.Intn(150)))
		}
		name := fmt.Sprintf("trial%d", trial)
		snap := &Snapshot{Latency: []LatencySnap{LatencyFrom(name, -1, h)}}
		var sb strings.Builder
		if err := WriteProm(&sb, snap); err != nil {
			t.Fatal(err)
		}
		ms, err := ParseText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("trial %d: exposition does not parse: %v", trial, err)
		}
		byKey := map[string]float64{}
		for _, m := range ms {
			byKey[m.Key()] = m.Value
		}
		for _, q := range ExportedQuantiles {
			key := fmt.Sprintf(`noc_latency_cycles{quantile="%g",series=%q}`, q, name)
			got, ok := byKey[key]
			if !ok {
				t.Fatalf("trial %d: %s missing from exposition", trial, key)
			}
			if want := float64(h.Quantile(q)); got != want {
				t.Fatalf("trial %d: %s = %v, want Hist.Quantile(%g) = %v", trial, key, got, q, want)
			}
		}
		if got := byKey[fmt.Sprintf(`noc_latency_cycles_sum{series=%q}`, name)]; got != float64(h.Sum()) {
			t.Fatalf("trial %d: summary sum %v, want %d", trial, got, h.Sum())
		}
		if got := byKey[fmt.Sprintf(`noc_latency_cycles_count{series=%q}`, name)]; got != float64(h.Count()) {
			t.Fatalf("trial %d: summary count %v, want %d", trial, got, h.Count())
		}
	}
}

func TestParseTextStrictness(t *testing.T) {
	cases := []struct {
		name, in string
		ok       bool
	}{
		{"empty", "", false},
		{"comment only", "# HELP x y\n# TYPE x gauge\n", false},
		{"malformed directive", "# NONSENSE foo\nx 1\n", false},
		{"unknown type", "# TYPE x flavor\nx 1\n", false},
		{"bad value", "x abc\n", false},
		{"bad name", "9bad 1\n", false},
		{"unquoted label", "# HELP x y\n# TYPE x gauge\nx{l=raw} 1\n", false},
		{"no directives", "x 1\n", false},
		{"help only", "# HELP x y\nx 1\n", false},
		{"type only", "# TYPE x gauge\nx 1\n", false},
		{"empty help text", "# HELP x\n# TYPE x gauge\nx 1\n", false},
		{"simple", "# HELP x y\n# TYPE x gauge\nx 1\n", true},
		{"labels", "# HELP x y\n# TYPE x gauge\n" + `x{a="1",b="two"} 3.5` + "\n", true},
		{"comma in label", "# HELP x y\n# TYPE x gauge\n" + `x{l="a,b"} 1` + "\n", true},
		{"full directives", "# HELP x help text\n# TYPE x counter\nx 2\n", true},
		{"summary suffixes", "# HELP x y\n# TYPE x summary\n" + `x{quantile="0.5"} 1` + "\nx_sum 2\nx_count 3\n", true},
		{"summary bucket rejected", "# HELP x y\n# TYPE x summary\nx_bucket 1\n", false},
		{"histogram suffixes", "# HELP x y\n# TYPE x histogram\n" + `x_bucket{le="1"} 1` + "\nx_sum 2\nx_count 3\n", true},
		{"undirected sibling", "# HELP x y\n# TYPE x gauge\nx 1\ny 2\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ms, err := ParseText(strings.NewReader(tc.in))
			if tc.ok && err != nil {
				t.Fatalf("ParseText(%q) = %v, want ok", tc.in, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("ParseText(%q) = %+v, want error", tc.in, ms)
			}
		})
	}

	ms, err := ParseText(strings.NewReader("# HELP x y\n# TYPE x gauge\n" + `x{l="a,b",m="c"} 4` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Labels["l"] != "a,b" || ms[0].Labels["m"] != "c" || ms[0].Value != 4 {
		t.Fatalf("label parsing wrong: %+v", ms)
	}
}
