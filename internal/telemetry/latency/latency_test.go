package latency

import (
	"strings"
	"testing"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/telemetry/health"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// buildNet returns the 16-tile baseline with a uniform Bernoulli load
// attached and no warmup, so every delivered packet is observed.
func buildNet(t *testing.T, rate float64, stopAt int64) *network.Network {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, rate, 2, flit.VCMask(0xFF), 1)
		g.StopAt = stopAt
		n.AttachClient(tile, g)
	}
	return n
}

func TestParseSLO(t *testing.T) {
	objs, err := ParseSLO("p99<=40@flows;p50<=8")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objectives, want 2", len(objs))
	}
	if objs[0].Name != "p99" || objs[0].Q != 0.99 || objs[0].Target != 40 {
		t.Errorf("objs[0] = %+v", objs[0])
	}
	if got := objs[0].String(); got != "p99<=40" {
		t.Errorf("String() = %q", got)
	}
	if got := objs[0].Slug(); got != "p99le40" {
		t.Errorf("Slug() = %q", got)
	}
	if objs, err := ParseSLO(""); err != nil || len(objs) != 0 {
		t.Errorf("empty spec: %v, %d objectives", err, len(objs))
	}
	for _, bad := range []string{
		"p98<=40",        // unknown quantile
		"p99<=0",         // non-positive target
		"p99<=-3",        // negative target
		"p99<=40@links",  // unknown scope
		"p99<=40;p99<=8", // duplicate objective quantile
		"p99=40",         // malformed comparator
		"latency<=40",    // not a quantile at all
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestAttachRejectsBadConfig(t *testing.T) {
	if _, err := Attach(buildNet(t, 0.1, 10), Config{Flows: "bogus"}); err == nil {
		t.Error("unknown flow mode accepted")
	}
	if _, err := Attach(buildNet(t, 0.1, 10), Config{Flows: FlowPair, MaxFlowStates: 10}); err == nil {
		t.Error("pair mode over the flow-state cap accepted")
	}
	if _, err := Attach(buildNet(t, 0.1, 10), Config{Flows: FlowPair, ShortWindows: 4, LongWindows: 4}); err == nil {
		t.Error("short window >= long window accepted")
	}
	if _, err := Attach(buildNet(t, 0.1, 10), Config{Flows: FlowPair, SLO: "p98<=1"}); err == nil {
		t.Error("bad SLO spec accepted")
	}
}

// TestFlowClassifier pins the index arithmetic of each mode on the 4x4
// die: pair is src*tiles+dst, srcrow is src/kx, srccol is src%kx, class
// is the clamped traffic class.
func TestFlowClassifier(t *testing.T) {
	for _, tc := range []struct {
		mode string
		ob   network.PacketObservation
		want int
		name string
	}{
		{FlowPair, network.PacketObservation{Src: 3, Dst: 10}, 3*16 + 10, "3->10"},
		{FlowPair, network.PacketObservation{Src: 0, Dst: 0}, 0, "0->0"},
		{FlowSrcRow, network.PacketObservation{Src: 9}, 2, "row2"},
		{FlowSrcCol, network.PacketObservation{Src: 9}, 1, "col1"},
		{FlowClass, network.PacketObservation{Class: 3}, 3, "class3"},
		{FlowClass, network.PacketObservation{Class: -1}, 0, "class0"},
		{FlowClass, network.PacketObservation{Class: 99}, classFlows - 1, "class15"},
	} {
		o, err := Attach(buildNet(t, 0.1, 10), Config{Flows: tc.mode})
		if err != nil {
			t.Fatal(err)
		}
		if got := o.flowIndex(&tc.ob); got != tc.want {
			t.Errorf("%s: flowIndex(%+v) = %d, want %d", tc.mode, tc.ob, got, tc.want)
		}
		if got := o.FlowName(tc.want); got != tc.name {
			t.Errorf("%s: FlowName(%d) = %q, want %q", tc.mode, tc.want, got, tc.name)
		}
	}
}

// TestDecompositionIdentity runs real traffic and requires the exact
// accounting identity on every flow: total = queue + pipeline +
// serialization + contention, with contention the signed residual
// against the paper's zero-load pipeline model.
func TestDecompositionIdentity(t *testing.T) {
	n := buildNet(t, 0.25, 1500)
	o, err := Attach(n, Config{Flows: FlowPair})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(1500)
	if !n.Drain(100000) {
		t.Fatal("network did not drain")
	}
	count, _ := o.Totals()
	if count == 0 {
		t.Fatal("no packets observed; identity is vacuous")
	}
	for fi := range o.flows {
		f := &o.flows[fi]
		if f.count == 0 {
			continue
		}
		if got := f.sumQueue + f.sumPipe + f.sumSer + f.sumCont; got != f.sumTotal {
			t.Errorf("flow %s: queue %d + pipe %d + ser %d + cont %d = %d, want total %d",
				o.names[fi], f.sumQueue, f.sumPipe, f.sumSer, f.sumCont, got, f.sumTotal)
		}
		if f.sumNet != f.sumPipe+f.sumSer+f.sumCont {
			t.Errorf("flow %s: network latency %d != pipe+ser+cont %d",
				o.names[fi], f.sumNet, f.sumPipe+f.sumSer+f.sumCont)
		}
		var histN int64
		for _, c := range f.hist {
			histN += c
		}
		if histN != f.count {
			t.Errorf("flow %s: histogram holds %d samples, count %d", o.names[fi], histN, f.count)
		}
	}
	// Loopback never happens under Uniform, and every flow is src!=dst.
	for fi := range o.flows {
		if fi/o.tiles == fi%o.tiles && o.flows[fi].count != 0 {
			t.Errorf("loopback flow %s observed %d packets", o.names[fi], o.flows[fi].count)
		}
	}
}

// TestQuantileBoundary pins the log2-histogram quantile semantics: the
// bucket upper bound clamped to the observed max, and the exact max plus
// the overflowed flag when the rank lands in the top (clamp) bucket.
func TestQuantileBoundary(t *testing.T) {
	var f flowState
	add := func(total int64) {
		f.count++
		b := bucketOf(total)
		f.hist[b]++
		if total > f.maxTotal {
			f.maxTotal = total
		}
	}
	add(5) // bucket 3, nominal upper bound 7
	if v, ov := f.quantile(0.5); v != 5 || ov {
		t.Errorf("p50 = (%d, %v), want (5, false): bucket bound must clamp to max", v, ov)
	}
	add(6)
	add(200) // bucket 8
	if v, ov := f.quantile(1.0); v != 200 || ov {
		t.Errorf("p100 = (%d, %v), want (200, false)", v, ov)
	}
	if v, ov := f.quantile(0.5); v != 7 || ov {
		t.Errorf("p50 = (%d, %v), want (7, false): unclamped bucket bound", v, ov)
	}
	// A sample past every finite bucket lands in the clamp bucket: the
	// quantile is the exact observed max and the overflow flag is raised.
	add(int64(1) << 40)
	if v, ov := f.quantile(1.0); v != int64(1)<<40 || !ov {
		t.Errorf("overflow p100 = (%d, %v), want (2^40, true)", v, ov)
	}
	if v, ov := (&flowState{}).quantile(0.99); v != 0 || ov {
		t.Errorf("empty flow quantile = (%d, %v), want (0, false)", v, ov)
	}
}

// sinkLog records burn events for the fire/recover test.
type sinkLog struct {
	events []health.Event
	flows  []string
}

func (s *sinkLog) OnSLOBurn(cycle int64, flow string, ev health.Event) {
	s.events = append(s.events, ev)
	s.flows = append(s.flows, flow)
}

// TestBurnFireRecover drives the burn engine by hand: a flow violating
// its objective on every packet fires after the windows fill, the
// verdict carries the attribution, and a clean stretch recovers it.
func TestBurnFireRecover(t *testing.T) {
	n := buildNet(t, 0.1, 10)
	o, err := Attach(n, Config{Flows: FlowPair, SLO: "p99<=10", Every: 64, MinSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	sink := &sinkLog{}
	o.SetBurnSink(sink)
	ob := network.PacketObservation{ID: 7, Src: 0, Dst: 5, Hops: 1, Flits: 2, Birth: 1, Inject: 1}
	deliver := func(total int64, packets int) {
		for i := 0; i < packets; i++ {
			ob.Arrived = ob.Birth + total
			o.PacketDelivered(&ob)
		}
	}

	// Every packet blows the 10-cycle target: burn = 100x on both windows
	// as soon as the long window holds MinSamples.
	now := int64(0)
	for i := 0; i < 3 && o.Healthy(); i++ {
		deliver(500, 16)
		now += 64
		o.phase(now)
	}
	if o.Healthy() {
		t.Fatal("saturating flow never fired")
	}
	if len(sink.events) != 1 || sink.events[0].Healthy {
		t.Fatalf("sink saw %+v, want one unhealthy event", sink.events)
	}
	if sink.flows[0] != "0->5" {
		t.Errorf("burn attributed to flow %q, want 0->5", sink.flows[0])
	}
	detail := sink.events[0].Detail
	for _, needle := range []string{"flow 0->5", "p99<=10", "T/T0", "dominant stall", "exemplar"} {
		if !strings.Contains(detail, needle) {
			t.Errorf("attribution lacks %q:\n%s", needle, detail)
		}
	}
	if ex := o.Exemplars(5); len(ex) == 0 || ex[0] != 7 {
		t.Errorf("exemplars = %v, want packet ID 7", ex)
	}
	verdicts := o.AppendVerdicts(nil)
	if len(verdicts) != 1 || verdicts[0].Healthy || verdicts[0].Detector != "slo" {
		t.Fatalf("verdicts = %+v", verdicts)
	}
	snaps := o.AppendSLOSnaps(nil)
	if len(snaps) != 1 || snaps[0].Flow != "0->5" || snaps[0].Objective != "p99<=10" {
		t.Fatalf("SLO snaps = %+v", snaps)
	}

	// Fast traffic until both windows drain the bad samples: recovery
	// event, healthy verdict, no burning snaps.
	for i := 0; i < DefaultLongWindows+1 && !o.Healthy(); i++ {
		deliver(2, 16)
		now += 64
		o.phase(now)
	}
	if !o.Healthy() {
		t.Fatal("flow never recovered")
	}
	last := sink.events[len(sink.events)-1]
	if !last.Healthy || !strings.Contains(last.Detail, "recovered") {
		t.Errorf("last event = %+v, want recovery", last)
	}
	if snaps := o.AppendSLOSnaps(nil); len(snaps) != 0 {
		t.Errorf("recovered flow still snaps: %+v", snaps)
	}
	if v := o.AppendVerdicts(nil); len(v) != 1 || !v[0].Healthy {
		t.Errorf("recovered verdicts = %+v", v)
	}
}

// TestWarmupGateMirrorsRecorder requires the observatory's totals to
// reconcile exactly with the run recorder's packet-latency histogram —
// the observatory-side half of the root-package reconciliation suite,
// here under a nonzero warmup so the birth gate is exercised.
func TestWarmupGateMirrorsRecorder(t *testing.T) {
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 3, Warmup: 200})
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < 16; tile++ {
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.2, 2, flit.VCMask(0xFF), 1)
		g.StopAt = 1000
		n.AttachClient(tile, g)
	}
	o, err := Attach(n, Config{Flows: FlowSrcRow})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(1000)
	if !n.Drain(100000) {
		t.Fatal("network did not drain")
	}
	rec := n.Recorder()
	count, sum := o.Totals()
	if count == 0 {
		t.Fatal("no packets observed")
	}
	if count != rec.PacketLatency.Count() || sum != rec.PacketLatency.Sum() {
		t.Errorf("observatory (count %d, sum %d) != recorder (count %d, sum %d)",
			count, sum, rec.PacketLatency.Count(), rec.PacketLatency.Sum())
	}
}

// bucketOf mirrors the hot path's bucket computation for tests.
func bucketOf(total int64) int {
	b := 0
	for v := total; v > 0; v >>= 1 {
		b++
	}
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b
}
