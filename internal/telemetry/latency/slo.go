// SLO engine: latency objectives per flow with multi-window burn-rate
// alerting. An objective like "p99<=40" grants each flow an error
// budget of 1% of its packets over 40 cycles; the burn rate is the
// multiple of that budget the flow is actually consuming. The engine
// evaluates on a fixed cycle cadence in a serial end-of-cycle phase
// (deterministic at any shard count), keeps a short and a long window
// of evaluation ticks, and fires only when BOTH exceed the threshold —
// the short window makes alerts fast, the long window keeps one noisy
// tick from paging. Firing degrades /healthz through the serve
// collector with full attribution and (when a flight recorder is
// attached) triggers a post-mortem dump whose reason names the flow.
package latency

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/telemetry/health"
	"repro/internal/topology"
)

// Objective is one parsed latency objective.
type Objective struct {
	Name   string  // quantile name: "p50", "p90", "p95", "p99", "p999"
	Q      float64 // 0.50 … 0.999
	Target int64   // latency bound in cycles
}

// String renders the canonical spec form, e.g. "p99<=40".
func (ob Objective) String() string { return fmt.Sprintf("%s<=%d", ob.Name, ob.Target) }

// Slug renders an identifier-safe form for CSV headers and metric
// labels, e.g. "p99le40".
func (ob Objective) Slug() string { return fmt.Sprintf("%sle%d", ob.Name, ob.Target) }

var quantiles = map[string]float64{
	"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99, "p999": 0.999,
}

// ParseSLO parses a ';'-separated objective list ("p99<=40@flows"; the
// "@flows" scope suffix is optional). Empty input yields no objectives.
func ParseSLO(spec string) ([]Objective, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Objective
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		body, scope, scoped := strings.Cut(part, "@")
		if scoped && scope != "flows" {
			return nil, fmt.Errorf("latency: objective %q: unknown scope %q (only \"flows\")", part, scope)
		}
		qname, target, ok := strings.Cut(body, "<=")
		if !ok {
			return nil, fmt.Errorf("latency: objective %q: want quantile<=cycles, e.g. p99<=40", part)
		}
		q, ok := quantiles[qname]
		if !ok {
			return nil, fmt.Errorf("latency: objective %q: unknown quantile %q (want p50/p90/p95/p99/p999)", part, qname)
		}
		t, err := strconv.ParseInt(target, 10, 64)
		if err != nil || t <= 0 {
			return nil, fmt.Errorf("latency: objective %q: bad target %q (want a positive cycle count)", part, target)
		}
		for _, prev := range out {
			if prev.Name == qname {
				return nil, fmt.Errorf("latency: objective %q: quantile %s already specified", part, qname)
			}
		}
		out = append(out, Objective{Name: qname, Q: q, Target: t})
	}
	return out, nil
}

// Objectives reports the parsed objective list.
func (o *Observatory) Objectives() []Objective { return o.objectives }

// BurnSink receives SLO burn transitions; the flight recorder
// implements it to log the event and write a post-mortem dump whose
// captured window includes the burn cycle. Calls arrive from a serial
// kernel phase, so implementations need no locking.
type BurnSink interface {
	OnSLOBurn(cycle int64, flow string, ev health.Event)
}

// SetBurnSink installs (or with nil removes) the burn-transition sink.
func (o *Observatory) SetBurnSink(s BurnSink) { o.sink = s }

// phase is the serial end-of-cycle SLO evaluation hook. It runs after
// the eject merge (registration order), so a tick sees every packet
// delivered up to and including the current cycle.
func (o *Observatory) phase(now sim.Cycle) {
	if now == 0 || now%o.every != 0 {
		return
	}
	o.tick(int64(now))
}

// tick folds one evaluation window: per flow, push the packet-count and
// over-target deltas into the burn rings (running window sums, O(1) per
// flow-objective) and re-judge every objective. Allocation-free while
// no transition fires.
func (o *Observatory) tick(now int64) {
	nObj := len(o.objectives)
	slot := int(o.ticks % int64(o.longW))
	o.ticks++

	// Stall-taxonomy window deltas for burn attribution.
	var arb, cr, stg int64
	if o.probe != nil {
		for _, rp := range o.probe.Routers {
			if rp != nil {
				arb += rp.ArbLosses
				cr += rp.CreditStalls
				stg += rp.StageStalls
			}
		}
	}
	dArb, dCr, dStg := arb-o.lastArb, cr-o.lastCr, stg-o.lastStg
	o.lastArb, o.lastCr, o.lastStg = arb, cr, stg

	shortEvict := (slot - o.shortW + o.longW) % o.longW
	for fi := range o.flows {
		cntDelta := o.flows[fi].count - o.lastCount[fi]
		o.lastCount[fi] = o.flows[fi].count
		base := fi * o.longW
		o.shortCnt[fi] += cntDelta - o.cntRing[base+shortEvict]
		o.longCnt[fi] += cntDelta - o.cntRing[base+slot]
		o.cntRing[base+slot] = cntDelta

		for oi := 0; oi < nObj; oi++ {
			k := fi*nObj + oi
			badDelta := o.bad[k] - o.lastBad[k]
			o.lastBad[k] = o.bad[k]
			kbase := k * o.longW
			o.shortBad[k] += badDelta - o.badRing[kbase+shortEvict]
			o.longBad[k] += badDelta - o.badRing[kbase+slot]
			o.badRing[kbase+slot] = badDelta

			budget := 1 - o.objectives[oi].Q
			var bs, bl float64
			if o.shortCnt[fi] > 0 {
				bs = float64(o.shortBad[k]) / float64(o.shortCnt[fi]) / budget
			}
			if o.longCnt[fi] > 0 {
				bl = float64(o.longBad[k]) / float64(o.longCnt[fi]) / budget
			}
			o.burnShortV[k], o.burnLongV[k] = bs, bl

			fire := o.longCnt[fi] >= o.minSamples && bs >= o.burnThr && bl >= o.burnThr
			switch {
			case fire && !o.firing[k]:
				o.firing[k] = true
				o.firingCount++
				o.since[k] = now
				o.detail[k] = o.attribution(fi, oi, bs, bl, dArb, dCr, dStg)
				if o.sink != nil {
					o.sink.OnSLOBurn(now, o.names[fi], health.Event{
						Cycle: now, Detector: "slo", Healthy: false, Detail: o.detail[k],
					})
				}
			case !fire && o.firing[k]:
				o.firing[k] = false
				o.firingCount--
				recov := fmt.Sprintf("flow %s %s burn recovered (%.1fx short / %.1fx long)",
					o.names[fi], o.objectives[oi].String(), bs, bl)
				if o.sink != nil {
					o.sink.OnSLOBurn(now, o.names[fi], health.Event{
						Cycle: now, Detector: "slo", Healthy: true, Detail: recov,
					})
				}
				o.detail[k] = ""
			}
		}
	}
}

// dominantStall names the largest stall-cause delta of the last window.
func dominantStall(dArb, dCr, dStg int64) string {
	switch {
	case dCr >= dArb && dCr >= dStg:
		return "credit/VC-blocked"
	case dArb >= dStg:
		return "switch-arb"
	default:
		return "stage-occupied"
	}
}

// attribution builds the burn detail string: flow, objective, burn
// rates, paper-model drift (T/T0), dominant stall cause over the last
// window, the hottest links on the flow's path, and exemplar packet
// IDs for the flight-recorder dump.
func (o *Observatory) attribution(fi, oi int, bs, bl float64, dArb, dCr, dStg int64) string {
	var sb strings.Builder
	ob := o.objectives[oi]
	nObj := len(o.objectives)
	k := fi*nObj + oi
	fmt.Fprintf(&sb, "flow %s %s: burn %.1fx short / %.1fx long (%d/%d over target in window)",
		o.names[fi], ob.String(), bs, bl, o.longBad[k], o.longCnt[fi])
	f := &o.flows[fi]
	if f.count > 0 && f.sumT0 > 0 {
		fmt.Fprintf(&sb, "; T/T0 %.2f (zero-load %.1f cycles)",
			float64(f.sumNet)/float64(f.sumT0), float64(f.sumT0)/float64(f.count))
	}
	if o.probe != nil {
		fmt.Fprintf(&sb, "; dominant stall: %s (arb %d / credit %d / stage %d this window)",
			dominantStall(dArb, dCr, dStg), dArb, dCr, dStg)
	} else {
		sb.WriteString("; dominant stall: unknown (no probe)")
	}
	o.appendHotLinks(&sb, fi)
	o.appendExemplars(&sb, fi)
	return sb.String()
}

// appendHotLinks names the hottest channels relevant to the flow: for
// pair flows, the channels on the flow's dimension-order path; for
// aggregate flows, the globally hottest channels.
func (o *Observatory) appendHotLinks(sb *strings.Builder, fi int) {
	if o.probe == nil || len(o.probe.Links) == 0 {
		return
	}
	var best, second *linkRef
	consider := func(from int, d route.Dir) {
		for _, lp := range o.probe.Links {
			if lp == nil || lp.From != from || lp.Dir != d {
				continue
			}
			r := linkRef{index: lp.Index, from: from, dir: d, flits: lp.Flits}
			if best == nil || r.flits > best.flits {
				second, best = best, &r
			} else if second == nil || r.flits > second.flits {
				second = &r
			}
			return
		}
	}
	if o.mode == FlowPair {
		src, dst := fi/o.tiles, fi%o.tiles
		if src == dst {
			return
		}
		sx, sy := topology.Coord(o.topo, src)
		dx, dy := topology.Coord(o.topo, dst)
		tile := src
		for _, d := range route.DimensionOrder(o.topo, sx, sy, dx, dy) {
			consider(tile, d)
			next, ok := o.topo.Neighbor(tile, d)
			if !ok {
				break
			}
			tile = next
		}
		sb.WriteString("; hottest path links:")
	} else {
		for _, lp := range o.probe.Links {
			if lp != nil {
				consider(lp.From, lp.Dir)
			}
		}
		sb.WriteString("; hottest links:")
	}
	if best == nil {
		sb.WriteString(" none")
		return
	}
	fmt.Fprintf(sb, " L%d %d-%v (%d flits)", best.index, best.from, best.dir, best.flits)
	if second != nil {
		fmt.Fprintf(sb, ", L%d %d-%v (%d flits)", second.index, second.from, second.dir, second.flits)
	}
}

type linkRef struct {
	index, from int
	dir         route.Dir
	flits       int64
}

// appendExemplars names the most recent over-target packet IDs of the
// flow, newest first.
func (o *Observatory) appendExemplars(sb *strings.Builder, fi int) {
	n := int(o.exNext[fi])
	if n == 0 {
		return
	}
	if n > maxExemplars {
		n = maxExemplars
	}
	sb.WriteString("; exemplar pkts:")
	for i := 0; i < n; i++ {
		slot := fi*maxExemplars + (int(o.exNext[fi])-1-i+8*maxExemplars)%maxExemplars
		fmt.Fprintf(sb, " %d(lat %d)", o.exIDs[slot], o.exLat[slot])
	}
}

// Exemplars reports flow fi's recent over-target packet IDs, newest
// first (allocates; reporting path only).
func (o *Observatory) Exemplars(fi int) []uint64 {
	n := int(o.exNext[fi])
	if n > maxExemplars {
		n = maxExemplars
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		slot := fi*maxExemplars + (int(o.exNext[fi])-1-i+8*maxExemplars)%maxExemplars
		out = append(out, o.exIDs[slot])
	}
	return out
}

// Healthy reports whether no flow-objective pair is currently burning.
func (o *Observatory) Healthy() bool { return o.firingCount == 0 }

// maxVerdicts bounds the /healthz verdict rows; further burning pairs
// are folded into one summary row.
const maxVerdicts = 8

// AppendVerdicts appends the SLO engine's current judgment to dst: one
// healthy row when nothing burns, otherwise one row per burning
// flow-objective pair (flow-index order, capped) plus a summary row for
// any overflow. Appends nothing when no objectives are configured.
func (o *Observatory) AppendVerdicts(dst []health.Verdict) []health.Verdict {
	if len(o.objectives) == 0 {
		return dst
	}
	if o.firingCount == 0 {
		return append(dst, health.Verdict{Detector: "slo", Healthy: true})
	}
	emitted := 0
	for k := range o.firing {
		if !o.firing[k] {
			continue
		}
		if emitted == maxVerdicts {
			return append(dst, health.Verdict{
				Detector: "slo", Healthy: false, Since: o.since[k],
				Detail: fmt.Sprintf("+%d more flow-objective pairs burning", o.firingCount-emitted),
			})
		}
		dst = append(dst, health.Verdict{
			Detector: "slo", Healthy: false, Since: o.since[k], Detail: o.detail[k],
		})
		emitted++
	}
	return dst
}

// SLOSnap is one objective's state on one flow, for /snapshot and the
// noctop panel. Only burning pairs are exported.
type SLOSnap struct {
	Objective string   `json:"objective"`
	Flow      string   `json:"flow"`
	Since     int64    `json:"since"`
	BurnShort float64  `json:"burn_short"`
	BurnLong  float64  `json:"burn_long"`
	Bad       int64    `json:"bad_packets"`
	Count     int64    `json:"packets"`
	Exemplars []uint64 `json:"exemplar_packets,omitempty"`
	Detail    string   `json:"detail,omitempty"`
}

// AppendSLOSnaps appends one row per burning flow-objective pair
// (flow-index order, capped at MaxFlows rows) to dst and returns it.
func (o *Observatory) AppendSLOSnaps(dst []SLOSnap) []SLOSnap {
	nObj := len(o.objectives)
	if nObj == 0 || o.firingCount == 0 {
		return dst
	}
	emitted := 0
	for k := range o.firing {
		if !o.firing[k] || emitted == o.cfg.MaxFlows {
			continue
		}
		fi, oi := k/nObj, k%nObj
		dst = append(dst, SLOSnap{
			Objective: o.objectives[oi].String(),
			Flow:      o.names[fi],
			Since:     o.since[k],
			BurnShort: o.burnShortV[k],
			BurnLong:  o.burnLongV[k],
			Bad:       o.bad[k],
			Count:     o.flows[fi].count,
			Exemplars: o.Exemplars(fi),
			Detail:    o.detail[k],
		})
		emitted++
	}
	return dst
}
