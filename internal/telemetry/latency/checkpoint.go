// Checkpoint persistence: the observatory registers as a network
// checkpoint extra (section "x:latency"), so a resumed run's per-flow
// decomposition, SLO burn windows, firing state, and exemplar rings are
// byte-identical to a straight-through run's. Replaying a checkpoint
// without the observatory attached simply never reads the section — the
// container tolerates unvisited sections — so nocpost keyframe restores
// stay compatible.
package latency

import "repro/internal/checkpoint"

// SaveState serialises the observatory into a checkpoint section.
func (o *Observatory) SaveState(e *checkpoint.Encoder) {
	e.String(o.mode)
	e.Int(o.nFlows)
	e.Int(len(o.objectives))
	for _, ob := range o.objectives {
		e.String(ob.String())
	}
	for i := range o.flows {
		f := &o.flows[i]
		e.I64(f.count)
		for b := range f.hist {
			e.I64(f.hist[b])
		}
		e.I64(f.sumTotal)
		e.I64(f.sumQueue)
		e.I64(f.sumPipe)
		e.I64(f.sumSer)
		e.I64(f.sumCont)
		e.I64(f.sumNet)
		e.I64(f.sumT0)
		e.I64(f.sumHops)
		e.I64(f.maxTotal)
	}
	if len(o.objectives) == 0 {
		return
	}
	e.I64(o.ticks)
	e.I64(o.lastArb)
	e.I64(o.lastCr)
	e.I64(o.lastStg)
	e.I64s(o.bad)
	e.I64s(o.lastCount)
	e.I64s(o.lastBad)
	e.I64s(o.cntRing)
	e.I64s(o.badRing)
	e.I64s(o.shortCnt)
	e.I64s(o.longCnt)
	e.I64s(o.shortBad)
	e.I64s(o.longBad)
	for k := range o.firing {
		e.Bool(o.firing[k])
		e.I64(o.since[k])
		e.F64(o.burnShortV[k])
		e.F64(o.burnLongV[k])
		e.String(o.detail[k])
	}
	for _, id := range o.exIDs {
		e.U64(id)
	}
	e.I64s(o.exLat)
	for _, nx := range o.exNext {
		e.Int(int(nx))
	}
}

// restoreI64s copies a decoded slice into dst, failing on any length
// mismatch (the flow space and windows are construction parameters, so
// a mismatch means the checkpoint was taken under a different
// configuration).
func restoreI64s(d *checkpoint.Decoder, dst []int64, what string) {
	vs := d.I64s()
	if d.Err() != nil {
		return
	}
	if len(vs) != len(dst) {
		d.Fail("latency: %s length mismatch: checkpoint %d, observatory %d", what, len(vs), len(dst))
		return
	}
	copy(dst, vs)
}

// RestoreState restores a section saved by SaveState into this
// observatory, which must have been attached with the same flow mode
// and objectives.
func (o *Observatory) RestoreState(d *checkpoint.Decoder) {
	mode := d.String()
	if d.Err() == nil && mode != o.mode {
		d.Fail("latency: flow mode mismatch: checkpoint %q, observatory %q", mode, o.mode)
		return
	}
	if nf := d.Int(); d.Err() == nil && nf != o.nFlows {
		d.Fail("latency: flow count mismatch: checkpoint %d, observatory %d", nf, o.nFlows)
		return
	}
	if no := d.Int(); d.Err() == nil && no != len(o.objectives) {
		d.Fail("latency: objective count mismatch: checkpoint %d, observatory %d", no, len(o.objectives))
		return
	}
	for _, ob := range o.objectives {
		if spec := d.String(); d.Err() == nil && spec != ob.String() {
			d.Fail("latency: objective mismatch: checkpoint %q, observatory %q", spec, ob.String())
			return
		}
	}
	for i := range o.flows {
		f := &o.flows[i]
		f.count = d.I64()
		for b := range f.hist {
			f.hist[b] = d.I64()
		}
		f.sumTotal = d.I64()
		f.sumQueue = d.I64()
		f.sumPipe = d.I64()
		f.sumSer = d.I64()
		f.sumCont = d.I64()
		f.sumNet = d.I64()
		f.sumT0 = d.I64()
		f.sumHops = d.I64()
		f.maxTotal = d.I64()
		if d.Err() != nil {
			return
		}
	}
	if len(o.objectives) == 0 {
		return
	}
	o.ticks = d.I64()
	o.lastArb = d.I64()
	o.lastCr = d.I64()
	o.lastStg = d.I64()
	restoreI64s(d, o.bad, "bad counters")
	restoreI64s(d, o.lastCount, "tick counts")
	restoreI64s(d, o.lastBad, "tick bad counts")
	restoreI64s(d, o.cntRing, "count ring")
	restoreI64s(d, o.badRing, "bad ring")
	restoreI64s(d, o.shortCnt, "short count window")
	restoreI64s(d, o.longCnt, "long count window")
	restoreI64s(d, o.shortBad, "short bad window")
	restoreI64s(d, o.longBad, "long bad window")
	if d.Err() != nil {
		return
	}
	o.firingCount = 0
	for k := range o.firing {
		o.firing[k] = d.Bool()
		if o.firing[k] {
			o.firingCount++
		}
		o.since[k] = d.I64()
		o.burnShortV[k] = d.F64()
		o.burnLongV[k] = d.F64()
		o.detail[k] = d.String()
		if d.Err() != nil {
			return
		}
	}
	for i := range o.exIDs {
		o.exIDs[i] = d.U64()
	}
	restoreI64s(d, o.exLat, "exemplar latencies")
	for i := range o.exNext {
		o.exNext[i] = int32(d.Int())
	}
}
