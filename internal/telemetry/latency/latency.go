// Package latency is the per-flow latency observatory: an
// allocation-free online decomposition of every delivered packet's
// end-to-end latency against the paper's §3.1 zero-load model
// T0 = H·t_r + L/b.
//
// Packets are classified into flows (source→destination pair, source
// row/column, or traffic class); each flow accumulates a fixed-bucket
// log₂ histogram of end-to-end latency plus exact component sums that
// decompose it by cause:
//
//	total         = arrived − birth                 (what the client saw)
//	source queue  = inject − birth                  (waiting for injection)
//	pipeline      = 2 + H·(1 + linkLatency)         (the §3.1 H·t_r term)
//	serialization = (flits − 1)·serdes              (the §3.1 L/b term)
//	contention    = total − queue − pipeline − ser  (signed residual)
//
// The pipeline and serialization terms are the network's measured
// zero-load latency: on an idle mesh the head flit of an H-hop packet
// arrives exactly 2 + H·(1 + linkLatency) cycles after injection (one
// injection stage, one ejection stage, and per hop one router traversal
// plus the wire), and each body flit adds one serdes period. Their sum
// is the per-packet T0, so the exporter's contention factor
// T/T0 — mean network latency over mean zero-load latency — is the
// live §4.3 load-latency ratio per flow, and a factor past the
// saturation threshold flags the flow as saturated. The contention
// residual is signed: fault rerouting lengthens paths mid-flight
// (positive), and a reserved §2.6 bypass slot can never beat the model
// (zero), so a negative residual indicates a model/implementation
// drift worth investigating.
//
// The decomposition reconciles exactly with the run recorder: both
// gate on birth ≥ warmup and both observe packets at the deterministic
// eject-merge barrier, so Σ_flows(count, Σtotal) equals the recorder's
// PacketLatency (count, sum) byte-for-byte at any shard count and with
// epoch batching on or off.
//
// On top of the per-flow state sits an SLO engine (slo.go): latency
// objectives like "p99<=40" evaluated on a fixed cadence with
// multi-window burn-rate alerting, full attribution (offending flow,
// dominant stall cause, hottest links on the flow's path, exemplar
// packet IDs), and a flight-recorder dump hook so the post-mortem tool
// can time-travel to the exact cycles behind a burn.
//
// With no observatory attached the engine's hot path pays one nil
// check; with one attached the record path is allocation-free (fixed
// arrays, no maps, exemplar rings), preserving the 0 allocs/op steady
// state.
package latency

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"repro/internal/network"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Flow classification modes for Config.Flows.
const (
	FlowPair   = "pair"   // one flow per (src, dst) tile pair: "3->5"
	FlowSrcRow = "srcrow" // one flow per source row: "row2"
	FlowSrcCol = "srccol" // one flow per source column: "col1"
	FlowClass  = "class"  // one flow per traffic class: "class0"
)

// Defaults for Config's zero values.
const (
	DefaultEvery            = 256
	DefaultMaxFlows         = 32
	DefaultMaxFlowStates    = 4096
	DefaultShortWindows     = 2
	DefaultLongWindows      = 16
	DefaultBurnThreshold    = 2.0
	DefaultMinSamples       = 64
	DefaultSaturationFactor = 2.0
)

// maxExemplars is the per-flow exemplar packet-ID ring size.
const maxExemplars = 4

// nBuckets is the per-flow latency histogram size: bucket b holds
// latencies whose bit length is b (i.e. [2^(b-1), 2^b-1]), so 31 exact
// buckets cover every latency below 2^30 cycles and the last bucket
// counts the rest (quantiles there report the exact observed max and
// raise the Overflowed flag).
const nBuckets = 32

// classFlows bounds the class-mode flow space.
const classFlows = 16

// Config parameterizes an Observatory. The zero value of every field
// except Flows selects the documented default.
type Config struct {
	// Flows selects the classification mode (FlowPair, FlowSrcRow,
	// FlowSrcCol, FlowClass). Required.
	Flows string

	// SLO holds ';'-separated latency objectives, e.g.
	// "p99<=40" or "p95<=30@flows;p999<=120@flows" (the "@flows" scope
	// suffix is optional — per-flow is the only scope). Empty disables
	// the SLO engine; the per-flow decomposition still runs.
	SLO string

	// Every is the SLO evaluation cadence in cycles (default 256).
	Every int64

	// MaxFlows bounds exported cardinality: /metrics and /snapshot
	// carry the top-MaxFlows flows by packet count (default 32). The
	// CSV section always carries every active flow.
	MaxFlows int

	// MaxFlowStates bounds the tracked flow space (default 4096); a
	// classification that would exceed it is rejected at Attach.
	MaxFlowStates int

	// ShortWindows and LongWindows are the burn-rate windows in
	// evaluation ticks (defaults 2 and 16); Short must be < Long.
	ShortWindows, LongWindows int

	// BurnThreshold is the burn-rate multiple both windows must exceed
	// to fire (default 2.0: the flow is consuming its error budget at
	// twice the sustainable rate).
	BurnThreshold float64

	// MinSamples is the minimum packet count in the long window before
	// an objective may fire (default 64).
	MinSamples int64

	// SaturationFactor is the contention factor T/T0 at or past which a
	// flow is flagged saturated (default 2.0).
	SaturationFactor float64
}

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = DefaultEvery
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = DefaultMaxFlows
	}
	if c.MaxFlowStates <= 0 {
		c.MaxFlowStates = DefaultMaxFlowStates
	}
	if c.ShortWindows <= 0 {
		c.ShortWindows = DefaultShortWindows
	}
	if c.LongWindows <= 0 {
		c.LongWindows = DefaultLongWindows
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = DefaultBurnThreshold
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.SaturationFactor <= 0 {
		c.SaturationFactor = DefaultSaturationFactor
	}
	return c
}

// flowState is one flow's fixed-size accumulator. Everything is exact
// integer arithmetic so checkpointed state resumes byte-identically.
type flowState struct {
	count int64
	hist  [nBuckets]int64

	// Component sums; the accounting identity
	// sumTotal == sumQueue + sumPipe + sumSer + sumCont holds by
	// construction (contention is the signed residual).
	sumTotal, sumQueue, sumPipe, sumSer, sumCont int64

	sumNet   int64 // Σ (arrived − inject), the T in T/T0
	sumT0    int64 // Σ per-packet zero-load latency
	sumHops  int64
	maxTotal int64
}

// Observatory classifies delivered packets into flows and maintains the
// per-flow latency decomposition and SLO state. It implements
// network.PacketObserver and network.CheckpointExtra.
type Observatory struct {
	cfg   Config
	topo  topology.Topology
	probe *telemetry.Probe

	warmup          int64
	linkLat, serdes int
	tiles, kx       int

	mode   string
	nFlows int
	names  []string
	flows  []flowState

	// SLO engine state (slo.go). Flattened [nFlows] and [nFlows*nObj]
	// and [..*longW] arrays; all fixed at Attach.
	objectives []Objective
	every      int64
	shortW     int
	longW      int
	burnThr    float64
	minSamples int64
	satFactor  float64
	minTarget  int64 // smallest objective target, the exemplar gate

	ticks                    int64
	bad                      []int64 // [nFlows*nObj] cumulative over-target packets
	lastCount                []int64 // [nFlows] count at last tick
	lastBad                  []int64 // [nFlows*nObj]
	cntRing                  []int64 // [nFlows*longW] per-tick count deltas
	badRing                  []int64 // [nFlows*nObj*longW]
	shortCnt, longCnt        []int64 // [nFlows] running window sums
	shortBad, longBad        []int64 // [nFlows*nObj]
	lastArb, lastCr, lastStg int64   // stall-taxonomy totals at last tick
	firing                   []bool  // [nFlows*nObj]
	since                    []int64
	burnShortV, burnLongV    []float64
	detail                   []string
	exIDs                    []uint64 // [nFlows*maxExemplars] exemplar rings
	exLat                    []int64
	exNext                   []int32 // [nFlows]
	sink                     BurnSink
	firingCount              int
	hotScratch               []int32
}

// Attach builds an observatory over the network's delivered-packet
// stream and registers it as the packet observer, an end-of-cycle SLO
// evaluation phase (when objectives are configured), and a checkpoint
// extra named "latency". Attach it before the serve collector so
// /healthz sees fresh SLO verdicts, and before the flight recorder so
// a burn's dump includes the burn cycle's record.
func Attach(n *network.Network, cfg Config) (*Observatory, error) {
	cfg = cfg.withDefaults()
	if cfg.ShortWindows >= cfg.LongWindows {
		return nil, fmt.Errorf("latency: short window (%d) must be below the long window (%d)", cfg.ShortWindows, cfg.LongWindows)
	}
	topo := n.Topology()
	tiles := topo.NumTiles()
	kx, ky := topo.Radix()

	o := &Observatory{
		cfg:        cfg,
		topo:       topo,
		probe:      n.Probe(),
		warmup:     n.Recorder().WarmupCycles,
		linkLat:    n.LinkLatency(),
		serdes:     n.SerdesCycles(),
		tiles:      tiles,
		kx:         kx,
		mode:       cfg.Flows,
		every:      cfg.Every,
		shortW:     cfg.ShortWindows,
		longW:      cfg.LongWindows,
		burnThr:    cfg.BurnThreshold,
		minSamples: cfg.MinSamples,
		satFactor:  cfg.SaturationFactor,
	}

	switch cfg.Flows {
	case FlowPair:
		o.nFlows = tiles * tiles
	case FlowSrcRow:
		o.nFlows = ky
	case FlowSrcCol:
		o.nFlows = kx
	case FlowClass:
		o.nFlows = classFlows
	default:
		return nil, fmt.Errorf("latency: unknown flow mode %q (want %s, %s, %s, or %s)",
			cfg.Flows, FlowPair, FlowSrcRow, FlowSrcCol, FlowClass)
	}
	if o.nFlows > cfg.MaxFlowStates {
		return nil, fmt.Errorf("latency: flow mode %q needs %d flow states, over the %d cap — use a coarser mode (%s/%s/%s)",
			cfg.Flows, o.nFlows, cfg.MaxFlowStates, FlowSrcRow, FlowSrcCol, FlowClass)
	}

	o.names = make([]string, o.nFlows)
	for i := range o.names {
		switch cfg.Flows {
		case FlowPair:
			o.names[i] = fmt.Sprintf("%d->%d", i/tiles, i%tiles)
		case FlowSrcRow:
			o.names[i] = fmt.Sprintf("row%d", i)
		case FlowSrcCol:
			o.names[i] = fmt.Sprintf("col%d", i)
		case FlowClass:
			o.names[i] = fmt.Sprintf("class%d", i)
		}
	}
	o.flows = make([]flowState, o.nFlows)

	objs, err := ParseSLO(cfg.SLO)
	if err != nil {
		return nil, err
	}
	o.objectives = objs
	nObj := len(objs)
	if nObj > 0 {
		o.minTarget = objs[0].Target
		for _, ob := range objs[1:] {
			if ob.Target < o.minTarget {
				o.minTarget = ob.Target
			}
		}
		o.bad = make([]int64, o.nFlows*nObj)
		o.lastBad = make([]int64, o.nFlows*nObj)
		o.badRing = make([]int64, o.nFlows*nObj*o.longW)
		o.shortBad = make([]int64, o.nFlows*nObj)
		o.longBad = make([]int64, o.nFlows*nObj)
		o.lastCount = make([]int64, o.nFlows)
		o.cntRing = make([]int64, o.nFlows*o.longW)
		o.shortCnt = make([]int64, o.nFlows)
		o.longCnt = make([]int64, o.nFlows)
		o.firing = make([]bool, o.nFlows*nObj)
		o.since = make([]int64, o.nFlows*nObj)
		o.burnShortV = make([]float64, o.nFlows*nObj)
		o.burnLongV = make([]float64, o.nFlows*nObj)
		o.detail = make([]string, o.nFlows*nObj)
		o.exIDs = make([]uint64, o.nFlows*maxExemplars)
		o.exLat = make([]int64, o.nFlows*maxExemplars)
		o.exNext = make([]int32, o.nFlows)
	}

	n.SetPacketObserver(o)
	n.AddCheckpointExtra("latency", o)
	if nObj > 0 {
		n.Kernel().AddPhase("slo", o.phase)
	}
	return o, nil
}

// Config reports the observatory's effective (defaulted) configuration.
func (o *Observatory) Config() Config { return o.cfg }

// NumFlows reports the size of the tracked flow space.
func (o *Observatory) NumFlows() int { return o.nFlows }

// FlowName reports the display name of flow index fi.
func (o *Observatory) FlowName(fi int) string { return o.names[fi] }

// flowIndex classifies one delivered packet; callers guarantee the
// result is in [0, nFlows).
func (o *Observatory) flowIndex(ob *network.PacketObservation) int {
	switch o.mode {
	case FlowPair:
		return ob.Src*o.tiles + ob.Dst
	case FlowSrcRow:
		return ob.Src / o.kx
	case FlowSrcCol:
		return ob.Src % o.kx
	default: // FlowClass
		c := ob.Class
		if c < 0 {
			c = 0
		}
		if c >= o.nFlows {
			c = o.nFlows - 1
		}
		return c
	}
}

// PacketDelivered folds one delivered packet into its flow. It runs at
// the deterministic eject-merge barrier in tile order and allocates
// nothing. The warmup gate mirrors the run recorder's exactly, so the
// per-flow sums reconcile with the recorder's latency histogram.
func (o *Observatory) PacketDelivered(ob *network.PacketObservation) {
	if ob.Birth < o.warmup {
		return
	}
	fi := o.flowIndex(ob)
	f := &o.flows[fi]

	total := ob.Arrived - ob.Birth
	queue := ob.Inject - ob.Birth
	pipe := int64(2 + ob.Hops*(1+o.linkLat))
	ser := int64(ob.Flits-1) * int64(o.serdes)
	net := ob.Arrived - ob.Inject
	cont := net - pipe - ser

	f.count++
	f.sumTotal += total
	f.sumQueue += queue
	f.sumPipe += pipe
	f.sumSer += ser
	f.sumCont += cont
	f.sumNet += net
	f.sumT0 += pipe + ser
	f.sumHops += int64(ob.Hops)
	if total > f.maxTotal {
		f.maxTotal = total
	}
	b := bits.Len64(uint64(total))
	if b >= nBuckets {
		b = nBuckets - 1
	}
	f.hist[b]++

	if nObj := len(o.objectives); nObj > 0 {
		for oi := 0; oi < nObj; oi++ {
			if total > o.objectives[oi].Target {
				o.bad[fi*nObj+oi]++
			}
		}
		// Exemplars: packets over the tightest target, so a burn's dump
		// names concrete packet IDs nocpost can time-travel to.
		if total > o.minTarget {
			slot := fi*maxExemplars + int(o.exNext[fi])%maxExemplars
			o.exIDs[slot] = ob.ID
			o.exLat[slot] = total
			o.exNext[fi]++
		}
	}
}

// quantile estimates the q-quantile of one flow's latency histogram:
// the upper bound of the bucket holding the rank-th sample, which for
// log₂ buckets bounds the true value within 2x. The estimate is clamped
// to the observed maximum (a bucket's nominal upper bound can exceed
// every sample in it), so quantiles never exceed max. A rank landing in
// the top (overflow) bucket returns the exact observed maximum and
// reports overflowed.
func (f *flowState) quantile(q float64) (v int64, overflowed bool) {
	if f.count == 0 {
		return 0, false
	}
	rank := int64(q*float64(f.count) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > f.count {
		rank = f.count
	}
	var cum int64
	for b := 0; b < nBuckets; b++ {
		cum += f.hist[b]
		if cum >= rank {
			if b == nBuckets-1 {
				return f.maxTotal, true
			}
			v = (int64(1) << uint(b)) - 1
			if v > f.maxTotal {
				v = f.maxTotal
			}
			return v, false
		}
	}
	return f.maxTotal, true
}

// FlowSnap is one flow's exported state, for /snapshot and the noctop
// panel.
type FlowSnap struct {
	Flow  string `json:"flow"`
	Count int64  `json:"count"`

	MeanCycles float64 `json:"mean_cycles"`
	P50        int64   `json:"p50_cycles"`
	P99        int64   `json:"p99_cycles"`
	MaxCycles  int64   `json:"max_cycles"`
	Overflowed bool    `json:"overflowed,omitempty"`

	// Cumulative per-cause cycle totals; they sum to MeanCycles·Count
	// exactly (contention is signed).
	QueueCycles         int64 `json:"queue_cycles"`
	PipelineCycles      int64 `json:"pipeline_cycles"`
	SerializationCycles int64 `json:"serialization_cycles"`
	ContentionCycles    int64 `json:"contention_cycles"`

	MeanHops         float64 `json:"mean_hops"`
	ZeroLoadCycles   float64 `json:"zero_load_cycles"`  // mean per-packet T0
	ContentionFactor float64 `json:"contention_factor"` // mean T / mean T0
	Saturated        bool    `json:"saturated,omitempty"`
}

func (o *Observatory) flowSnap(fi int) FlowSnap {
	f := &o.flows[fi]
	s := FlowSnap{
		Flow:                o.names[fi],
		Count:               f.count,
		MaxCycles:           f.maxTotal,
		QueueCycles:         f.sumQueue,
		PipelineCycles:      f.sumPipe,
		SerializationCycles: f.sumSer,
		ContentionCycles:    f.sumCont,
	}
	if f.count == 0 {
		return s
	}
	s.MeanCycles = float64(f.sumTotal) / float64(f.count)
	s.P50, _ = f.quantile(0.50)
	s.P99, s.Overflowed = f.quantile(0.99)
	s.MeanHops = float64(f.sumHops) / float64(f.count)
	s.ZeroLoadCycles = float64(f.sumT0) / float64(f.count)
	if f.sumT0 > 0 {
		s.ContentionFactor = float64(f.sumNet) / float64(f.sumT0)
		s.Saturated = s.ContentionFactor >= o.satFactor && f.count >= 16
	}
	return s
}

// AppendFlowSnaps appends the top-MaxFlows flows by packet count
// (ties broken by flow index, so the selection is deterministic) to
// dst and returns it.
func (o *Observatory) AppendFlowSnaps(dst []FlowSnap) []FlowSnap {
	if cap(o.hotScratch) < o.cfg.MaxFlows {
		o.hotScratch = make([]int32, 0, o.cfg.MaxFlows)
	}
	top := o.hotScratch[:0]
	// Partial selection: repeatedly scan for the best unpicked flow.
	// MaxFlows is small (32) so this stays O(MaxFlows·nFlows) with no
	// allocation.
	for len(top) < o.cfg.MaxFlows {
		best := -1
		for fi := range o.flows {
			if o.flows[fi].count == 0 {
				continue
			}
			picked := false
			for _, t := range top {
				if int(t) == fi {
					picked = true
					break
				}
			}
			if picked {
				continue
			}
			if best < 0 || o.flows[fi].count > o.flows[best].count {
				best = fi
			}
		}
		if best < 0 {
			break
		}
		top = append(top, int32(best))
	}
	o.hotScratch = top
	for _, fi := range top {
		dst = append(dst, o.flowSnap(int(fi)))
	}
	return dst
}

// Totals reports the observatory-wide packet count and end-to-end
// latency sum, the reconciliation identity's left-hand side: they
// equal the run recorder's PacketLatency count and sum exactly.
func (o *Observatory) Totals() (count, sumTotal int64) {
	for i := range o.flows {
		count += o.flows[i].count
		sumTotal += o.flows[i].sumTotal
	}
	return count, sumTotal
}

// WriteCSV writes the "# flows" section: one row per active flow in
// index order (full cardinality — the MaxFlows bound applies only to
// the live surfaces), plus per-objective cumulative over-target counts.
// The output is a pure function of checkpointed state, so a resumed
// run's section byte-matches a straight-through run's.
func (o *Observatory) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# flows\n"); err != nil {
		return err
	}
	header := "flow,count,mean_cycles,p50,p99,max,overflowed,queue_cycles,pipeline_cycles,serialization_cycles,contention_cycles,mean_hops,t0_cycles,contention_factor,saturated"
	for _, ob := range o.objectives {
		header += ",bad_" + ob.Slug()
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	nObj := len(o.objectives)
	for fi := range o.flows {
		if o.flows[fi].count == 0 {
			continue
		}
		s := o.flowSnap(fi)
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%d,%d,%d,%t,%d,%d,%d,%d,%.3f,%.3f,%.4f,%t",
			s.Flow, s.Count, s.MeanCycles, s.P50, s.P99, s.MaxCycles, s.Overflowed,
			s.QueueCycles, s.PipelineCycles, s.SerializationCycles, s.ContentionCycles,
			s.MeanHops, s.ZeroLoadCycles, s.ContentionFactor, s.Saturated); err != nil {
			return err
		}
		for oi := 0; oi < nObj; oi++ {
			if _, err := fmt.Fprintf(w, ",%d", o.bad[fi*nObj+oi]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ActiveFlows reports the indices of flows with at least one delivered
// packet, in index order (allocates; reporting path only).
func (o *Observatory) ActiveFlows() []int {
	var out []int
	for fi := range o.flows {
		if o.flows[fi].count > 0 {
			out = append(out, fi)
		}
	}
	sort.Ints(out)
	return out
}
