package health

import (
	"strings"
	"testing"

	"repro/internal/route"
)

func verdict(t *testing.T, m *Monitor, detector string) Verdict {
	t.Helper()
	for _, v := range m.Verdicts() {
		if v.Detector == detector {
			return v
		}
	}
	t.Fatalf("no verdict for %q", detector)
	return Verdict{}
}

func TestVerdictOrderAndDefaults(t *testing.T) {
	m := New(Config{})
	cfg := m.Config()
	if cfg.DeadlockWindow != DefaultDeadlockWindow || cfg.StarveAge != DefaultStarveAge ||
		cfg.CollapseWindows != DefaultCollapseWindows || cfg.CollapseTolerance != DefaultCollapseTolerance {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	vs := m.Verdicts()
	want := []string{DetectorDeadlock, DetectorStarvation, DetectorCongestion}
	if len(vs) != len(want) {
		t.Fatalf("got %d verdicts", len(vs))
	}
	for i, v := range vs {
		if v.Detector != want[i] {
			t.Fatalf("verdict %d = %q, want %q", i, v.Detector, want[i])
		}
		if !v.Healthy {
			t.Fatalf("fresh monitor unhealthy: %+v", v)
		}
	}
	if !m.Healthy() {
		t.Fatal("fresh monitor not Healthy()")
	}
}

func TestDeadlockFiresAfterWindowAndNamesCycle(t *testing.T) {
	m := New(Config{DeadlockWindow: 100})
	// A two-VC wait-for loop over the East/West ports between tiles 1 and
	// 2: each entry's (DownTile, OutPort.Opposite(), OutVC) resolves to
	// the other's (Tile, Port, VC).
	cycleWaiting := []VCWait{
		{Tile: 1, Port: route.East, VC: 0, Age: 400, Routed: true, OutPort: route.East, OutVC: 0, DownTile: 2},
		{Tile: 2, Port: route.West, VC: 0, Age: 400, Routed: true, OutPort: route.West, OutVC: 0, DownTile: 1},
	}
	if ev := m.Observe(Sample{Cycle: 0, EjectedFlits: 10, BufOcc: 4}); len(ev) != 0 {
		t.Fatalf("first sample produced events: %v", ev)
	}
	// No new ejections with flits buffered: the stretch starts at cycle 50.
	if ev := m.Observe(Sample{Cycle: 50, EjectedFlits: 10, BufOcc: 4, Waiting: cycleWaiting}); len(ev) != 0 {
		t.Fatalf("window not elapsed but events fired: %v", ev)
	}
	ev := m.Observe(Sample{Cycle: 200, EjectedFlits: 10, BufOcc: 4, Waiting: cycleWaiting})
	if len(ev) != 1 || ev[0].Detector != DetectorDeadlock || ev[0].Healthy {
		t.Fatalf("expected deadlock event, got %v", ev)
	}
	v := verdict(t, m, DetectorDeadlock)
	if v.Healthy {
		t.Fatal("deadlock verdict still healthy")
	}
	if !strings.Contains(v.Detail, "cycle of waiting VCs") ||
		!strings.Contains(v.Detail, "t1:E.vc0") || !strings.Contains(v.Detail, "t2:W.vc0") {
		t.Fatalf("cycle attribution missing from detail: %q", v.Detail)
	}
	if v.Since != 50 {
		t.Fatalf("Since = %d, want 50 (first stuck observation)", v.Since)
	}
	// Progress clears it.
	ev = m.Observe(Sample{Cycle: 300, EjectedFlits: 14, BufOcc: 2})
	if len(ev) != 1 || ev[0].Detector != DetectorDeadlock || !ev[0].Healthy {
		t.Fatalf("expected recovery event, got %v", ev)
	}
	if !m.Healthy() {
		t.Fatal("monitor unhealthy after recovery")
	}
}

func TestDeadlockPrefersWedgedAttribution(t *testing.T) {
	m := New(Config{DeadlockWindow: 10})
	waiting := []VCWait{
		{Tile: 5, Port: route.North, VC: 2, Age: 900, Routed: true, OutPort: route.East, OutVC: 1, DownTile: 6, Stuck: true},
		{Tile: 4, Port: route.West, VC: 0, Age: 100, Routed: true, OutPort: route.East, OutVC: 2, DownTile: 5},
	}
	m.Observe(Sample{Cycle: 0, EjectedFlits: 3, BufOcc: 7})
	m.Observe(Sample{Cycle: 20, EjectedFlits: 3, BufOcc: 7, Waiting: waiting})
	ev := m.Observe(Sample{Cycle: 40, EjectedFlits: 3, BufOcc: 7, Waiting: waiting, DeadLinks: 1})
	if len(ev) != 1 || ev[0].Healthy {
		t.Fatalf("expected deadlock event, got %v", ev)
	}
	d := verdict(t, m, DetectorDeadlock).Detail
	if !strings.Contains(d, "wedged VCs") || !strings.Contains(d, "t5:N.vc2") || !strings.Contains(d, "stuck") {
		t.Fatalf("wedged attribution missing: %q", d)
	}
	if !strings.Contains(d, "1 dead link") {
		t.Fatalf("dead-link context missing: %q", d)
	}
}

func TestDeadlockNamesOldestWaiterWithoutCycle(t *testing.T) {
	m := New(Config{DeadlockWindow: 10})
	// An acyclic chain: t3 waits on t7, t7 waits on a VC outside the set.
	waiting := []VCWait{
		{Tile: 3, Port: route.South, VC: 1, Age: 50, Routed: true, OutPort: route.North, OutVC: 0, DownTile: 7},
		{Tile: 7, Port: route.South, VC: 0, Age: 120, Routed: true, OutPort: route.North, OutVC: 3, DownTile: 11},
	}
	m.Observe(Sample{Cycle: 0, EjectedFlits: 0, BufOcc: 2})
	m.Observe(Sample{Cycle: 20, EjectedFlits: 0, BufOcc: 2, Waiting: waiting})
	ev := m.Observe(Sample{Cycle: 40, EjectedFlits: 0, BufOcc: 2, Waiting: waiting})
	if len(ev) != 1 {
		t.Fatalf("expected deadlock event, got %v", ev)
	}
	d := verdict(t, m, DetectorDeadlock).Detail
	if !strings.Contains(d, "oldest waiting VC t7:S.vc0") {
		t.Fatalf("oldest-waiter attribution missing: %q", d)
	}
}

func TestStarvationNamesRouterPortVC(t *testing.T) {
	m := New(Config{StarveAge: 200})
	m.Observe(Sample{Cycle: 0, EjectedFlits: 0})
	// Network progressing (ejections advance) but one VC is ancient.
	waiting := []VCWait{
		{Tile: 9, Port: route.West, VC: 3, Age: 350, Routed: true, OutPort: route.East, OutVC: 1, DownTile: 10},
		{Tile: 2, Port: route.North, VC: 1, Age: 150, Routed: true, OutPort: route.South, OutVC: 0, DownTile: 1},
	}
	ev := m.Observe(Sample{Cycle: 500, EjectedFlits: 100, BufOcc: 5, Waiting: waiting})
	if len(ev) != 1 || ev[0].Detector != DetectorStarvation || ev[0].Healthy {
		t.Fatalf("expected starvation event, got %v", ev)
	}
	d := verdict(t, m, DetectorStarvation).Detail
	if !strings.Contains(d, "t9:W.vc3") {
		t.Fatalf("starved VC not named: %q", d)
	}
	if strings.Contains(d, "t2:N.vc1") {
		t.Fatalf("below-watermark VC reported: %q", d)
	}
	// Recovery when the VC drains.
	ev = m.Observe(Sample{Cycle: 1000, EjectedFlits: 200, BufOcc: 1})
	if len(ev) != 1 || !ev[0].Healthy {
		t.Fatalf("expected starvation recovery, got %v", ev)
	}
}

func TestStarvationOrdersByAgeAndCaps(t *testing.T) {
	m := New(Config{StarveAge: 100})
	waiting := []VCWait{
		{Tile: 1, Port: route.North, VC: 0, Age: 150},
		{Tile: 2, Port: route.East, VC: 1, Age: 400},
		{Tile: 3, Port: route.South, VC: 2, Age: 250},
		{Tile: 4, Port: route.West, VC: 3, Age: 300},
		{Tile: 5, Port: route.North, VC: 0, Age: 200},
	}
	m.Observe(Sample{Cycle: 0})
	m.Observe(Sample{Cycle: 100, EjectedFlits: 10, Waiting: waiting})
	d := verdict(t, m, DetectorStarvation).Detail
	if !strings.Contains(d, "5 VC(s)") {
		t.Fatalf("starved count missing: %q", d)
	}
	// Oldest three named in age order, remainder summarized.
	i1 := strings.Index(d, "t2:E.vc1")
	i2 := strings.Index(d, "t4:W.vc3")
	i3 := strings.Index(d, "t3:S.vc2")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Fatalf("starved VCs not in age order: %q", d)
	}
	if strings.Contains(d, "t5:N.vc0") || !strings.Contains(d, "(+2 more)") {
		t.Fatalf("cap at three named VCs not applied: %q", d)
	}
}

func TestStarvationDefersToDeadlock(t *testing.T) {
	m := New(Config{StarveAge: 100, DeadlockWindow: 10_000})
	m.Observe(Sample{Cycle: 0, EjectedFlits: 7})
	waiting := []VCWait{{Tile: 1, Port: route.East, VC: 0, Age: 999, Routed: true, OutPort: route.West, OutVC: 0, DownTile: 0}}
	// Zero ejections with buffered flits is the deadlock detector's
	// domain; starvation must stay quiet.
	ev := m.Observe(Sample{Cycle: 500, EjectedFlits: 7, BufOcc: 3, Waiting: waiting})
	for _, e := range ev {
		if e.Detector == DetectorStarvation {
			t.Fatalf("starvation fired during total stall: %v", ev)
		}
	}
}

func TestCongestionCollapseFiresAndNamesHotLinks(t *testing.T) {
	m := New(Config{CollapseWindows: 2, CollapseTolerance: 0.1})
	hot := []LinkLoad{
		{Index: 4, From: 1, To: 2, Dir: "E", Flits: 900},
		{Index: 9, From: 2, To: 3, Dir: "E", Flits: 700},
	}
	m.Observe(Sample{Cycle: 0})
	// Window rates: offered 1.0 pkts/cycle, delivered 4.0 flits/cycle.
	m.Observe(Sample{Cycle: 100, GeneratedPackets: 100, EjectedFlits: 400})
	// Offered climbs to 1.1 while delivered falls to 3.0: fall #1.
	if ev := m.Observe(Sample{Cycle: 200, GeneratedPackets: 210, EjectedFlits: 700, HotLinks: hot}); len(ev) != 0 {
		t.Fatalf("collapse fired after one falling window: %v", ev)
	}
	// Offered 1.2, delivered 2.0: fall #2 completes the streak.
	ev := m.Observe(Sample{Cycle: 300, GeneratedPackets: 330, EjectedFlits: 900, HotLinks: hot})
	if len(ev) != 1 || ev[0].Detector != DetectorCongestion || ev[0].Healthy {
		t.Fatalf("expected congestion event, got %v", ev)
	}
	v := verdict(t, m, DetectorCongestion)
	if !strings.Contains(v.Detail, "hottest links") || !strings.Contains(v.Detail, "L4 1-E") {
		t.Fatalf("hot-link attribution missing: %q", v.Detail)
	}
	if v.Since != 200 {
		t.Fatalf("Since = %d, want 200 (first falling window)", v.Since)
	}
	// Delivered recovers, the streak resets, verdict flips healthy.
	ev = m.Observe(Sample{Cycle: 400, GeneratedPackets: 450, EjectedFlits: 1400})
	if len(ev) != 1 || !ev[0].Healthy {
		t.Fatalf("expected congestion recovery, got %v", ev)
	}
}

func TestCongestionStaysLatchedAtZeroDelivery(t *testing.T) {
	m := New(Config{CollapseWindows: 2, CollapseTolerance: 0.1})
	m.Observe(Sample{Cycle: 0})
	m.Observe(Sample{Cycle: 100, GeneratedPackets: 100, EjectedFlits: 400})
	m.Observe(Sample{Cycle: 200, GeneratedPackets: 200, EjectedFlits: 500}) // fall #1
	ev := m.Observe(Sample{Cycle: 300, GeneratedPackets: 300, EjectedFlits: 500})
	if len(ev) != 1 || ev[0].Healthy {
		t.Fatalf("expected collapse at zero delivery, got %v", ev)
	}
	// Delivery stays flat at zero while offered load keeps rising: the
	// collapse holds; it must NOT read as a recovery.
	ev = m.Observe(Sample{Cycle: 400, GeneratedPackets: 400, EjectedFlits: 500})
	if len(ev) != 0 || m.Healthy() {
		t.Fatalf("collapse unlatched while delivery was flat at zero: %v", ev)
	}
	// Delivery resuming clears it.
	ev = m.Observe(Sample{Cycle: 500, GeneratedPackets: 500, EjectedFlits: 900})
	if len(ev) != 1 || !ev[0].Healthy {
		t.Fatalf("expected recovery once delivery resumed, got %v", ev)
	}
}

func TestCongestionSilentWhenOfferedFallsToo(t *testing.T) {
	m := New(Config{CollapseWindows: 2})
	m.Observe(Sample{Cycle: 0})
	m.Observe(Sample{Cycle: 100, GeneratedPackets: 100, EjectedFlits: 400})
	// Both offered and delivered fall (sources backing off): not collapse.
	m.Observe(Sample{Cycle: 200, GeneratedPackets: 150, EjectedFlits: 600})
	ev := m.Observe(Sample{Cycle: 300, GeneratedPackets: 200, EjectedFlits: 800})
	if len(ev) != 0 || !m.Healthy() {
		t.Fatalf("congestion fired on cooperative slowdown: %v", ev)
	}
}

func TestWaitCycleFindsLongLoop(t *testing.T) {
	// A three-VC loop 0 -> 1 -> 2 -> 0 plus a dangling chain from tile 3
	// that joins the loop but is not part of it.
	ws := []VCWait{
		{Tile: 0, Port: route.West, VC: 0, Routed: true, OutPort: route.East, OutVC: 0, DownTile: 1},
		{Tile: 1, Port: route.West, VC: 0, Routed: true, OutPort: route.East, OutVC: 0, DownTile: 2},
		{Tile: 2, Port: route.West, VC: 0, Routed: true, OutPort: route.East, OutVC: 0, DownTile: 0},
		{Tile: 3, Port: route.North, VC: 1, Routed: true, OutPort: route.East, OutVC: 0, DownTile: 0},
	}
	cyc := waitCycle(ws)
	if len(cyc) != 3 {
		t.Fatalf("cycle length %d, want 3 (%v)", len(cyc), cyc)
	}
	tiles := map[int]bool{}
	for _, w := range cyc {
		tiles[w.Tile] = true
	}
	if !tiles[0] || !tiles[1] || !tiles[2] || tiles[3] {
		t.Fatalf("wrong cycle members: %v", cyc)
	}
}

func TestWaitCycleNoCycle(t *testing.T) {
	ws := []VCWait{
		{Tile: 0, Port: route.West, VC: 0, Routed: true, OutPort: route.East, OutVC: 0, DownTile: 1},
		{Tile: 1, Port: route.West, VC: 0, Routed: true, OutPort: route.East, OutVC: 0, DownTile: 2},
	}
	if cyc := waitCycle(ws); cyc != nil {
		t.Fatalf("found a cycle in an acyclic chain: %v", cyc)
	}
}
