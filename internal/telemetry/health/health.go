// Package health runs online anomaly detectors over cycle-sampled
// observations of a running network. It is the judgment layer of the live
// observability service (internal/telemetry/serve): the serve collector
// hands it one Sample per window and it maintains three detectors, each
// with root-cause attribution:
//
//   - deadlock/livelock: no flit has been ejected for a full window while
//     buffer occupancy is non-zero. The waiting-VC graph (each routed VC
//     waits on exactly one downstream VC) is chased to name either the
//     cycle of waiting VCs or the wedged/stalled VC the chains end at —
//     the §2.3 credit loop closed on itself.
//   - per-VC starvation: a head-of-line flit has aged past the watermark
//     while the rest of the network still makes progress; names the
//     router, input port, and VC (the Fig. 3 buffer that stopped moving).
//   - congestion collapse: delivered throughput falls across consecutive
//     sampled windows while offered load rises — the post-saturation
//     regime the §4.3 load-latency curves warn about; names the hottest
//     channels of the last window.
//
// The package is pure data-in, verdicts-out: it holds no reference to the
// simulator, so it is trivially unit-testable and imposes no ordering
// constraints on the caller beyond monotonically increasing sample
// cycles.
package health

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/route"
)

// Config holds the detector thresholds; zero values select defaults.
type Config struct {
	// DeadlockWindow is how many cycles ejections must be absent (with
	// flits buffered) before the deadlock detector fires.
	DeadlockWindow int64

	// StarveAge is the head-of-line age watermark, in cycles, past which
	// a waiting VC counts as starved.
	StarveAge int64

	// CollapseWindows is how many consecutive falling windows the
	// congestion detector requires before firing.
	CollapseWindows int

	// CollapseTolerance is the fractional delivered-rate drop that counts
	// as a falling window (0.1 = 10%).
	CollapseTolerance float64
}

// Defaults for Config's zero values.
const (
	DefaultDeadlockWindow  = 1024
	DefaultStarveAge       = 512
	DefaultCollapseWindows = 2
)

// DefaultCollapseTolerance is the default fractional delivered drop.
const DefaultCollapseTolerance = 0.1

func (c Config) withDefaults() Config {
	if c.DeadlockWindow <= 0 {
		c.DeadlockWindow = DefaultDeadlockWindow
	}
	if c.StarveAge <= 0 {
		c.StarveAge = DefaultStarveAge
	}
	if c.CollapseWindows <= 0 {
		c.CollapseWindows = DefaultCollapseWindows
	}
	if c.CollapseTolerance <= 0 {
		c.CollapseTolerance = DefaultCollapseTolerance
	}
	return c
}

// VCWait describes one waiting virtual channel at observation time: a VC
// with buffered flits that has not moved one for Age cycles. Routed
// entries wait on the downstream VC (DownTile, OutPort.Opposite(),
// OutVC); Stuck/Stalled entries are wedged by a fault and wait on
// nothing — they are the chains' roots.
type VCWait struct {
	Tile int       `json:"tile"`
	Port route.Dir `json:"port"`
	VC   int       `json:"vc"`
	Age  int64     `json:"age"`

	Routed  bool      `json:"routed"`
	OutPort route.Dir `json:"out_port"`
	OutVC   int       `json:"out_vc"`
	// DownTile is the tile at the far end of OutPort (-1 for the local
	// port or unrouted VCs).
	DownTile int `json:"down_tile"`

	Stuck   bool `json:"stuck,omitempty"`   // this VC is wedged by a fault
	Stalled bool `json:"stalled,omitempty"` // the whole input port is stalled
}

func (w VCWait) key() vcKey { return vcKey{w.Tile, int(w.Port), w.VC} }

func (w VCWait) label() string {
	return fmt.Sprintf("t%d:%v.vc%d", w.Tile, w.Port, w.VC)
}

type vcKey struct{ tile, port, vc int }

// LinkLoad is one channel's traffic during the last sampled window, for
// hottest-link attribution.
type LinkLoad struct {
	Index int    `json:"index"`
	From  int    `json:"from"`
	To    int    `json:"to"`
	Dir   string `json:"dir"`
	Flits int64  `json:"flits"` // flits sent during the window
}

// Sample is one cycle-boundary observation of the network. Counter
// fields are cumulative since construction; the monitor differences
// adjacent samples itself.
type Sample struct {
	Cycle int64

	// GeneratedPackets is the offered load: packets the clients created
	// (whether or not the network accepted them yet).
	GeneratedPackets int64

	// EjectedFlits is the delivered throughput signal: flits handed out
	// of tile output ports.
	EjectedFlits int64

	// BufOcc is the instantaneous number of flits buffered in routers.
	BufOcc int64

	// Waiting lists the VCs whose head-of-line flit has not moved for at
	// least the starvation watermark (plus any fault-wedged VCs),
	// deterministic order (tile, then port, then VC).
	Waiting []VCWait

	// HotLinks are the busiest channels of the window just ended, hottest
	// first (ties by index), as precomputed by the collector. The slice is
	// borrowed: Observe may read it during the call but copies anything it
	// keeps, so callers can reuse the buffer across samples.
	HotLinks []LinkLoad

	// DeadLinks is the number of channels the watchdogs declared dead —
	// context for deadlock attribution.
	DeadLinks int
}

// Detector names, in the fixed order Verdicts reports them.
const (
	DetectorDeadlock   = "deadlock"
	DetectorStarvation = "starvation"
	DetectorCongestion = "congestion"
)

// Verdict is one detector's current judgment.
type Verdict struct {
	Detector string `json:"detector"`
	Healthy  bool   `json:"healthy"`
	// Since is the cycle the current condition was first observed
	// (0 while healthy and never previously tripped).
	Since  int64  `json:"since,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Event is one health transition (healthy <-> unhealthy), for the SSE
// stream.
type Event struct {
	Cycle    int64  `json:"cycle"`
	Detector string `json:"detector"`
	Healthy  bool   `json:"healthy"`
	Detail   string `json:"detail,omitempty"`
}

// Monitor holds the detectors' state between observations.
type Monitor struct {
	cfg Config

	seen bool
	prev Sample

	// Deadlock state.
	dlStuckSince int64 // first cycle of the current no-ejection stretch; -1 = progressing
	dlUnhealthy  bool
	dlSince      int64
	dlDetail     string

	// Starvation state.
	stUnhealthy bool
	stSince     int64
	stDetail    string

	// Congestion state: window rates and the falling-window streak.
	haveRates    bool
	offeredRate  float64
	deliverRate  float64
	falls        int
	cgUnhealthy  bool
	cgSince      int64
	cgDetail     string
	fallStartCyc int64
	fallStartHot []LinkLoad
}

// New returns a monitor with the given thresholds (zero fields default).
func New(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), dlStuckSince: -1}
}

// Config reports the monitor's effective (defaulted) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Observe folds one sample into the detectors and returns the health
// transitions it caused (empty on steady state). Samples must arrive in
// increasing cycle order.
func (m *Monitor) Observe(s Sample) []Event {
	var events []Event
	if !m.seen {
		m.seen = true
		m.prev = s
		return nil
	}
	prev := m.prev
	m.prev = s
	ejected := s.EjectedFlits - prev.EjectedFlits
	offered := s.GeneratedPackets - prev.GeneratedPackets
	span := s.Cycle - prev.Cycle
	if span <= 0 {
		return nil
	}

	events = m.observeDeadlock(s, ejected, events)
	events = m.observeStarvation(s, ejected, events)
	events = m.observeCongestion(s, offered, ejected, span, events)
	return events
}

func (m *Monitor) observeDeadlock(s Sample, ejected int64, events []Event) []Event {
	progressing := ejected > 0 || s.BufOcc == 0
	if progressing {
		m.dlStuckSince = -1
		if m.dlUnhealthy {
			m.dlUnhealthy = false
			m.dlDetail = ""
			events = append(events, Event{Cycle: s.Cycle, Detector: DetectorDeadlock, Healthy: true})
		}
		return events
	}
	if m.dlStuckSince < 0 {
		m.dlStuckSince = s.Cycle
	}
	if s.Cycle-m.dlStuckSince >= m.cfg.DeadlockWindow && !m.dlUnhealthy {
		m.dlUnhealthy = true
		m.dlSince = m.dlStuckSince
		m.dlDetail = deadlockDetail(s)
		events = append(events, Event{Cycle: s.Cycle, Detector: DetectorDeadlock, Healthy: false, Detail: m.dlDetail})
	}
	return events
}

// deadlockDetail attributes a no-progress condition: wedged (stuck or
// stalled) VCs are the fail-stop root causes; otherwise the waiting-VC
// graph is chased for a cycle (each routed VC waits on exactly one
// downstream VC, so the graph is functional and a plain walk finds any
// cycle); failing both, the deepest chain is named.
func deadlockDetail(s Sample) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d flits buffered, no ejections", s.BufOcc)
	if s.DeadLinks > 0 {
		fmt.Fprintf(&sb, "; %d dead link(s) in the fault map", s.DeadLinks)
	}
	var wedged []VCWait
	for _, w := range s.Waiting {
		if w.Stuck || w.Stalled {
			wedged = append(wedged, w)
		}
	}
	if len(wedged) > 0 {
		sb.WriteString("; wedged VCs: ")
		for i, w := range wedged {
			if i == 4 {
				fmt.Fprintf(&sb, " (+%d more)", len(wedged)-i)
				break
			}
			if i > 0 {
				sb.WriteString(", ")
			}
			kind := "stuck"
			if w.Stalled {
				kind = "stalled port"
			}
			fmt.Fprintf(&sb, "%s (%s, age %d)", w.label(), kind, w.Age)
		}
		return sb.String()
	}
	if cyc := waitCycle(s.Waiting); len(cyc) > 0 {
		sb.WriteString("; cycle of waiting VCs: ")
		for _, w := range cyc {
			sb.WriteString(w.label())
			sb.WriteString(" -> ")
		}
		sb.WriteString(cyc[0].label())
		return sb.String()
	}
	if len(s.Waiting) > 0 {
		// No cycle found (e.g. chains blocked outside the waiting set);
		// name the oldest waiter.
		oldest := s.Waiting[0]
		for _, w := range s.Waiting[1:] {
			if w.Age > oldest.Age {
				oldest = w
			}
		}
		fmt.Fprintf(&sb, "; oldest waiting VC %s (age %d, wants %v)", oldest.label(), oldest.Age, oldest.OutPort)
	}
	return sb.String()
}

// DeadlockDetail attributes a no-progress condition from a single sample,
// exactly as the live deadlock detector does when it fires. The post-mortem
// tool (cmd/nocpost) recomputes attributions from dumped samples through
// this entry point, so its verdicts are string-identical to the live ones.
func DeadlockDetail(s Sample) string { return deadlockDetail(s) }

// WaitCycle finds a cycle in the waiting-VC graph of a sample, the core of
// deadlock attribution, exposed for post-mortem analysis.
func WaitCycle(waiting []VCWait) []VCWait { return waitCycle(waiting) }

// Label renders a VCWait's canonical "t<tile>:<port>.vc<n>" name, the form
// detector attributions use.
func (w VCWait) Label() string { return w.label() }

// waitCycle finds a cycle in the waiting-VC graph. Each routed waiter has
// at most one successor — the downstream VC it needs a credit from — so
// the graph is functional and a colored walk finds a cycle in O(n).
func waitCycle(waiting []VCWait) []VCWait {
	idx := make(map[vcKey]int, len(waiting))
	for i, w := range waiting {
		idx[w.key()] = i
	}
	next := func(w VCWait) (int, bool) {
		if !w.Routed || w.OutVC < 0 || w.DownTile < 0 {
			return 0, false
		}
		j, ok := idx[vcKey{w.DownTile, int(w.OutPort.Opposite()), w.OutVC}]
		return j, ok
	}
	const (
		white = 0 // unvisited
		gray  = 1 // on the current walk
		black = 2 // finished, known cycle-free from here
	)
	color := make([]int, len(waiting))
	for start := range waiting {
		if color[start] != white {
			continue
		}
		var path []int
		i := start
		for {
			color[i] = gray
			path = append(path, i)
			j, ok := next(waiting[i])
			if !ok || color[j] == black {
				break
			}
			if color[j] == gray {
				// Found: the cycle is the path suffix starting at j.
				var cyc []VCWait
				for k := len(path) - 1; k >= 0; k-- {
					cyc = append(cyc, waiting[path[k]])
					if path[k] == j {
						break
					}
				}
				// Reverse into walk order.
				for a, b := 0, len(cyc)-1; a < b; a, b = a+1, b-1 {
					cyc[a], cyc[b] = cyc[b], cyc[a]
				}
				return cyc
			}
			i = j
		}
		for _, k := range path {
			color[k] = black
		}
	}
	return nil
}

func (m *Monitor) observeStarvation(s Sample, ejected int64, events []Event) []Event {
	// While ejections are absent entirely the condition is the deadlock
	// detector's to call; starvation is "stuck while others progress".
	if ejected == 0 && s.BufOcc > 0 {
		return events
	}
	var starved []VCWait
	for _, w := range s.Waiting {
		if w.Age >= m.cfg.StarveAge {
			starved = append(starved, w)
		}
	}
	if len(starved) == 0 {
		if m.stUnhealthy {
			m.stUnhealthy = false
			m.stDetail = ""
			events = append(events, Event{Cycle: s.Cycle, Detector: DetectorStarvation, Healthy: true})
		}
		return events
	}
	sort.Slice(starved, func(i, j int) bool {
		if starved[i].Age != starved[j].Age {
			return starved[i].Age > starved[j].Age
		}
		a, b := starved[i], starved[j]
		if a.Tile != b.Tile {
			return a.Tile < b.Tile
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.VC < b.VC
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d VC(s) past the %d-cycle head-of-line watermark: ", len(starved), m.cfg.StarveAge)
	for i, w := range starved {
		if i == 3 {
			fmt.Fprintf(&sb, " (+%d more)", len(starved)-i)
			break
		}
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s age %d", w.label(), w.Age)
	}
	detail := sb.String()
	if !m.stUnhealthy {
		m.stUnhealthy = true
		m.stSince = s.Cycle
		events = append(events, Event{Cycle: s.Cycle, Detector: DetectorStarvation, Healthy: false, Detail: detail})
	}
	m.stDetail = detail
	return events
}

func (m *Monitor) observeCongestion(s Sample, offered, ejected, span int64, events []Event) []Event {
	offRate := float64(offered) / float64(span)
	delRate := float64(ejected) / float64(span)
	if m.haveRates {
		// "Rising" tolerates a few percent of Bernoulli noise in the
		// offered rate; collapse is about delivery falling while sources
		// keep offering, not about offered load being strictly monotone.
		rising := offRate >= m.offeredRate*0.95
		falling := m.deliverRate > 0 && delRate < m.deliverRate*(1-m.cfg.CollapseTolerance)
		// A delivered rate flat at zero mid-streak is the deepest form of
		// collapse, not a recovery; hold the streak until delivery resumes.
		held := m.falls > 0 && m.deliverRate == 0 && delRate == 0
		if rising && (falling || held) {
			if m.falls == 0 {
				m.fallStartCyc = s.Cycle
				// Copy: the caller owns (and reuses) the HotLinks buffer.
				m.fallStartHot = append(m.fallStartHot[:0], s.HotLinks...)
			}
			m.falls++
		} else {
			m.falls = 0
		}
	}
	m.haveRates = true
	m.offeredRate, m.deliverRate = offRate, delRate

	if m.falls >= m.cfg.CollapseWindows {
		if !m.cgUnhealthy {
			m.cgUnhealthy = true
			m.cgSince = m.fallStartCyc
			var sb strings.Builder
			fmt.Fprintf(&sb, "delivered rate fell %d window(s) running while offered load rose (now %.3f flits/cycle delivered vs %.3f pkts/cycle offered)",
				m.falls, delRate, offRate)
			// If the network froze so hard this window that no link moved,
			// attribute the hot links from the window the streak began.
			hot := s.HotLinks
			if len(hot) == 0 {
				hot = m.fallStartHot
			}
			if len(hot) > 0 {
				sb.WriteString("; hottest links: ")
				for i, l := range hot {
					if i == 3 {
						break
					}
					if i > 0 {
						sb.WriteString(", ")
					}
					fmt.Fprintf(&sb, "L%d %d-%s (%d flits)", l.Index, l.From, l.Dir, l.Flits)
				}
			}
			m.cgDetail = sb.String()
			events = append(events, Event{Cycle: s.Cycle, Detector: DetectorCongestion, Healthy: false, Detail: m.cgDetail})
		}
	} else if m.cgUnhealthy && m.falls == 0 {
		m.cgUnhealthy = false
		m.cgDetail = ""
		events = append(events, Event{Cycle: s.Cycle, Detector: DetectorCongestion, Healthy: true})
	}
	return events
}

// Verdicts reports every detector's current judgment, in a fixed order.
func (m *Monitor) Verdicts() []Verdict { return m.AppendVerdicts(nil) }

// AppendVerdicts appends every detector's current judgment to dst, in a
// fixed order, without allocating when dst has capacity.
func (m *Monitor) AppendVerdicts(dst []Verdict) []Verdict {
	return append(dst,
		Verdict{Detector: DetectorDeadlock, Healthy: !m.dlUnhealthy, Since: m.dlSince, Detail: m.dlDetail},
		Verdict{Detector: DetectorStarvation, Healthy: !m.stUnhealthy, Since: m.stSince, Detail: m.stDetail},
		Verdict{Detector: DetectorCongestion, Healthy: !m.cgUnhealthy, Since: m.cgSince, Detail: m.cgDetail})
}

// Healthy reports whether every detector is currently healthy.
func (m *Monitor) Healthy() bool {
	return !m.dlUnhealthy && !m.stUnhealthy && !m.cgUnhealthy
}
