package flightrec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/health"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// newRecordedNet builds the standard test network — 4x4 folded torus with
// a telemetry probe — under uniform Bernoulli load. stopAt 0 means the
// generators never stop.
func newRecordedNet(t testing.TB, rate float64, stopAt, seed int64) *network.Network {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(network.Config{
		Topo:   topo,
		Router: router.DefaultConfig(0),
		Seed:   seed,
		Probe:  telemetry.New(telemetry.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, rate, 2, flit.VCMask(0xFF), seed)
		g.StopAt = stopAt
		n.AttachClient(tile, g)
	}
	return n
}

// dumpNow requests a dump, runs one cycle so the serial phase drains the
// request, and returns the parsed dump.
func dumpNow(t *testing.T, n *network.Network, rec *Recorder, reason string) *Dump {
	t.Helper()
	done := rec.RequestDump(reason)
	n.Run(1)
	res := <-done
	if res.Err != nil {
		t.Fatalf("dump request failed: %v", res.Err)
	}
	dp, err := LoadDump(res.Path)
	if err != nil {
		t.Fatalf("LoadDump(%s): %v", res.Path, err)
	}
	return dp
}

func TestAttachRequiresProbe(t *testing.T) {
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(n, Config{}); err == nil ||
		!strings.Contains(err.Error(), "no telemetry probe") {
		t.Fatalf("Attach without probe: err = %v, want probe error", err)
	}
}

// TestRingWrapsContiguous pins the ring discipline: after running well past
// the window, a dump carries exactly Window records covering a contiguous,
// newest-first-evicted cycle range ending at the trigger.
func TestRingWrapsContiguous(t *testing.T) {
	n := newRecordedNet(t, 0.3, 0, 1)
	rec, err := Attach(n, Config{Window: 128, Dir: t.TempDir(), ConfigHash: 0xfeed})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(500)
	dp := dumpNow(t, n, rec, "wrap")

	if len(dp.Records) != 128 {
		t.Fatalf("dump has %d records, want the full 128-cycle window", len(dp.Records))
	}
	if dp.LastCycle() != 501 {
		t.Fatalf("newest record at cycle %d, want 501 (completed cycles at dump)", dp.LastCycle())
	}
	if dp.FirstCycle() != 501-127 {
		t.Fatalf("oldest record at cycle %d, want %d", dp.FirstCycle(), 501-127)
	}
	for i, r := range dp.Records {
		if r.Cycle != dp.FirstCycle()+int64(i) {
			t.Fatalf("record %d at cycle %d; ring is not contiguous", i, r.Cycle)
		}
	}
	// Indexed access agrees with the layout.
	if r := dp.RecordAt(450); r == nil || r.Cycle != 450 {
		t.Fatalf("RecordAt(450) = %+v", r)
	}
	if dp.RecordAt(dp.FirstCycle()-1) != nil || dp.RecordAt(dp.LastCycle()+1) != nil {
		t.Fatal("RecordAt answered outside the recorded window")
	}
	if got := dp.Range(460, 469); len(got) != 10 || got[0].Cycle != 460 {
		t.Fatalf("Range(460,469) = %d records starting %d", len(got), got[0].Cycle)
	}
	if got := dp.Range(0, 1000); len(got) != 128 {
		t.Fatalf("clipped Range covers %d records, want 128", len(got))
	}

	// The deltas must account for real traffic: summing ejections over the
	// window matches the probe's cumulative counter movement.
	var ej int64
	for _, r := range dp.Records {
		ej += int64(r.Ejected)
	}
	if ej == 0 {
		t.Fatal("no ejections recorded across 128 cycles of rate-0.3 traffic")
	}
}

// TestDumpRoundTrip pins the dump container: every identity field survives
// encode -> parse, and the trigger keyframe makes the window replayable.
func TestDumpRoundTrip(t *testing.T) {
	n := newRecordedNet(t, 0.3, 0, 2)
	spec := []byte(`{"kind":"run","k":4}`)
	rec, err := Attach(n, Config{
		Window: 256, Every: 64, Dir: t.TempDir(),
		ConfigHash: 0xabcdef, SpecJSON: spec, SpecKind: "run",
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(400)
	dp := dumpNow(t, n, rec, "round-trip")

	if dp.ConfigHash != 0xabcdef {
		t.Fatalf("ConfigHash %#x, want 0xabcdef", dp.ConfigHash)
	}
	if dp.Reason != "round-trip" || dp.SpecKind != "run" {
		t.Fatalf("Reason %q SpecKind %q", dp.Reason, dp.SpecKind)
	}
	if string(dp.SpecJSON) != string(spec) {
		t.Fatalf("SpecJSON %q, want %q", dp.SpecJSON, spec)
	}
	if dp.Window != 256 || dp.Every != 64 || dp.KfEvery != 128 {
		t.Fatalf("cadences: window %d every %d kfEvery %d", dp.Window, dp.Every, dp.KfEvery)
	}
	if dp.Cycle != 401 {
		t.Fatalf("trigger cycle %d, want 401", dp.Cycle)
	}
	if dp.KeyframeErr != "" {
		t.Fatalf("unexpected keyframe error: %q", dp.KeyframeErr)
	}
	// A fresh keyframe lands at the trigger cycle itself, so the newest
	// recorded state is reachable with zero replayed cycles.
	if len(dp.Keyframes) == 0 || dp.Keyframes[len(dp.Keyframes)-1].Cycle != dp.Cycle {
		t.Fatalf("no fresh keyframe at the trigger: %+v", kfCycles(dp))
	}
	if kf := dp.KeyframeBefore(dp.Cycle); kf == nil || kf.Cycle != dp.Cycle {
		t.Fatalf("KeyframeBefore(trigger) = %+v", kf)
	}
	// The attribution sample was captured on the Every cadence.
	if dp.Sample.Cycle%64 != 0 {
		t.Fatalf("sample cycle %d off the health cadence", dp.Sample.Cycle)
	}
	if dp.Sample.Generated == 0 || dp.Sample.EjectedFlits == 0 {
		t.Fatalf("sample missing traffic: %+v", dp.Sample)
	}
}

// TestKeyframeRotation pins retention: the recorder holds the newest
// Keyframes checkpoints, in ascending cycle order, on the kfEvery cadence.
func TestKeyframeRotation(t *testing.T) {
	n := newRecordedNet(t, 0.3, 0, 3)
	rec, err := Attach(n, Config{Window: 128, Dir: t.TempDir()}) // kfEvery 64
	if err != nil {
		t.Fatal(err)
	}
	n.Run(500)
	dp := dumpNow(t, n, rec, "rotate")

	if len(dp.Keyframes) != DefaultKeyframes {
		t.Fatalf("%d keyframes retained, want %d: %v", len(dp.Keyframes), DefaultKeyframes, kfCycles(dp))
	}
	for i := 1; i < len(dp.Keyframes); i++ {
		if dp.Keyframes[i].Cycle <= dp.Keyframes[i-1].Cycle {
			t.Fatalf("keyframes out of order: %v", kfCycles(dp))
		}
	}
	// Newest is the fresh trigger keyframe; the rest sit on the cadence.
	if dp.Keyframes[len(dp.Keyframes)-1].Cycle != dp.Cycle {
		t.Fatalf("newest keyframe %v is not the trigger %d", kfCycles(dp), dp.Cycle)
	}
	for _, kf := range dp.Keyframes[:len(dp.Keyframes)-1] {
		if kf.Cycle%64 != 0 {
			t.Fatalf("keyframe off the cadence: %v", kfCycles(dp))
		}
		if len(kf.Data) == 0 {
			t.Fatalf("keyframe at %d is empty", kf.Cycle)
		}
	}
	// Binary search semantics.
	mid := dp.Keyframes[1].Cycle
	if kf := dp.KeyframeBefore(mid + 1); kf == nil || kf.Cycle != mid {
		t.Fatalf("KeyframeBefore(%d) = %+v", mid+1, kf)
	}
	if kf := dp.KeyframeBefore(dp.Keyframes[0].Cycle - 1); kf != nil {
		t.Fatalf("KeyframeBefore before the oldest returned %d", kf.Cycle)
	}
}

func kfCycles(dp *Dump) []int64 {
	out := make([]int64, len(dp.Keyframes))
	for i, kf := range dp.Keyframes {
		out[i] = kf.Cycle
	}
	return out
}

// TestKeyframeErrorDegradesGracefully: a configuration the checkpoint
// layer cannot cover (a client without dynamic-state support) disables
// keyframes but never the ring — the dump carries the reason and keeps the
// per-cycle record.
func TestKeyframeErrorDegradesGracefully(t *testing.T) {
	n := newRecordedNet(t, 0.3, 0, 4)
	// A bare ClientFunc is not a StatefulClient, so SaveCheckpoint refuses.
	n.AttachClient(0, network.ClientFunc(func(now int64, p *network.Port) {}))
	rec, err := Attach(n, Config{Window: 64, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(200)
	dp := dumpNow(t, n, rec, "degraded")

	if dp.KeyframeErr == "" || !strings.Contains(dp.KeyframeErr, "not checkpointable") {
		t.Fatalf("KeyframeErr = %q, want the checkpoint refusal", dp.KeyframeErr)
	}
	if len(dp.Keyframes) != 0 {
		t.Fatalf("%d keyframes retained despite the checkpoint error", len(dp.Keyframes))
	}
	if len(dp.Records) != 64 {
		t.Fatalf("ring degraded too: %d records, want 64", len(dp.Records))
	}
}

// TestParseDumpRejectsCorruption: a flipped byte anywhere fails parsing
// loudly (the container is CRC-protected per section).
func TestParseDumpRejectsCorruption(t *testing.T) {
	n := newRecordedNet(t, 0.3, 0, 5)
	rec, err := Attach(n, Config{Window: 64, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(100)
	done := rec.RequestDump("corrupt")
	n.Run(1)
	res := <-done
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	data, err := os.ReadFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDump(data); err != nil {
		t.Fatalf("pristine dump does not parse: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	if _, err := ParseDump(bad); err == nil {
		t.Fatal("corrupted dump parsed without error")
	}
}

// TestDumpFileNaming pins the on-disk contract nocpost and operators rely
// on: flightrec-<cycle>-<seq>-<reason>.frec with a sanitized reason slug.
func TestDumpFileNaming(t *testing.T) {
	dir := t.TempDir()
	n := newRecordedNet(t, 0.3, 0, 6)
	rec, err := Attach(n, Config{Window: 64, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(50)
	done := rec.RequestDump("SIG quit!")
	n.Run(1)
	if res := <-done; res.Err != nil {
		t.Fatal(res.Err)
	}
	dumps := rec.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("Dumps() = %v, want one path", dumps)
	}
	base := filepath.Base(dumps[0])
	if base != "flightrec-000000000051-001-sig-quit-.frec" {
		t.Fatalf("dump filename %q breaks the naming contract", base)
	}
	if _, err := os.Stat(dumps[0]); err != nil {
		t.Fatal(err)
	}
}

// stallTile wedges every input controller of the tile, the golden
// deadlock/starvation fault.
func stallTile(n *network.Network, tile int) {
	for _, d := range []route.Dir{route.North, route.East, route.South, route.West} {
		n.SetPortStall(tile, d, true)
	}
}

// TestAutoDumpOnDeadlock is the tentpole golden: the embedded detector
// fires on a wedged network, the dump is written without any operator
// action, and the recorded attribution is recomputable from the dumped
// sample alone — exactly what `nocpost verdict` cross-checks.
func TestAutoDumpOnDeadlock(t *testing.T) {
	dir := t.TempDir()
	n := newRecordedNet(t, 0.3, 300, 5)
	rec, err := Attach(n, Config{
		Window: 4096, Every: 64, Dir: dir,
		Health: health.Config{DeadlockWindow: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(100)
	stallTile(n, 5)
	n.Run(3000)
	if n.Occupancy() == 0 {
		t.Fatal("network drained despite the stalled router; scenario is vacuous")
	}

	dumps := rec.Dumps()
	if len(dumps) == 0 {
		t.Fatal("deadlock fired but no dump was written")
	}
	if !strings.Contains(filepath.Base(dumps[0]), "detector-deadlock") {
		t.Fatalf("dump %q does not carry the detector reason", dumps[0])
	}
	dp, err := LoadDump(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if dp.Reason != "detector-deadlock" {
		t.Fatalf("dump reason %q", dp.Reason)
	}

	// The recorded transition log carries the live attribution.
	var live health.Event
	for _, ev := range dp.Health {
		if ev.Detector == health.DetectorDeadlock && !ev.Healthy {
			live = ev
		}
	}
	if live.Detector == "" {
		t.Fatalf("dump health log lacks the deadlock transition: %+v", dp.Health)
	}
	if !strings.Contains(live.Detail, "t5:") || !strings.Contains(live.Detail, "stalled port") {
		t.Fatalf("live attribution does not blame tile 5's stalled port: %q", live.Detail)
	}

	// Post-mortem recomputation from the dumped sample matches it byte for
	// byte — the verdict-parity guarantee nocpost builds on.
	if len(dp.Sample.Waiting) == 0 {
		t.Fatal("attribution sample carries no waiting VCs")
	}
	s := health.Sample{
		Cycle:            dp.Sample.Cycle,
		GeneratedPackets: dp.Sample.Generated,
		EjectedFlits:     dp.Sample.EjectedFlits,
		BufOcc:           dp.Sample.BufOcc,
		Waiting:          dp.Sample.Waiting,
		HotLinks:         dp.Sample.HotLinks,
		DeadLinks:        dp.Sample.DeadLinks,
	}
	if got := health.DeadlockDetail(s); got != live.Detail {
		t.Fatalf("recomputed attribution differs from live:\n  live: %q\n  post: %q", live.Detail, got)
	}

	// The embedded monitor agrees with its own log.
	var verdict health.Verdict
	for _, v := range rec.Monitor().Verdicts() {
		if v.Detector == health.DetectorDeadlock {
			verdict = v
		}
	}
	if verdict.Healthy || verdict.Detail != live.Detail {
		t.Fatalf("monitor verdict %+v disagrees with the recorded transition %q", verdict, live.Detail)
	}
}

// TestAutoDumpOnStarvation: tile 5 starves while the rest of the die keeps
// delivering — the starvation detector (not deadlock) fires and dumps.
func TestAutoDumpOnStarvation(t *testing.T) {
	dir := t.TempDir()
	n := newRecordedNet(t, 0.25, 0, 6)
	rec, err := Attach(n, Config{
		Window: 4096, Every: 64, Dir: dir,
		Health: health.Config{StarveAge: 256, DeadlockWindow: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(200)
	if n.Router(5).Occupancy() == 0 {
		t.Fatal("router 5 empty at stall time; scenario is vacuous")
	}
	stallTile(n, 5)
	n.Run(1500)

	dumps := rec.Dumps()
	if len(dumps) == 0 {
		t.Fatal("starvation fired but no dump was written")
	}
	dp, err := LoadDump(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if dp.Reason != "detector-starvation" {
		t.Fatalf("dump reason %q, want detector-starvation", dp.Reason)
	}
	found := false
	for _, ev := range dp.Health {
		if ev.Detector == health.DetectorStarvation && !ev.Healthy {
			if !strings.Contains(ev.Detail, "t5:") {
				t.Fatalf("starvation attribution does not name tile 5: %q", ev.Detail)
			}
			found = true
		}
		if ev.Detector == health.DetectorDeadlock && !ev.Healthy {
			t.Fatalf("deadlock fired on a progressing network: %q", ev.Detail)
		}
	}
	if !found {
		t.Fatalf("dump health log lacks the starvation transition: %+v", dp.Health)
	}
}

// TestAutoDumpOnCongestionCollapse: offered load holds while capacity is
// progressively removed — the collapse detector fires and dumps with hot
// link attribution.
func TestAutoDumpOnCongestionCollapse(t *testing.T) {
	dir := t.TempDir()
	n := newRecordedNet(t, 0.5, 0, 7)
	rec, err := Attach(n, Config{
		Window: 4096, Every: 256, Dir: dir,
		Health: health.Config{
			CollapseWindows:   2,
			CollapseTolerance: 0.05,
			DeadlockWindow:    1 << 30,
			StarveAge:         1 << 30,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(512)
	stallTile(n, 5)
	n.Run(256)
	stallTile(n, 6)
	n.Run(512)

	dumps := rec.Dumps()
	if len(dumps) == 0 {
		t.Fatal("congestion collapse fired but no dump was written")
	}
	dp, err := LoadDump(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if dp.Reason != "detector-congestion" {
		t.Fatalf("dump reason %q, want detector-congestion", dp.Reason)
	}
	found := false
	for _, ev := range dp.Health {
		if ev.Detector == health.DetectorCongestion && !ev.Healthy {
			if !strings.Contains(ev.Detail, "delivered rate fell") {
				t.Fatalf("collapse detail missing the rate evidence: %q", ev.Detail)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("dump health log lacks the collapse transition: %+v", dp.Health)
	}
}

// TestHealthyRunWritesNoDumps: the always-on recorder on a comfortable
// load writes nothing — dumps appear only when something is wrong or asked
// for.
func TestHealthyRunWritesNoDumps(t *testing.T) {
	dir := t.TempDir()
	n := newRecordedNet(t, 0.2, 0, 8)
	rec, err := Attach(n, Config{Window: 512, Every: 64, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(4096)
	if dumps := rec.Dumps(); len(dumps) != 0 {
		t.Fatalf("healthy run wrote dumps: %v", dumps)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("dump dir not empty after a healthy run: %v", entries)
	}
}

// TestCrashDump: a panic unwinding the cycle loop leaves a dump behind —
// the ring and the already-taken keyframes, but no fresh keyframe (the
// mid-cycle state is wreckage).
func TestCrashDump(t *testing.T) {
	dir := t.TempDir()
	n := newRecordedNet(t, 0.3, 0, 9)
	rec, err := Attach(n, Config{Window: 64, Dir: dir}) // kfEvery 32
	if err != nil {
		t.Fatal(err)
	}
	n.Kernel().AddPhase("boom", func(now sim.Cycle) {
		if now == 100 {
			panic("injected test crash")
		}
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("the injected panic did not propagate")
			}
		}()
		n.Run(200)
	}()

	dumps := rec.Dumps()
	if len(dumps) != 1 || !strings.Contains(filepath.Base(dumps[0]), "panic") {
		t.Fatalf("crash dump missing: %v", dumps)
	}
	dp, err := LoadDump(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if dp.Reason != "panic" || dp.Cycle != 100 {
		t.Fatalf("crash dump reason %q at cycle %d, want panic at 100", dp.Reason, dp.Cycle)
	}
	// No fresh keyframe at the crash cycle — only the cadence ones.
	for _, kf := range dp.Keyframes {
		if kf.Cycle%32 != 0 {
			t.Fatalf("crash dump took a mid-crash keyframe at cycle %d", kf.Cycle)
		}
	}
	if dp.LastCycle() < 100 {
		t.Fatalf("ring stops at %d; the wedge cycle is not recorded", dp.LastCycle())
	}
}
