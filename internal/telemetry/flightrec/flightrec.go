// Package flightrec is the always-on flight recorder of the observability
// stack: a fixed-size ring of per-cycle event deltas (injections, route
// pops, switch and bypass moves, stall taxonomy, link traffic, deliveries)
// difference-sampled from the telemetry probe's cumulative counters, plus
// periodic full-state keyframes encoded with the internal/checkpoint
// container. When a run wedges, crashes, or an operator asks, the recorder
// freezes the window into a self-describing, CRC-protected dump that
// cmd/nocpost can time-travel through: any recorded cycle is reconstructed
// exactly by restoring the newest keyframe at or before it and re-executing
// the deterministic engine forward.
//
// Concurrency and determinism model: like the serve collector, the
// recorder registers one *serial* kernel phase that runs behind the merge
// barriers, single-threaded with respect to all simulator state — so the
// ring contents, keyframes, and detector-triggered dumps are byte-identical
// at any -shards setting, and the kernel's batching Step path runs the
// phase on every folded cycle so epoch batching changes nothing either.
// When the recorder is not attached no phase exists and the cycle loop
// keeps its 0 allocs/op fast path; attached, the steady-state phase writes
// into preallocated buffers and allocates nothing per cycle (keyframe
// encoding amortizes to well under one allocation per cycle).
package flightrec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/health"
)

// DefaultWindow is the default ring capacity in cycles.
const DefaultWindow = 4096

// DefaultEvery is the default health-sampling cadence in cycles, matching
// the serve collector so the embedded monitor replicates the live
// detectors' judgments exactly.
const DefaultEvery = 256

// DefaultKeyframes is how many keyframes the recorder retains: the window
// spans two keyframe intervals, so three keyframes guarantee one at or
// before every recorded cycle.
const DefaultKeyframes = 3

// maxAutoDumps bounds detector-triggered dumps per run so a flapping
// detector cannot fill the disk.
const maxAutoDumps = 8

// maxEventLog bounds the fault and health transition logs carried in a
// dump; further entries are counted as dropped.
const maxEventLog = 256

// Config parameterizes a Recorder.
type Config struct {
	// Window is the ring capacity in cycles (default DefaultWindow).
	Window int

	// Every is the health-sampling cadence in cycles (default
	// DefaultEvery). Matching the serve collector's interval makes the
	// embedded monitor a byte-exact replica of the live detectors.
	Every int64

	// Dir is where dumps are written (default ".").
	Dir string

	// Keyframes is how many keyframes to retain (default DefaultKeyframes).
	Keyframes int

	// Health configures the embedded detectors (zero fields default).
	Health health.Config

	// ConfigHash fingerprints the run configuration; it is stamped on the
	// dump container and every keyframe so cross-configuration replay is
	// rejected, not silently wrong.
	ConfigHash uint64

	// SpecJSON is the run's serialized self-description (core.SimSpec),
	// carried in the dump so nocpost can rebuild the network for replay.
	// Empty disables replay (ring and verdict still work).
	SpecJSON []byte

	// SpecKind names what SpecJSON rebuilds ("run", "campaign", "trace").
	// Only "run" supports replay.
	SpecKind string
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Every <= 0 {
		c.Every = DefaultEvery
	}
	if c.Dir == "" {
		c.Dir = "."
	}
	if c.Keyframes <= 0 {
		c.Keyframes = DefaultKeyframes
	}
	return c
}

// Record is one cycle's event deltas — fixed size, pointer-free, so the
// ring is a flat preallocated array the steady-state phase writes in
// place. Cycle counts *completed* cycles (the checkpoint convention), so a
// record at cycle C describes the cycle whose state a checkpoint at C
// captures. Delta fields are the change over that one cycle; BufOcc and
// LinkInFlight are instantaneous; DeadLinks and FaultsApplied are the
// cumulative totals at the record instant (transitions are in the fault
// log with exact cycles).
type Record struct {
	Cycle int64

	Injected    uint32 // flits accepted from tile injection ports
	Ejected     uint32 // flits delivered through tile output ports
	Routed      uint32 // route-field pops
	SwitchMoves uint32 // flits across crossbars
	BypassMoves uint32 // reserved-VC flits through the bypass

	ArbLosses    uint32 // switch requests that lost arbitration
	CreditStalls uint32 // waits blocked on downstream credits/VCs
	StageStalls  uint32 // waits blocked on an occupied staging buffer

	LinkFlits uint32 // flits that entered channel wires
	HeadFlits uint32
	Credits   uint32 // credits returned upstream

	DeliveredFlits   uint32 // flits of fully reassembled packets
	DeliveredPackets uint32
	AbortedPackets   uint32
	Generated        uint32 // packets created by clients

	BufOcc       uint32 // flits buffered in routers (instantaneous)
	LinkInFlight uint32 // flits on the wires (instantaneous)

	DeadLinks     uint32 // cumulative watchdog fail-stop declarations
	FaultsApplied uint32 // cumulative injector events that took effect
}

// totals is the cumulative-counter snapshot the phase differences against.
type totals struct {
	injected, ejected, routed          int64
	switchMoves, bypassMoves           int64
	arbLosses, creditStalls, stgStalls int64
	linkFlits, headFlits, credits      int64
	delivFlits, delivPackets, aborted  int64
	generated                          int64
}

// FaultEvent is one fault transition forwarded from the probe: an applied
// injector event or a watchdog fail-stop declaration.
type FaultEvent struct {
	Cycle int64
	// Kind is 0 for an injector fault (A = injector kind, B = where) and
	// 1 for a link declared dead (A = link index).
	Kind uint8
	A, B int32
}

// Keyframe is one retained full-state checkpoint.
type Keyframe struct {
	Cycle int64
	Data  []byte
}

// TriggerSample is the attribution material captured at the newest health
// sample before a dump: exactly what the live detectors judged, so nocpost
// can recompute the verdict independently and cross-check it against the
// recorded live attribution.
type TriggerSample struct {
	Cycle        int64
	BufOcc       int64
	Generated    int64
	EjectedFlits int64
	DeadLinks    int
	Waiting      []health.VCWait
	HotLinks     []health.LinkLoad
}

// DumpResult is the outcome of an asynchronous dump request.
type DumpResult struct {
	Path string
	Err  error
}

type dumpReq struct {
	reason string
	done   chan DumpResult
}

// Recorder owns the ring, the keyframes, the embedded health monitor, and
// the dump triggers. All fields below the mutex are written only by the
// serial phase (or by Attach, before the first cycle).
type Recorder struct {
	n   *network.Network
	cfg Config
	mon *health.Monitor

	ring  []Record
	next  int // ring slot the next record lands in
	count int // valid records, saturating at len(ring)
	prev  totals

	keyframes []Keyframe // oldest first
	kfEvery   int64
	kfErr     error // first keyframe failure; disables further attempts

	// Health-sampling scratch, reused across samples.
	waitBuf  []health.VCWait
	prevFlit []int64
	loadBuf  []health.LinkLoad

	last TriggerSample // newest sample's attribution material (reused buffers)

	faultLog    []FaultEvent
	faultDrops  int64
	healthLog   []health.Event
	healthDrops int64

	autoDumps int
	dumpSeq   int

	// SLO burn dumps requested by the latency observatory's phase (which
	// runs earlier in the same cycle); written by this phase, where a
	// fresh keyframe is safe.
	sloPending []string

	// Asynchronous dump requests (SIGQUIT handler, /debug/flightrec).
	// hasPending keeps the per-cycle fast path to one atomic load.
	hasPending atomic.Bool
	reqMu      sync.Mutex
	requests   []dumpReq

	mu      sync.Mutex
	dumps   []string
	dumpErr error
}

// Attach registers the flight-recorder phase on the network's kernel and
// returns the recorder. The network must have a telemetry probe (the
// counter fabric the deltas difference) and must not have run yet. The
// phase is serial, so it composes with any -shards or -batch-epochs
// setting without perturbing results.
func Attach(n *network.Network, cfg Config) (*Recorder, error) {
	if n.Probe() == nil {
		return nil, fmt.Errorf("flightrec: network has no telemetry probe; enable telemetry to record it")
	}
	cfg = cfg.withDefaults()
	r := &Recorder{
		n:    n,
		cfg:  cfg,
		mon:  health.New(cfg.Health),
		ring: make([]Record, cfg.Window),
	}
	r.kfEvery = int64(cfg.Window / 2)
	if r.kfEvery < 1 {
		r.kfEvery = 1
	}
	r.keyframes = make([]Keyframe, 0, cfg.Keyframes)
	n.Probe().SetEventSink(r)
	n.Kernel().AddPhase("flightrec", r.phase)
	n.Kernel().SetCrashHook(r.onCrash)
	return r, nil
}

// Config reports the recorder's effective (defaulted) configuration.
func (r *Recorder) Config() Config { return r.cfg }

// Monitor exposes the embedded health monitor for tests that cross-check
// it against the live serve detectors. Read it between Run calls only.
func (r *Recorder) Monitor() *health.Monitor { return r.mon }

// Dumps reports the dump files written so far.
func (r *Recorder) Dumps() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.dumps...)
}

// Err reports the first dump-write failure, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumpErr
}

// OnFault implements telemetry.EventSink: fault-injector events arrive
// from the injector's serial phase.
func (r *Recorder) OnFault(now int64, kind, where int) {
	r.logFault(FaultEvent{Cycle: now, Kind: 0, A: int32(kind), B: int32(where)})
}

// OnLinkDead implements telemetry.EventSink: watchdog fail-stop
// declarations arrive from the serial watchdog phase.
func (r *Recorder) OnLinkDead(index int, now int64) {
	r.logFault(FaultEvent{Cycle: now, Kind: 1, A: int32(index)})
}

// OnSLOBurn implements the latency observatory's BurnSink: an SLO
// burn-rate transition lands in the health event log (so nocpost
// verdicts show it alongside the detector transitions) and a burning
// transition schedules a dump for this cycle's recorder phase. The
// observatory's evaluation phase runs earlier in the same serial cycle,
// so the dump's ring and fresh keyframe include the burn cycle itself.
// Burn dumps share the detector dumps' per-run cap.
func (r *Recorder) OnSLOBurn(now int64, flow string, ev health.Event) {
	if len(r.healthLog) >= maxEventLog {
		r.healthDrops++
	} else {
		r.healthLog = append(r.healthLog, ev)
	}
	if !ev.Healthy && r.autoDumps < maxAutoDumps {
		r.autoDumps++
		r.sloPending = append(r.sloPending, "slo-burn-"+flow)
	}
}

func (r *Recorder) logFault(ev FaultEvent) {
	if len(r.faultLog) >= maxEventLog {
		r.faultDrops++
		return
	}
	r.faultLog = append(r.faultLog, ev)
}

// RequestDump asks the serial phase to write a dump at the next cycle
// boundary and returns a channel carrying the result. Safe to call from
// any goroutine (signal handlers, HTTP).
func (r *Recorder) RequestDump(reason string) <-chan DumpResult {
	req := dumpReq{reason: reason, done: make(chan DumpResult, 1)}
	r.reqMu.Lock()
	r.requests = append(r.requests, req)
	r.reqMu.Unlock()
	r.hasPending.Store(true)
	return req.done
}

// TriggerDump requests a dump and waits for it, implementing the serve
// package's DumpTrigger so /debug/flightrec can drive the recorder. The
// timeout guards against a simulation that has already exited (no phase
// will ever drain the request).
func (r *Recorder) TriggerDump(reason string) (string, error) {
	select {
	case res := <-r.RequestDump(reason):
		return res.Path, res.Err
	case <-time.After(10 * time.Second):
		return "", fmt.Errorf("flightrec: dump request timed out (simulation stopped?)")
	}
}

// phase is the per-cycle serial recorder body.
func (r *Recorder) phase(now sim.Cycle) {
	tnow := int64(now)
	cycle := tnow + 1 // completed cycles once this cycle's phases finish

	r.record(cycle)

	if r.kfErr == nil && cycle%r.kfEvery == 0 {
		r.keyframe(cycle)
	}
	if tnow%r.cfg.Every == 0 {
		r.sample(tnow, cycle)
	}
	if len(r.sloPending) > 0 {
		for _, reason := range r.sloPending {
			r.dump(cycle, reason, true)
		}
		r.sloPending = r.sloPending[:0]
	}
	if r.hasPending.Load() {
		r.drainRequests(cycle)
	}
}

// record differences the probe's cumulative counters into the next ring
// slot. One pass over the per-component probes; no allocation.
func (r *Recorder) record(cycle int64) {
	p := r.n.Probe()
	var cur totals
	for _, rp := range p.Routers {
		if rp == nil {
			continue
		}
		cur.injected += rp.InjectedFlits
		cur.ejected += rp.EjectedFlits
		cur.routed += rp.Routed
		cur.switchMoves += rp.SwitchMoves
		cur.bypassMoves += rp.BypassMoves
		cur.arbLosses += rp.ArbLosses
		cur.creditStalls += rp.CreditStalls
		cur.stgStalls += rp.StageStalls
		cur.delivFlits += rp.DeliveredFlits
		cur.delivPackets += rp.DeliveredPackets
		cur.aborted += rp.AbortedPackets
	}
	for _, lp := range p.Links {
		if lp == nil {
			continue
		}
		cur.linkFlits += lp.Flits
		cur.headFlits += lp.HeadFlits
		cur.credits += lp.Credits
	}
	cur.generated = r.n.Recorder().Generated

	inFlight := r.n.LinksInFlight()
	bufOcc := r.n.Occupancy() - inFlight

	r.ring[r.next] = Record{
		Cycle:            cycle,
		Injected:         uint32(cur.injected - r.prev.injected),
		Ejected:          uint32(cur.ejected - r.prev.ejected),
		Routed:           uint32(cur.routed - r.prev.routed),
		SwitchMoves:      uint32(cur.switchMoves - r.prev.switchMoves),
		BypassMoves:      uint32(cur.bypassMoves - r.prev.bypassMoves),
		ArbLosses:        uint32(cur.arbLosses - r.prev.arbLosses),
		CreditStalls:     uint32(cur.creditStalls - r.prev.creditStalls),
		StageStalls:      uint32(cur.stgStalls - r.prev.stgStalls),
		LinkFlits:        uint32(cur.linkFlits - r.prev.linkFlits),
		HeadFlits:        uint32(cur.headFlits - r.prev.headFlits),
		Credits:          uint32(cur.credits - r.prev.credits),
		DeliveredFlits:   uint32(cur.delivFlits - r.prev.delivFlits),
		DeliveredPackets: uint32(cur.delivPackets - r.prev.delivPackets),
		AbortedPackets:   uint32(cur.aborted - r.prev.aborted),
		Generated:        uint32(cur.generated - r.prev.generated),
		BufOcc:           uint32(bufOcc),
		LinkInFlight:     uint32(inFlight),
		DeadLinks:        uint32(p.DeadLinks),
		FaultsApplied:    uint32(p.FaultsApplied),
	}
	r.prev = cur
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	if r.count < len(r.ring) {
		r.count++
	}
}

// keyframe snapshots the full simulation state at the given completed
// cycle, rotating out the oldest retained keyframe. A configuration the
// checkpoint layer cannot cover disables keyframes for the run (the ring
// and verdicts still record); the error is carried in every dump.
func (r *Recorder) keyframe(cycle int64) {
	data, err := r.n.SaveCheckpoint(r.cfg.ConfigHash, cycle)
	if err != nil {
		r.kfErr = err
		r.keyframes = r.keyframes[:0]
		return
	}
	if len(r.keyframes) == cap(r.keyframes) {
		copy(r.keyframes, r.keyframes[1:])
		r.keyframes = r.keyframes[:len(r.keyframes)-1]
	}
	r.keyframes = append(r.keyframes, Keyframe{Cycle: cycle, Data: data})
}

// minWaitAge mirrors the serve collector's reporting threshold so the
// embedded monitor sees the identical waiting set.
func (r *Recorder) minWaitAge() int64 {
	hc := r.mon.Config()
	min := hc.StarveAge
	if hc.DeadlockWindow < min {
		min = hc.DeadlockWindow
	}
	if min > 4 {
		min /= 2
	}
	return min
}

// sample feeds the embedded health monitor with the same observation the
// serve collector builds, captures the attribution material, and dumps on
// any healthy->unhealthy transition.
func (r *Recorder) sample(tnow, cycle int64) {
	p := r.n.Probe()
	rec := r.n.Recorder()

	inFlight := int64(r.n.LinksInFlight())
	bufOcc := int64(r.n.Occupancy()) - inFlight

	r.waitBuf = r.n.AppendWaitingVCs(tnow, r.minWaitAge(), r.waitBuf[:0])
	hot := r.hotLinks(p)

	s := health.Sample{
		Cycle:            tnow,
		GeneratedPackets: rec.Generated,
		EjectedFlits:     p.TotalEjectedFlits(),
		BufOcc:           bufOcc + inFlight,
		Waiting:          r.waitBuf,
		HotLinks:         hot,
		DeadLinks:        p.DeadLinks,
	}
	events := r.mon.Observe(s)

	r.last.Cycle = tnow
	r.last.BufOcc = s.BufOcc
	r.last.Generated = s.GeneratedPackets
	r.last.EjectedFlits = s.EjectedFlits
	r.last.DeadLinks = s.DeadLinks
	r.last.Waiting = append(r.last.Waiting[:0], r.waitBuf...)
	r.last.HotLinks = append(r.last.HotLinks[:0], hot...)

	fire := false
	for _, ev := range events {
		if len(r.healthLog) >= maxEventLog {
			r.healthDrops++
		} else {
			r.healthLog = append(r.healthLog, ev)
		}
		if !ev.Healthy {
			fire = true
		}
	}
	if fire && r.autoDumps < maxAutoDumps {
		r.autoDumps++
		reason := "detector"
		for _, ev := range events {
			if !ev.Healthy {
				reason = "detector-" + ev.Detector
				break
			}
		}
		r.dump(cycle, reason, true)
	}
}

// hotLinks computes the busiest channels of the window just ended, exactly
// as the serve collector does, so congestion attributions match.
func (r *Recorder) hotLinks(p *telemetry.Probe) []health.LinkLoad {
	if len(r.prevFlit) < len(p.Links) {
		r.prevFlit = append(r.prevFlit, make([]int64, len(p.Links)-len(r.prevFlit))...)
	}
	loads := r.loadBuf[:0]
	for i, lp := range p.Links {
		if lp == nil {
			continue
		}
		delta := lp.Flits - r.prevFlit[i]
		r.prevFlit[i] = lp.Flits
		if delta > 0 {
			loads = append(loads, health.LinkLoad{
				Index: lp.Index, From: lp.From, To: lp.To,
				Dir: lp.Dir.String(), Flits: delta,
			})
		}
	}
	// Hottest first, ties by index (insertion sort: the slice is small and
	// mostly sorted across windows, and this avoids sort.Slice's closure
	// allocation on the steady-state path).
	for i := 1; i < len(loads); i++ {
		for j := i; j > 0 && hotter(loads[j], loads[j-1]); j-- {
			loads[j], loads[j-1] = loads[j-1], loads[j]
		}
	}
	r.loadBuf = loads
	if len(loads) > 8 {
		loads = loads[:8]
	}
	return loads
}

func hotter(a, b health.LinkLoad) bool {
	if a.Flits != b.Flits {
		return a.Flits > b.Flits
	}
	return a.Index < b.Index
}

// drainRequests serves queued asynchronous dump requests in-phase, where
// touching simulator state is safe.
func (r *Recorder) drainRequests(cycle int64) {
	r.reqMu.Lock()
	reqs := r.requests
	r.requests = nil
	r.hasPending.Store(false)
	r.reqMu.Unlock()
	for _, req := range reqs {
		path, err := r.dump(cycle, req.reason, true)
		req.done <- DumpResult{Path: path, Err: err}
	}
}

// onCrash is the kernel crash hook: a panic is unwinding the cycle loop,
// so simulator state is mid-cycle and unsafe to re-enter — the dump
// carries the ring and the already-taken keyframes, but no fresh one.
func (r *Recorder) onCrash(now sim.Cycle, _ any) {
	r.dump(int64(now), "panic", false)
}

// dump freezes the window into a dump file. fresh asks for a keyframe at
// the trigger cycle itself (only safe in-phase, at a cycle boundary).
func (r *Recorder) dump(cycle int64, reason string, fresh bool) (string, error) {
	if fresh && r.kfErr == nil {
		if n := len(r.keyframes); n == 0 || r.keyframes[n-1].Cycle < cycle {
			r.keyframe(cycle)
		}
	}
	r.dumpSeq++
	data := r.encode(cycle, reason)
	path, err := writeDump(r.cfg.Dir, cycle, r.dumpSeq, reason, data)
	r.mu.Lock()
	if err != nil {
		if r.dumpErr == nil {
			r.dumpErr = err
		}
	} else {
		r.dumps = append(r.dumps, path)
	}
	r.mu.Unlock()
	return path, err
}
