package flightrec

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/route"
	"repro/internal/telemetry/health"
)

// dumpVersion versions the flight-recorder section layouts inside the
// checkpoint container (the container itself carries its own version).
const dumpVersion = 1

// Section names inside the dump container. The "fr" prefix keeps them
// disjoint from the simulation-state sections a keyframe uses, since both
// live in the same container format.
const (
	secMeta      = "frmeta"
	secRing      = "frring"
	secFaults    = "frfaults"
	secHealth    = "frhealth"
	secSample    = "frsample"
	secKeyframes = "frkeyframes"
)

// encode freezes the recorder's window into a dump container image.
func (r *Recorder) encode(cycle int64, reason string) []byte {
	b := checkpoint.NewBuilder(r.cfg.ConfigHash, cycle)

	e := b.Section(secMeta)
	e.U32(dumpVersion)
	e.Int(len(r.ring))
	e.I64(r.cfg.Every)
	e.I64(r.kfEvery)
	e.I64(cycle)
	e.String(reason)
	e.String(r.cfg.SpecKind)
	e.Bytes(r.cfg.SpecJSON)
	if r.kfErr != nil {
		e.String(r.kfErr.Error())
	} else {
		e.String("")
	}

	e = b.Section(secRing)
	e.U32(uint32(r.count))
	// Oldest record first: with a full ring the oldest lives at next.
	start := 0
	if r.count == len(r.ring) {
		start = r.next
	}
	for i := 0; i < r.count; i++ {
		encodeRecord(e, &r.ring[(start+i)%len(r.ring)])
	}

	e = b.Section(secFaults)
	e.U32(uint32(len(r.faultLog)))
	for i := range r.faultLog {
		f := &r.faultLog[i]
		e.I64(f.Cycle)
		e.U8(f.Kind)
		e.U32(uint32(f.A))
		e.U32(uint32(f.B))
	}
	e.I64(r.faultDrops)

	e = b.Section(secHealth)
	e.U32(uint32(len(r.healthLog)))
	for i := range r.healthLog {
		ev := &r.healthLog[i]
		e.I64(ev.Cycle)
		e.String(ev.Detector)
		e.Bool(ev.Healthy)
		e.String(ev.Detail)
	}
	e.I64(r.healthDrops)

	e = b.Section(secSample)
	encodeSample(e, &r.last)

	e = b.Section(secKeyframes)
	e.U32(uint32(len(r.keyframes)))
	for i := range r.keyframes {
		e.I64(r.keyframes[i].Cycle)
		e.Bytes(r.keyframes[i].Data)
	}

	return b.Bytes()
}

func encodeRecord(e *checkpoint.Encoder, rec *Record) {
	e.I64(rec.Cycle)
	e.U32(rec.Injected)
	e.U32(rec.Ejected)
	e.U32(rec.Routed)
	e.U32(rec.SwitchMoves)
	e.U32(rec.BypassMoves)
	e.U32(rec.ArbLosses)
	e.U32(rec.CreditStalls)
	e.U32(rec.StageStalls)
	e.U32(rec.LinkFlits)
	e.U32(rec.HeadFlits)
	e.U32(rec.Credits)
	e.U32(rec.DeliveredFlits)
	e.U32(rec.DeliveredPackets)
	e.U32(rec.AbortedPackets)
	e.U32(rec.Generated)
	e.U32(rec.BufOcc)
	e.U32(rec.LinkInFlight)
	e.U32(rec.DeadLinks)
	e.U32(rec.FaultsApplied)
}

// recordWire is the encoded size of one Record, for Decoder.Count.
const recordWire = 8 + 19*4

func decodeRecord(d *checkpoint.Decoder, rec *Record) {
	rec.Cycle = d.I64()
	rec.Injected = d.U32()
	rec.Ejected = d.U32()
	rec.Routed = d.U32()
	rec.SwitchMoves = d.U32()
	rec.BypassMoves = d.U32()
	rec.ArbLosses = d.U32()
	rec.CreditStalls = d.U32()
	rec.StageStalls = d.U32()
	rec.LinkFlits = d.U32()
	rec.HeadFlits = d.U32()
	rec.Credits = d.U32()
	rec.DeliveredFlits = d.U32()
	rec.DeliveredPackets = d.U32()
	rec.AbortedPackets = d.U32()
	rec.Generated = d.U32()
	rec.BufOcc = d.U32()
	rec.LinkInFlight = d.U32()
	rec.DeadLinks = d.U32()
	rec.FaultsApplied = d.U32()
}

func encodeSample(e *checkpoint.Encoder, s *TriggerSample) {
	e.I64(s.Cycle)
	e.I64(s.BufOcc)
	e.I64(s.Generated)
	e.I64(s.EjectedFlits)
	e.Int(s.DeadLinks)
	e.U32(uint32(len(s.Waiting)))
	for i := range s.Waiting {
		w := &s.Waiting[i]
		e.Int(w.Tile)
		e.U8(uint8(w.Port))
		e.Int(w.VC)
		e.I64(w.Age)
		e.Bool(w.Routed)
		e.U8(uint8(w.OutPort))
		e.Int(w.OutVC)
		e.Int(w.DownTile)
		e.Bool(w.Stuck)
		e.Bool(w.Stalled)
	}
	e.U32(uint32(len(s.HotLinks)))
	for i := range s.HotLinks {
		l := &s.HotLinks[i]
		e.Int(l.Index)
		e.Int(l.From)
		e.Int(l.To)
		e.String(l.Dir)
		e.I64(l.Flits)
	}
}

func decodeSample(d *checkpoint.Decoder, s *TriggerSample) {
	s.Cycle = d.I64()
	s.BufOcc = d.I64()
	s.Generated = d.I64()
	s.EjectedFlits = d.I64()
	s.DeadLinks = d.Int()
	nw := d.Count(8 + 1 + 8 + 8 + 1 + 1 + 8 + 8 + 1 + 1)
	s.Waiting = make([]health.VCWait, nw)
	for i := range s.Waiting {
		w := &s.Waiting[i]
		w.Tile = d.Int()
		w.Port = route.Dir(d.U8())
		w.VC = d.Int()
		w.Age = d.I64()
		w.Routed = d.Bool()
		w.OutPort = route.Dir(d.U8())
		w.OutVC = d.Int()
		w.DownTile = d.Int()
		w.Stuck = d.Bool()
		w.Stalled = d.Bool()
	}
	nh := d.Count(8 + 8 + 8 + 4 + 8)
	s.HotLinks = make([]health.LinkLoad, nh)
	for i := range s.HotLinks {
		l := &s.HotLinks[i]
		l.Index = d.Int()
		l.From = d.Int()
		l.To = d.Int()
		l.Dir = d.String()
		l.Flits = d.I64()
	}
}

// Dump is a parsed flight-recorder dump: everything cmd/nocpost needs to
// reconstruct, diff, and attribute.
type Dump struct {
	ConfigHash uint64
	Cycle      int64 // trigger cycle (completed cycles at dump time)
	Reason     string

	Window  int   // ring capacity the recorder ran with
	Every   int64 // health-sampling cadence
	KfEvery int64 // keyframe cadence

	SpecKind string
	SpecJSON []byte

	// KeyframeErr is the reason keyframes were disabled ("" when they
	// worked); replay then starts from a cycle-0 rebuild.
	KeyframeErr string

	// Records are the per-cycle deltas, oldest first, contiguous cycles.
	Records []Record

	Faults     []FaultEvent
	FaultDrops int64

	Health      []health.Event
	HealthDrops int64

	// Sample is the newest health-sample attribution material before the
	// trigger: the waiting-VC set and hottest links the live detectors saw.
	Sample TriggerSample

	// Keyframes are the retained full-state checkpoints, oldest first.
	Keyframes []Keyframe
}

// ParseDump validates and decodes a dump image.
func ParseDump(data []byte) (*Dump, error) {
	f, err := checkpoint.Parse(data)
	if err != nil {
		return nil, err
	}
	dp := &Dump{ConfigHash: f.ConfigHash}

	d, err := f.Section(secMeta)
	if err != nil {
		return nil, err
	}
	if v := d.U32(); d.Err() == nil && v != dumpVersion {
		return nil, fmt.Errorf("flightrec: unsupported dump version %d (want %d)", v, dumpVersion)
	}
	dp.Window = d.Int()
	dp.Every = d.I64()
	dp.KfEvery = d.I64()
	dp.Cycle = d.I64()
	dp.Reason = d.String()
	dp.SpecKind = d.String()
	dp.SpecJSON = append([]byte(nil), d.Bytes()...)
	dp.KeyframeErr = d.String()
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("flightrec: %s: %w", secMeta, err)
	}

	d, err = f.Section(secRing)
	if err != nil {
		return nil, err
	}
	n := d.Count(recordWire)
	dp.Records = make([]Record, n)
	for i := range dp.Records {
		decodeRecord(d, &dp.Records[i])
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("flightrec: %s: %w", secRing, err)
	}

	d, err = f.Section(secFaults)
	if err != nil {
		return nil, err
	}
	n = d.Count(8 + 1 + 4 + 4)
	dp.Faults = make([]FaultEvent, n)
	for i := range dp.Faults {
		fe := &dp.Faults[i]
		fe.Cycle = d.I64()
		fe.Kind = d.U8()
		fe.A = int32(d.U32())
		fe.B = int32(d.U32())
	}
	dp.FaultDrops = d.I64()
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("flightrec: %s: %w", secFaults, err)
	}

	d, err = f.Section(secHealth)
	if err != nil {
		return nil, err
	}
	n = d.Count(8 + 4 + 1 + 4)
	dp.Health = make([]health.Event, n)
	for i := range dp.Health {
		ev := &dp.Health[i]
		ev.Cycle = d.I64()
		ev.Detector = d.String()
		ev.Healthy = d.Bool()
		ev.Detail = d.String()
	}
	dp.HealthDrops = d.I64()
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("flightrec: %s: %w", secHealth, err)
	}

	d, err = f.Section(secSample)
	if err != nil {
		return nil, err
	}
	decodeSample(d, &dp.Sample)
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("flightrec: %s: %w", secSample, err)
	}

	d, err = f.Section(secKeyframes)
	if err != nil {
		return nil, err
	}
	n = d.Count(8 + 4)
	dp.Keyframes = make([]Keyframe, n)
	for i := range dp.Keyframes {
		dp.Keyframes[i].Cycle = d.I64()
		dp.Keyframes[i].Data = append([]byte(nil), d.Bytes()...)
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("flightrec: %s: %w", secKeyframes, err)
	}

	return dp, nil
}

// LoadDump reads and parses a dump file.
func LoadDump(path string) (*Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dp, err := ParseDump(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return dp, nil
}

// FirstCycle reports the oldest recorded cycle (0 with an empty ring).
func (dp *Dump) FirstCycle() int64 {
	if len(dp.Records) == 0 {
		return 0
	}
	return dp.Records[0].Cycle
}

// LastCycle reports the newest recorded cycle (0 with an empty ring).
func (dp *Dump) LastCycle() int64 {
	if len(dp.Records) == 0 {
		return 0
	}
	return dp.Records[len(dp.Records)-1].Cycle
}

// RecordAt returns the delta record for a completed cycle, or nil when the
// cycle is outside the recorded window. Records are contiguous, so this is
// an index computation, not a search.
func (dp *Dump) RecordAt(cycle int64) *Record {
	if len(dp.Records) == 0 {
		return nil
	}
	i := cycle - dp.Records[0].Cycle
	if i < 0 || i >= int64(len(dp.Records)) {
		return nil
	}
	return &dp.Records[i]
}

// Range returns the records for completed cycles in [from, to], clipped to
// the recorded window. The slice aliases dp.Records.
func (dp *Dump) Range(from, to int64) []Record {
	if len(dp.Records) == 0 || to < from {
		return nil
	}
	first := dp.Records[0].Cycle
	lo := from - first
	hi := to - first + 1
	if lo < 0 {
		lo = 0
	}
	if hi > int64(len(dp.Records)) {
		hi = int64(len(dp.Records))
	}
	if lo >= hi {
		return nil
	}
	return dp.Records[lo:hi]
}

// KeyframeBefore returns the newest keyframe at or before the given
// completed cycle, or nil (replay then starts from a cycle-0 rebuild).
func (dp *Dump) KeyframeBefore(cycle int64) *Keyframe {
	i := sort.Search(len(dp.Keyframes), func(i int) bool {
		return dp.Keyframes[i].Cycle > cycle
	})
	if i == 0 {
		return nil
	}
	return &dp.Keyframes[i-1]
}

// writeDump writes a dump image crash-safely (temp file + fsync + rename,
// like the checkpoint store) under dir as
// flightrec-<cycle>-<seq>-<reason>.frec.
func writeDump(dir string, cycle int64, seq int, reason string, data []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flightrec-%012d-%03d-%s.frec", cycle, seq, sanitizeReason(reason))
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// sanitizeReason maps a free-form trigger reason onto a filename-safe
// slug.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason) && len(out) < 40; i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}
