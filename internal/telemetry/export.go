package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteMetricsCSV writes every counter and the sampled series as CSV: a
// per-router table, a per-link table, and the time series, separated by
// comment headers. Rates use the probe's observed horizon (Elapsed).
func (p *Probe) WriteMetricsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# routers"); err != nil {
		return err
	}
	fmt.Fprintln(w, "router,routed,switch_moves,bypass_moves,arb_losses,credit_stalls,stage_stalls,res_hits,res_misses,injected_flits,ejected_flits,delivered_flits,delivered_packets,aborted_packets,mean_buf_occ")
	for _, rp := range p.Routers {
		if rp == nil {
			continue
		}
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f\n",
			rp.ID, rp.Routed, rp.SwitchMoves, rp.BypassMoves,
			rp.ArbLosses, rp.CreditStalls, rp.StageStalls,
			rp.ResHits, rp.ResMisses,
			rp.InjectedFlits, rp.EjectedFlits,
			rp.DeliveredFlits, rp.DeliveredPackets, rp.AbortedPackets,
			rp.meanBufOcc())
	}
	fmt.Fprintln(w, "# vcs")
	fmt.Fprintln(w, "router,vc,mean_buf_occ")
	for _, rp := range p.Routers {
		if rp == nil || rp.Samples == 0 {
			continue
		}
		for v, sum := range rp.VCOccSum {
			fmt.Fprintf(w, "%d,%d,%.4f\n", rp.ID, v, float64(sum)/float64(rp.Samples))
		}
	}
	fmt.Fprintln(w, "# links")
	fmt.Fprintln(w, "link,from,dir,to,flits,head_flits,credits,util,dead_at")
	for _, lp := range p.Links {
		if lp == nil {
			continue
		}
		fmt.Fprintf(w, "%d,%d,%v,%d,%d,%d,%d,%.4f,%d\n",
			lp.Index, lp.From, lp.Dir, lp.To,
			lp.Flits, lp.HeadFlits, lp.Credits, lp.Util(p.Elapsed), lp.DeadAt)
	}
	// The protocol section only appears when the retry layer published
	// counters, so metrics CSVs from runs without it are unchanged.
	if p.RetryRetransmits != 0 || p.RetryTimeouts != 0 || p.RetryCorrupt != 0 {
		fmt.Fprintln(w, "# protocol")
		fmt.Fprintln(w, "retry_retransmits,retry_timeouts,retry_discarded_corrupt")
		fmt.Fprintf(w, "%d,%d,%d\n", p.RetryRetransmits, p.RetryTimeouts, p.RetryCorrupt)
	}
	fmt.Fprintln(w, "# series")
	fmt.Fprintln(w, "cycle,buf_occ,link_in_flight,link_flits,switch_moves,arb_losses,credit_stalls,res_hits,delivered_flits")
	for _, row := range p.Series {
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			row.Cycle, row.BufOcc, row.LinkInFlight, row.LinkFlits,
			row.SwitchMoves, row.ArbLosses, row.CreditStalls, row.ResHits, row.Delivered)
	}
	return nil
}

// meanBufOcc reports the router's mean total buffered flits across series
// samples (0 when the series was off).
func (rp *RouterProbe) meanBufOcc() float64 {
	if rp.Samples == 0 {
		return 0
	}
	var sum int64
	for _, s := range rp.VCOccSum {
		sum += s
	}
	return float64(sum) / float64(rp.Samples)
}

// MetricsTable renders the counters as aligned text tables: network
// totals, the per-router stall taxonomy, and the busiest channels.
func (p *Probe) MetricsTable() string {
	var sb strings.Builder
	var routed, moves, bypass, arbL, credS, stageS, resH, resM, inj, ej, del, pkts, abrt int64
	for _, rp := range p.Routers {
		if rp == nil {
			continue
		}
		routed += rp.Routed
		moves += rp.SwitchMoves
		bypass += rp.BypassMoves
		arbL += rp.ArbLosses
		credS += rp.CreditStalls
		stageS += rp.StageStalls
		resH += rp.ResHits
		resM += rp.ResMisses
		inj += rp.InjectedFlits
		ej += rp.EjectedFlits
		del += rp.DeliveredFlits
		pkts += rp.DeliveredPackets
		abrt += rp.AbortedPackets
	}
	fmt.Fprintf(&sb, "telemetry over %d cycles:\n", p.Elapsed)
	fmt.Fprintf(&sb, "  flits    injected %d  ejected %d  delivered %d (%d packets)\n", inj, ej, del, pkts)
	fmt.Fprintf(&sb, "  switch   moves %d  bypass %d  route-computes %d\n", moves, bypass, routed)
	fmt.Fprintf(&sb, "  stalls   arbitration losses %d  credit %d  staging %d\n", arbL, credS, stageS)
	if resH+resM > 0 {
		fmt.Fprintf(&sb, "  slots    reservation hits %d  unclaimed %d\n", resH, resM)
	}
	if abrt > 0 || p.DeadLinks > 0 || p.FaultsApplied > 0 {
		fmt.Fprintf(&sb, "  faults   applied %d  dead links %d  aborted packets %d\n",
			p.FaultsApplied, p.DeadLinks, abrt)
	}
	type stalled struct {
		id    int
		total int64
	}
	var hot []stalled
	for _, rp := range p.Routers {
		if rp != nil && rp.ArbLosses+rp.CreditStalls+rp.StageStalls > 0 {
			hot = append(hot, stalled{rp.ID, rp.ArbLosses + rp.CreditStalls + rp.StageStalls})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].total != hot[j].total {
			return hot[i].total > hot[j].total
		}
		return hot[i].id < hot[j].id
	})
	if len(hot) > 0 {
		if len(hot) > 5 {
			hot = hot[:5]
		}
		sb.WriteString("  most-contended routers (stall events):")
		for _, h := range hot {
			fmt.Fprintf(&sb, "  t%d:%d", h.id, h.total)
		}
		sb.WriteByte('\n')
	}
	busiest := make([]*LinkProbe, 0, len(p.Links))
	for _, lp := range p.Links {
		if lp != nil && lp.Flits > 0 {
			busiest = append(busiest, lp)
		}
	}
	sort.Slice(busiest, func(i, j int) bool {
		if busiest[i].Flits != busiest[j].Flits {
			return busiest[i].Flits > busiest[j].Flits
		}
		return busiest[i].Index < busiest[j].Index
	})
	if len(busiest) > 0 {
		if len(busiest) > 5 {
			busiest = busiest[:5]
		}
		sb.WriteString("  busiest channels (flits, util):\n")
		for _, lp := range busiest {
			fmt.Fprintf(&sb, "    L%d %d-%v: %d flits, %.1f%%\n",
				lp.Index, lp.From, lp.Dir, lp.Flits, 100*lp.Util(p.Elapsed))
		}
	}
	if n := p.OverUnityLinks(p.Elapsed); n > 0 {
		fmt.Fprintf(&sb, "  WARNING  %d channel(s) report over-unity duty factor (clamped to 100%%); flit accounting is double-counting\n", n)
	}
	return sb.String()
}

// Heatmap renders the k×k die as ASCII, one cell per tile, showing the mean
// utilization of the tile's outgoing channels — where the §4.4 wire sharing
// happens, from the probe's own counters (reconcilable against the flit
// totals, unlike an instantaneous view).
func (p *Probe) Heatmap() string {
	if p.kx == 0 || p.ky == 0 {
		return ""
	}
	type cell struct {
		sum float64
		n   int
	}
	grid := make([]cell, p.kx*p.ky)
	tileAt := make([]int, p.kx*p.ky)
	for i := range tileAt {
		tileAt[i] = -1
	}
	for _, lp := range p.Links {
		if lp == nil {
			continue
		}
		idx := lp.PY*p.kx + lp.PX
		grid[idx].sum += lp.Util(p.Elapsed)
		grid[idx].n++
		tileAt[idx] = lp.From
	}
	var sb strings.Builder
	sb.WriteString("outgoing-channel duty factor by die position (tile:util):\n")
	for y := p.ky - 1; y >= 0; y-- {
		for x := 0; x < p.kx; x++ {
			c := grid[y*p.kx+x]
			v := 0.0
			if c.n > 0 {
				v = c.sum / float64(c.n)
			}
			tile := tileAt[y*p.kx+x]
			if tile < 0 {
				sb.WriteString("     --  ")
				continue
			}
			fmt.Fprintf(&sb, "  %2d:%3.0f%%", tile, 100*v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteHeatmapCSV writes the k×k per-tile mean outgoing utilization grid as
// CSV, row y=ky-1 first (matching the ASCII rendering's orientation).
func (p *Probe) WriteHeatmapCSV(w io.Writer) error {
	grid := p.HeatmapGrid(p.Elapsed)
	if grid == nil {
		return fmt.Errorf("telemetry: no grid registered")
	}
	for _, row := range grid {
		for x, v := range row {
			if x > 0 {
				if _, err := fmt.Fprint(w, ","); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "%.4f", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}
