package telemetry

import (
	"strings"
	"testing"

	"repro/internal/route"
)

func TestRegisterIdempotent(t *testing.T) {
	p := New(Config{})
	a := p.RegisterRouter(3, 4)
	b := p.RegisterRouter(3, 4)
	if a != b {
		t.Fatal("RegisterRouter(3) returned two probes")
	}
	if len(a.VCOccSum) != 4 {
		t.Fatalf("VCOccSum len = %d, want 4", len(a.VCOccSum))
	}
	la := p.RegisterLink(2, 0, 1, route.East, 1, 0, 0)
	lb := p.RegisterLink(2, 0, 1, route.East, 1, 0, 0)
	if la != lb {
		t.Fatal("RegisterLink(2) returned two probes")
	}
	if p.Links[0] != nil || p.Links[1] != nil {
		t.Fatal("unregistered link slots should stay nil")
	}
	if la.DeadAt != -1 {
		t.Fatalf("fresh link DeadAt = %d, want -1", la.DeadAt)
	}
}

func TestLinkUtil(t *testing.T) {
	lp := &LinkProbe{Serdes: 2}
	for i := 0; i < 10; i++ {
		lp.OnSend(i%2 == 0)
	}
	if lp.Flits != 10 || lp.HeadFlits != 5 {
		t.Fatalf("Flits=%d HeadFlits=%d, want 10/5", lp.Flits, lp.HeadFlits)
	}
	if got := lp.Util(40); got != 0.5 {
		t.Fatalf("Util(40) = %v, want 0.5 (10 flits x serdes 2)", got)
	}
	if got := lp.Util(10); got != 1 {
		t.Fatalf("Util must cap at 1, got %v", got)
	}
	if got := lp.Util(0); got != 0 {
		t.Fatalf("Util(0) = %v, want 0", got)
	}
}

func TestAddSampleCumulative(t *testing.T) {
	p := New(Config{SampleEvery: 10})
	rp := p.RegisterRouter(0, 2)
	lp := p.RegisterLink(0, 0, 1, route.East, 1, 0, 0)
	rp.SwitchMoves, rp.ArbLosses, rp.EjectedFlits = 7, 2, 5
	lp.Flits = 11
	p.AddSample(10, 3, 1)
	rp.SwitchMoves = 9
	p.AddSample(20, 0, 0)
	if len(p.Series) != 2 {
		t.Fatalf("series rows = %d, want 2", len(p.Series))
	}
	r0, r1 := p.Series[0], p.Series[1]
	if r0.Cycle != 10 || r0.BufOcc != 3 || r0.LinkInFlight != 1 {
		t.Fatalf("row0 = %+v", r0)
	}
	if r0.SwitchMoves != 7 || r0.ArbLosses != 2 || r0.Delivered != 5 || r0.LinkFlits != 11 {
		t.Fatalf("row0 counters = %+v", r0)
	}
	if r1.SwitchMoves != 9 {
		t.Fatalf("row1.SwitchMoves = %d, want cumulative 9", r1.SwitchMoves)
	}
}

func TestTracerBounded(t *testing.T) {
	p := New(Config{Trace: true, MaxTraceEvents: 3})
	rp := p.RegisterRouter(0, 1)
	for i := 0; i < 5; i++ {
		rp.Trace(EvRoute, int64(i), 1, 0, 0)
	}
	tr := p.Tracer()
	if len(tr.Events()) != 3 {
		t.Fatalf("recorded %d events, want 3 (cap)", len(tr.Events()))
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestTraceDisabledIsNilSafe(t *testing.T) {
	p := New(Config{})
	rp := p.RegisterRouter(0, 1)
	if rp.Tracing() {
		t.Fatal("Tracing() true without Config.Trace")
	}
	rp.Trace(EvRoute, 1, 1, 0, 0) // must not panic
	if p.Tracer() != nil {
		t.Fatal("Tracer() non-nil without Config.Trace")
	}
	var sb strings.Builder
	if err := p.WriteChromeTrace(&sb); err == nil {
		t.Fatal("WriteChromeTrace should error when tracing is off")
	}
}

func TestChromeTraceAndTimeline(t *testing.T) {
	p := New(Config{Trace: true})
	rp := p.RegisterRouter(0, 1)
	lp := p.RegisterLink(0, 0, 1, route.East, 1, 0, 0)
	rp.Trace(EvInject, 0, 1, 0, 1)
	rp.Trace(EvRoute, 1, 1, 0, int32(route.East))
	rp.Trace(EvXbar, 1, 1, 0, 0)
	lp.TraceHead(2, 1)
	rp.Trace(EvEject, 3, 1, 1, 2)
	p.OnLinkDead(0, 4)

	var sb strings.Builder
	if err := p.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"traceEvents"`, `"ph": "X"`, `"ph": "i"`, `"ph": "M"`,
		`pkt 1 0-`, `"inject"`, `"route"`, `"xbar"`, `"link"`, `"eject"`, `"link-dead"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}

	line := p.PacketTimeline(1)
	for _, want := range []string{"pkt 1:", "inject@0[0->1]", "route@1[t0 E]", "wire@2[L0]", "eject@3[t1] net=3"} {
		if !strings.Contains(line, want) {
			t.Errorf("timeline %q missing %q", line, want)
		}
	}
	if p.PacketTimeline(99) != "" {
		t.Error("unknown packet should have an empty timeline")
	}
	var tl strings.Builder
	if err := p.WriteTimelines(&tl, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.String(), "pkt 1:") {
		t.Errorf("WriteTimelines output %q missing packet 1", tl.String())
	}
}

func TestMetricsCSVSections(t *testing.T) {
	p := New(Config{SampleEvery: 5})
	rp := p.RegisterRouter(0, 2)
	p.RegisterLink(0, 0, 1, route.East, 1, 0, 0)
	rp.VCOccSum[0], rp.VCOccSum[1], rp.Samples = 4, 2, 2
	p.AddSample(5, 6, 0)
	p.Elapsed = 100
	var sb strings.Builder
	if err := p.WriteMetricsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, section := range []string{"# routers", "# vcs", "# links", "# series"} {
		if !strings.Contains(out, section+"\n") {
			t.Errorf("CSV missing section %q", section)
		}
	}
	if !strings.Contains(out, "0,0,2.0000\n") || !strings.Contains(out, "0,1,1.0000\n") {
		t.Errorf("per-VC mean occupancy rows wrong:\n%s", out)
	}
}

func TestHeatmapGrid(t *testing.T) {
	p := New(Config{})
	p.SetGrid(2, 2)
	// Tiles 0..3 at physical positions (0,0) (1,0) (0,1) (1,1), one
	// outgoing link each; tile 3's is saturated.
	for tile := 0; tile < 4; tile++ {
		lp := p.RegisterLink(tile, tile, (tile+1)%4, route.East, 1, tile%2, tile/2)
		if tile == 3 {
			lp.Flits = 100
		}
	}
	p.Elapsed = 100
	hm := p.Heatmap()
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("heatmap has %d lines, want 3:\n%s", len(lines), hm)
	}
	// Row order is y=1 first; tile 3 sits at (1,1) so its 100% cell
	// belongs on the first grid row.
	if !strings.Contains(lines[1], "3:100%") {
		t.Errorf("top row %q missing saturated tile 3", lines[1])
	}
	if !strings.Contains(lines[2], "0:  0%") {
		t.Errorf("bottom row %q missing idle tile 0", lines[2])
	}

	var sb strings.Builder
	if err := p.WriteHeatmapCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(rows) != 2 || rows[0] != "0.0000,1.0000" || rows[1] != "0.0000,0.0000" {
		t.Errorf("heatmap CSV = %q", sb.String())
	}

	if (&Probe{}).Heatmap() != "" {
		t.Error("grid-less probe should render an empty heatmap")
	}
	if err := (&Probe{}).WriteHeatmapCSV(&sb); err == nil {
		t.Error("grid-less WriteHeatmapCSV should error")
	}
}

func TestMetricsTableTotals(t *testing.T) {
	p := New(Config{})
	for tile := 0; tile < 2; tile++ {
		rp := p.RegisterRouter(tile, 1)
		rp.InjectedFlits, rp.EjectedFlits = 10, 10
		rp.DeliveredFlits, rp.DeliveredPackets = 10, 5
		rp.SwitchMoves, rp.ArbLosses = 20, int64(tile)
	}
	lp := p.RegisterLink(0, 0, 1, route.East, 1, 0, 0)
	lp.Flits = 7
	p.Elapsed = 50
	out := p.MetricsTable()
	for _, want := range []string{
		"telemetry over 50 cycles",
		"injected 20  ejected 20  delivered 20 (10 packets)",
		"moves 40",
		"arbitration losses 1",
		"most-contended routers (stall events):  t1:1",
		"L0 0-E: 7 flits",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if p.TotalLinkFlits() != 7 || p.TotalDeliveredFlits() != 20 || p.TotalEjectedFlits() != 20 {
		t.Errorf("totals: link=%d delivered=%d ejected=%d", p.TotalLinkFlits(), p.TotalDeliveredFlits(), p.TotalEjectedFlits())
	}
}

func TestFaultAccounting(t *testing.T) {
	p := New(Config{})
	p.RegisterLink(1, 0, 1, route.East, 1, 0, 0)
	p.OnLinkDead(1, 42)
	p.OnFault(40, 2, 7)
	if p.DeadLinks != 1 || p.Links[1].DeadAt != 42 || p.FaultsApplied != 1 {
		t.Errorf("dead=%d deadAt=%d faults=%d", p.DeadLinks, p.Links[1].DeadAt, p.FaultsApplied)
	}
	p.Observe(100)
	p.Observe(50)
	if p.Elapsed != 100 {
		t.Errorf("Observe must be monotonic, Elapsed=%d", p.Elapsed)
	}
}

// TestOverUnityClampAndSurfacing pins the over-unity contract: a channel
// whose flit accounting exceeds the physical wire capacity still reports a
// clamped Util of 1.0, but the condition is never masked — OverUnity,
// OverUnityLinks, the link snapshot, and the text-table WARNING all
// surface it.
func TestOverUnityClampAndSurfacing(t *testing.T) {
	p := New(Config{})
	good := p.RegisterLink(0, 0, 1, route.East, 1, 0, 0)
	bad := p.RegisterLink(1, 1, 2, route.East, 2, 0, 0)
	good.Flits = 50   // serdes 1 over 100 cycles: duty 0.5
	bad.Flits = 80    // serdes 2 over 100 cycles: raw duty 1.6
	p.Elapsed = 100

	if got := good.Util(100); got != 0.5 {
		t.Fatalf("healthy link Util = %v, want 0.5", got)
	}
	if good.OverUnity(100) {
		t.Fatal("healthy link reported over-unity")
	}
	if got := bad.Util(100); got != 1.0 {
		t.Fatalf("over-unity link Util = %v, want exactly the 1.0 clamp", got)
	}
	if !bad.OverUnity(100) {
		t.Fatal("over-unity condition masked by the clamp")
	}
	if got := p.OverUnityLinks(100); got != 1 {
		t.Fatalf("OverUnityLinks = %d, want 1", got)
	}

	snaps := p.SnapshotLinks(nil, 100)
	if len(snaps) != 2 {
		t.Fatalf("got %d link snapshots, want 2", len(snaps))
	}
	if snaps[0].OverUnity || snaps[0].Util != 0.5 {
		t.Fatalf("healthy link snapshot wrong: %+v", snaps[0])
	}
	if !snaps[1].OverUnity || snaps[1].Util != 1.0 {
		t.Fatalf("over-unity link snapshot wrong: %+v", snaps[1])
	}

	table := p.MetricsTable()
	if !strings.Contains(table, "WARNING") || !strings.Contains(table, "over-unity") {
		t.Fatalf("metrics table does not surface the over-unity warning:\n%s", table)
	}

	// A probe with sane accounting must not warn.
	bad.Flits = 40
	if table := p.MetricsTable(); strings.Contains(table, "WARNING") {
		t.Fatalf("metrics table warns without an over-unity link:\n%s", table)
	}
}
