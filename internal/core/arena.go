package core

import (
	"fmt"
	"sync"

	"repro/internal/network"
	"repro/internal/power"
)

// This file is the network arena: a per-shape pool of fully built
// networks that Run (and the replicated sweep runners) re-initialize in
// place with network.Reset instead of rebuilding from scratch. Building
// a network allocates every router, VC buffer, link pipeline, and port
// pool; for a campaign that runs hundreds of points over one shape, that
// construction cost — and the allocator and GC pressure behind it — is
// pure overhead after the first point. A pooled network is Reset on
// acquire, so a dirty release (a run abandoned mid-flight by the resume
// test mode, say) can never leak state into the next run.
//
// Only runs whose attachments are plain generators are pooled: meters,
// probes, deflection state, physical wire models, and OnNetwork hooks
// tie a network to one run's identity (network.Resettable refuses them),
// so those configurations fall back to a fresh build per run.

// arenaMaxPerKey caps how many idle networks one shape retains; beyond
// it, released networks are dropped for the GC. The cap bounds resident
// memory when a highly parallel sweep fans wider than later phases need.
const arenaMaxPerKey = 32

var arena struct {
	sync.Mutex
	pools map[string][]*network.Network
}

// arenaKey fingerprints every parameter that shapes a network's
// allocation: topology, radix, router geometry, link models, and the
// resolved shard/batching layout (kernel.Reset preserves the shard
// structure, so differently sharded networks must not share a pool).
// Seed, warmup, rate, and checkpoint policy are per-run state that
// network.Reset re-establishes.
func arenaKey(p RunParams) string {
	sh := p.Shards
	if sh == 0 {
		sh = Shards()
	}
	if sh < 0 {
		sh = 0
	}
	be := p.BatchEpochs
	if be == 0 {
		be = BatchEpochs()
	}
	return fmt.Sprintf("%s|k=%d|vc=%d|buf=%d|mode=%d|ct=%v|ns=%v|serdes=%d|elastic=%v|adaptive=%v|wd=%d|ecc=%v|sh=%d|be=%d",
		p.Topology, p.K, p.NumVCs, p.BufFlits, p.Mode, p.CutThrough, p.NonSpeculative,
		p.SerdesCycles, p.ElasticLinks, p.Adaptive, p.Watchdog, p.ECC, sh, be)
}

// arenaEligible reports whether a run's network may come from (and
// return to) the arena. The exclusions mirror network.Resettable plus
// the attachments whose lifetime is the run itself (probes, OnNetwork
// observability hooks).
func arenaEligible(p RunParams) bool {
	return !p.Deflect && !p.PhysWires && !p.Metered && p.Probe == nil && p.OnNetwork == nil
}

// acquireNetwork returns a client-less network for p — re-initialized in
// place from the arena when one of the right shape is idle, freshly
// built otherwise — together with its power meter (nil for pooled
// networks; metered runs are never pooled) and a release function that
// parks the network for reuse. release is safe to call exactly once, at
// any point after the run is finished with the network.
func acquireNetwork(p RunParams) (*network.Network, *power.Meter, func(), error) {
	if !arenaEligible(p) {
		n, meter, err := BuildNetwork(p)
		if err != nil {
			return nil, nil, nil, err
		}
		return n, meter, func() {}, nil
	}
	key := arenaKey(p)
	arena.Lock()
	pool := arena.pools[key]
	var n *network.Network
	if len(pool) > 0 {
		n = pool[len(pool)-1]
		pool[len(pool)-1] = nil
		arena.pools[key] = pool[:len(pool)-1]
	}
	arena.Unlock()
	if n != nil {
		if err := n.Reset(p.Seed, p.WarmupCycles); err == nil {
			return n, nil, releaseFunc(key, n), nil
		}
		// A pooled network that refuses Reset is dropped; fall through to
		// a fresh build.
	}
	n, meter, err := BuildNetwork(p)
	if err != nil {
		return nil, nil, nil, err
	}
	return n, meter, releaseFunc(key, n), nil
}

func releaseFunc(key string, n *network.Network) func() {
	return func() {
		if n.Resettable() != nil {
			return
		}
		arena.Lock()
		if arena.pools == nil {
			arena.pools = make(map[string][]*network.Network)
		}
		if len(arena.pools[key]) < arenaMaxPerKey {
			arena.pools[key] = append(arena.pools[key], n)
		}
		arena.Unlock()
	}
}

// DrainArena empties the arena, for tests and benchmarks that need to
// measure cold-build behaviour or release the pooled memory.
func DrainArena() {
	arena.Lock()
	arena.pools = nil
	arena.Unlock()
}
