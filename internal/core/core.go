package core

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a paper claim and the measured rows
// that reproduce it. cmd/nocbench prints these; EXPERIMENTS.md records
// them.
type Table struct {
	ID         string // experiment id from DESIGN.md (E1..E19)
	Title      string
	PaperClaim string // what the paper says, quoted or paraphrased
	Columns    []string
	Rows       [][]string
	Notes      []string
}

// AddRow appends a row; it pads or truncates to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned ASCII for terminal reports.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", note)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavoured Markdown table for
// EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&sb, "**Paper:** %s\n\n", t.PaperClaim)
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", note)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Experiment pairs an id with its runner. Quick mode shortens the
// measurement windows for unit tests and smoke runs.
type Experiment struct {
	ID    string
	Title string
	Run   func(quick bool) (*Table, error)
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Baseline 16-tile folded-torus network", E1Baseline},
		{"E2", "Router area overhead (6.6%)", E2Area},
		{"E3", "Mesh vs torus power (<15% overhead)", E3Power},
		{"E4", "Load-latency: mesh vs folded torus", E4LoadLatency},
		{"E5", "Flow control vs buffer budget", E5FlowControl},
		{"E6", "Low-swing circuits (10x power, 3x velocity)", E6Circuits},
		{"E7", "Logical wires over the network", E7LogicalWire},
		{"E8", "Pre-scheduled traffic: zero jitter", E8Reservation},
		{"E9", "Wire duty factor: dedicated vs shared", E9DutyFactor},
		{"E10", "Interface partitioning: 1x256 vs 8x32", E10Partition},
		{"E11", "Fault tolerance: spare-bit steering, ECC, retry", E11Fault},
		{"E12", "Network vs shared bus", E12Bus},
		{"E13", "Bits per wire per clock; serialized links", E13Serdes},
		{"E14", "Port interface semantics", E14Interface},
		{"E15", "Internal network registers: in-band setup", E15Registers},
		{"E16", "Timing closure: statistical vs structured wiring", E16TimingClosure},
		{"E17", "Fixed tiles vs compaction", E17Compaction},
		{"E18", "Topology choice across network sizes", E18TopologyScaling},
		{"E19", "Adaptive routing vs dimension order", E19Adaptive},
		{"E20", "Chaos campaign: runtime faults, detection, rerouting", E20Chaos},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}
