package core

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/circuits"
	"repro/internal/flit"
	"repro/internal/topology"
	"repro/internal/wiring"
)

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// E1Baseline reproduces the §2 example network: the 4x4 folded torus with
// the 0,2,3,1 fold, checked structurally and then exercised end to end.
func E1Baseline(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Baseline 16-tile folded torus (Fig. 1)",
		PaperClaim: "16 tiles of 3mm x 3mm on a 12mm die; folded torus with rows " +
			"cyclically connected 0,2,3,1; reliable datagram delivery",
		Columns: []string{"property", "paper", "measured"},
	}
	topo, err := BuildTopology("torus", 4)
	if err != nil {
		return nil, err
	}
	a := topology.Analyze(topo)
	t.AddRow("tiles", "16", fmt.Sprint(a.Tiles))
	t.AddRow("fold order (radix 4)", "0,2,3,1", fmt.Sprint(topology.FoldOrder(4)))
	t.AddRow("max link length (pitches)", "short (folded)", f1(maxLinkLen(topo)))
	t.AddRow("channels", "64 unidirectional", fmt.Sprint(a.Channels))
	t.AddRow("bisection channels", "2x mesh", fmt.Sprint(a.BisectionChannels))

	p := DefaultRunParams()
	p.Rate = 0.05
	if quick {
		p.MeasureCycles = 1500
	}
	res, err := Run(p)
	if err != nil {
		return nil, err
	}
	t.AddRow("delivered packets", "> 0, all intact", fmt.Sprint(res.DeliveredPackets))
	zeroLoad := 2*a.AvgHops + 2
	t.AddRow("avg latency at 5% load (cycles)", fmt.Sprintf("~%.1f (2H+2)", zeroLoad), f2(res.AvgLatency))
	t.AddNote("layout:\n%s", topology.Layout(topo))
	return t, nil
}

func maxLinkLen(t topology.Topology) float64 {
	best := 0.0
	for _, l := range topology.Links(t) {
		if l.Length > best {
			best = l.Length
		}
	}
	return best
}

// E2Area reproduces the §2.4 area model.
func E2Area(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Router area overhead (§2.4)",
		PaperClaim: "~10^4 buffer bits per edge; <50µm strip per 3mm edge; 0.59mm² " +
			"total = 6.6% of tile; ~3000 of 6000 wiring tracks",
		Columns: []string{"quantity", "paper", "model"},
	}
	rep, err := area.Evaluate(area.Paper())
	if err != nil {
		return nil, err
	}
	t.AddRow("buffer bits / edge", "~10^4", fmt.Sprint(rep.BufferBitsPerEdge))
	t.AddRow("edge strip width", "<50 µm", fmt.Sprintf("%.1f µm", rep.EdgeStripWidthUM))
	t.AddRow("router area / tile", "0.59 mm²", fmt.Sprintf("%.3f mm²", rep.RouterAreaMM2))
	t.AddRow("area overhead", "6.6%", pct(rep.OverheadFraction))
	t.AddRow("wiring tracks used", "~3000 / 6000", fmt.Sprintf("%d / %d", rep.TracksUsed, rep.TracksAvailable))
	// §3.2 corollary: buffers dominate, so area scales with buffering.
	for _, bufs := range []int{1, 2, 4, 8} {
		p := area.Paper().WithBuffers(8, bufs)
		t.AddRow(fmt.Sprintf("overhead @ %d flits/VC", bufs), "-", pct(p.OverheadFraction()))
	}
	t.AddNote("buffer storage dominates the router area, which is why §3.2 ties buffer count to area overhead")
	return t, nil
}

// E3Power reproduces the §3.1 mesh/torus power comparison, analytically
// and from simulated energy accounting.
func E3Power(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Mesh vs folded torus power (§3.1)",
		PaperClaim: "wire power dominates hop power; the torus burns <15% more power " +
			"but has 2x the bisection bandwidth",
		Columns: []string{"model", "mesh J/flit", "torus J/flit", "torus overhead"},
	}
	m := PaperPowerModel()
	ideal := m.ComparePaper(4, 2.0)
	t.AddRow("paper closed form (2-pitch torus hops)",
		fmt.Sprintf("%.3g", ideal.Mesh.TotalJ), fmt.Sprintf("%.3g", ideal.Torus.TotalJ), pct(ideal.TorusOverhead))
	fold := m.ComparePaper(4, 1.5)
	t.AddRow("paper closed form (actual 1.5-pitch fold)",
		fmt.Sprintf("%.3g", fold.Mesh.TotalJ), fmt.Sprintf("%.3g", fold.Torus.TotalJ), pct(fold.TorusOverhead))
	exact, err := m.CompareExact(4)
	if err != nil {
		return nil, err
	}
	t.AddRow("exact expectation (fold geometry)",
		fmt.Sprintf("%.3g", exact.Mesh.TotalJ), fmt.Sprintf("%.3g", exact.Torus.TotalJ), pct(exact.TorusOverhead))

	// Simulated: identical low-load uniform traffic on both topologies.
	sim := func(topoName string) (RunResult, error) {
		p := DefaultRunParams()
		p.Topology = topoName
		p.Rate = 0.05
		p.Metered = true
		if quick {
			p.MeasureCycles = 1500
		}
		return Run(p)
	}
	mres, err := sim("mesh")
	if err != nil {
		return nil, err
	}
	tres, err := sim("torus")
	if err != nil {
		return nil, err
	}
	overhead := tres.EnergyPerFlit/mres.EnergyPerFlit - 1
	t.AddRow("simulated (uniform @ 5% load)",
		fmt.Sprintf("%.3g", mres.EnergyPerFlit), fmt.Sprintf("%.3g", tres.EnergyPerFlit), pct(overhead))

	meshA := topology.Analyze(mustTopo("mesh"))
	torusA := topology.Analyze(mustTopo("torus"))
	t.AddNote("bisection: mesh %d vs torus %d channels (2.0x); wire demand %0.f vs %.0f pitches (2.0x)",
		meshA.BisectionChannels, torusA.BisectionChannels, meshA.WireDemand, torusA.WireDemand)
	t.AddNote("wire fraction of flit energy: mesh %s, torus %s (wire power dominates, as §3.1 assumes)",
		pct(exact.Mesh.WireFrac), pct(exact.Torus.WireFrac))
	t.AddNote("the <15%% claim holds for the actual fold (1.5 pitches/hop); idealized 2-pitch hops overshoot it")
	return t, nil
}

func mustTopo(name string) topology.Topology {
	topo, err := BuildTopology(name, 4)
	if err != nil {
		panic(err)
	}
	return topo
}

// E6Circuits reproduces the §4.1 signaling comparison and the latency
// head-to-head against dedicated full-swing wires.
func E6Circuits(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Pulsed low-swing signaling (§4.1)",
		PaperClaim: "100mV low-swing drivers: ~10x lower power, ~3x signal velocity, " +
			"~3x repeater spacing; pre-scheduled network latency can beat a dedicated " +
			"full-swing wire with optimal repeaters",
		Columns: []string{"quantity", "paper", "model"},
	}
	p := circuits.Process100nm()
	fs, ls := circuits.FullSwing(p), circuits.LowSwing(p)
	t.AddRow("power ratio (full/low swing)", "10x", f1(ls.PowerRatio(fs))+"x")
	t.AddRow("velocity ratio", "3x", f1(ls.VelocityMMPerS/fs.VelocityMMPerS)+"x")
	t.AddRow("repeater spacing ratio", "3x", f1(ls.RepeaterSpacingMM/fs.RepeaterSpacingMM)+"x")
	t.AddRow("full-swing repeaters per 3mm tile", ">=1", fmt.Sprint(fs.Repeaters(p.TilePitchMM)))
	t.AddRow("low-swing repeaters per 3mm tile", "0", fmt.Sprint(ls.Repeaters(p.TilePitchMM)))

	for _, span := range []float64{3, 6, 9, 12} {
		c := wiring.CompareLatency(p, span, p.TilePitchMM, 0.5, 0.05)
		verdict := "dedicated"
		if c.NetworkWinsPre {
			verdict = "network"
		}
		t.AddRow(fmt.Sprintf("latency @ %.0fmm span", span),
			fmt.Sprintf("dedicated %.2fns", c.DedicatedNS),
			fmt.Sprintf("pre-sched net %.2fns, dynamic %.2fns -> %s wins", c.NetworkPreNS, c.NetworkNS, verdict))
	}
	t.AddNote("router delay: 0.5ns/hop dynamic (1 cycle @ 2GHz), 0.05ns/hop pre-scheduled bypass")
	return t, nil
}

// E9DutyFactor reproduces §4.4: dedicated wires idle; shared network wires
// do not.
func E9DutyFactor(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Wire duty factor (§4.4)",
		PaperClaim: "the average wire on a typical chip toggles <10% of the time; a " +
			"network shares wires and achieves a much higher duty factor",
		Columns: []string{"design", "wires", "duty factor"},
	}
	flows := []wiring.Flow{
		{Name: "cpu-mem", LengthMM: 6, WidthBits: 64, PeakBitsPerCycle: 64, AvgBitsPerCycle: 5},
		{Name: "dsp-mem", LengthMM: 9, WidthBits: 64, PeakBitsPerCycle: 64, AvgBitsPerCycle: 4},
		{Name: "video-in", LengthMM: 12, WidthBits: 32, PeakBitsPerCycle: 32, AvgBitsPerCycle: 3},
		{Name: "periph", LengthMM: 9, WidthBits: 32, PeakBitsPerCycle: 32, AvgBitsPerCycle: 2},
	}
	ded, err := wiring.PlanDedicated(flows, circuits.FullSwing(circuits.Process100nm()))
	if err != nil {
		return nil, err
	}
	t.AddRow("dedicated point-to-point wires", fmt.Sprint(ded.Wires), pct(ded.DutyFactor))
	sh, err := wiring.PlanShared(flows, 64, 2, 6, 2)
	if err != nil {
		return nil, err
	}
	t.AddRow("shared 2x64b network spine (planned)", fmt.Sprint(sh.Wires), pct(sh.DutyFactor))

	// Simulated: the baseline network at moderate and heavy load.
	for _, rate := range []float64{0.1, 0.3, 0.6} {
		p := DefaultRunParams()
		p.Rate = rate
		if quick {
			p.MeasureCycles = 1500
		}
		res, err := Run(p)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("simulated torus links @ %.0f%% load", rate*100),
			"64 channels x 300b",
			fmt.Sprintf("mean %s, max %s", pct(res.LinkUtilMean), pct(res.LinkUtilMax)))
	}
	// §4.4's closing point: "we operate on-chip networks with very high
	// duty factors - over 100% if we transmit several bits per cycle."
	// With the §3.3 wire rate, each busy link cycle toggles the wire
	// bitsPerClock times.
	proc := circuits.Process100nm()
	p := DefaultRunParams()
	p.Rate = 0.6
	if quick {
		p.MeasureCycles = 1500
	}
	res, err := Run(p)
	if err != nil {
		return nil, err
	}
	for _, clockHz := range []float64{1e9, 200e6} {
		bpc := proc.BitsPerClock(clockHz)
		t.AddRow(fmt.Sprintf("toggles/clock @ %.1fGHz clock, %.0f%% load", clockHz/1e9, p.Rate*100),
			fmt.Sprintf("%.0f bits/clock wires", bpc),
			pct(res.LinkUtilMean*bpc))
	}
	t.AddNote("with multi-bit signaling the busiest wires toggle more than once per clock — the >100%% duty factor of §4.4")
	return t, nil
}

// E10Partition reproduces §4.2: splitting the 256-bit interface into eight
// 32-bit networks.
func E10Partition(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Interface partitioning (§4.2)",
		PaperClaim: "small payloads waste a 256-bit flit; eight 32-bit networks use a " +
			"fraction of the interface per small transfer at the cost of duplicated control",
		Columns: []string{"payload", "1x256 efficiency", "8x32 efficiency", "8x32 concurrent small pkts"},
	}
	for _, bits := range []int{8, 16, 32, 64, 128, 256} {
		wide := float64(bits) / 256.0
		sub := (bits + 31) / 32 // subnetworks a transfer occupies
		narrow := float64(bits) / float64(sub*32)
		t.AddRow(fmt.Sprintf("%d b", bits), pct(wide), pct(narrow), fmt.Sprint(8/sub))
	}
	ctrlWide := float64(flit.OverheadBits) / float64(flit.OverheadBits+256)
	ctrlNarrow := float64(flit.OverheadBits) / float64(flit.OverheadBits+32)
	t.AddNote("control overhead per flit: %s of the wide interface vs %s per 32b partition (the §4.2 'additional signal overhead')",
		pct(ctrlWide), pct(ctrlNarrow))
	t.AddNote("partitioning multiplies small-payload injection concurrency by up to 8x without adding wires")
	return t, nil
}

// E13Serdes reproduces §3.3's per-wire bandwidth arithmetic and the §2.3
// trade of wiring for controller logic, simulated with serialized links.
func E13Serdes(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Bits per wire per clock; serialized links (§3.3)",
		PaperClaim: "4Gb/s per wire is 2-20 bits per clock (2GHz-200MHz); driving wires " +
			"faster than the router clock trades wiring for controller logic",
		Columns: []string{"config", "paper", "measured"},
	}
	p := circuits.Process100nm()
	for _, f := range []float64{200e6, 500e6, 1e9, 2e9} {
		t.AddRow(fmt.Sprintf("bits/clock @ %.1fGHz", f/1e9),
			map[float64]string{200e6: "20", 2e9: "2"}[f],
			f1(p.BitsPerClock(f)))
	}
	// Simulated: a flit serialized over narrower links takes serdes cycles
	// per hop; zero-load latency grows, saturation throughput falls in
	// proportion to the wire budget saved.
	for _, serdes := range []int{1, 2, 4} {
		rp := DefaultRunParams()
		rp.SerdesCycles = serdes
		rp.Rate = 0.05
		if quick {
			rp.MeasureCycles = 1500
		}
		res, err := Run(rp)
		if err != nil {
			return nil, err
		}
		// Saturation probe at a high offered rate.
		rp.Rate = 0.95 / float64(serdes)
		sat, err := Run(rp)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("serdes %dx (1/%d wire budget)", serdes, serdes),
			"-",
			fmt.Sprintf("zero-load %.1fcyc, accepted %.3f flit/node/cyc", res.AvgLatency, sat.AcceptedFlits))
	}
	return t, nil
}
