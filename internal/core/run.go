// Package core is the experiment layer of the reproduction: it assembles
// networks from high-level parameters, runs calibrated measurement
// campaigns (load–latency sweeps, energy accounting, jitter analysis), and
// implements one runner per experiment in DESIGN.md's E1–E19 index. The
// cmd/nocbench binary and the repository-level benchmarks are thin wrappers
// over this package.
package core

import (
	"fmt"
	"path/filepath"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/circuits"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// parallelism is the worker-pool width used by Sweep and the multi-point
// experiments; 0 selects sim.DefaultParallelism() (GOMAXPROCS).
var parallelism int64

// SetParallelism sets the number of simulations run concurrently by Sweep
// and the multi-point experiments. n <= 0 restores the default
// (GOMAXPROCS). Each point always runs on its own network and kernel, so
// the results are identical at any parallelism.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&parallelism, int64(n))
}

// Parallelism reports the current worker-pool width (0 = GOMAXPROCS).
func Parallelism() int { return int(atomic.LoadInt64(&parallelism)) }

// shards is the default intra-cycle shard count for networks built by this
// package: 1 (sequential) unless overridden by SetShards or per-run via
// RunParams.Shards. Unlike parallelism (across independent sweep points),
// sharding parallelizes the phases *within* one simulation, with
// byte-identical results (see internal/network/shard.go).
var shards int64 = 1

// SetShards sets the default intra-cycle shard count for subsequently
// built networks. 0 selects GOMAXPROCS, 1 restores the sequential loop;
// n < 0 is clamped to 1.
func SetShards(n int) {
	if n < 0 {
		n = 1
	}
	atomic.StoreInt64(&shards, int64(n))
}

// Shards reports the default intra-cycle shard count (0 = GOMAXPROCS).
func Shards() int { return int(atomic.LoadInt64(&shards)) }

// batchEpochs is the default epoch-batching cap for networks built by
// this package: 0 defers to the network default
// (network.DefaultBatchEpochs), negative disables batching.
var batchEpochs int64

// SetBatchEpochs sets the default epoch-batching cap for subsequently
// built networks (see network.Config.BatchEpochs). 0 restores the
// network default; n < 0 disables batching. Batching only engages on
// sharded runs and never changes results.
func SetBatchEpochs(n int) { atomic.StoreInt64(&batchEpochs, int64(n)) }

// BatchEpochs reports the default epoch-batching cap (0 = network
// default, negative = off).
func BatchEpochs() int { return int(atomic.LoadInt64(&batchEpochs)) }

// simulatedCycles accumulates the kernel cycles executed by Run and
// RunCampaign across all goroutines, so the CLIs can report simulated
// cycles per wall-clock second.
var simulatedCycles int64

// SimulatedCycles reports the total kernel cycles executed by this
// package's runners since process start (or the last Reset).
func SimulatedCycles() int64 { return atomic.LoadInt64(&simulatedCycles) }

// ResetSimulatedCycles zeroes the simulated-cycle counter.
func ResetSimulatedCycles() { atomic.StoreInt64(&simulatedCycles, 0) }

func countCycles(n int64) { atomic.AddInt64(&simulatedCycles, n) }

// RunParams describes one simulation measurement.
type RunParams struct {
	Topology string // "torus" or "mesh"
	K        int    // radix (K x K tiles)

	Pattern        string  // traffic pattern name
	Rate           float64 // offered flits/cycle/node
	FlitsPerPacket int

	NumVCs         int
	BufFlits       int
	Mode           router.Mode
	Deflect        bool
	ElasticLinks   bool
	Adaptive       bool
	CutThrough     bool
	NonSpeculative bool
	SerdesCycles   int

	WarmupCycles  int64
	MeasureCycles int64
	DrainBudget   int64

	Seed    int64
	Metered bool

	// Fault-tolerance options (§2.5 and the runtime fault subsystem).
	// Watchdog arms per-link credit-starvation detection with the given
	// threshold; PhysWires enables bit-level wire modelling (required for
	// transient flip injection); ECC protects each link with SECDED.
	Watchdog  int
	PhysWires bool
	ECC       bool

	// Probe, when non-nil, attaches the telemetry layer to the network
	// built for this run. The same probe must not be shared across
	// concurrent runs (Sweep); instrument a dedicated run instead.
	Probe *telemetry.Probe

	// Shards is the intra-cycle shard count for this run's network
	// (network.Config.Shards): 0 defers to the package default
	// (SetShards), negative means GOMAXPROCS explicitly. Results are
	// byte-identical at any shard count.
	Shards int

	// BatchEpochs caps how many cycles a sharded run folds into one
	// barrier epoch while the network is near-quiescent
	// (network.Config.BatchEpochs): 0 defers to the package default
	// (SetBatchEpochs), negative disables batching. Results are
	// byte-identical at any setting.
	BatchEpochs int

	// OnNetwork, when non-nil, runs after the network is built and the
	// clients attached, before the first cycle — the attachment point for
	// the live observability service (telemetry/serve) and other
	// pre-run instrumentation. Like Probe, it must not be shared across
	// concurrent runs.
	OnNetwork func(*network.Network) error

	// Crash-safe checkpointing (checkpoint.go). CheckpointEvery > 0 with
	// a CheckpointDir writes a durable snapshot of the full simulation
	// state every CheckpointEvery cycles; Resume restarts the run from
	// the newest valid snapshot in CheckpointDir (from scratch when the
	// directory holds none). A resumed run reproduces the uninterrupted
	// run's outputs byte for byte, at any shard count. None of the three
	// fields affects simulation results.
	CheckpointEvery int64
	CheckpointDir   string
	Resume          bool
}

// DefaultRunParams returns the paper's baseline configuration under
// uniform random traffic.
func DefaultRunParams() RunParams {
	return RunParams{
		Topology:       "torus",
		K:              4,
		Pattern:        "uniform",
		Rate:           0.1,
		FlitsPerPacket: 1,
		NumVCs:         8,
		BufFlits:       4,
		WarmupCycles:   1000,
		MeasureCycles:  4000,
		DrainBudget:    50000,
		Seed:           1,
	}
}

// RunResult is the measured outcome of one run.
type RunResult struct {
	Params RunParams

	OfferedFlits  float64 // offered flits/cycle/node
	AcceptedFlits float64 // delivered flits/cycle/node in the window

	AvgLatency float64 // packet latency (birth -> delivery), cycles
	P50Latency int64
	P99Latency int64
	MaxLatency int64
	AvgNetLat  float64 // injection -> delivery

	LinkUtilMean float64
	LinkUtilMax  float64

	DroppedPackets int64
	Deflections    int64

	HopEnergyJ    float64
	WireEnergyJ   float64
	EnergyPerFlit float64

	DeliveredPackets int64
}

// BuildTopology constructs the named topology.
func BuildTopology(name string, k int) (topology.Topology, error) {
	switch name {
	case "torus":
		return topology.NewFoldedTorus(k, k)
	case "mesh":
		return topology.NewMesh(k, k)
	default:
		return nil, fmt.Errorf("core: unknown topology %q", name)
	}
}

// PaperPowerModel returns the §3.1 energy model over low-swing wires.
func PaperPowerModel() power.Model {
	return power.DefaultModel(circuits.LowSwing(circuits.Process100nm()).EnergyPerBitMM)
}

// routeTableMaxTiles bounds the precomputed all-pairs route table shared
// through the artifact cache: the table is tiles² route words (~16 MB at
// 1024 tiles) and grows quadratically, so larger networks keep the lazily
// filled per-network memo cache instead.
const routeTableMaxTiles = 1024

// sharedTopology returns the immutable topology for (name, k) from the
// artifact cache. Topologies are pure geometry — every method is
// read-only — so one instance serves every network of the shape
// concurrently.
func sharedTopology(name string, k int) (topology.Topology, error) {
	v, err := artifact.Get(fmt.Sprintf("topology|%s|%d", name, k), func() (any, error) {
		return BuildTopology(name, k)
	})
	if err != nil {
		return nil, err
	}
	return v.(topology.Topology), nil
}

// sharedAdjacency returns the cached link adjacency list for a topology.
// The slice is shared read-only: network.New only iterates it.
func sharedAdjacency(name string, k int, topo topology.Topology) ([]topology.Link, error) {
	v, err := artifact.Get(fmt.Sprintf("adjacency|%s|%d", name, k), func() (any, error) {
		return topology.Links(topo), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]topology.Link), nil
}

// sharedRouteTable returns the cached all-pairs route table for a
// topology, or nil above routeTableMaxTiles (the per-network memo cache
// takes over there).
func sharedRouteTable(name string, k int, topo topology.Topology) *route.Table {
	tiles := topo.NumTiles()
	if tiles > routeTableMaxTiles {
		return nil
	}
	v, err := artifact.Get(fmt.Sprintf("routetable|%s|%d", name, k), func() (any, error) {
		return route.BuildTable(topo, tiles), nil
	})
	if err != nil {
		return nil
	}
	return v.(*route.Table)
}

// BuildNetwork assembles the network for the given parameters, without
// clients attached.
func BuildNetwork(p RunParams) (*network.Network, *power.Meter, error) {
	topo, err := sharedTopology(p.Topology, p.K)
	if err != nil {
		return nil, nil, err
	}
	adj, err := sharedAdjacency(p.Topology, p.K, topo)
	if err != nil {
		return nil, nil, err
	}
	rc := router.DefaultConfig(0)
	if p.NumVCs > 0 {
		rc.NumVCs = p.NumVCs
	}
	if p.BufFlits > 0 {
		rc.BufFlits = p.BufFlits
	}
	rc.Mode = p.Mode
	rc.NonSpeculative = p.NonSpeculative
	rc.CutThrough = p.CutThrough
	var meter *power.Meter
	if p.Metered {
		meter = power.NewMeter(PaperPowerModel())
	}
	sh := p.Shards
	if sh == 0 {
		sh = Shards()
	}
	if sh < 0 {
		sh = 0 // explicit GOMAXPROCS request -> network auto
	}
	be := p.BatchEpochs
	if be == 0 {
		be = BatchEpochs()
	}
	cfg := network.Config{
		Topo:         topo,
		Adjacency:    adj,
		RouteTable:   sharedRouteTable(p.Topology, p.K, topo),
		Router:       rc,
		Shards:       sh,
		BatchEpochs:  be,
		SerdesCycles: p.SerdesCycles,
		Deflect:      p.Deflect,
		ElasticLinks: p.ElasticLinks,
		Adaptive:     p.Adaptive,
		Meter:        meter,
		Warmup:       p.WarmupCycles,
		Seed:         p.Seed,
		Watchdog:     p.Watchdog,
		PhysWires:    p.PhysWires,
		ECC:          p.ECC,
		Probe:        p.Probe,
	}
	n, err := network.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return n, meter, nil
}

// attachRunClients attaches the Bernoulli generators for one measurement
// run to an already-built (or arena-reset) network, sets the measurement
// window, and runs the OnNetwork hook. The generators are returned in
// tile order so warm-fork replication can reseed them in place.
func attachRunClients(n *network.Network, p RunParams, stopAt int64) ([]*traffic.Generator, error) {
	pattern, err := traffic.ByName(p.Pattern, p.K, p.K)
	if err != nil {
		return nil, err
	}
	n.Recorder().MeasureUntil = stopAt
	mask := flit.VCMask(0xFF)
	if p.NumVCs > 0 && p.NumVCs < 8 {
		mask = flit.VCMask((1 << p.NumVCs) - 1)
	}
	gens := make([]*traffic.Generator, n.Topology().NumTiles())
	for tile := range gens {
		g := traffic.NewGenerator(tile, pattern, p.Rate, p.FlitsPerPacket, mask, p.Seed)
		g.StopAt = stopAt
		n.AttachClient(tile, g)
		gens[tile] = g
	}
	if p.OnNetwork != nil {
		if err := p.OnNetwork(n); err != nil {
			return nil, err
		}
	}
	return gens, nil
}

// collectResult reads the measurement window out of a drained network.
func collectResult(n *network.Network, meter *power.Meter, p RunParams, topo topology.Topology) RunResult {
	rec := n.Recorder()
	res := RunResult{
		Params:           p,
		OfferedFlits:     p.Rate,
		AcceptedFlits:    float64(rec.WindowFlits) / float64(p.MeasureCycles) / float64(topo.NumTiles()),
		AvgLatency:       rec.PacketLatency.Mean(),
		P50Latency:       rec.PacketLatency.Median(),
		P99Latency:       rec.PacketLatency.P99(),
		MaxLatency:       rec.PacketLatency.Max(),
		AvgNetLat:        rec.NetworkLatency.Mean(),
		LinkUtilMean:     linkUtilMean(n),
		LinkUtilMax:      n.MaxLinkUtilization(),
		DeliveredPackets: rec.DeliveredPackets,
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		if r := n.Router(tile); r != nil {
			res.DroppedPackets += r.Stats.DroppedPackets
		}
	}
	if meter != nil {
		res.HopEnergyJ = meter.HopEnergyJ
		res.WireEnergyJ = meter.WireEnergyJ
		if rec.DeliveredFlits > 0 {
			res.EnergyPerFlit = meter.TotalJ() / float64(rec.DeliveredFlits)
		}
	}
	return res
}

// Run executes one measurement: Bernoulli generators on every tile at the
// offered rate, a warmup, a measurement window, and a drain tail so
// measured packets complete.
func Run(p RunParams) (RunResult, error) {
	stopAt := p.WarmupCycles + p.MeasureCycles
	build := func() (*network.Network, *power.Meter, error) {
		n, meter, err := BuildNetwork(p)
		if err != nil {
			return nil, nil, err
		}
		if _, err := attachRunClients(n, p, stopAt); err != nil {
			return nil, nil, err
		}
		return n, meter, nil
	}
	n, meter, release, err := acquireNetwork(p)
	if err != nil {
		return RunResult{}, err
	}
	defer release()
	if _, err := attachRunClients(n, p, stopAt); err != nil {
		return RunResult{}, err
	}
	topo := n.Topology()
	n, err = runToHorizon(n, p, stopAt, configHash("run", p, ""),
		func() (*network.Network, error) {
			n2, _, err := build()
			return n2, err
		},
		func(n2 *network.Network) error {
			_, err := attachRunClients(n2, p, stopAt)
			return err
		})
	if err != nil {
		return RunResult{}, err
	}
	// Drain so that in-flight measured packets finish. At saturation the
	// sources have stopped, so the network always empties.
	drain := p.DrainBudget
	if drain <= 0 {
		drain = 50000
	}
	n.Drain(drain)
	countCycles(n.Kernel().Now())
	return collectResult(n, meter, p, topo), nil
}

func linkUtilMean(n *network.Network) float64 {
	s := n.LinkUtilization()
	return s.Mean()
}

// SweepPoint is one point of a load–latency curve.
type SweepPoint struct {
	Rate   float64
	Result RunResult
}

// Sweep runs the same configuration across offered rates. Points run
// concurrently on the SetParallelism worker pool; each owns an
// independent network, kernel, and seed, so the table is bit-identical to
// a sequential sweep and ordered by rate as given.
//
// When base.CheckpointDir is set, every point checkpoints into its own
// point-NNN subdirectory, so an interrupted sweep resumes each point from
// that point's newest snapshot.
func Sweep(base RunParams, rates []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(rates))
	err := sim.ForEach(len(rates), Parallelism(), func(i int) error {
		p := base
		p.Rate = rates[i]
		if p.CheckpointDir != "" {
			p.CheckpointDir = filepath.Join(base.CheckpointDir, fmt.Sprintf("point-%03d", i))
		}
		res, err := Run(p)
		if err != nil {
			return err
		}
		out[i] = SweepPoint{Rate: rates[i], Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SaturationRate estimates the saturation throughput from a sweep: the
// highest offered rate the network still accepts within 10%, interpolated
// from the accepted-throughput ceiling beyond it.
func SaturationRate(points []SweepPoint) float64 {
	sat := 0.0
	for _, pt := range points {
		if pt.Result.AcceptedFlits >= 0.9*pt.Rate {
			if pt.Result.AcceptedFlits > sat {
				sat = pt.Rate
			}
		} else if pt.Result.AcceptedFlits > sat {
			// Past saturation the accepted rate itself is the ceiling.
			sat = pt.Result.AcceptedFlits
		}
	}
	return sat
}
