package core

// Post-mortem replay support for the flight recorder
// (internal/telemetry/flightrec): a run serializes a SimSpec — the
// complete recipe for rebuilding its network and clients — into every
// dump, and cmd/nocpost rebuilds from it to time-travel through the
// recorded window. Rebuild mirrors Run's build closure exactly (same
// generators, VC mask, measurement horizon), so a network rebuilt from a
// spec and advanced deterministically reproduces the original run byte
// for byte.

import (
	"encoding/json"
	"fmt"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// SimSpec is the serializable self-description of a run: every parameter
// that shapes simulation state, and nothing that doesn't (shard count,
// batching, checkpoint cadence, and observability attachments are all
// byte-identical knobs, so a replay may pick its own). The probe fields
// are included because an attached probe is itself checkpointed state — a
// keyframe restores into a rebuilt network only when the probe layout
// (series on/off, tracer on/off) matches.
type SimSpec struct {
	Kind string `json:"kind"` // "run", "campaign", or "trace"

	Topology       string  `json:"topology"`
	K              int     `json:"k"`
	Pattern        string  `json:"pattern"`
	Rate           float64 `json:"rate"`
	FlitsPerPacket int     `json:"flits_per_packet"`

	NumVCs         int  `json:"num_vcs"`
	BufFlits       int  `json:"buf_flits"`
	Mode           int  `json:"mode"`
	Deflect        bool `json:"deflect,omitempty"`
	ElasticLinks   bool `json:"elastic_links,omitempty"`
	Adaptive       bool `json:"adaptive,omitempty"`
	CutThrough     bool `json:"cut_through,omitempty"`
	NonSpeculative bool `json:"non_speculative,omitempty"`
	SerdesCycles   int  `json:"serdes_cycles,omitempty"`

	WarmupCycles  int64 `json:"warmup_cycles"`
	MeasureCycles int64 `json:"measure_cycles"`
	Seed          int64 `json:"seed"`

	Watchdog  int  `json:"watchdog,omitempty"`
	PhysWires bool `json:"phys_wires,omitempty"`
	ECC       bool `json:"ecc,omitempty"`

	ProbeSampleEvery    int64 `json:"probe_sample_every,omitempty"`
	ProbeTrace          bool  `json:"probe_trace,omitempty"`
	ProbeMaxTraceEvents int   `json:"probe_max_trace_events,omitempty"`
}

// SpecForRun captures the replay recipe for a run about to execute with
// p. kind is the client arrangement ("run" for Run's Bernoulli
// generators; "campaign" and "trace" record identity only — their client
// state is not rebuildable from parameters, so Rebuild refuses them).
func SpecForRun(kind string, p RunParams) SimSpec {
	s := SimSpec{
		Kind:           kind,
		Topology:       p.Topology,
		K:              p.K,
		Pattern:        p.Pattern,
		Rate:           p.Rate,
		FlitsPerPacket: p.FlitsPerPacket,
		NumVCs:         p.NumVCs,
		BufFlits:       p.BufFlits,
		Mode:           int(p.Mode),
		Deflect:        p.Deflect,
		ElasticLinks:   p.ElasticLinks,
		Adaptive:       p.Adaptive,
		CutThrough:     p.CutThrough,
		NonSpeculative: p.NonSpeculative,
		SerdesCycles:   p.SerdesCycles,
		WarmupCycles:   p.WarmupCycles,
		MeasureCycles:  p.MeasureCycles,
		Seed:           p.Seed,
		Watchdog:       p.Watchdog,
		PhysWires:      p.PhysWires,
		ECC:            p.ECC,
	}
	if p.Probe != nil {
		cfg := p.Probe.Config()
		s.ProbeSampleEvery = cfg.SampleEvery
		s.ProbeTrace = cfg.Trace
		s.ProbeMaxTraceEvents = cfg.MaxTraceEvents
	}
	return s
}

// JSON serializes the spec for embedding in a flight-recorder dump.
func (s SimSpec) JSON() ([]byte, error) { return json.Marshal(s) }

// ParseSpec decodes a spec serialized by JSON.
func ParseSpec(data []byte) (SimSpec, error) {
	var s SimSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return SimSpec{}, fmt.Errorf("core: bad sim spec: %w", err)
	}
	return s, nil
}

// Params reconstructs the RunParams a spec describes (replay-neutral
// fields zero). The probe is rebuilt fresh when the original run had one.
func (s SimSpec) Params() RunParams {
	p := RunParams{
		Topology:       s.Topology,
		K:              s.K,
		Pattern:        s.Pattern,
		Rate:           s.Rate,
		FlitsPerPacket: s.FlitsPerPacket,
		NumVCs:         s.NumVCs,
		BufFlits:       s.BufFlits,
		Mode:           router.Mode(s.Mode),
		Deflect:        s.Deflect,
		ElasticLinks:   s.ElasticLinks,
		Adaptive:       s.Adaptive,
		CutThrough:     s.CutThrough,
		NonSpeculative: s.NonSpeculative,
		SerdesCycles:   s.SerdesCycles,
		WarmupCycles:   s.WarmupCycles,
		MeasureCycles:  s.MeasureCycles,
		Seed:           s.Seed,
		Watchdog:       s.Watchdog,
		PhysWires:      s.PhysWires,
		ECC:            s.ECC,
		Shards:         1, // replay is sequential; results are shard-invariant
	}
	if s.ProbeSampleEvery > 0 || s.ProbeTrace {
		p.Probe = telemetry.New(telemetry.Config{
			SampleEvery:    s.ProbeSampleEvery,
			Trace:          s.ProbeTrace,
			MaxTraceEvents: s.ProbeMaxTraceEvents,
		})
	} else {
		p.Probe = telemetry.New(telemetry.Config{})
	}
	return p
}

// Rebuild assembles a fresh network exactly as the original run's build
// closure did — same topology, router config, measurement horizon, VC
// mask, and per-tile Bernoulli generators — positioned at cycle 0 and
// ready for a keyframe restore or a straight deterministic replay.
func (s SimSpec) Rebuild() (*network.Network, error) {
	if s.Kind != "run" {
		return nil, fmt.Errorf("core: %q runs are not rebuildable from a spec (client state is external); ring analysis and verdicts still work", s.Kind)
	}
	p := s.Params()
	stopAt := p.WarmupCycles + p.MeasureCycles
	n, _, err := BuildNetwork(p)
	if err != nil {
		return nil, err
	}
	pattern, err := traffic.ByName(p.Pattern, p.K, p.K)
	if err != nil {
		return nil, err
	}
	n.Recorder().MeasureUntil = stopAt
	mask := flit.VCMask(0xFF)
	if p.NumVCs > 0 && p.NumVCs < 8 {
		mask = flit.VCMask((1 << p.NumVCs) - 1)
	}
	for tile := 0; tile < n.Topology().NumTiles(); tile++ {
		g := traffic.NewGenerator(tile, pattern, p.Rate, p.FlitsPerPacket, mask, p.Seed)
		g.StopAt = stopAt
		n.AttachClient(tile, g)
	}
	return n, nil
}

// ConfigHash exposes the run-configuration fingerprint to the
// observability layer: the flight recorder stamps it on keyframes and
// dumps so nocpost rejects cross-configuration replay the same way the
// resume path rejects cross-configuration checkpoints.
func ConfigHash(kind string, p RunParams, extra string) uint64 {
	return configHash(kind, p, extra)
}
