package core

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/router"
	"repro/internal/topology"
)

// E11Fault reproduces §2.5: spare-bit steering around hard wire faults,
// link-level ECC against transients, and end-to-end retry as the layered
// alternative.
func E11Fault(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Fault-tolerant wiring and protocols (§2.5)",
		PaperClaim: "a spare bit per link plus steering routes around any single hard " +
			"fault; link-level ECC or end-to-end retry masks transients",
		Columns: []string{"scenario", "packets", "corrupted payloads", "verdict"},
	}
	cycles := int64(3000)
	if quick {
		cycles = 1500
	}

	// patternPayload builds a self-describing payload: byte i is
	// seed+i, so the receiver can verify integrity without side channels.
	patternPayload := func(seed byte, n int) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = seed + byte(i)
		}
		return p
	}
	intact := func(p []byte) bool {
		for i := range p {
			if p[i] != p[0]+byte(i) {
				return false
			}
		}
		return len(p) > 0
	}

	runHardFault := func(steer bool) (packets, corrupted int64, err error) {
		topo, err := topology.NewFoldedTorus(4, 4)
		if err != nil {
			return 0, 0, err
		}
		n, err := network.New(network.Config{
			Topo: topo, Router: router.DefaultConfig(0),
			PhysWires: true, SpareWires: 1, Seed: 21,
		})
		if err != nil {
			return 0, 0, err
		}
		// Kill one wire on every third link.
		for i, l := range n.Links() {
			if i%3 != 0 {
				continue
			}
			if err := l.Phys.InjectHardFault((i * 37) % (flit.DataBits + 1)); err != nil {
				return 0, 0, err
			}
			if steer {
				if err := l.Phys.ProgramSteering(); err != nil {
					return 0, 0, err
				}
			}
		}
		for tile := 0; tile < topo.NumTiles(); tile++ {
			tile := tile
			n.AttachClient(tile, network.ClientFunc(func(now int64, p *network.Port) {
				for _, d := range p.Deliveries() {
					packets++
					if !intact(d.Payload) {
						corrupted++
					}
				}
				if now < cycles-500 && now%5 == int64(tile%5) {
					dst := int(now+int64(tile)*3) % topo.NumTiles()
					if dst != tile {
						_, _ = p.Send(dst, patternPayload(byte(now+int64(tile)), 32), flit.VCMask(0xFF), 0)
					}
				}
			}))
		}
		n.Run(cycles)
		return packets, corrupted, nil
	}

	pk, bad, err := runHardFault(true)
	if err != nil {
		return nil, err
	}
	verdict := "PASS"
	if bad != 0 || pk == 0 {
		verdict = "FAIL"
	}
	t.AddRow("hard fault/3 links + steering", fmt.Sprint(pk), fmt.Sprint(bad), verdict)

	pk, bad, err = runHardFault(false)
	if err != nil {
		return nil, err
	}
	verdict = "corruption observed (expected)"
	if bad == 0 {
		verdict = "UNEXPECTED: fault had no effect"
	}
	t.AddRow("hard fault/3 links, no steering", fmt.Sprint(pk), fmt.Sprint(bad), verdict)

	// Transients masked by link-level ECC.
	runTransient := func(ecc bool) (packets, corrupted, correctedFlits int64, err error) {
		topo, err := topology.NewFoldedTorus(4, 4)
		if err != nil {
			return 0, 0, 0, err
		}
		n, err := network.New(network.Config{
			Topo: topo, Router: router.DefaultConfig(0),
			PhysWires: true, TransientProb: 0.05, ECC: ecc, Seed: 23,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		for tile := 0; tile < topo.NumTiles(); tile++ {
			tile := tile
			n.AttachClient(tile, network.ClientFunc(func(now int64, p *network.Port) {
				for _, d := range p.Deliveries() {
					packets++
					if !intact(d.Payload) {
						corrupted++
					}
				}
				if now < cycles-500 && now%4 == int64(tile%4) {
					dst := (tile*5 + int(now)) % topo.NumTiles()
					if dst != tile {
						_, _ = p.Send(dst, patternPayload(byte(now), 32), flit.VCMask(0xFF), 0)
					}
				}
			}))
		}
		n.Run(cycles)
		for _, l := range n.Links() {
			correctedFlits += l.Phys.CorrectedFlits
		}
		return packets, corrupted, correctedFlits, nil
	}
	pk, bad, fixed, err := runTransient(true)
	if err != nil {
		return nil, err
	}
	verdict = "PASS"
	if bad != 0 || fixed == 0 {
		verdict = "FAIL"
	}
	t.AddRow(fmt.Sprintf("transients (5%%/link) + SECDED ECC, %d corrected", fixed),
		fmt.Sprint(pk), fmt.Sprint(bad), verdict)

	pk, bad, _, err = runTransient(false)
	if err != nil {
		return nil, err
	}
	verdict = "corruption observed (expected)"
	if bad == 0 {
		verdict = "UNEXPECTED: transients had no effect"
	}
	t.AddRow("transients (5%/link), no protection", fmt.Sprint(pk), fmt.Sprint(bad), verdict)

	// End-to-end retry over an unprotected corrupting network.
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		return nil, err
	}
	n, err := network.New(network.Config{
		Topo: topo, Router: router.DefaultConfig(0),
		PhysWires: true, TransientProb: 0.03, Seed: 25,
	})
	if err != nil {
		return nil, err
	}
	msgs := make([][]byte, 40)
	for i := range msgs {
		msgs[i] = patternPayload(byte(i), 24)
	}
	snd := protocol.NewReliableSender(13, msgs, flit.MaskFor(0))
	rcv := protocol.NewReliableReceiver(flit.MaskFor(1))
	n.AttachClient(2, snd)
	n.AttachClient(13, rcv)
	done := n.Kernel().RunUntil(func() bool { return snd.Done() }, 300000)
	good := 0
	for i, m := range rcv.Received {
		if i < len(msgs) && string(m) == string(msgs[i]) {
			good++
		}
	}
	verdict = "PASS"
	if !done || good != len(msgs) {
		verdict = "FAIL"
	}
	t.AddRow(fmt.Sprintf("e2e retry (%d retransmits, %d dropped as corrupt)", snd.Retransmits, rcv.Corrupted),
		fmt.Sprintf("%d/%d", good, len(msgs)), "0", verdict)
	return t, nil
}
