package core

import (
	"fmt"
	"math/rand"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/router"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/wiring"
)

// E15Registers reproduces the §2.1/§2.6 register interface: reservation
// registers are themselves network clients, and a management tile lays out
// a static flow entirely in-band.
func E15Registers(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Internal network registers: in-band flow setup (§2.1, §2.6)",
		PaperClaim: "routes can address 'internal network registers'; static routes are " +
			"laid out 'by setting entries in the appropriate reservation register'",
		Columns: []string{"step", "expected", "measured"},
	}
	const (
		src, dst, mgmt = 0, 10, 15
		period, flow   = 8, 1
	)
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		return nil, err
	}
	rc := router.DefaultConfig(0)
	rc.ReservedVC = 7
	rc.ResPeriod = period
	n, err := network.New(network.Config{Topo: topo, Router: rc, Seed: 51})
	if err != nil {
		return nil, err
	}
	cfg, err := protocol.NewConfigurator(topo, src, dst, flow, 0, flit.MaskFor(0))
	if err != nil {
		return nil, err
	}
	n.AttachClient(mgmt, cfg)
	stream := &traffic.StreamSource{
		Tile: src, Dst: dst, Period: period, Flow: flow, Reserved: true,
		Phase: 1 << 40, // held until configured
	}
	var agents []*protocol.RegisterAgent
	for tile := 0; tile < topo.NumTiles(); tile++ {
		if tile == mgmt {
			continue
		}
		agent := &protocol.RegisterAgent{Router: n.Router(tile), Mask: flit.MaskFor(1)}
		agents = append(agents, agent)
		if tile == src {
			n.AttachClient(tile, protocol.AgentWith(agent, stream))
		} else {
			n.AttachClient(tile, agent)
		}
	}
	ok := n.Kernel().RunUntil(func() bool { return cfg.Done }, 10000)
	t.AddRow("configuration completes in-band", "yes", fmt.Sprint(ok && !cfg.Failed))
	setupCycles := n.Kernel().Now()
	hops, _ := topology.PathMetrics(topo, src, dst)
	t.AddRow("hops programmed over the network", fmt.Sprint(hops), fmt.Sprint(cfg.Hops()))
	var programmed int64
	for _, a := range agents {
		programmed += a.Programmed
	}
	t.AddRow("register writes acknowledged", fmt.Sprint(hops), fmt.Sprint(programmed))
	t.AddRow("setup time", "a few round trips", fmt.Sprintf("%d cycles", setupCycles))

	// Start the stream on a phase-aligned cycle; jitter must be zero.
	span := int64(2000)
	if quick {
		span = 1000
	}
	start := ((setupCycles / period) + 1) * period
	stream.Phase = start
	stream.StopAt = start + span
	n.Run(stream.StopAt + 100 - setupCycles)
	rec := n.Recorder()
	lat := rec.FlowLatency(flow)
	if lat == nil || lat.Count() == 0 {
		return nil, fmt.Errorf("core: E15 stream delivered nothing")
	}
	t.AddRow("stream jitter after in-band setup", "0 cycles",
		fmt.Sprintf("%d cycles over %d packets", rec.FlowJitter(flow), lat.Count()))
	return t, nil
}

// E16TimingClosure reproduces the §4.1 methodology argument: dedicated
// global wiring sized from a statistical wire model leaves some drivers
// undersized, and each repair iteration perturbs other nets; the
// structured network wiring is characterized once.
func E16TimingClosure(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "Timing closure: statistical wire model vs structured wiring (§4.1)",
		PaperClaim: "synthesis tools size drivers according to a statistical wire model that " +
			"oversizes most of the drivers but undersizes enough of the drivers to make " +
			"timing closure a difficult problem ... knowing these parameters at the " +
			"beginning of the design process ... minimizes late-stage design iterations",
		Columns: []string{"flow", "nets", "initially failing", "ECO iterations to close"},
	}
	nets := 5000
	if quick {
		nets = 2000
	}
	for _, margin := range []float64{1.5, 2.0, 2.5} {
		s := wiring.RunSizingStudy(nets, margin, 2.0, 500, rand.New(rand.NewSource(61)))
		t.AddRow(
			fmt.Sprintf("auto-routed, %.0f%% timing margin", (margin-1)*100),
			fmt.Sprint(s.Nets),
			fmt.Sprintf("%d (%s)", s.InitialViolators, pct(float64(s.InitialViolators)/float64(s.Nets))),
			fmt.Sprint(s.Iterations))
	}
	t.AddRow("structured on-chip network wiring", "all top-level", "0 (pre-characterized)",
		fmt.Sprint(wiring.StructuredClosurePasses()))
	t.AddNote("the network's wires are identical and planned up front, so their L, R, C are known at design start (§4.1)")
	return t, nil
}
