package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"path/filepath"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/network"
	"repro/internal/sim"
)

// This file wires the checkpoint subsystem into the experiment layer:
// a per-run configuration hash guarding against cross-configuration
// resume, the end-of-cycle checkpointer phase that writes durable
// snapshots, the disk resume path, and an in-memory save/rebuild/restore
// test mode (SetResumeAt) the determinism suite uses to prove that every
// experiment's outputs are identical whether or not the run was
// interrupted.

// keepCheckpoints is how many snapshot files Prune retains per directory:
// the newest plus fallbacks in case the newest is torn by a crash.
const keepCheckpoints = 3

// configHash fingerprints the semantically relevant parameters of a run.
// Shard count, epoch batching, observability attachments, and the
// checkpoint flags themselves are excluded: results are byte-identical
// across those, so a snapshot may be resumed under a different shard
// count or without the original -serve. kind separates client arrangements (plain run vs
// campaign) that share a RunParams; extra folds in campaign-only state.
func configHash(kind string, p RunParams, extra string) uint64 {
	c := p
	c.Probe = nil
	c.OnNetwork = nil
	c.Shards = 0
	c.BatchEpochs = 0
	c.CheckpointEvery, c.CheckpointDir, c.Resume = 0, "", false
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%+v|probe=%v|%s", kind, c, p.Probe != nil, extra)
	return h.Sum64()
}

// checkpointer is the end-of-cycle snapshot phase. It runs as the last
// serial phase of the kernel schedule, behind every merge barrier, where
// the simulation state is identical for any shard count.
type checkpointer struct {
	n      *network.Network
	dir    string
	every  int64
	stopAt int64 // no snapshots past the measurement horizon (drain tail)
	hash   uint64
	err    error // first failed write; surfaced when the run ends
}

func (c *checkpointer) phase(now sim.Cycle) {
	cycle := now + 1 // completed cycles once this cycle's phases finish
	if cycle%c.every != 0 || cycle > c.stopAt {
		return
	}
	data, err := c.n.SaveCheckpoint(c.hash, cycle)
	if err == nil {
		_, err = checkpoint.WriteFile(c.dir, cycle, data)
	}
	if err != nil {
		if c.err == nil {
			c.err = err
		}
		return
	}
	checkpoint.Prune(c.dir, keepCheckpoints)
	c.n.NoteCheckpoint(cycle)
}

// resumeAtBits holds the SetResumeAt fraction (math.Float64bits), atomic
// because Sweep fans Run calls across a worker pool.
var resumeAtBits uint64

// SetResumeAt enables (frac in (0, 1)) or disables (0) the in-memory
// resume test mode: every subsequent Run or RunCampaign executes to
// frac x horizon, snapshots, rebuilds a fresh network, restores the
// snapshot into it, and continues there — so the determinism suite can
// assert that resumed runs reproduce golden outputs exactly. Runs whose
// configuration cannot be checkpointed (deflection, physical wires,
// power meters) fall back to running straight through.
func SetResumeAt(frac float64) {
	if frac < 0 || frac >= 1 {
		frac = 0
	}
	atomic.StoreUint64(&resumeAtBits, math.Float64bits(frac))
}

// ResumeAtFrac reports the SetResumeAt fraction (0 = disabled).
func ResumeAtFrac() float64 {
	return math.Float64frombits(atomic.LoadUint64(&resumeAtBits))
}

// forkAtBits holds the SetForkAt fraction (math.Float64bits), atomic for
// the same reason as resumeAtBits.
var forkAtBits uint64

// SetForkAt enables (frac in (0, 1)) or disables (0) the in-memory warm
// fork test mode: every subsequent Run executes to frac × horizon, takes
// an in-memory snapshot, Resets the same network in place, re-attaches
// fresh clients, restores the snapshot via Fork, and continues — so the
// determinism suite can assert that a warm-forked run reproduces the
// uninterrupted run's outputs byte for byte. Runs whose configuration
// cannot be reset (deflection, physical wires, meters, probes) fall back
// to running straight through, as do runs with disk checkpointing or the
// SetResumeAt mode active.
func SetForkAt(frac float64) {
	if frac < 0 || frac >= 1 {
		frac = 0
	}
	atomic.StoreUint64(&forkAtBits, math.Float64bits(frac))
}

// ForkAtFrac reports the SetForkAt fraction (0 = disabled).
func ForkAtFrac() float64 {
	return math.Float64frombits(atomic.LoadUint64(&forkAtBits))
}

// RunToHorizon advances a caller-assembled network to stopAt completed
// cycles under the checkpoint/resume policy in p (see runToHorizon). It
// is the entry point for command-line tools with bespoke client
// arrangements — e.g. nocsim's trace replay — whose state is not
// described by RunParams alone; kind and extra fold the extra identity
// (such as the trace file) into the configuration hash. rebuild may be
// nil when the in-memory resume test mode is not wanted.
func RunToHorizon(n *network.Network, p RunParams, stopAt int64, kind, extra string, rebuild func() (*network.Network, error)) (*network.Network, error) {
	return runToHorizon(n, p, stopAt, configHash(kind, p, extra), rebuild, nil)
}

// runToHorizon advances n to stopAt completed cycles, applying the
// checkpoint/resume machinery the run's parameters ask for:
//
//   - Resume: restore the newest valid snapshot from CheckpointDir
//     (start from scratch when the directory has none);
//   - CheckpointEvery: register the durable snapshot phase;
//   - SetResumeAt test mode (when rebuild is non-nil and disk
//     checkpointing is off): snapshot mid-run, rebuild, restore, continue;
//   - SetForkAt test mode (when reattach is non-nil, the network is
//     resettable, and neither disk checkpointing nor SetResumeAt is
//     active): snapshot mid-run in memory, Reset the same network in
//     place, reattach fresh clients, Fork the snapshot back, continue.
//
// reattach re-attaches a run's clients to a freshly Reset network; nil
// disables the fork test mode for callers with bespoke client
// arrangements. It returns the network that reached the horizon — the
// original, or the rebuilt one in SetResumeAt mode.
func runToHorizon(n *network.Network, p RunParams, stopAt int64, hash uint64, rebuild func() (*network.Network, error), reattach func(*network.Network) error) (*network.Network, error) {
	if p.Resume && p.CheckpointDir != "" {
		f, path, skipped, err := checkpoint.LoadLatestReport(p.CheckpointDir)
		for _, s := range skipped {
			log.Printf("core: resume skipped torn or corrupt checkpoint %s: %v", filepath.Join(p.CheckpointDir, s.Name), s.Err)
		}
		switch {
		case err == nil:
			if f.ConfigHash != hash {
				return nil, fmt.Errorf("core: checkpoint %s was written by a different configuration (hash %#x, want %#x)", path, f.ConfigHash, hash)
			}
			if err := n.RestoreCheckpoint(f); err != nil {
				return nil, fmt.Errorf("core: restore %s: %w", path, err)
			}
		case errors.Is(err, checkpoint.ErrNoCheckpoints):
			// Nothing to resume; run from scratch.
		default:
			return nil, err
		}
	}
	var ck *checkpointer
	if p.CheckpointEvery > 0 && p.CheckpointDir != "" {
		ck = &checkpointer{n: n, dir: p.CheckpointDir, every: p.CheckpointEvery, stopAt: stopAt, hash: hash}
		n.NoteCheckpointInterval(p.CheckpointEvery)
		n.Kernel().AddPhase("checkpoint", ck.phase)
	}
	if frac := ResumeAtFrac(); frac > 0 && rebuild != nil && ck == nil && n.Kernel().Now() == 0 {
		if mid := int64(frac * float64(stopAt)); mid > 0 && mid < stopAt {
			n.Run(mid)
			if snap, err := n.SaveCheckpoint(hash, mid); err == nil {
				f, err := checkpoint.Parse(snap)
				if err != nil {
					return nil, err
				}
				fresh, err := rebuild()
				if err != nil {
					return nil, err
				}
				if err := fresh.RestoreCheckpoint(f); err != nil {
					return nil, err
				}
				n = fresh
			}
		}
	}
	if frac := ForkAtFrac(); frac > 0 && reattach != nil && ck == nil && ResumeAtFrac() == 0 &&
		n.Kernel().Now() == 0 && n.Resettable() == nil {
		if mid := int64(frac * float64(stopAt)); mid > 0 && mid < stopAt {
			n.Run(mid)
			// A snapshot failure (unsupported attachment) falls through to
			// running straight on, mirroring SetResumeAt.
			if snap, err := n.Snapshot(hash); err == nil {
				if err := n.Reset(p.Seed, p.WarmupCycles); err != nil {
					return nil, err
				}
				if err := reattach(n); err != nil {
					return nil, err
				}
				if err := n.Fork(snap, hash); err != nil {
					return nil, err
				}
			}
		}
	}
	if remaining := stopAt - n.Kernel().Now(); remaining > 0 {
		n.Run(remaining)
	}
	if ck != nil && ck.err != nil {
		return nil, ck.err
	}
	return n, nil
}
