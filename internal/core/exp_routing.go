package core

import "fmt"

// E19Adaptive explores the routing axis of §3's research agenda: west-first
// turn-model adaptive routing against dimension-ordered source routing on
// the mesh, under the transpose permutation that concentrates DOR traffic.
func E19Adaptive(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E19",
		Title: "Adaptive routing vs dimension order (§3 research agenda)",
		PaperClaim: "\"while these choices ... increase the wire utilization, much room " +
			"for improvement remains\" — routing is one axis; west-first turn-model " +
			"adaptivity is the classic deadlock-free improvement on a mesh",
		Columns: []string{"offered", "DOR lat (cyc)", "DOR accepted", "adaptive lat (cyc)", "adaptive accepted"},
	}
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if quick {
		rates = []float64{0.1, 0.3, 0.5}
	}
	base := DefaultRunParams()
	base.Topology = "mesh"
	base.K = 8
	base.Pattern = "transpose"
	base.FlitsPerPacket = 2
	if quick {
		base.WarmupCycles, base.MeasureCycles = 500, 1200
	}
	adaptiveBase := base
	adaptiveBase.Adaptive = true
	dor, err := Sweep(base, rates)
	if err != nil {
		return nil, err
	}
	ad, err := Sweep(adaptiveBase, rates)
	if err != nil {
		return nil, err
	}
	for i := range rates {
		d, a := dor[i].Result, ad[i].Result
		t.AddRow(f2(rates[i]), f1(d.AvgLatency), f3(d.AcceptedFlits),
			f1(a.AvgLatency), f3(a.AcceptedFlits))
	}
	satD, satA := SaturationRate(dor), SaturationRate(ad)
	t.AddNote("8x8 mesh, transpose permutation (adversarial for dimension order)")
	t.AddNote(fmt.Sprintf("saturation: DOR %.2f vs west-first adaptive %.2f flits/node/cycle (%.2fx)",
		satD, satA, satA/satD))
	t.AddNote("west-first can only adapt for source-destination pairs with no westward component, so the gain is partial — the turn model's price for deadlock freedom")
	return t, nil
}
