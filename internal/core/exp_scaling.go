package core

import (
	"fmt"
	"math/rand"

	"repro/internal/area"
	"repro/internal/topology"
)

// E17Compaction reproduces §4.3's die-area discussion: fixed tiles waste
// area under a mixed client population; compacting rows recovers most of
// it at the cost of a non-uniform (design-specific) top-level layout.
func E17Compaction(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Fixed tiles vs compaction (§4.3)",
		PaperClaim: "fixing the size of a tile can potentially waste die area ... for a " +
			"high-volume part, die area can be reduced by compacting the tiles, moving " +
			"client modules so that all of the big (small) clients are in the same row",
		Columns: []string{"floorplan", "die (mm²)", "utilization", "vs fixed tiles"},
	}
	// A representative SoC mix: two processors, four DSPs, memories, and
	// small peripheral controllers — the client list of the paper's Fig. 1.
	rng := rand.New(rand.NewSource(71))
	clients := make([]area.Client, 16)
	for i := range clients {
		switch {
		case i < 2:
			clients[i] = area.Client{Name: "cpu", AreaMM: 8 + rng.Float64()}
		case i < 6:
			clients[i] = area.Client{Name: "dsp", AreaMM: 4 + rng.Float64()}
		case i < 9:
			clients[i] = area.Client{Name: "sram", AreaMM: 2.5 + rng.Float64()}
		default:
			clients[i] = area.Client{Name: "periph", AreaMM: 0.5 + rng.Float64()*0.8}
		}
	}
	const strip = 0.05 // per-edge router strip, §2.4
	fixed, err := area.FixedTiles(clients, 4, strip)
	if err != nil {
		return nil, err
	}
	compact, err := area.CompactedRows(clients, 4, strip)
	if err != nil {
		return nil, err
	}
	lower := area.SumArea(clients)
	t.AddRow(fixed.Name, f1(fixed.DieMM2), pct(fixed.Utilization), "1.00x")
	t.AddRow(compact.Name, f1(compact.DieMM2), pct(compact.Utilization),
		fmt.Sprintf("%.2fx", compact.DieMM2/fixed.DieMM2))
	t.AddRow(lower.Name+" (lower bound)", f1(lower.DieMM2), pct(lower.Utilization),
		fmt.Sprintf("%.2fx", lower.DieMM2/fixed.DieMM2))
	t.AddNote("§4.3: for low-volume parts design time dominates and the fixed-tile waste is acceptable; empty silicon does not hurt yield")
	return t, nil
}

// E18TopologyScaling answers §3.1's open question quantitatively across
// radices: how bisection, hops, wire demand, and the torus power overhead
// scale, holding the paper's energy model fixed.
func E18TopologyScaling(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "Topology choice across network sizes (§3.1)",
		PaperClaim: "there are many alternative topologies and the choice of a topology " +
			"depends on many factors ... if power dissipation is critical, a mesh topology " +
			"may be preferable to a torus",
		Columns: []string{"k", "topology", "avg hops", "wire demand (pitches)", "bisection", "torus power overhead"},
	}
	m := PaperPowerModel()
	ks := []int{4, 6, 8}
	if quick {
		ks = []int{4, 8}
	}
	for _, k := range ks {
		mesh, err := topology.NewMesh(k, k)
		if err != nil {
			return nil, err
		}
		torus, err := topology.NewFoldedTorus(k, k)
		if err != nil {
			return nil, err
		}
		ma, ta := topology.Analyze(mesh), topology.Analyze(torus)
		cmp, err := m.CompareExact(k)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(k), "mesh", f2(ma.AvgHops), f1(ma.WireDemand), fmt.Sprint(ma.BisectionChannels), "-")
		t.AddRow(fmt.Sprint(k), "folded torus", f2(ta.AvgHops), f1(ta.WireDemand),
			fmt.Sprint(ta.BisectionChannels), pct(cmp.TorusOverhead))
	}
	t.AddNote("the torus's power overhead grows with radix (the fold's average link length approaches the 2-pitch ideal) while its bisection advantage stays 2x — exactly the paper's point that 'if power dissipation is critical, a mesh topology may be preferable', and increasingly so on larger dies")
	return t, nil
}
