package core

import (
	"fmt"
	"math/rand"

	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// CampaignParams describes one fault-injection campaign: a network and
// load configuration plus the faults to inject, scheduled (Spec) and/or
// stochastic (MTBF over the run length).
type CampaignParams struct {
	Run    RunParams // network and traffic configuration
	Spec   string    // scheduled events, fault.ParseEvents syntax
	MTBF   float64   // mean cycles between stochastic faults; 0 disables
	Cycles int64     // injection window; sources stop here and the network drains
}

// DefaultCampaignParams returns the baseline chaos configuration: the
// paper's 4x4 folded torus under 10% uniform Bernoulli load with
// watchdogs armed at threshold 64.
func DefaultCampaignParams() CampaignParams {
	p := DefaultRunParams()
	p.Rate = 0.10
	p.Watchdog = 64
	return CampaignParams{Run: p, Cycles: 4000}
}

// CampaignResult is the measured outcome of one fault campaign.
type CampaignResult struct {
	Params CampaignParams

	Sent      int64 // packets accepted by source ports
	Delivered int64 // packets that reached their destination client
	SendFails int64 // sends refused (network cut at injection time)

	Injected int // fault events applied
	Skipped  int // fault events that could not be applied

	Detections         []fault.Detection
	DetectionLatencies []int64 // per detection, cycles from injection to declaration

	// LostAfterEngage counts packets born after the last detection that
	// never arrived: the acceptance criterion demands zero for any
	// single-link fault on a torus.
	LostAfterEngage int64
	BornAfterEngage int64

	// PostFaultThroughput is delivered packets/cycle/node over the window
	// after the last detection (0 when nothing was detected).
	PostFaultThroughput float64

	Totals network.FaultTotals
}

// bornRec is one accepted send: the packet id and its birth cycle.
type bornRec struct {
	id uint64
	at int64
}

// campaignLedger is the campaign's cross-tile packet accounting: every
// accepted send with its birth cycle, arrivals by id, and the aggregate
// counters. The kernel's client phase is single-threaded, so the append
// order is deterministic and plain containers are safe. The logs are
// append-only slices rather than maps so a checkpoint is a straight
// sequential encode — no sort, no map iteration — whose cost tracks the
// packet count; the arrival set keeps a side map only for the O(1)
// duplicate-delivery check during the run.
type campaignLedger struct {
	born       []bornRec // accepted sends, in injection order
	arrivedLog []uint64  // first arrivals, in delivery order
	arrived    map[uint64]bool
	sent       int64
	delivered  int64
	sendFails  int64
}

func newCampaignLedger() *campaignLedger {
	return &campaignLedger{arrived: make(map[uint64]bool)}
}

// noteArrival records the first delivery of a packet id.
func (l *campaignLedger) noteArrival(id uint64) {
	if l.arrived[id] {
		return
	}
	l.arrived[id] = true
	l.arrivedLog = append(l.arrivedLog, id)
	l.delivered++
}

func (l *campaignLedger) SaveState(e *checkpoint.Encoder) {
	e.I64(l.sent)
	e.I64(l.delivered)
	e.I64(l.sendFails)
	e.U32(uint32(len(l.born)))
	for _, r := range l.born {
		e.U64(r.id)
		e.I64(r.at)
	}
	e.U32(uint32(len(l.arrivedLog)))
	for _, id := range l.arrivedLog {
		e.U64(id)
	}
}

func (l *campaignLedger) RestoreState(d *checkpoint.Decoder) {
	l.sent = d.I64()
	l.delivered = d.I64()
	l.sendFails = d.I64()
	nb := d.Count(16)
	l.born = l.born[:0]
	for i := 0; i < nb; i++ {
		id := d.U64()
		at := d.I64()
		if d.Err() != nil {
			return
		}
		l.born = append(l.born, bornRec{id: id, at: at})
	}
	na := d.Count(8)
	l.arrivedLog = l.arrivedLog[:0]
	l.arrived = make(map[uint64]bool, na)
	for i := 0; i < na; i++ {
		id := d.U64()
		if d.Err() != nil {
			return
		}
		l.arrivedLog = append(l.arrivedLog, id)
		l.arrived[id] = true
	}
}

// chaosClient is a per-tile Bernoulli source feeding the shared campaign
// ledger. Its RNG rides on a counted source so a checkpoint records the
// stream position and restore replays it exactly.
type chaosClient struct {
	tile   int
	tiles  int
	cycles int64
	rate   float64
	mask   flit.VCMask
	src    *sim.CountedSource
	rng    *rand.Rand
	led    *campaignLedger
}

func (c *chaosClient) Tick(now int64, port *network.Port) {
	for _, d := range port.Deliveries() {
		c.led.noteArrival(d.PacketID)
	}
	if now >= c.cycles || c.rng.Float64() >= c.rate {
		return
	}
	dst := c.rng.Intn(c.tiles - 1)
	if dst >= c.tile {
		dst++
	}
	id, err := port.Send(dst, []byte{byte(now), byte(c.tile)}, c.mask, 0)
	if err != nil {
		c.led.sendFails++ // network cut at injection time
		return
	}
	c.led.sent++
	c.led.born = append(c.led.born, bornRec{id: id, at: now})
}

func (c *chaosClient) SaveState(e *checkpoint.Encoder) { e.U64(c.src.Draws()) }

func (c *chaosClient) RestoreState(d *checkpoint.Decoder) { c.src.Restore(d.U64()) }

// RunCampaign executes one seeded fault campaign: Bernoulli sources on
// every tile, faults injected per the spec and the stochastic model,
// watchdog detection, fault-aware rerouting, then a drain so every
// surviving packet settles. Outcomes are bit-for-bit reproducible for a
// fixed CampaignParams, including across checkpoint/resume.
func RunCampaign(p CampaignParams) (CampaignResult, error) {
	if p.Run.Watchdog <= 0 {
		return CampaignResult{}, fmt.Errorf("core: campaign requires Watchdog > 0 (got %d)", p.Run.Watchdog)
	}
	if p.Cycles <= 0 {
		return CampaignResult{}, fmt.Errorf("core: campaign requires Cycles > 0 (got %d)", p.Cycles)
	}
	events, err := fault.ParseEvents(p.Spec)
	if err != nil {
		return CampaignResult{}, err
	}

	// build assembles a complete campaign instance — network, injector,
	// ledger, clients — so a resume can reconstruct structure from the
	// configuration and then overlay the snapshot's dynamic state.
	var inj *fault.Injector
	var led *campaignLedger
	build := func() (*network.Network, error) {
		n, _, err := BuildNetwork(p.Run)
		if err != nil {
			return nil, err
		}
		fresh, err := fault.NewInjector(n, events, p.MTBF, p.Cycles, nil)
		if err != nil {
			return nil, err
		}
		if p.Run.Probe != nil {
			fresh.SetProbe(p.Run.Probe)
		}
		fresh.Attach()
		ledger := newCampaignLedger()
		topo := n.Topology()
		tiles := topo.NumTiles()
		mask := flit.VCMask(0xFF)
		if p.Run.NumVCs > 0 && p.Run.NumVCs < 8 {
			mask = flit.VCMask((1 << p.Run.NumVCs) - 1)
		}
		for tile := 0; tile < tiles; tile++ {
			src := sim.NewCountedSource(p.Run.Seed + int64(tile))
			n.AttachClient(tile, &chaosClient{
				tile: tile, tiles: tiles, cycles: p.Cycles, rate: p.Run.Rate,
				mask: mask, src: src, rng: rand.New(src), led: ledger,
			})
		}
		n.AddCheckpointExtra("faultinj", fresh)
		n.AddCheckpointExtra("ledger", ledger)
		if p.Run.OnNetwork != nil {
			if err := p.Run.OnNetwork(n); err != nil {
				return nil, err
			}
		}
		inj, led = fresh, ledger
		return n, nil
	}
	n, err := build()
	if err != nil {
		return CampaignResult{}, err
	}
	tiles := n.Topology().NumTiles()
	hash := configHash("campaign", p.Run, fmt.Sprintf("%s|%v|%d", p.Spec, p.MTBF, p.Cycles))
	n, err = runToHorizon(n, p.Run, p.Cycles, hash, build, nil)
	if err != nil {
		return CampaignResult{}, err
	}
	drain := p.Run.DrainBudget
	if drain <= 0 {
		drain = 50000
	}
	n.Drain(drain)
	countCycles(n.Kernel().Now())

	res := CampaignResult{Params: p}
	res.Sent = led.sent
	res.Delivered = led.delivered
	res.SendFails = led.sendFails
	res.Injected = len(inj.Log)
	res.Skipped = inj.Skipped
	res.Totals = n.FaultTotals()
	res.Detections = res.Totals.Detections

	// Detection latency: match each detection to the earliest logged
	// fault implicating that channel.
	for _, det := range res.Detections {
		lat := int64(-1)
		for _, ap := range inj.Log {
			if ap.Watched == det.LinkID {
				lat = det.DetectedAt - ap.At
				break // Log is in application order; earliest wins
			}
		}
		res.DetectionLatencies = append(res.DetectionLatencies, lat)
	}

	// Ledger sweep: packets born after the last detection engaged the
	// reroute must all have arrived.
	var engaged, postDelivered int64 = -1, 0
	for _, det := range res.Detections {
		if det.DetectedAt > engaged {
			engaged = det.DetectedAt
		}
	}
	if engaged >= 0 {
		for _, r := range led.born {
			if r.at <= engaged {
				continue
			}
			res.BornAfterEngage++
			if led.arrived[r.id] {
				postDelivered++
			} else {
				res.LostAfterEngage++
			}
		}
		if window := p.Cycles - engaged; window > 0 {
			res.PostFaultThroughput = float64(postDelivered) / float64(window) / float64(tiles)
		}
	}
	return res, nil
}

// meanLatency averages the matched (non-negative) detection latencies.
func meanLatency(lats []int64) float64 {
	var sum, n int64
	for _, l := range lats {
		if l >= 0 {
			sum += l
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// E20Chaos exercises the runtime fault subsystem end to end: seeded
// campaigns are reproducible, watchdogs localize kills and stalls, and
// fault-aware rerouting restores full connectivity after any single-link
// fault — the §2.5 fail-stop story carried from wires up to routes.
func E20Chaos(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E20",
		Title: "Chaos campaign: runtime faults, detection, rerouting",
		PaperClaim: "§2.5: faults are made fail-stop and routed around; the network " +
			"degrades gracefully rather than silently corrupting or deadlocking",
		Columns: []string{"scenario", "faults", "detected", "det lat", "delivered", "lost-post", "rerouted", "verdict"},
	}
	p := DefaultCampaignParams()
	if quick {
		p.Cycles = 2000
	}

	verdict := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "BROKEN"
	}

	// Scenario 1: seeded determinism — the acceptance criterion that two
	// identical campaigns agree on every count.
	det := p
	det.Run.Seed = 7
	det.Spec = "kill,link=9,at=300;stall,tile=6,port=W,at=800,until=1100"
	a, err := RunCampaign(det)
	if err != nil {
		return nil, err
	}
	b, err := RunCampaign(det)
	if err != nil {
		return nil, err
	}
	same := a.Sent == b.Sent && a.Delivered == b.Delivered &&
		a.Totals.Rerouted == b.Totals.Rerouted && len(a.Detections) == len(b.Detections)
	for i := range a.Detections {
		same = same && a.Detections[i] == b.Detections[i]
	}
	t.AddRow("seed-7 twice", fmt.Sprint(a.Injected), fmt.Sprint(len(a.Detections)),
		fmt.Sprintf("%.0f", meanLatency(a.DetectionLatencies)), fmt.Sprint(a.Delivered),
		fmt.Sprint(a.LostAfterEngage), fmt.Sprint(a.Totals.Rerouted), verdict(same))

	// Scenario 2: single-link kill sweep — no permanent loss after the
	// watchdog engages, for any link (quick mode samples every 8th).
	topo, err := topology.NewFoldedTorus(p.Run.K, p.Run.K)
	if err != nil {
		return nil, err
	}
	numLinks := len(topology.Links(topo))
	stride := 1
	if quick {
		stride = 8
	}
	var links []int
	for link := 0; link < numLinks; link += stride {
		links = append(links, link)
	}
	// One campaign per killed link, fanned across the worker pool; each
	// campaign owns its network, so results match the sequential sweep.
	results := make([]CampaignResult, len(links))
	err = sim.ForEach(len(links), Parallelism(), func(i int) error {
		kp := p
		kp.Run.Seed = 11 + int64(links[i])
		kp.Spec = fault.FormatEvents([]fault.Event{
			{Kind: fault.LinkKill, At: 200, Link: links[i], From: -1, Tile: -1, VC: -1},
		})
		r, err := RunCampaign(kp)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Aggregate in link order so the table is deterministic.
	var swept, sweptDet int
	var sweptLost, sweptRerouted int64
	var latSum float64
	for _, r := range results {
		swept++
		sweptDet += len(r.Detections)
		sweptLost += r.LostAfterEngage
		sweptRerouted += r.Totals.Rerouted
		latSum += meanLatency(r.DetectionLatencies)
	}
	t.AddRow(fmt.Sprintf("kill sweep (%d links)", swept), fmt.Sprint(swept), fmt.Sprint(sweptDet),
		fmt.Sprintf("%.0f", latSum/float64(swept)), "-", fmt.Sprint(sweptLost),
		fmt.Sprint(sweptRerouted), verdict(sweptDet == swept && sweptLost == 0))

	// Scenario 3: mixed scheduled campaign across all four fault models
	// (flips need the physical wire layer; ECC masks them).
	mix := p
	mix.Run.Seed = 3
	mix.Run.PhysWires = true
	mix.Run.ECC = true
	mix.Spec = "kill,link=20,at=300;flip,link=4,p=0.05,at=100,until=1500;" +
		"stall,tile=5,port=W,at=600,until=900;stuck,tile=1,port=N,vc=3,at=100"
	m, err := RunCampaign(mix)
	if err != nil {
		return nil, err
	}
	mixOK := m.Injected == 4 && len(m.Detections) >= 1 && m.LostAfterEngage == 0
	t.AddRow("mixed models", fmt.Sprint(m.Injected), fmt.Sprint(len(m.Detections)),
		fmt.Sprintf("%.0f", meanLatency(m.DetectionLatencies)), fmt.Sprint(m.Delivered),
		fmt.Sprint(m.LostAfterEngage), fmt.Sprint(m.Totals.Rerouted), verdict(mixOK))

	// Scenario 4: stochastic MTBF model — same seed, same campaign.
	st := p
	st.Run.Seed = 7
	st.MTBF = float64(p.Cycles) / 2 // expect ~2 faults over the run
	s1, err := RunCampaign(st)
	if err != nil {
		return nil, err
	}
	s2, err := RunCampaign(st)
	if err != nil {
		return nil, err
	}
	stOK := s1.Injected+s1.Skipped > 0 && s1.Injected == s2.Injected &&
		s1.Delivered == s2.Delivered && s1.Sent == s2.Sent
	t.AddRow(fmt.Sprintf("stochastic mtbf=%.0f", st.MTBF), fmt.Sprint(s1.Injected),
		fmt.Sprint(len(s1.Detections)), fmt.Sprintf("%.0f", meanLatency(s1.DetectionLatencies)),
		fmt.Sprint(s1.Delivered), fmt.Sprint(s1.LostAfterEngage), fmt.Sprint(s1.Totals.Rerouted),
		verdict(stOK))

	// Scenario 5: post-fault throughput — a single kill costs capacity,
	// not connectivity; throughput stays within 2x of the healthy run.
	healthy := p
	healthy.Run.Seed = 19
	h, err := RunCampaign(healthy)
	if err != nil {
		return nil, err
	}
	healthyTput := float64(h.Delivered) / float64(p.Cycles) / 16
	faulted := p
	faulted.Run.Seed = 19
	faulted.Spec = "kill,link=12,at=200"
	f, err := RunCampaign(faulted)
	if err != nil {
		return nil, err
	}
	tputOK := len(f.Detections) == 1 && f.PostFaultThroughput > 0.5*healthyTput
	t.AddRow("post-fault tput", "1", fmt.Sprint(len(f.Detections)),
		fmt.Sprintf("%.0f", meanLatency(f.DetectionLatencies)),
		fmt.Sprintf("%.4f/cyc/node", f.PostFaultThroughput),
		fmt.Sprint(f.LostAfterEngage), fmt.Sprint(f.Totals.Rerouted), verdict(tputOK))
	t.AddNote("healthy throughput %.4f packets/cycle/node at rate %.2f", healthyTput, p.Run.Rate)
	t.AddNote("det lat = mean cycles from fault injection to watchdog declaration (threshold %d)", p.Run.Watchdog)
	t.AddNote("lost-post = packets born after the last detection that never arrived (acceptance: 0)")
	return t, nil
}
