package core

import (
	"fmt"
	"path/filepath"

	"repro/internal/sim"
)

// This file is the warm-fork campaign engine. A measurement campaign
// that wants confidence intervals runs the same configuration several
// times with different measurement-traffic seeds — but every replica
// shares the identical deterministic warmup (same network, same warmup
// seed). Instead of paying warmup × replicas, RunReplicated runs the
// warmup once, snapshots the network in memory (no file, no CRC
// sidecar, no fsync), and forks each replica from the snapshot: Reset
// the arena network in place, restore the snapshot, reseed the
// generators onto the replica's stream, and run only the measurement
// window. Replica 0 keeps the warmup generators' streams, so its result
// is byte-identical to an uninterrupted Run of the same parameters.

// replicaSeed derives replica r's measurement-traffic seed from the
// run's base seed. Replica 0 is the base stream itself (continuing the
// warmup draws, exactly as an unforked run would).
func replicaSeed(seed int64, r int) int64 {
	if r == 0 {
		return seed
	}
	return seed ^ (int64(r) * 0x7F4A7C159E3779B9)
}

// RunReplicated executes one warmup and replicas measurement windows of
// the configuration, forking each replica from an in-memory snapshot
// taken at the end of warmup. Replica 0 reproduces Run(p) byte for
// byte; replicas 1..n-1 draw independent measurement traffic from
// replicaSeed streams. replicas <= 1 delegates to Run. Disk
// checkpointing fields are not supported (the engine is in-memory by
// design), and configurations network.Resettable refuses (deflection,
// physical wires, meters, probes, OnNetwork hooks) return an error.
func RunReplicated(p RunParams, replicas int) ([]RunResult, error) {
	if replicas <= 1 {
		res, err := Run(p)
		if err != nil {
			return nil, err
		}
		return []RunResult{res}, nil
	}
	if p.CheckpointEvery > 0 || p.CheckpointDir != "" || p.Resume {
		return nil, fmt.Errorf("core: RunReplicated is in-memory only; disk checkpointing fields must be unset")
	}
	if !arenaEligible(p) {
		return nil, fmt.Errorf("core: configuration cannot warm-fork (deflection, physical wires, meters, probes, and OnNetwork hooks tie the network to one run)")
	}
	stopAt := p.WarmupCycles + p.MeasureCycles
	n, _, release, err := acquireNetwork(p)
	if err != nil {
		return nil, err
	}
	defer release()
	gens, err := attachRunClients(n, p, stopAt)
	if err != nil {
		return nil, err
	}
	if err := n.Resettable(); err != nil {
		return nil, fmt.Errorf("core: configuration cannot warm-fork: %w", err)
	}
	hash := configHash("run", p, "")
	if p.WarmupCycles > 0 {
		n.Run(p.WarmupCycles)
		countCycles(p.WarmupCycles)
	}
	snap, err := n.Snapshot(hash)
	if err != nil {
		return nil, err
	}
	topo := n.Topology()
	drain := p.DrainBudget
	if drain <= 0 {
		drain = 50000
	}
	out := make([]RunResult, 0, replicas)
	for r := 0; r < replicas; r++ {
		if r > 0 {
			if err := n.Reset(p.Seed, p.WarmupCycles); err != nil {
				return nil, err
			}
			if gens, err = attachRunClients(n, p, stopAt); err != nil {
				return nil, err
			}
			if err := n.Fork(snap, hash); err != nil {
				return nil, err
			}
			seed := replicaSeed(p.Seed, r)
			for _, g := range gens {
				g.Reseed(seed)
			}
		}
		start := n.Kernel().Now()
		if remaining := stopAt - start; remaining > 0 {
			n.Run(remaining)
		}
		n.Drain(drain)
		countCycles(n.Kernel().Now() - start)
		res := collectResult(n, nil, p, topo)
		res.Params.Seed = replicaSeed(p.Seed, r)
		out = append(out, res)
	}
	return out, nil
}

// ReplicatedPoint is one rate of a replicated load–latency sweep.
type ReplicatedPoint struct {
	Rate     float64
	Replicas []RunResult
}

// Mean averages the replicas' headline figures into one RunResult
// (latency maxima take the max across replicas; packet counts sum).
func (pt ReplicatedPoint) Mean() RunResult {
	if len(pt.Replicas) == 0 {
		return RunResult{}
	}
	m := pt.Replicas[0]
	if len(pt.Replicas) == 1 {
		return m
	}
	k := float64(len(pt.Replicas))
	var acc, lat, net, um, ux float64
	var p50, p99, max, dropped, delivered int64
	for _, r := range pt.Replicas {
		acc += r.AcceptedFlits
		lat += r.AvgLatency
		net += r.AvgNetLat
		um += r.LinkUtilMean
		if r.LinkUtilMax > ux {
			ux = r.LinkUtilMax
		}
		p50 += r.P50Latency
		p99 += r.P99Latency
		if r.MaxLatency > max {
			max = r.MaxLatency
		}
		dropped += r.DroppedPackets
		delivered += r.DeliveredPackets
	}
	m.AcceptedFlits = acc / k
	m.AvgLatency = lat / k
	m.AvgNetLat = net / k
	m.LinkUtilMean = um / k
	m.LinkUtilMax = ux
	m.P50Latency = p50 / int64(len(pt.Replicas))
	m.P99Latency = p99 / int64(len(pt.Replicas))
	m.MaxLatency = max
	m.DroppedPackets = dropped
	m.DeliveredPackets = delivered
	return m
}

// SweepReplicated runs a replicated measurement at every rate. Points
// run concurrently on the SetParallelism worker pool, each on its own
// arena network; within a point the replicas fork serially from the
// shared warmup snapshot. With replicas <= 1 each point is a plain Run
// (and disk checkpointing, if configured, applies as in Sweep).
func SweepReplicated(base RunParams, rates []float64, replicas int) ([]ReplicatedPoint, error) {
	out := make([]ReplicatedPoint, len(rates))
	err := sim.ForEach(len(rates), Parallelism(), func(i int) error {
		p := base
		p.Rate = rates[i]
		if replicas <= 1 && p.CheckpointDir != "" {
			p.CheckpointDir = filepath.Join(base.CheckpointDir, fmt.Sprintf("point-%03d", i))
		}
		rs, err := RunReplicated(p, replicas)
		if err != nil {
			return err
		}
		out[i] = ReplicatedPoint{Rate: rates[i], Replicas: rs}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
