package core

import (
	"fmt"
	"math/rand"

	"repro/internal/area"
	"repro/internal/bus"
	"repro/internal/router"
	"repro/internal/sim"
)

// E4LoadLatency sweeps offered load on the mesh and the folded torus under
// uniform traffic: the §3.1 "larger effective bandwidth of the torus".
func E4LoadLatency(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Load-latency: mesh vs folded torus (§3.1)",
		PaperClaim: "the folded torus has twice the bisection bandwidth of the mesh; " +
			"its larger effective bandwidth outweighs its <15% power overhead",
		Columns: []string{"offered (flit/node/cyc)", "mesh lat (cyc)", "mesh accepted", "torus lat (cyc)", "torus accepted"},
	}
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if quick {
		rates = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	// Radix 8: uniform dimension-ordered traffic caps a k-ary 2-mesh at
	// 4/k flits/node/cycle and the torus at min(1, 8/k), so the paper's
	// bisection argument is visible (at the paper's k=4 both hit the
	// injection limit and the topologies tie).
	base := DefaultRunParams()
	base.K = 8
	base.FlitsPerPacket = 4
	if quick {
		base.WarmupCycles, base.MeasureCycles = 500, 1200
	}
	meshParams, torusParams := base, base
	meshParams.Topology = "mesh"
	torusParams.Topology = "torus"
	mesh, err := Sweep(meshParams, rates)
	if err != nil {
		return nil, err
	}
	torus, err := Sweep(torusParams, rates)
	if err != nil {
		return nil, err
	}
	for i := range rates {
		m, to := mesh[i].Result, torus[i].Result
		t.AddRow(f2(rates[i]),
			f1(m.AvgLatency), f3(m.AcceptedFlits),
			f1(to.AvgLatency), f3(to.AcceptedFlits))
	}
	satM, satT := SaturationRate(mesh), SaturationRate(torus)
	t.AddNote("8x8 networks, uniform traffic, 4-flit packets")
	t.AddNote("saturation throughput: mesh %.2f vs torus %.2f flit/node/cyc (ratio %.2fx; paper's bisection argument predicts ~2x, capped by the 1 flit/cycle injection port)",
		satM, satT, satT/satM)
	t.AddNote("theory: uniform DOR caps the mesh at 4/k = 0.50 and the torus at min(1, 8/k) = 1.00 flits/node/cycle at k=8")
	return t, nil
}

// E5FlowControl reproduces the §3.2 trade-off: buffer budget vs
// performance across virtual-channel, dropping, and misrouting flow
// control.
func E5FlowControl(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Flow control vs buffer budget (§3.2)",
		PaperClaim: "dropping or misrouting on contention needs very little buffering " +
			"but reduces performance and increases wire loading (wasted power)",
		Columns: []string{"flow control", "buffer bits/edge", "area overhead", "avg lat (cyc)", "delivered/offered", "wire J per delivered flit"},
	}
	type variant struct {
		name     string
		mut      func(*RunParams)
		vcs, buf int
	}
	variants := []variant{
		{"VC credit, 8VCx4", func(p *RunParams) { p.NumVCs, p.BufFlits = 8, 4 }, 8, 4},
		{"VC credit, 8VCx1", func(p *RunParams) { p.NumVCs, p.BufFlits = 8, 1 }, 8, 1},
		{"VC credit, 2VCx1", func(p *RunParams) { p.NumVCs, p.BufFlits = 2, 1 }, 2, 1},
		{"elastic links, 8VCx1 (§3.3/[4])", func(p *RunParams) { p.NumVCs, p.BufFlits = 8, 1; p.ElasticLinks = true }, 8, 1},
		{"drop on contention, 1VCx1", func(p *RunParams) { p.NumVCs, p.BufFlits = 1, 1; p.Mode = router.ModeDrop }, 1, 1},
		{"misroute (deflect), 1-flit regs", func(p *RunParams) { p.Deflect = true }, 1, 1},
	}
	const rate = 0.35
	// Each variant is an independent network; fan them across the pool and
	// emit rows in declaration order.
	results := make([]RunResult, len(variants))
	err := sim.ForEach(len(variants), Parallelism(), func(i int) error {
		p := DefaultRunParams()
		p.Topology = "mesh" // elastic links need acyclic channels; keep all variants comparable
		p.Rate = rate
		p.FlitsPerPacket = 1 // single-flit packets for apples-to-apples
		p.Metered = true
		if quick {
			p.WarmupCycles, p.MeasureCycles = 500, 1500
		}
		variants[i].mut(&p)
		res, err := Run(p)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		res := results[i]
		ap := area.Paper().WithBuffers(v.vcs, v.buf)
		var wirePerFlit float64
		if res.DeliveredPackets > 0 {
			wirePerFlit = res.WireEnergyJ / float64(res.DeliveredPackets)
		}
		t.AddRow(v.name,
			fmt.Sprint(ap.BufferBitsPerEdge()),
			pct(ap.OverheadFraction()),
			f1(res.AvgLatency),
			f3(res.AcceptedFlits/rate),
			fmt.Sprintf("%.3g", wirePerFlit))
	}
	t.AddNote("offered load %.2f flit/node/cyc, uniform single-flit packets on the 4x4 mesh", rate)
	t.AddNote("dropped/deflected flits still burn wire energy, raising J per *delivered* flit — the §3.2 power cost")
	t.AddNote("elastic links (§3.3, ref [4]) buffer flits in the repeaters and close the flow-control loop at the wire, keeping 1-flit router buffers at full speed")
	return t, nil
}

// E12Bus compares the network against the shared-bus "degenerate network"
// of §1 under the same offered traffic.
func E12Bus(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Network vs shared bus (§1, §4)",
		PaperClaim: "networks are preferable to buses: higher bandwidth and multiple " +
			"concurrent communications",
		Columns: []string{"offered (pkt/node/cyc)", "bus accepted", "bus lat (cyc)", "net accepted", "net lat (cyc)"},
	}
	rates := []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4}
	if quick {
		rates = []float64{0.02, 0.1, 0.4}
	}
	const clients = 16
	warm, meas := int64(1000), int64(4000)
	if quick {
		warm, meas = 500, 1500
	}
	for _, rate := range rates {
		// Bus: 256-bit single-beat transactions, same Bernoulli process.
		b, err := bus.New(bus.Config{Clients: clients, WidthBits: 256, ArbCycles: 1})
		if err != nil {
			return nil, err
		}
		delivered := int64(0)
		b.Deliver = func(txn *bus.Txn, now int64) {
			if now >= warm && now <= warm+meas {
				delivered++
			}
		}
		rng := rand.New(rand.NewSource(7))
		for cycle := int64(0); cycle < warm+meas; cycle++ {
			for src := 0; src < clients; src++ {
				if rng.Float64() < rate {
					dst := rng.Intn(clients - 1)
					if dst >= src {
						dst++
					}
					_ = b.Offer(src, dst, 256)
				}
			}
			b.Step()
		}
		busAccepted := float64(delivered) / float64(meas) / clients

		p := DefaultRunParams()
		p.Rate = rate // single-flit packets: flits/node/cyc == pkts/node/cyc
		p.FlitsPerPacket = 1
		p.WarmupCycles, p.MeasureCycles = warm, meas
		res, err := Run(p)
		if err != nil {
			return nil, err
		}
		t.AddRow(f3(rate),
			f3(busAccepted), f1(b.Latency.Mean()),
			f3(res.AcceptedFlits), f1(res.AvgLatency))
	}
	t.AddNote("bus ceiling: one 256b transaction per 2 cycles shared by 16 clients = 0.031 pkt/node/cyc; the torus sustains an order of magnitude more")
	return t, nil
}
