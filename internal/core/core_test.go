package core

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(true)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			out := tbl.Format()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s format missing id:\n%s", e.ID, out)
			}
			if md := tbl.Markdown(); !strings.Contains(md, "|") {
				t.Fatalf("%s markdown malformed", e.ID)
			}
			if strings.Contains(out, "FAIL") || strings.Contains(out, "UNEXPECTED") {
				t.Fatalf("%s reports failure:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("E3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunLowLoadLatencyNearZeroLoad(t *testing.T) {
	p := DefaultRunParams()
	p.Rate = 0.02
	p.MeasureCycles = 2000
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-load: 2H+2 with H_avg = 32/15 for the 4x4 torus -> ~6.3 cycles;
	// at 2% load queueing adds little.
	if res.AvgLatency < 6 || res.AvgLatency > 10 {
		t.Fatalf("low-load latency = %v, want ≈6.3", res.AvgLatency)
	}
	if res.AcceptedFlits < 0.015 || res.AcceptedFlits > 0.025 {
		t.Fatalf("accepted = %v, want ≈0.02", res.AcceptedFlits)
	}
	if res.DroppedPackets != 0 {
		t.Fatalf("drops at low load: %d", res.DroppedPackets)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := DefaultRunParams()
	p.Rate = 0.3
	p.MeasureCycles = 1000
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatency != b.AvgLatency || a.DeliveredPackets != b.DeliveredPackets {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a, b)
	}
}

func TestTorusOutperformsMeshAtSaturation(t *testing.T) {
	// The E4 headline, asserted numerically: the folded torus saturates at
	// a meaningfully higher accepted throughput than the mesh.
	rates := []float64{0.3, 0.5, 0.7, 0.9}
	base := DefaultRunParams()
	base.K = 8 // the bisection gap is injection-masked at the paper's k=4
	base.WarmupCycles, base.MeasureCycles = 500, 1500
	base.FlitsPerPacket = 2
	meshP, torusP := base, base
	meshP.Topology = "mesh"
	mesh, err := Sweep(meshP, rates)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := Sweep(torusP, rates)
	if err != nil {
		t.Fatal(err)
	}
	satM, satT := SaturationRate(mesh), SaturationRate(torus)
	if satT <= satM*1.3 {
		t.Fatalf("torus saturation %v not clearly above mesh %v", satT, satM)
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	rates := []float64{0.1, 0.4, 0.8}
	base := DefaultRunParams()
	base.WarmupCycles, base.MeasureCycles = 500, 1500
	pts, err := Sweep(base, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Result.AvgLatency < pts[i-1].Result.AvgLatency {
			t.Fatalf("latency fell with load: %v", pts)
		}
	}
}

func TestBuildTopologyValidation(t *testing.T) {
	if _, err := BuildTopology("hypercube", 4); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestSaturationRateLogic(t *testing.T) {
	mk := func(rate, accepted float64) SweepPoint {
		return SweepPoint{Rate: rate, Result: RunResult{AcceptedFlits: accepted}}
	}
	pts := []SweepPoint{mk(0.2, 0.2), mk(0.4, 0.39), mk(0.6, 0.45), mk(0.8, 0.46)}
	sat := SaturationRate(pts)
	if sat < 0.4 || sat > 0.5 {
		t.Fatalf("saturation = %v, want ≈0.45", sat)
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tbl := &Table{ID: "EX", Title: "t", Columns: []string{"a", "long-column"}}
	tbl.AddRow("1")
	tbl.AddRow("22", "333", "extra-dropped")
	out := tbl.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header line, columns, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestE3OverheadUnder15Percent(t *testing.T) {
	tbl, err := E3Power(true)
	if err != nil {
		t.Fatal(err)
	}
	// The exact-expectation row's overhead must be < 15%.
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "exact expectation") {
			v := strings.TrimSuffix(row[3], "%")
			ov, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatal(err)
			}
			if ov <= 0 || ov >= 15 {
				t.Fatalf("exact torus overhead %v%%, want (0, 15)", ov)
			}
			return
		}
	}
	t.Fatal("exact row missing")
}

func TestE8ZeroJitterRows(t *testing.T) {
	tbl, err := E8Reservation(true)
	if err != nil {
		t.Fatal(err)
	}
	var sawDynamicJitter bool
	for _, row := range tbl.Rows {
		if row[1] == "reserved" && row[4] != "0" {
			t.Fatalf("reserved stream jitter %s at load %s", row[4], row[0])
		}
		if row[1] == "dynamic" && row[0] != "0.0%" && row[4] != "0" {
			sawDynamicJitter = true
		}
	}
	if !sawDynamicJitter {
		t.Fatal("dynamic stream never jittered under load; contrast lost")
	}
}

func TestRunAdaptiveAndCutThroughModes(t *testing.T) {
	base := DefaultRunParams()
	base.Topology = "mesh"
	base.Rate = 0.2
	base.FlitsPerPacket = 2
	base.WarmupCycles, base.MeasureCycles = 300, 1000

	adaptive := base
	adaptive.Adaptive = true
	res, err := Run(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredPackets == 0 || res.AcceptedFlits < 0.15 {
		t.Fatalf("adaptive run delivered little: %+v", res)
	}

	vct := base
	vct.CutThrough = true
	res, err = Run(vct)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredPackets == 0 {
		t.Fatal("cut-through run delivered nothing")
	}

	// Adaptive on a torus is a configuration error surfaced through Run.
	bad := base
	bad.Topology = "torus"
	bad.Adaptive = true
	if _, err := Run(bad); err == nil {
		t.Fatal("adaptive torus accepted")
	}
}

func TestRunElasticMode(t *testing.T) {
	p := DefaultRunParams()
	p.Topology = "mesh"
	p.ElasticLinks = true
	p.BufFlits = 1
	p.Rate = 0.2
	p.WarmupCycles, p.MeasureCycles = 300, 1000
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedFlits < 0.15 {
		t.Fatalf("elastic 1-flit-buffer mesh accepted only %v", res.AcceptedFlits)
	}
}
