package core

import (
	"fmt"

	"repro/internal/circuits"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/router"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/wiring"
)

// attachBackground fills every tile not in excluded with a uniform
// Bernoulli generator at the given rate.
func attachBackground(n *network.Network, rate float64, stopAt int64, seed int64, mask flit.VCMask, excluded map[int]bool) {
	topo := n.Topology()
	for tile := 0; tile < topo.NumTiles(); tile++ {
		if excluded[tile] {
			continue
		}
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: topo.NumTiles()}, rate, 4, mask, seed)
		g.StopAt = stopAt
		n.AttachClient(tile, g)
	}
}

// E7LogicalWire measures the §2.2 logical-wire service end to end and
// compares it against a dedicated wire.
func E7LogicalWire(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Logical wires over the network (§2.2)",
		PaperClaim: "an 8-bit bundle is transported as single-flit packets; the latency " +
			"of transporting wire state this way can be made competitive with dedicated wires",
		Columns: []string{"background load", "updates", "latency p50/p99/max (cyc)", "latency @2GHz"},
	}
	const src, dst = 0, 10
	cycles := int64(6000)
	if quick {
		cycles = 2500
	}
	for _, bg := range []float64{0.0, 0.2, 0.4} {
		topo, err := topology.NewFoldedTorus(4, 4)
		if err != nil {
			return nil, err
		}
		rc := router.DefaultConfig(0)
		rc.PriorityVCs = flit.MaskFor(7) // wire updates ride a priority VC
		n, err := network.New(network.Config{Topo: topo, Router: rc, Seed: 3})
		if err != nil {
			return nil, err
		}
		sender := &protocol.WireSender{Bundle: protocol.WireBundle{ID: 1}, Dst: dst, Mask: flit.MaskFor(7), Class: 9}
		recv := protocol.NewWireReceiver()
		// Toggle the bundle every 50 cycles.
		n.AttachClient(src, network.ClientFunc(func(now int64, p *network.Port) {
			if now%50 == 0 && now < cycles-200 {
				sender.Set(byte(now/50), now)
			}
			sender.Tick(now, p)
		}))
		n.AttachClient(dst, recv)
		// Background avoids the priority pair (bits 3 and 7 map to the
		// same VC pair under dateline classes).
		attachBackground(n, bg, cycles-200, 11, flit.VCMask(0x77), map[int]bool{src: true, dst: true})
		n.Run(cycles)
		lat := recv.Latency
		t.AddRow(pct(bg), fmt.Sprint(lat.Count()),
			fmt.Sprintf("%d/%d/%d", lat.Median(), lat.P99(), lat.Max()),
			fmt.Sprintf("%.1f ns", float64(lat.Median())*0.5))
	}
	// Dedicated-wire reference over the same physical span.
	topo, _ := topology.NewFoldedTorus(4, 4)
	_, dist := topology.PathMetrics(topo, src, dst)
	span := dist * 3.0
	c := wiring.CompareLatency(circuits.Process100nm(), span, 3.0, 0.5, 0.05)
	t.AddNote("same span on a dedicated full-swing wire (%.0fmm): %.2f ns; pre-scheduled network path: %.2f ns",
		span, c.DedicatedNS, c.NetworkPreNS)
	t.AddNote("the priority VC keeps the p50 at the unloaded pipeline latency even under background load")
	return t, nil
}

// E8Reservation reproduces §2.6: a pre-scheduled CBR stream keeps zero
// jitter under dynamic load; the same stream without reservations does
// not.
func E8Reservation(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Pre-scheduled vs dynamic stream delivery (§2.6)",
		PaperClaim: "a pre-scheduled packet moves from link to link without arbitration " +
			"or delay using the reservations; dynamic traffic uses the remaining cycles",
		Columns: []string{"background load", "mode", "stream packets", "latency p50/max (cyc)", "jitter (cyc)"},
	}
	const src, dst, period = 0, 10, 8
	cycles := int64(6000)
	if quick {
		cycles = 2500
	}
	run := func(bg float64, reserved bool) (*network.Recorder, error) {
		topo, err := topology.NewFoldedTorus(4, 4)
		if err != nil {
			return nil, err
		}
		rc := router.DefaultConfig(0)
		rc.ReservedVC = 7
		rc.ResPeriod = period
		n, err := network.New(network.Config{Topo: topo, Router: rc, Seed: 5})
		if err != nil {
			return nil, err
		}
		const flow = 1
		if reserved {
			if _, err := n.ReserveFlow(src, dst, flow, 0); err != nil {
				return nil, err
			}
		}
		stream := &traffic.StreamSource{
			Tile: src, Dst: dst, Period: period, Flow: flow,
			Reserved: reserved, Mask: flit.VCMask(0x7F), Class: 5,
			StopAt: cycles - 300,
		}
		n.AttachClient(src, stream)
		n.AttachClient(dst, network.ClientFunc(func(now int64, p *network.Port) { p.Deliveries() }))
		attachBackground(n, bg, cycles-300, 13, flit.VCMask(0x7F), map[int]bool{src: true, dst: true})
		n.Run(cycles)
		return n.Recorder(), nil
	}
	for _, bg := range []float64{0.0, 0.3, 0.6} {
		for _, reserved := range []bool{true, false} {
			rec, err := run(bg, reserved)
			if err != nil {
				return nil, err
			}
			mode := "dynamic"
			lat := rec.ClassLatency(5) // the stream's service class
			if reserved {
				mode = "reserved"
				lat = rec.FlowLatency(1)
			}
			if lat == nil || lat.Count() == 0 {
				return nil, fmt.Errorf("core: E8 stream (%s @ %v) delivered nothing", mode, bg)
			}
			jitter := lat.Max() - lat.Quantile(0)
			t.AddRow(pct(bg), mode, fmt.Sprint(lat.Count()),
				fmt.Sprintf("%d/%d", lat.Median(), lat.Max()),
				fmt.Sprint(jitter))
		}
	}
	t.AddNote("reserved rows must show jitter 0 at every load; the dynamic stream's jitter grows with load")
	return t, nil
}

// E14Interface checks the §2.1 port semantics directly.
func E14Interface(quick bool) (*Table, error) {
	t := &Table{
		ID:         "E14",
		Title:      "Port interface semantics (§2.1)",
		PaperClaim: "log-size encoding 0..8; a flit may be head and tail; VC mask is a class of service; low-priority injection is interrupted and resumed",
		Columns:    []string{"check", "expected", "measured"},
	}
	// Size encoding.
	okSizes := true
	for code := flit.SizeCode(0); code <= flit.MaxSizeCode; code++ {
		if flit.SizeCode(code).Bits() != 1<<code {
			okSizes = false
		}
	}
	t.AddRow("size code 0..8 decodes 1..256 bits", "yes", fmt.Sprint(okSizes))

	// Head+tail single-flit packet and priority interruption, on a live
	// network.
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		return nil, err
	}
	rc := router.DefaultConfig(0)
	n, err := network.New(network.Config{Topo: topo, Router: rc, Seed: 9})
	if err != nil {
		return nil, err
	}
	var shortAt, longAt int64
	n.AttachClient(2, network.ClientFunc(func(now int64, p *network.Port) {
		for _, d := range p.Deliveries() {
			if d.Class == 9 {
				shortAt = now
			} else {
				longAt = now
			}
		}
	}))
	if _, err := n.Port(0).Send(2, make([]byte, 12*flit.DataBytes), flit.MaskFor(0), 0); err != nil {
		return nil, err
	}
	n.Run(4)
	if _, err := n.Port(0).Send(2, []byte("hi"), flit.MaskFor(1), 9); err != nil {
		return nil, err
	}
	n.Run(300)
	t.AddRow("single-flit (head+tail) packet delivered", "yes", fmt.Sprint(shortAt > 0))
	t.AddRow("high-priority overtakes 12-flit low-priority", "yes",
		fmt.Sprintf("%v (short @%d, long @%d)", shortAt < longAt, shortAt, longAt))

	// Size-field power gating: wire energy scales with the size field.
	small, err := meteredSingleFlit(2) // 16-bit payload
	if err != nil {
		return nil, err
	}
	large, err := meteredSingleFlit(32) // 256-bit payload
	if err != nil {
		return nil, err
	}
	t.AddRow("wire energy 256b vs 16b payload", "~4.9x (300/61 incl. overhead)",
		fmt.Sprintf("%.1fx", large/small))
	return t, nil
}

// meteredSingleFlit sends one single-flit packet with the given payload
// bytes across two hops and reports the wire energy.
func meteredSingleFlit(payloadBytes int) (float64, error) {
	p := DefaultRunParams()
	p.Metered = true
	n, meter, err := BuildNetwork(p)
	if err != nil {
		return 0, err
	}
	n.AttachClient(5, network.ClientFunc(func(now int64, p *network.Port) { p.Deliveries() }))
	if _, err := n.Port(0).Send(5, make([]byte, payloadBytes), flit.MaskFor(0), 0); err != nil {
		return 0, err
	}
	n.Drain(1000)
	return meter.WireEnergyJ, nil
}
