// Package router implements the virtual-channel router of Section 2.3 of
// the paper: five input controllers and five output controllers per tile
// (one per compass direction plus the tile port), per-VC input buffering and
// state, route-field stripping, virtual-channel allocation performed in
// parallel with switch arbitration, credit-based flow control, a single
// stage of output buffering per input-port connection, and cyclic
// reservation registers that let pre-scheduled traffic cross the router
// without arbitration (§2.6).
//
// Two research flow-control variants from §3.2 are included for the
// buffer/performance trade-off experiments: a dropping router (packets that
// lose arbitration are discarded, needing almost no buffering) and a
// misrouting (deflection) router in deflect.go.
package router

import "math/bits"

// rrArbiter is a round-robin arbiter over n requesters: the grant pointer
// advances past the last winner, so bandwidth is shared fairly among
// persistent requesters.
type rrArbiter struct {
	n    int
	next int
}

func newRRArbiter(n int) *rrArbiter { return &rrArbiter{n: n} }

// Grant picks the first requester at or after the pointer, advances the
// pointer past it, and returns its index; it returns -1 if no requests.
func (a *rrArbiter) Grant(req []bool) int {
	if len(req) != a.n {
		panic("router: arbiter width mismatch")
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if req[idx] {
			a.next = (idx + 1) % a.n
			return idx
		}
	}
	return -1
}

// GrantMask is Grant over a packed request word (bit i = requester i):
// the first set bit at or after the pointer wins, wrapping to the lowest
// set bit, with the same pointer update. Callers must not set bits >= n.
func (a *rrArbiter) GrantMask(req uint32) int {
	if req == 0 {
		return -1
	}
	idx := bits.TrailingZeros32(req >> uint(a.next) << uint(a.next))
	if idx == 32 {
		idx = bits.TrailingZeros32(req)
	}
	a.next = (idx + 1) % a.n
	return idx
}
