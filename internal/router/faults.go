package router

import (
	"math/bits"

	"repro/internal/flit"
	"repro/internal/route"
)

// AbortSeq is the sentinel sequence number of a synthetic abort tail: the
// flit a router emits down a packet's remaining path when the packet was
// cut mid-flight by a dead channel. The abort tail releases the per-hop
// virtual-channel allocations the cut packet holds (so the fault does not
// leak VCs into a deadlock) and tells the destination port to discard the
// partial packet instead of waiting forever.
const AbortSeq = 1 << 20

// SetPortStall freezes (or thaws) the input controller for direction d: a
// stalled controller neither routes nor arbitrates, so its buffered flits
// stop advancing and upstream credits starve — the signature a credit
// watchdog detects.
func (r *Router) SetPortStall(d route.Dir, on bool) {
	r.stalledIn[portIndex(d)] = on
}

// SetVCStuck wedges (or frees) one virtual channel of the input controller
// for direction d.
func (r *Router) SetVCStuck(d route.Dir, vc int, on bool) {
	pi := portIndex(d)
	if r.stuckVC[pi] == nil {
		if !on {
			return
		}
		r.stuckVC[pi] = make([]bool, r.cfg.NumVCs)
	}
	if vc >= 0 && vc < r.cfg.NumVCs {
		r.stuckVC[pi][vc] = on
		if on {
			r.inputs[pi].stuckMask |= 1 << uint(vc)
		} else {
			r.inputs[pi].stuckMask &^= 1 << uint(vc)
		}
	}
}

// vcIsStuck reports whether VC v of input port pi is wedged.
func (r *Router) vcIsStuck(pi, v int) bool {
	return r.stuckVC[pi] != nil && r.stuckVC[pi][v]
}

// KillOutput marks the output in direction d dead: staged and bypass flits
// bound for it are dropped, and no flit is ever granted the switch toward
// it again. Input VCs already routed toward the dead output are drained by
// FaultSweep. Called by the network when a watchdog declares the outgoing
// link dead; irreversible (fail-stop).
func (r *Router) KillOutput(d route.Dir) {
	po := portIndex(d)
	if r.deadOut[po] {
		return
	}
	r.deadOut[po] = true
	r.anyDead = true
	oc := &r.outputs[po]
	for i, f := range oc.staging {
		if f != nil {
			r.dropFaulted(f)
			oc.staging[i] = nil
			r.occ--
		}
	}
	oc.stagedMask = 0
	for _, f := range oc.bypass {
		r.dropFaulted(f)
		r.occ--
	}
	oc.bypass = nil
}

// OutputDead reports whether the output in direction d has been killed.
func (r *Router) OutputDead(d route.Dir) bool { return r.deadOut[portIndex(d)] }

// HasDeadOutput reports whether any output has been killed, so the network
// can skip FaultSweep on healthy routers.
func (r *Router) HasDeadOutput() bool { return r.anyDead }

// dropFaulted accounts one flit discarded because of a dead output and
// recycles it. The flit is dead after this call.
func (r *Router) dropFaulted(f *flit.Flit) {
	r.Stats.FaultDroppedFlits++
	if f.Type.IsTail() && f.Seq != AbortSeq {
		r.Stats.FaultDroppedPackets++
	}
	if r.pool != nil {
		r.pool.Put(f)
	}
}

// FaultSweep drains input VCs routed toward dead outputs: their buffered
// flits are discarded with credits returned upstream, exactly as if they
// had traversed the switch, so upstream routers do not wedge behind the
// fault. The VC frees once the packet's tail has been swept. Call once per
// cycle while the router has dead outputs.
func (r *Router) FaultSweep(now int64) {
	if !r.anyDead {
		return
	}
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		for vi := range ic.vcs {
			st := &ic.vcs[vi]
			if !st.routed || !r.deadOut[portIndex(st.outPort)] {
				continue
			}
			for st.bufLen() > 0 {
				f := ic.pop(vi)
				r.occ--
				r.creditUpstream(pi, f.VC)
				isTail := f.Type.IsTail()
				r.dropFaulted(f)
				if isTail {
					ic.setRouted(vi, false)
					st.outVC = -1
					break
				}
			}
		}
	}
}

// AbandonInput terminates the packets cut mid-flight on the input for
// direction d, after the incoming link has been fenced off (no further
// flit will arrive). Every VC whose in-progress packet is missing its tail
// gets a synthetic abort tail appended, which drains down the packet's
// remaining path releasing VC allocations, and tells the destination to
// discard the partial packet. Called by the network when a watchdog
// declares the incoming link dead.
func (r *Router) AbandonInput(d route.Dir, now int64) {
	ic := &r.inputs[portIndex(d)]
	for vi := range ic.vcs {
		st := &ic.vcs[vi]
		var cut bool
		var id uint64
		var src, dst int
		if st.bufLen() > 0 {
			if last := st.back(); !last.Type.IsTail() {
				cut = true
				id, src, dst = last.PacketID, last.Src, last.Dst
			}
		} else if st.routed {
			cut = true
			id, src, dst = st.pktID, st.pktSrc, st.pktDst
		}
		if !cut {
			continue
		}
		r.Stats.AbortedPackets++
		var abort *flit.Flit
		if r.pool != nil {
			abort = r.pool.Get()
		} else {
			abort = &flit.Flit{}
		}
		abort.Type = flit.Tail
		abort.VC = vi
		abort.PacketID = id
		abort.Seq = AbortSeq
		abort.Src = src
		abort.Dst = dst
		ic.push(vi, abort)
		r.occ++
	}
}

// HasDemand reports whether any flit in the router wants the output in
// direction d (staged, bypassed, or buffered in a VC routed toward it).
// The credit watchdog counts starvation cycles only while demand exists,
// so an idle link never trips it.
func (r *Router) HasDemand(d route.Dir) bool {
	oc := &r.outputs[portIndex(d)]
	if oc.stagedMask != 0 {
		return true
	}
	if len(oc.bypass) > 0 {
		return true
	}
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		for m := ic.occMask & ic.routedMask; m != 0; m &= m - 1 {
			if ic.vcs[bits.TrailingZeros32(m)].outPort == d {
				return true
			}
		}
	}
	return false
}
