package router

import (
	"strings"
	"testing"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/route"
)

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(0)
	bad.NumVCs = 0
	if _, err := New(bad); err == nil {
		t.Error("zero VCs accepted")
	}
	bad = DefaultConfig(0)
	bad.NumVCs = 99
	if _, err := New(bad); err == nil {
		t.Error("too many VCs accepted")
	}
	bad = DefaultConfig(0)
	bad.BufFlits = 0
	if _, err := New(bad); err == nil {
		t.Error("zero buffers accepted")
	}
	bad = DefaultConfig(0)
	bad.ReservedVC = 8
	if _, err := New(bad); err == nil {
		t.Error("reserved VC out of range accepted")
	}
}

func TestFiveControllerStructure(t *testing.T) {
	// Figures 2-3: five input controllers, five output controllers; per-VC
	// buffers and state in each input controller; one staging buffer per
	// input in each output controller.
	r, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.inputs) != NumPorts || len(r.outputs) != NumPorts {
		t.Fatalf("controllers: %d in, %d out", len(r.inputs), len(r.outputs))
	}
	for _, ic := range r.inputs {
		if len(ic.vcs) != flit.NumVCs {
			t.Fatalf("input %v has %d VCs", ic.dir, len(ic.vcs))
		}
	}
	for _, oc := range r.outputs {
		if len(oc.staging) != NumPorts {
			t.Fatalf("output %v staging size %d", oc.dir, len(oc.staging))
		}
		if len(oc.credits) != flit.NumVCs || len(oc.vcOwner) != flit.NumVCs {
			t.Fatalf("output %v credit/vc state sized %d/%d", oc.dir, len(oc.credits), len(oc.vcOwner))
		}
	}
	if r.ID() != 3 {
		t.Fatalf("id = %d", r.ID())
	}
}

func TestRRArbiterFairness(t *testing.T) {
	a := newRRArbiter(4)
	req := []bool{true, true, true, true}
	wins := make([]int, 4)
	for i := 0; i < 400; i++ {
		wins[a.Grant(req)]++
	}
	for i, w := range wins {
		if w != 100 {
			t.Fatalf("requester %d won %d of 400", i, w)
		}
	}
	if a.Grant([]bool{false, false, false, false}) != -1 {
		t.Fatal("grant with no requests")
	}
}

func TestRRArbiterSkipsIdle(t *testing.T) {
	a := newRRArbiter(3)
	if got := a.Grant([]bool{false, true, false}); got != 1 {
		t.Fatalf("grant = %d", got)
	}
	if got := a.Grant([]bool{true, false, true}); got != 2 {
		t.Fatalf("grant after pointer advance = %d (pointer should be past 1)", got)
	}
}

func TestResTable(t *testing.T) {
	tb := NewResTable(8)
	if tb.Period() != 8 || tb.Reserved() {
		t.Fatal("fresh table state wrong")
	}
	if err := tb.Reserve(3, 7); err != nil {
		t.Fatal(err)
	}
	if err := tb.Reserve(11, 7); err != nil { // same slot (11 mod 8), same flow
		t.Fatal(err)
	}
	if err := tb.Reserve(3, 9); err == nil {
		t.Fatal("conflicting reservation accepted")
	}
	if err := tb.Reserve(0, 0); err == nil {
		t.Fatal("flow id 0 accepted")
	}
	if tb.FlowAt(3) != 7 || tb.FlowAt(11) != 7 || tb.FlowAt(4) != 0 {
		t.Fatal("FlowAt wrong")
	}
	if tb.Utilization() != 1.0/8.0 {
		t.Fatalf("utilization = %v", tb.Utilization())
	}
	if !tb.Reserved() {
		t.Fatal("Reserved() false after booking")
	}
}

func TestRouteComputeTurns(t *testing.T) {
	// A head flit arriving on the west input (heading east) with code
	// Left must select the north output; Extract selects Local.
	r, _ := New(DefaultConfig(0))
	mk := func(code route.Code) *flit.Flit {
		var w route.Word
		w, _ = w.Push(code)
		w, _ = w.Push(route.Extract)
		return &flit.Flit{Type: flit.Head, VC: 0, Mask: flit.MaskFor(0), Route: w, PacketID: 1}
	}
	cases := []struct {
		code route.Code
		want route.Dir
	}{
		{route.Straight, route.East},
		{route.Left, route.North},
		{route.Right, route.South},
		{route.Extract, route.Local},
	}
	for _, c := range cases {
		f := mk(c.code)
		r.AcceptFlit(f, route.West)
		r.RouteCompute(0)
		st := &r.inputs[portIndex(route.West)].vcs[0]
		if !st.routed || st.outPort != c.want {
			t.Fatalf("code %v: routed to %v, want %v", c.code, st.outPort, c.want)
		}
		// Clear for next case.
		st.buf, st.head = nil, 0
		st.routed = false
		r.rebuildMasks()
	}
	// From the local (injection) port the code is an absolute direction.
	f := mk(route.Right) // absolute south
	r.AcceptFlit(f, route.Local)
	r.RouteCompute(0)
	st := r.inputs[portIndex(route.Local)].vcs[0]
	if st.outPort != route.South {
		t.Fatalf("injected code Right routed to %v, want S", st.outPort)
	}
}

func TestCreditAccounting(t *testing.T) {
	r, _ := New(DefaultConfig(0))
	out := link.New(link.Config{Name: "out"})
	r.SetOutLink(route.East, out, 4)
	if got := r.CreditCount(route.East, 0); got != 4 {
		t.Fatalf("initial credits = %d", got)
	}
	// Inject a 3-flit packet heading east.
	var w route.Word
	w, _ = w.Push(route.Left) // absolute east from local port
	w, _ = w.Push(route.Extract)
	flits := []*flit.Flit{
		{Type: flit.Head, VC: 0, Mask: flit.MaskFor(0), Route: w, PacketID: 5},
		{Type: flit.Body, VC: 0, Mask: flit.MaskFor(0), PacketID: 5, Seq: 1},
		{Type: flit.Tail, VC: 0, Mask: flit.MaskFor(0), PacketID: 5, Seq: 2},
	}
	now := int64(0)
	for _, f := range flits {
		r.AcceptFlit(f, route.Local)
	}
	for cycle := 0; cycle < 10; cycle++ {
		out.Deliver()
		r.RouteCompute(now)
		r.LinkArbitrate(now)
		r.SwitchArbitrate(now)
		now++
	}
	// All three flits crossed the switch: 3 credits consumed downstream.
	if got := r.CreditCount(route.East, 0); got != 1 {
		t.Fatalf("credits after 3-flit packet = %d, want 1", got)
	}
	// Downstream returns credits.
	r.HandleCredits(route.East, []int{0, 0, 0})
	if got := r.CreditCount(route.East, 0); got != 4 {
		t.Fatalf("credits after return = %d, want 4", got)
	}
	if r.Stats.SwitchMoves != 3 {
		t.Fatalf("switch moves = %d", r.Stats.SwitchMoves)
	}
}

func TestCreditBackpressureStopsFlow(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.BufFlits = 2
	r, _ := New(cfg)
	out := link.New(link.Config{Name: "out"})
	r.SetOutLink(route.East, out, 2) // downstream has 2 slots
	var w route.Word
	w, _ = w.Push(route.Left)
	w, _ = w.Push(route.Extract)
	now := int64(0)
	sent := 0
	// Never deliver (downstream never drains, no credits return): after 2
	// flits cross, the rest must stall in the input buffer.
	for cycle := 0; cycle < 20; cycle++ {
		if r.CanInject(0) {
			f := &flit.Flit{Type: flit.Head, VC: 0, Mask: flit.MaskFor(0), Route: w, PacketID: uint64(100 + sent)}
			f.Type = flit.HeadTail
			r.AcceptFlit(f, route.Local)
			sent++
		}
		out.Deliver() // drain the wire but return no credits
		r.RouteCompute(now)
		r.LinkArbitrate(now)
		r.SwitchArbitrate(now)
		now++
	}
	if got := r.CreditCount(route.East, 0); got != 0 {
		t.Fatalf("credits = %d, want 0 (exhausted)", got)
	}
	// Exactly 2 flits crossed the switch on VC 0; others blocked. (They
	// can still use other VCs of the mask — the mask here is only VC 0.)
	if r.Stats.SwitchMoves != 2 {
		t.Fatalf("switch moves = %d, want 2", r.Stats.SwitchMoves)
	}
}

func TestVCAllocationExclusive(t *testing.T) {
	// Two packets from different inputs to the same output with a
	// single-VC mask: the second head cannot allocate until the first
	// packet's tail departs.
	cfg := DefaultConfig(0)
	r, _ := New(cfg)
	out := link.New(link.Config{Name: "out"})
	r.SetOutLink(route.East, out, 4)

	var wWest route.Word // arriving from west heading east: straight
	wWest, _ = wWest.Push(route.Straight)
	wWest, _ = wWest.Push(route.Extract)
	var wNorth route.Word // arriving from north heading south: left = east
	wNorth, _ = wNorth.Push(route.Left)
	wNorth, _ = wNorth.Push(route.Extract)

	a := []*flit.Flit{
		{Type: flit.Head, VC: 2, Mask: flit.MaskFor(2), Route: wWest, PacketID: 1},
		{Type: flit.Tail, VC: 2, Mask: flit.MaskFor(2), PacketID: 1, Seq: 1},
	}
	b := []*flit.Flit{
		{Type: flit.Head, VC: 2, Mask: flit.MaskFor(2), Route: wNorth, PacketID: 2},
		{Type: flit.Tail, VC: 2, Mask: flit.MaskFor(2), PacketID: 2, Seq: 1},
	}
	r.AcceptFlit(a[0], route.West)
	r.AcceptFlit(b[0], route.North)
	now := int64(0)
	step := func() {
		out.Deliver()
		r.RouteCompute(now)
		r.LinkArbitrate(now)
		r.SwitchArbitrate(now)
		now++
	}
	step()
	// Exactly one of the two heads may hold VC 2.
	oc := r.outputs[portIndex(route.East)]
	owners := 0
	if oc.vcOwner[2] != 0 {
		owners++
	}
	if owners != 1 {
		t.Fatalf("VC owners after first cycle = %d", owners)
	}
	winner := oc.vcOwner[2] - 1 // packet id
	// Feed tails and run to completion.
	r.AcceptFlit(a[1], route.West)
	r.AcceptFlit(b[1], route.North)
	for i := 0; i < 12; i++ {
		step()
	}
	if oc.vcOwner[2] != 0 {
		t.Fatalf("VC 2 not released (owner %d)", oc.vcOwner[2])
	}
	if r.Stats.SwitchMoves != 4 {
		t.Fatalf("switch moves = %d, want 4", r.Stats.SwitchMoves)
	}
	_ = winner
}

func TestAcceptOverflowPanics(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.BufFlits = 1
	r, _ := New(cfg)
	f1 := &flit.Flit{Type: flit.HeadTail, VC: 0, Mask: flit.MaskFor(0)}
	f2 := &flit.Flit{Type: flit.HeadTail, VC: 0, Mask: flit.MaskFor(0)}
	r.AcceptFlit(f1, route.West)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic (credit violation undetected)")
		}
	}()
	r.AcceptFlit(f2, route.West)
}

func TestNonSpeculativeAddsACycle(t *testing.T) {
	run := func(nonspec bool) int64 {
		cfg := DefaultConfig(0)
		cfg.NonSpeculative = nonspec
		r, _ := New(cfg)
		out := link.New(link.Config{Name: "out"})
		r.SetOutLink(route.East, out, 4)
		var w route.Word
		w, _ = w.Push(route.Straight)
		w, _ = w.Push(route.Extract)
		f := &flit.Flit{Type: flit.HeadTail, VC: 0, Mask: flit.MaskFor(0), Route: w, PacketID: 1}
		r.AcceptFlit(f, route.West)
		now := int64(0)
		for cycle := int64(0); cycle < 10; cycle++ {
			got, _ := out.Deliver()
			if got != nil {
				return cycle
			}
			r.RouteCompute(now)
			r.LinkArbitrate(now)
			r.SwitchArbitrate(now)
			now++
		}
		return -1
	}
	spec, nonspec := run(false), run(true)
	if spec < 0 || nonspec < 0 {
		t.Fatalf("flit lost: %d %d", spec, nonspec)
	}
	if nonspec != spec+1 {
		t.Fatalf("non-speculative latency %d, speculative %d, want +1 (§2.3 parallel VA/SA)", nonspec, spec)
	}
}

func TestDeflectOldestFirst(t *testing.T) {
	// Two packets contending for the same output: the older one wins, the
	// younger deflects.
	routeFunc := func(tile, dst int) route.Dir {
		if dst == tile {
			return route.Local
		}
		return route.East
	}
	r := NewDeflect(0, routeFunc, nil)
	east := link.New(link.Config{Name: "e"})
	north := link.New(link.Config{Name: "n"})
	r.SetOutLink(route.East, east)
	r.SetOutLink(route.North, north)
	old := &flit.Flit{Type: flit.HeadTail, Dst: 9, Birth: 1, PacketID: 1}
	young := &flit.Flit{Type: flit.HeadTail, Dst: 9, Birth: 5, PacketID: 2}
	r.AcceptFlit(young, route.South)
	r.AcceptFlit(old, route.West)
	r.Arbitrate(0)
	if r.Stats.Deflections != 1 {
		t.Fatalf("deflections = %d, want 1", r.Stats.Deflections)
	}
	got, _ := east.Deliver()
	if got == nil || got.PacketID != 1 {
		t.Fatalf("east carried %v, want packet 1 (oldest)", got)
	}
	got, _ = north.Deliver()
	if got == nil || got.PacketID != 2 {
		t.Fatalf("north carried %v, want deflected packet 2", got)
	}
}

func TestDeflectEjectsAtDestination(t *testing.T) {
	routeFunc := func(tile, dst int) route.Dir {
		if dst == tile {
			return route.Local
		}
		return route.East
	}
	r := NewDeflect(7, routeFunc, nil)
	f := &flit.Flit{Type: flit.HeadTail, Dst: 7, PacketID: 3}
	r.AcceptFlit(f, route.West)
	r.Arbitrate(0)
	out := r.Eject()
	if len(out) != 1 || out[0].PacketID != 3 {
		t.Fatalf("eject = %v", out)
	}
	if r.Occupancy() != 0 {
		t.Fatalf("occupancy = %d", r.Occupancy())
	}
}

func TestDeflectLocalWaitsWhenFull(t *testing.T) {
	// With no output links attached, an injected packet must wait (no
	// panic), and CanInject stays false.
	r := NewDeflect(0, func(tile, dst int) route.Dir { return route.East }, nil)
	f := &flit.Flit{Type: flit.HeadTail, Dst: 1, PacketID: 1}
	if !r.CanInject() {
		t.Fatal("fresh deflect router not injectable")
	}
	r.AcceptFlit(f, route.Local)
	r.Arbitrate(0)
	if r.CanInject() {
		t.Fatal("stranded local packet vanished")
	}
}

func TestDeflectRejectsMultiFlit(t *testing.T) {
	r := NewDeflect(0, func(int, int) route.Dir { return route.East }, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("multi-flit flit accepted by deflection router")
		}
	}()
	r.AcceptFlit(&flit.Flit{Type: flit.Head}, route.West)
}

func TestCutThroughHeadWaitsForFullBuffer(t *testing.T) {
	// Virtual cut-through: a 3-flit packet's head may not advance with
	// only 2 downstream credits, even though wormhole would move it.
	cfg := DefaultConfig(0)
	cfg.CutThrough = true
	r, _ := New(cfg)
	out := link.New(link.Config{Name: "out"})
	r.SetOutLink(route.East, out, 4)
	// Burn 2 credits so only 2 remain.
	r.outputs[portIndex(route.East)].credits[0] = 2
	var w route.Word
	w, _ = w.Push(route.Straight)
	w, _ = w.Push(route.Extract)
	head := &flit.Flit{Type: flit.Head, VC: 0, Mask: flit.MaskFor(0), Route: w, PacketID: 1, TotalFlits: 3}
	r.AcceptFlit(head, route.West)
	now := int64(0)
	step := func() {
		out.Deliver()
		r.RouteCompute(now)
		r.LinkArbitrate(now)
		r.SwitchArbitrate(now)
		now++
	}
	for i := 0; i < 5; i++ {
		step()
	}
	if r.Stats.SwitchMoves != 0 {
		t.Fatalf("cut-through head advanced with insufficient credits (moves=%d)", r.Stats.SwitchMoves)
	}
	// Restore credits; now it goes.
	r.HandleCredits(route.East, []int{0})
	for i := 0; i < 5; i++ {
		step()
	}
	if r.Stats.SwitchMoves != 1 {
		t.Fatalf("head did not advance after credits returned (moves=%d)", r.Stats.SwitchMoves)
	}
}

func TestDescribeStructure(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.ReservedVC = 7
	cfg.DatelineVCs = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Describe()
	for _, want := range []string{
		"router 7", "5 input controllers", "5 output controllers",
		"8 virtual channels x 4-flit", "reservation table",
		"VC 7 reserved", "dateline VC classes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
}
