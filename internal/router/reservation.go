package router

import "fmt"

// ResTable is the cyclic reservation register of one output port (§2.6).
// Slot (cycle mod Period) may be reserved for one pre-scheduled flow; a
// reserved slot carries that flow's flit through the link bypass without
// arbitration. Unreserved slots (and, when WorkConserving is set, reserved
// slots with no waiting reserved flit) are arbitrated among dynamic
// traffic.
type ResTable struct {
	period int
	flows  []int // flow id per slot; 0 = unreserved
	anyRes bool  // cached Reserved(), for the link-arbitration fast path
	// WorkConserving lets dynamic traffic claim an unclaimed reserved
	// slot. The paper's strict reading leaves such slots idle ("dynamic
	// traffic arbitrates for the cycles on each link that are not
	// pre-reserved"); work conservation is the ablation.
	WorkConserving bool
}

// NewResTable returns a table with the given period in cycles.
func NewResTable(period int) *ResTable {
	if period < 1 {
		period = 1
	}
	return &ResTable{period: period, flows: make([]int, period)}
}

// Period reports the table length.
func (t *ResTable) Period() int { return t.period }

// Reserve books slot (phase mod period) for a flow (flow ids are positive).
// It fails if the slot is already taken by a different flow.
func (t *ResTable) Reserve(phase int, flow int) error {
	if flow <= 0 {
		return fmt.Errorf("router: flow id must be positive, got %d", flow)
	}
	s := ((phase % t.period) + t.period) % t.period
	if t.flows[s] != 0 && t.flows[s] != flow {
		return fmt.Errorf("router: slot %d already reserved for flow %d", s, t.flows[s])
	}
	t.flows[s] = flow
	t.anyRes = true
	return nil
}

// Reset releases every reservation, keeping the period and the
// work-conservation policy. Flow schedules are per-run state: a pooled
// router starts its next run with an empty table and the new run's
// ReserveFlow calls rebook it.
func (t *ResTable) Reset() {
	for i := range t.flows {
		t.flows[i] = 0
	}
	t.anyRes = false
}

// FlowAt reports the flow holding the slot for the given cycle (0 if none).
func (t *ResTable) FlowAt(now int64) int {
	return t.flows[int(((now%int64(t.period))+int64(t.period))%int64(t.period))]
}

// Reserved reports whether any slot is reserved.
func (t *ResTable) Reserved() bool {
	for _, f := range t.flows {
		if f != 0 {
			return true
		}
	}
	return false
}

// Utilization reports the fraction of slots reserved.
func (t *ResTable) Utilization() float64 {
	n := 0
	for _, f := range t.flows {
		if f != 0 {
			n++
		}
	}
	return float64(n) / float64(t.period)
}
