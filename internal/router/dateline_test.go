package router

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/route"
)

func datelineRouter(t *testing.T) *Router {
	t.Helper()
	cfg := DefaultConfig(0)
	cfg.DatelineVCs = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDatelineRequiresEvenVCs(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.DatelineVCs = true
	cfg.NumVCs = 7
	if _, err := New(cfg); err == nil {
		t.Fatal("odd VC count accepted with dateline classes")
	}
}

func TestDownstreamClass(t *testing.T) {
	r := datelineRouter(t)
	east := &r.outputs[portIndex(route.East)]
	north := &r.outputs[portIndex(route.North)]
	f := &flit.Flit{}

	// Fresh packet continuing straight: low class.
	if r.downstreamClass(route.West, east, f) {
		t.Error("unwrapped straight-through packet classed high")
	}
	// Crossing a dateline link: high class.
	east.dateline = true
	if !r.downstreamClass(route.West, east, f) {
		t.Error("dateline crossing not classed high")
	}
	east.dateline = false
	// Wrapped packet continuing in the same dimension: high.
	f.Wrapped = true
	if !r.downstreamClass(route.West, east, f) {
		t.Error("wrapped same-dimension packet not classed high")
	}
	// Wrapped packet turning into the other dimension: class resets.
	if r.downstreamClass(route.West, north, f) {
		t.Error("turn did not reset the dateline class")
	}
	// Injection is always a fresh dimension.
	if r.downstreamClass(route.Local, east, f) {
		t.Error("injected packet classed high")
	}
	// Without dateline VCs the class is always low.
	plain, _ := New(DefaultConfig(0))
	pe := &plain.outputs[portIndex(route.East)]
	pe.dateline = true
	if plain.downstreamClass(route.West, pe, f) {
		t.Error("dateline class active without DatelineVCs")
	}
}

func TestChooseVCClasses(t *testing.T) {
	r := datelineRouter(t)
	oc := &r.outputs[portIndex(route.East)]
	for v := range oc.credits {
		oc.credits[v] = 4
	}
	r.rebuildMasks()
	// Mask bit 0 grants the pair {0, 4}: low class gets 0, high class 4.
	if got := r.chooseVC(oc, flit.MaskFor(0), false); got != 0 {
		t.Fatalf("low-class VC = %d, want 0", got)
	}
	if got := r.chooseVC(oc, flit.MaskFor(0), true); got != 4 {
		t.Fatalf("high-class VC = %d, want 4", got)
	}
	// A mask bit in the upper half also grants the pair.
	if got := r.chooseVC(oc, flit.MaskFor(5), false); got != 1 {
		t.Fatalf("bit-5 low-class VC = %d, want 1", got)
	}
	// Busy low VC of the pair: no low-class choice remains for this mask.
	oc.vcOwner[0] = 99
	r.rebuildMasks()
	if got := r.chooseVC(oc, flit.MaskFor(0), false); got != -1 {
		t.Fatalf("busy pair granted VC %d", got)
	}
	// High class is unaffected.
	if got := r.chooseVC(oc, flit.MaskFor(0), true); got != 4 {
		t.Fatalf("high-class VC after low busy = %d", got)
	}
}

func TestReservedPairExclusion(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.DatelineVCs = true
	cfg.ReservedVC = 7 // pair 3 = VCs {3, 7}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oc := &r.outputs[portIndex(route.East)]
	for v := range oc.credits {
		oc.credits[v] = 4
	}
	r.rebuildMasks()
	// A mask granting only the reserved pair yields nothing for dynamic
	// traffic in either class.
	if got := r.chooseVC(oc, flit.MaskFor(3)|flit.MaskFor(7), false); got != -1 {
		t.Fatalf("reserved pair granted low VC %d", got)
	}
	if got := r.chooseVC(oc, flit.MaskFor(3)|flit.MaskFor(7), true); got != -1 {
		t.Fatalf("reserved pair granted high VC %d", got)
	}
	if !r.reservedPair(3) || !r.reservedPair(7) || r.reservedPair(2) {
		t.Fatal("reservedPair membership wrong")
	}
}

func TestIsPriorityPairs(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.DatelineVCs = true
	cfg.PriorityVCs = flit.MaskFor(7) // pair 3
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.isPriority(7) || !r.isPriority(3) {
		t.Fatal("priority pair not recognized in both classes")
	}
	if r.isPriority(0) || r.isPriority(4) {
		t.Fatal("non-priority VC classed priority")
	}
	// Without dateline classes, only the literal bit counts.
	cfg2 := DefaultConfig(0)
	cfg2.PriorityVCs = flit.MaskFor(7)
	r2, _ := New(cfg2)
	if r2.isPriority(3) {
		t.Fatal("pair semantics leaked into plain mode")
	}
	if !r2.isPriority(7) {
		t.Fatal("literal priority bit ignored")
	}
}

func TestWrappedBitMaintenance(t *testing.T) {
	// A flit crossing a dateline link gets Wrapped set; turning into the
	// other dimension clears it.
	r := datelineRouter(t)
	out := link.New(link.Config{Name: "e"})
	r.SetOutLink(route.East, out, 4)
	r.SetDateline(route.East, true)
	var w route.Word
	w, _ = w.Push(route.Straight) // from west input heading east
	w, _ = w.Push(route.Extract)
	f := &flit.Flit{Type: flit.HeadTail, VC: 0, Mask: flit.MaskFor(0), Route: w, PacketID: 1}
	r.AcceptFlit(f, route.West)
	now := int64(0)
	for i := 0; i < 4; i++ {
		got, _ := out.Deliver()
		if got != nil {
			if !got.Wrapped {
				t.Fatal("dateline crossing did not set Wrapped")
			}
			if got.VC < 4 {
				t.Fatalf("dateline flit allocated low-class VC %d", got.VC)
			}
			return
		}
		r.RouteCompute(now)
		r.LinkArbitrate(now)
		r.SwitchArbitrate(now)
		now++
	}
	t.Fatal("flit never crossed the link")
}

func TestCanAccept(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.BufFlits = 1
	r, _ := New(cfg)
	if !r.CanAccept(route.West, 0) {
		t.Fatal("empty buffer rejects")
	}
	r.AcceptFlit(&flit.Flit{Type: flit.HeadTail, VC: 0, Mask: flit.MaskFor(0)}, route.West)
	if r.CanAccept(route.West, 0) {
		t.Fatal("full buffer accepts")
	}
	if r.CanAccept(route.West, 99) || r.CanAccept(route.West, -1) {
		t.Fatal("invalid VC accepted")
	}
}
