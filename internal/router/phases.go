package router

import (
	"fmt"
	"math/bits"

	"repro/internal/flit"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// SwitchArbitrate performs virtual-channel allocation and switch
// arbitration for one cycle. Per §2.3 the two happen in parallel
// (speculatively): a head flit that wins switch arbitration is forwarded in
// the same cycle its downstream VC and buffer space are checked.
// Pre-scheduled flits on the reserved VC move first, through the bypass,
// without arbitrating (§2.6).
func (r *Router) SwitchArbitrate(now int64) {
	if r.cfg.ReservedVC >= 0 {
		r.moveReserved(now)
	}
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		if r.stalledIn[pi] {
			continue
		}
		// Only occupied, routed, unwedged, non-reserved VCs can request
		// the switch; the packed word prunes the whole port in one test.
		cand := ic.occMask & ic.routedMask &^ ic.stuckMask &^ r.inReservedMask
		if cand == 0 {
			continue
		}
		var req uint32
		for m := cand; m != 0; m &= m - 1 {
			v := bits.TrailingZeros32(m)
			if r.eligible(pi, &ic.vcs[v], now) {
				req |= 1 << uint(v)
			}
		}
		// Class-of-service: when any priority-VC flit is eligible, the
		// arbitration is restricted to priority VCs (§2.1: the VC mask
		// "identifies a class of service").
		if p := req & r.prioMask; p != 0 {
			req = p
		}
		win := ic.arb.GrantMask(req)
		if r.probe != nil {
			r.noteArbitration(pi, ic, req, win, now)
		}
		if win < 0 {
			continue
		}
		r.moveFlit(pi, win, now)
	}
}

// noteArbitration classifies, for telemetry, why each waiting flit of input
// port pi did not move this cycle: it lost the switch grant (or was masked
// out by a priority class), its output's staging buffer was occupied, or it
// lacked a downstream VC/credit. Only runs with a probe attached, so the
// disabled path pays nothing.
func (r *Router) noteArbitration(pi int, ic *inputController, req uint32, win int, now int64) {
	for v := range ic.vcs {
		st := &ic.vcs[v]
		if v == r.cfg.ReservedVC || r.vcIsStuck(pi, v) || st.bufLen() == 0 || !st.routed {
			continue
		}
		if req&(1<<uint(v)) != 0 {
			if v != win {
				r.probe.ArbLosses++
			}
			continue
		}
		if r.eligible(pi, st, now) {
			// Eligible but masked out of the request vector by a
			// priority class: an arbitration loss to higher traffic.
			r.probe.ArbLosses++
			continue
		}
		f := st.front()
		if r.deadOut[portIndex(st.outPort)] {
			continue // drained by FaultSweep, not a flow-control stall
		}
		if r.cfg.NonSpeculative && f.Type.IsHead() && st.routedAt == now {
			continue // the deliberate non-speculative pipeline bubble
		}
		if r.outputs[portIndex(st.outPort)].staging[pi] != nil {
			r.probe.StageStalls++
		} else {
			r.probe.CreditStalls++
		}
	}
}

// moveReserved advances reserved-VC flits into their output bypasses.
func (r *Router) moveReserved(now int64) {
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		if r.stalledIn[pi] || r.vcIsStuck(pi, r.cfg.ReservedVC) {
			continue
		}
		st := &ic.vcs[r.cfg.ReservedVC]
		if st.bufLen() == 0 || !st.routed {
			continue
		}
		f := ic.pop(r.cfg.ReservedVC)
		st.lastDeq = now
		oc := &r.outputs[portIndex(st.outPort)]
		inVC := f.VC
		if f.Type.IsTail() {
			ic.setRouted(r.cfg.ReservedVC, false)
		}
		if r.deadOut[portIndex(st.outPort)] {
			r.creditUpstream(pi, inVC)
			r.occ--
			r.dropFaulted(f)
			continue
		}
		oc.bypass = append(oc.bypass, f)
		r.outWorkMask |= 1 << uint(portIndex(st.outPort))
		r.creditUpstream(pi, inVC)
		r.Stats.BypassMoves++
		if r.probe != nil {
			r.probe.BypassMoves++
		}
		if r.cfg.Meter != nil {
			r.cfg.Meter.AddHop()
		}
	}
}

// eligible reports whether the flit at the front of st can traverse the
// switch this cycle. Callers must have established that the VC is
// occupied and routed (both SwitchArbitrate and noteArbitration test the
// packed occ/routed masks first), so it does not reload that state.
func (r *Router) eligible(pi int, st *vcState, now int64) bool {
	// st.frontHead mirrors front().Type.IsHead(), so this path only
	// dereferences the flit itself for heads (which need VC allocation);
	// a body flit's eligibility reads nothing beyond the vcState and the
	// output controller's packed state.
	if r.cfg.NonSpeculative && st.frontHead && st.routedAt == now {
		// Without speculation, VC allocation happens the cycle after
		// route computation; the head only competes for the switch then.
		return false
	}
	if r.deadOut[portIndex(st.outPort)] {
		// The output died; FaultSweep will drain this VC.
		return false
	}
	oc := &r.outputs[portIndex(st.outPort)]
	if oc.stagedMask&(1<<uint(pi)) != 0 {
		return false
	}
	if oc.dir == route.Local || r.cfg.Mode == ModeDrop {
		return true
	}
	if st.frontHead {
		f := st.front()
		return r.chooseVCFor(oc, f, r.downstreamClass(route.Dir(pi), oc, f)) >= 0
	}
	return st.outVC >= 0 && (r.cfg.ElasticLinks || oc.creditMask&(1<<uint(st.outVC)) != 0)
}

// chooseVCFor applies the per-packet credit requirement: one flit under
// wormhole flow control, the whole packet under virtual cut-through.
func (r *Router) chooseVCFor(oc *outputController, f *flit.Flit, high bool) int {
	need := 1
	if r.cfg.CutThrough && f.TotalFlits > 1 {
		need = f.TotalFlits
	}
	return r.chooseVCNeed(oc, f.Mask, high, need)
}

// dimOf reports the dimension of a direction: 0 for east/west, 1 for
// north/south, -1 for the local port.
func dimOf(d route.Dir) int {
	switch d {
	case route.East, route.West:
		return 0
	case route.North, route.South:
		return 1
	}
	return -1
}

// downstreamClass reports whether the flit occupies a high-class
// (post-dateline) buffer after leaving through oc: true when the output is
// itself a dateline link, or the packet already wrapped in this dimension
// and continues straight. Entering from the tile or turning into a new
// dimension resets the class.
func (r *Router) downstreamClass(from route.Dir, oc *outputController, f *flit.Flit) bool {
	if !r.cfg.DatelineVCs {
		return false
	}
	if oc.dateline {
		return true
	}
	return f.Wrapped && dimOf(from) == dimOf(oc.dir)
}

// vcPairs reports the number of VC pairs under dateline classes (or the
// plain VC count without them).
func (r *Router) vcPairs() int {
	if r.cfg.DatelineVCs {
		return r.cfg.NumVCs / 2
	}
	return r.cfg.NumVCs
}

// pairPermitted reports whether the mask grants the VC pair p: either
// class's bit selects the pair, so legacy single-bit masks stay routable
// across datelines.
func (r *Router) pairPermitted(mask flit.VCMask, p int) bool {
	if !r.cfg.DatelineVCs {
		return mask.Has(p)
	}
	return mask.Has(p) || mask.Has(p+r.vcPairs())
}

// isPriority reports whether VC v is a class-of-service priority channel;
// under dateline classes the priority mask addresses VC pairs.
func (r *Router) isPriority(v int) bool {
	if r.cfg.PriorityVCs == 0 {
		return false
	}
	if r.cfg.PriorityVCs.Has(v) {
		return true
	}
	if r.cfg.DatelineVCs {
		p := v % r.vcPairs()
		return r.cfg.PriorityVCs.Has(p) || r.cfg.PriorityVCs.Has(p+r.vcPairs())
	}
	return false
}

// reservedPair reports whether VC v belongs to the reserved pre-scheduled
// pair.
func (r *Router) reservedPair(v int) bool {
	if r.cfg.ReservedVC < 0 {
		return false
	}
	pairs := r.vcPairs()
	return v%pairs == r.cfg.ReservedVC%pairs
}

// chooseVC picks a free, credited downstream VC from the packet's mask in
// the required dateline class (lowest index first, deterministically).
// VCs of the reserved pair are never given to dynamic traffic.
func (r *Router) chooseVC(oc *outputController, mask flit.VCMask, high bool) int {
	return r.chooseVCNeed(oc, mask, high, 1)
}

// chooseVCNeed is chooseVC with an explicit credit requirement (virtual
// cut-through asks for the whole packet's worth). The candidate set —
// permitted by the packet's VC mask, in the required dateline class, not
// of the reserved pair, unowned, and credited — is computed as one packed
// word; the lowest set bit preserves the deterministic lowest-index-first
// choice of the unpacked scan.
func (r *Router) chooseVCNeed(oc *outputController, mask flit.VCMask, high bool, need int) int {
	pairs := r.vcPairs()
	pm := uint32(mask) & r.pairSelMask
	if r.cfg.DatelineVCs {
		pm = (uint32(mask) | uint32(mask)>>uint(pairs)) & r.pairSelMask
	}
	if high {
		pm <<= uint(pairs)
	}
	cand := pm &^ r.reservedPairMask &^ oc.ownerMask
	if !r.cfg.ElasticLinks {
		cand &= oc.creditMask
	}
	if cand == 0 {
		return -1
	}
	if need <= 1 || r.cfg.ElasticLinks {
		return bits.TrailingZeros32(cand)
	}
	for m := cand; m != 0; m &= m - 1 {
		v := bits.TrailingZeros32(m)
		if int(oc.credits[v]) >= need {
			return v
		}
	}
	return -1
}

// moveFlit commits a switch traversal: the flit leaves its input buffer,
// acquires its downstream VC and a credit if needed, and lands in the
// output's staging buffer for its input port.
func (r *Router) moveFlit(pi, vi int, now int64) {
	ic := &r.inputs[pi]
	st := &ic.vcs[vi]
	f := ic.pop(vi)
	st.lastDeq = now
	oc := &r.outputs[portIndex(st.outPort)]
	inVC := f.VC
	if r.cfg.Mode == ModeVC && oc.dir != route.Local {
		if f.Type.IsHead() {
			v := r.chooseVCFor(oc, f, r.downstreamClass(route.Dir(pi), oc, f))
			if v < 0 {
				panic(fmt.Sprintf("router %d: head %v won arbitration without a VC", r.cfg.ID, f))
			}
			oc.vcOwner[v] = f.PacketID + 1
			oc.ownerMask |= 1 << uint(v)
			st.outVC = v
		}
		f.VC = st.outVC
		if !r.cfg.ElasticLinks {
			oc.takeCredit(f.VC)
		}
	}
	if r.cfg.DatelineVCs {
		// Maintain the dateline bit: turning into a new dimension resets
		// it, crossing a dateline link sets it. Every flit of the packet
		// takes the same path, so the bit stays consistent per flit.
		if dimOf(route.Dir(pi)) != dimOf(oc.dir) {
			f.Wrapped = false
		}
		if oc.dateline {
			f.Wrapped = true
		}
	}
	if f.Type.IsTail() {
		ic.setRouted(vi, false)
		st.outVC = -1
	}
	oc.staging[pi] = f
	oc.stagedMask |= 1 << uint(pi)
	r.outWorkMask |= 1 << uint(portIndex(oc.dir))
	r.creditUpstream(pi, inVC)
	r.Stats.SwitchMoves++
	if r.probe != nil {
		r.probe.SwitchMoves++
		if f.Type.IsHead() {
			r.probe.Trace(telemetry.EvXbar, now, f.PacketID, int32(r.cfg.ID), int32(f.VC))
		}
	}
	if r.cfg.Meter != nil {
		r.cfg.Meter.AddHop()
	}
}

// creditUpstream returns a freed input-buffer slot to the upstream router.
// §2.3: "credits for buffer allocation are piggybacked on flits travelling
// in the reverse direction." Injection-port slots need no credit channel:
// the client reads the ready signal combinationally (CanInject).
func (r *Router) creditUpstream(pi int, vc int) {
	if r.cfg.ElasticLinks || route.Dir(pi) == route.Local {
		return
	}
	if l := r.inLinks[pi]; l != nil {
		l.SendCredit(vc)
		r.creditedMask |= 1 << uint(pi)
	}
}

// CanAccept reports whether the input controller for direction from has
// buffer space on VC vc — the receiver-side ready signal an elastic
// channel polls before releasing its head flit.
func (r *Router) CanAccept(from route.Dir, vc int) bool {
	if vc < 0 || vc >= r.cfg.NumVCs {
		return false
	}
	return r.inputs[portIndex(from)].vcs[vc].bufLen() < r.cfg.BufFlits
}

// SentOutputs returns and clears the packed set of output ports that sent
// a flit onto their link since the last call; the network uses it to wake
// idle links on its worklists. Bit i = port i.
func (r *Router) SentOutputs() uint32 {
	m := r.sentMask
	r.sentMask = 0
	return m
}

// CreditedInputs returns and clears the packed set of input ports whose
// upstream link was handed a credit since the last call. Bit i = port i.
func (r *Router) CreditedInputs() uint32 {
	m := r.creditedMask
	r.creditedMask = 0
	return m
}

// LinkArbitrate lets the flits staged at each output port compete for the
// outgoing link (§2.3: "the flits in these buffers arbitrate for the link
// to the input controller on the next tile"). Reserved slots of the cyclic
// reservation table carry their flow's flit from the bypass without
// arbitration; the tile output delivers one flit per cycle to the client.
func (r *Router) LinkArbitrate(now int64) {
	for wm := r.outWorkMask; wm != 0; wm &= wm - 1 {
		oi := bits.TrailingZeros32(wm)
		oc := &r.outputs[oi]
		if oc.dir == route.Local {
			r.ejectOne(oc)
			if oc.stagedMask == 0 && len(oc.bypass) == 0 {
				r.outWorkMask &^= 1 << uint(oi)
			}
			continue
		}
		// Idle output: drop it from the work mask. The table check below
		// must still run every cycle on reserved outputs so the ResMisses
		// telemetry sees unclaimed slots, so those bits stay set.
		if oc.stagedMask == 0 && len(oc.bypass) == 0 {
			if !oc.table.anyRes {
				r.outWorkMask &^= 1 << uint(oi)
				continue
			}
		}
		if oc.link == nil || (!oc.entryFree && !oc.link.CanSend()) {
			continue
		}
		// FlowAt costs two int64 modulos plus a table load; with no slot
		// ever reserved (anyRes false, the common case) it can only return
		// 0, so skip it outright.
		if oc.table.anyRes {
			if flow := oc.table.FlowAt(now); flow != 0 {
				if idx := findFlow(oc.bypass, flow); idx >= 0 {
					f := oc.bypass[idx]
					oc.bypass = append(oc.bypass[:idx], oc.bypass[idx+1:]...)
					if r.probe != nil {
						r.probe.ResHits++
					}
					r.mustSend(oc, f)
					continue
				}
				if r.probe != nil {
					r.probe.ResMisses++
				}
				if !oc.table.WorkConserving {
					continue // strict TDM: unclaimed reserved slot idles
				}
			}
		}
		if oc.stagedMask == 0 {
			continue
		}
		w := oc.arb.GrantMask(oc.stagedMask)
		f := oc.staging[w]
		oc.staging[w] = nil
		oc.stagedMask &^= 1 << uint(w)
		r.mustSend(oc, f)
	}
}

func (r *Router) mustSend(oc *outputController, f *flit.Flit) {
	if err := oc.link.Send(f); err != nil {
		panic(fmt.Sprintf("router %d: %v", r.cfg.ID, err))
	}
	r.occ--
	r.sentMask |= 1 << uint(portIndex(oc.dir))
	if r.cfg.Mode == ModeVC && f.Type.IsTail() && f.VC < len(oc.vcOwner) {
		oc.vcOwner[f.VC] = 0
		oc.ownerMask &^= 1 << uint(f.VC)
	}
}

// ejectOne delivers at most one flit per cycle through the tile output
// port, reserved traffic first.
func (r *Router) ejectOne(oc *outputController) {
	if len(oc.bypass) > 0 {
		f := oc.bypass[0]
		oc.bypass = oc.bypass[1:]
		r.ejectQ = append(r.ejectQ, f)
		r.Stats.Ejected++
		if r.probe != nil {
			r.probe.EjectedFlits++
		}
		return
	}
	if oc.stagedMask == 0 {
		return
	}
	w := oc.arb.GrantMask(oc.stagedMask)
	f := oc.staging[w]
	oc.staging[w] = nil
	oc.stagedMask &^= 1 << uint(w)
	r.ejectQ = append(r.ejectQ, f)
	r.Stats.Ejected++
	if r.probe != nil {
		r.probe.EjectedFlits++
	}
}

func findFlow(flits []*flit.Flit, flow int) int {
	for i, f := range flits {
		if f.Flow == flow {
			return i
		}
	}
	return -1
}

// HandleCredits restores credits returned by the downstream router on the
// output link in direction d.
func (r *Router) HandleCredits(d route.Dir, vcs []int) {
	oc := &r.outputs[portIndex(d)]
	for _, vc := range vcs {
		if vc < 0 || vc >= r.cfg.NumVCs {
			panic(fmt.Sprintf("router %d: credit for invalid VC %d", r.cfg.ID, vc))
		}
		oc.addCredit(vc)
	}
}

// HandleCredit restores a single downstream credit; the slice-free variant
// of HandleCredits for deferred cross-shard credit returns.
func (r *Router) HandleCredit(d route.Dir, vc int) {
	oc := &r.outputs[portIndex(d)]
	if vc < 0 || vc >= r.cfg.NumVCs {
		panic(fmt.Sprintf("router %d: credit for invalid VC %d", r.cfg.ID, vc))
	}
	oc.addCredit(vc)
}

// Eject returns the flits delivered to the tile this cycle. The returned
// slice is only valid until the next cycle: the router reuses its backing
// array. Callers must consume (or copy) the flits before then.
func (r *Router) Eject() []*flit.Flit {
	out := r.ejectQ
	r.ejectQ = r.ejectQ[:0]
	r.occ -= len(out)
	return out
}

// Occupancy reports the total number of flits buffered in the router
// (input buffers, staging, bypass, and the eject queue), for drain
// detection, the network's active-set skip, and tests. It is O(1): the
// count is maintained incrementally; OccupancyRecount walks the real
// structures so tests can check the bookkeeping.
func (r *Router) Occupancy() int { return r.occ }

// OccupancyRecount recomputes the occupancy from the buffer structures.
// It must always equal Occupancy(); the invariant test enforces that.
func (r *Router) OccupancyRecount() int {
	n := 0
	for pi := range r.inputs {
		for v := range r.inputs[pi].vcs {
			n += r.inputs[pi].vcs[v].bufLen()
		}
	}
	for oi := range r.outputs {
		oc := &r.outputs[oi]
		for _, f := range oc.staging {
			if f != nil {
				n++
			}
		}
		n += len(oc.bypass)
	}
	return n + len(r.ejectQ)
}

// rebuildMasks reconstitutes every packed mask mirror from the unpacked
// state it shadows, after a checkpoint restore or a structural fault edit.
func (r *Router) rebuildMasks() {
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		ic.occMask, ic.routedMask, ic.stuckMask = 0, 0, 0
		for v := range ic.vcs {
			if ic.vcs[v].bufLen() > 0 {
				ic.occMask |= 1 << uint(v)
				ic.vcs[v].frontHead = ic.vcs[v].front().Type.IsHead()
			}
			if ic.vcs[v].routed {
				ic.routedMask |= 1 << uint(v)
			}
		}
		if s := r.stuckVC[pi]; s != nil {
			for v, on := range s {
				if on {
					ic.stuckMask |= 1 << uint(v)
				}
			}
		}
	}
	r.outWorkMask = 0
	for oi := range r.outputs {
		oc := &r.outputs[oi]
		oc.stagedMask, oc.creditMask, oc.ownerMask = 0, 0, 0
		for i, f := range oc.staging {
			if f != nil {
				oc.stagedMask |= 1 << uint(i)
			}
		}
		if oc.stagedMask != 0 || len(oc.bypass) > 0 || (oc.table != nil && oc.table.anyRes) {
			r.outWorkMask |= 1 << uint(oi)
		}
		for v, c := range oc.credits {
			if c > 0 {
				oc.creditMask |= 1 << uint(v)
			}
		}
		for v, o := range oc.vcOwner {
			if o != 0 {
				oc.ownerMask |= 1 << uint(v)
			}
		}
	}
}

// CreditCount reports the credits currently held for direction d and VC
// vc, for invariant tests.
func (r *Router) CreditCount(d route.Dir, vc int) int {
	return int(r.outputs[portIndex(d)].credits[vc])
}

// checkMasks verifies every packed mask mirror against the unpacked state
// it shadows, for the property tests. It returns a description of the
// first mismatch, or "".
func (r *Router) checkMasks() string {
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		var occ, routed, stuck uint32
		for v := range ic.vcs {
			if ic.vcs[v].bufLen() > 0 {
				occ |= 1 << uint(v)
			}
			if ic.vcs[v].routed {
				routed |= 1 << uint(v)
			}
			if r.vcIsStuck(pi, v) {
				stuck |= 1 << uint(v)
			}
			if st := &ic.vcs[v]; st.bufLen() > 0 && st.frontHead != st.front().Type.IsHead() {
				return fmt.Sprintf("router %d input %d vc %d: frontHead %v, want %v", r.cfg.ID, pi, v, st.frontHead, st.front().Type.IsHead())
			}
		}
		if occ != ic.occMask {
			return fmt.Sprintf("router %d input %d: occMask %b, want %b", r.cfg.ID, pi, ic.occMask, occ)
		}
		if routed != ic.routedMask {
			return fmt.Sprintf("router %d input %d: routedMask %b, want %b", r.cfg.ID, pi, ic.routedMask, routed)
		}
		if stuck != ic.stuckMask {
			return fmt.Sprintf("router %d input %d: stuckMask %b, want %b", r.cfg.ID, pi, ic.stuckMask, stuck)
		}
	}
	for oi := range r.outputs {
		oc := &r.outputs[oi]
		var staged, credit, owner uint32
		for i, f := range oc.staging {
			if f != nil {
				staged |= 1 << uint(i)
			}
		}
		for v, c := range oc.credits {
			if c > 0 {
				credit |= 1 << uint(v)
			}
		}
		for v, o := range oc.vcOwner {
			if o != 0 {
				owner |= 1 << uint(v)
			}
		}
		if staged != oc.stagedMask {
			return fmt.Sprintf("router %d output %d: stagedMask %b, want %b", r.cfg.ID, oi, oc.stagedMask, staged)
		}
		if credit != oc.creditMask {
			return fmt.Sprintf("router %d output %d: creditMask %b, want %b", r.cfg.ID, oi, oc.creditMask, credit)
		}
		if owner != oc.ownerMask {
			return fmt.Sprintf("router %d output %d: ownerMask %b, want %b", r.cfg.ID, oi, oc.ownerMask, owner)
		}
		// outWorkMask may hold stale extra bits (LinkArbitrate retires
		// them lazily) but must cover every output with real work.
		work := staged != 0 || len(oc.bypass) > 0 || (oc.table != nil && oc.table.anyRes)
		if work && r.outWorkMask&(1<<uint(oi)) == 0 {
			return fmt.Sprintf("router %d output %d: work pending but missing from outWorkMask %b", r.cfg.ID, oi, r.outWorkMask)
		}
	}
	return ""
}
