package router

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// SwitchArbitrate performs virtual-channel allocation and switch
// arbitration for one cycle. Per §2.3 the two happen in parallel
// (speculatively): a head flit that wins switch arbitration is forwarded in
// the same cycle its downstream VC and buffer space are checked.
// Pre-scheduled flits on the reserved VC move first, through the bypass,
// without arbitrating (§2.6).
func (r *Router) SwitchArbitrate(now int64) {
	if r.cfg.ReservedVC >= 0 {
		r.moveReserved(now)
	}
	for pi, ic := range r.inputs {
		if r.stalledIn[pi] {
			continue
		}
		req := ic.req
		hasPrio := false
		for v, st := range ic.vcs {
			req[v] = false
			if v == r.cfg.ReservedVC || r.vcIsStuck(pi, v) {
				continue
			}
			if r.eligible(pi, st, now) {
				req[v] = true
				if r.isPriority(v) {
					hasPrio = true
				}
			}
		}
		// Class-of-service: when any priority-VC flit is eligible, the
		// arbitration is restricted to priority VCs (§2.1: the VC mask
		// "identifies a class of service").
		if hasPrio {
			for v := range req {
				if !r.isPriority(v) {
					req[v] = false
				}
			}
		}
		win := ic.arb.Grant(req)
		if r.probe != nil {
			r.noteArbitration(pi, ic, req, win, now)
		}
		if win < 0 {
			continue
		}
		r.moveFlit(pi, ic.vcs[win], now)
	}
}

// noteArbitration classifies, for telemetry, why each waiting flit of input
// port pi did not move this cycle: it lost the switch grant (or was masked
// out by a priority class), its output's staging buffer was occupied, or it
// lacked a downstream VC/credit. Only runs with a probe attached, so the
// disabled path pays nothing.
func (r *Router) noteArbitration(pi int, ic *inputController, req []bool, win int, now int64) {
	for v, st := range ic.vcs {
		if v == r.cfg.ReservedVC || r.vcIsStuck(pi, v) || st.bufLen() == 0 || !st.routed {
			continue
		}
		if req[v] {
			if v != win {
				r.probe.ArbLosses++
			}
			continue
		}
		if r.eligible(pi, st, now) {
			// Eligible but masked out of the request vector by a
			// priority class: an arbitration loss to higher traffic.
			r.probe.ArbLosses++
			continue
		}
		f := st.front()
		if r.deadOut[portIndex(st.outPort)] {
			continue // drained by FaultSweep, not a flow-control stall
		}
		if r.cfg.NonSpeculative && f.Type.IsHead() && st.routedAt == now {
			continue // the deliberate non-speculative pipeline bubble
		}
		if r.outputs[portIndex(st.outPort)].staging[pi] != nil {
			r.probe.StageStalls++
		} else {
			r.probe.CreditStalls++
		}
	}
}

// moveReserved advances reserved-VC flits into their output bypasses.
func (r *Router) moveReserved(now int64) {
	for pi, ic := range r.inputs {
		if r.stalledIn[pi] || r.vcIsStuck(pi, r.cfg.ReservedVC) {
			continue
		}
		st := ic.vcs[r.cfg.ReservedVC]
		if st.bufLen() == 0 || !st.routed {
			continue
		}
		f := st.popFront()
		st.lastDeq = now
		oc := r.outputs[portIndex(st.outPort)]
		inVC := f.VC
		if f.Type.IsTail() {
			st.routed = false
		}
		if r.deadOut[portIndex(st.outPort)] {
			r.creditUpstream(pi, inVC)
			r.occ--
			r.dropFaulted(f)
			continue
		}
		oc.bypass = append(oc.bypass, f)
		r.creditUpstream(pi, inVC)
		r.Stats.BypassMoves++
		if r.probe != nil {
			r.probe.BypassMoves++
		}
		if r.cfg.Meter != nil {
			r.cfg.Meter.AddHop()
		}
	}
}

// eligible reports whether the flit at the front of st can traverse the
// switch this cycle.
func (r *Router) eligible(pi int, st *vcState, now int64) bool {
	if st.bufLen() == 0 || !st.routed {
		return false
	}
	f := st.front()
	if r.cfg.NonSpeculative && f.Type.IsHead() && st.routedAt == now {
		// Without speculation, VC allocation happens the cycle after
		// route computation; the head only competes for the switch then.
		return false
	}
	if r.deadOut[portIndex(st.outPort)] {
		// The output died; FaultSweep will drain this VC.
		return false
	}
	oc := r.outputs[portIndex(st.outPort)]
	if oc.staging[pi] != nil {
		return false
	}
	if oc.dir == route.Local || r.cfg.Mode == ModeDrop {
		return true
	}
	if f.Type.IsHead() {
		return r.chooseVCFor(oc, f, r.downstreamClass(route.Dir(pi), oc, f)) >= 0
	}
	return st.outVC >= 0 && (r.cfg.ElasticLinks || oc.credits[st.outVC] > 0)
}

// chooseVCFor applies the per-packet credit requirement: one flit under
// wormhole flow control, the whole packet under virtual cut-through.
func (r *Router) chooseVCFor(oc *outputController, f *flit.Flit, high bool) int {
	need := 1
	if r.cfg.CutThrough && f.TotalFlits > 1 {
		need = f.TotalFlits
	}
	return r.chooseVCNeed(oc, f.Mask, high, need)
}

// dimOf reports the dimension of a direction: 0 for east/west, 1 for
// north/south, -1 for the local port.
func dimOf(d route.Dir) int {
	switch d {
	case route.East, route.West:
		return 0
	case route.North, route.South:
		return 1
	}
	return -1
}

// downstreamClass reports whether the flit occupies a high-class
// (post-dateline) buffer after leaving through oc: true when the output is
// itself a dateline link, or the packet already wrapped in this dimension
// and continues straight. Entering from the tile or turning into a new
// dimension resets the class.
func (r *Router) downstreamClass(from route.Dir, oc *outputController, f *flit.Flit) bool {
	if !r.cfg.DatelineVCs {
		return false
	}
	if oc.dateline {
		return true
	}
	return f.Wrapped && dimOf(from) == dimOf(oc.dir)
}

// vcPairs reports the number of VC pairs under dateline classes (or the
// plain VC count without them).
func (r *Router) vcPairs() int {
	if r.cfg.DatelineVCs {
		return r.cfg.NumVCs / 2
	}
	return r.cfg.NumVCs
}

// pairPermitted reports whether the mask grants the VC pair p: either
// class's bit selects the pair, so legacy single-bit masks stay routable
// across datelines.
func (r *Router) pairPermitted(mask flit.VCMask, p int) bool {
	if !r.cfg.DatelineVCs {
		return mask.Has(p)
	}
	return mask.Has(p) || mask.Has(p+r.vcPairs())
}

// isPriority reports whether VC v is a class-of-service priority channel;
// under dateline classes the priority mask addresses VC pairs.
func (r *Router) isPriority(v int) bool {
	if r.cfg.PriorityVCs == 0 {
		return false
	}
	if r.cfg.PriorityVCs.Has(v) {
		return true
	}
	if r.cfg.DatelineVCs {
		p := v % r.vcPairs()
		return r.cfg.PriorityVCs.Has(p) || r.cfg.PriorityVCs.Has(p+r.vcPairs())
	}
	return false
}

// reservedPair reports whether VC v belongs to the reserved pre-scheduled
// pair.
func (r *Router) reservedPair(v int) bool {
	if r.cfg.ReservedVC < 0 {
		return false
	}
	pairs := r.vcPairs()
	return v%pairs == r.cfg.ReservedVC%pairs
}

// chooseVC picks a free, credited downstream VC from the packet's mask in
// the required dateline class (lowest index first, deterministically).
// VCs of the reserved pair are never given to dynamic traffic.
func (r *Router) chooseVC(oc *outputController, mask flit.VCMask, high bool) int {
	return r.chooseVCNeed(oc, mask, high, 1)
}

// chooseVCNeed is chooseVC with an explicit credit requirement (virtual
// cut-through asks for the whole packet's worth).
func (r *Router) chooseVCNeed(oc *outputController, mask flit.VCMask, high bool, need int) int {
	pairs := r.vcPairs()
	base := 0
	if high {
		base = pairs
	}
	for p := 0; p < pairs; p++ {
		v := base + p
		if r.reservedPair(v) || !r.pairPermitted(mask, p) {
			continue
		}
		if oc.vcOwner[v] == 0 && (r.cfg.ElasticLinks || oc.credits[v] >= need) {
			return v
		}
	}
	return -1
}

// moveFlit commits a switch traversal: the flit leaves its input buffer,
// acquires its downstream VC and a credit if needed, and lands in the
// output's staging buffer for its input port.
func (r *Router) moveFlit(pi int, st *vcState, now int64) {
	f := st.popFront()
	st.lastDeq = now
	oc := r.outputs[portIndex(st.outPort)]
	inVC := f.VC
	if r.cfg.Mode == ModeVC && oc.dir != route.Local {
		if f.Type.IsHead() {
			v := r.chooseVCFor(oc, f, r.downstreamClass(route.Dir(pi), oc, f))
			if v < 0 {
				panic(fmt.Sprintf("router %d: head %v won arbitration without a VC", r.cfg.ID, f))
			}
			oc.vcOwner[v] = f.PacketID + 1
			st.outVC = v
		}
		f.VC = st.outVC
		if !r.cfg.ElasticLinks {
			oc.credits[f.VC]--
		}
	}
	if r.cfg.DatelineVCs {
		// Maintain the dateline bit: turning into a new dimension resets
		// it, crossing a dateline link sets it. Every flit of the packet
		// takes the same path, so the bit stays consistent per flit.
		if dimOf(route.Dir(pi)) != dimOf(oc.dir) {
			f.Wrapped = false
		}
		if oc.dateline {
			f.Wrapped = true
		}
	}
	if f.Type.IsTail() {
		st.routed = false
		st.outVC = -1
	}
	oc.staging[pi] = f
	r.creditUpstream(pi, inVC)
	r.Stats.SwitchMoves++
	if r.probe != nil {
		r.probe.SwitchMoves++
		if f.Type.IsHead() {
			r.probe.Trace(telemetry.EvXbar, now, f.PacketID, int32(r.cfg.ID), int32(f.VC))
		}
	}
	if r.cfg.Meter != nil {
		r.cfg.Meter.AddHop()
	}
}

// creditUpstream returns a freed input-buffer slot to the upstream router.
// §2.3: "credits for buffer allocation are piggybacked on flits travelling
// in the reverse direction." Injection-port slots need no credit channel:
// the client reads the ready signal combinationally (CanInject).
func (r *Router) creditUpstream(pi int, vc int) {
	if r.cfg.ElasticLinks || route.Dir(pi) == route.Local {
		return
	}
	if l := r.inLinks[pi]; l != nil {
		l.SendCredit(vc)
	}
}

// CanAccept reports whether the input controller for direction from has
// buffer space on VC vc — the receiver-side ready signal an elastic
// channel polls before releasing its head flit.
func (r *Router) CanAccept(from route.Dir, vc int) bool {
	if vc < 0 || vc >= r.cfg.NumVCs {
		return false
	}
	return r.inputs[portIndex(from)].vcs[vc].bufLen() < r.cfg.BufFlits
}

// LinkArbitrate lets the flits staged at each output port compete for the
// outgoing link (§2.3: "the flits in these buffers arbitrate for the link
// to the input controller on the next tile"). Reserved slots of the cyclic
// reservation table carry their flow's flit from the bypass without
// arbitration; the tile output delivers one flit per cycle to the client.
func (r *Router) LinkArbitrate(now int64) {
	for _, oc := range r.outputs {
		if oc.dir == route.Local {
			r.ejectOne(oc)
			continue
		}
		if oc.link == nil || !oc.link.CanSend() {
			continue
		}
		if flow := oc.table.FlowAt(now); flow != 0 {
			if idx := findFlow(oc.bypass, flow); idx >= 0 {
				f := oc.bypass[idx]
				oc.bypass = append(oc.bypass[:idx], oc.bypass[idx+1:]...)
				if r.probe != nil {
					r.probe.ResHits++
				}
				r.mustSend(oc, f)
				continue
			}
			if r.probe != nil {
				r.probe.ResMisses++
			}
			if !oc.table.WorkConserving {
				continue // strict TDM: unclaimed reserved slot idles
			}
		}
		req := oc.req
		any := false
		for i, f := range oc.staging {
			req[i] = f != nil
			if f != nil {
				any = true
			}
		}
		if !any {
			continue
		}
		w := oc.arb.Grant(req)
		f := oc.staging[w]
		oc.staging[w] = nil
		r.mustSend(oc, f)
	}
}

func (r *Router) mustSend(oc *outputController, f *flit.Flit) {
	if err := oc.link.Send(f); err != nil {
		panic(fmt.Sprintf("router %d: %v", r.cfg.ID, err))
	}
	r.occ--
	if r.cfg.Mode == ModeVC && f.Type.IsTail() && f.VC < len(oc.vcOwner) {
		oc.vcOwner[f.VC] = 0
	}
}

// ejectOne delivers at most one flit per cycle through the tile output
// port, reserved traffic first.
func (r *Router) ejectOne(oc *outputController) {
	if len(oc.bypass) > 0 {
		f := oc.bypass[0]
		oc.bypass = oc.bypass[1:]
		r.ejectQ = append(r.ejectQ, f)
		r.Stats.Ejected++
		if r.probe != nil {
			r.probe.EjectedFlits++
		}
		return
	}
	req := oc.req
	any := false
	for i, f := range oc.staging {
		req[i] = f != nil
		if f != nil {
			any = true
		}
	}
	if !any {
		return
	}
	w := oc.arb.Grant(req)
	f := oc.staging[w]
	oc.staging[w] = nil
	r.ejectQ = append(r.ejectQ, f)
	r.Stats.Ejected++
	if r.probe != nil {
		r.probe.EjectedFlits++
	}
}

func findFlow(flits []*flit.Flit, flow int) int {
	for i, f := range flits {
		if f.Flow == flow {
			return i
		}
	}
	return -1
}

// HandleCredits restores credits returned by the downstream router on the
// output link in direction d.
func (r *Router) HandleCredits(d route.Dir, vcs []int) {
	oc := r.outputs[portIndex(d)]
	for _, vc := range vcs {
		if vc < 0 || vc >= len(oc.credits) {
			panic(fmt.Sprintf("router %d: credit for invalid VC %d", r.cfg.ID, vc))
		}
		oc.credits[vc]++
	}
}

// HandleCredit restores a single downstream credit; the slice-free variant
// of HandleCredits for deferred cross-shard credit returns.
func (r *Router) HandleCredit(d route.Dir, vc int) {
	oc := r.outputs[portIndex(d)]
	if vc < 0 || vc >= len(oc.credits) {
		panic(fmt.Sprintf("router %d: credit for invalid VC %d", r.cfg.ID, vc))
	}
	oc.credits[vc]++
}

// Eject returns the flits delivered to the tile this cycle. The returned
// slice is only valid until the next cycle: the router reuses its backing
// array. Callers must consume (or copy) the flits before then.
func (r *Router) Eject() []*flit.Flit {
	out := r.ejectQ
	r.ejectQ = r.ejectQ[:0]
	r.occ -= len(out)
	return out
}

// Occupancy reports the total number of flits buffered in the router
// (input buffers, staging, bypass, and the eject queue), for drain
// detection, the network's active-set skip, and tests. It is O(1): the
// count is maintained incrementally; OccupancyRecount walks the real
// structures so tests can check the bookkeeping.
func (r *Router) Occupancy() int { return r.occ }

// OccupancyRecount recomputes the occupancy from the buffer structures.
// It must always equal Occupancy(); the invariant test enforces that.
func (r *Router) OccupancyRecount() int {
	n := 0
	for _, ic := range r.inputs {
		for _, st := range ic.vcs {
			n += st.bufLen()
		}
	}
	for _, oc := range r.outputs {
		for _, f := range oc.staging {
			if f != nil {
				n++
			}
		}
		n += len(oc.bypass)
	}
	return n + len(r.ejectQ)
}

// CreditCount reports the credits currently held for direction d and VC
// vc, for invariant tests.
func (r *Router) CreditCount(d route.Dir, vc int) int {
	return r.outputs[portIndex(d)].credits[vc]
}
