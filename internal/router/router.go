package router

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// NumPorts is the number of router ports: four compass directions plus the
// tile (local) port. §2.3: "five input controllers (one for each direction
// and one for input from the tile) and five output controllers".
const NumPorts = 5

// Mode selects the flow-control discipline (§3.2 trade-off study).
type Mode int

// Flow-control modes.
const (
	// ModeVC is the paper's baseline: virtual-channel flow control with
	// credits.
	ModeVC Mode = iota
	// ModeDrop drops packets that arrive to a full buffer; it needs very
	// little buffering but wastes the wire energy already spent on the
	// dropped flits (§3.2).
	ModeDrop
)

// Config parameterizes a Router.
type Config struct {
	ID       int
	NumVCs   int // virtual channels per input controller (paper: 8)
	BufFlits int // flit buffers per VC (paper: 4)
	Mode     Mode

	// ReservedVC, when >= 0, dedicates that virtual channel to
	// pre-scheduled traffic: its flits bypass arbitration and credits and
	// depart on reserved link slots (§2.6).
	ReservedVC int
	// ResPeriod is the cyclic reservation table period in cycles.
	ResPeriod int
	// WorkConserving lets dynamic traffic use unclaimed reserved slots.
	WorkConserving bool

	// PriorityVCs marks virtual channels whose traffic wins switch
	// arbitration over non-priority VCs (the class-of-service use of the
	// VC mask, §2.1).
	PriorityVCs flit.VCMask

	// NonSpeculative disables the §2.3 latency optimization of performing
	// VC allocation in parallel with switch arbitration: head flits then
	// spend one extra cycle per hop. Ablation only.
	NonSpeculative bool

	// Adaptive switches from source routing to per-hop adaptive routing:
	// the route field is ignored and each router picks, among the
	// candidate productive outputs supplied by the network's turn-model
	// route function, the one with the most downstream credits. §3's
	// research agenda ("much room for improvement remains") includes
	// routing; west-first turn-model adaptivity is the classic
	// deadlock-free answer on a mesh.
	Adaptive bool

	// CutThrough switches from wormhole to virtual cut-through flow
	// control: a head flit only advances when the downstream VC has
	// buffer space for the *whole* packet, so blocked packets never
	// straddle routers. It trades the §3.2 buffer budget (BufFlits must
	// cover the longest packet) for shorter blocking chains — one of the
	// flow-control points in the design space §3.2 asks to be explored.
	CutThrough bool

	// ElasticLinks switches flow control to the §3.3/ref-[4] elastic
	// channels: the wire's repeater stages buffer flits with hop-by-hop
	// backpressure, the receiver pops a flit only when its VC buffer has
	// space, and no credits circulate — "closing flow control loops
	// locally so credits can be quickly recycled." Router input buffers
	// can then be as small as one flit at full per-VC throughput. Only
	// meaningful on acyclic-channel topologies (the mesh); the network
	// layer enforces that.
	ElasticLinks bool

	// DatelineVCs enables torus deadlock avoidance by splitting the VC
	// space into two classes: VCs [0, NumVCs/2) carry packets that have
	// not crossed the current dimension's wraparound dateline, VCs
	// [NumVCs/2, NumVCs) carry packets that have. Crossing a dateline
	// link moves a packet to the high class; turning into a new dimension
	// resets it. This breaks the cyclic channel dependency of
	// dimension-ordered routing on rings (Dally, "Virtual Channel Flow
	// Control", the paper's [2]). With it enabled, a VC-mask bit grants a
	// *pair* of VCs, one in each class, so any nonempty mask remains
	// routable across datelines. Requires an even NumVCs.
	DatelineVCs bool

	// Meter, when non-nil, accrues per-hop controller energy.
	Meter *power.Meter
}

// DefaultConfig returns the paper's router parameters.
func DefaultConfig(id int) Config {
	return Config{ID: id, NumVCs: flit.NumVCs, BufFlits: 4, ReservedVC: -1, ResPeriod: 1}
}

// vcState is the per-virtual-channel input state of Figure 3: an input
// buffer plus the routing/allocation state machine.
type vcState struct {
	// buf[head:] are the buffered flits. Dequeuing advances head instead
	// of re-slicing away the front, so the backing array's capacity is
	// reused forever and the steady-state buffer never allocates.
	buf  []*flit.Flit
	head int

	// frontHead caches front().Type.IsHead() while the buffer is
	// non-empty, so the eligibility test in switch arbitration can
	// classify body flits from the vcState's own cache line instead of
	// dereferencing the flit. Maintained by pushBack/popFront and
	// reconstituted by rebuildMasks after a restore.
	frontHead bool

	outPort  route.Dir
	outVC    int
	routed   bool
	routedAt int64

	// lastDeq is the cycle a flit last left this VC, for head-of-line age
	// watermarks (the starvation detector's signal). The HOL age of a
	// waiting VC is now - max(routedAt, lastDeq).
	lastDeq int64

	// Identity of the packet currently occupying the VC, captured at route
	// computation so AbandonInput can synthesize an abort tail even after
	// the packet's flits have moved on.
	pktID  uint64
	pktSrc int
	pktDst int
}

// bufLen reports the number of buffered flits.
func (st *vcState) bufLen() int { return len(st.buf) - st.head }

// front returns the flit at the front of the buffer.
func (st *vcState) front() *flit.Flit { return st.buf[st.head] }

// back returns the most recently buffered flit.
func (st *vcState) back() *flit.Flit { return st.buf[len(st.buf)-1] }

// popFront dequeues and returns the front flit.
func (st *vcState) popFront() *flit.Flit {
	f := st.buf[st.head]
	st.buf[st.head] = nil
	st.head++
	if st.head == len(st.buf) {
		st.buf = st.buf[:0]
		st.head = 0
	} else {
		st.frontHead = st.buf[st.head].Type.IsHead()
	}
	return f
}

// pushBack enqueues a flit, compacting the array in place when the dead
// front space is needed.
func (st *vcState) pushBack(f *flit.Flit) {
	if st.bufLen() == 0 {
		st.frontHead = f.Type.IsHead()
	}
	if st.head > 0 && len(st.buf) == cap(st.buf) {
		n := copy(st.buf, st.buf[st.head:])
		for i := n; i < len(st.buf); i++ {
			st.buf[i] = nil
		}
		st.buf = st.buf[:n]
		st.head = 0
	}
	st.buf = append(st.buf, f)
}

// inputController is one of the five input controllers.
//
// The per-VC booleans that drive the per-cycle scans are mirrored into
// packed bitmasks (bit v = VC v) so RouteCompute and SwitchArbitrate touch
// one word per port instead of walking NumVCs structs: occMask tracks
// bufLen() > 0, routedMask tracks vcState.routed, stuckMask tracks
// injected stuck-VC faults. The vcState fields remain the checkpointed
// source of truth; rebuildMasks reconstitutes the mirrors after a restore.
type inputController struct {
	dir        route.Dir
	occMask    uint32
	routedMask uint32
	stuckMask  uint32
	vcs        []vcState
	arb        rrArbiter
}

// push enqueues a flit on VC v, keeping the occupancy mask coherent.
func (ic *inputController) push(v int, f *flit.Flit) {
	ic.vcs[v].pushBack(f)
	ic.occMask |= 1 << uint(v)
}

// pop dequeues the front flit of VC v, keeping the occupancy mask coherent.
func (ic *inputController) pop(v int) *flit.Flit {
	st := &ic.vcs[v]
	f := st.popFront()
	if st.bufLen() == 0 {
		ic.occMask &^= 1 << uint(v)
	}
	return f
}

// setRouted flips the routing state machine of VC v, keeping the routed
// mask coherent.
func (ic *inputController) setRouted(v int, on bool) {
	if on {
		ic.vcs[v].routed = true
		ic.routedMask |= 1 << uint(v)
	} else {
		ic.vcs[v].routed = false
		ic.routedMask &^= 1 << uint(v)
	}
}

// outputController is one of the five output controllers: a single staging
// flit per input-port connection, the downstream credit and VC-allocation
// state, the reservation table, and the reserved-traffic bypass.
//
// Like the input side, the hot per-VC state is mirrored into packed masks:
// stagedMask tracks staging[i] != nil (bit i = input port i), creditMask
// tracks credits[v] > 0, ownerMask tracks vcOwner[v] != 0. The unpacked
// arrays remain the checkpointed source of truth.
type outputController struct {
	dir        route.Dir
	stagedMask uint32
	creditMask uint32
	ownerMask  uint32
	// credits is inline (not a heap slice) so the per-flit credit
	// take/return touches the same cache lines as the masks beside it;
	// only the first cfg.NumVCs entries are live.
	credits  [flit.NumVCs]int32
	link     *link.Link // nil for the local port
	// entryFree caches link.EntryAlwaysFree(): when true, link arbitration
	// skips the CanSend pointer chase (link → pipe → slots) because the
	// delivery phase provably left the input register empty this cycle.
	entryFree bool
	staging  [NumPorts]*flit.Flit
	bypass   []*flit.Flit // reserved flits awaiting their slot
	vcOwner  []uint64     // packetID+1 holding each downstream VC; 0 = free
	arb      rrArbiter
	table    *ResTable
	dateline bool // this link crosses a torus ring's dateline
}

// addCredit restores one downstream credit on VC v.
func (oc *outputController) addCredit(v int) {
	oc.credits[v]++
	oc.creditMask |= 1 << uint(v)
}

// takeCredit consumes one downstream credit on VC v.
func (oc *outputController) takeCredit(v int) {
	oc.credits[v]--
	if oc.credits[v] == 0 {
		oc.creditMask &^= 1 << uint(v)
	}
}

// Stats counts router events.
type Stats struct {
	SwitchMoves    int64
	DroppedPackets int64
	DroppedFlits   int64
	Ejected        int64
	BypassMoves    int64

	// Fault accounting (runtime fault injection).
	FaultDroppedFlits   int64 // flits discarded because their output died
	FaultDroppedPackets int64 // tails among those flits (≈ packets cut here)
	AbortedPackets      int64 // mid-flight packets terminated by abort tails
}

// Router is the paper's virtual-channel router. The input and output
// controllers are stored by value so one router's hot state is a handful
// of contiguous allocations rather than a pointer web — at 4096 tiles the
// difference is whether the per-cycle scan stays in cache.
type Router struct {
	cfg     Config
	inputs  [NumPorts]inputController
	outputs [NumPorts]outputController
	inLinks [NumPorts]*link.Link // upstream links, for returning credits

	// Precomputed VC-mask constants (see New): prioMask has a bit per
	// class-of-service priority VC, inReservedMask the input-side reserved
	// VC, reservedPairMask both dateline classes of the reserved pair, and
	// pairSelMask the low vcPairs() bits.
	prioMask         uint32
	inReservedMask   uint32
	reservedPairMask uint32
	pairSelMask      uint32

	// sentMask and creditedMask accumulate, per output/input port, which
	// ports sent a flit (mustSend) or returned an upstream credit
	// (creditUpstream) since the network last consumed them; the network's
	// link worklists use them to reactivate idle links. Bit i = port i.
	sentMask     uint32
	creditedMask uint32

	// outWorkMask has a bit per output port with possible link-arbitration
	// work: a staged or bypassed flit, or an active reservation table
	// (which must be consulted every cycle). LinkArbitrate walks only the
	// set bits and clears the ones that come up empty; moveFlit,
	// moveReserved, and Reservations set them.
	outWorkMask uint32

	// adaptiveFn reports the turn-model-legal productive outputs toward
	// dst from this tile (empty when dst is this tile). Set by the
	// network when Config.Adaptive is on.
	adaptiveFn func(tile, dst int) []route.Dir

	// Runtime fault state (see faults.go).
	stalledIn [NumPorts]bool
	stuckVC   [NumPorts][]bool // lazily allocated per-VC wedge flags
	deadOut   [NumPorts]bool
	anyDead   bool

	ejectQ []*flit.Flit

	// occ mirrors Occupancy() incrementally: flits in input buffers,
	// staging, bypass, and the eject queue. The network's active-set skip
	// bypasses the per-cycle phases of routers with occ == 0.
	occ int

	// pool, when non-nil, receives flits the router destroys (drop-mode
	// and fault discards) and supplies synthetic abort tails, keeping a
	// pooled network's flit accounting balanced.
	pool *flit.Pool

	// probe, when non-nil, receives telemetry events from the router
	// phases. The nil fast path keeps the cycle loop allocation-free.
	probe *telemetry.RouterProbe

	Stats Stats
}

// portIndex maps a direction to a port index.
func portIndex(d route.Dir) int { return int(d) }

// Describe renders the router's structure in the shape of the paper's
// Figures 2 and 3: five input controllers (per-VC buffers and state) and
// five output controllers (one staging buffer per input connection, VC
// allocation and credit state, the cyclic reservation table).
func (r *Router) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "router %d (Figs. 2-3 of the paper):\n", r.cfg.ID)
	fmt.Fprintf(&sb, "  %d input controllers (N E S W tile), each:\n", NumPorts)
	fmt.Fprintf(&sb, "    %d virtual channels x %d-flit input buffer + route/VC state\n",
		r.cfg.NumVCs, r.cfg.BufFlits)
	fmt.Fprintf(&sb, "    route step consumed per hop (2 bits: straight/left/right/extract)\n")
	fmt.Fprintf(&sb, "  %d output controllers (N E S W tile), each:\n", NumPorts)
	fmt.Fprintf(&sb, "    %d single-flit staging buffers (one per input connection)\n", NumPorts)
	fmt.Fprintf(&sb, "    VC allocation (%d VCs) + credit counters for the downstream buffers\n", r.cfg.NumVCs)
	fmt.Fprintf(&sb, "    cyclic reservation table, period %d", r.cfg.ResPeriod)
	if r.cfg.ReservedVC >= 0 {
		fmt.Fprintf(&sb, " (VC %d reserved for pre-scheduled flows)", r.cfg.ReservedVC)
	}
	sb.WriteByte('\n')
	features := []string{}
	if r.cfg.DatelineVCs {
		features = append(features, "dateline VC classes (torus deadlock avoidance)")
	}
	if r.cfg.CutThrough {
		features = append(features, "virtual cut-through")
	}
	if r.cfg.ElasticLinks {
		features = append(features, "elastic channels (no credits)")
	}
	if r.cfg.Adaptive {
		features = append(features, "west-first adaptive routing")
	}
	if r.cfg.NonSpeculative {
		features = append(features, "sequential (non-speculative) VC allocation")
	}
	if len(features) > 0 {
		fmt.Fprintf(&sb, "  options: %s\n", strings.Join(features, ", "))
	}
	return sb.String()
}

// New returns a router with the given configuration.
func New(cfg Config) (*Router, error) {
	if cfg.NumVCs < 1 || cfg.NumVCs > flit.NumVCs {
		return nil, fmt.Errorf("router: NumVCs %d outside [1,%d]", cfg.NumVCs, flit.NumVCs)
	}
	if cfg.BufFlits < 1 {
		return nil, fmt.Errorf("router: BufFlits %d < 1", cfg.BufFlits)
	}
	if cfg.ReservedVC >= cfg.NumVCs {
		return nil, fmt.Errorf("router: reserved VC %d outside VC range", cfg.ReservedVC)
	}
	if cfg.DatelineVCs && cfg.NumVCs%2 != 0 {
		return nil, fmt.Errorf("router: dateline VC classes need an even VC count, got %d", cfg.NumVCs)
	}
	if cfg.ResPeriod < 1 {
		cfg.ResPeriod = 1
	}
	r := &Router{cfg: cfg}
	dirs := []route.Dir{route.North, route.East, route.South, route.West, route.Local}
	for _, d := range dirs {
		ic := &r.inputs[portIndex(d)]
		ic.dir = d
		ic.arb = rrArbiter{n: cfg.NumVCs}
		ic.vcs = make([]vcState, cfg.NumVCs)
		for v := range ic.vcs {
			// +1: AbandonInput may append an abort tail to a full buffer.
			ic.vcs[v] = vcState{outVC: -1, buf: make([]*flit.Flit, 0, cfg.BufFlits+1)}
		}
		oc := &r.outputs[portIndex(d)]
		oc.dir = d
		oc.arb = rrArbiter{n: NumPorts}
		oc.vcOwner = make([]uint64, cfg.NumVCs)
		oc.table = NewResTable(cfg.ResPeriod)
		oc.table.WorkConserving = cfg.WorkConserving
	}
	pairs := cfg.NumVCs
	if cfg.DatelineVCs {
		pairs = cfg.NumVCs / 2
	}
	r.pairSelMask = 1<<uint(pairs) - 1
	if cfg.ReservedVC >= 0 {
		r.inReservedMask = 1 << uint(cfg.ReservedVC)
		r.reservedPairMask = 1 << uint(cfg.ReservedVC%pairs)
		if cfg.DatelineVCs {
			r.reservedPairMask |= r.reservedPairMask << uint(pairs)
		}
	}
	for v := 0; v < cfg.NumVCs; v++ {
		if r.isPriority(v) {
			r.prioMask |= 1 << uint(v)
		}
	}
	return r, nil
}

// ID reports the router's tile id.
func (r *Router) ID() int { return r.cfg.ID }

// Config reports the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// SetOutLink attaches the outgoing link in direction d and initializes its
// credit counters to the downstream buffer depth.
func (r *Router) SetOutLink(d route.Dir, l *link.Link, downstreamBufFlits int) {
	oc := &r.outputs[portIndex(d)]
	oc.link = l
	oc.entryFree = l != nil && l.EntryAlwaysFree()
	oc.creditMask = 0
	for v := range oc.credits[:r.cfg.NumVCs] {
		oc.credits[v] = int32(downstreamBufFlits)
		if downstreamBufFlits > 0 {
			oc.creditMask |= 1 << uint(v)
		}
	}
}

// SetInLink attaches the incoming link in direction d, used to return
// credits upstream.
func (r *Router) SetInLink(d route.Dir, l *link.Link) {
	r.inLinks[portIndex(d)] = l
}

// SetDateline marks the output link in direction d as crossing its ring's
// dateline (only meaningful with Config.DatelineVCs).
func (r *Router) SetDateline(d route.Dir, crossing bool) {
	r.outputs[portIndex(d)].dateline = crossing
}

// SetAdaptiveRoute installs the per-hop candidate function for adaptive
// routing (Config.Adaptive).
func (r *Router) SetAdaptiveRoute(fn func(tile, dst int) []route.Dir) {
	r.adaptiveFn = fn
}

// SetPool attaches the owning network's flit pool; flits the router
// discards are recycled into it and abort tails are drawn from it.
func (r *Router) SetPool(p *flit.Pool) { r.pool = p }

// Pool reports the flit pool the router recycles through.
func (r *Router) Pool() *flit.Pool { return r.pool }

// SetProbe attaches the router's telemetry probe (nil disables telemetry).
func (r *Router) SetProbe(rp *telemetry.RouterProbe) { r.probe = rp }

// SampleTelemetry contributes the current per-VC input-buffer occupancy to
// the probe's time series. Called by the network's sampling phase; no-op
// without a probe.
func (r *Router) SampleTelemetry() {
	if r.probe == nil {
		return
	}
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		for v := range ic.vcs {
			r.probe.VCOccSum[v] += int64(ic.vcs[v].bufLen())
		}
	}
	r.probe.Samples++
}

// Reservations exposes the reservation table of the output port in
// direction d, so the network-level scheduler can book slots. The output
// joins the link-arbitration work mask pessimistically: if the caller
// books nothing, the next LinkArbitrate pass drops it again.
func (r *Router) Reservations(d route.Dir) *ResTable {
	r.outWorkMask |= 1 << uint(portIndex(d))
	return r.outputs[portIndex(d)].table
}

// CanInject reports whether the tile input port can accept a flit on the
// given virtual channel this cycle: the per-VC ready signal of §2.1.
func (r *Router) CanInject(vc int) bool {
	if vc < 0 || vc >= r.cfg.NumVCs {
		return false
	}
	return r.inputs[portIndex(route.Local)].vcs[vc].bufLen() < r.cfg.BufFlits
}

// AcceptFlit receives a flit on the input controller for direction from
// (route.Local for client injection). Under credit flow control a buffer
// overflow indicates a protocol violation and panics; in drop mode the
// packet is discarded instead (§3.2).
func (r *Router) AcceptFlit(f *flit.Flit, from route.Dir) {
	ic := &r.inputs[portIndex(from)]
	if f.VC < 0 || f.VC >= r.cfg.NumVCs {
		panic(fmt.Sprintf("router %d: flit %v on invalid VC", r.cfg.ID, f))
	}
	st := &ic.vcs[f.VC]
	if r.cfg.Mode == ModeDrop {
		// Dropping flow control transports single-flit packets (as
		// contention-dropping networks do): a drop is then always a whole
		// packet and no VC can wedge waiting for a discarded tail.
		if f.Type != flit.HeadTail {
			panic(fmt.Sprintf("router %d: multi-flit packet %v in drop mode", r.cfg.ID, f))
		}
		if st.bufLen() >= r.cfg.BufFlits {
			r.Stats.DroppedFlits++
			r.Stats.DroppedPackets++
			if r.pool != nil {
				r.pool.Put(f)
			}
			return
		}
		ic.push(f.VC, f)
		r.occ++
		return
	}
	if st.bufLen() >= r.cfg.BufFlits {
		panic(fmt.Sprintf("router %d: input %v VC %d overflow (credit protocol violation)",
			r.cfg.ID, from, f.VC))
	}
	ic.push(f.VC, f)
	r.occ++
}

// adaptiveChoice picks the candidate output with the most free downstream
// credits — a congestion-aware choice among the turn-model-legal
// productive directions. Ties go to the earlier candidate, keeping the
// simulation deterministic.
func (r *Router) adaptiveChoice(f *flit.Flit) route.Dir {
	if r.adaptiveFn == nil {
		panic(fmt.Sprintf("router %d: adaptive routing without a route function", r.cfg.ID))
	}
	candidates := r.adaptiveFn(r.cfg.ID, f.Dst)
	if len(candidates) == 0 {
		return route.Local
	}
	best := candidates[0]
	bestCredits := -1
	for _, d := range candidates {
		oc := &r.outputs[portIndex(d)]
		total := 0
		for v, c := range oc.credits {
			if oc.vcOwner[v] == 0 {
				total += int(c)
			}
		}
		if total > bestCredits {
			best, bestCredits = d, total
		}
	}
	return best
}

// RouteCompute strips the next route step from head flits at the front of
// each VC buffer (§2.3: "the input controller strips the next entry off
// the route field and uses these two bits to select one of four output
// ports").
func (r *Router) RouteCompute(now int64) {
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		if r.stalledIn[pi] {
			continue
		}
		// Occupied, unrouted, unwedged VCs: one packed word per port.
		for m := ic.occMask &^ ic.routedMask &^ ic.stuckMask; m != 0; m &= m - 1 {
			vi := bits.TrailingZeros32(m)
			st := &ic.vcs[vi]
			f := st.front()
			if !f.Type.IsHead() {
				panic(fmt.Sprintf("router %d: non-head flit %v at front of unrouted VC", r.cfg.ID, f))
			}
			st.pktID, st.pktSrc, st.pktDst = f.PacketID, f.Src, f.Dst
			if r.cfg.Adaptive {
				st.outPort = r.adaptiveChoice(f)
			} else {
				code, rest := f.Route.Pop()
				f.Route = rest
				if route.Dir(pi) == route.Local {
					st.outPort = route.AbsDir(code)
				} else {
					heading := route.Dir(pi).Opposite()
					st.outPort = route.Turn(heading, code)
				}
			}
			ic.setRouted(vi, true)
			st.routedAt = now
			if r.probe != nil {
				r.probe.Routed++
				r.probe.Trace(telemetry.EvRoute, now, f.PacketID, int32(r.cfg.ID), int32(st.outPort))
			}
		}
	}
}
