package router

import (
	"fmt"
	"sort"

	"repro/internal/flit"
	"repro/internal/power"
	"repro/internal/route"
)

// DeflectRouter is the misrouting flow-control variant of §3.2: "if packets
// are dropped or misrouted when they encounter contention very little
// buffering is required. However, dropping and misrouting protocols reduce
// performance and increase wire loading and hence power dissipation."
//
// It is a hot-potato router: each input holds at most one single-flit
// packet; every buffered packet leaves every cycle, on its preferred
// (dimension-ordered) output if it wins it, otherwise on any free output
// (a deflection). Because deflections invalidate source routes, packets are
// destination-routed: the router recomputes the preferred port from the
// packet's destination each cycle via the RouteFunc.
type DeflectRouter struct {
	id int
	// RouteFunc reports the preferred output direction from this tile
	// toward dst (never Local unless dst is this tile).
	routeFunc func(tile, dst int) route.Dir
	meter     *power.Meter

	inputs  [NumPorts]*flit.Flit
	outLink [NumPorts]linkSender
	ejectQ  []*flit.Flit

	Stats DeflectStats
}

// linkSender is the subset of link.Link the deflection router needs; it
// keeps the deflection router testable without real links.
type linkSender interface {
	CanSend() bool
	Send(f *flit.Flit) error
}

// DeflectStats counts deflection-router events.
type DeflectStats struct {
	Moves       int64
	Deflections int64
	Ejected     int64
}

// NewDeflect returns a deflection router for the given tile.
func NewDeflect(id int, routeFunc func(tile, dst int) route.Dir, meter *power.Meter) *DeflectRouter {
	return &DeflectRouter{id: id, routeFunc: routeFunc, meter: meter}
}

// ID reports the tile id.
func (r *DeflectRouter) ID() int { return r.id }

// SetOutLink attaches the outgoing link in direction d.
func (r *DeflectRouter) SetOutLink(d route.Dir, l linkSender) {
	r.outLink[portIndex(d)] = l
}

// CanInject reports whether the local input register is free. A deflection
// network accepts an injection only when a cycle's switch allocation left
// the local slot empty.
func (r *DeflectRouter) CanInject() bool {
	return r.inputs[portIndex(route.Local)] == nil
}

// AcceptFlit receives a single-flit packet on the given input.
func (r *DeflectRouter) AcceptFlit(f *flit.Flit, from route.Dir) {
	if f.Type != flit.HeadTail {
		panic(fmt.Sprintf("deflect %d: multi-flit packet %v", r.id, f))
	}
	if r.inputs[portIndex(from)] != nil {
		panic(fmt.Sprintf("deflect %d: input %v overrun", r.id, from))
	}
	r.inputs[portIndex(from)] = f
}

// Arbitrate runs one cycle of hot-potato switching: every buffered packet
// is matched to an output, oldest packet first; losers deflect to any free
// compass output. Matched packets are sent immediately.
//
// Compass arrivals always drain: a tile has exactly as many outgoing as
// incoming links, so the (at most) one arrival per link can always be
// matched, possibly deflected. The locally injected packet goes last and
// may stay in its register when every output is taken — which is exactly
// when CanInject goes false and the tile must hold off injecting, the
// standard deflection-network injection rule.
func (r *DeflectRouter) Arbitrate(now int64) {
	// Order inputs by packet age (oldest first) for livelock resistance;
	// the local injection register is always considered last.
	order := make([]int, 0, NumPorts)
	for i, f := range r.inputs {
		if f != nil && route.Dir(i) != route.Local {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := r.inputs[order[a]], r.inputs[order[b]]
		if fa.Birth != fb.Birth {
			return fa.Birth < fb.Birth
		}
		return fa.PacketID < fb.PacketID
	})
	if r.inputs[portIndex(route.Local)] != nil {
		order = append(order, portIndex(route.Local))
	}
	taken := [NumPorts]bool{}
	for _, pi := range order {
		f := r.inputs[pi]
		fromLocal := route.Dir(pi) == route.Local
		want := r.routeFunc(r.id, f.Dst)
		out := -1
		if want == route.Local {
			if !taken[portIndex(route.Local)] {
				out = portIndex(route.Local)
			}
		} else if !taken[portIndex(want)] && r.linkFree(want) {
			out = portIndex(want)
		}
		if out < 0 {
			// Deflect: any free compass output with a sendable link.
			for _, d := range []route.Dir{route.North, route.East, route.South, route.West} {
				if !taken[portIndex(d)] && r.linkFree(d) {
					out = portIndex(d)
					r.Stats.Deflections++
					break
				}
			}
		}
		if out < 0 {
			if !fromLocal {
				panic(fmt.Sprintf("deflect %d: compass arrival %v has no output", r.id, f))
			}
			// The injected packet waits in its register; CanInject stays
			// false so the port will not overrun it.
			continue
		}
		taken[out] = true
		r.inputs[pi] = nil
		r.Stats.Moves++
		if r.meter != nil {
			r.meter.AddHop()
		}
		if route.Dir(out) == route.Local {
			r.ejectQ = append(r.ejectQ, f)
			r.Stats.Ejected++
			continue
		}
		if err := r.outLink[out].Send(f); err != nil {
			panic(fmt.Sprintf("deflect %d: %v", r.id, err))
		}
	}
}

func (r *DeflectRouter) linkFree(d route.Dir) bool {
	l := r.outLink[portIndex(d)]
	return l != nil && l.CanSend()
}

// Eject returns packets delivered to the tile this cycle.
func (r *DeflectRouter) Eject() []*flit.Flit {
	out := r.ejectQ
	r.ejectQ = nil
	return out
}

// Occupancy reports buffered packets.
func (r *DeflectRouter) Occupancy() int {
	n := len(r.ejectQ)
	for _, f := range r.inputs {
		if f != nil {
			n++
		}
	}
	return n
}
