package router

import "repro/internal/flit"

// Reset erases the router's dynamic state in place so a pooled router
// stands in for a freshly built one: buffered, staged, bypassed, and
// eject-queued flits are recycled into the pool, allocation state
// machines and arbiter rotors rewind, reservation tables clear, runtime
// fault flags lift, and statistics zero. Configuration — ports, VC
// count, attached links, dateline marks, adaptive routing, probe, pool —
// is kept; output credit counters are left at zero and must be
// re-initialized by the owning network's wiring pass (SetOutLink), which
// is exactly how a new router receives them.
func (r *Router) Reset() {
	put := func(f *flit.Flit) {
		if r.pool != nil {
			r.pool.Put(f)
		}
	}
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		ic.arb.next = 0
		for v := range ic.vcs {
			st := &ic.vcs[v]
			for _, f := range st.buf[st.head:] {
				put(f)
			}
			for i := range st.buf {
				st.buf[i] = nil
			}
			st.buf = st.buf[:0]
			st.head = 0
			st.frontHead = false
			st.outPort = 0
			st.outVC = -1
			st.routed = false
			st.routedAt = 0
			st.lastDeq = 0
			st.pktID = 0
			st.pktSrc = 0
			st.pktDst = 0
		}
	}
	for oi := range r.outputs {
		oc := &r.outputs[oi]
		oc.arb.next = 0
		for i := range oc.staging {
			if oc.staging[i] != nil {
				put(oc.staging[i])
				oc.staging[i] = nil
			}
		}
		for _, f := range oc.bypass {
			put(f)
		}
		for i := range oc.bypass {
			oc.bypass[i] = nil
		}
		oc.bypass = oc.bypass[:0]
		for v := range oc.credits {
			oc.credits[v] = 0
		}
		for v := range oc.vcOwner {
			oc.vcOwner[v] = 0
		}
		oc.table.Reset()
	}
	r.stalledIn = [NumPorts]bool{}
	for i := range r.stuckVC {
		r.stuckVC[i] = nil
	}
	r.deadOut = [NumPorts]bool{}
	r.anyDead = false
	for _, f := range r.ejectQ {
		put(f)
	}
	for i := range r.ejectQ {
		r.ejectQ[i] = nil
	}
	r.ejectQ = r.ejectQ[:0]
	r.sentMask = 0
	r.creditedMask = 0
	r.Stats = Stats{}
	r.occ = 0
	r.rebuildMasks()
}
