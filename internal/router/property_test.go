package router

import (
	"math/rand"
	"testing"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/route"
)

// TestRouterConservationProperty drives one router with randomized packet
// streams on all four compass inputs plus injection, with a live credit
// loop on every output, and checks hardware-style invariants:
//
//   - flit conservation: everything accepted eventually leaves on exactly
//     one output or the ejection port;
//   - per-packet integrity: flits of a packet leave the same output, in
//     order, never interleaved with another packet on the same VC;
//   - credit balance: when idle, every credit counter is full again.
func TestRouterConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 8; trial++ {
		cfg := DefaultConfig(0)
		cfg.NumVCs = []int{2, 4, 8}[rng.Intn(3)]
		cfg.BufFlits = 1 + rng.Intn(4)
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dirs := []route.Dir{route.North, route.East, route.South, route.West}
		outs := map[route.Dir]*link.Link{}
		for _, d := range dirs {
			l := link.New(link.Config{Name: d.String()})
			outs[d] = l
			r.SetOutLink(d, l, cfg.BufFlits)
		}

		type stream struct {
			in     route.Dir
			vc     int
			queue  []*flit.Flit
			credit int
		}
		var streams []*stream
		var totalFlits int
		pid := uint64(1)
		// Build a random packet per (input, vc) pair, routed to a random
		// legal output.
		for _, in := range append(dirs, route.Local) {
			for vc := 0; vc < cfg.NumVCs; vc++ {
				if rng.Intn(3) == 0 {
					continue // leave some (input, vc) pairs idle
				}
				nf := 1 + rng.Intn(4)
				var w route.Word
				if in == route.Local {
					absCodes := []route.Code{route.Straight, route.Left, route.Right, route.Extract}
					w, _ = w.Push(absCodes[rng.Intn(4)])
				} else {
					// Any non-U-turn code; Extract ejects.
					w, _ = w.Push(route.Code(rng.Intn(4)))
				}
				if w.Peek() != route.Extract || in == route.Local {
					w, _ = w.Push(route.Extract)
				}
				st := &stream{in: in, vc: vc, credit: cfg.BufFlits}
				for i := 0; i < nf; i++ {
					typ := flit.Body
					switch {
					case nf == 1:
						typ = flit.HeadTail
					case i == 0:
						typ = flit.Head
					case i == nf-1:
						typ = flit.Tail
					}
					st.queue = append(st.queue, &flit.Flit{
						Type: typ, VC: vc, Mask: flit.MaskFor(vc), Route: w,
						PacketID: pid, Seq: i, TotalFlits: nf,
					})
				}
				pid++
				totalFlits += nf
				streams = append(streams, st)
			}
		}

		// Run the router, feeding streams as their credit loop allows and
		// draining every output with a modelled downstream that returns
		// one credit per received flit.
		received := map[uint64][]*flit.Flit{}
		outOf := map[uint64]route.Dir{}
		lastVCPacket := map[[2]any]uint64{} // (outDir, vc) -> packet in progress
		now := int64(0)
		for cycle := 0; cycle < 400; cycle++ {
			for _, d := range dirs {
				f, _ := outs[d].Deliver()
				if f != nil {
					received[f.PacketID] = append(received[f.PacketID], f)
					if prev, ok := outOf[f.PacketID]; ok && prev != d {
						t.Fatalf("trial %d: packet %d split across outputs %v and %v", trial, f.PacketID, prev, d)
					}
					outOf[f.PacketID] = d
					key := [2]any{d, f.VC}
					if cur, ok := lastVCPacket[key]; ok && cur != f.PacketID {
						t.Fatalf("trial %d: packet %d interleaved with %d on %v vc %d", trial, f.PacketID, cur, d, f.VC)
					}
					lastVCPacket[key] = f.PacketID
					if f.Type.IsTail() {
						delete(lastVCPacket, key)
					}
					r.HandleCredits(d, []int{f.VC})
				}
			}
			for _, f := range r.Eject() {
				received[f.PacketID] = append(received[f.PacketID], f)
			}
			r.RouteCompute(now)
			r.LinkArbitrate(now)
			r.SwitchArbitrate(now)
			// The packed mask mirrors must track the unpacked state they
			// shadow through every phase.
			if msg := r.checkMasks(); msg != "" {
				t.Fatalf("trial %d cycle %d: %s", trial, cycle, msg)
			}
			for _, st := range streams {
				if len(st.queue) == 0 {
					continue
				}
				// The upstream sender respects this router's buffer space
				// the same way credits would.
				if st.in == route.Local {
					if !r.CanInject(st.vc) {
						continue
					}
				} else if !r.CanAccept(st.in, st.vc) {
					continue
				}
				r.AcceptFlit(st.queue[0], st.in)
				st.queue = st.queue[1:]
			}
			now++
		}

		got := 0
		for id, fl := range received {
			got += len(fl)
			for i, f := range fl {
				if f.Seq != i {
					t.Fatalf("trial %d: packet %d out of order (%d at %d)", trial, id, f.Seq, i)
				}
			}
		}
		if got != totalFlits {
			t.Fatalf("trial %d: conservation violated: %d of %d flits emerged (occupancy %d)",
				trial, got, totalFlits, r.Occupancy())
		}
		if r.Occupancy() != 0 {
			t.Fatalf("trial %d: router not empty", trial)
		}
		for _, d := range dirs {
			// Let reverse credit wires settle, then check the balance.
			for i := 0; i < 4; i++ {
				_, credits := outs[d].Deliver()
				r.HandleCredits(d, credits)
			}
			for vc := 0; vc < cfg.NumVCs; vc++ {
				if r.CreditCount(d, vc) != cfg.BufFlits {
					t.Fatalf("trial %d: %v vc %d credits %d, want %d",
						trial, d, vc, r.CreditCount(d, vc), cfg.BufFlits)
				}
			}
		}
	}
}
