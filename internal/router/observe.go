package router

import "repro/internal/route"

// WaitingVC describes one input virtual channel with buffered flits that
// has not moved a flit for Age cycles — the raw material of the health
// monitor's deadlock and starvation detectors. Routed entries name the
// output they wait on; Stuck/Stalled entries are wedged by an injected
// fault and wait on nothing.
type WaitingVC struct {
	Port route.Dir
	VC   int
	Age  int64 // cycles since the head-of-line flit last advanced

	Routed  bool
	OutPort route.Dir // valid when Routed
	OutVC   int       // allocated downstream VC; -1 before VC allocation

	Stuck   bool // this VC is wedged by a stuck-VC fault
	Stalled bool // the whole input port is stalled by a fault
}

// AppendWaiting appends, in deterministic (port, VC) order, every input VC
// whose buffered head flit has waited at least minAge cycles — plus every
// fault-wedged nonempty VC regardless of age, since those are deadlock
// root causes. The HOL age is measured from the later of route
// computation and the last dequeue, so a VC that is busily draining a
// long packet is never reported.
func (r *Router) AppendWaiting(now, minAge int64, out []WaitingVC) []WaitingVC {
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		stalled := r.stalledIn[pi]
		for vi := range ic.vcs {
			st := &ic.vcs[vi]
			if st.bufLen() == 0 {
				continue
			}
			stuck := r.vcIsStuck(pi, vi)
			since := st.lastDeq
			if st.routed && st.routedAt > since {
				since = st.routedAt
			}
			age := now - since
			if age < minAge && !stuck && !stalled {
				continue
			}
			if !st.routed && !stuck && !stalled {
				// An unrouted nonempty VC is waiting on route computation,
				// which always succeeds next cycle unless wedged; not a
				// flow-control wait.
				continue
			}
			w := WaitingVC{
				Port:    route.Dir(pi),
				VC:      vi,
				Age:     age,
				Routed:  st.routed,
				OutVC:   -1,
				Stuck:   stuck,
				Stalled: stalled,
			}
			if st.routed {
				w.OutPort = st.outPort
				w.OutVC = st.outVC
			}
			out = append(out, w)
		}
	}
	return out
}
