package router

import (
	"repro/internal/checkpoint"
	"repro/internal/flit"
	"repro/internal/route"
)

// SaveState serialises the router's dynamic state: per-VC input buffers
// and allocation state machines, arbiter pointers, output staging/bypass/
// credit/VC-ownership state, runtime fault flags, the eject queue, and
// statistics. Configuration (and the static reservation table it implies)
// is not saved — the restored router must be built from the same config.
func (r *Router) SaveState(e *checkpoint.Encoder) {
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		e.Int(ic.arb.next)
		e.U32(uint32(len(ic.vcs)))
		for v := range ic.vcs {
			st := &ic.vcs[v]
			flit.SaveFlits(e, st.buf[st.head:])
			e.U8(uint8(st.outPort))
			e.Int(st.outVC)
			e.Bool(st.routed)
			e.I64(st.routedAt)
			e.I64(st.lastDeq)
			e.U64(st.pktID)
			e.Int(st.pktSrc)
			e.Int(st.pktDst)
		}
	}
	for oi := range r.outputs {
		oc := &r.outputs[oi]
		e.Int(oc.arb.next)
		for _, f := range oc.staging {
			e.Bool(f != nil)
			if f != nil {
				f.SaveState(e)
			}
		}
		flit.SaveFlits(e, oc.bypass)
		e.U32(uint32(r.cfg.NumVCs))
		for _, c := range oc.credits[:r.cfg.NumVCs] {
			e.Int(int(c))
		}
		e.U32(uint32(len(oc.vcOwner)))
		for _, o := range oc.vcOwner {
			e.U64(o)
		}
	}
	for _, b := range r.stalledIn {
		e.Bool(b)
	}
	for _, s := range r.stuckVC {
		e.Bool(s != nil)
		for _, b := range s {
			e.Bool(b)
		}
	}
	for _, b := range r.deadOut {
		e.Bool(b)
	}
	e.Bool(r.anyDead)
	flit.SaveFlits(e, r.ejectQ)
	e.I64(r.Stats.SwitchMoves)
	e.I64(r.Stats.DroppedPackets)
	e.I64(r.Stats.DroppedFlits)
	e.I64(r.Stats.Ejected)
	e.I64(r.Stats.BypassMoves)
	e.I64(r.Stats.FaultDroppedFlits)
	e.I64(r.Stats.FaultDroppedPackets)
	e.I64(r.Stats.AbortedPackets)
}

// RestoreState restores a router saved with SaveState into a router built
// from the same configuration. Buffered flits are drawn from pool, and
// the incremental occupancy count is recomputed from the restored
// structures.
func (r *Router) RestoreState(d *checkpoint.Decoder, pool *flit.Pool) {
	for pi := range r.inputs {
		ic := &r.inputs[pi]
		ic.arb.next = d.Int()
		n := d.Count(1)
		if n != len(ic.vcs) {
			if d.Err() == nil {
				d.Fail("router %d: input VC count mismatch: checkpoint %d, router %d", r.cfg.ID, n, len(ic.vcs))
			}
			return
		}
		for v := range ic.vcs {
			st := &ic.vcs[v]
			for i := range st.buf {
				st.buf[i] = nil
			}
			st.buf = flit.RestoreFlits(d, st.buf[:0], pool)
			st.head = 0
			st.outPort = route.Dir(d.U8())
			st.outVC = d.Int()
			st.routed = d.Bool()
			st.routedAt = d.I64()
			st.lastDeq = d.I64()
			st.pktID = d.U64()
			st.pktSrc = d.Int()
			st.pktDst = d.Int()
		}
	}
	for oi := range r.outputs {
		oc := &r.outputs[oi]
		oc.arb.next = d.Int()
		for i := range oc.staging {
			oc.staging[i] = nil
			if d.Bool() {
				oc.staging[i] = flit.RestoreFlit(d, pool)
			}
		}
		oc.bypass = flit.RestoreFlits(d, oc.bypass[:0], pool)
		nc := d.Count(8)
		if nc != r.cfg.NumVCs {
			if d.Err() == nil {
				d.Fail("router %d: credit width mismatch: checkpoint %d, router %d", r.cfg.ID, nc, r.cfg.NumVCs)
			}
			return
		}
		for i := 0; i < nc; i++ {
			oc.credits[i] = int32(d.Int())
		}
		no := d.Count(8)
		if no != len(oc.vcOwner) {
			if d.Err() == nil {
				d.Fail("router %d: VC owner width mismatch: checkpoint %d, router %d", r.cfg.ID, no, len(oc.vcOwner))
			}
			return
		}
		for i := range oc.vcOwner {
			oc.vcOwner[i] = d.U64()
		}
	}
	for i := range r.stalledIn {
		r.stalledIn[i] = d.Bool()
	}
	for i := range r.stuckVC {
		r.stuckVC[i] = nil
		if d.Bool() {
			s := make([]bool, r.cfg.NumVCs)
			for j := range s {
				s[j] = d.Bool()
			}
			r.stuckVC[i] = s
		}
	}
	for i := range r.deadOut {
		r.deadOut[i] = d.Bool()
	}
	r.anyDead = d.Bool()
	r.ejectQ = flit.RestoreFlits(d, r.ejectQ[:0], pool)
	r.Stats.SwitchMoves = d.I64()
	r.Stats.DroppedPackets = d.I64()
	r.Stats.DroppedFlits = d.I64()
	r.Stats.Ejected = d.I64()
	r.Stats.BypassMoves = d.I64()
	r.Stats.FaultDroppedFlits = d.I64()
	r.Stats.FaultDroppedPackets = d.I64()
	r.Stats.AbortedPackets = d.I64()
	if d.Err() == nil {
		r.occ = r.OccupancyRecount()
		r.rebuildMasks()
	}
}
