package flit

// Pool is a free-list of Flit objects owned by one network. The cycle loop
// allocates a flit per segment of every injected packet and discards it at
// ejection; recycling them through a pool removes that allocation from the
// steady-state hot path entirely (a flit's Data buffer keeps its capacity
// across reuses, so payload copies stop allocating too).
//
// A Pool is NOT safe for concurrent use: it belongs to a single network,
// and each network runs on one goroutine. Parallel sweeps give every
// experiment point its own network and therefore its own pool.
type Pool struct {
	free []*Flit

	gets int64
	puts int64
}

// Get returns a zeroed flit, reusing a recycled one when available. The
// returned flit's Data is an empty slice that may carry capacity from a
// previous life.
func (p *Pool) Get() *Flit {
	p.gets++
	n := len(p.free)
	if n == 0 {
		return &Flit{}
	}
	f := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	return f
}

// Put recycles a flit. The caller must hold the only live reference: the
// flit's fields (including its Data contents) are dead after Put. Put(nil)
// is a no-op.
func (p *Pool) Put(f *Flit) {
	if f == nil {
		return
	}
	p.puts++
	data := f.Data[:0]
	*f = Flit{Data: data}
	p.free = append(p.free, f)
}

// Outstanding reports Get calls minus Put calls: the number of pool flits
// currently alive in the network. A drained network must report zero, which
// is the leak check the network tests enforce over the ejection, abort-
// tail, and dead-link drop paths.
func (p *Pool) Outstanding() int64 { return p.gets - p.puts }

// Gets reports the total number of Get calls, for reuse-rate accounting.
func (p *Pool) Gets() int64 { return p.gets }

// Free reports the number of flits currently parked in the free list.
func (p *Pool) Free() int { return len(p.free) }
