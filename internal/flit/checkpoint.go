package flit

import (
	"repro/internal/checkpoint"
	"repro/internal/route"
)

// SaveState serialises one in-flight flit by value. Flits are owned by
// exactly one container (a port queue, a router VC buffer, a link pipe
// stage), so each container saves the flits it holds and restores them as
// fresh pool allocations — the pool's free list itself is never
// serialised, and Outstanding() balances because every restored flit is
// drawn through Pool.Get.
func (f *Flit) SaveState(e *checkpoint.Encoder) {
	e.U8(uint8(f.Type))
	e.U8(uint8(f.Size))
	e.U8(uint8(f.Mask))
	f.Route.SaveState(e)
	e.Bytes(f.Data)
	e.Int(f.VC)
	e.U64(f.PacketID)
	e.Int(f.Seq)
	e.Int(f.TotalFlits)
	e.Int(f.Src)
	e.Int(f.Dst)
	e.I64(f.Inject)
	e.I64(f.Birth)
	e.Int(f.Class)
	e.Int(f.Flow)
	e.Int(f.Hops)
	e.Bool(f.Wrapped)
}

// RestoreFlit reads one flit saved with SaveState, drawing the object
// from pool (or allocating when pool is nil). The payload is copied out
// of the decoder's buffer into the flit's recycled Data capacity.
func RestoreFlit(d *checkpoint.Decoder, pool *Pool) *Flit {
	var f *Flit
	if pool != nil {
		f = pool.Get()
	} else {
		f = &Flit{}
	}
	f.Type = Type(d.U8())
	f.Size = SizeCode(d.U8())
	f.Mask = VCMask(d.U8())
	f.Route = route.RestoreWord(d)
	f.Data = append(f.Data[:0], d.Bytes()...)
	f.VC = d.Int()
	f.PacketID = d.U64()
	f.Seq = d.Int()
	f.TotalFlits = d.Int()
	f.Src = d.Int()
	f.Dst = d.Int()
	f.Inject = d.I64()
	f.Birth = d.I64()
	f.Class = d.Int()
	f.Flow = d.Int()
	f.Hops = d.Int()
	f.Wrapped = d.Bool()
	if d.Err() != nil && pool != nil {
		pool.Put(f)
		return nil
	}
	return f
}

// SaveFlits serialises a slice of flits with a count prefix.
func SaveFlits(e *checkpoint.Encoder, flits []*Flit) {
	e.U32(uint32(len(flits)))
	for _, f := range flits {
		f.SaveState(e)
	}
}

// RestoreFlits reads a flit slice saved with SaveFlits, appending to dst.
func RestoreFlits(d *checkpoint.Decoder, dst []*Flit, pool *Pool) []*Flit {
	n := d.Count(32)
	for i := 0; i < n; i++ {
		f := RestoreFlit(d, pool)
		if f == nil {
			return dst
		}
		dst = append(dst, f)
	}
	return dst
}
