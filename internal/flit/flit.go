// Package flit defines the flow-control digit (flit) and packet types of the
// on-chip network, with the exact control fields of Section 2.1 of Dally &
// Towles, "Route Packets, Not Wires" (DAC 2001):
//
//   - Type (2 bits): head, body, tail, or idle; a flit may be both head and
//     tail (a single-flit packet).
//   - Size (4 bits): logarithmically encodes the number of valid data bits,
//     from 0 (1 bit) to 8 (256 bits), so short payloads do not burn power in
//     unused bit lanes.
//   - Virtual channel mask (8 bits): the set of virtual channels the packet
//     may use; it identifies a class of service.
//   - Route (16 bits): a source route of 2-bit steps (left, right, straight,
//     extract), used only on head flits; non-head flits may carry data there.
//
// The Ready field of the paper's port is a signal from the network, not part
// of the flit; it is modelled by the port types in internal/network.
package flit

import (
	"fmt"

	"repro/internal/route"
)

// DataBits is the width of the data field of a flit, in bits (§2.1).
const DataBits = 256

// DataBytes is the width of the data field in bytes.
const DataBytes = DataBits / 8

// OverheadBits approximates the control overhead carried alongside the data
// field: type (2) + size (4) + VC mask (8) + route (16) + per-link framing.
// The paper quotes "about 300b per flit (with overhead)".
const OverheadBits = 44

// TotalBits is data plus control overhead, the paper's ~300-bit flit.
const TotalBits = DataBits + OverheadBits

// Type is the 2-bit flit type field.
type Type uint8

// Flit types. HeadTail marks a single-flit packet, which the paper permits
// ("a flit may be both a head and a tail").
const (
	Idle Type = iota
	Head
	Body
	Tail
	HeadTail
)

// String names the flit type.
func (t Type) String() string {
	switch t {
	case Idle:
		return "idle"
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "headtail"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// IsHead reports whether the flit opens a packet.
func (t Type) IsHead() bool { return t == Head || t == HeadTail }

// IsTail reports whether the flit closes a packet.
func (t Type) IsTail() bool { return t == Tail || t == HeadTail }

// SizeCode is the 4-bit logarithmic size field: code s means 2^s valid bits,
// for s in [0, 8].
type SizeCode uint8

// MaxSizeCode is the largest legal size code (256 bits).
const MaxSizeCode SizeCode = 8

// Bits decodes the size field to a bit count.
func (s SizeCode) Bits() int {
	if s > MaxSizeCode {
		s = MaxSizeCode
	}
	return 1 << s
}

// EncodeSize returns the smallest size code whose decoded width covers bits.
// It returns an error if bits is not in [1, 256].
func EncodeSize(bits int) (SizeCode, error) {
	if bits < 1 || bits > DataBits {
		return 0, fmt.Errorf("flit: size %d bits out of range [1,%d]", bits, DataBits)
	}
	var s SizeCode
	for (1 << s) < bits {
		s++
	}
	return s, nil
}

// VCMask is the 8-bit virtual-channel mask; bit v set means the packet may
// be routed on virtual channel v.
type VCMask uint8

// NumVCs is the number of virtual channels in the paper's example network.
const NumVCs = 8

// MaskFor returns the mask with exactly virtual channel vc set.
func MaskFor(vc int) VCMask { return VCMask(1) << uint(vc) }

// Has reports whether the mask permits virtual channel vc.
func (m VCMask) Has(vc int) bool { return m&(VCMask(1)<<uint(vc)) != 0 }

// Lowest reports the lowest-numbered permitted virtual channel, or -1 if
// the mask is empty.
func (m VCMask) Lowest() int {
	for v := 0; v < NumVCs; v++ {
		if m.Has(v) {
			return v
		}
	}
	return -1
}

// Count reports the number of permitted virtual channels.
func (m VCMask) Count() int {
	n := 0
	for v := 0; v < NumVCs; v++ {
		if m.Has(v) {
			n++
		}
	}
	return n
}

// Flit is one flow-control digit in flight. The struct carries both the
// architectural fields of §2.1 and simulation bookkeeping (identity and
// timestamps) used for measurement; the bookkeeping does not influence
// routing or arbitration.
type Flit struct {
	// Architectural fields.
	Type  Type
	Size  SizeCode
	Mask  VCMask
	Route route.Word // consumed hop by hop; meaningful on head flits
	Data  []byte     // up to DataBytes; logical payload

	// VC is the virtual channel the flit currently occupies. It is chosen
	// per link from Mask by the upstream VC allocator, mirroring hardware
	// where the VC identifier travels beside the flit.
	VC int

	// Bookkeeping (not visible to hardware, except TotalFlits which a
	// cut-through router would carry as a length field in the head).
	PacketID   uint64
	Seq        int   // flit index within its packet
	TotalFlits int   // packet length in flits (set on every flit)
	Src, Dst   int   // tile ids, for stats and destination-routed modes
	Inject     int64 // cycle the packet was offered to the network
	Birth      int64 // cycle the packet was created by its client (queue time)
	Class      int   // service class, for reporting
	Flow       int   // pre-scheduled flow id (0 = dynamic traffic), §2.6
	Hops       int   // link traversals on the packet's source route (H in the §3 latency model)

	// Wrapped is the dateline bit used for torus deadlock avoidance: set
	// when the packet crosses a ring's wraparound dateline, cleared when
	// it turns into a new dimension. Routers use it to pick the virtual-
	// channel class (see router.Config.DatelineVCs). In hardware this is
	// one header bit; the paper's reference [2] (Dally, "Virtual Channel
	// Flow Control") is the source of the scheme.
	Wrapped bool
}

// PayloadBits reports the number of valid payload bits per the size field.
func (f *Flit) PayloadBits() int { return f.Size.Bits() }

// Clone returns a deep copy of the flit (the Data slice is copied).
func (f *Flit) Clone() *Flit {
	g := *f
	if f.Data != nil {
		g.Data = append([]byte(nil), f.Data...)
	}
	return &g
}

// String renders the flit compactly for traces and test failures.
func (f *Flit) String() string {
	return fmt.Sprintf("{%s pkt=%d seq=%d vc=%d %d->%d size=%db}",
		f.Type, f.PacketID, f.Seq, f.VC, f.Src, f.Dst, f.PayloadBits())
}

// Packet is a client-level message before segmentation into flits.
type Packet struct {
	ID       uint64
	Src, Dst int
	Mask     VCMask
	Route    route.Word
	Payload  []byte
	Birth    int64
	Class    int
	Hops     int
}

// Flits segments the packet into flits carrying at most DataBytes each.
// A packet whose payload fits in one flit yields a single HeadTail flit.
// An empty payload yields one HeadTail flit with size code 0 (1 valid bit),
// matching the paper's minimum flit.
func (p *Packet) Flits() []*Flit {
	return p.AppendFlits(nil, nil)
}

// AppendFlits segments the packet into flits appended to dst, drawing flit
// objects from pool when it is non-nil (each flit then owns a private copy
// of its payload slice in recycled buffer capacity). This is the
// allocation-free form of Flits for the injection hot path: with a reused
// dst and a pool, a steady-state call allocates nothing.
func (p *Packet) AppendFlits(dst []*Flit, pool *Pool) []*Flit {
	n := p.NumFlits()
	for i := 0; i < n; i++ {
		chunk := p.Payload[min(i*DataBytes, len(p.Payload)):min((i+1)*DataBytes, len(p.Payload))]
		t := Body
		switch {
		case n == 1:
			t = HeadTail
		case i == 0:
			t = Head
		case i == n-1:
			t = Tail
		}
		bits := len(chunk) * 8
		if bits == 0 {
			bits = 1
		}
		sc, err := EncodeSize(bits)
		if err != nil {
			// unreachable: NumFlits caps chunk length at DataBytes
			panic(err)
		}
		var f *Flit
		if pool != nil {
			f = pool.Get()
		} else {
			f = &Flit{}
		}
		f.Type = t
		f.Size = sc
		f.Mask = p.Mask
		f.Route = p.Route
		f.Data = append(f.Data[:0], chunk...)
		f.PacketID = p.ID
		f.Seq = i
		f.TotalFlits = n
		f.Src = p.Src
		f.Dst = p.Dst
		f.Birth = p.Birth
		f.Class = p.Class
		f.Hops = p.Hops
		dst = append(dst, f)
	}
	return dst
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NumFlits reports how many flits the packet segments into.
func (p *Packet) NumFlits() int {
	n := (len(p.Payload) + DataBytes - 1) / DataBytes
	if n == 0 {
		n = 1
	}
	return n
}

// Reassemble concatenates the payloads of a packet's flits, in sequence
// order. It returns an error if the flits disagree on packet identity or a
// sequence number is missing.
func Reassemble(flits []*Flit) ([]byte, error) {
	if len(flits) == 0 {
		return nil, fmt.Errorf("flit: reassemble of zero flits")
	}
	id := flits[0].PacketID
	bySeq := make(map[int]*Flit, len(flits))
	for _, f := range flits {
		if f.PacketID != id {
			return nil, fmt.Errorf("flit: mixed packets %d and %d", id, f.PacketID)
		}
		if _, dup := bySeq[f.Seq]; dup {
			return nil, fmt.Errorf("flit: duplicate seq %d in packet %d", f.Seq, id)
		}
		bySeq[f.Seq] = f
	}
	var out []byte
	for i := 0; i < len(flits); i++ {
		f, ok := bySeq[i]
		if !ok {
			return nil, fmt.Errorf("flit: packet %d missing seq %d", id, i)
		}
		out = append(out, f.Data...)
	}
	if !bySeq[0].Type.IsHead() {
		return nil, fmt.Errorf("flit: packet %d first flit is %v, not a head", id, bySeq[0].Type)
	}
	if last := bySeq[len(flits)-1]; !last.Type.IsTail() {
		return nil, fmt.Errorf("flit: packet %d truncated: last flit is %v, not a tail", id, last.Type)
	}
	return out, nil
}
