package flit

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTypePredicates(t *testing.T) {
	cases := []struct {
		t          Type
		head, tail bool
	}{
		{Idle, false, false},
		{Head, true, false},
		{Body, false, false},
		{Tail, false, true},
		{HeadTail, true, true},
	}
	for _, c := range cases {
		if c.t.IsHead() != c.head || c.t.IsTail() != c.tail {
			t.Errorf("%v: IsHead=%v IsTail=%v, want %v/%v",
				c.t, c.t.IsHead(), c.t.IsTail(), c.head, c.tail)
		}
	}
}

func TestSizeCodeDecode(t *testing.T) {
	// §2.1: size field logarithmically encodes 0 (1 bit) to 8 (256 bits).
	want := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	for code, bits := range want {
		if got := SizeCode(code).Bits(); got != bits {
			t.Errorf("SizeCode(%d).Bits() = %d, want %d", code, got, bits)
		}
	}
	// Out-of-range codes clamp to the maximum width.
	if got := SizeCode(15).Bits(); got != 256 {
		t.Errorf("SizeCode(15).Bits() = %d, want 256", got)
	}
}

func TestEncodeSizeBounds(t *testing.T) {
	if _, err := EncodeSize(0); err == nil {
		t.Error("EncodeSize(0) did not fail")
	}
	if _, err := EncodeSize(257); err == nil {
		t.Error("EncodeSize(257) did not fail")
	}
	for _, c := range []struct{ bits, code int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 4}, {17, 5}, {255, 8}, {256, 8},
	} {
		got, err := EncodeSize(c.bits)
		if err != nil {
			t.Fatalf("EncodeSize(%d): %v", c.bits, err)
		}
		if int(got) != c.code {
			t.Errorf("EncodeSize(%d) = %d, want %d", c.bits, got, c.code)
		}
	}
}

// Property: EncodeSize yields the smallest code covering the width.
func TestEncodeSizeProperty(t *testing.T) {
	f := func(raw uint16) bool {
		bits := int(raw)%DataBits + 1
		code, err := EncodeSize(bits)
		if err != nil {
			return false
		}
		covers := code.Bits() >= bits
		tight := code == 0 || SizeCode(code-1).Bits() < bits
		return covers && tight
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVCMask(t *testing.T) {
	m := MaskFor(3) | MaskFor(5)
	if !m.Has(3) || !m.Has(5) || m.Has(0) || m.Has(7) {
		t.Fatalf("mask membership wrong: %08b", m)
	}
	if m.Lowest() != 3 {
		t.Errorf("Lowest = %d, want 3", m.Lowest())
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d, want 2", m.Count())
	}
	if VCMask(0).Lowest() != -1 {
		t.Errorf("empty mask Lowest = %d, want -1", VCMask(0).Lowest())
	}
	if VCMask(0xFF).Count() != NumVCs {
		t.Errorf("full mask Count = %d", VCMask(0xFF).Count())
	}
}

func TestPacketSegmentationShapes(t *testing.T) {
	cases := []struct {
		payload int // bytes
		flits   int
		types   []Type
	}{
		{0, 1, []Type{HeadTail}},
		{1, 1, []Type{HeadTail}},
		{32, 1, []Type{HeadTail}},
		{33, 2, []Type{Head, Tail}},
		{64, 2, []Type{Head, Tail}},
		{65, 3, []Type{Head, Body, Tail}},
		{200, 7, nil},
	}
	for _, c := range cases {
		p := &Packet{ID: 1, Src: 0, Dst: 5, Mask: MaskFor(0), Payload: make([]byte, c.payload)}
		fl := p.Flits()
		if len(fl) != c.flits || p.NumFlits() != c.flits {
			t.Errorf("payload %dB: %d flits (NumFlits %d), want %d",
				c.payload, len(fl), p.NumFlits(), c.flits)
			continue
		}
		if c.types != nil {
			for i, want := range c.types {
				if fl[i].Type != want {
					t.Errorf("payload %dB flit %d type %v, want %v", c.payload, i, fl[i].Type, want)
				}
			}
		}
		if !fl[0].Type.IsHead() || !fl[len(fl)-1].Type.IsTail() {
			t.Errorf("payload %dB: first/last flit not head/tail", c.payload)
		}
	}
}

func TestPacketSizeFieldTight(t *testing.T) {
	// A 40-byte payload splits 32+8; the second flit must carry size code
	// for 64 bits, not 256, so unused lanes stay quiet (§2.1 power note).
	p := &Packet{ID: 2, Payload: make([]byte, 40)}
	fl := p.Flits()
	if len(fl) != 2 {
		t.Fatalf("flits = %d", len(fl))
	}
	if fl[0].PayloadBits() != 256 {
		t.Errorf("first flit bits = %d, want 256", fl[0].PayloadBits())
	}
	if fl[1].PayloadBits() != 64 {
		t.Errorf("second flit bits = %d, want 64", fl[1].PayloadBits())
	}
}

// Property: segmentation and reassembly are inverse for any payload.
func TestSegmentReassembleRoundTrip(t *testing.T) {
	f := func(payload []byte, id uint64) bool {
		if len(payload) > 10*DataBytes {
			payload = payload[:10*DataBytes]
		}
		p := &Packet{ID: id, Payload: payload}
		got, err := Reassemble(p.Flits())
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReassembleShuffled(t *testing.T) {
	p := &Packet{ID: 9, Payload: make([]byte, 100)}
	for i := range p.Payload {
		p.Payload[i] = byte(i)
	}
	fl := p.Flits()
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(fl), func(i, j int) { fl[i], fl[j] = fl[j], fl[i] })
	got, err := Reassemble(fl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p.Payload) {
		t.Fatal("shuffled reassembly mismatch")
	}
}

func TestReassembleErrors(t *testing.T) {
	if _, err := Reassemble(nil); err == nil {
		t.Error("empty reassemble did not fail")
	}
	p := &Packet{ID: 1, Payload: make([]byte, 100)}
	fl := p.Flits()
	if _, err := Reassemble(fl[:len(fl)-1]); err == nil {
		t.Error("missing tail flit not detected")
	}
	q := &Packet{ID: 2, Payload: make([]byte, 10)}
	mixed := append(append([]*Flit(nil), fl...), q.Flits()...)
	if _, err := Reassemble(mixed); err == nil {
		t.Error("mixed packets not detected")
	}
	dup := []*Flit{fl[0], fl[0]}
	if _, err := Reassemble(dup); err == nil {
		t.Error("duplicate seq not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := &Flit{Type: Head, Data: []byte{1, 2, 3}}
	g := f.Clone()
	g.Data[0] = 99
	if f.Data[0] != 1 {
		t.Fatal("clone shares data slice")
	}
}

func TestFlitOverheadMatchesPaper(t *testing.T) {
	// §2.4: "about 300b per flit (with overhead)".
	if TotalBits < 290 || TotalBits > 310 {
		t.Fatalf("TotalBits = %d, paper says about 300", TotalBits)
	}
}
