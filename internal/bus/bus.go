// Package bus models the shared on-chip bus the paper calls "a degenerate
// form of a network" (§1): one arbitrated transaction at a time, full
// connectivity, no concurrency. It is the baseline for the E12 experiment —
// "networks are generally preferable to such buses because they have higher
// bandwidth and support multiple concurrent communications."
//
// The model is cycle-accurate in the same sense as the network simulator: a
// round-robin arbiter grants the bus, a transaction occupies it for
// ceil(bits/width) cycles plus the arbitration overhead, and per-client
// queues absorb backpressure.
package bus

import (
	"fmt"

	"repro/internal/stats"
)

// Config parameterizes the bus.
type Config struct {
	Clients   int
	WidthBits int // data wires
	ArbCycles int // arbitration/turnaround overhead per transaction
}

// DefaultConfig matches the network comparison: as many wires as one
// network channel (256 data bits) shared by all 16 tiles.
func DefaultConfig() Config {
	return Config{Clients: 16, WidthBits: 256, ArbCycles: 1}
}

// Txn is one bus transaction.
type Txn struct {
	Src, Dst int
	Bits     int
	Birth    int64
}

// Bus is the shared interconnect.
type Bus struct {
	cfg     Config
	queues  [][]*Txn
	arbNext int

	busyUntil int64
	current   *Txn
	now       int64

	// Deliver, when set, receives completed transactions.
	Deliver func(t *Txn, now int64)

	Latency   *stats.Hist
	Offered   int64
	Completed int64
	Util      stats.Counter
}

// New returns a bus.
func New(cfg Config) (*Bus, error) {
	if cfg.Clients < 1 || cfg.WidthBits < 1 {
		return nil, fmt.Errorf("bus: invalid config %+v", cfg)
	}
	if cfg.ArbCycles < 0 {
		cfg.ArbCycles = 0
	}
	return &Bus{
		cfg:     cfg,
		queues:  make([][]*Txn, cfg.Clients),
		Latency: stats.NewHist(4096),
	}, nil
}

// Config reports the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Now reports the current cycle.
func (b *Bus) Now() int64 { return b.now }

// Offer enqueues a transaction at its source client.
func (b *Bus) Offer(src, dst, bits int) error {
	if src < 0 || src >= b.cfg.Clients || dst < 0 || dst >= b.cfg.Clients {
		return fmt.Errorf("bus: client out of range (%d->%d)", src, dst)
	}
	if bits < 1 {
		bits = 1
	}
	b.queues[src] = append(b.queues[src], &Txn{Src: src, Dst: dst, Bits: bits, Birth: b.now})
	b.Offered++
	return nil
}

// OccupancyCycles reports how long a transaction holds the bus.
func (b *Bus) OccupancyCycles(bits int) int64 {
	beats := int64((bits + b.cfg.WidthBits - 1) / b.cfg.WidthBits)
	return beats + int64(b.cfg.ArbCycles)
}

// Step advances the bus one cycle.
func (b *Bus) Step() {
	busy := b.now < b.busyUntil
	if busy {
		b.Util.Tick(1)
	} else {
		b.Util.Tick(0)
		if b.current != nil {
			// Transaction completed at the start of this cycle.
			done := b.current
			b.current = nil
			b.Completed++
			b.Latency.Add(b.now - done.Birth)
			if b.Deliver != nil {
				b.Deliver(done, b.now)
			}
		}
		// Round-robin arbitration over client queues.
		for i := 0; i < b.cfg.Clients; i++ {
			c := (b.arbNext + i) % b.cfg.Clients
			if len(b.queues[c]) == 0 {
				continue
			}
			t := b.queues[c][0]
			b.queues[c] = b.queues[c][1:]
			b.current = t
			b.busyUntil = b.now + b.OccupancyCycles(t.Bits)
			b.arbNext = (c + 1) % b.cfg.Clients
			b.Util.AddEvents(1) // count the grant cycle as busy
			break
		}
	}
	b.now++
}

// Run advances n cycles.
func (b *Bus) Run(n int64) {
	for i := int64(0); i < n; i++ {
		b.Step()
	}
}

// Pending reports queued plus in-flight transactions.
func (b *Bus) Pending() int {
	n := 0
	for _, q := range b.queues {
		n += len(q)
	}
	if b.current != nil {
		n++
	}
	return n
}

// Drain runs until all offered transactions complete or the budget is
// exhausted, reporting success.
func (b *Bus) Drain(budget int64) bool {
	for i := int64(0); i < budget; i++ {
		if b.Pending() == 0 {
			return true
		}
		b.Step()
	}
	return b.Pending() == 0
}

// PeakThroughputBits reports the theoretical ceiling in bits per cycle:
// the bus serializes everyone, so it is simply the width divided by the
// per-transaction overhead factor.
func (b *Bus) PeakThroughputBits(txnBits int) float64 {
	return float64(txnBits) / float64(b.OccupancyCycles(txnBits))
}
