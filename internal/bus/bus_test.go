package bus

import (
	"math/rand"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Clients: 0, WidthBits: 8}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := New(Config{Clients: 2, WidthBits: 0}); err == nil {
		t.Error("zero width accepted")
	}
	b, err := New(Config{Clients: 2, WidthBits: 8, ArbCycles: -5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Config().ArbCycles != 0 {
		t.Error("negative arb cycles not clamped")
	}
}

func TestOccupancy(t *testing.T) {
	b, _ := New(Config{Clients: 2, WidthBits: 256, ArbCycles: 1})
	if got := b.OccupancyCycles(256); got != 2 {
		t.Errorf("256b occupancy = %d, want 2", got)
	}
	if got := b.OccupancyCycles(257); got != 3 {
		t.Errorf("257b occupancy = %d, want 3", got)
	}
	if got := b.OccupancyCycles(1); got != 2 {
		t.Errorf("1b occupancy = %d, want 2", got)
	}
}

func TestSingleTransaction(t *testing.T) {
	b, _ := New(Config{Clients: 4, WidthBits: 64, ArbCycles: 1})
	var deliveredAt int64 = -1
	b.Deliver = func(txn *Txn, now int64) {
		if txn.Src != 1 || txn.Dst != 2 {
			t.Errorf("wrong txn delivered: %+v", txn)
		}
		deliveredAt = now
	}
	if err := b.Offer(1, 2, 128); err != nil {
		t.Fatal(err)
	}
	b.Run(10)
	// Offered at cycle 0, granted at cycle 0, occupies 2+1 cycles,
	// completes at cycle 3.
	if deliveredAt != 3 {
		t.Fatalf("delivered at %d, want 3", deliveredAt)
	}
	if b.Latency.Max() != 3 {
		t.Fatalf("latency = %d", b.Latency.Max())
	}
}

func TestOfferValidation(t *testing.T) {
	b, _ := New(Config{Clients: 2, WidthBits: 8})
	if err := b.Offer(0, 5, 8); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := b.Offer(9, 0, 8); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestSerializationOnlyOneTxnAtATime(t *testing.T) {
	b, _ := New(Config{Clients: 4, WidthBits: 256, ArbCycles: 1})
	order := []int{}
	b.Deliver = func(txn *Txn, now int64) { order = append(order, txn.Src) }
	for src := 0; src < 4; src++ {
		_ = b.Offer(src, (src+1)%4, 256)
	}
	b.Run(20)
	if len(order) != 4 {
		t.Fatalf("delivered %d", len(order))
	}
	// Completion times are spaced by the occupancy (2 cycles).
	if b.Latency.Max()-b.Latency.Quantile(0) < 4 {
		t.Fatalf("bus is not serializing: latencies %v", b.Latency)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	b, _ := New(Config{Clients: 4, WidthBits: 256, ArbCycles: 0})
	counts := map[int]int{}
	b.Deliver = func(txn *Txn, now int64) { counts[txn.Src]++ }
	// Saturate: every client always has work.
	for cycle := int64(0); cycle < 1000; cycle++ {
		for src := 0; src < 4; src++ {
			if cycle%2 == 0 {
				_ = b.Offer(src, (src+1)%4, 256)
			}
		}
		b.Step()
	}
	b.Drain(10000)
	min, max := 1<<30, 0
	for src := 0; src < 4; src++ {
		if counts[src] < min {
			min = counts[src]
		}
		if counts[src] > max {
			max = counts[src]
		}
	}
	if min == 0 || max-min > 1 {
		t.Fatalf("unfair service: %v", counts)
	}
}

func TestSaturationThroughput(t *testing.T) {
	// A 256-bit bus with 1 arb cycle moves at most one 256-bit packet per
	// 2 cycles regardless of client count — the §1 bus bottleneck.
	b, _ := New(Config{Clients: 16, WidthBits: 256, ArbCycles: 1})
	delivered := 0
	b.Deliver = func(txn *Txn, now int64) { delivered++ }
	rng := rand.New(rand.NewSource(1))
	const cycles = 4000
	for cycle := 0; cycle < cycles; cycle++ {
		for src := 0; src < 16; src++ {
			if rng.Float64() < 0.5 { // heavy overload
				_ = b.Offer(src, rng.Intn(16), 256)
			}
		}
		b.Step()
	}
	rate := float64(delivered) / float64(cycles)
	if rate > 0.51 || rate < 0.45 {
		t.Fatalf("saturated bus rate = %v txns/cycle, want ≈0.5", rate)
	}
	if b.Util.Rate() < 0.95 {
		t.Fatalf("saturated bus utilization = %v", b.Util.Rate())
	}
}

func TestDrain(t *testing.T) {
	b, _ := New(Config{Clients: 2, WidthBits: 8})
	_ = b.Offer(0, 1, 64)
	if b.Pending() != 1 {
		t.Fatal("pending wrong")
	}
	if !b.Drain(100) {
		t.Fatal("drain failed")
	}
	if b.Pending() != 0 || b.Completed != 1 {
		t.Fatal("post-drain state wrong")
	}
}

func TestPeakThroughput(t *testing.T) {
	b, _ := New(Config{Clients: 16, WidthBits: 256, ArbCycles: 1})
	if got := b.PeakThroughputBits(256); got != 128 {
		t.Fatalf("peak = %v bits/cycle, want 128", got)
	}
}
