package circuits

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProcessValidate(t *testing.T) {
	p := Process100nm()
	if err := p.Validate(); err != nil {
		t.Fatalf("paper process invalid: %v", err)
	}
	bad := p
	bad.VDD = 0
	if bad.Validate() == nil {
		t.Error("zero VDD accepted")
	}
	bad = p
	bad.LowSwingV = 2.0
	if bad.Validate() == nil {
		t.Error("swing above VDD accepted")
	}
	bad = p
	bad.OverdriveVelocity = 0.5
	if bad.Validate() == nil {
		t.Error("sub-unity overdrive accepted")
	}
	bad = p
	bad.WireResPerMM = -1
	if bad.Validate() == nil {
		t.Error("negative wire R accepted")
	}
	bad = p
	bad.DriverCap = 0
	if bad.Validate() == nil {
		t.Error("zero driver cap accepted")
	}
}

func TestLowSwingPowerIsTenfoldLower(t *testing.T) {
	// §4.1: "by using 100mV or less of signal swing, they reduce power by
	// an order of magnitude compared to 1.0V full swing signaling."
	p := Process100nm()
	fs, ls := FullSwing(p), LowSwing(p)
	ratio := ls.PowerRatio(fs)
	if math.Abs(ratio-10.0) > 1e-9 {
		t.Fatalf("full/low swing energy ratio = %v, want exactly 10 (Vdd²/(Vs·Vdd))", ratio)
	}
}

func TestLowSwingVelocityAndSpacing(t *testing.T) {
	// §4.1: 3x signal velocity and 3x repeater spacing.
	p := Process100nm()
	fs, ls := FullSwing(p), LowSwing(p)
	if r := ls.VelocityMMPerS / fs.VelocityMMPerS; math.Abs(r-3.0) > 1e-9 {
		t.Errorf("velocity ratio = %v, want 3", r)
	}
	if r := ls.RepeaterSpacingMM / fs.RepeaterSpacingMM; math.Abs(r-3.0) > 1e-9 {
		t.Errorf("spacing ratio = %v, want 3", r)
	}
}

func TestTileCrossableWithoutRepeater(t *testing.T) {
	// §4.1: low-swing overdrive "will make it possible to traverse a 3mm
	// tile without the need for an intermediate repeater"; full swing
	// needs at least one.
	p := Process100nm()
	fs, ls := FullSwing(p), LowSwing(p)
	if n := ls.Repeaters(p.TilePitchMM); n != 0 {
		t.Errorf("low-swing 3mm repeaters = %d, want 0 (spacing %.2fmm)", n, ls.RepeaterSpacingMM)
	}
	if n := fs.Repeaters(p.TilePitchMM); n < 1 {
		t.Errorf("full-swing 3mm repeaters = %d, want >= 1 (spacing %.2fmm)", n, fs.RepeaterSpacingMM)
	}
}

func TestUnrepeatedDelayQuadratic(t *testing.T) {
	// Without repeaters, doubling length should much more than double
	// delay once wire RC dominates.
	p := Process100nm()
	d1 := p.UnrepeatedDelay(6, 50)
	d2 := p.UnrepeatedDelay(12, 50)
	if d2 < 3*d1 {
		t.Fatalf("unrepeated delay not superlinear: %v -> %v", d1, d2)
	}
	// Repeated delay is linear by construction.
	fs := FullSwing(p)
	if r := fs.Delay(12) / fs.Delay(6); math.Abs(r-2) > 1e-9 {
		t.Fatalf("repeated delay not linear: ratio %v", r)
	}
}

func TestRepeatedBeatsUnrepeatedOnLongWires(t *testing.T) {
	p := Process100nm()
	fs := FullSwing(p)
	for _, l := range []float64{3, 6, 9, 12} {
		if fs.Delay(l) >= p.UnrepeatedDelay(l, 1) {
			t.Errorf("at %vmm repeated (%.3gs) not faster than unrepeated min driver (%.3gs)",
				l, fs.Delay(l), p.UnrepeatedDelay(l, 1))
		}
	}
}

func TestOptimalSpacingIsOptimal(t *testing.T) {
	// Perturbing the analytic optimum spacing must not reduce per-mm delay.
	p := Process100nm()
	l := p.OptimalRepeaterSpacingMM()
	s := p.optimalRepeaterSize()
	best := p.segmentDelay(l, s) / l
	for _, f := range []float64{0.5, 0.8, 1.25, 2.0} {
		d := p.segmentDelay(l*f, s) / (l * f)
		if d < best-1e-18 {
			t.Errorf("spacing %.2f× optimum gives lower delay/mm (%v < %v)", f, d, best)
		}
		d = p.segmentDelay(l, s*f) / l
		if d < best-1e-18 {
			t.Errorf("size %.2f× optimum gives lower delay/mm (%v < %v)", f, d, best)
		}
	}
}

func TestBitsPerClockRange(t *testing.T) {
	// §3.3: 4Gb/s per wire is 2-20 bits per clock for 2GHz-200MHz clocks.
	p := Process100nm()
	if got := p.BitsPerClock(2e9); math.Abs(got-2) > 1e-9 {
		t.Errorf("bits/clock at 2GHz = %v, want 2", got)
	}
	if got := p.BitsPerClock(200e6); math.Abs(got-20) > 1e-9 {
		t.Errorf("bits/clock at 200MHz = %v, want 20", got)
	}
}

func TestTracksPerLayer(t *testing.T) {
	// §3.1: "up to 6,000 wires on each metal layer crossing each edge".
	p := Process100nm()
	if got := p.TracksPerLayerPerEdge(); got != 6000 {
		t.Fatalf("tracks per layer = %d, want 6000", got)
	}
}

func TestVelocityPhysical(t *testing.T) {
	// Signal velocity must stay below c/2 (speed of light in on-chip
	// dielectric, ~150 mm/ns) and above 1 mm/ns (else the model is junk).
	p := Process100nm()
	for _, s := range []Signaling{FullSwing(p), LowSwing(p)} {
		v := s.VelocityMMPerS / 1e9 // mm/ns
		if v < 1 || v > 150 {
			t.Errorf("%s velocity %.1f mm/ns implausible", s.Name, v)
		}
	}
}

func TestEnergyLinearInBitsAndLength(t *testing.T) {
	s := LowSwing(Process100nm())
	e1 := s.Energy(100, 3)
	if r := s.Energy(200, 3) / e1; math.Abs(r-2) > 1e-12 {
		t.Errorf("energy not linear in bits: %v", r)
	}
	if r := s.Energy(100, 6) / e1; math.Abs(r-2) > 1e-12 {
		t.Errorf("energy not linear in length: %v", r)
	}
}

// Property: repeater count is monotone non-decreasing in wire length and
// zero for wires within one segment.
func TestRepeatersMonotoneProperty(t *testing.T) {
	p := Process100nm()
	fs := FullSwing(p)
	f := func(a, b uint8) bool {
		la, lb := float64(a)*0.25, float64(b)*0.25
		if la > lb {
			la, lb = lb, la
		}
		if fs.Repeaters(la) > fs.Repeaters(lb) {
			return false
		}
		if la > 0 && la <= fs.RepeaterSpacingMM && fs.Repeaters(la) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
