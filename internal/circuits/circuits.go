// Package circuits models the electrical layer of the on-chip network: RC
// wires, repeater insertion, and the full-swing vs. pulsed low-swing
// signaling comparison of Section 4.1 of the paper.
//
// The model separates two kinds of numbers:
//
//   - Derived quantities. Wire delay, optimal repeater spacing and count,
//     and signaling energy follow from first-order circuit physics (Elmore
//     delay with optimally sized repeaters; E = C·Vswing·Vdd per transition).
//     In particular the paper's "order of magnitude" power saving is exactly
//     Vdd²/(Vs·Vdd) = 10 for 100 mV swing at Vdd = 1.0 V.
//   - Asserted quantities. The 3× signal velocity and 3× repeater spacing of
//     overdriven low-swing signaling are measured results the paper takes
//     from Dally & Poulton, Digital Systems Engineering, ch. 8. They enter
//     the model as explicit multipliers (OverdriveVelocity,
//     OverdriveSpacing) rather than being re-derived.
//
// All process constants are carried in a Process value so experiments can
// perturb them; Process100nm returns constants calibrated to the paper's
// 0.1 µm, 1.0 V technology with 0.5 µm top-metal wire pitch and 3 mm tiles.
package circuits

import (
	"fmt"
	"math"
)

// Process collects the technology constants of the electrical model.
type Process struct {
	Name string

	VDD float64 // supply voltage, V

	// Top-level metal wire parasitics per mm.
	WireResPerMM float64 // Ω/mm
	WireCapPerMM float64 // F/mm

	// Minimum-size driver characteristics used by repeater optimization.
	DriverRes float64 // Ω (output resistance of a unit inverter)
	DriverCap float64 // F (input capacitance of a unit inverter)

	TilePitchMM float64 // tile edge, mm (3.0 in the paper)
	WirePitchUM float64 // minimum top-metal wire pitch, µm (0.5 in the paper)

	// MaxWireRate is the feasible signalling rate per wire, b/s. The paper
	// quotes 4 Gb/s in 0.1 µm technology (§3.3).
	MaxWireRate float64

	// LowSwingV is the pulsed low-swing signal amplitude (100 mV in §4.1).
	LowSwingV float64

	// OverdriveVelocity and OverdriveSpacing are the measured low-swing
	// multipliers the paper asserts: "about three times the signal
	// velocity" and "increases the optimum repeater spacing by about 3x".
	OverdriveVelocity float64
	OverdriveSpacing  float64
}

// Process100nm returns the paper's 0.1 µm process model.
func Process100nm() Process {
	return Process{
		Name:              "cmos-100nm",
		VDD:               1.0,
		WireResPerMM:      100,     // thin top-metal wire at 0.5 µm pitch
		WireCapPerMM:      0.2e-12, // 0.2 pF/mm including coupling to shields
		DriverRes:         4000,
		DriverCap:         3e-15,
		TilePitchMM:       3.0,
		WirePitchUM:       0.5,
		MaxWireRate:       4e9,
		LowSwingV:         0.1,
		OverdriveVelocity: 3.0,
		OverdriveSpacing:  3.0,
	}
}

// Validate reports whether the process constants are physically sane.
func (p Process) Validate() error {
	switch {
	case p.VDD <= 0:
		return fmt.Errorf("circuits: VDD %v <= 0", p.VDD)
	case p.WireResPerMM <= 0 || p.WireCapPerMM <= 0:
		return fmt.Errorf("circuits: wire parasitics must be positive")
	case p.DriverRes <= 0 || p.DriverCap <= 0:
		return fmt.Errorf("circuits: driver parameters must be positive")
	case p.LowSwingV <= 0 || p.LowSwingV > p.VDD:
		return fmt.Errorf("circuits: low swing %v outside (0, VDD]", p.LowSwingV)
	case p.OverdriveVelocity < 1 || p.OverdriveSpacing < 1:
		return fmt.Errorf("circuits: overdrive multipliers must be >= 1")
	}
	return nil
}

// UnrepeatedDelay is the Elmore delay of a wire of the given length driven
// by an s-times unit driver with no repeaters, in seconds. The quadratic
// term is why long unrepeated wires are untenable (§4.1: repeaters keep
// delay "linear (rather than quadratic) with length").
func (p Process) UnrepeatedDelay(lengthMM, driverSize float64) float64 {
	r := p.DriverRes / driverSize
	cw := p.WireCapPerMM * lengthMM
	rw := p.WireResPerMM * lengthMM
	return 0.69*r*(driverSize*p.DriverCap+cw) + 0.38*rw*cw
}

// OptimalRepeaterSpacingMM is the repeater spacing that minimizes delay per
// mm for full-swing static CMOS repeaters:
//
//	l* = sqrt(0.69·R0·C0 / (0.38·r·c))
//
// (minimizing segmentDelay(l, s)/l over l with the repeater size held at
// its own optimum).
func (p Process) OptimalRepeaterSpacingMM() float64 {
	return math.Sqrt(0.69 * p.DriverRes * p.DriverCap / (0.38 * p.WireResPerMM * p.WireCapPerMM))
}

// optimalRepeaterSize is the delay-optimal repeater size s* = sqrt(R0·c/(r·C0)).
func (p Process) optimalRepeaterSize() float64 {
	return math.Sqrt(p.DriverRes * p.WireCapPerMM / (p.WireResPerMM * p.DriverCap))
}

// RepeatedDelayPerMM is the delay per mm of an optimally repeated
// full-swing wire, in s/mm.
func (p Process) RepeatedDelayPerMM() float64 {
	l := p.OptimalRepeaterSpacingMM()
	s := p.optimalRepeaterSize()
	seg := p.segmentDelay(l, s)
	return seg / l
}

func (p Process) segmentDelay(l, s float64) float64 {
	r0 := p.DriverRes / s
	cw := p.WireCapPerMM * l
	rw := p.WireResPerMM * l
	return 0.69*r0*(s*p.DriverCap+cw) + 0.69*rw*s*p.DriverCap + 0.38*rw*cw
}

// Repeaters reports the number of repeaters an optimally repeated
// full-swing wire of the given length needs (0 when the wire is shorter
// than one optimal segment).
func (p Process) Repeaters(lengthMM float64) int {
	n := int(math.Ceil(lengthMM/p.OptimalRepeaterSpacingMM())) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// Signaling is one driver/receiver discipline over the process's wires.
type Signaling struct {
	Name string
	// SwingV is the signal amplitude on the wire.
	SwingV float64
	// VelocityMMPerS is the signal propagation velocity on an optimally
	// repeated wire.
	VelocityMMPerS float64
	// RepeaterSpacingMM is the optimum repeater spacing.
	RepeaterSpacingMM float64
	// EnergyPerBitMM is the switching energy per transported bit per mm,
	// E = c · Vswing · Vdd.
	EnergyPerBitMM float64
}

// FullSwing returns the conventional static CMOS signaling discipline: the
// conservative circuits §4.1 says unstructured wiring forces.
func FullSwing(p Process) Signaling {
	return Signaling{
		Name:              "full-swing",
		SwingV:            p.VDD,
		VelocityMMPerS:    1 / p.RepeatedDelayPerMM(),
		RepeaterSpacingMM: p.OptimalRepeaterSpacingMM(),
		EnergyPerBitMM:    p.WireCapPerMM * p.VDD * p.VDD,
	}
}

// LowSwing returns the pulsed low-swing discipline enabled by the
// structured, well-characterized wiring of an on-chip network (§4.1).
func LowSwing(p Process) Signaling {
	fs := FullSwing(p)
	return Signaling{
		Name:              "low-swing",
		SwingV:            p.LowSwingV,
		VelocityMMPerS:    fs.VelocityMMPerS * p.OverdriveVelocity,
		RepeaterSpacingMM: fs.RepeaterSpacingMM * p.OverdriveSpacing,
		EnergyPerBitMM:    p.WireCapPerMM * p.LowSwingV * p.VDD,
	}
}

// Delay is the time for a transition to traverse length mm, in seconds.
func (s Signaling) Delay(lengthMM float64) float64 {
	return lengthMM / s.VelocityMMPerS
}

// Energy is the switching energy to move bits over lengthMM, in joules.
func (s Signaling) Energy(bits int, lengthMM float64) float64 {
	return float64(bits) * lengthMM * s.EnergyPerBitMM
}

// Repeaters reports how many repeaters a wire of the given length needs
// under this discipline.
func (s Signaling) Repeaters(lengthMM float64) int {
	n := int(math.Ceil(lengthMM/s.RepeaterSpacingMM)) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// PowerRatio reports how much more energy per bit·mm the other discipline
// burns relative to s.
func (s Signaling) PowerRatio(other Signaling) float64 {
	return other.EnergyPerBitMM / s.EnergyPerBitMM
}

// BitsPerClock reports how many bits one wire can carry per clock cycle at
// the given core frequency, given the process's per-wire signalling rate.
// §3.3: "it is feasible to transmit 4Gb/s per wire. This translates to 2-20
// bits per clock cycle depending on whether the chip uses an aggressive
// (2GHz) or slow (200MHz) clock."
func (p Process) BitsPerClock(clockHz float64) float64 {
	return p.MaxWireRate / clockHz
}

// TracksPerLayerPerEdge reports the number of minimum-pitch wiring tracks
// crossing one tile edge on one metal layer. §3.1: "there can be up to
// 6,000 wires on each metal layer crossing each edge of a tile."
func (p Process) TracksPerLayerPerEdge() int {
	return int(p.TilePitchMM * 1000 / p.WirePitchUM)
}
