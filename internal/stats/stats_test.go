package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatalf("zero summary not zero: %v", s.String())
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Population sd of this classic set is 2; sample sd is sqrt(32/7).
	if !almostEqual(s.StdDev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("sd = %v, want %v", s.StdDev(), math.Sqrt(32.0/7.0))
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	a.AddN(3.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(3.5)
	}
	if a.Count() != b.Count() || !almostEqual(a.Mean(), b.Mean(), 1e-12) {
		t.Fatalf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

func TestSummaryMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var all, left, right Summary
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*3 + 10
		all.Add(v)
		if i%2 == 0 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	left.Merge(&right)
	if left.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", left.Count(), all.Count())
	}
	if !almostEqual(left.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v != %v", left.Mean(), all.Mean())
	}
	if !almostEqual(left.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged var %v != %v", left.Variance(), all.Variance())
	}
	if left.Min() != all.Min() || left.Max() != all.Max() {
		t.Errorf("merged min/max differ")
	}
}

func TestSummaryMergeIntoEmpty(t *testing.T) {
	var a, b Summary
	b.Add(1)
	b.Add(3)
	a.Merge(&b)
	if a.Count() != 2 || !almostEqual(a.Mean(), 2, 1e-12) {
		t.Fatalf("merge into empty: %v", a.String())
	}
	var c Summary
	b.Merge(&c) // merging empty is a no-op
	if b.Count() != 2 {
		t.Fatalf("merge of empty changed count: %d", b.Count())
	}
}

func TestSummaryCIShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var small, big Summary
	for i := 0; i < 100; i++ {
		small.Add(rng.Float64())
	}
	for i := 0; i < 10000; i++ {
		big.Add(rng.Float64())
	}
	if big.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink with samples: %v vs %v", big.CI95(), small.CI95())
	}
}

func TestHistQuantilesExact(t *testing.T) {
	h := NewHist(16)
	for v := int64(1); v <= 10; v++ {
		h.Add(v)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := h.Quantile(1.0); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
	if got := h.Quantile(0.0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := h.Mean(); !almostEqual(got, 5.5, 1e-12) {
		t.Errorf("mean = %v, want 5.5", got)
	}
}

func TestHistOverflowExact(t *testing.T) {
	h := NewHist(4)
	for _, v := range []int64{1, 2, 3, 100, 200} {
		h.Add(v)
	}
	if h.Max() != 200 {
		t.Errorf("max = %d, want 200", h.Max())
	}
	if got := h.Quantile(1.0); got != 200 {
		t.Errorf("p100 = %d, want 200", got)
	}
	if got := h.Quantile(0.8); got != 100 {
		t.Errorf("p80 = %d, want 100", got)
	}
	if !almostEqual(h.Mean(), 306.0/5.0, 1e-12) {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistNegativeClamped(t *testing.T) {
	h := NewHist(4)
	h.Add(-5)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample mishandled: %v", h.String())
	}
}

func TestHistReset(t *testing.T) {
	h := NewHist(4)
	h.Add(2)
	h.Add(9)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("reset incomplete: %v", h.String())
	}
}

// Property: for any sample set, Quantile is monotone in q and brackets
// min/max.
func TestHistQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHist(64)
		for _, v := range raw {
			h.Add(int64(v % 1000))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Quantile(1) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram mean equals the arithmetic mean of the samples.
func TestHistMeanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHist(8) // force plenty of overflow traffic
		var sum int64
		for _, v := range raw {
			h.Add(int64(v))
			sum += int64(v)
		}
		want := float64(sum) / float64(len(raw))
		return almostEqual(h.Mean(), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	if c.Rate() != 0 {
		t.Fatalf("zero counter rate = %v", c.Rate())
	}
	for i := 0; i < 10; i++ {
		c.Tick(int64(i % 2)) // 5 events in 10 cycles
	}
	if !almostEqual(c.Rate(), 0.5, 1e-12) {
		t.Errorf("rate = %v, want 0.5", c.Rate())
	}
	c.AddEvents(5)
	if !almostEqual(c.Rate(), 1.0, 1e-12) {
		t.Errorf("rate after AddEvents = %v, want 1.0", c.Rate())
	}
	c.Reset()
	if c.Events() != 0 || c.Cycles() != 0 {
		t.Errorf("reset incomplete")
	}
}

// TestHistZeroSamples pins the zero-sample contract the live observability
// exporters rely on: a fresh histogram answers 0 for every figure rather
// than panicking or dividing by zero, so a snapshot taken before any
// packet has been delivered renders cleanly.
func TestHistZeroSamples(t *testing.T) {
	h := NewHist(8)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("zero-sample Quantile(0.5) = %d, want 0", got)
	}
	if got := h.Quantile(1.0); got != 0 {
		t.Errorf("zero-sample Quantile(1.0) = %d, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("zero-sample Mean = %v, want 0", got)
	}
	if got := h.Sum(); got != 0 {
		t.Errorf("zero-sample Sum = %d, want 0", got)
	}
}

// TestHistAllOverflowQuantiles drives every sample into the overflow
// bucket and checks the quantiles are still exact — the overflow list, not
// the bucket array, must answer.
func TestHistAllOverflowQuantiles(t *testing.T) {
	h := NewHist(4)
	for _, v := range []int64{500, 100, 300, 200, 400} {
		h.Add(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.2, 100}, {0.4, 200}, {0.5, 300}, {0.6, 300}, {0.8, 400}, {1.0, 500},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("all-overflow Quantile(%g) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := h.Sum(); got != 1500 {
		t.Errorf("Sum = %d, want 1500", got)
	}
}

// TestHistSumTracksAdds checks Sum across in-range, overflow, and clamped
// negative samples.
func TestHistSumTracksAdds(t *testing.T) {
	h := NewHist(4)
	h.Add(2)
	h.Add(3)
	h.Add(100) // overflow
	h.Add(-7)  // clamped to 0
	if got := h.Sum(); got != 105 {
		t.Errorf("Sum = %d, want 105", got)
	}
	if want := 105.0 / 4.0; !almostEqual(h.Mean(), want, 1e-12) {
		t.Errorf("Mean = %v, want %v", h.Mean(), want)
	}
}

// TestHistBoundaryValueLandsInOverflow pins where the bound itself goes:
// NewHist(bound) has exact buckets for [0, bound), so a sample equal to
// bound is overflow and must still quantile exactly.
func TestHistBoundaryValueLandsInOverflow(t *testing.T) {
	h := NewHist(4)
	h.Add(3) // last exact bucket
	h.Add(4) // first overflow value
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %d, want 3", got)
	}
	if got := h.Quantile(1.0); got != 4 {
		t.Errorf("Quantile(1.0) = %d, want 4", got)
	}
	if got := h.Max(); got != 4 {
		t.Errorf("Max = %d, want 4", got)
	}
}

// TestHistOverflowedFlag is the regression gate for the overflow
// surface: the flag is off while every sample fits the exact buckets,
// flips on the first boundary-value sample, quantiles at the boundary
// stay exact (the documented contract: overflow values are retained
// individually, never clamped), and Reset clears the flag.
func TestHistOverflowedFlag(t *testing.T) {
	h := NewHist(8)
	for v := int64(0); v < 8; v++ {
		h.Add(v)
	}
	if h.Overflowed() {
		t.Fatal("Overflowed() true with every sample inside the bound")
	}
	h.Add(8) // exactly the bound: first overflow value
	if !h.Overflowed() {
		t.Fatal("Overflowed() false after a boundary-value sample")
	}
	if got := h.Quantile(1.0); got != 8 {
		t.Errorf("Quantile(1.0) = %d, want exact 8", got)
	}
	h.Add(1 << 30)
	if got := h.Quantile(1.0); got != 1<<30 {
		t.Errorf("Quantile(1.0) = %d, want exact 2^30", got)
	}
	// The overflow rank walk still interpolates between retained values:
	// rank 9 of 10 is the smaller overflow value, not the maximum.
	if got := h.Quantile(0.9); got != 8 {
		t.Errorf("Quantile(0.9) = %d, want 8 (first overflow rank)", got)
	}
	h.Reset()
	if h.Overflowed() {
		t.Error("Overflowed() survives Reset")
	}
	if h.Count() != 0 {
		t.Errorf("Count() = %d after Reset", h.Count())
	}
}
