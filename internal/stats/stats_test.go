package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatalf("zero summary not zero: %v", s.String())
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Population sd of this classic set is 2; sample sd is sqrt(32/7).
	if !almostEqual(s.StdDev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("sd = %v, want %v", s.StdDev(), math.Sqrt(32.0/7.0))
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	a.AddN(3.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(3.5)
	}
	if a.Count() != b.Count() || !almostEqual(a.Mean(), b.Mean(), 1e-12) {
		t.Fatalf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

func TestSummaryMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var all, left, right Summary
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*3 + 10
		all.Add(v)
		if i%2 == 0 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	left.Merge(&right)
	if left.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", left.Count(), all.Count())
	}
	if !almostEqual(left.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v != %v", left.Mean(), all.Mean())
	}
	if !almostEqual(left.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged var %v != %v", left.Variance(), all.Variance())
	}
	if left.Min() != all.Min() || left.Max() != all.Max() {
		t.Errorf("merged min/max differ")
	}
}

func TestSummaryMergeIntoEmpty(t *testing.T) {
	var a, b Summary
	b.Add(1)
	b.Add(3)
	a.Merge(&b)
	if a.Count() != 2 || !almostEqual(a.Mean(), 2, 1e-12) {
		t.Fatalf("merge into empty: %v", a.String())
	}
	var c Summary
	b.Merge(&c) // merging empty is a no-op
	if b.Count() != 2 {
		t.Fatalf("merge of empty changed count: %d", b.Count())
	}
}

func TestSummaryCIShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var small, big Summary
	for i := 0; i < 100; i++ {
		small.Add(rng.Float64())
	}
	for i := 0; i < 10000; i++ {
		big.Add(rng.Float64())
	}
	if big.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink with samples: %v vs %v", big.CI95(), small.CI95())
	}
}

func TestHistQuantilesExact(t *testing.T) {
	h := NewHist(16)
	for v := int64(1); v <= 10; v++ {
		h.Add(v)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := h.Quantile(1.0); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
	if got := h.Quantile(0.0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := h.Mean(); !almostEqual(got, 5.5, 1e-12) {
		t.Errorf("mean = %v, want 5.5", got)
	}
}

func TestHistOverflowExact(t *testing.T) {
	h := NewHist(4)
	for _, v := range []int64{1, 2, 3, 100, 200} {
		h.Add(v)
	}
	if h.Max() != 200 {
		t.Errorf("max = %d, want 200", h.Max())
	}
	if got := h.Quantile(1.0); got != 200 {
		t.Errorf("p100 = %d, want 200", got)
	}
	if got := h.Quantile(0.8); got != 100 {
		t.Errorf("p80 = %d, want 100", got)
	}
	if !almostEqual(h.Mean(), 306.0/5.0, 1e-12) {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistNegativeClamped(t *testing.T) {
	h := NewHist(4)
	h.Add(-5)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample mishandled: %v", h.String())
	}
}

func TestHistReset(t *testing.T) {
	h := NewHist(4)
	h.Add(2)
	h.Add(9)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("reset incomplete: %v", h.String())
	}
}

// Property: for any sample set, Quantile is monotone in q and brackets
// min/max.
func TestHistQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHist(64)
		for _, v := range raw {
			h.Add(int64(v % 1000))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Quantile(1) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram mean equals the arithmetic mean of the samples.
func TestHistMeanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHist(8) // force plenty of overflow traffic
		var sum int64
		for _, v := range raw {
			h.Add(int64(v))
			sum += int64(v)
		}
		want := float64(sum) / float64(len(raw))
		return almostEqual(h.Mean(), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	if c.Rate() != 0 {
		t.Fatalf("zero counter rate = %v", c.Rate())
	}
	for i := 0; i < 10; i++ {
		c.Tick(int64(i % 2)) // 5 events in 10 cycles
	}
	if !almostEqual(c.Rate(), 0.5, 1e-12) {
		t.Errorf("rate = %v, want 0.5", c.Rate())
	}
	c.AddEvents(5)
	if !almostEqual(c.Rate(), 1.0, 1e-12) {
		t.Errorf("rate after AddEvents = %v, want 1.0", c.Rate())
	}
	c.Reset()
	if c.Events() != 0 || c.Cycles() != 0 {
		t.Errorf("reset incomplete")
	}
}
