package stats

import "repro/internal/checkpoint"

// The measurement primitives keep their accumulators unexported, so their
// checkpoint serialisation lives here, in-package. Each SaveState/
// RestoreState pair writes every field that influences any exported
// figure; restore errors surface through the decoder's sticky error.

// SaveState serialises the summary.
func (s *Summary) SaveState(e *checkpoint.Encoder) {
	e.I64(s.n)
	e.F64(s.mean)
	e.F64(s.m2)
	e.F64(s.min)
	e.F64(s.max)
}

// RestoreState restores a summary saved with SaveState.
func (s *Summary) RestoreState(d *checkpoint.Decoder) {
	s.n = d.I64()
	s.mean = d.F64()
	s.m2 = d.F64()
	s.min = d.F64()
	s.max = d.F64()
}

// SaveState serialises the histogram, including its bucket bound so the
// restored histogram bins identically.
func (h *Hist) SaveState(e *checkpoint.Encoder) {
	e.I64s(h.buckets)
	e.I64s(h.overflow)
	e.I64(h.n)
	e.I64(h.sum)
}

// RestoreState restores a histogram saved with SaveState, replacing the
// receiver's buckets (and hence its bound).
func (h *Hist) RestoreState(d *checkpoint.Decoder) {
	h.buckets = d.I64s()
	h.overflow = d.I64s()
	h.n = d.I64()
	h.sum = d.I64()
}

// SaveState serialises the counter.
func (c *Counter) SaveState(e *checkpoint.Encoder) {
	e.I64(c.events)
	e.I64(c.cycles)
}

// RestoreState restores a counter saved with SaveState.
func (c *Counter) RestoreState(d *checkpoint.Decoder) {
	c.events = d.I64()
	c.cycles = d.I64()
}
