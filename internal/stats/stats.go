// Package stats provides the measurement primitives used throughout the
// simulator: streaming summaries, integer histograms with quantiles, rate
// counters, and simple confidence intervals.
//
// All types are plain values with deterministic behaviour; none of them
// allocate per-sample after construction, so they are safe to use in the
// inner loop of a cycle-accurate simulation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 samples using Welford's online
// algorithm. The zero value is ready to use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN records the same sample value n times.
func (s *Summary) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		s.Add(x)
	}
}

// Count reports the number of samples recorded.
func (s *Summary) Count() int64 { return s.n }

// Mean reports the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Min reports the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// Variance reports the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr reports the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 reports the half-width of a normal-approximation 95% confidence
// interval around the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Merge folds the samples summarised by other into s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	mean := s.mean + d*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Reset discards all samples.
func (s *Summary) Reset() { *s = Summary{} }

// String formats the summary for reports.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Hist is a histogram over non-negative integer samples (cycle counts,
// hop counts, queue depths). Samples beyond the configured bound land in
// an overflow bucket that still contributes exactly to mean and quantiles
// via a recorded list of overflow values.
type Hist struct {
	buckets  []int64
	overflow []int64 // exact values >= len(buckets)
	n        int64
	sum      int64
}

// NewHist returns a histogram with exact buckets for values in [0, bound).
func NewHist(bound int) *Hist {
	if bound < 1 {
		bound = 1
	}
	return &Hist{buckets: make([]int64, bound)}
}

// Add records one integer sample. Negative samples are clamped to 0.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.n++
	h.sum += v
	if v < int64(len(h.buckets)) {
		h.buckets[v]++
	} else {
		h.overflow = append(h.overflow, v)
	}
}

// Count reports the number of samples.
func (h *Hist) Count() int64 { return h.n }

// Mean reports the sample mean.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Sum reports the total of all recorded samples, for exporters that need
// a cumulative figure (the Prometheus summary's _sum).
func (h *Hist) Sum() int64 { return h.sum }

// Max reports the largest recorded sample.
func (h *Hist) Max() int64 {
	if len(h.overflow) > 0 {
		m := h.overflow[0]
		for _, v := range h.overflow {
			if v > m {
				m = v
			}
		}
		return m
	}
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i] > 0 {
			return int64(i)
		}
	}
	return 0
}

// Overflowed reports whether any sample landed at or beyond the exact
// bucket bound. Quantiles stay exact either way — overflow values are
// retained individually — but exporters surface the flag so a
// distribution whose tail escaped the configured bound is never
// mistaken for one that stayed inside it.
func (h *Hist) Overflowed() bool { return len(h.overflow) > 0 }

// Quantile reports the q-quantile (0 <= q <= 1) of the recorded samples.
// It is exact: overflow samples are retained individually.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return int64(i)
		}
	}
	// The rank falls inside the overflow values.
	ov := append([]int64(nil), h.overflow...)
	sort.Slice(ov, func(i, j int) bool { return ov[i] < ov[j] })
	idx := rank - seen - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= int64(len(ov)) {
		idx = int64(len(ov)) - 1
	}
	return ov[idx]
}

// Median is Quantile(0.5).
func (h *Hist) Median() int64 { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Hist) P99() int64 { return h.Quantile(0.99) }

// Reset discards all samples but keeps the bucket bound.
func (h *Hist) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.overflow = h.overflow[:0]
	h.n, h.sum = 0, 0
}

// String formats the histogram headline numbers.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%d p99=%d max=%d",
		h.n, h.Mean(), h.Median(), h.P99(), h.Max())
}

// Counter tracks an event count over a known number of cycles, yielding a
// rate. It is the building block for utilization and throughput metrics.
type Counter struct {
	events int64
	cycles int64
}

// Tick advances the observation window by one cycle, recording n events.
func (c *Counter) Tick(n int64) {
	c.cycles++
	c.events += n
}

// AddEvents records events without advancing the window.
func (c *Counter) AddEvents(n int64) { c.events += n }

// AddCycles advances the window by n cycles without events.
func (c *Counter) AddCycles(n int64) { c.cycles += n }

// Events reports the total event count.
func (c *Counter) Events() int64 { return c.events }

// Cycles reports the window length.
func (c *Counter) Cycles() int64 { return c.cycles }

// Rate reports events per cycle.
func (c *Counter) Rate() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.events) / float64(c.cycles)
}

// Reset discards the window.
func (c *Counter) Reset() { *c = Counter{} }
