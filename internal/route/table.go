package route

// Table is an immutable all-pairs source-route table over a geometry:
// every fault-free (src, dst) route, precomputed once. Routes are a pure
// function of the geometry (Radix, Wrap), so one table can be shared
// read-only across every network of the same shape — concurrent sweep
// points, forked campaign replicas, and daemon sessions — replacing the
// per-network lazily filled route cache with a single build.
type Table struct {
	tiles int
	words []Word // tiles×tiles, row = src
	ok    []bool // pair has a valid route (src == dst does not)
}

// BuildTable computes the full route table for a geometry with the given
// tile count. Unroutable pairs (src == dst, or geometry errors) are
// recorded as misses; Lookup reports them absent and the caller falls
// back to its per-pair path.
func BuildTable(g Geometry, tiles int) *Table {
	t := &Table{
		tiles: tiles,
		words: make([]Word, tiles*tiles),
		ok:    make([]bool, tiles*tiles),
	}
	for src := 0; src < tiles; src++ {
		row := src * tiles
		for dst := 0; dst < tiles; dst++ {
			if src == dst {
				continue
			}
			w, err := Compute(g, src, dst)
			if err != nil {
				continue
			}
			t.words[row+dst] = w
			t.ok[row+dst] = true
		}
	}
	return t
}

// Tiles reports the tile count the table was built for.
func (t *Table) Tiles() int { return t.tiles }

// Lookup returns the precomputed route from src to dst. ok is false for
// pairs outside the table or without a fault-free route.
func (t *Table) Lookup(src, dst int) (Word, bool) {
	if src < 0 || dst < 0 || src >= t.tiles || dst >= t.tiles {
		return Word{}, false
	}
	i := src*t.tiles + dst
	return t.words[i], t.ok[i]
}
