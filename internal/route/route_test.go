package route

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirAlgebra(t *testing.T) {
	for _, d := range []Dir{North, East, South, West} {
		if d.Opposite().Opposite() != d {
			t.Errorf("%v: opposite not involutive", d)
		}
		if d.Left().Right() != d {
			t.Errorf("%v: left then right != identity", d)
		}
		if d.Left().Left() != d.Opposite() {
			t.Errorf("%v: two lefts != opposite", d)
		}
		if d.Right().Right() != d.Opposite() {
			t.Errorf("%v: two rights != opposite", d)
		}
	}
	if Local.Opposite() != Local {
		t.Error("Local opposite")
	}
}

func TestDirDelta(t *testing.T) {
	sumX, sumY := 0, 0
	for _, d := range []Dir{North, East, South, West} {
		dx, dy := d.Delta()
		if dx == 0 && dy == 0 {
			t.Errorf("%v has zero delta", d)
		}
		sumX += dx
		sumY += dy
	}
	if sumX != 0 || sumY != 0 {
		t.Error("direction deltas do not cancel")
	}
}

func TestAbsDirRoundTrip(t *testing.T) {
	for _, d := range []Dir{North, East, South, West} {
		c, err := absCode(d)
		if err != nil {
			t.Fatalf("absCode(%v): %v", d, err)
		}
		if AbsDir(c) != d {
			t.Errorf("AbsDir(absCode(%v)) = %v", d, AbsDir(c))
		}
	}
	if _, err := absCode(Local); err == nil {
		t.Error("absCode(Local) did not fail")
	}
}

func TestTurnCodeRoundTrip(t *testing.T) {
	for _, h := range []Dir{North, East, South, West} {
		for _, c := range []Code{Straight, Left, Right} {
			next := Turn(h, c)
			got, err := turnCode(h, next)
			if err != nil {
				t.Fatalf("turnCode(%v,%v): %v", h, next, err)
			}
			if got != c {
				t.Errorf("turnCode(%v, Turn(%v,%v)) = %v", h, h, c, got)
			}
		}
		if Turn(h, Extract) != Local {
			t.Errorf("Turn(%v, Extract) != Local", h)
		}
		if _, err := turnCode(h, h.Opposite()); err == nil {
			t.Errorf("U-turn %v encoded without error", h)
		}
	}
}

func TestWordPushPop(t *testing.T) {
	var w Word
	var err error
	codes := []Code{Left, Straight, Right, Extract}
	for _, c := range codes {
		if w, err = w.Push(c); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 4 {
		t.Fatalf("len = %d", w.Len())
	}
	for i, want := range codes {
		if w.Peek() != want {
			t.Errorf("peek %d = %v, want %v", i, w.Peek(), want)
		}
		var c Code
		c, w = w.Pop()
		if c != want {
			t.Errorf("pop %d = %v, want %v", i, c, want)
		}
	}
	if !w.Empty() {
		t.Error("word not empty after pops")
	}
	// Popping an empty word reads as Extract (fail-safe delivery).
	c, _ := w.Pop()
	if c != Extract {
		t.Errorf("empty pop = %v, want Extract", c)
	}
}

func TestWordOverflow(t *testing.T) {
	var w Word
	var err error
	for i := 0; i < MaxSteps; i++ {
		if w, err = w.Push(Straight); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if _, err = w.Push(Straight); err == nil {
		t.Fatal("overflow push did not fail")
	}
}

func TestBits16(t *testing.T) {
	var w Word
	for i := 0; i < PaperSteps; i++ {
		w, _ = w.Push(Right)
	}
	bits, ok := w.Bits16()
	if !ok || !w.FitsPaperField() {
		t.Fatal("8-step route should fit the 16-bit field")
	}
	if bits != 0xAAAA { // Right = 0b10 in every slot
		t.Fatalf("bits = %04x, want aaaa", bits)
	}
	w, _ = w.Push(Straight)
	if _, ok := w.Bits16(); ok {
		t.Fatal("9-step route reported as fitting 16 bits")
	}
}

func TestEncodeWalkSimple(t *testing.T) {
	path := []Dir{East, East, North}
	w, err := Encode(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 4 { // abs + turn + turn + extract
		t.Fatalf("len = %d, want 4", w.Len())
	}
	got, err := Walk(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(path) {
		t.Fatalf("walk = %v, want %v", got, path)
	}
	for i := range path {
		if got[i] != path[i] {
			t.Fatalf("walk = %v, want %v", got, path)
		}
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("empty path encoded")
	}
	if _, err := Encode([]Dir{East, West}); err == nil {
		t.Error("U-turn path encoded")
	}
	if _, err := Encode([]Dir{East, Local, East}); err == nil {
		t.Error("Local inside path encoded")
	}
}

func TestWalkUnterminated(t *testing.T) {
	var w Word
	w, _ = w.Push(Straight) // absolute north, then nothing
	if _, err := Walk(w); err == nil {
		t.Error("unterminated route walked without error")
	}
}

type fakeGeom struct {
	kx, ky int
	wrap   bool
}

func (g fakeGeom) Radix() (int, int) { return g.kx, g.ky }
func (g fakeGeom) Wrap() bool        { return g.wrap }

func applyPath(sx, sy int, path []Dir, g fakeGeom) (int, int) {
	for _, d := range path {
		dx, dy := d.Delta()
		sx += dx
		sy += dy
		if g.wrap {
			sx = ((sx % g.kx) + g.kx) % g.kx
			sy = ((sy % g.ky) + g.ky) % g.ky
		}
	}
	return sx, sy
}

func TestDimensionOrderMesh(t *testing.T) {
	g := fakeGeom{4, 4, false}
	path := DimensionOrder(g, 0, 0, 3, 2)
	if len(path) != 5 {
		t.Fatalf("path len = %d, want 5", len(path))
	}
	// X first, then Y.
	for i, d := range path {
		if i < 3 && d != East {
			t.Fatalf("step %d = %v, want E (x-first)", i, d)
		}
		if i >= 3 && d != North {
			t.Fatalf("step %d = %v, want N", i, d)
		}
	}
	if x, y := applyPath(0, 0, path, g); x != 3 || y != 2 {
		t.Fatalf("path ends at (%d,%d)", x, y)
	}
}

func TestDimensionOrderTorusShortWay(t *testing.T) {
	g := fakeGeom{4, 4, true}
	// 0 -> 3 on a radix-4 ring is one hop west, not three east.
	path := DimensionOrder(g, 0, 0, 3, 0)
	if len(path) != 1 || path[0] != West {
		t.Fatalf("path = %v, want [W]", path)
	}
	// Exact ties (distance 2 on a radix-4 ring) split by endpoint parity,
	// so both directions carry tie traffic.
	path = DimensionOrder(g, 0, 0, 2, 0) // parity even -> positive
	if len(path) != 2 || path[0] != East {
		t.Fatalf("tie path = %v, want [E E]", path)
	}
	path = DimensionOrder(g, 1, 0, 3, 0) // parity even -> positive
	if len(path) != 2 || path[0] != East {
		t.Fatalf("tie path = %v, want [E E]", path)
	}
	path = DimensionOrder(g, 0, 1, 2, 0) // parity odd -> negative
	if len(path) < 2 || path[0] != West {
		t.Fatalf("odd-parity tie path = %v, want westward", path)
	}
}

func TestComputeRejectsLoopback(t *testing.T) {
	if _, err := Compute(fakeGeom{4, 4, true}, 5, 5); err == nil {
		t.Error("loopback route computed")
	}
}

// Property: for random geometries and tile pairs, the encoded route walks
// from src to dst and fits the paper's 16-bit field on a 4x4 network.
func TestComputeWalkProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		g := fakeGeom{kx: 3 + rng.Intn(4), ky: 3 + rng.Intn(4), wrap: rng.Intn(2) == 0}
		n := g.kx * g.ky
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			continue
		}
		w, err := Compute(g, src, dst)
		if err != nil {
			t.Fatalf("%+v %d->%d: %v", g, src, dst, err)
		}
		path, err := Walk(w)
		if err != nil {
			t.Fatalf("walk: %v", err)
		}
		x, y := applyPath(src%g.kx, src/g.kx, path, g)
		if !g.wrap {
			// The mesh walk must also stay in bounds; applyPath does not
			// clamp, so recheck by replaying with bounds.
			cx, cy := src%g.kx, src/g.kx
			for _, d := range path {
				dx, dy := d.Delta()
				cx += dx
				cy += dy
				if cx < 0 || cx >= g.kx || cy < 0 || cy >= g.ky {
					t.Fatalf("mesh path leaves grid: %+v %d->%d %v", g, src, dst, path)
				}
			}
		}
		if got := y*g.kx + x; got != dst {
			t.Fatalf("%+v route %d->%d arrived at %d", g, src, dst, got)
		}
		if g.kx == 4 && g.ky == 4 && !w.FitsPaperField() {
			t.Fatalf("4x4 route %d->%d needs %d steps, exceeds 16-bit field", src, dst, w.Len())
		}
	}
}

// Property: Word push/pop behaves as a FIFO queue of 2-bit codes.
func TestWordFIFOProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > MaxSteps {
			raw = raw[:MaxSteps]
		}
		var w Word
		var err error
		for _, b := range raw {
			if w, err = w.Push(Code(b % 4)); err != nil {
				return false
			}
		}
		for _, b := range raw {
			var c Code
			c, w = w.Pop()
			if c != Code(b%4) {
				return false
			}
		}
		return w.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWordString(t *testing.T) {
	var w Word
	w, _ = w.Push(Left)
	w, _ = w.Push(Extract)
	if got := w.String(); got != "[lx]" {
		t.Fatalf("String = %q", got)
	}
	if got := len(w.Codes()); got != 2 {
		t.Fatalf("Codes len = %d", got)
	}
}

// TestComputeMatchesEncodedDimensionOrder pins the direct Word emission in
// Compute against the reference Encode(DimensionOrder(...)) construction,
// exhaustively over every (src, dst) pair on mesh and torus grids of
// several radices (including odd and rectangular ones, which exercise the
// wrap normalization and the half-ring parity tie-break).
func TestComputeMatchesEncodedDimensionOrder(t *testing.T) {
	grids := []fakeGeom{
		{4, 4, false}, {4, 4, true},
		{5, 5, true}, {8, 8, true},
		{3, 6, true}, {6, 3, false},
		{2, 2, true},
	}
	for _, g := range grids {
		tiles := g.kx * g.ky
		for src := 0; src < tiles; src++ {
			for dst := 0; dst < tiles; dst++ {
				if src == dst {
					continue
				}
				got, err := Compute(g, src, dst)
				if err != nil {
					t.Fatalf("%+v: Compute(%d,%d): %v", g, src, dst, err)
				}
				path := DimensionOrder(g, src%g.kx, src/g.kx, dst%g.kx, dst/g.kx)
				want, err := Encode(path)
				if err != nil {
					t.Fatalf("%+v: Encode(%d,%d): %v", g, src, dst, err)
				}
				if got != want {
					t.Fatalf("%+v: Compute(%d,%d) = %v, want %v (path %v)",
						g, src, dst, got, want, path)
				}
			}
		}
	}
}

// TestComputeAllocFree is the alloc gate for the route encoder: Compute is
// on the Port.Send hot path (every cold route-cache row), so it must not
// allocate at all.
func TestComputeAllocFree(t *testing.T) {
	// Convert to the interface once, outside the measured loop, the way
	// real callers hold a topology.Topology; otherwise the measurement
	// counts the test's own boxing of the fake geometry value.
	var g Geometry = fakeGeom{8, 8, true}
	pair := 0
	allocs := testing.AllocsPerRun(1000, func() {
		src := pair % 64
		dst := (pair*31 + 17) % 64
		if dst == src {
			dst = (dst + 1) % 64
		}
		pair++
		if _, err := Compute(g, src, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Compute allocates %.1f objects/op, want 0", allocs)
	}
}
