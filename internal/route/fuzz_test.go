package route

import "testing"

// FuzzWordPushPop fuzzes the packed route word: any sequence of pushed
// codes must pop back identically and never corrupt neighbouring entries.
func FuzzWordPushPop(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 3, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > MaxSteps {
			raw = raw[:MaxSteps]
		}
		var w Word
		var err error
		for _, b := range raw {
			if w, err = w.Push(Code(b % 4)); err != nil {
				t.Fatalf("push: %v", err)
			}
		}
		if w.Len() != len(raw) {
			t.Fatalf("len = %d, want %d", w.Len(), len(raw))
		}
		for i, b := range raw {
			var c Code
			c, w = w.Pop()
			if c != Code(b%4) {
				t.Fatalf("pop %d = %v, want %v", i, c, Code(b%4))
			}
		}
		if !w.Empty() {
			t.Fatal("word not empty")
		}
	})
}

// FuzzDimensionOrder fuzzes path computation: paths must terminate at the
// destination, never exceed the diameter, and encode/walk losslessly.
func FuzzDimensionOrder(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(0), uint8(15), true)
	f.Add(uint8(5), uint8(3), uint8(7), uint8(2), false)
	f.Fuzz(func(t *testing.T, kxr, kyr, srcR, dstR uint8, wrap bool) {
		kx := 3 + int(kxr)%6
		ky := 3 + int(kyr)%6
		n := kx * ky
		src, dst := int(srcR)%n, int(dstR)%n
		g := fakeGeom{kx: kx, ky: ky, wrap: wrap}
		path := DimensionOrder(g, src%kx, src/kx, dst%kx, dst/kx)
		if src == dst {
			if len(path) != 0 {
				t.Fatalf("self path = %v", path)
			}
			return
		}
		if len(path) > kx+ky {
			t.Fatalf("path longer than diameter: %d", len(path))
		}
		x, y := applyPath(src%kx, src/kx, path, g)
		if y*kx+x != dst {
			t.Fatalf("path %v from %d ends at %d, want %d", path, src, y*kx+x, dst)
		}
		w, err := Encode(path)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		dirs, err := Walk(w)
		if err != nil {
			t.Fatalf("walk: %v", err)
		}
		if len(dirs) != len(path) {
			t.Fatalf("walk %v != path %v", dirs, path)
		}
	})
}
