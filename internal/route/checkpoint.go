package route

import "repro/internal/checkpoint"

// SaveState serialises the packed route word.
func (w Word) SaveState(e *checkpoint.Encoder) {
	e.U64(w.bits)
	e.U8(w.n)
}

// RestoreWord reads a route word saved with SaveState.
func RestoreWord(d *checkpoint.Decoder) Word {
	bits := d.U64()
	n := d.U8()
	if n > MaxSteps {
		n = MaxSteps
	}
	return Word{bits: bits, n: n}
}
