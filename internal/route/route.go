// Package route implements the source-routing scheme of Section 2.1 of the
// paper: a route is a string of 2-bit steps, one consumed per hop, each
// selecting left, right, straight, or extract relative to the flit's
// direction of travel.
//
// The first step of a route is consumed by the injection (tile) input
// controller, where there is no direction of travel yet; there the 2-bit
// code names an absolute direction (north, east, south, west). Subsequent
// steps are relative turns, which is why 2 bits suffice even though a router
// has five output ports: a flit never makes a U-turn, so from any through
// direction only four outputs (three turns plus extract) are reachable.
//
// The paper packs routes into a 16-bit field (8 steps), enough for any
// dimension-ordered route on the 16-tile example network. Word stores up to
// 32 steps so the same code drives larger research configurations; Bits16
// reports the packed 16-bit field and whether the route honours the paper's
// budget.
package route

import (
	"fmt"
	"strings"
)

// Dir is a compass direction of travel (or the local tile port).
type Dir uint8

// Directions. The coordinate convention is x increasing east and y
// increasing north; tile id = y*width + x.
const (
	North Dir = iota
	East
	South
	West
	Local
)

// NumDirs is the number of compass directions.
const NumDirs = 4

// String names the direction.
func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Opposite returns the reverse direction. Local is its own opposite.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

// Left returns the direction after a left turn while heading d.
func (d Dir) Left() Dir {
	switch d {
	case North:
		return West
	case West:
		return South
	case South:
		return East
	case East:
		return North
	}
	return Local
}

// Right returns the direction after a right turn while heading d.
func (d Dir) Right() Dir { return d.Left().Opposite() }

// Delta reports the coordinate step of the direction.
func (d Dir) Delta() (dx, dy int) {
	switch d {
	case North:
		return 0, 1
	case South:
		return 0, -1
	case East:
		return 1, 0
	case West:
		return -1, 0
	}
	return 0, 0
}

// Code is one 2-bit route step.
type Code uint8

// Route step codes. At a through input they read as turns; at the injection
// input they read as absolute directions via AbsDir.
const (
	Straight Code = iota
	Left
	Right
	Extract
)

// String names the code.
func (c Code) String() string {
	switch c {
	case Straight:
		return "s"
	case Left:
		return "l"
	case Right:
		return "r"
	case Extract:
		return "x"
	}
	return fmt.Sprintf("Code(%d)", uint8(c))
}

// AbsDir interprets a code consumed at the injection input as an absolute
// direction: the four code points are reused to name north, east, south,
// and west.
func AbsDir(c Code) Dir {
	switch c {
	case Straight:
		return North
	case Left:
		return East
	case Right:
		return South
	case Extract:
		return West
	}
	return Local
}

// absCode is the inverse of AbsDir.
func absCode(d Dir) (Code, error) {
	switch d {
	case North:
		return Straight, nil
	case East:
		return Left, nil
	case South:
		return Right, nil
	case West:
		return Extract, nil
	}
	return 0, fmt.Errorf("route: no absolute code for direction %v", d)
}

// Turn applies a turn code to a heading and returns the output direction.
// Extract returns Local.
func Turn(heading Dir, c Code) Dir {
	switch c {
	case Straight:
		return heading
	case Left:
		return heading.Left()
	case Right:
		return heading.Right()
	}
	return Local
}

// turnCode finds the code that turns heading into next.
func turnCode(heading, next Dir) (Code, error) {
	switch next {
	case heading:
		return Straight, nil
	case heading.Left():
		return Left, nil
	case heading.Right():
		return Right, nil
	case Local:
		return Extract, nil
	}
	return 0, fmt.Errorf("route: illegal turn %v -> %v (U-turn?)", heading, next)
}

// MaxSteps is the capacity of a Word in 2-bit steps.
const MaxSteps = 32

// PaperSteps is the step capacity of the paper's 16-bit route field.
const PaperSteps = 8

// Word is a packed source route: up to MaxSteps 2-bit codes, consumed
// low-order first, one per hop. The zero Word is the empty route.
type Word struct {
	bits uint64
	n    uint8
}

// Len reports the number of remaining steps.
func (w Word) Len() int { return int(w.n) }

// Empty reports whether no steps remain.
func (w Word) Empty() bool { return w.n == 0 }

// Push appends a step to the end of the route.
func (w Word) Push(c Code) (Word, error) {
	if w.n >= MaxSteps {
		return w, fmt.Errorf("route: word overflow beyond %d steps", MaxSteps)
	}
	w.bits |= uint64(c&3) << (2 * uint(w.n))
	w.n++
	return w, nil
}

// Pop consumes the next step, as a router input controller does when a head
// flit arrives: it strips the low 2 bits and shifts the field.
func (w Word) Pop() (Code, Word) {
	if w.n == 0 {
		// An exhausted route reads as Extract: a malformed packet is
		// delivered to whatever tile it has reached rather than looping.
		return Extract, w
	}
	c := Code(w.bits & 3)
	w.bits >>= 2
	w.n--
	return c, w
}

// Peek reports the next step without consuming it.
func (w Word) Peek() Code {
	c, _ := w.Pop()
	return c
}

// Bits16 reports the route packed into the paper's 16-bit field and whether
// it fits (at most PaperSteps steps).
func (w Word) Bits16() (uint16, bool) {
	return uint16(w.bits & 0xFFFF), w.n <= PaperSteps
}

// FitsPaperField reports whether the route fits the 16-bit route field of
// the paper's flit format.
func (w Word) FitsPaperField() bool { return w.n <= PaperSteps }

// String renders the remaining steps in consumption order.
func (w Word) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	cur := w
	for !cur.Empty() {
		var c Code
		c, cur = cur.Pop()
		sb.WriteString(c.String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// Codes expands the remaining steps into a slice, in consumption order.
func (w Word) Codes() []Code {
	out := make([]Code, 0, w.Len())
	cur := w
	for !cur.Empty() {
		var c Code
		c, cur = cur.Pop()
		out = append(out, c)
	}
	return out
}

// Encode converts a path of absolute hop directions (ending at the
// destination router, which then extracts) into a route word. The path must
// be non-empty and free of U-turns. The emitted word is:
//
//	absolute(first hop), turn(hop1->hop2), ..., Extract
func Encode(path []Dir) (Word, error) {
	var w Word
	if len(path) == 0 {
		return w, fmt.Errorf("route: empty path (loopback is handled at the port)")
	}
	c, err := absCode(path[0])
	if err != nil {
		return w, err
	}
	if w, err = w.Push(c); err != nil {
		return w, err
	}
	for i := 1; i < len(path); i++ {
		tc, err := turnCode(path[i-1], path[i])
		if err != nil {
			return w, err
		}
		if tc == Extract {
			return w, fmt.Errorf("route: Local direction inside path at step %d", i)
		}
		if w, err = w.Push(tc); err != nil {
			return w, err
		}
	}
	return w.Push(Extract)
}

// Walk replays a route word from a source coordinate, returning the absolute
// directions taken. It is the software model of what the chain of input
// controllers does in hardware, used by tests and by the reservation
// scheduler.
func Walk(w Word) ([]Dir, error) {
	var dirs []Dir
	heading := Local
	first := true
	for !w.Empty() {
		var c Code
		c, w = w.Pop()
		if first {
			heading = AbsDir(c)
			dirs = append(dirs, heading)
			first = false
			continue
		}
		next := Turn(heading, c)
		if next == Local {
			return dirs, nil
		}
		heading = next
		dirs = append(dirs, heading)
	}
	return dirs, fmt.Errorf("route: word ended without Extract")
}

// Geometry describes the torus/mesh coordinate space a path is computed in.
// Both topology kinds in internal/topology implement it.
type Geometry interface {
	// Radix reports the tile counts in x and y.
	Radix() (kx, ky int)
	// Wrap reports whether wraparound (torus) channels exist.
	Wrap() bool
}

// DimensionOrder computes the dimension-ordered (x first, then y) path of
// absolute directions from (sx, sy) to (dx, dy). On a torus it takes the
// shorter way around each ring; exact half-ring ties are split
// deterministically by endpoint parity, so tie traffic loads both ring
// directions evenly (sending every tie the same way would halve the
// usable wrap bandwidth). The returned path is empty when source equals
// destination.
func DimensionOrder(g Geometry, sx, sy, dx, dy int) []Dir {
	kx, ky := g.Radix()
	var path []Dir
	tieNeg := (sx+sy+dx+dy)%2 != 0
	appendSteps := func(delta, k int, pos, neg Dir) {
		if delta == 0 {
			return
		}
		if g.Wrap() {
			// Normalize into (-k/2, k/2].
			delta = ((delta % k) + k) % k
			if delta > k/2 {
				delta -= k
			}
			if k%2 == 0 && delta == k/2 && tieNeg {
				delta = -k / 2
			}
		}
		d, n := pos, delta
		if delta < 0 {
			d, n = neg, -delta
		}
		for i := 0; i < n; i++ {
			path = append(path, d)
		}
	}
	appendSteps(dx-sx, kx, East, West)
	appendSteps(dy-sy, ky, North, South)
	return path
}

// dimSteps reduces one dimension's coordinate delta to a direction and a
// hop count, applying the same torus normalization and parity tie-break as
// DimensionOrder: delta lands in (-k/2, k/2], and an exact half-ring tie on
// an even ring goes negative when tieNeg.
func dimSteps(delta, k int, pos, neg Dir, wrap, tieNeg bool) (Dir, int) {
	if delta == 0 {
		return pos, 0
	}
	if wrap {
		// Normalize into (-k/2, k/2].
		delta = ((delta % k) + k) % k
		if delta > k/2 {
			delta -= k
		}
		if k%2 == 0 && delta == k/2 && tieNeg {
			delta = -k / 2
		}
		if delta == 0 {
			return pos, 0
		}
	}
	if delta < 0 {
		return neg, -delta
	}
	return pos, delta
}

// Compute encodes the dimension-ordered route between two tiles in a
// width×height coordinate grid, using id = y*width + x. It is the
// destination-to-route translation the paper places in client-local logic.
//
// The route is emitted directly into the packed Word — absolute code for
// the first hop, straights within a dimension, one turn at the x→y corner,
// Extract last — without materializing the intermediate direction path, so
// the client-side hot path (every Port.Send on a cold route-cache row) does
// not allocate. Compute(g, s, d) equals Encode(DimensionOrder(g, ...)) for
// every pair; the route tests pin that equivalence.
func Compute(g Geometry, src, dst int) (Word, error) {
	kx, ky := g.Radix()
	if src == dst {
		return Word{}, fmt.Errorf("route: src == dst (%d); loopback is handled at the port", src)
	}
	sx, sy := src%kx, src/kx
	dx, dy := dst%kx, dst/kx
	tieNeg := (sx+sy+dx+dy)%2 != 0
	wrap := g.Wrap()
	dirX, nx := dimSteps(dx-sx, kx, East, West, wrap, tieNeg)
	dirY, ny := dimSteps(dy-sy, ky, North, South, wrap, tieNeg)
	if nx+ny == 0 {
		return Word{}, fmt.Errorf("route: empty path (loopback is handled at the port)")
	}
	var w Word
	var err error
	heading := Local
	for dim := 0; dim < 2; dim++ {
		d, n := dirX, nx
		if dim == 1 {
			d, n = dirY, ny
		}
		for hop := 0; hop < n; hop++ {
			var c Code
			if heading == Local {
				c, err = absCode(d)
			} else {
				c, err = turnCode(heading, d)
			}
			if err != nil {
				return Word{}, err
			}
			if w, err = w.Push(c); err != nil {
				return Word{}, err
			}
			heading = d
		}
	}
	return w.Push(Extract)
}
