package route

import "testing"

// tableGeom is a minimal Geometry for table tests.
type tableGeom struct {
	kx, ky int
	wrap   bool
}

func (g tableGeom) Radix() (int, int) { return g.kx, g.ky }
func (g tableGeom) Wrap() bool        { return g.wrap }

func TestTableMatchesCompute(t *testing.T) {
	for _, g := range []tableGeom{{4, 4, true}, {4, 4, false}, {3, 5, false}, {6, 6, true}} {
		tiles := g.kx * g.ky
		tab := BuildTable(g, tiles)
		if tab.Tiles() != tiles {
			t.Fatalf("%v: Tiles = %d, want %d", g, tab.Tiles(), tiles)
		}
		for src := 0; src < tiles; src++ {
			for dst := 0; dst < tiles; dst++ {
				w, ok := tab.Lookup(src, dst)
				if src == dst {
					if ok {
						t.Fatalf("%v: Lookup(%d,%d) ok for loopback", g, src, dst)
					}
					continue
				}
				want, err := Compute(g, src, dst)
				if err != nil {
					if ok {
						t.Fatalf("%v: table has route for uncomputable pair (%d,%d)", g, src, dst)
					}
					continue
				}
				if !ok || w != want {
					t.Fatalf("%v: Lookup(%d,%d) = %v,%v; Compute = %v", g, src, dst, w, ok, want)
				}
			}
		}
	}
}

func TestTableLookupOutOfRange(t *testing.T) {
	tab := BuildTable(tableGeom{2, 2, false}, 4)
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {4, 0}, {0, 4}} {
		if _, ok := tab.Lookup(pair[0], pair[1]); ok {
			t.Fatalf("Lookup%v ok, want miss", pair)
		}
	}
}
