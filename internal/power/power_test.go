package power

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/topology"
)

func paperModel() Model {
	return DefaultModel(circuits.LowSwing(circuits.Process100nm()).EnergyPerBitMM)
}

func TestWireDominatesHop(t *testing.T) {
	// §3.1: "wire transmission power is significantly greater than per hop
	// power for our 16 tile network."
	m := paperModel()
	c, err := m.CompareExact(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []TopologyEnergy{c.Mesh, c.Torus} {
		if e.WireFrac < 0.6 {
			t.Errorf("%s wire fraction = %v, want wire-dominated", e.Name, e.WireFrac)
		}
	}
}

func TestTorusOverheadBelow15Percent(t *testing.T) {
	// §3.1: "the power overhead of the torus is small, less than 15%".
	m := paperModel()
	c, err := m.CompareExact(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.TorusOverhead <= 0 {
		t.Fatalf("torus overhead = %v, expected positive (torus costs more)", c.TorusOverhead)
	}
	if c.TorusOverhead >= 0.15 {
		t.Fatalf("torus overhead = %.1f%%, paper says < 15%%", 100*c.TorusOverhead)
	}
}

func TestMeshWinsWhenWireDominates(t *testing.T) {
	// §3.1: "if wire transmission power dominates per hop power, the mesh
	// is more power efficient."
	m := paperModel()
	m.EHopPerFlit = 0 // wire power strictly dominates
	c, _ := m.CompareExact(4)
	if c.Torus.TotalJ <= c.Mesh.TotalJ {
		t.Fatal("with zero hop power, torus should cost more than mesh")
	}
	// Conversely, if hop power dominates, the torus (fewer hops) wins.
	m2 := paperModel()
	m2.EHopPerFlit = 100 * m2.wirePerFlitMM() * m2.TilePitchMM
	c2, _ := m2.CompareExact(4)
	if c2.Torus.TotalJ >= c2.Mesh.TotalJ {
		t.Fatal("with hop power dominant, torus should cost less than mesh")
	}
}

func TestPaperClosedForms(t *testing.T) {
	m := paperModel()
	mesh := m.PaperMesh(4)
	if math.Abs(mesh.AvgHops-8.0/3.0) > 1e-12 {
		t.Errorf("paper mesh hops = %v, want 8/3", mesh.AvgHops)
	}
	torus := m.PaperTorus(4, 2)
	if math.Abs(torus.AvgHops-2.0) > 1e-12 {
		t.Errorf("paper torus hops = %v, want 2", torus.AvgHops)
	}
	if math.Abs(torus.AvgDist-4.0) > 1e-12 {
		t.Errorf("paper torus dist = %v, want 4", torus.AvgDist)
	}
	// The idealized 2-pitch hop makes the torus look worse than the real
	// fold does; the exact fold average (1.5) lands under 15%.
	ideal := m.ComparePaper(4, 2)
	fold := m.ComparePaper(4, 1.5)
	if !(fold.TorusOverhead < 0.15 && ideal.TorusOverhead > fold.TorusOverhead) {
		t.Fatalf("overhead ideal=%v fold=%v", ideal.TorusOverhead, fold.TorusOverhead)
	}
}

func TestExactMatchesAnalysis(t *testing.T) {
	m := paperModel()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := m.Exact(topo)
	a := topology.Analyze(topo)
	if e.AvgHops != a.AvgHops || e.AvgDist != a.AvgDistance {
		t.Fatalf("exact energy used hops=%v dist=%v, analysis says %v/%v",
			e.AvgHops, e.AvgDist, a.AvgHops, a.AvgDistance)
	}
	want := m.FlitEnergy(a.AvgHops, a.AvgDistance)
	if math.Abs(e.TotalJ-want) > 1e-18 {
		t.Fatalf("TotalJ = %v, want %v", e.TotalJ, want)
	}
}

func TestFlitEnergyBitsGating(t *testing.T) {
	// The Size field keeps unused lanes quiet: a 16-bit flit must burn far
	// less wire energy than a 256-bit one over the same path.
	m := paperModel()
	full := m.FlitEnergyBits(2, 3, 300)
	small := m.FlitEnergyBits(2, 3, 16)
	if small >= full {
		t.Fatal("size gating has no effect")
	}
	wireFull := full - m.FlitEnergyBits(2, 0, 300)
	wireSmall := small - m.FlitEnergyBits(2, 0, 16)
	if r := wireFull / wireSmall; math.Abs(r-300.0/16.0) > 1e-9 {
		t.Fatalf("wire energy ratio = %v, want %v", r, 300.0/16.0)
	}
}

func TestMeterMatchesAnalytic(t *testing.T) {
	m := paperModel()
	mt := NewMeter(m)
	// Simulate one full-width flit crossing 2 routers and 3 pitches.
	mt.AddHop()
	mt.AddHop()
	mt.AddWire(256, 44, 3)
	want := m.FlitEnergy(2, 3)
	if math.Abs(mt.TotalJ()-want) > 1e-18 {
		t.Fatalf("meter total = %v, analytic = %v", mt.TotalJ(), want)
	}
	if mt.PerFlitJ() != mt.TotalJ()/2 {
		t.Fatalf("per-flit accounting wrong")
	}
	mt.Reset()
	if mt.TotalJ() != 0 || mt.Flits != 0 || mt.FlitPitches != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMeterClampsBits(t *testing.T) {
	m := paperModel()
	mt := NewMeter(m)
	mt.AddWire(10000, 10000, 1) // absurd bit count clamps to flit width
	want := m.EWirePerBitMM * float64(m.FlitBits) * m.TilePitchMM
	if math.Abs(mt.WireEnergyJ-want) > 1e-18 {
		t.Fatalf("clamp failed: %v vs %v", mt.WireEnergyJ, want)
	}
}

func TestComparisonString(t *testing.T) {
	c, _ := paperModel().CompareExact(4)
	if !strings.Contains(c.String(), "torus overhead") {
		t.Fatalf("string: %s", c.String())
	}
}

func TestMeterModelAccessor(t *testing.T) {
	m := paperModel()
	if NewMeter(m).Model() != m {
		t.Fatal("meter model accessor mismatch")
	}
}
