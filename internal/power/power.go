// Package power implements the Section 3.1 energy model of the paper: the
// energy to move a flit through the network decomposes into a per-hop term
// (input and output controller traversal) and a per-wire-distance term
// (driving the inter-tile wires):
//
//	E_flit = H · E_hop + D · E_wire
//
// where H is the number of hops, D the physical wire distance travelled,
// and E_wire the per-mm wire energy of the signaling discipline in use.
//
// The paper instantiates the model for the k-ary 2-mesh and the folded
// torus under uniform traffic and concludes that although wire energy
// dominates hop energy in the 16-tile example, the torus's power overhead
// is "small, less than 15%," and is outweighed by its doubled bisection
// bandwidth. Comparison reproduces that argument with both the paper's
// closed-form hop/distance approximations and exact expectations computed
// from the topology, and Meter accumulates the same decomposition from
// live simulation.
package power

import (
	"fmt"

	"repro/internal/topology"
)

// Model carries the energy coefficients.
type Model struct {
	// EHopPerFlit is the controller traversal energy per flit per hop, J.
	EHopPerFlit float64
	// EWirePerBitMM is the wire energy per bit per mm, J (from the
	// signaling discipline).
	EWirePerBitMM float64
	// FlitBits is the number of wire bits toggled per flit when the whole
	// data field is used.
	FlitBits int
	// TilePitchMM converts topological distance (tile pitches) to mm.
	TilePitchMM float64
}

// DefaultModel returns coefficients for the paper's example network with
// the given wire energy (J/bit/mm). The hop energy is set so that wire
// transmission energy per hop is "significantly greater than per hop
// power" (§3.1) at the 3 mm tile pitch: one hop of wire (≥3 mm · 300 bits)
// costs several times the controller traversal.
func DefaultModel(eWirePerBitMM float64) Model {
	m := Model{
		EWirePerBitMM: eWirePerBitMM,
		FlitBits:      300,
		TilePitchMM:   3.0,
	}
	// Controller traversal: buffer write+read and switch traversal come to
	// roughly a fifth of one tile pitch of full-width wire energy.
	m.EHopPerFlit = 0.2 * m.wirePerFlitMM() * m.TilePitchMM
	return m
}

// wirePerFlitMM is the wire energy per flit per mm with all bits toggling.
func (m Model) wirePerFlitMM() float64 {
	return m.EWirePerBitMM * float64(m.FlitBits)
}

// FlitEnergy evaluates the §3.1 decomposition for a flit that crosses hops
// routers and travels distPitches tile pitches of wire.
func (m Model) FlitEnergy(hops float64, distPitches float64) float64 {
	return hops*m.EHopPerFlit + distPitches*m.TilePitchMM*m.wirePerFlitMM()
}

// FlitEnergyBits is FlitEnergy for a flit with only bits of its data field
// active (the Size field gates the unused lanes, §2.1).
func (m Model) FlitEnergyBits(hops float64, distPitches float64, bits int) float64 {
	wire := m.EWirePerBitMM * float64(bits) * distPitches * m.TilePitchMM
	return hops*m.EHopPerFlit + wire
}

// TopologyEnergy holds the per-flit energy of one topology under uniform
// traffic.
type TopologyEnergy struct {
	Name     string
	AvgHops  float64
	AvgDist  float64 // tile pitches
	HopJ     float64
	WireJ    float64
	TotalJ   float64
	WireFrac float64
}

func (m Model) topologyEnergy(name string, hops, dist float64) TopologyEnergy {
	hopJ := hops * m.EHopPerFlit
	wireJ := dist * m.TilePitchMM * m.wirePerFlitMM()
	return TopologyEnergy{
		Name: name, AvgHops: hops, AvgDist: dist,
		HopJ: hopJ, WireJ: wireJ, TotalJ: hopJ + wireJ,
		WireFrac: wireJ / (hopJ + wireJ),
	}
}

// Exact evaluates the model on a topology using exact uniform-traffic
// expectations (average dimension-ordered hop count and physical wire
// distance including the fold).
func (m Model) Exact(t topology.Topology) TopologyEnergy {
	a := topology.Analyze(t)
	return m.topologyEnergy(a.Topology, a.AvgHops, a.AvgDistance)
}

// PaperMesh evaluates the paper's closed-form mesh approximation for a
// k-ary 2-mesh: 2k/3 hops, each over one tile pitch of wire.
func (m Model) PaperMesh(k int) TopologyEnergy {
	hops := 2.0 * float64(k) / 3.0
	return m.topologyEnergy(fmt.Sprintf("paper-mesh-k%d", k), hops, hops)
}

// PaperTorus evaluates the paper's closed-form folded-torus approximation
// for a k-ary 2-cube: k/2 hops, each over wirePerHop tile pitches. The
// text's equations idealize wirePerHop = 2 ("twice the wire demand"); the
// actual 0,2,3,1 fold averages 1.5, which is what makes the <15% overhead
// claim come out (see EXPERIMENTS.md, E3).
func (m Model) PaperTorus(k int, wirePerHop float64) TopologyEnergy {
	hops := float64(k) / 2.0
	return m.topologyEnergy(fmt.Sprintf("paper-torus-k%d", k), hops, hops*wirePerHop)
}

// Comparison is the mesh-vs-torus §3.1 result.
type Comparison struct {
	Mesh, Torus   TopologyEnergy
	TorusOverhead float64 // (torus-mesh)/mesh
}

// CompareExact compares the exact per-flit energies of a mesh and a folded
// torus of equal radix.
func (m Model) CompareExact(k int) (Comparison, error) {
	mesh, err := topology.NewMesh(k, k)
	if err != nil {
		return Comparison{}, err
	}
	torus, err := topology.NewFoldedTorus(k, k)
	if err != nil {
		return Comparison{}, err
	}
	me, te := m.Exact(mesh), m.Exact(torus)
	return Comparison{Mesh: me, Torus: te, TorusOverhead: te.TotalJ/me.TotalJ - 1}, nil
}

// ComparePaper compares using the paper's closed forms.
func (m Model) ComparePaper(k int, torusWirePerHop float64) Comparison {
	me := m.PaperMesh(k)
	te := m.PaperTorus(k, torusWirePerHop)
	return Comparison{Mesh: me, Torus: te, TorusOverhead: te.TotalJ/me.TotalJ - 1}
}

// Meter accumulates energy from a live simulation. Router and link hooks
// call the Add methods; the decomposition mirrors the analytic model so
// simulated and analytic energies are directly comparable.
type Meter struct {
	model Model

	HopEnergyJ  float64
	WireEnergyJ float64
	Flits       int64
	FlitPitches float64 // flit·tile-pitches of wire traversed
}

// NewMeter returns a meter over the given model.
func NewMeter(m Model) *Meter { return &Meter{model: m} }

// Model reports the meter's coefficients.
func (mt *Meter) Model() Model { return mt.model }

// AddHop records one flit traversing one router.
func (mt *Meter) AddHop() {
	mt.HopEnergyJ += mt.model.EHopPerFlit
	mt.Flits++
}

// AddWire records a flit with the given active payload bits crossing a
// link of the given length in tile pitches. Control overhead bits always
// toggle; payload lanes beyond the Size field stay quiet (§2.1).
func (mt *Meter) AddWire(payloadBits int, overheadBits int, lengthPitches float64) {
	bits := payloadBits + overheadBits
	if bits > mt.model.FlitBits {
		bits = mt.model.FlitBits
	}
	mt.WireEnergyJ += mt.model.EWirePerBitMM * float64(bits) * lengthPitches * mt.model.TilePitchMM
	mt.FlitPitches += lengthPitches
}

// TotalJ reports accumulated energy.
func (mt *Meter) TotalJ() float64 { return mt.HopEnergyJ + mt.WireEnergyJ }

// PerFlitJ reports mean energy per router traversal... per flit-hop is not
// meaningful alone, so it reports total energy divided by flit-hops.
func (mt *Meter) PerFlitJ() float64 {
	if mt.Flits == 0 {
		return 0
	}
	return mt.TotalJ() / float64(mt.Flits)
}

// Reset clears the accumulators.
func (mt *Meter) Reset() {
	mt.HopEnergyJ, mt.WireEnergyJ, mt.Flits, mt.FlitPitches = 0, 0, 0, 0
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("%s: %.3g J/flit vs %s: %.3g J/flit (torus overhead %+.1f%%)",
		c.Mesh.Name, c.Mesh.TotalJ, c.Torus.Name, c.Torus.TotalJ, 100*c.TorusOverhead)
}
