package link

import (
	"fmt"
	"math/rand"
)

// Phys models the physical wires of one link: DataWires logical bit lanes
// plus SpareWires spares. It supports the fault-tolerance story of §2.5:
//
//   - a hard fault kills one wire (stuck-at-zero);
//   - after test, bit steering is programmed ("laser fuses are blown or
//     registers are set at boot time"): all lanes at or above the faulty
//     wire shift up one position onto the spare, and mirror logic at the
//     far end restores the original bit positions;
//   - independently, transient faults flip a random in-flight bit with a
//     configurable per-flit probability, to exercise link-level ECC and
//     end-to-end retry.
type Phys struct {
	DataWires  int
	SpareWires int

	deadWires []int // physical wire indices, stuck at zero
	steerAt   int   // -1: steering off; else lanes >= steerAt shift up one wire
	laneMap   []int // multi-spare steering: lane -> wire; nil when unused

	// TransientProb is the per-traversal probability that one random data
	// bit flips in flight.
	TransientProb float64

	// ECC enables link-level SECDED protection of the payload.
	ECC bool

	rng *rand.Rand

	// Stats.
	Traversals     int64
	BitErrors      int64 // corrupted payload bits delivered (after ECC, if any)
	CorrectedFlits int64 // flits fixed by link ECC
	DetectedFlits  int64 // flits with detected-but-uncorrectable ECC errors
}

// NewPhys returns a physical link layer with the given logical width and
// spare count.
func NewPhys(dataWires, spareWires int, rng *rand.Rand) *Phys {
	return &Phys{DataWires: dataWires, SpareWires: spareWires, steerAt: -1, rng: rng}
}

// InjectHardFault marks physical wire w as stuck-at-zero. It returns an
// error if the index is outside the physical wire range.
func (p *Phys) InjectHardFault(w int) error {
	if w < 0 || w >= p.DataWires+p.SpareWires {
		return fmt.Errorf("link: wire %d outside [0,%d)", w, p.DataWires+p.SpareWires)
	}
	for _, d := range p.deadWires {
		if d == w {
			return nil
		}
	}
	p.deadWires = append(p.deadWires, w)
	return nil
}

// ProgramSteering configures the bit-steering logic around the hard
// faults, as the post-test fuse blow does. With one fault and one spare it
// is the single shift stage of §2.5; with more faults it applies the
// footnote's generalization — "multiple spare bits can be provided using
// the same method" — shifting each lane past every dead wire below it. It
// fails if there are more faults than spares.
func (p *Phys) ProgramSteering() error {
	if len(p.deadWires) == 0 {
		return fmt.Errorf("link: no hard fault to steer around")
	}
	if len(p.deadWires) > p.SpareWires {
		return fmt.Errorf("link: %d faults exceed %d spare wires", len(p.deadWires), p.SpareWires)
	}
	if len(p.deadWires) == 1 {
		p.steerAt = p.deadWires[0]
		p.laneMap = nil
		return nil
	}
	// Multi-spare: lane i rides the (i+1)-th live wire.
	p.laneMap = make([]int, p.DataWires)
	wire := 0
	for lane := 0; lane < p.DataWires; lane++ {
		for p.wireDead(wire) {
			wire++
		}
		if wire >= p.DataWires+p.SpareWires {
			return fmt.Errorf("link: not enough live wires for %d lanes", p.DataWires)
		}
		p.laneMap[lane] = wire
		wire++
	}
	p.steerAt = -1
	return nil
}

// SteeringProgrammed reports whether steering is active.
func (p *Phys) SteeringProgrammed() bool { return p.steerAt >= 0 || p.laneMap != nil }

// laneWire maps a logical bit lane to the physical wire carrying it.
func (p *Phys) laneWire(lane int) int {
	if p.laneMap != nil {
		return p.laneMap[lane]
	}
	if p.steerAt >= 0 && lane >= p.steerAt {
		return lane + 1
	}
	return lane
}

func (p *Phys) wireDead(w int) bool {
	for _, d := range p.deadWires {
		if d == w {
			return true
		}
	}
	return false
}

// Traverse sends bits payload bits (LSB-first in data) across the link and
// returns the received payload. It applies hard faults (as stuck-at-zero on
// whichever logical lane maps to a dead wire), optional ECC, and transient
// single-bit flips. The input slice is not modified.
func (p *Phys) Traverse(data []byte, bits int) []byte {
	p.Traversals++
	if bits > p.DataWires {
		bits = p.DataWires
	}
	if p.ECC {
		return p.traverseECC(data, bits)
	}
	out := make([]byte, (bits+7)/8)
	flip := -1
	if p.TransientProb > 0 && p.rng != nil && p.rng.Float64() < p.TransientProb {
		flip = p.rng.Intn(bits)
	}
	for lane := 0; lane < bits; lane++ {
		v := getBit(data, lane)
		if p.wireDead(p.laneWire(lane)) {
			v = false // stuck at zero
		}
		if lane == flip {
			v = !v
		}
		if v != getBit(data, lane) {
			p.BitErrors++
		}
		if v {
			out[lane/8] |= 1 << (lane % 8)
		}
	}
	return out
}

// traverseECC transports the payload inside a SECDED codeword. Parity bits
// travel on additional wires; a transient flip may land on any codeword
// bit. Hard faults are applied to data lanes exactly as without ECC.
func (p *Phys) traverseECC(data []byte, bits int) []byte {
	w := ECCEncode(data, bits)
	// Hard faults on data lanes corrupt the corresponding codeword bits.
	di := 0
	for pos := 1; pos < w.Len(); pos++ {
		if isPow2(pos) {
			continue
		}
		if di < bits && p.wireDead(p.laneWire(di)) && w.bits[pos] {
			w.bits[pos] = false
		}
		di++
	}
	if p.TransientProb > 0 && p.rng != nil && p.rng.Float64() < p.TransientProb {
		w.Flip(p.rng.Intn(w.Len()))
	}
	out, res := w.Decode()
	switch res {
	case ECCCorrected:
		p.CorrectedFlits++
	case ECCDetected:
		p.DetectedFlits++
	}
	// Count residual errors against ground truth.
	for lane := 0; lane < bits; lane++ {
		if getBit(out, lane) != getBit(data, lane) {
			p.BitErrors++
		}
	}
	return out[:(bits+7)/8]
}
