// Package link models the inter-router channels of the on-chip network:
// pipelined wires with configurable latency, a physical layer with spare-bit
// steering around hard faults (§2.5 of the paper), optional link-level
// SECDED error correction, and serialization when the physical link is
// narrower (or faster) than a flit (§2.3, §3.3).
package link

import "fmt"

// Pipe is a fixed-latency pipeline: a value sent on cycle t emerges from
// Shift on cycle t+latency. At most one value may enter per cycle, which is
// the single-word-per-cycle discipline of a clocked channel.
type Pipe[T any] struct {
	slots []slot[T]
	count int // occupied slots, maintained so InFlight/Empty are O(1)
}

type slot[T any] struct {
	v    T
	full bool
}

// NewPipe returns a pipe with the given latency in cycles (minimum 1).
func NewPipe[T any](latency int) *Pipe[T] {
	if latency < 1 {
		latency = 1
	}
	return &Pipe[T]{slots: make([]slot[T], latency)}
}

// Latency reports the pipe latency in cycles.
func (p *Pipe[T]) Latency() int { return len(p.slots) }

// CanSend reports whether the input register is free this cycle.
func (p *Pipe[T]) CanSend() bool { return !p.slots[len(p.slots)-1].full }

// Send places a value into the pipe. It fails if a value was already sent
// this cycle.
func (p *Pipe[T]) Send(v T) error {
	last := len(p.slots) - 1
	if p.slots[last].full {
		return fmt.Errorf("link: pipe input occupied")
	}
	p.slots[last] = slot[T]{v: v, full: true}
	p.count++
	return nil
}

// Shift advances the pipe by one cycle and returns the value (if any) that
// has completed its traversal. Call exactly once per cycle, in the global
// delivery phase, before any Send of the same cycle.
func (p *Pipe[T]) Shift() (T, bool) {
	if p.count == 0 {
		// Nothing in flight: shifting empty slots is a no-op, so skip the
		// copy. This is the idle fast path of the delivery phase.
		var zero T
		return zero, false
	}
	out := p.slots[0]
	copy(p.slots, p.slots[1:])
	var zero slot[T]
	p.slots[len(p.slots)-1] = zero
	if out.full {
		p.count--
	}
	return out.v, out.full
}

// Reset empties the pipe in place, dropping any in-flight values. The
// caller owns whatever cleanup those values need (e.g. recycling flits)
// and must drain or enumerate them first if so.
func (p *Pipe[T]) Reset() {
	if p.count == 0 {
		return
	}
	var zero slot[T]
	for i := range p.slots {
		p.slots[i] = zero
	}
	p.count = 0
}

// InFlight reports how many values are currently inside the pipe.
func (p *Pipe[T]) InFlight() int { return p.count }

// Empty reports whether the pipe holds no values.
func (p *Pipe[T]) Empty() bool { return p.count == 0 }
