package link

import (
	"bytes"
	"testing"
)

// FuzzECC fuzzes the SECDED code: any payload round-trips clean, and any
// single-bit corruption is corrected back to the original.
func FuzzECC(f *testing.F) {
	f.Add([]byte("route packets"), uint16(3))
	f.Add([]byte{0}, uint16(0))
	f.Add(bytes.Repeat([]byte{0xFF}, 32), uint16(100))
	f.Fuzz(func(t *testing.T, data []byte, flipPos uint16) {
		if len(data) == 0 || len(data) > 32 {
			return
		}
		bits := len(data) * 8
		w := ECCEncode(data, bits)
		out, res := w.Decode()
		if res != ECCClean || !bytes.Equal(out[:len(data)], data) {
			t.Fatalf("clean round trip failed: %v %x", res, out)
		}
		w2 := ECCEncode(data, bits)
		w2.Flip(int(flipPos) % w2.Len())
		out2, res2 := w2.Decode()
		if res2 == ECCDetected {
			t.Fatalf("single flip reported uncorrectable")
		}
		if !bytes.Equal(out2[:len(data)], data) {
			t.Fatalf("single flip not corrected: %x vs %x", out2, data)
		}
	})
}

// FuzzSteering fuzzes spare-bit steering: for any single hard fault and
// payload, programmed steering must deliver the payload intact.
func FuzzSteering(f *testing.F) {
	f.Add([]byte{0xA5, 0x5A}, uint16(5))
	f.Add([]byte{1}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, wire uint16) {
		if len(data) == 0 || len(data) > 32 {
			return
		}
		bits := len(data) * 8
		p := NewPhys(bits, 1, nil)
		w := int(wire) % (bits + 1)
		if err := p.InjectHardFault(w); err != nil {
			t.Fatal(err)
		}
		if err := p.ProgramSteering(); err != nil {
			t.Fatal(err)
		}
		out := p.Traverse(data, bits)
		if !bytes.Equal(out, data) {
			t.Fatalf("steered link corrupted %x -> %x (fault at %d)", data, out, w)
		}
	})
}
