package link

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flit"
)

func TestPipeLatency(t *testing.T) {
	for _, lat := range []int{1, 2, 5} {
		p := NewPipe[int](lat)
		if p.Latency() != lat {
			t.Fatalf("latency = %d", p.Latency())
		}
		// Shift runs at the start of each cycle; send happens later in the
		// same cycle. A value sent on cycle 0 must appear on cycle lat.
		var got, gotCycle = -1, -1
		for cycle := 0; cycle < lat+3; cycle++ {
			if v, ok := p.Shift(); ok {
				got, gotCycle = v, cycle
			}
			if cycle == 0 {
				if err := p.Send(42); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got != 42 || gotCycle != lat {
			t.Fatalf("latency %d: value %d arrived at cycle %d", lat, got, gotCycle)
		}
	}
}

func TestPipeOnePerCycle(t *testing.T) {
	p := NewPipe[int](2)
	if err := p.Send(1); err != nil {
		t.Fatal(err)
	}
	if p.CanSend() {
		t.Fatal("CanSend true after send in same cycle")
	}
	if err := p.Send(2); err == nil {
		t.Fatal("second send in one cycle accepted")
	}
	p.Shift()
	if !p.CanSend() {
		t.Fatal("CanSend false after shift")
	}
	if p.InFlight() != 1 {
		t.Fatalf("in flight = %d", p.InFlight())
	}
}

func TestPipeBackToBackThroughput(t *testing.T) {
	p := NewPipe[int](3)
	sent, recv := 0, 0
	for cycle := 0; cycle < 100; cycle++ {
		if _, ok := p.Shift(); ok {
			recv++
		}
		if p.CanSend() {
			if err := p.Send(cycle); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	if sent != 100 {
		t.Fatalf("pipe does not sustain one send per cycle: %d", sent)
	}
	if recv != 100-3 {
		t.Fatalf("received %d, want %d", recv, 97)
	}
}

func TestPhysCleanTraversal(t *testing.T) {
	p := NewPhys(256, 1, nil)
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	out := p.Traverse(data, 32)
	if !bytes.Equal(out, data) {
		t.Fatalf("clean link corrupted data: %x", out)
	}
	if p.BitErrors != 0 || p.Traversals != 1 {
		t.Fatalf("stats wrong: %+v", p)
	}
}

func TestPhysHardFaultCorrupts(t *testing.T) {
	p := NewPhys(32, 1, nil)
	if err := p.InjectHardFault(5); err != nil {
		t.Fatal(err)
	}
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	out := p.Traverse(data, 32)
	if getBit(out, 5) {
		t.Fatal("stuck-at-zero wire delivered a 1")
	}
	if p.BitErrors == 0 {
		t.Fatal("bit error not counted")
	}
}

func TestPhysSteeringHealsSingleFault(t *testing.T) {
	// §2.5: after test, steering shifts all bits above the fault one
	// position onto the spare; data then passes intact.
	rng := rand.New(rand.NewSource(1))
	for wire := 0; wire < 33; wire++ {
		p := NewPhys(32, 1, nil)
		if err := p.InjectHardFault(wire); err != nil {
			t.Fatal(err)
		}
		if err := p.ProgramSteering(); err != nil {
			t.Fatalf("wire %d: %v", wire, err)
		}
		for trial := 0; trial < 20; trial++ {
			data := make([]byte, 4)
			rng.Read(data)
			out := p.Traverse(data, 32)
			if !bytes.Equal(out, data) {
				t.Fatalf("wire %d: steering failed: in %x out %x", wire, data, out)
			}
		}
		if p.BitErrors != 0 {
			t.Fatalf("wire %d: residual errors %d", wire, p.BitErrors)
		}
	}
}

func TestPhysSteeringValidation(t *testing.T) {
	p := NewPhys(8, 1, nil)
	if err := p.ProgramSteering(); err == nil {
		t.Error("steering with no fault accepted")
	}
	if err := p.InjectHardFault(99); err == nil {
		t.Error("out-of-range fault accepted")
	}
	_ = p.InjectHardFault(2)
	_ = p.InjectHardFault(2) // duplicate is a no-op
	_ = p.InjectHardFault(5)
	if err := p.ProgramSteering(); err == nil {
		t.Error("two faults with one spare accepted")
	}
	q := NewPhys(8, 0, nil)
	_ = q.InjectHardFault(1)
	if err := q.ProgramSteering(); err == nil {
		t.Error("steering without spare accepted")
	}
}

func TestPhysTransientFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewPhys(64, 0, rng)
	p.TransientProb = 1.0 // every traversal flips one bit
	data := make([]byte, 8)
	out := p.Traverse(data, 64)
	diff := 0
	for i := 0; i < 64; i++ {
		if getBit(out, i) != getBit(data, i) {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("transient flipped %d bits, want 1", diff)
	}
}

func TestECCRoundTripClean(t *testing.T) {
	data := []byte{0x12, 0x34, 0x56, 0x78}
	w := ECCEncode(data, 32)
	out, res := w.Decode()
	if res != ECCClean {
		t.Fatalf("clean decode result %v", res)
	}
	if !bytes.Equal(out[:4], data) {
		t.Fatalf("round trip mismatch: %x", out)
	}
}

// Property: ECC corrects any single-bit error in the codeword.
func TestECCSingleErrorCorrectedProperty(t *testing.T) {
	f := func(raw []byte, pos uint16) bool {
		if len(raw) == 0 {
			raw = []byte{0}
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		bits := len(raw) * 8
		w := ECCEncode(raw, bits)
		w.Flip(int(pos) % w.Len())
		out, res := w.Decode()
		if res != ECCCorrected && res != ECCClean {
			return false
		}
		return bytes.Equal(out[:len(raw)], raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: double errors in the Hamming word are detected, never silently
// miscorrected into "clean".
func TestECCDoubleErrorDetectedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, 1+rng.Intn(32))
		rng.Read(data)
		bits := len(data) * 8
		w := ECCEncode(data, bits)
		a := 1 + rng.Intn(w.Len()-1)
		b := 1 + rng.Intn(w.Len()-1)
		if a == b {
			continue
		}
		w.Flip(a)
		w.Flip(b)
		_, res := w.Decode()
		if res != ECCDetected {
			t.Fatalf("double error (%d,%d) classified %v", a, b, res)
		}
	}
}

func TestPhysECCMasksTransients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPhys(256, 0, rng)
	p.TransientProb = 1.0
	p.ECC = true
	for i := 0; i < 100; i++ {
		data := make([]byte, 32)
		rng.Read(data)
		out := p.Traverse(data, 256)
		if !bytes.Equal(out, data) {
			t.Fatalf("ECC failed to mask transient on trial %d", i)
		}
	}
	if p.BitErrors != 0 {
		t.Fatalf("residual bit errors with ECC: %d", p.BitErrors)
	}
	if p.CorrectedFlits == 0 {
		t.Fatal("no corrections recorded")
	}
}

func TestLinkSerdesOccupancy(t *testing.T) {
	// A link with SerdesCycles=4 (e.g. 64-bit wires carrying 256-bit
	// flits, §3.3) accepts one flit per 4 cycles.
	l := New(Config{Name: "test", SerdesCycles: 4})
	f := &flit.Flit{Type: flit.HeadTail}
	if !l.CanSend() {
		t.Fatal("fresh link not sendable")
	}
	if err := l.Send(f); err != nil {
		t.Fatal(err)
	}
	sendable := 0
	for cycle := 1; cycle <= 4; cycle++ {
		l.Deliver()
		if l.CanSend() {
			sendable++
		}
	}
	if sendable != 1 {
		t.Fatalf("link sendable on %d of 4 cycles, want 1", sendable)
	}
	if l.Util.Rate() != 1.0 {
		t.Fatalf("serialized link utilization = %v, want 1.0", l.Util.Rate())
	}
}

func TestLinkDeliverAndCredits(t *testing.T) {
	l := New(Config{Name: "t", LatencyCycles: 1})
	f := &flit.Flit{Type: flit.HeadTail, Data: []byte{1, 2}}
	if err := l.Send(f); err != nil {
		t.Fatal(err)
	}
	l.SendCredit(3)
	l.SendCredit(5)
	got, credits := l.Deliver()
	if got == nil {
		t.Fatal("flit not delivered after one cycle")
	}
	if len(credits) != 0 {
		// Credits sent on cycle t enter the reverse pipe on cycle t and
		// arrive on t+1; only one per cycle.
		t.Fatalf("credits arrived instantly: %v", credits)
	}
	_, credits = l.Deliver()
	if len(credits) != 1 || credits[0] != 3 {
		t.Fatalf("first credit = %v", credits)
	}
	_, credits = l.Deliver()
	if len(credits) != 1 || credits[0] != 5 {
		t.Fatalf("second credit = %v", credits)
	}
}

func TestLinkAppliesPhys(t *testing.T) {
	phys := NewPhys(16, 1, nil)
	_ = phys.InjectHardFault(0)
	l := New(Config{Name: "t", Phys: phys})
	f := &flit.Flit{Type: flit.HeadTail, Data: []byte{0xFF, 0xFF}}
	if err := l.Send(f); err != nil {
		t.Fatal(err)
	}
	got, _ := l.Deliver()
	if got.Data[0]&1 != 0 {
		t.Fatal("hard fault not applied through link")
	}
	if f.Data[0] != 0xFF {
		t.Fatal("link mutated the sender's flit")
	}
}

func TestLinkSendWhileBusyFails(t *testing.T) {
	l := New(Config{SerdesCycles: 2})
	if err := l.Send(&flit.Flit{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Send(&flit.Flit{}); err == nil {
		t.Fatal("send while busy accepted")
	}
}

func TestPhysMultiSpareSteering(t *testing.T) {
	// §2.5 footnote: "If yield analysis indicates that more than one spare
	// bit is required, multiple spare bits can be provided using the same
	// method."
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		spares := 2 + rng.Intn(3)
		p := NewPhys(64, spares, nil)
		faults := 2 + rng.Intn(spares-1)
		for i := 0; i < faults; i++ {
			for {
				w := rng.Intn(64 + spares)
				if !p.wireDead(w) {
					_ = p.InjectHardFault(w)
					break
				}
			}
		}
		if err := p.ProgramSteering(); err != nil {
			t.Fatalf("trial %d (%d faults, %d spares): %v", trial, faults, spares, err)
		}
		data := make([]byte, 8)
		rng.Read(data)
		out := p.Traverse(data, 64)
		if !bytes.Equal(out, data) {
			t.Fatalf("trial %d: multi-spare steering corrupted data", trial)
		}
	}
}

func TestPhysMultiSpareTooManyFaults(t *testing.T) {
	p := NewPhys(16, 2, nil)
	for _, w := range []int{1, 5, 9} {
		_ = p.InjectHardFault(w)
	}
	if err := p.ProgramSteering(); err == nil {
		t.Fatal("3 faults with 2 spares accepted")
	}
	if p.SteeringProgrammed() {
		t.Fatal("failed programming left steering active")
	}
}

func TestPhysSteeringProgrammedFlag(t *testing.T) {
	p := NewPhys(16, 2, nil)
	if p.SteeringProgrammed() {
		t.Fatal("fresh phys reports steering")
	}
	_ = p.InjectHardFault(3)
	_ = p.InjectHardFault(7)
	if err := p.ProgramSteering(); err != nil {
		t.Fatal(err)
	}
	if !p.SteeringProgrammed() {
		t.Fatal("steering flag not set")
	}
}
