package link

// Hamming single-error-correcting, double-error-detecting (SECDED) code
// over a byte payload, used for the optional link-level error correction of
// §2.5: "the use of link-level error correction reduces the possibility of
// a transient fault, with the cost of additional delay."
//
// The code is a conventional extended Hamming code: data bits are spread
// over the non-power-of-two positions of a codeword, parity bits sit at
// power-of-two positions, and an overall parity bit distinguishes single
// (correctable) from double (detectable) errors.

// eccParityBits reports the number of Hamming parity bits needed for n data
// bits (excluding the overall parity bit).
func eccParityBits(dataBits int) int {
	p := 0
	for (1 << p) < dataBits+p+1 {
		p++
	}
	return p
}

// ECCWords holds an encoded codeword as a bit slice. Bit 0 is the overall
// parity; bits at positions 2^k (1-based within the Hamming word) are
// parity bits.
type ECCWord struct {
	bits []bool
	data int // data bit count
}

// ECCEncode encodes the first dataBits bits of data (LSB-first per byte)
// into a SECDED codeword.
func ECCEncode(data []byte, dataBits int) *ECCWord {
	p := eccParityBits(dataBits)
	n := dataBits + p // Hamming word length (1-based positions 1..n)
	w := &ECCWord{bits: make([]bool, n+1), data: dataBits}
	// Place data bits at non-power-of-two positions.
	di := 0
	for pos := 1; pos <= n; pos++ {
		if isPow2(pos) {
			continue
		}
		w.bits[pos] = getBit(data, di)
		di++
	}
	// Compute Hamming parity bits.
	for k := 0; (1 << k) <= n; k++ {
		pp := 1 << k
		parity := false
		for pos := 1; pos <= n; pos++ {
			if pos != pp && pos&pp != 0 && w.bits[pos] {
				parity = !parity
			}
		}
		w.bits[pp] = parity
	}
	// Overall parity at index 0.
	overall := false
	for pos := 1; pos <= n; pos++ {
		if w.bits[pos] {
			overall = !overall
		}
	}
	w.bits[0] = overall
	return w
}

// Len reports the codeword length in bits, including all parity.
func (w *ECCWord) Len() int { return len(w.bits) }

// Flip inverts bit i of the codeword (0 = overall parity), modelling a
// transient fault on the corresponding wire.
func (w *ECCWord) Flip(i int) {
	if i >= 0 && i < len(w.bits) {
		w.bits[i] = !w.bits[i]
	}
}

// ECCResult classifies the outcome of decoding.
type ECCResult int

// Decoding outcomes.
const (
	ECCClean     ECCResult = iota // no error
	ECCCorrected                  // single error corrected
	ECCDetected                   // double error detected, not correctable
)

// Decode checks and corrects the codeword in place, then extracts the data
// bits into a byte slice.
func (w *ECCWord) Decode() ([]byte, ECCResult) {
	n := len(w.bits) - 1
	syndrome := 0
	for k := 0; (1 << k) <= n; k++ {
		pp := 1 << k
		parity := false
		for pos := 1; pos <= n; pos++ {
			if pos&pp != 0 && w.bits[pos] {
				parity = !parity
			}
		}
		if parity {
			syndrome |= pp
		}
	}
	overall := w.bits[0]
	for pos := 1; pos <= n; pos++ {
		if w.bits[pos] {
			overall = !overall
		}
	}
	res := ECCClean
	switch {
	case syndrome == 0 && !overall:
		// clean
	case overall:
		// Single error: either at the syndrome position or, if syndrome is
		// zero, at the overall parity bit itself.
		if syndrome != 0 && syndrome <= n {
			w.bits[syndrome] = !w.bits[syndrome]
		}
		res = ECCCorrected
	default:
		// Even error count with nonzero syndrome: uncorrectable.
		res = ECCDetected
	}
	out := make([]byte, (w.data+7)/8)
	di := 0
	for pos := 1; pos <= n; pos++ {
		if isPow2(pos) {
			continue
		}
		if w.bits[pos] {
			out[di/8] |= 1 << (di % 8)
		}
		di++
	}
	return out, res
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

func getBit(data []byte, i int) bool {
	if i/8 >= len(data) {
		return false
	}
	return data[i/8]&(1<<(i%8)) != 0
}
