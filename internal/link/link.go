package link

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Link is one unidirectional inter-router channel: a fixed-latency pipe
// over a physical wire bundle, with optional serialization when the bundle
// is narrower than a flit, and a reverse credit channel for the
// virtual-channel flow control of §2.3 ("credits for buffer allocation are
// piggybacked on flits travelling in the reverse direction"; the model
// carries them on a dedicated reverse pipe with the same latency).
type Link struct {
	Name string

	// pipe and credits are inline values, not pointers: the per-cycle
	// Deliver/CanSend path reads their occupancy counters from the Link's
	// own cache lines instead of chasing into separate heap objects.
	pipe    Pipe[*flit.Flit]
	credits Pipe[int] // VC indices of freed buffer slots, travelling upstream

	Phys *Phys

	// SerdesCycles is the number of link cycles one flit occupies the
	// physical wires: ceil(flitBits / (physBits × speedup)). 1 means a
	// full-width broadside link (§3.1's "wide (almost 300-bit) flit ...
	// sent broadside").
	SerdesCycles int
	busy         int

	// LengthPitches is the physical length of the link in tile pitches,
	// used for energy accounting.
	LengthPitches float64

	// Meter, when non-nil, accrues wire energy per traversal.
	Meter *power.Meter

	// Util counts occupied cycles; Util.Rate() is the §4.4 duty factor.
	Util stats.Counter

	// pendingCredits is a queue of freed-slot VC indices awaiting the
	// reverse wires; creditHead indexes its logical front so dequeuing is
	// O(1) without reslicing away reusable capacity.
	pendingCredits []int
	creditHead     int

	// creditBuf backs the creditVCs slice returned by Deliver, reused
	// every cycle (see Deliver's contract).
	creditBuf []int

	// pool, when non-nil, receives flits the link destroys (dead-channel
	// drops) or replaces (physical-layer copies), so a pooled network's
	// flit accounting stays balanced.
	pool *flit.Pool

	// probe, when non-nil, accrues the channel's telemetry counters
	// (flits, credits); nil is the zero-overhead disabled path.
	probe *telemetry.LinkProbe

	// Elastic channel state (§3.3, ref [4] "Elastic Interconnects"):
	// the repeaters along the wire double as flit latches with local
	// ready/valid backpressure, so the receiving router can stall the wire
	// instead of spending credit-covered buffer space. stages[0] is the
	// receiver end.
	elastic bool
	stages  []*flit.Flit

	// down marks the channel dead (runtime fault injection or watchdog
	// fencing): the wires still accept flits — the sender cannot tell —
	// but everything in transit is lost, in both directions.
	down bool

	// FaultLostFlits and FaultLostCredits count traffic dropped while the
	// link was down.
	FaultLostFlits   int64
	FaultLostCredits int64
}

// Config parameterizes NewLink.
type Config struct {
	Name          string
	LatencyCycles int     // wire traversal latency (default 1)
	SerdesCycles  int     // cycles per flit on the wires (default 1)
	LengthPitches float64 // physical length
	Phys          *Phys   // physical layer; nil for an ideal link
	Meter         *power.Meter

	// Elastic turns the wire into an elastic channel: its LatencyCycles
	// repeater stages buffer flits with hop-by-hop backpressure, and the
	// receiver pops flits only when it has space (DeliverElastic). No
	// credits are needed; the flow-control loop closes at the wire.
	Elastic bool
}

// New returns a link from the configuration.
func New(cfg Config) *Link {
	if cfg.LatencyCycles < 1 {
		cfg.LatencyCycles = 1
	}
	if cfg.SerdesCycles < 1 {
		cfg.SerdesCycles = 1
	}
	l := &Link{
		Name:          cfg.Name,
		pipe:          *NewPipe[*flit.Flit](cfg.LatencyCycles),
		credits:       *NewPipe[int](cfg.LatencyCycles),
		Phys:          cfg.Phys,
		SerdesCycles:  cfg.SerdesCycles,
		LengthPitches: cfg.LengthPitches,
		Meter:         cfg.Meter,
	}
	if cfg.Elastic {
		l.elastic = true
		l.stages = make([]*flit.Flit, cfg.LatencyCycles)
	}
	return l
}

// Elastic reports whether the link is an elastic channel.
func (l *Link) Elastic() bool { return l.elastic }

// SetPool attaches the owning network's flit pool. Flits the link drops
// (dead channel) or replaces (physical-layer copy) are recycled into it.
func (l *Link) SetPool(p *flit.Pool) { l.pool = p }

// SetProbe attaches the channel's telemetry probe (nil disables it).
func (l *Link) SetProbe(p *telemetry.LinkProbe) { l.probe = p }

// Idle reports whether the link has nothing to do this cycle beyond
// ticking its utilization counter: wires free, no flits or credits in
// flight, none waiting. The delivery phase uses it to skip idle links.
func (l *Link) Idle() bool {
	if l.busy != 0 || l.creditHead < len(l.pendingCredits) || !l.credits.Empty() {
		return false
	}
	if l.elastic {
		for _, f := range l.stages {
			if f != nil {
				return false
			}
		}
		return true
	}
	return l.pipe.Empty()
}

// EntryAlwaysFree reports whether the link's input register is free on
// every cycle once that cycle's Deliver has run: a non-elastic link with
// SerdesCycles == 1 shifts its entry slot empty on each delivery and its
// wires are never busy across a cycle boundary, so a sender arbitrating
// after the delivery phase may skip the CanSend check entirely. Elastic
// channels (entry stage backpressured by the receiver) and serialized
// links (wires busy for SerdesCycles) must still be polled.
func (l *Link) EntryAlwaysFree() bool { return !l.elastic && l.SerdesCycles == 1 }

// SetDown kills (or revives) the channel. A dead channel keeps accepting
// traffic at the sending end but delivers nothing: flits and credits
// vanish on the wires, which is what makes credit-starvation watchdogs the
// right detector.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the channel is dead.
func (l *Link) Down() bool { return l.down }

// CanSend reports whether a flit may enter the link this cycle (wires idle
// and input register or entry stage free).
func (l *Link) CanSend() bool {
	if l.busy != 0 {
		return false
	}
	if l.elastic {
		return l.stages[len(l.stages)-1] == nil
	}
	return l.pipe.CanSend()
}

// Send places a flit onto the link. The caller must have checked CanSend.
func (l *Link) Send(f *flit.Flit) error {
	if !l.CanSend() {
		return fmt.Errorf("link %s: send while busy", l.Name)
	}
	if l.elastic {
		l.stages[len(l.stages)-1] = f
	} else if err := l.pipe.Send(f); err != nil {
		return err
	}
	l.busy = l.SerdesCycles
	if l.probe != nil {
		l.probe.OnSend(f.Type.IsHead())
	}
	if l.Meter != nil {
		l.Meter.AddWire(f.PayloadBits(), flit.OverheadBits, l.LengthPitches)
	}
	return nil
}

// SendCredit returns one freed buffer slot for the given VC to the
// upstream router. Multiple credits per cycle are coalesced onto the
// reverse channel over successive cycles.
func (l *Link) SendCredit(vc int) {
	if l.creditHead == len(l.pendingCredits) {
		// Queue drained: rewind so the backing array is reused instead of
		// growing without bound.
		l.pendingCredits = l.pendingCredits[:0]
		l.creditHead = 0
	}
	l.pendingCredits = append(l.pendingCredits, vc)
}

// Deliver advances the link by one cycle. It returns the flit completing
// its traversal this cycle (with the physical layer applied to its
// payload), or nil. Credits completing their reverse traversal are
// returned in creditVCs, a slice that is only valid until the next
// Deliver call (the link reuses its backing array every cycle). Call
// exactly once per cycle, in the global delivery phase.
func (l *Link) Deliver() (f *flit.Flit, creditVCs []int) {
	if l.busy > 0 {
		l.busy--
		l.Util.Tick(1)
	} else {
		l.Util.Tick(0)
	}
	creditVCs = l.creditBuf[:0]
	if vc, ok := l.credits.Shift(); ok {
		if l.down {
			l.FaultLostCredits++
		} else {
			creditVCs = append(creditVCs, vc)
			if l.probe != nil {
				l.probe.OnCredit()
			}
		}
	}
	l.creditBuf = creditVCs
	if l.creditHead < len(l.pendingCredits) && l.credits.CanSend() {
		// One credit enters the reverse wires per cycle.
		if err := l.credits.Send(l.pendingCredits[l.creditHead]); err == nil {
			l.creditHead++
		}
	}
	out, ok := l.pipe.Shift()
	if !ok {
		return nil, creditVCs
	}
	if l.down {
		l.FaultLostFlits++
		if l.pool != nil {
			l.pool.Put(out)
		}
		return nil, creditVCs
	}
	if l.Phys != nil && out.Data != nil {
		out = l.physCopy(out)
	}
	return out, creditVCs
}

// physCopy applies the physical layer to a copy of the flit, so the
// sender's flit is never mutated (steering and transient faults change the
// delivered bits, not the injected ones). With a pool attached the copy
// comes from the pool and the original goes back, keeping get/put counts
// balanced.
func (l *Link) physCopy(src *flit.Flit) *flit.Flit {
	var out *flit.Flit
	if l.pool != nil {
		out = l.pool.Get()
	} else {
		out = &flit.Flit{}
	}
	*out = *src
	out.Data = l.Phys.Traverse(src.Data, len(src.Data)*8)
	if l.pool != nil {
		l.pool.Put(src)
	}
	return out
}

// DeliverElastic advances an elastic link by one cycle: the head flit is
// offered to accept and pops only if accepted; the remaining flits slide
// toward the receiver through free stages. Call exactly once per cycle in
// the delivery phase instead of Deliver.
func (l *Link) DeliverElastic(accept func(f *flit.Flit) bool) *flit.Flit {
	if !l.elastic {
		panic(fmt.Sprintf("link %s: DeliverElastic on a non-elastic link", l.Name))
	}
	if l.busy > 0 {
		l.busy--
		l.Util.Tick(1)
	} else {
		l.Util.Tick(0)
	}
	var out *flit.Flit
	if head := l.stages[0]; head != nil && l.down {
		l.FaultLostFlits++
		l.stages[0] = nil
		if l.pool != nil {
			l.pool.Put(head)
		}
	} else if head != nil && accept(head) {
		out = head
		l.stages[0] = nil
	}
	for i := 0; i < len(l.stages)-1; i++ {
		if l.stages[i] == nil {
			l.stages[i] = l.stages[i+1]
			l.stages[i+1] = nil
		}
	}
	if out != nil && l.Phys != nil && out.Data != nil {
		out = l.physCopy(out)
	}
	return out
}

// Reset empties the link for a fresh run in place: in-flight flits are
// recycled into the pool, the credit channel and pending-credit queue are
// cleared, the utilization counter rewinds, and fault state (down flag,
// loss counters) is erased. Configuration — latency, serdes, elasticity,
// probe, pool — is kept.
func (l *Link) Reset() {
	for i := range l.pipe.slots {
		if s := &l.pipe.slots[i]; s.full && l.pool != nil {
			l.pool.Put(s.v)
		}
	}
	l.pipe.Reset()
	l.credits.Reset()
	l.busy = 0
	l.Util.Reset()
	l.pendingCredits = l.pendingCredits[:0]
	l.creditHead = 0
	for i := range l.stages {
		if l.stages[i] != nil {
			if l.pool != nil {
				l.pool.Put(l.stages[i])
			}
			l.stages[i] = nil
		}
	}
	l.down = false
	l.FaultLostFlits = 0
	l.FaultLostCredits = 0
}

// InFlight reports the number of flits inside the link.
func (l *Link) InFlight() int {
	if l.elastic {
		n := 0
		for _, f := range l.stages {
			if f != nil {
				n++
			}
		}
		return n
	}
	return l.pipe.InFlight()
}

// Latency reports the link's traversal latency in cycles.
func (l *Link) Latency() int { return l.pipe.Latency() }
