package link

import (
	"repro/internal/checkpoint"
	"repro/internal/flit"
)

// savePipeFlits serialises a flit pipe positionally: one full/value pair
// per slot, so the restored pipe's traversal timing is exact.
func savePipeFlits(e *checkpoint.Encoder, p *Pipe[*flit.Flit]) {
	e.U32(uint32(len(p.slots)))
	for _, s := range p.slots {
		e.Bool(s.full)
		if s.full {
			s.v.SaveState(e)
		}
	}
}

func restorePipeFlits(d *checkpoint.Decoder, p *Pipe[*flit.Flit], pool *flit.Pool) {
	n := d.Count(1)
	if n != len(p.slots) {
		if d.Err() == nil {
			d.Fail("pipe depth mismatch: checkpoint has %d slots, link has %d", n, len(p.slots))
		}
		return
	}
	p.count = 0
	for i := range p.slots {
		p.slots[i] = slot[*flit.Flit]{}
		if d.Bool() {
			if f := flit.RestoreFlit(d, pool); f != nil {
				p.slots[i] = slot[*flit.Flit]{v: f, full: true}
				p.count++
			}
		}
	}
}

func savePipeInts(e *checkpoint.Encoder, p *Pipe[int]) {
	e.U32(uint32(len(p.slots)))
	for _, s := range p.slots {
		e.Bool(s.full)
		if s.full {
			e.Int(s.v)
		}
	}
}

func restorePipeInts(d *checkpoint.Decoder, p *Pipe[int]) {
	n := d.Count(1)
	if n != len(p.slots) {
		if d.Err() == nil {
			d.Fail("credit pipe depth mismatch: checkpoint has %d slots, link has %d", n, len(p.slots))
		}
		return
	}
	p.count = 0
	for i := range p.slots {
		p.slots[i] = slot[int]{}
		if d.Bool() {
			p.slots[i] = slot[int]{v: d.Int(), full: true}
			p.count++
		}
	}
}


// SaveState serialises the link's dynamic state: both pipes, the serdes
// busy countdown, the pending-credit queue, elastic stages, utilization,
// and fault status. Configuration (latency, serdes width, physical layer)
// is not saved — the restored link must be built from the same config.
func (l *Link) SaveState(e *checkpoint.Encoder) {
	savePipeFlits(e, &l.pipe)
	savePipeInts(e, &l.credits)
	e.Int(l.busy)
	l.Util.SaveState(e)
	pending := l.pendingCredits[l.creditHead:]
	e.U32(uint32(len(pending)))
	for _, vc := range pending {
		e.Int(vc)
	}
	e.Bool(l.elastic)
	if l.elastic {
		e.U32(uint32(len(l.stages)))
		for _, f := range l.stages {
			e.Bool(f != nil)
			if f != nil {
				f.SaveState(e)
			}
		}
	}
	e.Bool(l.down)
	e.I64(l.FaultLostFlits)
	e.I64(l.FaultLostCredits)
}

// RestoreState restores a link saved with SaveState into a link built
// from the same configuration. In-flight flits are drawn from pool.
func (l *Link) RestoreState(d *checkpoint.Decoder, pool *flit.Pool) {
	restorePipeFlits(d, &l.pipe, pool)
	restorePipeInts(d, &l.credits)
	l.busy = d.Int()
	l.Util.RestoreState(d)
	nPending := d.Count(8)
	l.pendingCredits = l.pendingCredits[:0]
	l.creditHead = 0
	for i := 0; i < nPending; i++ {
		l.pendingCredits = append(l.pendingCredits, d.Int())
	}
	elastic := d.Bool()
	if elastic != l.elastic {
		d.Fail("elastic mismatch: checkpoint %v, link %v", elastic, l.elastic)
		return
	}
	if l.elastic {
		n := d.Count(1)
		if n != len(l.stages) {
			if d.Err() == nil {
				d.Fail("elastic stage count mismatch: checkpoint %d, link %d", n, len(l.stages))
			}
			return
		}
		for i := range l.stages {
			l.stages[i] = nil
			if d.Bool() {
				l.stages[i] = flit.RestoreFlit(d, pool)
			}
		}
	}
	l.down = d.Bool()
	l.FaultLostFlits = d.I64()
	l.FaultLostCredits = d.I64()
}
