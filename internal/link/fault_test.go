package link

import (
	"testing"

	"repro/internal/flit"
)

// TestPhysECCDoubleHardFaultDetected drives the detected-but-uncorrectable
// path through the transport layer: two stuck-at-zero data lanes corrupt
// two codeword bits of the same flit, SECDED flags the word rather than
// miscorrecting it, and the link accounts it under DetectedFlits.
func TestPhysECCDoubleHardFaultDetected(t *testing.T) {
	p := NewPhys(32, 2, nil)
	p.ECC = true
	for _, w := range []int{3, 9} {
		if err := p.InjectHardFault(w); err != nil {
			t.Fatal(err)
		}
	}
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF} // both faulted lanes carry a 1
	out := p.Traverse(data, 32)
	if p.DetectedFlits != 1 {
		t.Fatalf("DetectedFlits = %d, want 1", p.DetectedFlits)
	}
	if p.CorrectedFlits != 0 {
		t.Fatalf("double error was 'corrected' (%d flits)", p.CorrectedFlits)
	}
	if p.BitErrors < 2 {
		t.Fatalf("BitErrors = %d, want >= 2 residual errors", p.BitErrors)
	}
	if getBit(out, 3) && getBit(out, 9) {
		t.Fatal("stuck-at-zero lanes delivered 1s without correction")
	}
}

// A single stuck-at-zero lane, by contrast, must be transparently healed
// by ECC: same transport path, corrected not detected.
func TestPhysECCCorrectsSingleHardFault(t *testing.T) {
	p := NewPhys(32, 2, nil)
	p.ECC = true
	if err := p.InjectHardFault(3); err != nil {
		t.Fatal(err)
	}
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	out := p.Traverse(data, 32)
	if p.CorrectedFlits != 1 || p.DetectedFlits != 0 {
		t.Fatalf("Corrected=%d Detected=%d, want 1,0", p.CorrectedFlits, p.DetectedFlits)
	}
	if p.BitErrors != 0 {
		t.Fatalf("residual BitErrors = %d after correction", p.BitErrors)
	}
	if !getBit(out, 3) {
		t.Fatal("corrected payload lost the faulted bit")
	}
}

// TestLinkDownDropsTraffic checks the fail-stop fence: a dead link keeps
// accepting flits and credits (the sender cannot tell) but delivers
// nothing, counting the losses in both directions.
func TestLinkDownDropsTraffic(t *testing.T) {
	l := New(Config{Name: "t", LatencyCycles: 1})
	if l.Down() {
		t.Fatal("new link reports down")
	}
	l.SetDown(true)
	if !l.Down() {
		t.Fatal("SetDown(true) not reported")
	}
	if !l.CanSend() {
		t.Fatal("down link must still accept sends")
	}
	if err := l.Send(&flit.Flit{Type: flit.Head, VC: 0}); err != nil {
		t.Fatal(err)
	}
	l.SendCredit(2)
	f, credits := l.Deliver() // flit completes; credit enters reverse wires
	if f != nil || len(credits) != 0 {
		t.Fatalf("down link delivered flit=%v credits=%v", f, credits)
	}
	if _, credits = l.Deliver(); len(credits) != 0 { // credit completes
		t.Fatalf("down link returned credits %v", credits)
	}
	if l.FaultLostFlits != 1 || l.FaultLostCredits != 1 {
		t.Fatalf("lost flits=%d credits=%d, want 1,1", l.FaultLostFlits, l.FaultLostCredits)
	}

	// Revival (used only by tests and revocable injections): traffic flows
	// again.
	l.SetDown(false)
	if err := l.Send(&flit.Flit{Type: flit.Tail, VC: 1}); err != nil {
		t.Fatal(err)
	}
	l.busy = 0 // ignore serdes spacing for the probe
	if f, _ = l.Deliver(); f == nil || f.Type != flit.Tail {
		t.Fatalf("revived link lost flit, got %v", f)
	}
}

// TestElasticLinkDownDropsHead: the elastic variant drains its head stage
// into the void while down, so in-flight flits are lost one per cycle.
func TestElasticLinkDownDropsHead(t *testing.T) {
	l := New(Config{Name: "e", LatencyCycles: 2, Elastic: true})
	if err := l.Send(&flit.Flit{Type: flit.Head}); err != nil {
		t.Fatal(err)
	}
	l.SetDown(true)
	accepted := 0
	accept := func(*flit.Flit) bool { accepted++; return true }
	// Stage walk: cycle 1 slides the flit to the head, cycle 2 drops it.
	for i := 0; i < 3; i++ {
		if f := l.DeliverElastic(accept); f != nil {
			t.Fatalf("cycle %d: down elastic link delivered %v", i, f)
		}
	}
	if accepted != 0 {
		t.Fatal("down elastic link offered a flit to the receiver")
	}
	if l.FaultLostFlits != 1 {
		t.Fatalf("FaultLostFlits = %d, want 1", l.FaultLostFlits)
	}
	if l.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drop", l.InFlight())
	}
}
