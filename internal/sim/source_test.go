package sim

import (
	"math/rand"
	"testing"
)

// TestCountedSourceTransparent pins the property the golden suite relies
// on: a CountedSource-backed rand.Rand produces exactly the sequence of a
// bare rand.NewSource-backed one, across the mix of draw kinds the
// simulator uses.
func TestCountedSourceTransparent(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(NewCountedSource(42))
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("draw %d: Float64 %v != %v", i, x, y)
			}
		case 1:
			if x, y := a.Intn(97), b.Intn(97); x != y {
				t.Fatalf("draw %d: Intn %v != %v", i, x, y)
			}
		case 2:
			if x, y := a.ExpFloat64(), b.ExpFloat64(); x != y {
				t.Fatalf("draw %d: ExpFloat64 %v != %v", i, x, y)
			}
		case 3:
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("draw %d: Uint64 %v != %v", i, x, y)
			}
		}
	}
}

// TestCountedSourceRestore checks that (seed, draws) fully determines the
// stream position: a restored source continues with the same values as
// the original would have.
func TestCountedSourceRestore(t *testing.T) {
	src := NewCountedSource(7)
	rng := rand.New(src)
	for i := 0; i < 137; i++ {
		rng.Float64()
	}
	draws := src.Draws()
	var want []float64
	for i := 0; i < 50; i++ {
		want = append(want, rng.Float64())
	}

	src2 := NewCountedSource(7)
	src2.Restore(draws)
	if src2.Draws() != draws {
		t.Fatalf("Draws after Restore = %d, want %d", src2.Draws(), draws)
	}
	rng2 := rand.New(src2)
	for i, w := range want {
		if got := rng2.Float64(); got != w {
			t.Fatalf("value %d after restore: %v, want %v", i, got, w)
		}
	}
}

// TestKernelRestoreClock checks the kernel-level wrapper.
func TestKernelRestoreClock(t *testing.T) {
	k := NewKernel(3)
	for i := 0; i < 10; i++ {
		k.RNG().Intn(100)
	}
	k.AddPhase("noop", func(Cycle) {})
	k.Run(25)
	draws, now := k.RNGDraws(), k.Now()
	want := k.RNG().Int63()

	k2 := NewKernel(3)
	k2.RestoreClock(now, draws)
	if k2.Now() != now || k2.RNGDraws() != draws {
		t.Fatalf("restored clock = (%d, %d), want (%d, %d)", k2.Now(), k2.RNGDraws(), now, draws)
	}
	if got := k2.RNG().Int63(); got != want {
		t.Fatalf("restored RNG drew %d, want %d", got, want)
	}
}
