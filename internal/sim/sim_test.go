package sim

import (
	"reflect"
	"testing"
)

func TestPhaseOrderAndCount(t *testing.T) {
	k := NewKernel(1)
	var trace []string
	k.AddPhase("a", func(now Cycle) { trace = append(trace, "a") })
	k.AddPhase("b", func(now Cycle) { trace = append(trace, "b") })
	k.AddPhase("c", func(now Cycle) { trace = append(trace, "c") })
	k.Run(2)
	want := []string{"a", "b", "c", "a", "b", "c"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	if k.Now() != 2 {
		t.Fatalf("now = %d, want 2", k.Now())
	}
	if !reflect.DeepEqual(k.PhaseNames(), []string{"a", "b", "c"}) {
		t.Fatalf("phase names = %v", k.PhaseNames())
	}
}

func TestPhaseSeesCurrentCycle(t *testing.T) {
	k := NewKernel(1)
	var seen []Cycle
	k.AddPhase("obs", func(now Cycle) { seen = append(seen, now) })
	k.Run(3)
	if !reflect.DeepEqual(seen, []Cycle{0, 1, 2}) {
		t.Fatalf("cycles = %v", seen)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int {
		k := NewKernel(seed)
		var draws []int
		k.AddPhase("draw", func(now Cycle) { draws = append(draws, k.RNG().Intn(1000)) })
		k.Run(50)
		return draws
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different draws")
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical draws (suspicious)")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.AddPhase("inc", func(now Cycle) { count++ })
	ok := k.RunUntil(func() bool { return count >= 5 }, 100)
	if !ok {
		t.Fatal("condition not reached")
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5 (condition checked before each step)", count)
	}
	ok = k.RunUntil(func() bool { return count >= 1000 }, 10)
	if ok {
		t.Fatal("RunUntil reported success past budget")
	}
}

func TestNilPhasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil phase did not panic")
		}
	}()
	NewKernel(1).AddPhase("bad", nil)
}

func TestSeedAccessor(t *testing.T) {
	if got := NewKernel(99).Seed(); got != 99 {
		t.Fatalf("seed = %d", got)
	}
}
