package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// shardedCounter is a toy sharded workload: each shard accumulates into
// its own slot during the shard phase; the merge folds the slots into the
// global total. Any interleaving of the shard bodies must produce the
// same total, which is exactly the commutativity contract AddShardedPhase
// demands.
type shardedCounter struct {
	slots []int64
	total int64
	steps int64
}

func (sc *shardedCounter) shard(now Cycle, s int) {
	sc.slots[s] += int64(s+1) * (int64(now) + 1)
}

func (sc *shardedCounter) merge(now Cycle) {
	for s := range sc.slots {
		sc.total += sc.slots[s]
		sc.slots[s] = 0
	}
	sc.steps++
}

func runCounter(t *testing.T, shards int, cycles int64) *shardedCounter {
	t.Helper()
	k := NewKernel(1)
	sc := &shardedCounter{slots: make([]int64, shards)}
	k.SetShards(shards)
	k.AddShardedPhase("count", sc.shard, sc.merge)
	k.Run(cycles)
	if k.Now() != cycles {
		t.Fatalf("shards=%d: Now()=%d after Run(%d)", shards, k.Now(), cycles)
	}
	return sc
}

// TestShardedRunMatchesSequential checks that the parallel cycle loop
// produces the same state and cycle count as the sequential one for every
// shard count.
func TestShardedRunMatchesSequential(t *testing.T) {
	const cycles = 200
	want := runCounter(t, 1, cycles)
	for _, shards := range []int{2, 3, 4, 8} {
		got := runCounter(t, shards, cycles)
		// Total differs across shard counts by construction (slot s
		// weights by s+1), so compare against an inline-computed model.
		var model int64
		for now := int64(0); now < cycles; now++ {
			for s := 0; s < shards; s++ {
				model += int64(s+1) * (now + 1)
			}
		}
		if got.total != model {
			t.Errorf("shards=%d: total=%d want %d", shards, got.total, model)
		}
		if got.steps != cycles {
			t.Errorf("shards=%d: merge ran %d times, want %d", shards, got.steps, cycles)
		}
	}
	if want.steps != cycles {
		t.Fatalf("sequential: merge ran %d times", want.steps)
	}
}

// TestShardedPhaseOrdering interleaves serial and sharded phases and
// checks every cycle observes them in registration order, with all shard
// bodies complete before the merge and the next phase.
func TestShardedPhaseOrdering(t *testing.T) {
	k := NewKernel(1)
	const shards = 4
	k.SetShards(shards)
	var log []string
	var inFlight atomic.Int32
	k.AddPhase("pre", func(now Cycle) { log = append(log, fmt.Sprintf("pre@%d", now)) })
	k.AddShardedPhase("work", func(now Cycle, s int) {
		inFlight.Add(1)
		inFlight.Add(-1)
	}, func(now Cycle) {
		if n := inFlight.Load(); n != 0 {
			t.Errorf("merge@%d ran with %d shard bodies in flight", now, n)
		}
		log = append(log, fmt.Sprintf("merge@%d", now))
	})
	k.AddPhase("post", func(now Cycle) { log = append(log, fmt.Sprintf("post@%d", now)) })
	k.Run(3)
	want := []string{
		"pre@0", "merge@0", "post@0",
		"pre@1", "merge@1", "post@1",
		"pre@2", "merge@2", "post@2",
	}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d]=%q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
}

// TestShardedRunUntil checks RunUntil's contract on the parallel path:
// cond is evaluated single-threaded before each cycle, the loop stops the
// cycle cond first holds, and budget exhaustion reports cond's final value.
func TestShardedRunUntil(t *testing.T) {
	k := NewKernel(1)
	k.SetShards(3)
	var ticks int64
	k.AddShardedPhase("tick", func(now Cycle, s int) {
		if s == 0 {
			ticks++
		}
	}, nil)
	if !k.RunUntil(func() bool { return ticks >= 5 }, 100) {
		t.Fatal("RunUntil should have satisfied cond")
	}
	if ticks != 5 || k.Now() != 5 {
		t.Fatalf("ticks=%d now=%d, want 5/5", ticks, k.Now())
	}
	if k.RunUntil(func() bool { return ticks >= 1000 }, 10) {
		t.Fatal("RunUntil should have exhausted its budget")
	}
	if k.Now() != 15 {
		t.Fatalf("now=%d after budget exhaustion, want 15", k.Now())
	}
}

// TestShardedStepInline checks that Step with shards configured runs the
// shard bodies inline in shard order without goroutines.
func TestShardedStepInline(t *testing.T) {
	k := NewKernel(1)
	k.SetShards(4)
	var order []int
	k.AddShardedPhase("inline", func(now Cycle, s int) { order = append(order, s) }, nil)
	k.Step()
	if len(order) != 4 {
		t.Fatalf("order=%v", order)
	}
	for s, got := range order {
		if got != s {
			t.Fatalf("inline shard order %v, want 0..3", order)
		}
	}
}

// TestSetShardsClamp checks the sequential floor.
func TestSetShardsClamp(t *testing.T) {
	k := NewKernel(1)
	if k.Shards() != 1 {
		t.Fatalf("default Shards()=%d", k.Shards())
	}
	k.SetShards(0)
	if k.Shards() != 1 {
		t.Fatalf("SetShards(0) -> %d", k.Shards())
	}
	k.SetShards(6)
	if k.Shards() != 6 {
		t.Fatalf("SetShards(6) -> %d", k.Shards())
	}
}
