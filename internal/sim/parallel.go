package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultParallelism is the worker count used when a caller passes a
// non-positive value to ForEach: the process's GOMAXPROCS.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(0..n-1) across a bounded pool of workers and waits for
// all of them. Each index is one independent job — in this repository, one
// simulation with its own Kernel and seed — so the work parallelizes
// without sharing any simulation state. Results must be written by fn into
// caller-owned per-index slots; because every index is visited exactly
// once, no locking is needed on the result side and output order is
// decided by the caller, not by scheduling.
//
// workers <= 0 selects DefaultParallelism(). If any fn returns an error,
// ForEach returns the error of the lowest failing index (deterministic
// regardless of scheduling); all indices are still visited.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, deterministic stack traces.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		next int64 = -1
		mu   sync.Mutex
		errI = n // lowest failing index
		errV error
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errI {
						errI, errV = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return errV
}
