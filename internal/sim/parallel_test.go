package sim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 100
		counts := make([]int64, n)
		if err := ForEach(n, workers, func(i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int64
	var mu sync.Mutex
	err := ForEach(50, workers, func(i int) error {
		c := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent jobs with %d workers", peak, workers)
	}
}

func TestForEachLowestErrorWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := ForEach(20, workers, func(i int) error {
			switch i {
			case 17:
				return errB
			case 5:
				return errA
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want error of lowest index", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
}
