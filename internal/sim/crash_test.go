package sim

import (
	"strings"
	"testing"
)

// runExpectingPanic invokes fn and returns the recovered value, failing the
// test if fn returned normally.
func runExpectingPanic(t *testing.T, fn func()) (recovered any) {
	t.Helper()
	defer func() {
		recovered = recover()
		if recovered == nil {
			t.Fatal("expected a panic to propagate out of the kernel")
		}
	}()
	fn()
	return nil
}

// TestCrashHookObservesPanic: the hook sees the cycle the kernel was
// executing and the original panic value, and the panic still unwinds to
// the caller afterwards.
func TestCrashHookObservesPanic(t *testing.T) {
	k := NewKernel(1)
	k.AddPhase("boom", func(now Cycle) {
		if now == 5 {
			panic("phase exploded")
		}
	})
	var hookNow Cycle = -1
	var hookVal any
	calls := 0
	k.SetCrashHook(func(now Cycle, recovered any) {
		hookNow, hookVal, calls = now, recovered, calls+1
	})

	r := runExpectingPanic(t, func() { k.Run(100) })
	if s, ok := r.(string); !ok || s != "phase exploded" {
		t.Fatalf("re-raised panic = %v, want the original value", r)
	}
	if calls != 1 {
		t.Fatalf("hook ran %d times, want 1", calls)
	}
	if hookNow != 5 {
		t.Fatalf("hook saw cycle %d, want the mid-crash cycle 5", hookNow)
	}
	if s, ok := hookVal.(string); !ok || s != "phase exploded" {
		t.Fatalf("hook saw recovered value %v", hookVal)
	}
}

// TestCrashHookPanicIsSwallowed: a hook that itself panics must not mask
// the original cause — the caller still sees the phase's panic value.
func TestCrashHookPanicIsSwallowed(t *testing.T) {
	k := NewKernel(1)
	k.AddPhase("boom", func(now Cycle) {
		if now == 3 {
			panic("original cause")
		}
	})
	k.SetCrashHook(func(now Cycle, recovered any) {
		panic("hook is also broken")
	})
	r := runExpectingPanic(t, func() { k.Run(10) })
	if s, ok := r.(string); !ok || !strings.Contains(s, "original cause") {
		t.Fatalf("caller saw %v; the hook's own panic masked the cause", r)
	}
}

// TestCrashHookGuardsRunUntil: the guard covers RunUntil the same as Run.
func TestCrashHookGuardsRunUntil(t *testing.T) {
	k := NewKernel(1)
	k.AddPhase("boom", func(now Cycle) {
		if now == 7 {
			panic("until crash")
		}
	})
	var hookNow Cycle = -1
	k.SetCrashHook(func(now Cycle, recovered any) { hookNow = now })
	r := runExpectingPanic(t, func() { k.RunUntil(func() bool { return false }, 100) })
	if s, ok := r.(string); !ok || s != "until crash" {
		t.Fatalf("re-raised panic = %v", r)
	}
	if hookNow != 7 {
		t.Fatalf("hook saw cycle %d, want 7", hookNow)
	}
}

// TestNoHookPanicStillPropagates: without a hook nothing recovers — the
// panic reaches the caller untouched (and no guard frame is even pushed).
func TestNoHookPanicStillPropagates(t *testing.T) {
	k := NewKernel(1)
	k.AddPhase("boom", func(now Cycle) { panic("bare") })
	r := runExpectingPanic(t, func() { k.Run(1) })
	if s, ok := r.(string); !ok || s != "bare" {
		t.Fatalf("panic = %v, want the phase's value", r)
	}
}
