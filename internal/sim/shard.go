package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the kernel's intra-cycle parallel execution mode:
// phases registered with AddShardedPhase run their shard body concurrently
// on a lockstep pool of worker goroutines, with a barrier between phases.
// The scheduler preserves the kernel's determinism contract because the
// *decomposition* is deterministic — each shard owns a fixed slice of the
// simulation and cross-shard effects are deferred into per-shard buffers
// applied at the barrier (by the phase's merge function) — so the state at
// every barrier is identical to a sequential execution of the same phases.
//
// The pool is spawned per Run/RunUntil call (workers for a 4000-cycle run
// amortize one spawn) and runs all workers through the same cycle script:
//
//	decide (worker 0: budget/stop condition)      -> barrier
//	for each phase:
//	    sharded: every worker runs shard(now, id)  -> barrier
//	             worker 0 runs merge(now)          -> barrier (if merge)
//	    serial:  worker 0 runs fn(now)             -> barrier
//	worker 0 advances now
//
// Barriers are sense-reversing spin barriers on atomics; the Go memory
// model's sequentially-consistent atomics make every write before a
// worker's arrival visible to every worker after the release, which is
// also what keeps the race detector quiet for the data handed across.

// ShardFunc is the per-shard body of a sharded phase: it is called once
// per shard per cycle, concurrently across shards, and must only touch
// state its shard owns (plus its shard's deferral buffers).
type ShardFunc func(now Cycle, shard int)

// barrier is a central sense-reversing barrier for n participants. Each
// waiter keeps a local generation counter; the last arriver of a
// generation resets the count and publishes the new generation.
//
// Waiters escalate: spin on the generation atomic (cheapest when every
// worker has its own core and the others are at most a phase away), then
// yield to the Go scheduler, then park on a condition variable. The last
// stage is what keeps oversubscribed runs sane — with fewer real CPUs
// than workers (GOMAXPROCS raised past an affinity mask or container
// quota) a spinning waiter only steals the timeslice the releaser needs,
// so waiters must genuinely sleep. On adequate hardware the spin stage
// hits and the lock is never contended.
type barrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32

	// spinLimit bounds busy-waiting before yielding to the scheduler.
	// When the machine has fewer schedulable threads than workers the
	// other participants cannot be running, so spinning would only delay
	// them; skip straight to yielding in that case.
	spinLimit int

	mu   sync.Mutex
	cond sync.Cond
}

func newBarrier(n int) *barrier {
	b := &barrier{n: int32(n), spinLimit: 1}
	// GOMAXPROCS can exceed the CPUs the process may actually use (an
	// affinity mask, a container quota); NumCPU respects the mask, and
	// spinning beyond the real core count just starves the other workers.
	procs := runtime.GOMAXPROCS(0)
	if cpus := runtime.NumCPU(); cpus < procs {
		procs = cpus
	}
	if procs >= n {
		b.spinLimit = 256
	}
	b.cond.L = &b.mu
	return b
}

// yieldLimit is how many runtime.Gosched rounds a waiter tries after
// spinning before parking on the condition variable.
const yieldLimit = 64

// await blocks until all n participants have arrived. sense is the
// caller's local generation counter.
func (b *barrier) await(sense *uint32) {
	*sense++
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		// Publish under the lock so a waiter that checked gen and is
		// about to park cannot miss the broadcast.
		b.mu.Lock()
		b.gen.Store(*sense)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for spins := 0; b.gen.Load() != *sense; spins++ {
		if spins < b.spinLimit {
			continue
		}
		if spins < b.spinLimit+yieldLimit {
			runtime.Gosched()
			continue
		}
		b.mu.Lock()
		for b.gen.Load() != *sense {
			b.cond.Wait()
		}
		b.mu.Unlock()
		return
	}
}

// SetShards sets the number of shards phases registered with
// AddShardedPhase execute across. n <= 1 selects the sequential path:
// Run and Step execute shard bodies inline (shard 0..n-1 in order), spawn
// no goroutines, and allocate nothing. n > 1 makes Run and RunUntil drive
// the cycle loop on a lockstep worker pool.
func (k *Kernel) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	k.shards = n
}

// Shards reports the configured shard count (1 = sequential).
func (k *Kernel) Shards() int {
	if k.shards < 1 {
		return 1
	}
	return k.shards
}

// AddShardedPhase appends a phase whose body runs once per shard each
// cycle, concurrently when SetShards(n > 1) is in effect and inline (in
// shard order) otherwise. merge, which may be nil, runs after all shard
// bodies complete — single-threaded, behind a barrier — to apply deferred
// cross-shard effects. Sequential execution of the shard bodies in shard
// order must be equivalent to any concurrent execution; that is the
// registrant's determinism obligation.
func (k *Kernel) AddShardedPhase(name string, shard ShardFunc, merge PhaseFunc) {
	if shard == nil {
		panic("sim: nil sharded phase " + name)
	}
	k.phases = append(k.phases, phase{name: name, shard: shard, merge: merge})
}

// SetBatching configures quiescence-aware epoch batching for the parallel
// runner. At each cycle boundary worker 0 consults ok(); while it reports
// the simulation quiescent (no cross-shard work worth parallelizing),
// up to max cycles are folded into a single barrier epoch and executed
// inline on worker 0 via the sequential Step path. By the AddShardedPhase
// contract — sequential execution of the shard bodies in shard order is
// equivalent to any concurrent execution — the state at the next barrier
// is byte-identical to lockstep execution, and because Step runs the full
// phase schedule for every folded cycle, serial phases (telemetry
// sampling, serve snapshots, the checkpoint phase) still land on their
// exact cycle boundaries. max caps how far a quiescent network can run
// between stop-condition checks, bounding Drain/RunUntil overshoot in
// wall-clock terms only; cond is still evaluated between every cycle.
// max <= 0 or ok == nil disables batching.
func (k *Kernel) SetBatching(max int, ok func() bool) {
	if max < 0 {
		max = 0
	}
	k.batchMax = max
	k.batchOK = ok
}

// Batching reports the configured maximum epoch length (0 = disabled).
func (k *Kernel) Batching() int {
	if k.batchOK == nil {
		return 0
	}
	return k.batchMax
}

// shardRun is the shared state of one parallel Run/RunUntil call.
type shardRun struct {
	k      *Kernel
	b      *barrier
	budget int64
	cond   func() bool

	// Written by worker 0 only, read by the others strictly after a
	// barrier, so plain fields suffice.
	iter int64
	stop bool
	done bool
}

// runParallel drives up to budget cycles on the worker pool, stopping
// early when cond (optional) reports true before a cycle. It reports the
// final cond evaluation (true when cond is nil), matching RunUntil.
func (k *Kernel) runParallel(budget int64, cond func() bool) bool {
	c := &shardRun{k: k, b: newBarrier(k.shards), budget: budget, cond: cond}
	for w := 1; w < k.shards; w++ {
		go c.worker(w)
	}
	c.worker(0)
	return c.done
}

// worker is the per-participant cycle loop; the caller's goroutine acts
// as worker 0 and performs all single-threaded work.
func (c *shardRun) worker(id int) {
	var sense uint32
	for {
		if id == 0 {
			c.decide()
		}
		c.b.await(&sense)
		if c.stop {
			return
		}
		now := c.k.now
		for i := range c.k.phases {
			p := &c.k.phases[i]
			if p.shard != nil {
				p.shard(now, id)
				c.b.await(&sense)
				if p.merge != nil {
					if id == 0 {
						p.merge(now)
					}
					c.b.await(&sense)
				}
			} else {
				if id == 0 {
					p.fn(now)
				}
				c.b.await(&sense)
			}
		}
		if id == 0 {
			c.k.now = now + 1
			c.iter++
		}
	}
}

// decide is worker 0's cycle-boundary bookkeeping: evaluate the stop
// condition (exactly once per boundary, same as the sequential path),
// check the cycle budget, and — when epoch batching is configured and the
// quiescence probe approves — fold up to batchMax cycles into this
// barrier interval via the sequential Step path while the rest of the
// pool waits at the barrier. Falling out of the fold loop (epoch cap hit
// or quiescence lost) hands the next cycle back to the lockstep workers.
func (c *shardRun) decide() {
	for folded := 0; ; folded++ {
		if c.cond != nil && c.cond() {
			c.stop, c.done = true, true
			return
		}
		if c.iter >= c.budget {
			c.stop = true
			c.done = c.cond == nil
			return
		}
		if c.k.batchMax <= 0 || c.k.batchOK == nil ||
			folded >= c.k.batchMax || !c.k.batchOK() {
			return
		}
		c.k.Step()
		c.iter++
	}
}
