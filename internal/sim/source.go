package sim

import "math/rand"

// CountedSource is a rand.Source64 that wraps the standard library's
// seeded source and counts how many values have been drawn. The standard
// source's internal state is unexported, but every Int63/Uint64 call
// advances it by exactly one step — so (seed, draws) is a complete,
// portable serialisation of the stream position: restore recreates the
// source and replays draws steps. Delegating both methods unchanged keeps
// the value sequence bit-identical to a bare rand.NewSource, which is
// what preserves the repository's golden outputs.
type CountedSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// NewCountedSource returns a counted source seeded with seed.
func NewCountedSource(seed int64) *CountedSource {
	return &CountedSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (s *CountedSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountedSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (s *CountedSource) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// SeedValue reports the seed the stream was created (or last re-seeded)
// with.
func (s *CountedSource) SeedValue() int64 { return s.seed }

// Draws reports how many values have been drawn since seeding.
func (s *CountedSource) Draws() uint64 { return s.draws }

// Restore repositions the stream at exactly draws values past its seed by
// reseeding and burning draws steps. Both Int63 and Uint64 advance the
// underlying generator identically, so the burn mix does not matter.
func (s *CountedSource) Restore(draws uint64) {
	s.src.Seed(s.seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
}
