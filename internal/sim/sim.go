// Package sim provides the deterministic cycle-accurate simulation kernel
// underneath the on-chip network model.
//
// The kernel is intentionally simple: a simulation is a fixed, ordered list
// of named phases. Each global cycle runs every phase once, in registration
// order; within a phase, components are visited in registration order. All
// randomness is drawn from a single seeded source, so a simulation with the
// same configuration and seed is bit-for-bit repeatable. That determinism is
// what makes the property tests and paper-reproduction benchmarks in this
// repository meaningful.
package sim

import (
	"fmt"
	"math/rand"
)

// Cycle is a point in simulated time, measured in router clock cycles.
type Cycle = int64

// PhaseFunc is the body of one simulation phase. It receives the current
// cycle number.
type PhaseFunc func(now Cycle)

type phase struct {
	name string
	fn   PhaseFunc

	// shard and merge describe a sharded phase (AddShardedPhase, see
	// shard.go): shard runs once per shard per cycle, merge (optional)
	// applies deferred cross-shard effects behind the phase barrier.
	shard ShardFunc
	merge PhaseFunc
}

// Kernel drives a phased, cycle-accurate simulation.
type Kernel struct {
	now    Cycle
	phases []phase
	rng    *rand.Rand
	src    *CountedSource
	seed   int64

	// shards is the intra-cycle parallelism for sharded phases; <= 1 is
	// the sequential path (see shard.go).
	shards int

	// batchMax/batchOK configure quiescence-aware epoch batching for the
	// parallel runner (SetBatching, see shard.go).
	batchMax int
	batchOK  func() bool

	// crashHook, when set, observes a panic unwinding Run/RunUntil before
	// it propagates (SetCrashHook).
	crashHook func(now Cycle, recovered any)

	// phaseMark is the schedule length recorded by MarkPhases: the
	// network's own phases. Reset truncates anything appended after it
	// (checkpointers, collectors, injectors) so a pooled kernel starts its
	// next run with exactly the built schedule.
	phaseMark int
}

// NewKernel returns a kernel whose random source is seeded with seed.
// The source is a CountedSource so the stream position can be
// checkpointed and restored exactly.
func NewKernel(seed int64) *Kernel {
	src := NewCountedSource(seed)
	return &Kernel{rng: rand.New(src), src: src, seed: seed}
}

// Seed reports the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// RNG returns the kernel's deterministic random source. All stochastic
// decisions in a simulation must draw from this source.
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// Now reports the current cycle. During a phase it is the cycle being
// executed; between Step calls it is the number of completed cycles.
func (k *Kernel) Now() Cycle { return k.now }

// RNGDraws reports how many values have been drawn from the kernel's
// random source, for checkpointing.
func (k *Kernel) RNGDraws() uint64 { return k.src.Draws() }

// RestoreClock repositions the kernel at cycle now with its random source
// exactly draws values past the seed, the restore counterpart of
// (Now, RNGDraws). It must only be called between cycles.
func (k *Kernel) RestoreClock(now Cycle, draws uint64) {
	k.now = now
	k.src.Restore(draws)
}

// AddPhase appends a named phase to the per-cycle schedule. Phases run in
// the order they were added. Adding a phase after the simulation has started
// is allowed and takes effect on the next cycle.
func (k *Kernel) AddPhase(name string, fn PhaseFunc) {
	if fn == nil {
		panic(fmt.Sprintf("sim: nil phase %q", name))
	}
	k.phases = append(k.phases, phase{name: name, fn: fn})
}

// MarkPhases records the current schedule as the kernel's baseline: a
// later Reset truncates every phase added after this call. The network
// calls it once, after registering its own phases, so per-run extras
// (checkpoint writers, serve collectors, fault injectors) appended later
// do not survive into a pooled re-initialization.
func (k *Kernel) MarkPhases() { k.phaseMark = len(k.phases) }

// Reset rewinds the kernel for a fresh run on the same schedule: the
// clock returns to cycle 0, the random source is reseeded (draw count
// zero), phases appended after MarkPhases are dropped, and any crash
// hook is detached. Sharding and batching configuration are kept — they
// were set while the baseline schedule was registered. Must be called
// between cycles.
func (k *Kernel) Reset(seed int64) {
	if k.phaseMark > 0 && len(k.phases) > k.phaseMark {
		for i := k.phaseMark; i < len(k.phases); i++ {
			k.phases[i] = phase{}
		}
		k.phases = k.phases[:k.phaseMark]
	}
	k.now = 0
	k.seed = seed
	k.src.Seed(seed)
	k.crashHook = nil
}

// Step executes one full cycle: every phase once, in order. Sharded
// phases run their shard bodies inline in shard order — which, by the
// determinism contract of AddShardedPhase, produces the same state as a
// parallel cycle — so Step never spawns goroutines.
func (k *Kernel) Step() {
	for i := range k.phases {
		p := &k.phases[i]
		if p.shard != nil {
			for s := 0; s < k.Shards(); s++ {
				p.shard(k.now, s)
			}
			if p.merge != nil {
				p.merge(k.now)
			}
			continue
		}
		p.fn(k.now)
	}
	k.now++
}

// SetCrashHook installs fn to observe a panic unwinding Run or RunUntil
// before it propagates: the flight recorder uses it to freeze its window
// on the way down. The hook runs on the panicking goroutine with the
// simulation mid-cycle — it must treat the state as read-only wreckage.
// The original panic is always re-raised, and a panic inside the hook
// itself is swallowed so it cannot mask the cause. A panic on a pool
// worker goroutine (shards > 1) crashes the process before the runner
// returns and is not observable here.
func (k *Kernel) SetCrashHook(fn func(now Cycle, recovered any)) { k.crashHook = fn }

// crashGuard is the deferred recover behind Run/RunUntil when a crash
// hook is installed.
func (k *Kernel) crashGuard() {
	if r := recover(); r != nil {
		if h := k.crashHook; h != nil {
			func() {
				defer func() { recover() }()
				h(k.now, r)
			}()
		}
		panic(r)
	}
}

// Run executes n cycles, on the lockstep worker pool when SetShards
// configured intra-cycle parallelism.
func (k *Kernel) Run(n int64) {
	if k.crashHook != nil {
		defer k.crashGuard()
	}
	if k.shards > 1 && n > 0 {
		k.runParallel(n, nil)
		return
	}
	for i := int64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the simulation until cond returns true or the cycle budget
// is exhausted. It reports whether cond became true. cond always runs
// single-threaded, between cycles.
func (k *Kernel) RunUntil(cond func() bool, budget int64) bool {
	if k.crashHook != nil {
		defer k.crashGuard()
	}
	if k.shards > 1 && budget > 0 {
		return k.runParallel(budget, cond)
	}
	for i := int64(0); i < budget; i++ {
		if cond() {
			return true
		}
		k.Step()
	}
	return cond()
}

// PhaseNames reports the registered phase names in execution order,
// primarily for tests that pin the kernel's schedule.
func (k *Kernel) PhaseNames() []string {
	names := make([]string, len(k.phases))
	for i, p := range k.phases {
		names[i] = p.name
	}
	return names
}
