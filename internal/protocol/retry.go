package protocol

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// End-to-end checking with retry (§2.5): "modules that required transient
// fault tolerance could employ end-to-end checking with retry by layering
// the checking protocol on top of the network interfaces." The sender
// attaches a sequence number and an FNV-1a checksum; the receiver discards
// corrupted messages and acknowledges good ones; unacknowledged messages
// retransmit after a timeout. Delivery to the consumer is exactly-once and
// in order.

const (
	retryData = 0x20
	retryAck  = 0x21
)

// retry message: [kind(1) seq(8) csum(4) data...]
const retryHeader = 1 + 8 + 4

// checksum covers the kind, the sequence number, and the data, so a bit
// flip anywhere in the message — including the header — is detected. (An
// early version checksummed only the data; a corrupted sequence number
// then slipped through and poisoned the receiver's reorder buffer.)
func checksum(kind byte, seq uint64, data []byte) uint32 {
	h := fnv.New32a()
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint64(hdr[1:], seq)
	_, _ = h.Write(hdr[:])
	_, _ = h.Write(data)
	return h.Sum32()
}

func encodeRetry(kind byte, seq uint64, data []byte) []byte {
	p := make([]byte, retryHeader+len(data))
	p[0] = kind
	binary.LittleEndian.PutUint64(p[1:], seq)
	binary.LittleEndian.PutUint32(p[9:], checksum(kind, seq, data))
	copy(p[retryHeader:], data)
	return p
}

// decodeRetry validates a message end to end; ok is false on any
// corruption.
func decodeRetry(p []byte, wantKind byte) (seq uint64, data []byte, ok bool) {
	if len(p) < retryHeader || p[0] != wantKind {
		return 0, nil, false
	}
	seq = binary.LittleEndian.Uint64(p[1:])
	data = p[retryHeader:]
	if checksum(p[0], seq, data) != binary.LittleEndian.Uint32(p[9:]) {
		return 0, nil, false
	}
	return seq, data, true
}

// ReliableSender transmits Messages to Dst with end-to-end retry. The
// retransmit timeout backs off exponentially per message (Timeout, 2x,
// 4x, ... capped at MaxTimeout) so a persistently faulty path is not
// hammered, and after MaxRetries retransmissions of one message the
// sender gives up and surfaces the failure through Err — silent infinite
// retransmission would otherwise mask a dead route as livelock.
type ReliableSender struct {
	Dst     int
	Mask    flit.VCMask
	Class   int
	Timeout int64 // base cycles before the first retransmit
	Window  int   // max unacked messages in flight

	// MaxRetries caps retransmissions per message; at the cap the message
	// is abandoned and counted failed. <0 retries forever (old behaviour).
	MaxRetries int
	// MaxTimeout caps the exponential backoff; 0 means 8x Timeout.
	MaxTimeout int64

	Messages [][]byte

	nextSend int // next message index to transmit for the first time
	unacked  map[uint64]int64
	acked    map[uint64]bool
	tries    map[uint64]int // retransmissions so far, per message
	failed   map[uint64]bool

	Retransmits int64
	AckedCount  int64
	FailedCount int64
	// Timeouts counts retransmit-timeout expiries that led to action (a
	// retransmission or an abandonment); CorruptAcks counts acknowledgment
	// messages discarded by the end-to-end checksum. A corrupted ack must
	// only cost a timeout — the data message stays in the window and
	// retransmits — so these two counters moving together is the healthy
	// signature, while CorruptAcks without eventual AckedCount growth
	// indicates a poisoned window.
	Timeouts    int64
	CorruptAcks int64
}

// NewReliableSender returns a sender for the given message list.
func NewReliableSender(dst int, msgs [][]byte, mask flit.VCMask) *ReliableSender {
	return &ReliableSender{
		Dst: dst, Mask: mask, Timeout: 200, Window: 4, MaxRetries: 16, Messages: msgs,
		unacked: make(map[uint64]int64), acked: make(map[uint64]bool),
		tries: make(map[uint64]int), failed: make(map[uint64]bool),
	}
}

// Done reports whether every message has been resolved: acknowledged, or
// abandoned after exhausting its retries.
func (s *ReliableSender) Done() bool {
	return int(s.AckedCount+s.FailedCount) == len(s.Messages)
}

// Err reports the retries-exhausted condition: non-nil once any message
// has been abandoned after MaxRetries retransmissions.
func (s *ReliableSender) Err() error {
	if s.FailedCount == 0 {
		return nil
	}
	return fmt.Errorf("protocol: %d of %d messages to tile %d exhausted %d retries",
		s.FailedCount, len(s.Messages), s.Dst, s.MaxRetries)
}

// backoffFor reports the retransmit timeout for a message that has been
// retransmitted tries times already: Timeout doubled per attempt, capped.
func (s *ReliableSender) backoffFor(tries int) int64 {
	maxT := s.MaxTimeout
	if maxT <= 0 {
		maxT = 8 * s.Timeout
	}
	t := s.Timeout
	for i := 0; i < tries && t < maxT; i++ {
		t *= 2
	}
	if t > maxT {
		t = maxT
	}
	return t
}

// Tick implements network.Client.
func (s *ReliableSender) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		seq, _, ok := decodeRetry(d.Payload, retryAck)
		if !ok {
			// Corrupted ack: discard; the data message stays unacked and
			// its timeout will retransmit it.
			s.CorruptAcks++
			continue
		}
		if !s.acked[seq] && !s.failed[seq] {
			// A late ack for an abandoned message stays failed: the
			// sender already reported the loss upward.
			s.acked[seq] = true
			delete(s.unacked, seq)
			s.AckedCount++
		}
	}
	// Retransmit timed-out messages, in deterministic seq order, with
	// exponential backoff and a retry cap.
	for seq := uint64(0); seq < uint64(s.nextSend); seq++ {
		sentAt, pending := s.unacked[seq]
		if !pending || now-sentAt < s.backoffFor(s.tries[seq]) {
			continue
		}
		if s.MaxRetries >= 0 && s.tries[seq] >= s.MaxRetries {
			delete(s.unacked, seq)
			s.failed[seq] = true
			s.FailedCount++
			s.Timeouts++
			continue
		}
		if _, err := p.Send(s.Dst, encodeRetry(retryData, seq, s.Messages[seq]), s.Mask, s.Class); err == nil {
			s.unacked[seq] = now
			s.tries[seq]++
			s.Retransmits++
			s.Timeouts++
		}
	}
	// First transmissions, window permitting.
	for s.nextSend < len(s.Messages) && len(s.unacked) < s.Window {
		seq := uint64(s.nextSend)
		if _, err := p.Send(s.Dst, encodeRetry(retryData, seq, s.Messages[seq]), s.Mask, s.Class); err != nil {
			return
		}
		s.unacked[seq] = now
		s.nextSend++
	}
}

// Publish adds the sender's robustness counters to the probe's
// protocol-level totals. Call after the run (the counters are cumulative).
func (s *ReliableSender) Publish(p *telemetry.Probe) {
	if p == nil {
		return
	}
	p.RetryRetransmits += s.Retransmits
	p.RetryTimeouts += s.Timeouts
	p.RetryCorrupt += s.CorruptAcks
}

// ReliableReceiver verifies checksums, acknowledges valid messages, and
// delivers each exactly once in sequence order.
type ReliableReceiver struct {
	Mask  flit.VCMask
	Class int

	buffer    map[uint64][]byte
	delivered uint64

	Received  [][]byte
	Corrupted int64
	Duplicate int64
	Latency   *stats.Hist
}

// NewReliableReceiver returns a receiver.
func NewReliableReceiver(mask flit.VCMask) *ReliableReceiver {
	return &ReliableReceiver{Mask: mask, buffer: make(map[uint64][]byte), Latency: stats.NewHist(4096)}
}

// Tick implements network.Client.
func (r *ReliableReceiver) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		if len(d.Payload) < 1 || d.Payload[0] != retryData {
			if len(d.Payload) >= 1 && d.Payload[0] != retryAck {
				r.Corrupted++ // kind byte mangled in flight
			}
			continue
		}
		seq, data, ok := decodeRetry(d.Payload, retryData)
		if !ok {
			// Corrupted in flight: drop silently; the sender's timeout
			// covers it.
			r.Corrupted++
			continue
		}
		// Acknowledge even duplicates (the ack may have been what was
		// lost).
		_, _ = p.Send(d.Src, encodeRetry(retryAck, seq, nil), r.Mask, r.Class)
		if seq < r.delivered || r.buffer[seq] != nil {
			r.Duplicate++
			continue
		}
		r.buffer[seq] = append([]byte(nil), data...)
		r.Latency.Add(now - d.Birth)
	}
	for {
		data, ok := r.buffer[r.delivered]
		if !ok {
			break
		}
		delete(r.buffer, r.delivered)
		r.Received = append(r.Received, data)
		r.delivered++
	}
}

// Publish adds the receiver's discarded-corrupt count to the probe's
// protocol-level totals. Call after the run.
func (r *ReliableReceiver) Publish(p *telemetry.Probe) {
	if p == nil {
		return
	}
	p.RetryCorrupt += r.Corrupted
}
